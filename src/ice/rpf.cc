#include "src/ice/rpf.h"

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/ice/mdt.h"
#include "src/proc/process.h"
#include "src/proc/task.h"
#include "src/trace/trace.h"

namespace ice {

Rpf::Rpf(const IceConfig& config, MappingTable& table, Whitelist& whitelist, Freezer& freezer,
         ActivityManager& am, Mdt* mdt)
    : config_(config),
      table_(table),
      whitelist_(whitelist),
      freezer_(freezer),
      am_(am),
      mdt_(mdt) {}

void Rpf::SaveTo(BinaryWriter& w) const {
  w.U64(events_seen_);
  w.U64(events_foreground_);
  w.U64(events_sifted_);
  w.U64(freezes_triggered_);
}

void Rpf::RestoreFrom(BinaryReader& r) {
  events_seen_ = r.U64();
  events_foreground_ = r.U64();
  events_sifted_ = r.U64();
  freezes_triggered_ = r.U64();
}

void Rpf::OnRefault(const RefaultEvent& event) {
  ++events_seen_;

  // Foreground refaults are not ICE's target; they are what ICE protects.
  if (event.foreground) {
    ++events_foreground_;
    return;
  }

  // Resolve the faulting process to an application through the mapping
  // table — the kernel-resident index (§4.2.2). A miss means the process is
  // a kernel thread or a system service: sifted.
  Uid uid = table_.UidOfPid(event.pid);
  if (uid == kInvalidUid) {
    ++events_sifted_;
    return;
  }
  App* app = am_.FindApp(uid);
  if (app == nullptr || !app->running()) {
    ++events_sifted_;
    return;
  }
  if (app->state() == AppState::kForeground) {
    ++events_foreground_;
    return;
  }
  // Whitelist: perceptible apps (adj <= 200) and vendor-pinned UIDs.
  if (whitelist_.Protects(uid, app->oom_adj())) {
    ++events_sifted_;
    return;
  }
  if (app->frozen()) {
    return;  // Already inhibited (tasks may drain in-flight I/O).
  }

  if (config_.application_grain) {
    freezer_.FreezeApp(*app);
  } else {
    // Ablation: freeze only the faulting process. Sibling processes of the
    // same app stay live (and keep refaulting — the reason §4.2.2 freezes
    // whole applications).
    for (Process* process : app->processes()) {
      if (process->pid() == event.pid) {
        for (Task* task : process->tasks()) {
          task->RequestFreeze();
        }
      }
    }
    app->set_frozen(true);  // Tracked for MDT cycling / thaw-on-launch.
  }
  table_.SetFrozen(uid, true);
  ++freezes_triggered_;
  ICE_TRACE(am_.engine(), TraceEventType::kRpfTrigger, {.pid = event.pid, .uid = uid});
  if (mdt_ != nullptr) {
    mdt_->OnAppFrozen(uid);
  }
}

}  // namespace ice
