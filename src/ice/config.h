// ICE configuration (Table 4 parameters plus implementation knobs).
#ifndef SRC_ICE_CONFIG_H_
#define SRC_ICE_CONFIG_H_

#include "src/base/units.h"

namespace ice {

struct IceConfig {
  // Weight coefficient δ of the MDT strategy (Table 4: 8.0).
  double delta = 8.0;

  // Thaw duration E_t per epoch (Table 4: 1 second).
  SimDuration thaw_duration = Sec(1);

  // Freeze-duration clamp: E_f = clamp(R * E_t, min, max). The clamp keeps
  // Eq. 1 well-behaved when available memory approaches zero.
  SimDuration min_freeze = Sec(1);
  SimDuration max_freeze = Sec(64);

  // High watermark H_wm in MiB for Eq. 1 (Table 4: 256 on Pixel3, 1024 on
  // P20). 0 = derive from the memory manager's configured high watermark.
  uint64_t hwm_mib = 0;

  // Whitelist threshold: apps with oom_score_adj <= this are perceptible and
  // never frozen (§4.4; Android sets perceptible apps to 200).
  int whitelist_adj_threshold = 200;

  // Application-grain freezing (§4.2.2). false = freeze only the faulting
  // process (the ablation of the design choice).
  bool application_grain = true;

  // §6.3.1 extension: learn foreground-switch patterns and pre-thaw the
  // likely next apps, hiding the frozen-hot-launch penalty.
  bool enable_prediction = false;
  // How many candidate next apps to pre-thaw.
  int prediction_fanout = 2;
};

}  // namespace ice

#endif  // SRC_ICE_CONFIG_H_
