// RPF — Refault-driven Process Freezing (§4.2).
//
// RPF subscribes to the kernel's refault events (shadow-entry hits) and
// follows the event-condition-action rule: a background refault event whose
// process sifts through the freezability checks (not kernel, not a service,
// not whitelisted, not foreground) triggers application-grain freezing of
// the offending app, immediately, in the event's context.
#ifndef SRC_ICE_RPF_H_
#define SRC_ICE_RPF_H_

#include <cstdint>

#include "src/android/activity_manager.h"
#include "src/ice/config.h"
#include "src/ice/mapping_table.h"
#include "src/ice/whitelist.h"
#include "src/mem/shadow.h"
#include "src/proc/freezer.h"

namespace ice {

class BinaryReader;
class BinaryWriter;
class Mdt;

class Rpf : public RefaultListener {
 public:
  Rpf(const IceConfig& config, MappingTable& table, Whitelist& whitelist, Freezer& freezer,
      ActivityManager& am, Mdt* mdt);

  void OnRefault(const RefaultEvent& event) override;

  // Counters for overhead/effectiveness analysis.
  uint64_t events_seen() const { return events_seen_; }
  uint64_t events_foreground() const { return events_foreground_; }
  uint64_t events_sifted() const { return events_sifted_; }  // Unfreezable.
  uint64_t freezes_triggered() const { return freezes_triggered_; }

  // Snapshot support (counters only; RPF is otherwise event-driven).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  IceConfig config_;
  MappingTable& table_;
  Whitelist& whitelist_;
  Freezer& freezer_;
  ActivityManager& am_;
  Mdt* mdt_;

  uint64_t events_seen_ = 0;
  uint64_t events_foreground_ = 0;
  uint64_t events_sifted_ = 0;
  uint64_t freezes_triggered_ = 0;
};

}  // namespace ice

#endif  // SRC_ICE_RPF_H_
