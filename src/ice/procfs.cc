#include "src/ice/procfs.h"

#include <sstream>

namespace ice {

bool IceProcFs::Write(const std::string& record) {
  std::istringstream in(record);
  std::string op;
  if (!(in >> op)) {
    ++writes_rejected_;
    return false;
  }

  auto finish = [this](bool ok) {
    if (ok) {
      ++writes_applied_;
    } else {
      ++writes_rejected_;
    }
    return ok;
  };

  if (op == "ADD") {
    Uid uid;
    if (!(in >> uid)) {
      return finish(false);
    }
    return finish(table_.AddApp(uid));
  }
  if (op == "DEL") {
    Uid uid;
    if (!(in >> uid)) {
      return finish(false);
    }
    return finish(table_.RemoveApp(uid));
  }
  if (op == "PROC") {
    Uid uid;
    Pid pid;
    int adj;
    if (!(in >> uid >> pid >> adj)) {
      return finish(false);
    }
    return finish(table_.AddProcess(uid, pid, adj));
  }
  if (op == "EXIT") {
    Uid uid;
    Pid pid;
    if (!(in >> uid >> pid)) {
      return finish(false);
    }
    return finish(table_.RemoveProcess(uid, pid));
  }
  if (op == "ADJ") {
    Uid uid;
    int adj;
    if (!(in >> uid >> adj)) {
      return finish(false);
    }
    return finish(table_.SetScore(uid, adj));
  }
  if (op == "FREEZE") {
    Uid uid;
    int frozen;
    if (!(in >> uid >> frozen)) {
      return finish(false);
    }
    return finish(table_.SetFrozen(uid, frozen != 0));
  }
  return finish(false);
}

std::string IceProcFs::Read() const {
  std::ostringstream out;
  for (const MappingTable::AppEntry& app : table_.entries()) {
    out << app.uid << " " << (app.frozen ? 1 : 0);
    for (const MappingTable::ProcessEntry& p : app.processes) {
      out << " " << p.pid << ":" << p.score;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ice
