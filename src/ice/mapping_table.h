// The UID↔PID mapping table (§4.2.2): ICE's kernel-resident index from
// applications to their processes, updated from the framework on install /
// launch / death, and consulted on every refault to resolve the faulting
// process to an application.
//
// Memory accounting follows §6.4.1 exactly: 64 B per UID entry, and per
// process 64 B (PID) + 1 B (freeze state) + 64 B (priority score). The table
// is capped at 32 KB; insertions beyond the bound are rejected.
#ifndef SRC_ICE_MAPPING_TABLE_H_
#define SRC_ICE_MAPPING_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/units.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class MappingTable {
 public:
  static constexpr size_t kUidEntryBytes = 64;
  static constexpr size_t kPidEntryBytes = 64 + 1 + 64;
  static constexpr size_t kUpperBoundBytes = 32 * 1024;

  struct ProcessEntry {
    Pid pid = kInvalidPid;
    int score = 0;  // oom_score_adj replica.
  };
  struct AppEntry {
    Uid uid = kInvalidUid;
    bool frozen = false;
    std::vector<ProcessEntry> processes;
  };

  MappingTable() = default;

  // All mutators return false when the 32 KB bound would be exceeded or the
  // referenced entry is missing.
  bool AddApp(Uid uid);
  bool RemoveApp(Uid uid);
  bool AddProcess(Uid uid, Pid pid, int score);
  bool RemoveProcess(Uid uid, Pid pid);
  bool SetScore(Uid uid, int score);           // All processes of the app.
  bool SetFrozen(Uid uid, bool frozen);

  const AppEntry* Find(Uid uid) const;
  // Resolves a faulting PID to its application; kInvalidUid when unknown.
  Uid UidOfPid(Pid pid) const;

  size_t app_count() const { return entries_.size(); }
  size_t MemoryFootprintBytes() const;

  const std::vector<AppEntry>& entries() const { return entries_; }

  // Snapshot support.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  AppEntry* FindMutable(Uid uid);

  std::vector<AppEntry> entries_;
};

}  // namespace ice

#endif  // SRC_ICE_MAPPING_TABLE_H_
