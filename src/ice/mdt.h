// MDT — Memory-aware Dynamic Thawing (§4.3).
//
// MDT maintains one system-wide heartbeat. Each epoch is a freeze period of
// E_f seconds followed by a thaw period of E_t seconds (Table 4: E_t = 1 s).
// The freezing intensity R = E_f / E_t follows Eq. 1:
//
//     R = δ · 2^ceil(H_wm / S_am)
//
// where H_wm is the device's high watermark and S_am the currently available
// memory — so pressure lengthens the freeze period and relief shortens it.
// Apps frozen by RPF join MDT's managed set and ride the heartbeat until
// they are launched to the foreground (thaw-on-launch) or die.
#ifndef SRC_ICE_MDT_H_
#define SRC_ICE_MDT_H_

#include <cstdint>
#include <set>

#include "src/android/activity_manager.h"
#include "src/ice/config.h"
#include "src/mem/memory_manager.h"
#include "src/proc/freezer.h"
#include "src/sim/engine.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class Mdt {
 public:
  Mdt(const IceConfig& config, Engine& engine, MemoryManager& mm, Freezer& freezer,
      ActivityManager& am);

  // Starts the heartbeat (idempotent).
  void Start();

  // RPF notifies when it freezes an app; the app joins the managed set.
  void OnAppFrozen(Uid uid);

  // The app left the background (foreground launch or death): drop it.
  void Unmanage(Uid uid);

  // Eq. 1, evaluated against current available memory.
  double CurrentR() const;
  SimDuration CurrentFreezeDuration() const;

  bool managing(Uid uid) const { return managed_.count(uid) > 0; }
  size_t managed_count() const { return managed_.size(); }
  uint64_t epochs() const { return epochs_; }
  bool in_thaw_period() const { return in_thaw_period_; }

  // ---- Snapshot support -----------------------------------------------------
  // The heartbeat is one pending event (next period boundary); it is saved as
  // (deadline, seq) and re-armed with the same sequence number on restore.
  void SaveTo(BinaryWriter& w) const;
  void BeginRestore();  // Cancels the heartbeat Start() armed.
  void RestoreFrom(BinaryReader& r);

 private:
  void BeginFreezePeriod();
  void BeginThawPeriod();

  IceConfig config_;
  Engine& engine_;
  MemoryManager& mm_;
  Freezer& freezer_;
  ActivityManager& am_;

  // Ordered: BeginFreezePeriod/BeginThawPeriod iterate this set, so its
  // iteration order is part of the deterministic simulation state.
  std::set<Uid> managed_;
  bool started_ = false;
  bool in_thaw_period_ = false;
  uint64_t epochs_ = 0;
  uint64_t hwm_mib_ = 0;
  // The next period-boundary event (thaw begin when freezing, freeze begin
  // when thawing); tracked so snapshots can serialize and re-arm it.
  EventId pending_ = kInvalidEventId;
};

}  // namespace ice

#endif  // SRC_ICE_MDT_H_
