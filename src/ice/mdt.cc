#include "src/ice/mdt.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/trace/trace.h"

namespace ice {

Mdt::Mdt(const IceConfig& config, Engine& engine, MemoryManager& mm, Freezer& freezer,
         ActivityManager& am)
    : config_(config), engine_(engine), mm_(mm), freezer_(freezer), am_(am) {
  hwm_mib_ = config_.hwm_mib != 0
                 ? config_.hwm_mib
                 : PagesToBytes(mm_.watermarks().high) / kMiB;
  ICE_CHECK_GT(hwm_mib_, 0u);
  // Config sanity: the clamp below assumes a non-empty [min, max] interval, a
  // positive thaw period for Eq. 1's R = E_f / E_t, and a finite δ >= 0.
  ICE_CHECK_LE(config_.min_freeze, config_.max_freeze)
      << "min_freeze must not exceed max_freeze";
  ICE_CHECK_GT(config_.thaw_duration, 0u) << "thaw_duration must be positive";
  ICE_CHECK(config_.delta >= 0.0 && std::isfinite(config_.delta))
      << "delta must be finite and non-negative";
}

double Mdt::CurrentR() const {
  double sam_mib =
      static_cast<double>(PagesToBytes(mm_.available_pages())) / static_cast<double>(kMiB);
  sam_mib = std::max(sam_mib, 1.0);
  double exponent = std::ceil(static_cast<double>(hwm_mib_) / sam_mib);
  exponent = std::clamp(exponent, 1.0, 10.0);
  return config_.delta * std::pow(2.0, exponent);
}

SimDuration Mdt::CurrentFreezeDuration() const {
  // Clamp in double space BEFORE the integer cast: a large configured δ makes
  // R · E_t exceed int64/uint64 range, and casting an out-of-range double to
  // an integer is UB (and in practice produced garbage freeze durations).
  double ef = CurrentR() * static_cast<double>(config_.thaw_duration);
  double lo = static_cast<double>(config_.min_freeze);
  double hi = static_cast<double>(config_.max_freeze);
  ef = std::clamp(ef, lo, hi);
  return static_cast<SimDuration>(ef);
}

void Mdt::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  BeginFreezePeriod();
}

void Mdt::OnAppFrozen(Uid uid) { managed_.insert(uid); }

void Mdt::Unmanage(Uid uid) { managed_.erase(uid); }

void Mdt::BeginFreezePeriod() {
  ++epochs_;
  in_thaw_period_ = false;
  // Freeze every managed app (those RPF froze during the thaw period are
  // already frozen; this refreezes apps thawed for the period).
  for (Uid uid : managed_) {
    App* app = am_.FindApp(uid);
    if (app != nullptr && app->running() && app->state() != AppState::kForeground) {
      freezer_.FreezeApp(*app);
    }
  }
  // E_f is recomputed at the start of every epoch from current memory state.
  SimDuration ef = CurrentFreezeDuration();
  ICE_TRACE(engine_, TraceEventType::kMdtEpoch, {.arg0 = ef, .arg1 = epochs_});
  pending_ = engine_.ScheduleAfter(ef, [this]() { BeginThawPeriod(); });
}

void Mdt::BeginThawPeriod() {
  in_thaw_period_ = true;
  for (Uid uid : managed_) {
    App* app = am_.FindApp(uid);
    if (app != nullptr && app->frozen()) {
      freezer_.ThawApp(*app);
    }
  }
  pending_ = engine_.ScheduleAfter(config_.thaw_duration, [this]() { BeginFreezePeriod(); });
}

void Mdt::SaveTo(BinaryWriter& w) const {
  w.Bool(started_);
  w.Bool(in_thaw_period_);
  w.U64(epochs_);
  w.U64(managed_.size());
  for (Uid uid : managed_) {
    w.I64(uid);
  }
  bool has_pending = pending_ != kInvalidEventId;
  std::optional<std::pair<SimTime, uint64_t>> info;
  if (has_pending) {
    info = engine_.PendingEvent(pending_);
    ICE_CHECK(info.has_value()) << "MDT heartbeat event is stale";
  }
  w.Bool(has_pending);
  if (has_pending) {
    w.U64(info->first);
    w.U64(info->second);
  }
}

void Mdt::BeginRestore() {
  if (pending_ != kInvalidEventId) {
    engine_.Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void Mdt::RestoreFrom(BinaryReader& r) {
  ICE_CHECK_EQ(pending_, kInvalidEventId) << "BeginRestore must run first";
  started_ = r.Bool();
  in_thaw_period_ = r.Bool();
  epochs_ = r.U64();
  managed_.clear();
  uint64_t count = r.U64();
  for (uint64_t i = 0; i < count; ++i) {
    managed_.insert(static_cast<Uid>(r.I64()));
  }
  if (r.Bool()) {
    SimTime when = r.U64();
    uint64_t seq = r.U64();
    // The pending event is the *next* period boundary: leaving a thaw period
    // begins a freeze period, and vice versa.
    if (in_thaw_period_) {
      pending_ = engine_.ScheduleAtWithSeq(when, seq, [this]() { BeginFreezePeriod(); });
    } else {
      pending_ = engine_.ScheduleAtWithSeq(when, seq, [this]() { BeginThawPeriod(); });
    }
  }
}

}  // namespace ice
