#include "src/ice/mdt.h"

#include <algorithm>
#include <cmath>

#include "src/base/log.h"

namespace ice {

Mdt::Mdt(const IceConfig& config, Engine& engine, MemoryManager& mm, Freezer& freezer,
         ActivityManager& am)
    : config_(config), engine_(engine), mm_(mm), freezer_(freezer), am_(am) {
  hwm_mib_ = config_.hwm_mib != 0
                 ? config_.hwm_mib
                 : PagesToBytes(mm_.watermarks().high) / kMiB;
  ICE_CHECK_GT(hwm_mib_, 0u);
}

double Mdt::CurrentR() const {
  double sam_mib =
      static_cast<double>(PagesToBytes(mm_.available_pages())) / static_cast<double>(kMiB);
  sam_mib = std::max(sam_mib, 1.0);
  double exponent = std::ceil(static_cast<double>(hwm_mib_) / sam_mib);
  exponent = std::clamp(exponent, 1.0, 10.0);
  return config_.delta * std::pow(2.0, exponent);
}

SimDuration Mdt::CurrentFreezeDuration() const {
  double ef = CurrentR() * static_cast<double>(config_.thaw_duration);
  return std::clamp(static_cast<SimDuration>(ef), config_.min_freeze, config_.max_freeze);
}

void Mdt::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  BeginFreezePeriod();
}

void Mdt::OnAppFrozen(Uid uid) { managed_.insert(uid); }

void Mdt::Unmanage(Uid uid) { managed_.erase(uid); }

void Mdt::BeginFreezePeriod() {
  ++epochs_;
  in_thaw_period_ = false;
  // Freeze every managed app (those RPF froze during the thaw period are
  // already frozen; this refreezes apps thawed for the period).
  for (Uid uid : managed_) {
    App* app = am_.FindApp(uid);
    if (app != nullptr && app->running() && app->state() != AppState::kForeground) {
      freezer_.FreezeApp(*app);
    }
  }
  // E_f is recomputed at the start of every epoch from current memory state.
  SimDuration ef = CurrentFreezeDuration();
  engine_.ScheduleAfter(ef, [this]() { BeginThawPeriod(); });
}

void Mdt::BeginThawPeriod() {
  in_thaw_period_ = true;
  for (Uid uid : managed_) {
    App* app = am_.FindApp(uid);
    if (app != nullptr && app->frozen()) {
      freezer_.ThawApp(*app);
    }
  }
  engine_.ScheduleAfter(config_.thaw_duration, [this]() { BeginFreezePeriod(); });
}

}  // namespace ice
