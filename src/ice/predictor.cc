#include "src/ice/predictor.h"

#include <algorithm>

namespace ice {

void AppUsagePredictor::RecordSwitch(Uid from, Uid to) {
  if (from == kInvalidUid || to == kInvalidUid || from == to) {
    return;
  }
  ++counts_[from][to];
  ++transitions_;
}

std::vector<Uid> AppUsagePredictor::PredictNext(Uid current, size_t k) const {
  std::vector<Uid> result;
  auto it = counts_.find(current);
  if (it == counts_.end()) {
    return result;
  }
  std::vector<std::pair<uint64_t, Uid>> ranked;
  ranked.reserve(it->second.size());
  for (const auto& [to, count] : it->second) {
    ranked.emplace_back(count, to);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;  // Deterministic tie-break.
  });
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

double AppUsagePredictor::TransitionProbability(Uid current, Uid next) const {
  auto it = counts_.find(current);
  if (it == counts_.end()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (const auto& [to, count] : it->second) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  auto nit = it->second.find(next);
  return nit == it->second.end() ? 0.0
                                 : static_cast<double>(nit->second) / static_cast<double>(total);
}

}  // namespace ice
