#include "src/ice/predictor.h"

#include <algorithm>

#include "src/base/binary_stream.h"

namespace ice {

void AppUsagePredictor::SaveTo(BinaryWriter& w) const {
  w.U64(transitions_);
  w.U64(counts_.size());
  for (const auto& [from, tos] : counts_) {
    w.I64(from);
    w.U64(tos.size());
    for (const auto& [to, count] : tos) {
      w.I64(to);
      w.U64(count);
    }
  }
}

void AppUsagePredictor::RestoreFrom(BinaryReader& r) {
  counts_.clear();
  transitions_ = r.U64();
  uint64_t froms = r.U64();
  for (uint64_t i = 0; i < froms; ++i) {
    Uid from = static_cast<Uid>(r.I64());
    auto& tos = counts_[from];
    uint64_t entries = r.U64();
    for (uint64_t j = 0; j < entries; ++j) {
      Uid to = static_cast<Uid>(r.I64());
      tos[to] = r.U64();
    }
  }
}

void AppUsagePredictor::RecordSwitch(Uid from, Uid to) {
  if (from == kInvalidUid || to == kInvalidUid || from == to) {
    return;
  }
  ++counts_[from][to];
  ++transitions_;
}

std::vector<Uid> AppUsagePredictor::PredictNext(Uid current, size_t k) const {
  std::vector<Uid> result;
  auto it = counts_.find(current);
  if (it == counts_.end()) {
    return result;
  }
  std::vector<std::pair<uint64_t, Uid>> ranked;
  ranked.reserve(it->second.size());
  for (const auto& [to, count] : it->second) {
    ranked.emplace_back(count, to);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;  // Deterministic tie-break.
  });
  for (size_t i = 0; i < ranked.size() && i < k; ++i) {
    result.push_back(ranked[i].second);
  }
  return result;
}

double AppUsagePredictor::TransitionProbability(Uid current, Uid next) const {
  auto it = counts_.find(current);
  if (it == counts_.end()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (const auto& [to, count] : it->second) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  auto nit = it->second.find(next);
  return nit == it->second.end() ? 0.0
                                 : static_cast<double>(nit->second) / static_cast<double>(total);
}

}  // namespace ice
