#include "src/ice/daemon.h"

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/process.h"

namespace ice {

IceDaemon::~IceDaemon() {
  if (installed_ && refs_.mm != nullptr && rpf_ != nullptr) {
    refs_.mm->shadow().RemoveListener(rpf_.get());
  }
}

void IceDaemon::SyncAppIntoTable(App& app) {
  table_.AddApp(app.uid());
  for (Process* process : app.processes()) {
    table_.AddProcess(app.uid(), process->pid(), app.oom_adj());
  }
  table_.SetScore(app.uid(), app.oom_adj());
}

void IceDaemon::Install(const SystemRefs& refs) {
  ICE_CHECK(!installed_);
  ICE_CHECK(refs.engine != nullptr && refs.mm != nullptr && refs.freezer != nullptr &&
            refs.am != nullptr);
  installed_ = true;
  refs_ = refs;
  whitelist_ = Whitelist(config_.whitelist_adj_threshold);

  mdt_ = std::make_unique<Mdt>(config_, *refs.engine, *refs.mm, *refs.freezer, *refs.am);
  rpf_ = std::make_unique<Rpf>(config_, table_, whitelist_, *refs.freezer, *refs.am,
                               mdt_.get());

  // Kernel-side hook: refault events flow straight into RPF (①–③ of Fig. 5).
  refs.mm->shadow().AddListener(rpf_.get());

  // Framework-side hooks: the mapping table and whitelist track lifecycle
  // and score changes (the cross-space /proc channel of §4.2.2).
  for (App* app : refs.am->apps()) {
    if (app->running()) {
      SyncAppIntoTable(*app);
    }
  }
  refs.am->AddStateListener([this](App& app, AppState old_state) {
    (void)old_state;
    if (app.running()) {
      SyncAppIntoTable(app);
    }
    if (app.state() == AppState::kForeground) {
      // Thaw-on-launch already happened inside the ActivityManager before
      // display; ICE stops managing the app.
      mdt_->Unmanage(app.uid());
      table_.SetFrozen(app.uid(), false);

      // §6.3.1 extension: learn the switch and pre-thaw the likely next
      // apps so a future hot launch never pays the frozen penalty.
      predictor_.RecordSwitch(last_foreground_, app.uid());
      last_foreground_ = app.uid();
      if (config_.enable_prediction) {
        for (Uid next : predictor_.PredictNext(
                 app.uid(), static_cast<size_t>(config_.prediction_fanout))) {
          App* candidate = refs_.am->FindApp(next);
          if (candidate != nullptr && candidate->frozen()) {
            refs_.freezer->ThawApp(*candidate);
          }
        }
      }
    }
  });
  refs.am->AddDeathListener([this](App& app) {
    mdt_->Unmanage(app.uid());
    table_.RemoveApp(app.uid());
  });

  mdt_->Start();
}

void IceDaemon::SaveTo(BinaryWriter& w) const {
  ICE_CHECK(installed_);
  w.I64(last_foreground_);
  table_.SaveTo(w);
  predictor_.SaveTo(w);
  rpf_->SaveTo(w);
  mdt_->SaveTo(w);
}

void IceDaemon::BeginRestore() {
  ICE_CHECK(installed_);
  mdt_->BeginRestore();
}

void IceDaemon::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(installed_);
  last_foreground_ = static_cast<Uid>(r.I64());
  table_.RestoreFrom(r);
  predictor_.RestoreFrom(r);
  rpf_->RestoreFrom(r);
  mdt_->RestoreFrom(r);
}

void RegisterIceScheme() {
  SchemeRegistry::Instance().Register("ice",
                                      []() { return std::make_unique<IceDaemon>(); });
}

}  // namespace ice
