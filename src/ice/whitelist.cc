// Whitelist is header-only; this TU exists so the build system has a home
// for future out-of-line additions.
#include "src/ice/whitelist.h"
