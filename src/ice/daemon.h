// The ICE daemon (Fig. 5): glues RPF and MDT to the rest of the system.
//
// It maintains the UID↔PID mapping table from framework lifecycle events
// (the /proc/{pid}/ice-mp channel of §4.2.2), keeps the whitelist in sync
// with oom_score_adj changes, subscribes RPF to kernel refault events, runs
// MDT's heartbeat, and implements thaw-on-launch bookkeeping.
#ifndef SRC_ICE_DAEMON_H_
#define SRC_ICE_DAEMON_H_

#include <memory>

#include "src/ice/config.h"
#include "src/ice/mapping_table.h"
#include "src/ice/mdt.h"
#include "src/ice/predictor.h"
#include "src/ice/rpf.h"
#include "src/ice/whitelist.h"
#include "src/policy/registry.h"
#include "src/policy/scheme.h"

namespace ice {

class IceDaemon : public Scheme {
 public:
  IceDaemon() = default;
  explicit IceDaemon(const IceConfig& config) : config_(config) {}
  ~IceDaemon() override;

  std::string name() const override { return "Ice"; }
  void Install(const SystemRefs& refs) override;

  // Snapshot support: serializes the mapping table, predictor, RPF counters
  // and MDT (incl. its heartbeat event). The whitelist is config-derived.
  void SaveTo(BinaryWriter& w) const override;
  void BeginRestore() override;
  void RestoreFrom(BinaryReader& r) override;

  MappingTable& mapping_table() { return table_; }
  Whitelist& whitelist() { return whitelist_; }
  Rpf& rpf() { return *rpf_; }
  Mdt& mdt() { return *mdt_; }
  AppUsagePredictor& predictor() { return predictor_; }
  const IceConfig& config() const { return config_; }

 private:
  void SyncAppIntoTable(App& app);

  IceConfig config_;
  SystemRefs refs_;
  MappingTable table_;
  Whitelist whitelist_{200};
  std::unique_ptr<Mdt> mdt_;
  std::unique_ptr<Rpf> rpf_;
  AppUsagePredictor predictor_;
  Uid last_foreground_ = kInvalidUid;
  bool installed_ = false;
};

// Registers the "ice" key with the scheme registry. Safe to call multiple
// times. Called by the experiment harness at startup.
void RegisterIceScheme();

}  // namespace ice

#endif  // SRC_ICE_DAEMON_H_
