#include "src/ice/mapping_table.h"

#include <algorithm>

#include "src/base/binary_stream.h"

namespace ice {

void MappingTable::SaveTo(BinaryWriter& w) const {
  w.U64(entries_.size());
  for (const AppEntry& e : entries_) {
    w.I64(e.uid);
    w.Bool(e.frozen);
    w.U64(e.processes.size());
    for (const ProcessEntry& p : e.processes) {
      w.I64(p.pid);
      w.I64(p.score);
    }
  }
}

void MappingTable::RestoreFrom(BinaryReader& r) {
  entries_.clear();
  uint64_t apps = r.U64();
  entries_.reserve(apps);
  for (uint64_t i = 0; i < apps; ++i) {
    AppEntry e;
    e.uid = static_cast<Uid>(r.I64());
    e.frozen = r.Bool();
    uint64_t procs = r.U64();
    e.processes.reserve(procs);
    for (uint64_t j = 0; j < procs; ++j) {
      ProcessEntry p;
      p.pid = static_cast<Pid>(r.I64());
      p.score = static_cast<int>(r.I64());
      e.processes.push_back(p);
    }
    entries_.push_back(std::move(e));
  }
}

MappingTable::AppEntry* MappingTable::FindMutable(Uid uid) {
  for (AppEntry& e : entries_) {
    if (e.uid == uid) {
      return &e;
    }
  }
  return nullptr;
}

const MappingTable::AppEntry* MappingTable::Find(Uid uid) const {
  for (const AppEntry& e : entries_) {
    if (e.uid == uid) {
      return &e;
    }
  }
  return nullptr;
}

bool MappingTable::AddApp(Uid uid) {
  if (FindMutable(uid) != nullptr) {
    return true;  // Idempotent.
  }
  if (MemoryFootprintBytes() + kUidEntryBytes > kUpperBoundBytes) {
    return false;
  }
  AppEntry e;
  e.uid = uid;
  entries_.push_back(std::move(e));
  return true;
}

bool MappingTable::RemoveApp(Uid uid) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].uid == uid) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool MappingTable::AddProcess(Uid uid, Pid pid, int score) {
  AppEntry* e = FindMutable(uid);
  if (e == nullptr) {
    return false;
  }
  for (ProcessEntry& p : e->processes) {
    if (p.pid == pid) {
      p.score = score;
      return true;
    }
  }
  if (MemoryFootprintBytes() + kPidEntryBytes > kUpperBoundBytes) {
    return false;
  }
  e->processes.push_back(ProcessEntry{pid, score});
  return true;
}

bool MappingTable::RemoveProcess(Uid uid, Pid pid) {
  AppEntry* e = FindMutable(uid);
  if (e == nullptr) {
    return false;
  }
  auto it = std::remove_if(e->processes.begin(), e->processes.end(),
                           [pid](const ProcessEntry& p) { return p.pid == pid; });
  if (it == e->processes.end()) {
    return false;
  }
  e->processes.erase(it, e->processes.end());
  return true;
}

bool MappingTable::SetScore(Uid uid, int score) {
  AppEntry* e = FindMutable(uid);
  if (e == nullptr) {
    return false;
  }
  for (ProcessEntry& p : e->processes) {
    p.score = score;
  }
  return true;
}

bool MappingTable::SetFrozen(Uid uid, bool frozen) {
  AppEntry* e = FindMutable(uid);
  if (e == nullptr) {
    return false;
  }
  e->frozen = frozen;
  return true;
}

Uid MappingTable::UidOfPid(Pid pid) const {
  for (const AppEntry& e : entries_) {
    for (const ProcessEntry& p : e.processes) {
      if (p.pid == pid) {
        return e.uid;
      }
    }
  }
  return kInvalidUid;
}

size_t MappingTable::MemoryFootprintBytes() const {
  size_t bytes = 0;
  for (const AppEntry& e : entries_) {
    bytes += kUidEntryBytes + e.processes.size() * kPidEntryBytes;
  }
  return bytes;
}

}  // namespace ice
