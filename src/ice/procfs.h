// The /proc/{pid}/ice-mp channel (§4.2.2): "we collect the application
// information from the Android framework and deliver it to the kernel
// through the proc file system... When writing protocol string to the
// /proc/{pid}/ice-mp node, this function will be called. This function
// receives the application information (e.g., UID, PID, state) and updates
// the mapping table."
//
// This module implements that protocol parser: the framework side writes
// whitespace-separated records and the kernel side applies them to the
// mapping table. The daemon uses the direct C++ API for speed; this channel
// exists for fidelity, for tooling, and to bound what crosses the
// user/kernel boundary.
//
// Protocol (one record per write):
//   "ADD <uid>"                      register an application
//   "DEL <uid>"                      remove an application (uninstall/death)
//   "PROC <uid> <pid> <adj>"         add/refresh a process under an app
//   "EXIT <uid> <pid>"               remove a process
//   "ADJ <uid> <adj>"                update every process's priority score
//   "FREEZE <uid> <0|1>"             record freeze state
#ifndef SRC_ICE_PROCFS_H_
#define SRC_ICE_PROCFS_H_

#include <string>

#include "src/ice/mapping_table.h"

namespace ice {

class IceProcFs {
 public:
  explicit IceProcFs(MappingTable& table) : table_(table) {}

  // Applies one protocol record. Returns false (and changes nothing) on a
  // malformed record or a failed table operation (e.g. the 32 KB bound).
  bool Write(const std::string& record);

  // Renders the table in /proc read format, one app per line:
  //   "<uid> <frozen:0|1> <pid>:<adj> <pid>:<adj> ..."
  std::string Read() const;

  uint64_t writes_applied() const { return writes_applied_; }
  uint64_t writes_rejected() const { return writes_rejected_; }

 private:
  MappingTable& table_;
  uint64_t writes_applied_ = 0;
  uint64_t writes_rejected_ = 0;
};

}  // namespace ice

#endif  // SRC_ICE_PROCFS_H_
