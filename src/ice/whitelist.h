// The safety whitelist (§4.4): perceptible applications (foreground, music,
// download, calls — adj <= 200) are never frozen, and vendors can pin
// specific UIDs (antivirus, messaging) offline.
#ifndef SRC_ICE_WHITELIST_H_
#define SRC_ICE_WHITELIST_H_

#include <cstddef>
#include <unordered_set>

#include "src/base/units.h"

namespace ice {

class Whitelist {
 public:
  explicit Whitelist(int adj_threshold = 200) : adj_threshold_(adj_threshold) {}

  void AddManual(Uid uid) { manual_.insert(uid); }
  void RemoveManual(Uid uid) { manual_.erase(uid); }
  bool IsManual(Uid uid) const { return manual_.count(uid) > 0; }

  // True when the app must not be frozen: pinned by the vendor or currently
  // perceptible (its oom_score_adj at or below the threshold).
  bool Protects(Uid uid, int oom_adj) const {
    return IsManual(uid) || oom_adj <= adj_threshold_;
  }

  int adj_threshold() const { return adj_threshold_; }
  size_t manual_size() const { return manual_.size(); }

 private:
  int adj_threshold_;
  std::unordered_set<Uid> manual_;
};

}  // namespace ice

#endif  // SRC_ICE_WHITELIST_H_
