// App-usage prediction for proactive thawing — the extension §6.3.1 sketches:
// "this penalty can be further eliminated by using it in combination with
// application prediction [6, 52]. If a BG application is predicted as the
// next used application, Ice can thaw it ahead of time."
//
// The predictor is a first-order Markov chain over foreground transitions
// (the standard mobile app-prediction baseline of Parate et al. [52]): after
// each switch A -> B it bumps count[A][B]; the most likely successors of the
// current foreground app are pre-thawed so a hot launch never pays the thaw
// + refault-in-freeze penalty.
#ifndef SRC_ICE_PREDICTOR_H_
#define SRC_ICE_PREDICTOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/base/units.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class AppUsagePredictor {
 public:
  AppUsagePredictor() = default;

  // Records a foreground switch from `from` (may be kInvalidUid at boot).
  void RecordSwitch(Uid from, Uid to);

  // The `k` most likely next apps given the current foreground app, most
  // probable first. Empty when nothing has been learned yet.
  std::vector<Uid> PredictNext(Uid current, size_t k = 2) const;

  // Transition probability estimate P(next | current); 0 when unseen.
  double TransitionProbability(Uid current, Uid next) const;

  uint64_t transitions_recorded() const { return transitions_; }

  // Snapshot support (std::map iteration is ordered, so the wire format is
  // deterministic).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  // count_[from][to] = observed transitions.
  std::map<Uid, std::map<Uid, uint64_t>> counts_;
  uint64_t transitions_ = 0;
};

}  // namespace ice

#endif  // SRC_ICE_PREDICTOR_H_
