// Periodic memory-state sampler: records free memory, zram fill, cumulative
// eviction/refault counters and kswapd activity on a fixed interval — the
// instrumentation the paper's volunteers' phones carried (§3.1, "the
// information is collected every thirty seconds").
#ifndef SRC_METRICS_TIMELINE_H_
#define SRC_METRICS_TIMELINE_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/mem/memory_manager.h"
#include "src/sim/engine.h"

namespace ice {

struct TimelineSample {
  SimTime time = 0;
  int64_t free_pages = 0;
  PageCount available_pages = 0;
  double zram_utilization = 0.0;
  uint64_t cum_reclaimed = 0;
  uint64_t cum_refaults = 0;
  uint64_t cum_refaults_bg = 0;
  uint64_t cum_kswapd_wakeups = 0;
  uint64_t cum_lmk_kills = 0;
};

class MemoryTimeline {
 public:
  // Starts sampling immediately and every `interval` thereafter.
  MemoryTimeline(Engine& engine, MemoryManager& mm, SimDuration interval = Sec(30));
  ~MemoryTimeline();

  MemoryTimeline(const MemoryTimeline&) = delete;
  MemoryTimeline& operator=(const MemoryTimeline&) = delete;

  const std::vector<TimelineSample>& samples() const { return samples_; }

  // Refault ratio (cumulative) at the final sample; 0 when no evictions.
  double FinalRefaultRatio() const;
  // Minimum free memory seen across samples (pages).
  int64_t MinFreePages() const;

 private:
  void TakeSample();

  Engine& engine_;
  MemoryManager& mm_;
  SimDuration interval_;
  std::vector<TimelineSample> samples_;
  EventId next_event_ = kInvalidEventId;
  bool stopped_ = false;
};

}  // namespace ice

#endif  // SRC_METRICS_TIMELINE_H_
