#include "src/metrics/frame_stats.h"

#include <algorithm>

#include "src/base/log.h"

namespace ice {

void FrameStats::RecordFrame(SimTime enqueue_time, SimTime complete_time) {
  ICE_CHECK_GE(complete_time, enqueue_time);
  completions_.push_back(Completion{enqueue_time, complete_time});
  SimDuration latency = complete_time - enqueue_time;
  latency_us_.Add(static_cast<double>(latency));
  if (latency > kInteractionAlertUs) {
    ++late_;
  }
}

void FrameStats::RecordDropped(SimTime vsync_time) {
  dropped_times_.push_back(vsync_time);
  ++dropped_;
}

void FrameStats::Clear() {
  completions_.clear();
  dropped_times_.clear();
  dropped_ = 0;
  late_ = 0;
  latency_us_.Clear();
}

double FrameStats::AverageFps(SimTime begin, SimTime end) const {
  if (end <= begin) {
    return 0.0;
  }
  uint64_t n = 0;
  for (const Completion& c : completions_) {
    if (c.complete >= begin && c.complete < end) {
      ++n;
    }
  }
  return static_cast<double>(n) / ToSeconds(end - begin);
}

std::vector<double> FrameStats::FpsPerSecond(SimTime begin, SimTime end) const {
  std::vector<double> out;
  if (end <= begin) {
    return out;
  }
  size_t seconds = static_cast<size_t>((end - begin + kSecond - 1) / kSecond);
  out.assign(seconds, 0.0);
  for (const Completion& c : completions_) {
    if (c.complete >= begin && c.complete < end) {
      out[static_cast<size_t>((c.complete - begin) / kSecond)] += 1.0;
    }
  }
  return out;
}

double FrameStats::Ria() const {
  if (completions_.empty()) {
    return 0.0;
  }
  return static_cast<double>(late_) / static_cast<double>(completions_.size());
}

}  // namespace ice
