#include "src/metrics/timeline.h"

#include <algorithm>

namespace ice {

MemoryTimeline::MemoryTimeline(Engine& engine, MemoryManager& mm, SimDuration interval)
    : engine_(engine), mm_(mm), interval_(interval) {
  TakeSample();
}

MemoryTimeline::~MemoryTimeline() {
  stopped_ = true;
  if (next_event_ != kInvalidEventId) {
    engine_.Cancel(next_event_);
  }
}

void MemoryTimeline::TakeSample() {
  if (stopped_) {
    return;
  }
  StatsRegistry& st = engine_.stats();
  TimelineSample s;
  s.time = engine_.now();
  s.free_pages = mm_.free_pages();
  s.available_pages = mm_.available_pages();
  s.zram_utilization = mm_.zram().utilization();
  s.cum_reclaimed = st.Get(stat::kPagesReclaimed);
  s.cum_refaults = st.Get(stat::kRefaults);
  s.cum_refaults_bg = st.Get(stat::kRefaultsBg);
  s.cum_kswapd_wakeups = st.Get(stat::kKswapdWakeups);
  s.cum_lmk_kills = st.Get(stat::kLmkKills);
  samples_.push_back(s);
  next_event_ = engine_.ScheduleAfter(interval_, [this]() { TakeSample(); });
}

double MemoryTimeline::FinalRefaultRatio() const {
  if (samples_.empty() || samples_.back().cum_reclaimed == 0) {
    return 0.0;
  }
  return static_cast<double>(samples_.back().cum_refaults) /
         static_cast<double>(samples_.back().cum_reclaimed);
}

int64_t MemoryTimeline::MinFreePages() const {
  int64_t min_free = INT64_MAX;
  for (const TimelineSample& s : samples_) {
    min_free = std::min(min_free, s.free_pages);
  }
  return samples_.empty() ? 0 : min_free;
}

}  // namespace ice
