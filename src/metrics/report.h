// Plain-text table printer used by the benchmark binaries to emit
// paper-style rows ("paper" column vs "measured" column).
#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace ice {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);
  static std::string Pct(double fraction, int precision = 1);

  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a "== title ==" section header.
void PrintSection(const std::string& title);

}  // namespace ice

#endif  // SRC_METRICS_REPORT_H_
