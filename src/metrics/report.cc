#include "src/metrics/report.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "src/base/log.h"

namespace ice {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  ICE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i] << std::string(widths[i] - row[i].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t w : widths) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

void PrintSection(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace ice
