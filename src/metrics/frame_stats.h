// Frame-rate metrics: FPS (frames per second) and RIA (ratio of interaction
// alerts — frames that missed the 16.6 ms deadline, §6.1).
#ifndef SRC_METRICS_FRAME_STATS_H_
#define SRC_METRICS_FRAME_STATS_H_

#include <cstdint>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/units.h"

namespace ice {

// One vsync interval at 60 Hz.
inline constexpr SimDuration kVsyncPeriod = Us(16667);
// Systrace's interaction-alert threshold (§6.1).
inline constexpr SimDuration kInteractionAlertUs = Us(16600);

class FrameStats {
 public:
  FrameStats() = default;

  void RecordFrame(SimTime enqueue_time, SimTime complete_time);
  // A vsync for which no frame could be issued (pipeline backed up).
  void RecordDropped(SimTime vsync_time);

  void Clear();

  uint64_t frames_completed() const { return completions_.size(); }
  uint64_t frames_dropped() const { return dropped_; }

  // Average FPS over [begin, end): completed frames / seconds.
  double AverageFps(SimTime begin, SimTime end) const;

  // Completed-frame count per wall-clock second over [begin, end).
  std::vector<double> FpsPerSecond(SimTime begin, SimTime end) const;

  // Ratio of interaction alerts: the fraction of *rendered* frames that
  // missed the 16.6 ms deadline (Systrace counts alerts on rendered frames;
  // dropped vsyncs show up in FPS instead).
  double Ria() const;

  const Histogram& latency_us() const { return latency_us_; }

 private:
  struct Completion {
    SimTime enqueue;
    SimTime complete;
  };
  std::vector<Completion> completions_;
  std::vector<SimTime> dropped_times_;
  uint64_t dropped_ = 0;
  uint64_t late_ = 0;
  Histogram latency_us_;
};

}  // namespace ice

#endif  // SRC_METRICS_FRAME_STATS_H_
