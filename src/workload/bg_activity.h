// Background activity models: the §3.2 sources of BG refaults.
//
// Each running app gets up to three background tasks:
//  * a GC task sweeping the Java heap (ART's HeapTaskDaemon);
//  * a main-thread sync task touching native heap + file pages (the 58 % of
//    apps observed running their main thread in the background);
//  * a service-process task (push/location tracking), smaller but frequent.
// Touches are Zipf-skewed toward each region's launched prefix, so the hot
// working set is revisited often — exactly the pages reclaim just evicted
// under pressure, which is what makes BG refaults endemic.
#ifndef SRC_WORKLOAD_BG_ACTIVITY_H_
#define SRC_WORKLOAD_BG_ACTIVITY_H_

#include "src/android/activity_manager.h"
#include "src/proc/behavior.h"
#include "src/workload/app_catalog.h"

namespace ice {

// Periodic burst of page touches Zipf-distributed over one or two regions,
// plus CPU work. The workhorse for all BG activity.
class PeriodicTouchBehavior : public Behavior {
 public:
  struct Region {
    AddressSpace* space = nullptr;
    uint32_t begin = 0;
    uint32_t end = 0;
    double weight = 1.0;  // Probability mass of this region.
  };
  struct Params {
    Region regions[2];
    int region_count = 1;
    double zipf_s = 0.9;  // Skew toward the region start (hot prefix).
    uint32_t touches_per_burst = 100;
    SimDuration cpu_per_burst = Ms(10);
    SimDuration period = Sec(5);
    double jitter = 0.3;
  };

  explicit PeriodicTouchBehavior(const Params& params) : params_(params) {}

  void Run(TaskContext& ctx) override;

  // Burst progress is plain counters (no closures), so a mid-burst task can
  // be snapshotted; the params are structural (rebuilt by the bg-task
  // factory during lifecycle replay).
  void SaveTo(BinaryWriter& w) const override;
  void RestoreFrom(BinaryReader& r) override;

 private:
  struct Sample {
    AddressSpace* space;
    uint32_t vpn;
  };
  Sample SampleVpn(Rng& rng);

  Params params_;
  bool started_ = false;
  uint32_t remaining_touches_ = 0;
  SimDuration remaining_cpu_ = 0;
  bool burst_open_ = false;
};

// Instantiates the standard background tasks for `app` according to its
// catalog parameters. Intended for use as the ActivityManager's bg-task
// factory. `disable_gc` models the §3.2 "idle runtime GC off" experiment.
void AttachBgActivity(ActivityManager& am, App& app, const BgActivityParams& params,
                      bool disable_gc = false);

}  // namespace ice

#endif  // SRC_WORKLOAD_BG_ACTIVITY_H_
