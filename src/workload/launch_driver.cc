#include "src/workload/launch_driver.h"

#include <memory>

#include "src/base/log.h"
#include "src/workload/scenario.h"

namespace ice {

double LaunchDriverResult::MeanLatencyMs() const {
  double sum = 0;
  int n = 0;
  for (const LaunchRecord& r : records) {
    if (r.completed) {
      sum += ToMilliseconds(r.latency);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double LaunchDriverResult::MeanColdMs() const {
  double sum = 0;
  int n = 0;
  for (const LaunchRecord& r : records) {
    if (r.completed && r.cold) {
      sum += ToMilliseconds(r.latency);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double LaunchDriverResult::MeanHotMs() const {
  double sum = 0;
  int n = 0;
  for (const LaunchRecord& r : records) {
    if (r.completed && !r.cold) {
      sum += ToMilliseconds(r.latency);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

int LaunchDriverResult::TotalHot() const {
  int n = 0;
  for (int h : hot_per_round) {
    n += h;
  }
  return n;
}

LaunchDriver::LaunchDriver(ActivityManager& am, Choreographer& choreographer,
                           std::vector<Uid> apps, Rng rng)
    : am_(am), choreographer_(choreographer), apps_(std::move(apps)), rng_(rng) {
  ICE_CHECK(!apps_.empty());
}

LaunchDriverResult LaunchDriver::RunRounds(int rounds, SimDuration fg_time) {
  LaunchDriverResult result;
  Engine& engine = am_.engine();
  choreographer_.Start();

  size_t first_record = am_.launches().size();
  for (int round = 0; round < rounds; ++round) {
    int hot = 0;
    for (Uid uid : apps_) {
      App* app = am_.FindApp(uid);
      ICE_CHECK(app != nullptr);
      bool will_be_hot = app->running();
      if (will_be_hot) {
        ++hot;
      }
      am_.Launch(uid);
      // Monkey-style pseudo-random interaction: scrolling-class load.
      Scenario monkey(am_, uid, ScenarioKind::kScrolling, rng_.Fork());
      choreographer_.SetSource(&monkey);
      engine.RunFor(fg_time);
      choreographer_.SetSource(nullptr);
    }
    if (round >= 1) {
      result.hot_per_round.push_back(hot);
    }
  }
  // Give the final launch time to complete.
  engine.RunFor(Sec(2));

  const std::vector<LaunchRecord>& all = am_.launches();
  for (size_t i = first_record; i < all.size(); ++i) {
    result.records.push_back(all[i]);
  }
  return result;
}

}  // namespace ice
