#include "src/workload/scenario.h"

#include <algorithm>

#include "src/base/log.h"

namespace ice {

const char* ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kVideoCall:
      return "Video Call";
    case ScenarioKind::kShortVideo:
      return "Short-Form Video";
    case ScenarioKind::kScrolling:
      return "Screen Scrolling";
    case ScenarioKind::kGame:
      return "Mobile Game";
  }
  return "?";
}

const char* ScenarioLabel(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kVideoCall:
      return "S-A";
    case ScenarioKind::kShortVideo:
      return "S-B";
    case ScenarioKind::kScrolling:
      return "S-C";
    case ScenarioKind::kGame:
      return "S-D";
  }
  return "?";
}

const char* ScenarioPackage(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kVideoCall:
      return "WhatsApp";
    case ScenarioKind::kShortVideo:
      return "TikTok";
    case ScenarioKind::kScrolling:
      return "Facebook";
    case ScenarioKind::kGame:
      return "PUBGMobile";
  }
  return "?";
}

ScenarioParams ParamsFor(ScenarioKind kind) {
  ScenarioParams p;
  switch (kind) {
    case ScenarioKind::kVideoCall:
      // ~45 fps natural: decode + render of the remote stream.
      p.frame_compute_us = Us(13000);
      p.frame_sigma = 0.20;
      p.hiccup_prob = 0.11;
      p.hiccup_us = Us(42000);
      p.frame_touches = 350;
      // Decoded remote-stream frames churn through a ring of buffers
      // (~4-5 MB/s of fresh pages at 45 fps).
      p.frame_alloc_pages = 25;
      break;
    case ScenarioKind::kShortVideo:
      // ~52 fps natural; a video switch every ~9 s pulls new content.
      p.frame_compute_us = Us(12000);
      p.frame_sigma = 0.22;
      p.hiccup_prob = 0.12;
      p.hiccup_us = Us(42000);
      p.frame_touches = 420;
      p.frame_alloc_pages = 12;
      p.burst_period = Sec(7);
      p.burst_pages = 2200;  // ~9 MB of fresh video buffers per switch.
      break;
    case ScenarioKind::kScrolling:
      // ~55 fps natural; continuous small content ingestion.
      p.frame_compute_us = Us(11500);
      p.frame_sigma = 0.25;
      p.hiccup_prob = 0.10;
      p.hiccup_us = Us(38000);
      p.frame_touches = 400;
      p.frame_alloc_pages = 8;
      p.burst_period = Sec(3);
      p.burst_pages = 400;  // Next timeline screenful.
      break;
    case ScenarioKind::kGame:
      // ~44 fps natural; memory-intensive with per-round allocations.
      p.frame_compute_us = Us(13500);
      p.frame_sigma = 0.20;
      p.hiccup_prob = 0.16;
      p.hiccup_us = Us(50000);
      p.frame_touches = 480;
      p.frame_alloc_pages = 30;
      p.round_period = Sec(45);
      p.round_alloc_pages = BytesToPages(110 * kMiB);
      break;
  }
  return p;
}

Scenario::Scenario(ActivityManager& am, Uid uid, ScenarioKind kind, Rng rng)
    : am_(am), uid_(uid), kind_(kind), params_(ParamsFor(kind)), rng_(rng) {}

uint32_t Scenario::SampleHotVpn(AddressSpace& space) {
  const AppDescriptor& d = am_.descriptor(uid_);
  if (rng_.NextDouble() < params_.revisit_fraction) {
    // Cold revisit: uniform over the launched prefix of all three regions.
    uint32_t java_hot = static_cast<uint32_t>(
        (space.java_end() - space.java_begin()) * d.cold_touch_fraction * 0.8);
    uint32_t native_hot = static_cast<uint32_t>(
        (space.native_end() - space.native_begin()) * d.cold_touch_fraction * 0.8);
    uint32_t file_hot = static_cast<uint32_t>(
        (space.file_end() - space.file_begin()) * d.cold_touch_fraction);
    uint32_t span = std::max(1u, java_hot + native_hot + file_hot);
    uint32_t r = rng_.Below(span);
    if (r < java_hot) {
      return space.java_begin() + r;
    }
    r -= java_hot;
    if (r < native_hot) {
      return space.native_begin() + r;
    }
    return space.file_begin() + (r - native_hot);
  }
  // 55 % anonymous (java+native prefix), 45 % file prefix — the foreground
  // working set mix.
  if (rng_.NextDouble() < 0.55) {
    uint32_t java_hot = static_cast<uint32_t>(
        (space.java_end() - space.java_begin()) * d.cold_touch_fraction * 0.8);
    uint32_t native_hot = static_cast<uint32_t>(
        (space.native_end() - space.native_begin()) * d.cold_touch_fraction * 0.8);
    uint32_t span = std::max(1u, java_hot + native_hot);
    uint32_t r = static_cast<uint32_t>(rng_.Zipf(span, 0.55));
    if (r < java_hot) {
      return space.java_begin() + r;
    }
    return space.native_begin() + (r - java_hot);
  }
  uint32_t file_hot = std::max(1u, static_cast<uint32_t>(
      (space.file_end() - space.file_begin()) * d.cold_touch_fraction));
  return space.file_begin() + static_cast<uint32_t>(rng_.Zipf(file_hot, 0.55));
}

void Scenario::AppendColdFile(AddressSpace& space, FrameWork& frame, uint32_t pages) {
  for (uint32_t i = 0; i < pages; ++i) {
    if (file_cursor_ >= space.file_end()) {
      // Wrap to the hot-prefix boundary: old content gets re-read.
      const AppDescriptor& d = am_.descriptor(uid_);
      file_cursor_ = space.file_begin() + static_cast<uint32_t>(
          (space.file_end() - space.file_begin()) * d.cold_touch_fraction);
    }
    frame.vpns.push_back(file_cursor_++);
  }
}

void Scenario::AppendAnonAlloc(AddressSpace& space, FrameWork& frame, uint32_t pages) {
  // Allocations cycle through a bounded ring above the hot prefix — like a
  // real decoded-frame ring. Under pressure the reused slots have been
  // evicted, so each lap faults them back in on the render path.
  const AppDescriptor& d = am_.descriptor(uid_);
  uint32_t ring_begin = space.native_begin() + static_cast<uint32_t>(
      (space.native_end() - space.native_begin()) * d.cold_touch_fraction * 0.8);
  uint32_t ring_end = static_cast<uint32_t>(std::min<uint64_t>(
      space.native_end(), ring_begin + params_.alloc_ring_pages));
  for (uint32_t i = 0; i < pages; ++i) {
    if (anon_cursor_ < ring_begin || anon_cursor_ >= ring_end) {
      anon_cursor_ = ring_begin;
    }
    frame.vpns.push_back(anon_cursor_++);
  }
}

std::optional<FrameWork> Scenario::NextFrame(SimTime vsync) {
  AddressSpace* space = am_.main_space(uid_);
  if (space == nullptr) {
    return std::nullopt;  // App died (LMK) mid-scenario.
  }
  if (!initialized_) {
    initialized_ = true;
    const AppDescriptor& d = am_.descriptor(uid_);
    file_cursor_ = space->file_begin() + static_cast<uint32_t>(
        (space->file_end() - space->file_begin()) * d.cold_touch_fraction);
    anon_cursor_ = space->native_begin() + static_cast<uint32_t>(
        (space->native_end() - space->native_begin()) * d.cold_touch_fraction * 0.8);
    next_burst_ = params_.burst_period == 0 ? UINT64_MAX : vsync + params_.burst_period;
    next_round_ = params_.round_period == 0 ? UINT64_MAX : vsync + params_.round_period;
  }

  FrameWork frame;
  frame.space = space;
  frame.compute_us = static_cast<SimDuration>(
      std::max(1000.0, rng_.LogNormal(static_cast<double>(params_.frame_compute_us),
                                      params_.frame_sigma)));
  if (rng_.Chance(params_.hiccup_prob)) {
    frame.compute_us += static_cast<SimDuration>(
        rng_.LogNormal(static_cast<double>(params_.hiccup_us), 0.4));
  }
  frame.vpns.reserve(params_.frame_touches + params_.frame_alloc_pages + 16);
  for (uint32_t i = 0; i < params_.frame_touches; ++i) {
    frame.vpns.push_back(SampleHotVpn(*space));
  }
  AppendAnonAlloc(*space, frame, params_.frame_alloc_pages);

  if (vsync >= next_burst_) {
    next_burst_ = vsync + params_.burst_period;
    pending_cold_file_ += params_.burst_pages;
    // A content switch costs extra decode/layout work too.
    frame.compute_us += Ms(14);
  }
  if (vsync >= next_round_) {
    next_round_ = vsync + params_.round_period;
    pending_anon_alloc_ += static_cast<uint32_t>(params_.round_alloc_pages);
    frame.compute_us += Ms(30);
  }
  if (pending_cold_file_ > 0) {
    uint32_t n = std::min(pending_cold_file_, kMaxColdPerFrame);
    pending_cold_file_ -= n;
    AppendColdFile(*space, frame, n);
  }
  if (pending_anon_alloc_ > 0) {
    uint32_t n = std::min(pending_anon_alloc_, kMaxAllocPerFrame);
    pending_anon_alloc_ -= n;
    AppendAnonAlloc(*space, frame, n);
  }
  return frame;
}

}  // namespace ice
