#include "src/workload/usage_trace.h"

#include <algorithm>
#include <memory>

#include "src/base/log.h"
#include "src/workload/scenario.h"

namespace ice {

UsageTraceRunner::UsageTraceRunner(ActivityManager& am, Choreographer& choreographer,
                                   std::vector<InstalledApp> apps, Rng rng,
                                   const Config& config)
    : am_(am),
      choreographer_(choreographer),
      apps_(std::move(apps)),
      rng_(rng),
      config_(config) {
  ICE_CHECK(!apps_.empty());
}

ScenarioKind UsageTraceRunner::KindFor(AppCategory category) {
  switch (category) {
    case AppCategory::kSocial:
      return ScenarioKind::kScrolling;
    case AppCategory::kMultiMedia:
      return ScenarioKind::kShortVideo;
    case AppCategory::kGame:
      return ScenarioKind::kGame;
    case AppCategory::kECommerce:
      return ScenarioKind::kScrolling;
    case AppCategory::kUtility:
      return ScenarioKind::kVideoCall;
  }
  return ScenarioKind::kScrolling;
}

void UsageTraceRunner::TakeSample() {
  StatsRegistry& st = am_.engine().stats();
  UsageSample s;
  s.time = am_.engine().now();
  s.cum_evicted = st.Get(stat::kPagesReclaimed);
  s.cum_refaulted = st.Get(stat::kRefaults);
  s.cum_refault_bg = st.Get(stat::kRefaultsBg);
  samples_.push_back(s);
}

void UsageTraceRunner::RunOneSession() {
  Engine& engine = am_.engine();
  // Zipf-popular app choice: a few favorites dominate.
  size_t idx = static_cast<size_t>(rng_.Zipf(apps_.size(), 0.9));
  const InstalledApp& chosen = apps_[idx];

  am_.Launch(chosen.uid);
  Scenario scenario(am_, chosen.uid, KindFor(chosen.category), rng_.Fork());
  choreographer_.SetSource(&scenario);
  choreographer_.Start();

  SimDuration duration = static_cast<SimDuration>(
      std::max(2.0 * kSecond,
               rng_.LogNormal(static_cast<double>(config_.session_mean),
                              config_.session_sigma)));
  SimTime deadline = engine.now() + duration;
  while (engine.now() < deadline) {
    SimTime next = std::min(deadline, next_sample_);
    engine.RunUntil(next);
    if (engine.now() >= next_sample_) {
      TakeSample();
      next_sample_ += config_.sample_interval;
    }
  }
  choreographer_.SetSource(nullptr);
}

void UsageTraceRunner::Run() {
  StatsRegistry& st = am_.engine().stats();
  next_sample_ = am_.engine().now() + config_.sample_interval;
  TakeSample();
  for (int day = 0; day < config_.days; ++day) {
    auto before = st.Snapshot();
    for (int s = 0; s < config_.sessions_per_day; ++s) {
      RunOneSession();
    }
    auto delta = StatsRegistry::Diff(before, st.Snapshot());
    UsageDayStats stats;
    stats.evicted = delta[stat::kPagesReclaimed];
    stats.refaulted = delta[stat::kRefaults];
    stats.refault_bg = delta[stat::kRefaultsBg];
    stats.refault_fg = delta[stat::kRefaultsFg];
    day_stats_.push_back(stats);
  }
}

}  // namespace ice
