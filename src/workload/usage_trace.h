// Daily-usage trace generator for the §3.1 user study (Figure 3): volunteers
// use their phones normally for a month while instrumentation counts evicted
// and refaulted pages.
//
// A simulated "day" is a compressed sequence of foreground sessions: the
// user launches an app (popularity is Zipf over the installed set), interacts
// with it for a while, then switches away. Page eviction/refault statistics
// are snapshotted per day and cumulatively every sample interval.
#ifndef SRC_WORKLOAD_USAGE_TRACE_H_
#define SRC_WORKLOAD_USAGE_TRACE_H_

#include <vector>

#include "src/android/activity_manager.h"
#include "src/android/choreographer.h"
#include "src/base/rng.h"
#include "src/workload/app_catalog.h"
#include "src/workload/scenario.h"

namespace ice {

struct UsageDayStats {
  uint64_t evicted = 0;
  uint64_t refaulted = 0;
  uint64_t refault_bg = 0;
  uint64_t refault_fg = 0;
};

struct UsageSample {
  SimTime time = 0;
  uint64_t cum_evicted = 0;
  uint64_t cum_refaulted = 0;
  uint64_t cum_refault_bg = 0;
};

class UsageTraceRunner {
 public:
  struct Config {
    int days = 2;
    int sessions_per_day = 20;
    SimDuration session_mean = Sec(12);
    double session_sigma = 0.5;
    SimDuration sample_interval = Sec(30);
  };

  struct InstalledApp {
    Uid uid = kInvalidUid;
    AppCategory category = AppCategory::kUtility;
  };

  UsageTraceRunner(ActivityManager& am, Choreographer& choreographer,
                   std::vector<InstalledApp> apps, Rng rng, const Config& config);

  // Drives the engine through the configured days.
  void Run();

  const std::vector<UsageDayStats>& day_stats() const { return day_stats_; }
  const std::vector<UsageSample>& samples() const { return samples_; }

 private:
  void RunOneSession();
  void TakeSample();
  ScenarioKind KindFor(AppCategory category);

  ActivityManager& am_;
  Choreographer& choreographer_;
  std::vector<InstalledApp> apps_;
  Rng rng_;
  Config config_;

  std::vector<UsageDayStats> day_stats_;
  std::vector<UsageSample> samples_;
  SimTime next_sample_ = 0;
};

}  // namespace ice

#endif  // SRC_WORKLOAD_USAGE_TRACE_H_
