#include "src/workload/bg_activity.h"

#include <algorithm>
#include <memory>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/task.h"

namespace ice {

PeriodicTouchBehavior::Sample PeriodicTouchBehavior::SampleVpn(Rng& rng) {
  const Region* region = &params_.regions[0];
  if (params_.region_count > 1) {
    double total = params_.regions[0].weight + params_.regions[1].weight;
    if (rng.NextDouble() * total >= params_.regions[0].weight) {
      region = &params_.regions[1];
    }
  }
  uint32_t span = region->end - region->begin;
  ICE_CHECK_GT(span, 0u);
  return {region->space,
          region->begin + static_cast<uint32_t>(rng.Zipf(span, params_.zipf_s))};
}

void PeriodicTouchBehavior::Run(TaskContext& ctx) {
  if (!started_) {
    started_ = true;
    SimDuration phase =
        1 + ctx.rng().Below(static_cast<uint32_t>(std::max<SimDuration>(params_.period, 2)));
    ctx.SleepFor(phase);
    return;
  }
  while (!ctx.ShouldStop()) {
    if (!burst_open_) {
      burst_open_ = true;
      remaining_touches_ = params_.touches_per_burst;
      remaining_cpu_ = params_.cpu_per_burst;
    }
    while (remaining_touches_ > 0) {
      Sample s = SampleVpn(ctx.rng());
      --remaining_touches_;
      ctx.Touch(*s.space, s.vpn, /*write=*/false);
      if (ctx.ShouldStop()) {
        return;
      }
    }
    while (remaining_cpu_ > 0) {
      SimDuration rem = ctx.budget() > ctx.used() ? ctx.budget() - ctx.used() : 0;
      SimDuration chunk = std::min(remaining_cpu_, std::max<SimDuration>(rem, 1));
      ctx.Compute(chunk);
      remaining_cpu_ -= chunk;
      if (ctx.ShouldStop() && remaining_cpu_ > 0) {
        return;
      }
    }
    burst_open_ = false;
    // Sleep out the remainder of the (jittered) period past the burst's CPU
    // cost, keeping the duty cycle steady.
    double jitter = 1.0 + params_.jitter * (2.0 * ctx.rng().NextDouble() - 1.0);
    double sleep_target = static_cast<double>(params_.period) * jitter -
                          static_cast<double>(params_.cpu_per_burst);
    ctx.SleepFor(static_cast<SimDuration>(std::max(1.0, sleep_target)));
    return;
  }
}

void PeriodicTouchBehavior::SaveTo(BinaryWriter& w) const {
  w.Bool(started_);
  w.U32(remaining_touches_);
  w.U64(remaining_cpu_);
  w.Bool(burst_open_);
}

void PeriodicTouchBehavior::RestoreFrom(BinaryReader& r) {
  started_ = r.Bool();
  remaining_touches_ = r.U32();
  remaining_cpu_ = static_cast<SimDuration>(r.U64());
  burst_open_ = r.Bool();
}

void AttachBgActivity(ActivityManager& am, App& app, const BgActivityParams& params,
                      bool disable_gc) {
  AddressSpace* main = am.main_space(app.uid());
  AddressSpace* svc = am.service_space(app.uid());
  ICE_CHECK(main != nullptr);

  const AppDescriptor& desc = am.descriptor(app.uid());
  // Hot prefixes: the part of each region the cold launch populated.
  auto prefix_end = [](uint32_t begin, uint32_t end, double fraction) {
    return begin + static_cast<uint32_t>((end - begin) * fraction);
  };
  uint32_t java_hot = prefix_end(main->java_begin(), main->java_end(),
                                 desc.cold_touch_fraction * 0.8);
  uint32_t native_hot = prefix_end(main->native_begin(), main->native_end(),
                                   desc.cold_touch_fraction * 0.8);
  uint32_t file_hot = prefix_end(main->file_begin(), main->file_end(),
                                 desc.cold_touch_fraction);

  if (params.gc_enabled && !disable_gc && main->layout().java_pages > 0) {
    PeriodicTouchBehavior::Params gc;
    gc.regions[0] = {main, main->java_begin(),
                     std::max(java_hot, main->java_begin() + 1), 1.0};
    gc.region_count = 1;
    gc.zipf_s = 0.05;  // The mark phase is essentially uniform over the heap.
    uint32_t java_span = gc.regions[0].end - gc.regions[0].begin;
    gc.touches_per_burst =
        std::max<uint32_t>(1, static_cast<uint32_t>(java_span * params.gc_touch_fraction));
    gc.cpu_per_burst = params.gc_cpu;
    gc.period = params.gc_period;
    am.CreateAppTask(app, "HeapTaskDaemon", /*nice=*/5,
                     std::make_unique<PeriodicTouchBehavior>(gc));
  }

  if (params.main_thread_active) {
    PeriodicTouchBehavior::Params sync;
    sync.regions[0] = {main, main->native_begin(),
                       std::max(native_hot, main->native_begin() + 1), 0.55};
    sync.regions[1] = {main, main->file_begin(),
                       std::max(file_hot, main->file_begin() + 1), 0.45};
    sync.region_count = 2;
    sync.zipf_s = 0.05;  // Feed/cache parsing walks buffers broadly.
    // Size each burst so ~broad_coverage_per_30s of the prefix is touched
    // every 30 s (Fig. 4: >30 % of reclaimed pages refault within 30 s).
    uint64_t span = (sync.regions[0].end - sync.regions[0].begin) +
                    (sync.regions[1].end - sync.regions[1].begin);
    double bursts_per_30s = 30.0 * kSecond / static_cast<double>(params.sync_period);
    sync.touches_per_burst = std::max<uint32_t>(
        50, static_cast<uint32_t>(span * params.broad_coverage_per_30s / bursts_per_30s));
    sync.cpu_per_burst = params.sync_cpu;
    sync.period = params.buggy_wakeful ? params.sync_period / 3 : params.sync_period;
    am.CreateAppTask(app, "main-bg", /*nice=*/0,
                     std::make_unique<PeriodicTouchBehavior>(sync));
  }

  if (svc != nullptr && svc->total_pages() > 0) {
    PeriodicTouchBehavior::Params service;
    service.regions[0] = {svc, 0, static_cast<uint32_t>(svc->total_pages()), 1.0};
    service.region_count = 1;
    service.zipf_s = 0.7;
    service.touches_per_burst = params.service_touches;
    service.cpu_per_burst = params.service_cpu;
    service.period = params.service_period;
    am.CreateAppTask(app, "svc-worker", /*nice=*/5,
                     std::make_unique<PeriodicTouchBehavior>(service),
                     /*in_service_process=*/true);
  }
}

}  // namespace ice
