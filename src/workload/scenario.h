// The four foreground scenarios of §2.2.1 / §6.1:
//   S-A video call (WhatsApp), S-B short-form video switching (TikTok),
//   S-C screen scrolling (Facebook), S-D mobile game (PUBG Mobile).
//
// A Scenario is a FrameSource: per vsync it produces the frame's CPU work
// plus the pages the frame reads — mostly the foreground app's hot working
// set, plus scenario-specific cold content (new video buffers on a switch,
// new timeline content while scrolling, per-round allocations in the game).
#ifndef SRC_WORKLOAD_SCENARIO_H_
#define SRC_WORKLOAD_SCENARIO_H_

#include <optional>
#include <string>

#include "src/android/activity_manager.h"
#include "src/android/choreographer.h"
#include "src/base/rng.h"

namespace ice {

enum class ScenarioKind { kVideoCall, kShortVideo, kScrolling, kGame };

const char* ScenarioName(ScenarioKind kind);
const char* ScenarioLabel(ScenarioKind kind);  // "S-A".."S-D"
// The foreground app each scenario uses in the paper.
const char* ScenarioPackage(ScenarioKind kind);

struct ScenarioParams {
  // Frame CPU model: log-normal base cost plus occasional hiccups (decode
  // stalls, input bursts, layout passes). Real frame-time distributions are
  // bimodal — mostly fast frames with jank spikes — which is what lets the
  // paper report ~42 fps averages alongside moderate RIA values.
  SimDuration frame_compute_us = Us(11000);  // Median of the base lognormal.
  double frame_sigma = 0.22;
  double hiccup_prob = 0.15;
  SimDuration hiccup_us = Us(45000);
  // Hot working-set pages read per frame.
  uint32_t frame_touches = 80;
  // Fraction of frame touches that revisit the app's *whole* launched
  // footprint uniformly (scroll-back, cache lookups, asset reloads). These
  // are the foreground pages reclaim displaces under pressure; faulting them
  // back stalls the render thread.
  double revisit_fraction = 0.22;
  // Anonymous pages newly allocated per frame (render buffers, game state).
  // Allocations cycle through a bounded ring above the hot prefix — like a
  // real decoded-frame ring — so under pressure the reused slots have been
  // evicted and fault back in on the render path.
  uint32_t frame_alloc_pages = 2;
  PageCount alloc_ring_pages = BytesToPages(64 * kMiB);
  // Content switch: every `burst_period`, `burst_pages` cold file pages are
  // read (next video, next timeline screen).
  SimDuration burst_period = 0;
  uint32_t burst_pages = 0;
  // Game rounds: every `round_period`, `round_alloc_pages` anon pages are
  // allocated (the 100 MB+ PUBG battle of §6.2.1).
  SimDuration round_period = 0;
  PageCount round_alloc_pages = 0;
};

ScenarioParams ParamsFor(ScenarioKind kind);

class Scenario : public FrameSource {
 public:
  // `uid` must already be launched (or launching) in `am`.
  Scenario(ActivityManager& am, Uid uid, ScenarioKind kind, Rng rng);

  std::optional<FrameWork> NextFrame(SimTime vsync) override;

  ScenarioKind kind() const { return kind_; }
  Uid uid() const { return uid_; }

 private:
  uint32_t SampleHotVpn(AddressSpace& space);
  void AppendColdFile(AddressSpace& space, FrameWork& frame, uint32_t pages);
  void AppendAnonAlloc(AddressSpace& space, FrameWork& frame, uint32_t pages);

  ActivityManager& am_;
  Uid uid_;
  ScenarioKind kind_;
  ScenarioParams params_;
  Rng rng_;

  // Cursors into the cold regions; wrap back to the hot prefix end.
  uint32_t file_cursor_ = 0;
  uint32_t anon_cursor_ = 0;
  SimTime next_burst_ = 0;
  SimTime next_round_ = 0;
  // Cold content is drained a few hundred pages per frame so one content
  // switch or game round spreads over the following frames (like real
  // streaming decode / level loading).
  uint32_t pending_cold_file_ = 0;
  uint32_t pending_anon_alloc_ = 0;
  bool initialized_ = false;

  static constexpr uint32_t kMaxColdPerFrame = 400;
  static constexpr uint32_t kMaxAllocPerFrame = 700;
};

}  // namespace ice

#endif  // SRC_WORKLOAD_SCENARIO_H_
