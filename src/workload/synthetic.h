// Synthetic testers from §2.2.3's root-cause analysis:
//  * memtester — occupies memory but consumes almost no CPU (the open-source
//    tool the paper fills memory with);
//  * cputester — the paper's self-developed tool occupying a target CPU
//    share without memory pressure.
#ifndef SRC_WORKLOAD_SYNTHETIC_H_
#define SRC_WORKLOAD_SYNTHETIC_H_

#include "src/android/activity_manager.h"
#include "src/proc/behavior.h"

namespace ice {

// Touches every page of [begin, end) once, then sleeps forever.
class FillOnceBehavior : public Behavior {
 public:
  FillOnceBehavior(AddressSpace* space, uint32_t begin, uint32_t end)
      : space_(space), cursor_(begin), end_(end) {}

  void Run(TaskContext& ctx) override;

  bool done() const { return cursor_ >= end_; }

  void SaveTo(BinaryWriter& w) const override;
  void RestoreFrom(BinaryReader& r) override;

 private:
  AddressSpace* space_;
  uint32_t cursor_;
  uint32_t end_;
};

// Installs + launches a memtester app occupying `bytes` of anonymous memory.
// Returns its uid. The app is immediately backgroundable; it never refaults
// on its own because it touches each page exactly once.
Uid InstallMemtester(ActivityManager& am, uint64_t bytes);

// Installs + launches a cputester app whose tasks together occupy
// `cpu_fraction` of the device's total CPU capacity (e.g. 0.20 for the
// paper's 20 %). Returns its uid.
Uid InstallCputester(ActivityManager& am, double cpu_fraction, int num_cores);

}  // namespace ice

#endif  // SRC_WORKLOAD_SYNTHETIC_H_
