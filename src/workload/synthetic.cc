#include "src/workload/synthetic.h"

#include <algorithm>
#include <memory>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/task.h"

namespace ice {

void FillOnceBehavior::SaveTo(BinaryWriter& w) const { w.U32(cursor_); }

void FillOnceBehavior::RestoreFrom(BinaryReader& r) { cursor_ = r.U32(); }

void FillOnceBehavior::Run(TaskContext& ctx) {
  while (!ctx.ShouldStop()) {
    if (cursor_ >= end_) {
      ctx.SleepUntilWoken();
      return;
    }
    ctx.Touch(*space_, cursor_++, /*write=*/true);
  }
}

Uid InstallMemtester(ActivityManager& am, uint64_t bytes) {
  AppDescriptor d;
  d.package = "memtester";
  d.java_pages = 0;
  d.native_pages = BytesToPages(bytes);
  d.file_pages = BytesToPages(2 * kMiB);  // The binary itself.
  d.service_pages = 0;
  d.cold_launch_cpu = Ms(30);
  d.cold_touch_fraction = 0.0;  // Filling happens via FillOnceBehavior below.
  d.hot_launch_cpu = Ms(10);
  d.hot_touch_fraction = 0.0;
  App* app = am.Install(d);
  am.Launch(app->uid());

  AddressSpace* space = am.main_space(app->uid());
  ICE_CHECK(space != nullptr);
  am.CreateAppTask(*app, "fill", /*nice=*/5,
                   std::make_unique<FillOnceBehavior>(space, space->native_begin(),
                                                      space->native_end()));
  return app->uid();
}

Uid InstallCputester(ActivityManager& am, double cpu_fraction, int num_cores) {
  AppDescriptor d;
  d.package = "cputester";
  d.java_pages = 0;
  d.native_pages = BytesToPages(4 * kMiB);
  d.file_pages = BytesToPages(2 * kMiB);
  d.service_pages = 0;
  d.cold_launch_cpu = Ms(20);
  d.cold_touch_fraction = 0.5;
  App* app = am.Install(d);
  am.Launch(app->uid());

  // Split the target share across a few spinner tasks so no single task
  // needs more than one core.
  double total_cores = cpu_fraction * num_cores;
  int spinners = std::max(1, static_cast<int>(total_cores / 0.45) + 1);
  double duty = total_cores / spinners;
  for (int i = 0; i < spinners; ++i) {
    PeriodicLoadBehavior::Params params;
    params.period = Ms(10);
    params.compute_us = static_cast<SimDuration>(static_cast<double>(params.period) * duty);
    params.touches = 0;
    params.jitter = 0.25;
    am.CreateAppTask(*app, "spin" + std::to_string(i), /*nice=*/0,
                     std::make_unique<PeriodicLoadBehavior>(params));
  }
  return app->uid();
}

}  // namespace ice
