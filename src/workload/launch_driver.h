// Launch-latency driver for §6.3 / Figure 11: repeatedly launches the 20
// preinstalled applications round-robin (adb `am start` + Monkey-style
// foreground interaction), recording launch style and latency, and counting
// how many launches were hot in rounds 2..N (the app-caching capability).
#ifndef SRC_WORKLOAD_LAUNCH_DRIVER_H_
#define SRC_WORKLOAD_LAUNCH_DRIVER_H_

#include <vector>

#include "src/android/activity_manager.h"
#include "src/android/choreographer.h"
#include "src/base/rng.h"

namespace ice {

struct LaunchDriverResult {
  std::vector<LaunchRecord> records;
  // Hot launches per round, rounds 2..N (round 1 is all-cold by definition).
  std::vector<int> hot_per_round;

  double MeanLatencyMs() const;
  double MeanColdMs() const;
  double MeanHotMs() const;
  int TotalHot() const;
};

class LaunchDriver {
 public:
  LaunchDriver(ActivityManager& am, Choreographer& choreographer, std::vector<Uid> apps,
               Rng rng);

  // Runs `rounds` rounds; each app stays foreground for `fg_time` with
  // Monkey-style interaction before the next launch.
  LaunchDriverResult RunRounds(int rounds, SimDuration fg_time);

 private:
  ActivityManager& am_;
  Choreographer& choreographer_;
  std::vector<Uid> apps_;
  Rng rng_;
};

}  // namespace ice

#endif  // SRC_WORKLOAD_LAUNCH_DRIVER_H_
