#include "src/workload/app_catalog.h"

#include <algorithm>

#include "src/base/log.h"

namespace ice {

const char* CategoryName(AppCategory category) {
  switch (category) {
    case AppCategory::kSocial:
      return "Social";
    case AppCategory::kMultiMedia:
      return "Multi-Media";
    case AppCategory::kGame:
      return "Game";
    case AppCategory::kECommerce:
      return "E-Commerce";
    case AppCategory::kUtility:
      return "Utility";
  }
  return "?";
}

namespace {

// Footprints in MiB per category: {java, native, file}. Sized so that the
// paper's pressure setup (6 BG apps on Pixel3 / 8 on P20 plus one foreground
// app) fills the respective devices past their watermarks.
struct CategoryShape {
  uint64_t java_mib;
  uint64_t native_mib;
  uint64_t file_mib;
  SimDuration cold_cpu;
};

CategoryShape ShapeFor(AppCategory category) {
  switch (category) {
    case AppCategory::kSocial:
      return {220, 285, 385, Ms(1500)};
    case AppCategory::kMultiMedia:
      return {155, 440, 555, Ms(1700)};
    case AppCategory::kGame:
      return {120, 705, 705, Ms(2600)};
    case AppCategory::kECommerce:
      return {180, 250, 385, Ms(1300)};
    case AppCategory::kUtility:
      return {155, 220, 345, Ms(1100)};
  }
  return {170, 260, 345, Ms(1400)};
}

CatalogApp MakeApp(const std::string& package, AppCategory category,
                   const WorkloadTuning& tuning, bool main_thread_active,
                   bool perceptible = false, bool buggy = false) {
  CatalogApp app;
  app.category = category;
  CategoryShape shape = ShapeFor(category);
  double fs = tuning.footprint_scale;
  app.descriptor.package = package;
  app.descriptor.java_pages = BytesToPages(static_cast<uint64_t>(shape.java_mib * fs) * kMiB);
  app.descriptor.native_pages =
      BytesToPages(static_cast<uint64_t>(shape.native_mib * fs) * kMiB);
  app.descriptor.file_pages = BytesToPages(static_cast<uint64_t>(shape.file_mib * fs) * kMiB);
  app.descriptor.cold_launch_cpu = shape.cold_cpu;
  app.descriptor.perceptible_in_bg = perceptible;

  app.bg.main_thread_active = main_thread_active;
  app.bg.buggy_wakeful = buggy;
  double as = tuning.bg_activity_scale;
  if (as > 0 && as != 1.0) {
    app.bg.gc_period = static_cast<SimDuration>(app.bg.gc_period / as);
    app.bg.sync_period = static_cast<SimDuration>(app.bg.sync_period / as);
    app.bg.service_period = static_cast<SimDuration>(app.bg.service_period / as);
  }
  // Category flavor: games GC rarely in BG but hold big native heaps; social
  // apps sync aggressively; media apps prefetch file content.
  switch (category) {
    case AppCategory::kSocial:
      app.bg.sync_period = app.bg.sync_period * 3 / 4;
      app.bg.broad_coverage_per_30s = 0.50;
      break;
    case AppCategory::kMultiMedia:
      app.bg.broad_coverage_per_30s = 0.48;
      app.bg.gc_touch_fraction = 0.55;
      break;
    case AppCategory::kGame:
      app.bg.gc_period = app.bg.gc_period * 2;
      app.bg.broad_coverage_per_30s = 0.34;
      break;
    case AppCategory::kECommerce:
      app.bg.broad_coverage_per_30s = 0.42;
      break;
    case AppCategory::kUtility:
      app.bg.broad_coverage_per_30s = 0.38;
      break;
  }
  return app;
}

}  // namespace

std::vector<CatalogApp> DefaultCatalog(const WorkloadTuning& tuning) {
  std::vector<CatalogApp> catalog;
  // Social (Table 3): Facebook, Skype, Twitter, WeChat, WhatsApp.
  catalog.push_back(MakeApp("Facebook", AppCategory::kSocial, tuning, true, false, true));
  catalog.push_back(MakeApp("Skype", AppCategory::kSocial, tuning, true, true));
  catalog.push_back(MakeApp("Twitter", AppCategory::kSocial, tuning, true));
  catalog.push_back(MakeApp("WeChat", AppCategory::kSocial, tuning, true));
  catalog.push_back(MakeApp("WhatsApp", AppCategory::kSocial, tuning, true, true));
  // Multi-Media: Youtube, Netflix, TikTok.
  catalog.push_back(MakeApp("Youtube", AppCategory::kMultiMedia, tuning, true));
  catalog.push_back(MakeApp("Netflix", AppCategory::kMultiMedia, tuning, false));
  catalog.push_back(MakeApp("TikTok", AppCategory::kMultiMedia, tuning, true));
  // Game: AngryBird, Arena of Valor, PUBG Mobile.
  catalog.push_back(MakeApp("AngryBird", AppCategory::kGame, tuning, false));
  catalog.push_back(MakeApp("ArenaOfValor", AppCategory::kGame, tuning, false));
  catalog.push_back(MakeApp("PUBGMobile", AppCategory::kGame, tuning, true));
  // E-Commerce: Amazon, PayPal, AliPay, eBay, Yelp.
  catalog.push_back(MakeApp("Amazon", AppCategory::kECommerce, tuning, true));
  catalog.push_back(MakeApp("PayPal", AppCategory::kECommerce, tuning, false));
  catalog.push_back(MakeApp("AliPay", AppCategory::kECommerce, tuning, false));
  catalog.push_back(MakeApp("eBay", AppCategory::kECommerce, tuning, true));
  catalog.push_back(MakeApp("Yelp", AppCategory::kECommerce, tuning, false));
  // Utility: Chrome, Camera, Uber, Google Map.
  catalog.push_back(MakeApp("Chrome", AppCategory::kUtility, tuning, true));
  catalog.push_back(MakeApp("Camera", AppCategory::kUtility, tuning, false));
  catalog.push_back(MakeApp("Uber", AppCategory::kUtility, tuning, true));
  catalog.push_back(MakeApp("GoogleMap", AppCategory::kUtility, tuning, true));
  return catalog;
}

std::vector<CatalogApp> ExtendedCatalog(Rng& rng, const WorkloadTuning& tuning) {
  std::vector<CatalogApp> catalog = DefaultCatalog(tuning);
  static const AppCategory kCats[] = {AppCategory::kSocial, AppCategory::kMultiMedia,
                                      AppCategory::kGame, AppCategory::kECommerce,
                                      AppCategory::kUtility};
  for (int i = 0; i < 20; ++i) {
    AppCategory cat = kCats[i % 5];
    bool active = rng.Chance(0.58);
    CatalogApp app = MakeApp("Extra" + std::to_string(i), cat, tuning, active);
    // Jitter footprints +-25 % so the study set is not 5 identical shapes.
    double jitter = 0.75 + 0.5 * rng.NextDouble();
    app.descriptor.java_pages = static_cast<PageCount>(app.descriptor.java_pages * jitter);
    app.descriptor.native_pages = static_cast<PageCount>(app.descriptor.native_pages * jitter);
    app.descriptor.file_pages = static_cast<PageCount>(app.descriptor.file_pages * jitter);
    catalog.push_back(std::move(app));
  }
  return catalog;
}

const CatalogApp* FindInCatalog(const std::vector<CatalogApp>& catalog,
                                const std::string& package) {
  for (const CatalogApp& app : catalog) {
    if (app.descriptor.package == package) {
      return &app;
    }
  }
  return nullptr;
}

}  // namespace ice
