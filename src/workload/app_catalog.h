// The application catalog: models of the 20 popular apps used throughout the
// paper's evaluation (Table 3), plus an extended 40-app set for the Fig. 4
// study. Footprints and background-activity parameters are calibrated per
// category to reproduce the paper's measured distributions (§3):
//  * ≈39 % of evicted pages refault, >60 % of refaults from BG processes;
//  * refaulted pages ≈ 48.6 % file-backed / 51.4 % anonymous;
//  * refaulted anon ≈ 56.6 % native heap / 43.4 % Java heap;
//  * 58 % of BG apps keep their main thread running; GC is one but not the
//    only source of BG refaults (77 % remain with idle GC off).
#ifndef SRC_WORKLOAD_APP_CATALOG_H_
#define SRC_WORKLOAD_APP_CATALOG_H_

#include <string>
#include <vector>

#include "src/android/activity_manager.h"
#include "src/base/rng.h"

namespace ice {

enum class AppCategory { kSocial, kMultiMedia, kGame, kECommerce, kUtility };

const char* CategoryName(AppCategory category);

// Background activity model for one app.
struct BgActivityParams {
  // ART GC sweeps over the Java heap. A mark phase walks live objects across
  // the *whole* populated heap — cold pages included — which is why GC is
  // the best-known source of BG refaults (§3.2).
  bool gc_enabled = true;
  SimDuration gc_period = Sec(15);
  double gc_touch_fraction = 0.7;  // Of the populated Java heap per sweep.
  SimDuration gc_cpu = Ms(120);

  // Main-thread background work (feed refresh, message sync): touches native
  // heap + file pages. Present only for `main_thread_active` apps (58 %).
  // Coverage is sized from the §3.2 study (Fig. 4): >30 % of an app's pages
  // are re-referenced within 30 seconds of being reclaimed in the BG, so the
  // sync task re-walks `broad_coverage_per_30s` of the native+file prefix
  // every 30 seconds.
  bool main_thread_active = true;
  SimDuration sync_period = Sec(4);
  double broad_coverage_per_30s = 0.45;
  SimDuration sync_cpu = Ms(280);

  // Service-process activity (push, location tracking).
  SimDuration service_period = Ms(2500);
  uint32_t service_touches = 70;
  SimDuration service_cpu = Ms(25);

  // Facebook-style stay-awake bug: extra frequent wakeups.
  bool buggy_wakeful = false;
};

struct CatalogApp {
  AppDescriptor descriptor;
  AppCategory category;
  BgActivityParams bg;
};

// Global calibration knobs (multipliers applied when building catalogs).
struct WorkloadTuning {
  double footprint_scale = 1.0;
  double bg_activity_scale = 1.0;  // >1 = more frequent BG work.
};

// The 20 Table-3 applications.
std::vector<CatalogApp> DefaultCatalog(const WorkloadTuning& tuning = {});

// 40 popular applications (the §3.2 study set): the default 20 plus 20
// synthesized category-mates with jittered parameters.
std::vector<CatalogApp> ExtendedCatalog(Rng& rng, const WorkloadTuning& tuning = {});

// Looks up a catalog entry by package name; null when absent.
const CatalogApp* FindInCatalog(const std::vector<CatalogApp>& catalog,
                                const std::string& package);

}  // namespace ice

#endif  // SRC_WORKLOAD_APP_CATALOG_H_
