// The swap-out policy axis: how anonymous reclaim victims are admitted into
// (and aged out of) the compressed zram pool. Two implementations share one
// governor (src/swap/governor.h):
//
//  * kBaseline — today's admit-everything behavior, bit-for-bit: every anon
//    victim compresses with the device's single codec profile and nothing is
//    ever written back; the pool hard-stops when full.
//  * kHotness — an Ariadne-style hotness-aware, size-adaptive policy:
//    every anon page carries a 3-bit decayed re-reference counter (in the
//    PageInfo flag word, same packing discipline as the gen-clock generation
//    field), refaults boost it and admission decays it. Warm pages
//    (hotness >= hot_reject_threshold) are rejected back to the LRU instead
//    of burning a compression they will immediately undo; admitted pages
//    pick a compression tier by hotness — likely-refaulters take the cheap
//    fast codec, cold bulk takes the dense one — and a FIFO of stored pages
//    is written back to flash when the pool runs hot, so reclaim self-cleans
//    instead of hard-stopping mid-batch.
//
// The policy is chosen per MemoryManager (MemConfig::swap) and threaded
// through the stack exactly like AgingPolicy: ExperimentConfig::swap,
// SweepAxes::swaps, FleetConfig::swap, icesim_cli --swap.
#ifndef SRC_SWAP_SWAP_POLICY_H_
#define SRC_SWAP_SWAP_POLICY_H_

#include <cstdint>
#include <string>

#include "src/base/units.h"

namespace ice {

enum class SwapPolicy : uint8_t { kBaseline, kHotness };

inline const char* SwapPolicyName(SwapPolicy policy) {
  return policy == SwapPolicy::kHotness ? "hotness" : "baseline";
}

// Parses the CLI/config spelling. Returns false (and leaves *out untouched)
// for unknown names so callers own the error surface.
inline bool SwapPolicyFromName(const std::string& name, SwapPolicy* out) {
  if (name == "baseline") {
    *out = SwapPolicy::kBaseline;
    return true;
  }
  if (name == "hotness") {
    *out = SwapPolicy::kHotness;
    return true;
  }
  return false;
}

// One compression codec profile: per-page CPU costs plus the log-normal
// compressed-size model, charged through the same Zram::Store cost path the
// single baseline codec uses.
struct ZramTierProfile {
  SimDuration compress_us = Us(35);
  SimDuration decompress_us = Us(15);
  double mean_ratio = 2.8;
  double ratio_sigma = 0.35;
};

struct SwapConfig {
  SwapPolicy policy = SwapPolicy::kBaseline;

  // Admission gate: anon victims with hotness >= this stay resident (put
  // back on the inactive list) instead of entering zram. 3-bit counter, so
  // 8 disables the gate entirely. The default is tuned against the decay
  // schedule: a page that refaults after every store follows
  // h -> floor(h/2) + boost, whose fixed point with boost=3 is 5 — so the
  // gate fires exactly for persistent thrashers and for nothing colder.
  uint8_t hot_reject_threshold = 5;
  // Tier split for admitted pages: hotness >= this takes the fast tier
  // (latency-critical, likely to refault soon), colder pages the dense one.
  // Must stay below hot_reject_threshold or the fast tier is unreachable.
  uint8_t fast_tier_min_hotness = 3;
  // Added to a page's hotness (saturating at 7) on every anon refault.
  uint8_t refault_hotness_boost = 3;

  // LZ4-fast class: cheap both ways, worse ratio.
  ZramTierProfile fast{Us(18), Us(8), 2.2, 0.30};
  // zstd class: dense and slow, for cold bulk.
  ZramTierProfile dense{Us(55), Us(22), 3.6, 0.35};

  // Writeback of aged compressed pages: reclaim batches drain up to
  // writeback_batch FIFO-oldest stored pages to flash whenever pool
  // utilization reaches writeback_util (or a store just failed).
  double writeback_util = 0.90;
  uint32_t writeback_batch = 32;

  // A capacity reject within this window pins SwapPressure() at 1.0 — the
  // SWAM-style incompressibility signal the LMK folds into kill urgency.
  SimDuration reject_pressure_window = Ms(200);
};

// Log-bucket shape shared by every compressed-size histogram (governor,
// sweep cells, fleet groups) so partials merge without reshaping. Range
// covers kPageSize/ratio for any ratio in [1.05, 256).
inline constexpr double kZramSizeHistLo = 16.0;
inline constexpr double kZramSizeHistHi = 4096.0;
inline constexpr uint32_t kZramSizeHistBuckets = 48;

}  // namespace ice

#endif  // SRC_SWAP_SWAP_POLICY_H_
