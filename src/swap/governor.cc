#include "src/swap/governor.h"

#include "src/base/binary_stream.h"

namespace ice {

void SwapGovernor::SaveTo(BinaryWriter& w) const {
  w.U64(writeback_fifo_.size());
  for (uint64_t handle : writeback_fifo_) {
    w.U64(handle);
  }
  compressed_bytes_.SaveTo(w);
}

void SwapGovernor::RestoreFrom(BinaryReader& r) {
  writeback_fifo_.clear();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    writeback_fifo_.push_back(r.U64());
  }
  compressed_bytes_.RestoreFrom(r);
}

}  // namespace ice
