// The SwapGovernor: the decision core of the swap-out policy axis.
//
// It owns no pages and talks to no subsystem — the MemoryManager's reclaim
// path asks it questions (ShouldReject? which tier? who is the writeback
// candidate?) and notifies it of outcomes (OnStored / OnRefault / OnDropped).
// All state it keeps is deterministic bookkeeping: the writeback FIFO of
// stored-page handles and the compressed-size histogram. It deliberately
// holds no RNG — compressed-size draws stay inside Zram so the engine's RNG
// fork order (contention, zram) is identical whether or not the hotness
// policy is enabled, which is what keeps baseline runs bit-for-bit.
//
// Under SwapPolicy::kBaseline every query is a constant (never reject, no
// tiers, never write back) and the notify hooks are never called, so the
// governor is pure dead weight — by design, that is the byte-compat
// guarantee.
#ifndef SRC_SWAP_GOVERNOR_H_
#define SRC_SWAP_GOVERNOR_H_

#include <algorithm>
#include <cstdint>
#include <deque>

#include "src/base/merge_histogram.h"
#include "src/swap/swap_policy.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class SwapGovernor {
 public:
  explicit SwapGovernor(const SwapConfig& config)
      : config_(config),
        compressed_bytes_(MergeHistogram::Options{
            kZramSizeHistLo, kZramSizeHistHi, kZramSizeHistBuckets}) {}

  bool enabled() const { return config_.policy == SwapPolicy::kHotness; }
  const SwapConfig& config() const { return config_; }

  // Admission gate: warm pages stay resident rather than round-tripping
  // through a compression they will immediately undo.
  template <typename Page>
  bool ShouldReject(const Page& page) const {
    return enabled() && page.hotness() >= config_.hot_reject_threshold;
  }

  // Tier selection for an admitted page: warmer pages take the cheap fast
  // codec (they are the likely refaulters), cold bulk takes the dense one.
  template <typename Page>
  bool UseDenseTier(const Page& page) const {
    return page.hotness() < config_.fast_tier_min_hotness;
  }
  const ZramTierProfile& TierFor(bool dense) const {
    return dense ? config_.dense : config_.fast;
  }

  // Decompress cost for a refaulting zram page, by the tier it was stored
  // with (the dense bit on the page record).
  template <typename Page>
  SimDuration DecompressCost(const Page& page) const {
    return page.zram_dense() ? config_.dense.decompress_us
                             : config_.fast.decompress_us;
  }

  // Outcome hooks (called only when enabled()).
  // After a successful store: decay the page's hotness (the re-reference
  // evidence has been consumed), queue the page for eventual writeback, and
  // record the compressed size.
  template <typename Page>
  void OnStored(Page* page, uint64_t handle) {
    page->set_hotness(static_cast<uint8_t>(page->hotness() >> 1));
    writeback_fifo_.push_back(handle);
    compressed_bytes_.Add(static_cast<double>(page->zram_bytes));
  }

  // An anon refault (from zram or flash) is re-reference evidence.
  template <typename Page>
  void OnRefault(Page* page) const {
    page->set_hotness(static_cast<uint8_t>(std::min<unsigned>(
        7u, page->hotness() + config_.refault_hotness_boost)));
  }

  // A rejected victim cools by one step, so a page the gate keeps resident
  // is released after a few reclaim passes unless refaults keep re-warming
  // it — the gate cannot pin a page forever.
  template <typename Page>
  void OnRejected(Page* page) const {
    uint8_t h = page->hotness();
    if (h > 0) {
      page->set_hotness(static_cast<uint8_t>(h - 1));
    }
  }

  // FIFO-oldest stored page, or false when the queue is drained. Handles
  // can be stale (the page refaulted or its space died since it was queued);
  // the caller validates against live state and simply skips misses.
  bool PopWritebackCandidate(uint64_t* handle) {
    if (writeback_fifo_.empty()) {
      return false;
    }
    *handle = writeback_fifo_.front();
    writeback_fifo_.pop_front();
    return true;
  }
  size_t writeback_queue_depth() const { return writeback_fifo_.size(); }

  const MergeHistogram& compressed_bytes() const { return compressed_bytes_; }

  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  SwapConfig config_;
  std::deque<uint64_t> writeback_fifo_;  // Packed PageHandles, oldest first.
  MergeHistogram compressed_bytes_;
};

}  // namespace ice

#endif  // SRC_SWAP_GOVERNOR_H_
