#include "src/android/system_services.h"

#include <memory>
#include <string>

#include "src/proc/behavior.h"

namespace ice {

SystemServices::SystemServices(Scheduler& scheduler, MemoryManager& mm,
                               const SystemServicesConfig& config) {
  // kswapd: woken by the memory manager, reclaims to the high watermark.
  kswapd_ = scheduler.CreateTask("kswapd0", /*process=*/nullptr, /*nice=*/0,
                                 std::make_unique<KswapdBehavior>());
  Task* kswapd = kswapd_;
  mm.set_kswapd_waker([kswapd]() { kswapd->Wake(); });

  static const char* kNames[] = {
      "system_server", "surfaceflinger", "binder", "kworker", "netd",
      "audioserver",   "wifi",           "sensors", "logd",   "gms.core",
      "media.codec",   "vold",           "hwcomposer", "statsd",
      "cameraserver",  "installd",
  };
  for (int i = 0; i < config.service_tasks; ++i) {
    PeriodicLoadBehavior::Params params;
    params.period = config.period;
    params.compute_us =
        static_cast<SimDuration>(static_cast<double>(config.period) * config.duty);
    params.touches = 0;
    params.jitter = config.jitter;
    std::string name = kNames[i % (sizeof(kNames) / sizeof(kNames[0]))];
    tasks_.push_back(scheduler.CreateTask(name, /*process=*/nullptr, /*nice=*/0,
                                          std::make_unique<PeriodicLoadBehavior>(params)));
  }
}

}  // namespace ice
