// Choreographer: the 60 Hz vsync-driven frame pipeline.
//
// At every vsync it asks the active FrameSource (set by the running
// scenario) for the next frame's work and enqueues it on the foreground
// app's render thread. If the pipeline is already two frames deep the vsync
// is dropped — the jank the user sees. Completed frames report their
// enqueue→complete latency to FrameStats, from which FPS and RIA (§6.1's
// metrics) are derived.
#ifndef SRC_ANDROID_CHOREOGRAPHER_H_
#define SRC_ANDROID_CHOREOGRAPHER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/android/activity_manager.h"
#include "src/metrics/frame_stats.h"
#include "src/sim/engine.h"

namespace ice {

struct FrameWork {
  SimDuration compute_us = Ms(8);
  std::vector<uint32_t> vpns;
  AddressSpace* space = nullptr;
};

class FrameSource {
 public:
  virtual ~FrameSource() = default;
  // Work for the frame at `vsync`, or nullopt when the app is idle.
  virtual std::optional<FrameWork> NextFrame(SimTime vsync) = 0;
};

class Choreographer {
 public:
  explicit Choreographer(ActivityManager& am);
  ~Choreographer();

  // Starts the vsync clock (idempotent).
  void Start();

  // Sets the frame producer; nullptr idles the pipeline.
  void SetSource(FrameSource* source) { source_ = source; }

  // True once the vsync clock runs. Snapshots are only taken pre-scenario,
  // while the pipeline is still cold.
  bool started() const { return started_; }

  FrameStats& stats() { return stats_; }

  // Recycling support: stops the vsync clock and forgets all frame state, so
  // a reused pipeline matches a freshly constructed (pre-Start) one. The
  // trace runner starts the clock but never stops it, so the recycler must.
  void ResetForRecycle() {
    if (next_vsync_ != kInvalidEventId) {
      am_.engine().Cancel(next_vsync_);  // Stale after a wheel clear: no-op.
      next_vsync_ = kInvalidEventId;
    }
    started_ = false;
    source_ = nullptr;
    frame_seq_ = 0;
    stats_.Clear();
  }

  // Frames in flight on the render thread beyond which vsyncs drop. Depth 1
  // means a slow frame causes dropped vsyncs (visible jank) rather than a
  // growing latency queue — matching how the Android pipeline invalidates.
  static constexpr size_t kMaxPipelineDepth = 1;

 private:
  void OnVsync();

  ActivityManager& am_;
  FrameSource* source_ = nullptr;
  FrameStats stats_;
  bool started_ = false;
  EventId next_vsync_ = kInvalidEventId;
  // Monotonic frame id for trace correlation; advances for every issued
  // frame regardless of tracing so traced runs replay identically.
  uint64_t frame_seq_ = 0;
};

}  // namespace ice

#endif  // SRC_ANDROID_CHOREOGRAPHER_H_
