#include "src/android/device_profile.h"

#include "src/storage/flash_profiles.h"

namespace ice {

DeviceProfile Pixel3Profile() {
  DeviceProfile d;
  d.name = "Pixel3";
  d.num_cores = 8;
  d.mdt_hwm_mib = 256;
  d.full_pressure_bg_apps = 6;
  d.footprint_scale = 0.95;

  d.mem.total_pages = BytesToPages(4 * kGiB);
  // Kernel, HALs, framework, SurfaceFlinger, systemui residency.
  d.mem.os_reserved_pages = BytesToPages(1600 * kMiB);
  d.mem.wm = Watermarks::FromHigh(BytesToPages(120 * kMiB));
  d.mem.zram.capacity_bytes = 512 * kMiB;

  d.flash = Emmc51Profile();
  return d;
}

DeviceProfile P20Profile() {
  DeviceProfile d;
  d.name = "P20";
  d.num_cores = 8;
  d.mdt_hwm_mib = 1024;
  d.full_pressure_bg_apps = 8;
  d.footprint_scale = 1.22;

  d.mem.total_pages = BytesToPages(6 * kGiB);
  d.mem.os_reserved_pages = BytesToPages(2200 * kMiB);
  d.mem.wm = Watermarks::FromHigh(BytesToPages(160 * kMiB));
  d.mem.zram.capacity_bytes = 1024 * kMiB;

  d.flash = Ufs21Profile();
  return d;
}

}  // namespace ice
