#include "src/android/device_profile.h"

#include "src/base/log.h"
#include "src/storage/flash_profiles.h"

namespace ice {

DeviceProfile Pixel3Profile() {
  DeviceProfile d;
  d.name = "Pixel3";
  d.num_cores = 8;
  d.mdt_hwm_mib = 256;
  d.full_pressure_bg_apps = 6;
  d.footprint_scale = 0.95;

  d.mem.total_pages = BytesToPages(4 * kGiB);
  // Kernel, HALs, framework, SurfaceFlinger, systemui residency.
  d.mem.os_reserved_pages = BytesToPages(1600 * kMiB);
  d.mem.wm = Watermarks::FromHigh(BytesToPages(120 * kMiB));
  d.mem.zram.capacity_bytes = 512 * kMiB;

  d.flash = Emmc51Profile();
  return d;
}

DeviceProfile P20Profile() {
  DeviceProfile d;
  d.name = "P20";
  d.num_cores = 8;
  d.mdt_hwm_mib = 1024;
  d.full_pressure_bg_apps = 8;
  d.footprint_scale = 1.22;

  d.mem.total_pages = BytesToPages(6 * kGiB);
  d.mem.os_reserved_pages = BytesToPages(2200 * kMiB);
  d.mem.wm = Watermarks::FromHigh(BytesToPages(160 * kMiB));
  d.mem.zram.capacity_bytes = 1024 * kMiB;

  d.flash = Ufs21Profile();
  return d;
}

namespace {

// Shared shape for the extrapolated tiers; the mid/high rungs reuse the
// calibrated Pixel3/P20 numbers under the tier name.
DeviceProfile Tier(const char* name, uint64_t ram_mib, uint64_t reserved_mib,
                   uint64_t wm_high_mib, uint64_t zram_mib, uint64_t hwm_mib,
                   int bg_apps, double footprint, FlashProfile flash) {
  DeviceProfile d;
  d.name = name;
  d.num_cores = 8;
  d.mdt_hwm_mib = hwm_mib;
  d.full_pressure_bg_apps = bg_apps;
  d.footprint_scale = footprint;
  d.mem.total_pages = BytesToPages(ram_mib * kMiB);
  d.mem.os_reserved_pages = BytesToPages(reserved_mib * kMiB);
  d.mem.wm = Watermarks::FromHigh(BytesToPages(wm_high_mib * kMiB));
  d.mem.zram.capacity_bytes = zram_mib * kMiB;
  d.flash = flash;
  return d;
}

}  // namespace

std::vector<std::string> FleetTierNames() {
  return {"entry-2g", "budget-3g", "mid-4g", "high-6g", "flagship-8g"};
}

bool IsFleetTier(const std::string& name) {
  for (const std::string& tier : FleetTierNames()) {
    if (tier == name) {
      return true;
    }
  }
  return false;
}

DeviceProfile FleetTierProfile(const std::string& name) {
  if (name == "entry-2g") {
    return Tier("entry-2g", 2048, 950, 64, 256, 96, 3, 0.75, Emmc45Profile());
  }
  if (name == "budget-3g") {
    return Tier("budget-3g", 3072, 1250, 96, 384, 160, 4, 0.85, Emmc51Profile());
  }
  if (name == "mid-4g") {
    return Tier("mid-4g", 4096, 1600, 120, 512, 256, 6, 0.95, Emmc51Profile());
  }
  if (name == "high-6g") {
    return Tier("high-6g", 6144, 2200, 160, 1024, 1024, 8, 1.22, Ufs21Profile());
  }
  if (name == "flagship-8g") {
    return Tier("flagship-8g", 8192, 2600, 200, 2048, 1536, 10, 1.35, Ufs21Profile());
  }
  ICE_CHECK(false) << "unknown fleet tier: " << name;
  return DeviceProfile{};
}

}  // namespace ice
