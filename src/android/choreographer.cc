#include "src/android/choreographer.h"

#include <utility>

#include "src/base/log.h"
#include "src/trace/trace.h"

namespace ice {

Choreographer::Choreographer(ActivityManager& am) : am_(am) {}

Choreographer::~Choreographer() {
  if (next_vsync_ != kInvalidEventId) {
    am_.engine().Cancel(next_vsync_);
  }
}

void Choreographer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  next_vsync_ = am_.engine().ScheduleAfter(kVsyncPeriod, [this]() { OnVsync(); });
}

void Choreographer::OnVsync() {
  Engine& engine = am_.engine();
  next_vsync_ = engine.ScheduleAfter(kVsyncPeriod, [this]() { OnVsync(); });

  if (source_ == nullptr) {
    return;
  }
  App* fg = am_.foreground_app();
  if (fg == nullptr || !am_.interactive(fg->uid())) {
    return;  // Nothing on screen / still launching.
  }
  WorkQueueBehavior* render = am_.render_thread(fg->uid());
  if (render == nullptr) {
    return;
  }
  if (render->pending() >= kMaxPipelineDepth) {
    // Pipeline saturated: this vsync produces no frame.
    stats_.RecordDropped(engine.now());
    ICE_TRACE(engine, TraceEventType::kFrameDeadlineMiss,
              {.uid = fg->uid(), .flags = kTraceFlagDropped, .arg0 = frame_seq_});
    return;
  }
  std::optional<FrameWork> frame = source_->NextFrame(engine.now());
  if (!frame.has_value()) {
    return;
  }

  WorkItem item;
  item.compute_us = frame->compute_us;
  item.touch_vpns = std::move(frame->vpns);
  item.space = frame->space;
  item.write = false;
  SimTime enqueue = engine.now();
  uint64_t seq = ++frame_seq_;
  Uid fg_uid = fg->uid();
  ICE_TRACE(engine, TraceEventType::kFrameBegin, {.uid = fg_uid, .arg0 = seq});
  item.on_complete = [this, enqueue, seq, fg_uid]() {
    SimTime done = am_.engine().now();
    stats_.RecordFrame(enqueue, done);
    SimDuration latency = done - enqueue;
    ICE_TRACE(am_.engine(), TraceEventType::kFrameEnd,
              {.uid = fg_uid, .arg0 = seq, .arg1 = latency});
    if (latency > kVsyncPeriod) {
      ICE_TRACE(am_.engine(), TraceEventType::kFrameDeadlineMiss,
                {.uid = fg_uid, .arg0 = seq, .arg1 = latency});
    }
  };
  render->Push(std::move(item));
}

}  // namespace ice
