#include "src/android/choreographer.h"

#include <utility>

#include "src/base/log.h"

namespace ice {

Choreographer::Choreographer(ActivityManager& am) : am_(am) {}

Choreographer::~Choreographer() {
  if (next_vsync_ != kInvalidEventId) {
    am_.engine().Cancel(next_vsync_);
  }
}

void Choreographer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  next_vsync_ = am_.engine().ScheduleAfter(kVsyncPeriod, [this]() { OnVsync(); });
}

void Choreographer::OnVsync() {
  Engine& engine = am_.engine();
  next_vsync_ = engine.ScheduleAfter(kVsyncPeriod, [this]() { OnVsync(); });

  if (source_ == nullptr) {
    return;
  }
  App* fg = am_.foreground_app();
  if (fg == nullptr || !am_.interactive(fg->uid())) {
    return;  // Nothing on screen / still launching.
  }
  WorkQueueBehavior* render = am_.render_thread(fg->uid());
  if (render == nullptr) {
    return;
  }
  if (render->pending() >= kMaxPipelineDepth) {
    // Pipeline saturated: this vsync produces no frame.
    stats_.RecordDropped(engine.now());
    return;
  }
  std::optional<FrameWork> frame = source_->NextFrame(engine.now());
  if (!frame.has_value()) {
    return;
  }

  WorkItem item;
  item.compute_us = frame->compute_us;
  item.touch_vpns = std::move(frame->vpns);
  item.space = frame->space;
  item.write = false;
  SimTime enqueue = engine.now();
  item.on_complete = [this, enqueue]() {
    stats_.RecordFrame(enqueue, am_.engine().now());
  };
  render->Push(std::move(item));
}

}  // namespace ice
