// Baseline system load: kernel threads (kswapd, kworkers) and Android
// framework services (binder workers, system_server, surfaceflinger, ...).
//
// §2.2.3's Table 1 measures ~43 % average CPU utilization with no apps at
// all ("the Linux kernel and Android framework's tasks take up the CPU
// resources"); this module reproduces that baseline with a set of periodic
// service tasks, and owns the kswapd kernel thread.
#ifndef SRC_ANDROID_SYSTEM_SERVICES_H_
#define SRC_ANDROID_SYSTEM_SERVICES_H_

#include <vector>

#include "src/mem/memory_manager.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace ice {

struct SystemServicesConfig {
  // Number of periodic framework/kernel service tasks.
  int service_tasks = 14;
  // Each task runs `duty * period` of CPU every `period`.
  SimDuration period = Ms(24);
  double duty = 0.245;
  // Period jitter fraction.
  double jitter = 0.35;
};

class SystemServices {
 public:
  SystemServices(Scheduler& scheduler, MemoryManager& mm,
                 const SystemServicesConfig& config = {});

  Task* kswapd() const { return kswapd_; }
  const std::vector<Task*>& service_tasks() const { return tasks_; }

 private:
  Task* kswapd_ = nullptr;
  std::vector<Task*> tasks_;
};

}  // namespace ice

#endif  // SRC_ANDROID_SYSTEM_SERVICES_H_
