// Device profiles for the two evaluation phones (§5.1 / Table 4).
#ifndef SRC_ANDROID_DEVICE_PROFILE_H_
#define SRC_ANDROID_DEVICE_PROFILE_H_

#include <string>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/storage/block_device.h"

namespace ice {

struct DeviceProfile {
  std::string name;
  int num_cores = 8;
  MemConfig mem;
  FlashProfile flash;
  // Table 4's high-watermark parameter (MiB). This is H_wm in MDT's Eq. 1 —
  // the pressure reference point — distinct from the kernel's zone reclaim
  // watermarks in `mem.wm`, which are far smaller on real devices.
  uint64_t mdt_hwm_mib = 256;
  // BG apps cached "to fully fill the memory" in the paper's Fig. 8 setup.
  int full_pressure_bg_apps = 6;
  // Apps on a 4 GB device are configured leaner than on a 6 GB flagship;
  // applied multiplicatively to the workload's footprint scale.
  double footprint_scale = 1.0;
};

// Google Pixel3: Snapdragon 845, 4 GB DDR4, 64 GB eMMC 5.1, Android 10.
// ZRAM 512 MB, high watermark 256 (Table 4).
DeviceProfile Pixel3Profile();

// HUAWEI P20: Kirin 970, 6 GB DDR4, 64 GB UFS 2.1, Android 9.
// ZRAM 1024 MB, high watermark 1024 (Table 4).
DeviceProfile P20Profile();

// ---- Fleet device tiers ---------------------------------------------------
//
// The fleet's device axis: a RAM-size x storage-class ladder from 2 GB eMMC
// entry hardware (where LMK and direct reclaim dominate) to an 8 GB UFS
// flagship (where reclaim is rare). The mid and high tiers carry the
// calibrated Pixel3 / P20 numbers; the others extrapolate the same knobs in
// proportion. Names: entry-2g, budget-3g, mid-4g, high-6g, flagship-8g.
std::vector<std::string> FleetTierNames();
bool IsFleetTier(const std::string& name);
// Profile for a tier name; aborts on an unknown tier (callers validate with
// IsFleetTier first when the name comes from user input).
DeviceProfile FleetTierProfile(const std::string& name);

}  // namespace ice

#endif  // SRC_ANDROID_DEVICE_PROFILE_H_
