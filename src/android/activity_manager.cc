#include "src/android/activity_manager.h"

#include <algorithm>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/task.h"

namespace ice {

namespace {
// §6.4.2: "it takes only tens of milliseconds to thaw an application".
constexpr SimDuration kThawLatency = Ms(45);
}  // namespace

ActivityManager::ActivityManager(Engine& engine, Scheduler& scheduler, MemoryManager& mm,
                                 Freezer& freezer)
    : engine_(engine), scheduler_(scheduler), mm_(mm), freezer_(freezer) {}

ActivityManager::~ActivityManager() {
  // Unlink every live page from the memory manager's LRU lists before the
  // address spaces are destroyed.
  for (AppEntry& e : entries_) {
    if (e.main_process != nullptr) {
      mm_.Release(e.main_process->space());
    }
    if (e.service_process != nullptr) {
      mm_.Release(e.service_process->space());
    }
  }
}

App* ActivityManager::Install(const AppDescriptor& descriptor) {
  AppEntry entry;
  entry.app = std::make_unique<App>(next_uid_++, descriptor.package);
  entry.descriptor = descriptor;
  entries_.push_back(std::move(entry));
  return entries_.back().app.get();
}

ActivityManager::AppEntry* ActivityManager::EntryOf(Uid uid) {
  for (AppEntry& e : entries_) {
    if (e.app->uid() == uid) {
      return &e;
    }
  }
  return nullptr;
}

const ActivityManager::AppEntry* ActivityManager::EntryOf(Uid uid) const {
  for (const AppEntry& e : entries_) {
    if (e.app->uid() == uid) {
      return &e;
    }
  }
  return nullptr;
}

App* ActivityManager::FindApp(Uid uid) {
  AppEntry* e = EntryOf(uid);
  return e == nullptr ? nullptr : e->app.get();
}

App* ActivityManager::FindAppByPid(Pid pid) {
  for (AppEntry& e : entries_) {
    for (Process* p : e.app->processes()) {
      if (p->pid() == pid) {
        return e.app.get();
      }
    }
  }
  return nullptr;
}

const AppDescriptor& ActivityManager::descriptor(Uid uid) const {
  const AppEntry* e = EntryOf(uid);
  ICE_CHECK(e != nullptr) << "unknown uid " << uid;
  return e->descriptor;
}

std::vector<App*> ActivityManager::apps() {
  std::vector<App*> out;
  out.reserve(entries_.size());
  for (AppEntry& e : entries_) {
    out.push_back(e.app.get());
  }
  return out;
}

WorkQueueBehavior* ActivityManager::main_thread(Uid uid) {
  AppEntry* e = EntryOf(uid);
  return e == nullptr ? nullptr : e->main_thread;
}

WorkQueueBehavior* ActivityManager::render_thread(Uid uid) {
  AppEntry* e = EntryOf(uid);
  return e == nullptr ? nullptr : e->render_thread;
}

AddressSpace* ActivityManager::main_space(Uid uid) {
  AppEntry* e = EntryOf(uid);
  if (e == nullptr || e->main_process == nullptr) {
    return nullptr;
  }
  return &e->main_process->space();
}

AddressSpace* ActivityManager::service_space(Uid uid) {
  AppEntry* e = EntryOf(uid);
  if (e == nullptr || e->service_process == nullptr) {
    return nullptr;
  }
  return &e->service_process->space();
}

Process* ActivityManager::main_process(Uid uid) {
  AppEntry* e = EntryOf(uid);
  return e == nullptr ? nullptr : e->main_process.get();
}

bool ActivityManager::interactive(Uid uid) const {
  const AppEntry* e = EntryOf(uid);
  return e != nullptr && e->interactive;
}

Task* ActivityManager::CreateAppTask(App& app, const std::string& name, int nice,
                                     std::unique_ptr<Behavior> behavior,
                                     bool in_service_process) {
  AppEntry* e = EntryOf(app.uid());
  ICE_CHECK(e != nullptr);
  Process* proc = in_service_process ? e->service_process.get() : e->main_process.get();
  ICE_CHECK(proc != nullptr) << app.package() << " is not running";
  return scheduler_.CreateTask(app.package() + ":" + name, proc, nice, std::move(behavior));
}

void ActivityManager::StartProcesses(AppEntry& entry) {
  const AppDescriptor& d = entry.descriptor;
  App& app = *entry.app;
  lifecycle_log_.push_back({0, app.uid()});

  AddressSpaceLayout main_layout;
  main_layout.java_pages = d.java_pages;
  main_layout.native_pages = d.native_pages;
  main_layout.file_pages = d.file_pages;
  entry.main_process =
      std::make_unique<Process>(next_pid_++, &app, d.package, main_layout);
  app.AddProcess(entry.main_process.get());
  mm_.Register(entry.main_process->space());

  AddressSpaceLayout service_layout;
  service_layout.native_pages = d.service_pages;
  service_layout.file_pages = d.service_pages / 2;
  entry.service_process =
      std::make_unique<Process>(next_pid_++, &app, d.package + ":svc", service_layout);
  app.AddProcess(entry.service_process.get());
  mm_.Register(entry.service_process->space());

  // Android boosts the top-app's UI and render threads (top-app cpuset /
  // elevated share); stock CFS still schedules them fairly against runnable
  // peers, but they are not starved by background bursts. Note this does
  // NOT protect them from non-preemptive direct reclaim or fault blocking —
  // the §2.2.3 priority inversion applies regardless of nice values.
  constexpr int kTopAppNice = -4;
  auto ui = std::make_unique<WorkQueueBehavior>();
  entry.main_thread = ui.get();
  Task* ui_task = scheduler_.CreateTask(d.package + ":ui", entry.main_process.get(),
                                        kTopAppNice, std::move(ui));
  entry.main_thread->BindTask(ui_task);

  auto render = std::make_unique<WorkQueueBehavior>();
  entry.render_thread = render.get();
  Task* render_task = scheduler_.CreateTask(d.package + ":render", entry.main_process.get(),
                                            kTopAppNice, std::move(render));
  entry.render_thread->BindTask(render_task);

  if (bg_task_factory_) {
    bg_task_factory_(*this, app);
  }
}

void ActivityManager::Launch(Uid uid, LaunchCallback on_interactive) {
  AppEntry* e = EntryOf(uid);
  ICE_CHECK(e != nullptr) << "launching uninstalled uid " << uid;
  App& app = *e->app;

  LaunchRecord record;
  record.uid = uid;
  record.start = engine_.now();
  record.cold = !app.running();

  bool was_frozen = false;
  if (record.cold) {
    engine_.stats().Increment(stat::kColdLaunches);
    StartProcesses(*e);
  } else {
    engine_.stats().Increment(stat::kHotLaunches);
    if (app.frozen()) {
      // Thaw-on-launch (§4.4): a frozen app must be thawed before it can
      // respond; the thaw happens before the app is displayed and costs
      // tens of milliseconds (§6.4.2).
      was_frozen = true;
      freezer_.ThawApp(app);
    }
  }
  e->interactive = false;

  SetForeground(*e);

  // Build the launch work item.
  const AppDescriptor& d = e->descriptor;
  AddressSpace& space = e->main_process->space();
  WorkItem item;
  item.space = &space;
  item.write = false;

  if (record.cold) {
    item.compute_us = d.cold_launch_cpu;
    // Cold launch reads the code/resource prefix from flash and faults in
    // the initial heap: contiguous prefixes of each region.
    auto add_prefix = [&item](uint32_t begin, uint32_t end, double fraction) {
      uint32_t count = static_cast<uint32_t>((end - begin) * fraction);
      for (uint32_t vpn = begin; vpn < begin + count; ++vpn) {
        item.touch_vpns.push_back(vpn);
      }
    };
    add_prefix(space.file_begin(), space.file_end(), d.cold_touch_fraction);
    add_prefix(space.java_begin(), space.java_end(), d.cold_touch_fraction * 0.8);
    add_prefix(space.native_begin(), space.native_end(), d.cold_touch_fraction * 0.8);
  } else {
    item.compute_us = d.hot_launch_cpu;
    if (was_frozen) {
      item.compute_us += kThawLatency;
    }
    // Hot launch re-touches the front of the hot working set; any of those
    // pages that were reclaimed while cached refault now.
    auto add_prefix = [&item](uint32_t begin, uint32_t end, double fraction) {
      uint32_t count = static_cast<uint32_t>((end - begin) * fraction);
      for (uint32_t vpn = begin; vpn < begin + count; ++vpn) {
        item.touch_vpns.push_back(vpn);
      }
    };
    add_prefix(space.file_begin(), space.file_end(), d.hot_touch_fraction);
    add_prefix(space.java_begin(), space.java_end(), d.hot_touch_fraction);
    add_prefix(space.native_begin(), space.native_end(), d.hot_touch_fraction);
  }

  // Only the interactive prefix of the working set is populated before the
  // app is usable; the rest streams in afterwards (real launches do not
  // fault the whole footprint before first draw).
  WorkItem tail;
  tail.space = item.space;
  tail.write = false;
  if (record.cold && item.touch_vpns.size() > 512) {
    size_t split = item.touch_vpns.size() * 2 / 5;
    tail.touch_vpns.assign(item.touch_vpns.begin() + static_cast<ptrdiff_t>(split),
                           item.touch_vpns.end());
    item.touch_vpns.resize(split);
  }

  size_t slot = launches_.size();
  launches_.push_back(record);
  AppEntry* entry_ptr = e;
  item.on_complete = [this, slot, entry_ptr, cb = std::move(on_interactive)]() {
    LaunchRecord& r = launches_[slot];
    r.latency = engine_.now() - r.start;
    r.completed = true;
    entry_ptr->interactive = true;
    if (cb) {
      cb(r);
    }
  };
  e->main_thread->Push(std::move(item));
  if (!tail.touch_vpns.empty()) {
    e->main_thread->Push(std::move(tail));
  }
}

void ActivityManager::SetForeground(AppEntry& entry) {
  App& app = *entry.app;
  if (foreground_ == &app) {
    return;
  }
  if (foreground_ != nullptr) {
    AppEntry* old_entry = EntryOf(foreground_->uid());
    ICE_CHECK(old_entry != nullptr);
    DemoteToBackground(*old_entry);
  }
  AppState old_state = app.state();
  foreground_ = &app;
  app.set_state(AppState::kForeground);
  app.set_oom_adj(kAdjForeground);
  app.last_foreground_time = engine_.now();
  mm_.set_foreground_uid(app.uid());
  NotifyState(app, old_state);
}

void ActivityManager::DemoteToBackground(AppEntry& entry) {
  App& app = *entry.app;
  AppState old_state = app.state();
  if (entry.descriptor.perceptible_in_bg) {
    app.set_state(AppState::kPerceptible);
    app.set_oom_adj(kAdjPerceptible);
  } else {
    app.set_state(AppState::kCached);
  }
  if (foreground_ == &app) {
    foreground_ = nullptr;
    mm_.set_foreground_uid(kInvalidUid);
  }
  RecomputeCachedAdj();
  NotifyState(app, old_state);
}

void ActivityManager::MoveForegroundToBackground() {
  if (foreground_ == nullptr) {
    return;
  }
  AppEntry* e = EntryOf(foreground_->uid());
  ICE_CHECK(e != nullptr);
  DemoteToBackground(*e);
}

void ActivityManager::RecomputeCachedAdj() {
  // Staler cached apps get higher adj (die first), mirroring Android's
  // cached-app LRU.
  std::vector<App*> cached;
  for (AppEntry& e : entries_) {
    if (e.app->running() && e.app->state() == AppState::kCached) {
      cached.push_back(e.app.get());
    }
  }
  std::sort(cached.begin(), cached.end(), [](const App* a, const App* b) {
    return a->last_foreground_time > b->last_foreground_time;
  });
  int adj = kAdjCachedBase;
  for (App* app : cached) {
    app->set_oom_adj(adj);
    adj += 10;
  }
}

void ActivityManager::KillApp(App& app) {
  AppEntry* e = EntryOf(app.uid());
  ICE_CHECK(e != nullptr);
  if (!app.running()) {
    return;
  }
  lifecycle_log_.push_back({1, app.uid()});
  AppState old_state = app.state();

  if (e->main_process != nullptr) {
    e->main_process->Kill();
    mm_.Release(e->main_process->space());
    app.RemoveProcess(e->main_process.get());
    process_graveyard_.push_back(std::move(e->main_process));
  }
  if (e->service_process != nullptr) {
    e->service_process->Kill();
    mm_.Release(e->service_process->space());
    app.RemoveProcess(e->service_process.get());
    process_graveyard_.push_back(std::move(e->service_process));
  }
  e->main_thread = nullptr;
  e->render_thread = nullptr;
  e->interactive = false;

  app.set_state(AppState::kNotRunning);
  app.set_frozen(false);
  if (foreground_ == &app) {
    foreground_ = nullptr;
    mm_.set_foreground_uid(kInvalidUid);
  }
  NotifyState(app, old_state);
  if (!replaying_) {
    for (DeathListener& l : death_listeners_) {
      l(app);
    }
  }
}

bool ActivityManager::KillOneCached() {
  App* victim = nullptr;
  for (AppEntry& e : entries_) {
    App* app = e.app.get();
    if (!app->running() || app->state() != AppState::kCached) {
      continue;
    }
    if (victim == nullptr || app->oom_adj() > victim->oom_adj()) {
      victim = app;
    }
  }
  if (victim == nullptr) {
    return false;
  }
  KillApp(*victim);
  return true;
}

void ActivityManager::KillAllForRecycle() {
  replaying_ = true;  // Suppress listeners; policy state is restored later.
  for (AppEntry& e : entries_) {
    if (e.app->running()) {
      KillApp(*e.app);
    }
  }
  replaying_ = false;
  ICE_CHECK(foreground_ == nullptr);
}

void ActivityManager::ResetForRecycle() {
  for (AppEntry& e : entries_) {
    ICE_CHECK(!e.app->running()) << e.app->package() << ": recycle with a running app";
  }
  process_graveyard_.clear();
  lifecycle_log_.clear();
  launches_.clear();
  next_pid_ = 2000;
}

void ActivityManager::NotifyState(App& app, AppState old_state) {
  if (replaying_) {
    return;
  }
  for (StateListener& l : state_listeners_) {
    l(app, old_state);
  }
}

void ActivityManager::SaveTo(BinaryWriter& w) const {
  w.U64(lifecycle_log_.size());
  for (const LifecycleEvent& ev : lifecycle_log_) {
    w.U8(ev.kind);
    w.I64(ev.uid);
  }
  w.I64(foreground_ != nullptr ? foreground_->uid() : kInvalidUid);
  w.U64(launches_.size());
  for (const LaunchRecord& rec : launches_) {
    w.I64(rec.uid);
    w.Bool(rec.cold);
    w.U64(rec.start);
    w.U64(rec.latency);
    w.Bool(rec.completed);
  }
  w.I64(next_uid_);
  w.I64(next_pid_);
  w.U64(entries_.size());
  for (const AppEntry& e : entries_) {
    w.Bool(e.interactive);
    const App& app = *e.app;
    w.U8(static_cast<uint8_t>(app.state()));
    w.I64(app.oom_adj());
    w.Bool(app.frozen());
    w.U64(app.cpu_time_us);
    w.U64(app.last_foreground_time);
  }
}

void ActivityManager::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(lifecycle_log_.empty()) << "restore into a used ActivityManager";
  // Phase 1: structural replay. Re-running the real StartProcesses/KillApp
  // paths reproduces identical pid, space-id and trace-id allocation; the
  // replayed calls append to lifecycle_log_ again, so a restored run can
  // itself be snapshotted.
  uint64_t events = r.U64();
  replaying_ = true;
  for (uint64_t i = 0; i < events; ++i) {
    uint8_t kind = r.U8();
    Uid uid = static_cast<Uid>(r.I64());
    AppEntry* e = EntryOf(uid);
    ICE_CHECK(e != nullptr) << "replay references unknown uid " << uid;
    if (kind == 0) {
      StartProcesses(*e);
    } else {
      KillApp(*e->app);
    }
  }
  replaying_ = false;

  // Phase 2: dynamic state.
  Uid fg = static_cast<Uid>(r.I64());
  foreground_ = fg == kInvalidUid ? nullptr : FindApp(fg);
  ICE_CHECK(fg == kInvalidUid || foreground_ != nullptr);
  launches_.clear();
  uint64_t launch_count = r.U64();
  launches_.reserve(launch_count);
  for (uint64_t i = 0; i < launch_count; ++i) {
    LaunchRecord rec;
    rec.uid = static_cast<Uid>(r.I64());
    rec.cold = r.Bool();
    rec.start = r.U64();
    rec.latency = r.U64();
    rec.completed = r.Bool();
    ICE_CHECK(rec.completed) << "snapshot with an in-flight launch";
    launches_.push_back(rec);
  }
  Uid next_uid = static_cast<Uid>(r.I64());
  Pid next_pid = static_cast<Pid>(r.I64());
  ICE_CHECK_EQ(next_uid, next_uid_) << "structural replay diverged (uids)";
  ICE_CHECK_EQ(next_pid, next_pid_) << "structural replay diverged (pids)";
  uint64_t entry_count = r.U64();
  ICE_CHECK_EQ(entry_count, entries_.size());
  for (AppEntry& e : entries_) {
    e.interactive = r.Bool();
    App& app = *e.app;
    app.set_state(static_cast<AppState>(r.U8()));
    app.set_oom_adj(static_cast<int>(r.I64()));
    app.set_frozen(r.Bool());
    app.cpu_time_us = r.U64();
    app.last_foreground_time = r.U64();
  }
}

}  // namespace ice
