// ActivityManager: the Android-framework analog owning application
// lifecycles — install, cold/hot launch, foreground switches, cached-app
// management, oom_score_adj maintenance, and LMK victim selection.
//
// Workload models attach background activity to apps through a TaskFactory;
// policies observe lifecycle transitions through state/death listeners (this
// is the channel ICE's daemon uses to maintain its UID→PID mapping table and
// whitelist, and to thaw on launch).
#ifndef SRC_ANDROID_ACTIVITY_MANAGER_H_
#define SRC_ANDROID_ACTIVITY_MANAGER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/mem/memory_manager.h"
#include "src/proc/app.h"
#include "src/proc/behavior.h"
#include "src/proc/freezer.h"
#include "src/proc/process.h"
#include "src/proc/scheduler.h"
#include "src/sim/engine.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

// Static description of an application (install-time knowledge).
struct AppDescriptor {
  std::string package;
  PageCount java_pages = BytesToPages(80 * kMiB);
  PageCount native_pages = BytesToPages(120 * kMiB);
  PageCount file_pages = BytesToPages(150 * kMiB);
  // Secondary (service) process footprint, all native.
  PageCount service_pages = BytesToPages(8 * kMiB);

  // Launch model: cold start burns CPU and touches a prefix of each region
  // (code + initial heap); hot start re-touches part of the hot working set.
  SimDuration cold_launch_cpu = Ms(1400);
  double cold_touch_fraction = 0.55;
  SimDuration hot_launch_cpu = Ms(120);
  double hot_touch_fraction = 0.10;

  // Music/download/call-style apps: perceptible in background (adj 200,
  // whitelisted from freezing).
  bool perceptible_in_bg = false;
};

struct LaunchRecord {
  Uid uid = kInvalidUid;
  bool cold = false;
  SimTime start = 0;
  SimDuration latency = 0;
  bool completed = false;
};

class ActivityManager {
 public:
  // (app, previous state) — fired after the transition is applied.
  using StateListener = std::function<void(App&, AppState)>;
  using DeathListener = std::function<void(App&)>;
  // Attaches workload-defined background tasks to a freshly started app.
  using TaskFactory = std::function<void(ActivityManager&, App&)>;
  using LaunchCallback = std::function<void(const LaunchRecord&)>;

  ActivityManager(Engine& engine, Scheduler& scheduler, MemoryManager& mm, Freezer& freezer);
  // Releases every live process's memory back to the MemoryManager (which
  // must outlive this object).
  ~ActivityManager();

  ActivityManager(const ActivityManager&) = delete;
  ActivityManager& operator=(const ActivityManager&) = delete;

  // ---- Install / lookup ------------------------------------------------------

  App* Install(const AppDescriptor& descriptor);
  App* FindApp(Uid uid);
  App* FindAppByPid(Pid pid);
  const AppDescriptor& descriptor(Uid uid) const;
  std::vector<App*> apps();

  void set_bg_task_factory(TaskFactory factory) { bg_task_factory_ = std::move(factory); }

  // ---- Lifecycle -------------------------------------------------------------

  // Launches (cold if not running, hot otherwise) and makes the app
  // foreground. `on_interactive` fires when the launch work completes.
  void Launch(Uid uid, LaunchCallback on_interactive = {});

  // Sends the current foreground app (if any) to the cached background.
  void MoveForegroundToBackground();

  void KillApp(App& app);
  // LMK victim selection: kills the stalest cached app. Returns false when
  // no cached app remains.
  bool KillOneCached();

  App* foreground_app() const { return foreground_; }

  // ---- Per-app plumbing --------------------------------------------------------

  // Main (UI) and render thread work queues; null when not running.
  WorkQueueBehavior* main_thread(Uid uid);
  WorkQueueBehavior* render_thread(Uid uid);
  // The app's main process address space; null when not running.
  AddressSpace* main_space(Uid uid);
  AddressSpace* service_space(Uid uid);
  Process* main_process(Uid uid);
  bool interactive(Uid uid) const;

  // Creates an extra task in the app's main process (workload helper).
  Task* CreateAppTask(App& app, const std::string& name, int nice,
                      std::unique_ptr<Behavior> behavior, bool in_service_process = false);

  // ---- Listeners ---------------------------------------------------------------

  void AddStateListener(StateListener listener) {
    state_listeners_.push_back(std::move(listener));
  }
  void AddDeathListener(DeathListener listener) {
    death_listeners_.push_back(std::move(listener));
  }

  const std::vector<LaunchRecord>& launches() const { return launches_; }

  Engine& engine() { return engine_; }
  Scheduler& scheduler() { return scheduler_; }
  MemoryManager& mm() { return mm_; }
  Freezer& freezer() { return freezer_; }

  // ---- Snapshot support -----------------------------------------------------
  // Process/task creation cannot be deserialized directly (tasks own live
  // behaviors, spaces own arenas), so the snapshot stores the *lifecycle log*
  // — the ordered StartProcesses/KillApp history — and RestoreFrom replays it
  // against a freshly constructed ActivityManager. Replay re-runs the real
  // code paths, reproducing identical pid/space-id/trace-id allocation, with
  // listeners suppressed (policy state is restored from its own sections).
  // Dynamic per-app state is then overwritten from the stream.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // ---- Recycling support ----------------------------------------------------
  // Two-phase teardown bracketing the scheduler's task destruction:
  // KillAllForRecycle kills every running app with listeners suppressed
  // (releasing their memory and marking their tasks dead); after the
  // scheduler has destroyed those dead tasks, ResetForRecycle drops the
  // process graveyard (safe only once no task references the processes) and
  // rewinds the lifecycle history so RestoreFrom sees a fresh manager.
  // Installed apps and the uid sequence are kept — the catalog is identical
  // across devices of a group.
  void KillAllForRecycle();
  void ResetForRecycle();

 private:
  struct AppEntry {
    std::unique_ptr<App> app;
    AppDescriptor descriptor;
    std::unique_ptr<Process> main_process;
    std::unique_ptr<Process> service_process;
    WorkQueueBehavior* main_thread = nullptr;    // Owned by their tasks.
    WorkQueueBehavior* render_thread = nullptr;
    bool interactive = false;
  };

  AppEntry* EntryOf(Uid uid);
  const AppEntry* EntryOf(Uid uid) const;
  void StartProcesses(AppEntry& entry);
  void SetForeground(AppEntry& entry);
  void DemoteToBackground(AppEntry& entry);
  void RecomputeCachedAdj();
  void NotifyState(App& app, AppState old_state);

  Engine& engine_;
  Scheduler& scheduler_;
  MemoryManager& mm_;
  Freezer& freezer_;

  // deque: AppEntry references stay stable as apps are installed.
  std::deque<AppEntry> entries_;
  // Dead processes are parked here: scheduler graveyard tasks keep Process*
  // backpointers, so processes must outlive the simulation.
  std::vector<std::unique_ptr<Process>> process_graveyard_;

  App* foreground_ = nullptr;
  TaskFactory bg_task_factory_;
  std::vector<StateListener> state_listeners_;
  std::vector<DeathListener> death_listeners_;
  std::vector<LaunchRecord> launches_;

  // Ordered process-creation/kill history for snapshot replay.
  struct LifecycleEvent {
    uint8_t kind;  // 0 = StartProcesses, 1 = KillApp.
    Uid uid;
  };
  std::vector<LifecycleEvent> lifecycle_log_;
  bool replaying_ = false;  // Suppresses listeners during snapshot replay.

  Uid next_uid_ = 10000;  // Android app UIDs start at 10000.
  Pid next_pid_ = 2000;
};

}  // namespace ice

#endif  // SRC_ANDROID_ACTIVITY_MANAGER_H_
