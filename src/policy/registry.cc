#include "src/policy/registry.h"

#include "src/base/log.h"
#include "src/policy/acclaim.h"
#include "src/policy/power_manager.h"
#include "src/policy/ucsg.h"

namespace ice {

SchemeRegistry& SchemeRegistry::Instance() {
  static SchemeRegistry* registry = new SchemeRegistry();
  return *registry;
}

SchemeRegistry::SchemeRegistry() {
  Register("lru_cfs", []() { return std::make_unique<LruCfsScheme>(); });
  Register("ucsg", []() { return std::make_unique<UcsgScheme>(); });
  Register("acclaim", []() { return std::make_unique<AcclaimScheme>(); });
  Register("power", []() { return std::make_unique<PowerManagerScheme>(); });
}

void SchemeRegistry::Register(const std::string& key, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, f] : factories_) {
    if (k == key) {
      f = std::move(factory);  // Re-registration overrides.
      return;
    }
  }
  factories_.emplace_back(key, std::move(factory));
}

std::unique_ptr<Scheme> SchemeRegistry::Create(const std::string& key) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, f] : factories_) {
      if (k == key) {
        factory = f;
        break;
      }
    }
  }
  if (factory) {
    return factory();
  }
  ICE_CHECK(false) << "unknown scheme '" << key << "'";
  return nullptr;
}

bool SchemeRegistry::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, f] : factories_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SchemeRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(factories_.size());
  for (const auto& [k, f] : factories_) {
    keys.push_back(k);
  }
  return keys;
}

std::unique_ptr<Scheme> MakeScheme(const std::string& key) {
  return SchemeRegistry::Instance().Create(key);
}

}  // namespace ice
