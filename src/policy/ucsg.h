// UCSG (Tseng et al., DAC'14): user-centric scheduling. The foreground
// application dominates the user's attention, so its processes get elevated
// scheduling priority while background processes are demoted. Purely a
// process-scheduling change: memory management stays stock.
#ifndef SRC_POLICY_UCSG_H_
#define SRC_POLICY_UCSG_H_

#include "src/policy/scheme.h"

namespace ice {

class UcsgScheme : public Scheme {
 public:
  // Nice deltas applied to app tasks by state.
  static constexpr int kForegroundNice = -10;
  static constexpr int kBackgroundNice = 7;

  std::string name() const override { return "UCSG"; }
  void Install(const SystemRefs& refs) override;

 private:
  void ApplyNice(App& app, int nice);

  ActivityManager* am_ = nullptr;
};

}  // namespace ice

#endif  // SRC_POLICY_UCSG_H_
