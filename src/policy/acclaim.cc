#include "src/policy/acclaim.h"

#include "src/base/log.h"
#include "src/mem/address_space.h"

namespace ice {

void AcclaimScheme::Install(const SystemRefs& refs) {
  ICE_CHECK(refs.mm != nullptr);
  MemoryManager* mm = refs.mm;
  // FAE: rotate foreground-owned candidates back onto the LRU instead of
  // evicting them. The scan budget in the LRU core bounds how long reclaim
  // keeps skipping, mirroring Acclaim's bounded protection.
  mm->set_victim_filter([mm](const AddressSpace& space, const PageInfo&) {
    Uid fg = mm->foreground_uid();
    return fg != kInvalidUid && space.uid() == fg;
  });
}

}  // namespace ice
