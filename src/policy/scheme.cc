#include "src/policy/scheme.h"

namespace ice {

void LruCfsScheme::Install(const SystemRefs& refs) {
  // The stock kernel: completely fair scheduling, pure-LRU reclaim, no
  // freezing. Nothing to wire.
  (void)refs;
}

}  // namespace ice
