// Scheme: a pluggable memory/process-management policy. The four evaluated
// schemes (§5.2) are LRU+CFS (baseline, no-op), UCSG, Acclaim, and Ice; the
// power-manager freezer of §6.2.1 is a fifth.
//
// A scheme is installed once onto a built system and wires itself into the
// relevant hooks: scheduler nice values (UCSG), reclaim victim filter
// (Acclaim), refault events + freezer (Ice, power manager).
#ifndef SRC_POLICY_SCHEME_H_
#define SRC_POLICY_SCHEME_H_

#include <string>

#include "src/android/activity_manager.h"
#include "src/mem/memory_manager.h"
#include "src/storage/block_device.h"
#include "src/proc/freezer.h"
#include "src/proc/scheduler.h"
#include "src/sim/engine.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct SystemRefs {
  Engine* engine = nullptr;
  MemoryManager* mm = nullptr;
  Scheduler* scheduler = nullptr;
  Freezer* freezer = nullptr;
  ActivityManager* am = nullptr;
  BlockDevice* storage = nullptr;
};

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  // Wires the scheme into the system. Called exactly once, before any
  // workload runs.
  virtual void Install(const SystemRefs& refs) = 0;

  // ---- Snapshot support -----------------------------------------------------
  // Stateless schemes (LRU+CFS, UCSG, Acclaim keep all their state in tasks
  // and hooks) use these defaults. Schemes with timers or learned state (Ice,
  // PowerMgr) override all three: BeginRestore cancels any events Install
  // armed — the engine clock can only be restored onto an empty wheel — and
  // RestoreFrom re-arms them with the snapshot's event sequence numbers.
  virtual void SaveTo(BinaryWriter& w) const { (void)w; }
  virtual void BeginRestore() {}
  virtual void RestoreFrom(BinaryReader& r) { (void)r; }
};

// LRU + CFS: the stock Linux baseline. Installs nothing.
class LruCfsScheme : public Scheme {
 public:
  std::string name() const override { return "LRU+CFS"; }
  void Install(const SystemRefs& refs) override;
};

}  // namespace ice

#endif  // SRC_POLICY_SCHEME_H_
