// Name → scheme factory registry, so experiments and benches can select
// policies by string ("lru_cfs", "ucsg", "acclaim", "power", "ice").
// ICE registers itself from its own library (see src/ice/daemon.cc).
#ifndef SRC_POLICY_REGISTRY_H_
#define SRC_POLICY_REGISTRY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/policy/scheme.h"

namespace ice {

// Thread-safe: sweep workers construct Experiments (which re-register the
// ICE scheme) and create schemes concurrently.
class SchemeRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheme>()>;

  static SchemeRegistry& Instance();

  void Register(const std::string& key, Factory factory);

  // Creates the named scheme; aborts on unknown keys.
  std::unique_ptr<Scheme> Create(const std::string& key) const;

  bool Contains(const std::string& key) const;
  std::vector<std::string> Keys() const;

 private:
  SchemeRegistry();
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> factories_;
};

// Convenience wrapper.
std::unique_ptr<Scheme> MakeScheme(const std::string& key);

}  // namespace ice

#endif  // SRC_POLICY_REGISTRY_H_
