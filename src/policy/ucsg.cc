#include "src/policy/ucsg.h"

#include "src/base/log.h"
#include "src/proc/process.h"
#include "src/proc/task.h"

namespace ice {

void UcsgScheme::ApplyNice(App& app, int nice) {
  for (Process* process : app.processes()) {
    for (Task* task : process->tasks()) {
      task->set_nice(nice);
    }
  }
}

void UcsgScheme::Install(const SystemRefs& refs) {
  ICE_CHECK(refs.am != nullptr);
  am_ = refs.am;
  am_->AddStateListener([this](App& app, AppState /*old_state*/) {
    switch (app.state()) {
      case AppState::kForeground:
        ApplyNice(app, kForegroundNice);
        break;
      case AppState::kPerceptible:
        ApplyNice(app, 0);
        break;
      case AppState::kCached:
        ApplyNice(app, kBackgroundNice);
        break;
      case AppState::kNotRunning:
        break;
    }
  });
}

}  // namespace ice
