// OEM power-manager process freezing (§6.2.1, Table 5): commercial
// smartphones freeze energy-hungry background apps to save battery. The
// policy is *power*-oriented, not memory-aware:
//  * it freezes periodically, whatever the memory pressure;
//  * the freezing target is the apps that burned the most CPU since the last
//    check (an energy proxy), not the apps causing refaults;
//  * the freezing intensity never adapts to memory pressure;
//  * many OEMs disable freezing entirely while the device charges.
#ifndef SRC_POLICY_POWER_MANAGER_H_
#define SRC_POLICY_POWER_MANAGER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/policy/scheme.h"

namespace ice {

class PowerManagerScheme : public Scheme {
 public:
  struct Config {
    // Scan period and fixed freeze duration.
    SimDuration check_period = Sec(30);
    SimDuration freeze_duration = Sec(20);
    // Apps above this CPU-time delta per check period are "energy hungry".
    SimDuration cpu_threshold = Ms(150);
    // OEM behavior: no freezing while charging.
    bool charging = false;
  };

  PowerManagerScheme() = default;
  explicit PowerManagerScheme(const Config& config) : config_(config) {}

  std::string name() const override { return "PowerMgr"; }
  void Install(const SystemRefs& refs) override;

  // Snapshot support: the periodic check and each scheduled fixed-duration
  // thaw are pending events, saved as (uid, deadline, seq) and re-armed.
  void SaveTo(BinaryWriter& w) const override;
  void BeginRestore() override;
  void RestoreFrom(BinaryReader& r) override;

 private:
  void PeriodicCheck();
  void ThawIfStillCached(Uid uid);
  void PruneFiredThaws();

  Config config_;
  SystemRefs refs_;
  std::unordered_map<Uid, uint64_t> last_cpu_us_;
  EventId check_event_ = kInvalidEventId;
  // Outstanding fixed-duration thaws; fired entries are pruned lazily.
  std::vector<std::pair<Uid, EventId>> pending_thaws_;
};

}  // namespace ice

#endif  // SRC_POLICY_POWER_MANAGER_H_
