#include "src/policy/power_manager.h"

#include <vector>

#include "src/base/log.h"

namespace ice {

void PowerManagerScheme::Install(const SystemRefs& refs) {
  ICE_CHECK(refs.engine != nullptr && refs.am != nullptr && refs.freezer != nullptr);
  refs_ = refs;
  refs_.engine->ScheduleAfter(config_.check_period, [this]() { PeriodicCheck(); });

  // Like ICE, the power manager must thaw before an app is displayed; the
  // ActivityManager already thaws on launch, so only the state bookkeeping
  // is needed here.
}

void PowerManagerScheme::PeriodicCheck() {
  refs_.engine->ScheduleAfter(config_.check_period, [this]() { PeriodicCheck(); });
  if (config_.charging) {
    return;  // OEM behavior: no freezing on the charger.
  }

  std::vector<App*> to_freeze;
  for (App* app : refs_.am->apps()) {
    uint64_t last = last_cpu_us_.count(app->uid()) ? last_cpu_us_[app->uid()] : 0;
    uint64_t delta = app->cpu_time_us - last;
    last_cpu_us_[app->uid()] = app->cpu_time_us;

    if (!app->running() || app->frozen()) {
      continue;
    }
    // Only cached background apps; perceptible (adj <= 200) are protected.
    if (app->state() != AppState::kCached || app->oom_adj() <= kAdjPerceptible) {
      continue;
    }
    if (delta >= static_cast<uint64_t>(config_.cpu_threshold)) {
      to_freeze.push_back(app);
    }
  }
  for (App* app : to_freeze) {
    refs_.freezer->FreezeApp(*app);
    Uid uid = app->uid();
    refs_.engine->ScheduleAfter(config_.freeze_duration, [this, uid]() {
      App* target = refs_.am->FindApp(uid);
      // Fixed-duration thaw, regardless of memory state.
      if (target != nullptr && target->frozen() &&
          target->state() == AppState::kCached) {
        refs_.freezer->ThawApp(*target);
      }
    });
  }
}

}  // namespace ice
