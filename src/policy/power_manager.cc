#include "src/policy/power_manager.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

void PowerManagerScheme::Install(const SystemRefs& refs) {
  ICE_CHECK(refs.engine != nullptr && refs.am != nullptr && refs.freezer != nullptr);
  refs_ = refs;
  check_event_ = refs_.engine->ScheduleAfter(config_.check_period, [this]() { PeriodicCheck(); });

  // Like ICE, the power manager must thaw before an app is displayed; the
  // ActivityManager already thaws on launch, so only the state bookkeeping
  // is needed here.
}

void PowerManagerScheme::ThawIfStillCached(Uid uid) {
  App* target = refs_.am->FindApp(uid);
  // Fixed-duration thaw, regardless of memory state.
  if (target != nullptr && target->frozen() && target->state() == AppState::kCached) {
    refs_.freezer->ThawApp(*target);
  }
}

void PowerManagerScheme::PruneFiredThaws() {
  pending_thaws_.erase(
      std::remove_if(pending_thaws_.begin(), pending_thaws_.end(),
                     [this](const std::pair<Uid, EventId>& entry) {
                       return !refs_.engine->PendingEvent(entry.second).has_value();
                     }),
      pending_thaws_.end());
}

void PowerManagerScheme::PeriodicCheck() {
  check_event_ =
      refs_.engine->ScheduleAfter(config_.check_period, [this]() { PeriodicCheck(); });
  PruneFiredThaws();
  if (config_.charging) {
    return;  // OEM behavior: no freezing on the charger.
  }

  std::vector<App*> to_freeze;
  for (App* app : refs_.am->apps()) {
    uint64_t last = last_cpu_us_.count(app->uid()) ? last_cpu_us_[app->uid()] : 0;
    uint64_t delta = app->cpu_time_us - last;
    last_cpu_us_[app->uid()] = app->cpu_time_us;

    if (!app->running() || app->frozen()) {
      continue;
    }
    // Only cached background apps; perceptible (adj <= 200) are protected.
    if (app->state() != AppState::kCached || app->oom_adj() <= kAdjPerceptible) {
      continue;
    }
    if (delta >= static_cast<uint64_t>(config_.cpu_threshold)) {
      to_freeze.push_back(app);
    }
  }
  for (App* app : to_freeze) {
    refs_.freezer->FreezeApp(*app);
    Uid uid = app->uid();
    EventId id = refs_.engine->ScheduleAfter(config_.freeze_duration,
                                             [this, uid]() { ThawIfStillCached(uid); });
    pending_thaws_.emplace_back(uid, id);
  }
}

void PowerManagerScheme::SaveTo(BinaryWriter& w) const {
  ICE_CHECK(refs_.engine != nullptr);
  // last_cpu_us_ is an unordered_map: serialize sorted by uid so identical
  // states produce identical bytes.
  std::vector<std::pair<Uid, uint64_t>> sorted(last_cpu_us_.begin(), last_cpu_us_.end());
  std::sort(sorted.begin(), sorted.end());
  w.U64(sorted.size());
  for (const auto& [uid, cpu] : sorted) {
    w.I64(uid);
    w.U64(cpu);
  }
  auto check = refs_.engine->PendingEvent(check_event_);
  ICE_CHECK(check.has_value()) << "power-manager check event is stale";
  w.U64(check->first);
  w.U64(check->second);
  uint64_t live = 0;
  for (const auto& [uid, id] : pending_thaws_) {
    if (refs_.engine->PendingEvent(id).has_value()) {
      ++live;
    }
  }
  w.U64(live);
  for (const auto& [uid, id] : pending_thaws_) {
    auto info = refs_.engine->PendingEvent(id);
    if (info.has_value()) {
      w.I64(uid);
      w.U64(info->first);
      w.U64(info->second);
    }
  }
}

void PowerManagerScheme::BeginRestore() {
  ICE_CHECK(refs_.engine != nullptr);
  if (check_event_ != kInvalidEventId) {
    refs_.engine->Cancel(check_event_);
    check_event_ = kInvalidEventId;
  }
  for (const auto& [uid, id] : pending_thaws_) {
    refs_.engine->Cancel(id);
  }
  pending_thaws_.clear();
}

void PowerManagerScheme::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(refs_.engine != nullptr);
  ICE_CHECK_EQ(check_event_, kInvalidEventId) << "BeginRestore must run first";
  last_cpu_us_.clear();
  uint64_t entries = r.U64();
  for (uint64_t i = 0; i < entries; ++i) {
    Uid uid = static_cast<Uid>(r.I64());
    last_cpu_us_[uid] = r.U64();
  }
  SimTime check_when = r.U64();
  uint64_t check_seq = r.U64();
  check_event_ = refs_.engine->ScheduleAtWithSeq(check_when, check_seq,
                                                 [this]() { PeriodicCheck(); });
  uint64_t thaws = r.U64();
  for (uint64_t i = 0; i < thaws; ++i) {
    Uid uid = static_cast<Uid>(r.I64());
    SimTime when = r.U64();
    uint64_t seq = r.U64();
    EventId id = refs_.engine->ScheduleAtWithSeq(when, seq,
                                                 [this, uid]() { ThawIfStillCached(uid); });
    pending_thaws_.emplace_back(uid, id);
  }
}

}  // namespace ice
