// Acclaim (Liang et al., USENIX ATC'20): foreground-aware memory reclaim.
//
// Its core mechanism, foreground-aware eviction (FAE), protects pages of the
// foreground application during reclaim scans and prefers background pages
// even when they are hotter — reducing FG refaults at the cost of extra BG
// eviction (the regression the paper observes in §6.1: "BG refaults have a
// higher possibility to occur in some scenarios with Acclaim").
#ifndef SRC_POLICY_ACCLAIM_H_
#define SRC_POLICY_ACCLAIM_H_

#include "src/policy/scheme.h"

namespace ice {

class AcclaimScheme : public Scheme {
 public:
  std::string name() const override { return "Acclaim"; }
  void Install(const SystemRefs& refs) override;
};

}  // namespace ice

#endif  // SRC_POLICY_ACCLAIM_H_
