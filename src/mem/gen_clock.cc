// Generation-clock (MGLRU-style) aging bodies for LruLists.
//
// The two-list scan is a pointer chase: each hop depends on the previous
// page's prev-link, so on an aged system every hop is a dependent cache
// miss. The gen-clock scan instead sweeps the contiguous per-AddressSpace
// arena in index order from a persistent hand cursor: candidate selection is
// a flag-word compare (linked? right pool? generation lags the clock?), the
// access pattern is sequential, and the next candidates are always
// hardware-prefetchable. Recency lives in the 3-bit generation number each
// linked page carries (refreshed to the pool clock on touch), not in list
// position.
//
// Determinism: the sweep order is a pure function of the hand cursor and the
// page states, both of which evolve only through the (deterministic)
// simulation — no wall clock, no addresses, no thread identity.
#include <algorithm>

#include "src/base/log.h"
#include "src/mem/lru.h"

namespace ice {

namespace {

inline void PrefetchPage(const PageInfo* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace

void LruLists::GenInsert(PageInfo* page) {
  GenState& g = gen(PoolOf(*page));
  page->set_lru_linked(true);
  page->set_generation(g.clock);
  ++g.counts[g.clock];
  ++g.linked;
}

void LruLists::GenRemove(PageInfo* page) {
  GenState& g = gen(PoolOf(*page));
  --g.counts[page->generation()];
  --g.linked;
  page->set_lru_linked(false);
}

void LruLists::GenTouch(PageInfo* page) {
  // A touch rejuvenates immediately: move the page into the current
  // generation (a counter transfer, no links to rewrite). The reference bit
  // still backs the scan's second chance for pages whose last touch
  // predates a clock advance.
  GenState& g = gen(PoolOf(*page));
  const uint8_t current = page->generation();
  if (current != g.clock) {
    --g.counts[current];
    ++g.counts[g.clock];
    page->set_generation(g.clock);
    page->set_active(true);
  }
  page->set_referenced(true);
}

void LruLists::GenPutBackInactive(PageInfo* page) {
  // Relink one generation behind the clock: old (so a later scan can take
  // it again) but not further aged than it was.
  GenState& g = gen(PoolOf(*page));
  const uint8_t behind = (g.clock + 7) & 7;
  page->set_lru_linked(true);
  page->set_generation(behind);
  ++g.counts[behind];
  ++g.linked;
}

void LruLists::GenAdvanceClock(GenState& g) {
  // Mod-8 wraparound: pages whose stored generation aliases the new clock
  // value count as young again. Accepted — the counts and the scan agree on
  // the aliased interpretation (both key on the raw 3-bit value), so the
  // structure stays consistent, and a page only benefits after surviving
  // eight full advances untouched.
  g.clock = (g.clock + 1) & 7;
}

void LruLists::GenBalance(LruPool pool) {
  GenState& g = gen(pool);
  // inactive_is_low at generation granularity: advance the clock when the
  // young generation outgrows twice the old pages, opening a fresh
  // generation so the previously-young cohort starts aging. Bounded to one
  // full turn of the wheel.
  for (int i = 0; i < 7; ++i) {
    const uint32_t young = g.counts[g.clock];
    const uint32_t old = g.linked - young;
    if (g.linked == 0 || young <= 2 * old) {
      break;
    }
    GenAdvanceClock(g);
  }
}

uint32_t LruLists::GenIsolate(LruPool pool, uint32_t max, uint32_t scan_budget,
                              const VictimFilter& filter, std::vector<PageInfo*>& out) {
  out.clear();
  GenState& g = gen(pool);
  if (g.linked == 0 || page_count_ == 0) {
    return 0;
  }
  // If every linked page sits in the current generation there is nothing old
  // to harvest: open an older one. One advance normally suffices (the next
  // bucket is empty or stale); seven visits the whole wheel.
  for (int i = 0; i < 7 && g.counts[g.clock] == g.linked; ++i) {
    GenAdvanceClock(g);
  }
  if (g.counts[g.clock] == g.linked) {
    return 0;
  }

  // Sequential sweep from the persistent hand. `hops` bounds one call to a
  // single full pass over the arena; only pages of this pool whose
  // generation lags the clock count against `scan_budget` (a hop over a
  // young, unlinked or foreign slot is one flag-word read on a streamed
  // line, not a unit of reclaim work).
  uint32_t scanned = 0;
  for (uint32_t hops = 0; hops < page_count_ && out.size() < max &&
                          scanned < scan_budget && g.counts[g.clock] != g.linked;
       ++hops) {
    const uint32_t idx = g.hand;
    g.hand = g.hand + 1 == page_count_ ? 0 : g.hand + 1;
    if (kScanBatch < page_count_) {
      const uint32_t ahead = idx + kScanBatch;
      PrefetchPage(arena_ + (ahead < page_count_ ? ahead : ahead - page_count_));
    }
    PageInfo& page = arena_[idx];
    if (!page.lru_linked() || PoolOf(page) != pool ||
        page.generation() == g.clock) {
      continue;
    }
    ++scanned;
    if (page.referenced()) {
      // Second chance: rejuvenate into the current generation.
      page.set_referenced(false);
      --g.counts[page.generation()];
      ++g.counts[g.clock];
      page.set_generation(g.clock);
      page.set_active(true);
      continue;
    }
    if (filter && filter(*owner_, page)) {
      // Protected (e.g. foreground under Acclaim): left in its lagging
      // generation, so the next pass re-examines — and re-charges — it, the
      // gen-clock analog of the two-list head rotation.
      continue;
    }
    --g.counts[page.generation()];
    --g.linked;
    page.set_lru_linked(false);
    out.push_back(&page);
  }
  return scanned;
}

}  // namespace ice
