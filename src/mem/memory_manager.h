// The memory manager: frame accounting, the page fault path, LRU reclaim
// (kswapd batches and direct reclaim), ZRAM swap and file writeback/fault-in.
//
// This is the substrate the whole reproduction stands on. The properties the
// paper depends on are modeled explicitly:
//  * memory reclaiming is non-preemptive: a task that allocates below the
//    min watermark performs direct reclaim *itself*, synchronously, no matter
//    its priority (the priority-inversion channel of §2.2.3);
//  * anonymous pages compress into ZRAM (CPU cost), dirty file pages write
//    back (I/O), clean file pages are discarded (refault = flash read);
//  * every eviction leaves a shadow entry, and a fault on a shadowed page
//    raises a RefaultEvent classified FG/BG — the signal driving ICE.
#ifndef SRC_MEM_MEMORY_MANAGER_H_
#define SRC_MEM_MEMORY_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/mem/address_space.h"
#include "src/mem/lru.h"
#include "src/mem/page.h"
#include "src/mem/shadow.h"
#include "src/mem/watermark.h"
#include "src/mem/zram.h"
#include "src/sim/engine.h"
#include "src/storage/block_device.h"
#include "src/swap/governor.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct MemConfig {
  // Page aging policy applied to every registered address space (see
  // src/mem/aging.h): the classic two-list LRU or the MGLRU-style
  // generation clock.
  AgingPolicy aging = AgingPolicy::kTwoList;
  PageCount total_pages = BytesToPages(4 * kGiB);
  // Kernel text/data + Android framework residency; never reclaimable.
  PageCount os_reserved_pages = BytesToPages(1200 * kMiB);
  Watermarks wm = Watermarks::FromHigh(BytesToPages(256 * kMiB));
  ZramConfig zram;
  // Swap-out policy (src/swap/swap_policy.h): baseline admit-everything or
  // the Ariadne-style hotness-aware, size-adaptive policy.
  SwapConfig swap;

  // Reclaim cost model (per page unless noted), calibrated to a mobile
  // little-core kswapd: ~70-80 MB/s sustained reclaim throughput. Slower
  // than demand spikes (a background GC sweep refaulting tens of MB in
  // under a second), which is what pushes the system through the min
  // watermark into direct reclaim.
  SimDuration scan_cost = Us(2);
  SimDuration unmap_cost = Us(3);
  SimDuration discard_cost = Us(1);
  SimDuration reclaim_batch_overhead = Us(400);
  SimDuration writeback_submit_cost = Us(4);
  SimDuration fault_fixed_cost = Us(8);
  SimDuration hit_cost = Us(1);

  // Mean extra fault latency (exponential) while reclaim is in progress:
  // the fault handler contends with kswapd/direct reclaim on the lru/zone
  // locks. This is the §2.2.3 "frame rendering tasks blocked by memory
  // reclaiming tasks" channel — it applies to every fault regardless of the
  // faulting task's priority (the reclaim path is non-preemptive).
  SimDuration reclaim_contention_mean = Us(450);

  // Pages per reclaim batch and per coalesced writeback bio.
  uint32_t reclaim_batch = 32;
  uint32_t writeback_batch = 8;

  // Readahead window for file fault-in: on a flash fault, up to this many
  // contiguous on-flash pages of the same space are read in one request —
  // bulk sequential restores (launches, content loads) then mostly hit.
  uint32_t readahead_pages = 16;
};

struct ReclaimResult {
  PageCount reclaimed = 0;
  // Per-pool attribution of `reclaimed` (anon + file == reclaimed).
  PageCount reclaimed_anon = 0;
  PageCount reclaimed_file = 0;
  PageCount scanned = 0;
  SimDuration cpu_us = 0;
  // True when this batch ran in an allocating task's context (direct
  // reclaim) rather than kswapd / per-process reclaim.
  bool direct = false;
};

// What a memory access cost the caller and whether it must block.
struct AccessOutcome {
  enum class Kind {
    kHit,         // Present: LRU touch only.
    kFirstTouch,  // Demand-zero / first file touch: minor fault.
    kZramFault,   // Decompressed synchronously from ZRAM.
    kIoFault,     // Flash read issued; caller must block until `waker` runs.
  };
  Kind kind = Kind::kHit;
  // Synchronous CPU the caller must account for (fault handling, zram
  // decompress, and any direct-reclaim work performed in its context).
  SimDuration cpu_us = 0;
  // True for kIoFault (and for faults that pile onto an in-flight read).
  bool blocked = false;
  // True when this access refaulted a previously evicted page.
  bool refault = false;
  // Pages reclaimed by direct reclaim in the caller's context (0 normally).
  PageCount direct_reclaimed = 0;
};

class MemoryManager {
 public:
  MemoryManager(Engine& engine, const MemConfig& config, BlockDevice* storage);

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  // ---- Fault / access path -------------------------------------------------

  // Performs one page access by (space, vpn). `waker` is invoked when an
  // I/O-blocked fault completes; it may be empty for probe accesses. Taken by
  // const reference so the hot path never constructs a std::function per
  // access — only the (rare) I/O-blocking paths copy it into the wait list.
  AccessOutcome Access(AddressSpace& space, uint32_t vpn, bool write,
                       const std::function<void()>& waker);

  // ---- Frame accounting ----------------------------------------------------

  int64_t free_pages() const { return free_pages_; }
  // MemAvailable analog: free + half the file LRU (cheaply reclaimable).
  PageCount available_pages() const;
  PageCount total_pages() const { return config_.total_pages; }
  const Watermarks& watermarks() const { return config_.wm; }
  const MemConfig& config() const { return config_; }

  // ---- Foreground tracking (set by the ActivityManager) --------------------

  void set_foreground_uid(Uid uid) { foreground_uid_ = uid; }
  Uid foreground_uid() const { return foreground_uid_; }

  // ---- Reclaim -------------------------------------------------------------

  // Pluggable victim filter (Acclaim's foreground-aware eviction). Returning
  // true skips the candidate.
  void set_victim_filter(LruLists::VictimFilter filter) { victim_filter_ = std::move(filter); }

  // kswapd protocol: the mm wakes the kswapd task through this hook whenever
  // free drops below the low watermark.
  void set_kswapd_waker(std::function<void()> waker) { kswapd_waker_ = std::move(waker); }
  // True while kswapd has been woken and free < high.
  bool KswapdShouldRun() const;
  // One background reclaim batch in kswapd context.
  ReclaimResult KswapdBatch();

  // Out-of-memory hook (LMK): invoked when reclaim cannot make progress.
  // Must return true if it freed memory.
  void set_oom_handler(std::function<bool()> handler) { oom_handler_ = std::move(handler); }

  // Per-process reclaim (Linux per-process reclaim patch, used by the Fig. 4
  // study and by tests): evicts every present page of `space`.
  ReclaimResult ReclaimAllOf(AddressSpace& space);

  // ---- Process lifecycle ---------------------------------------------------

  // Registers a new address space; its pages join the system lazily on first
  // touch.
  void Register(AddressSpace& space);
  // Releases every frame/zram slot held by `space` (process killed or exit).
  void Release(AddressSpace& space);

  // ---- Introspection -------------------------------------------------------

  ShadowRegistry& shadow() { return shadow_; }
  Zram& zram() { return zram_; }
  const SwapGovernor& swap_governor() const { return swap_gov_; }
  Engine& engine() { return engine_; }

  // SWAM-style swap/LMK coordination signal in [0, 1]: how close the
  // compressed pool is to being unable to absorb further anon reclaim.
  // Pinned at 1.0 for a window after a capacity reject; 0.0 under the
  // baseline policy (which predates the signal).
  double SwapPressure() const;
  // All registered address spaces (the "memcg" set reclaim iterates).
  const std::vector<AddressSpace*>& spaces() const { return spaces_; }
  // Page-metadata arena accounting across registered spaces: the arenas are
  // sized at construction and pinned, so `live` moves only on
  // Register/Release and `peak` is the high-water mark — the simulator's own
  // metadata footprint for this device, surfaced per fleet group so low-RAM
  // tier claims are backed by data.
  uint64_t arena_bytes_live() const { return arena_bytes_live_; }
  uint64_t arena_bytes_peak() const { return arena_bytes_peak_; }
  // Total pages on file LRUs across spaces (for MemAvailable).
  PageCount file_lru_pages() const;

  uint64_t faults_in_flight() const { return pending_faults_.size(); }

  // ---- Snapshot ------------------------------------------------------------
  // Serializes every registered space (raw arena dumps + LRU state), the
  // zram store, shadow sequence, frame accounting, and the reclaim cursor.
  // Requires a quiescent point: no in-flight flash faults, no reclaim in
  // progress (ICE_CHECKed). RestoreFrom expects `spaces_` to already hold
  // structurally identical spaces in the same registration order (process
  // creation replay) and overwrites their dynamic state.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // Recycling support: rewinds the manager to its just-constructed state so a
  // snapshot can be overlaid via RestoreFrom. Requires every address space to
  // have been Released already (the recycler kills all apps first); keeps the
  // isolation scratch and waiter pool allocations.
  void ResetForRecycle();

 private:
  // Takes one free frame for `space`, entering direct reclaim below the min
  // watermark. Reclaim/OOM costs are accumulated into `outcome`.
  void TakeFrame(AddressSpace& space, AccessOutcome& outcome);

  // Core scan: isolates candidates from both pools (proportionally) and
  // evicts up to `target` pages. Shared by kswapd and direct reclaim.
  ReclaimResult ReclaimBatch(PageCount target, bool direct);

  // Why one isolated page could not (or could) be evicted. Only kZramFull
  // means the pool has hard-stopped; a hotness rejection is a policy choice
  // and anon planning continues.
  enum class EvictOutcome : uint8_t { kEvicted, kZramFull, kRejectedHot };

  // Evicts one isolated page of `space`, attributing it to kswapd or direct
  // reclaim. On a non-kEvicted outcome the page is put back on the LRU.
  EvictOutcome EvictPage(AddressSpace& space, PageInfo* page, ReclaimResult& result,
                         bool direct);

  // Hotness policy only: drains up to `max_pages` FIFO-oldest compressed
  // pages to flash (one coalesced write bio) so the pool self-cleans.
  // Returns the number written back.
  PageCount ZramWritebackBatch(PageCount max_pages);
  AddressSpace* FindSpaceById(uint32_t space_id) const;

  void MakePresent(AddressSpace& space, PageInfo* page);
  void RecordRefaultStats(AddressSpace& space, const PageInfo& page, bool foreground);
  void FinishIoFault(AddressSpace* space, uint32_t vpn);
  void FlushWritebackBatch();
  void MaybeWakeKswapd();

  // Lock-contention penalty applied to fault costs while reclaim is active.
  SimDuration ContentionPenalty();

  // Counter cells for the fault and reclaim hot paths, resolved once at
  // construction. StatsRegistry::Counter returns pointers that stay valid
  // (and that Reset() zeroes in place), so this turns millions of string-map
  // lookups per simulated second into plain increments.
  struct HotCounters {
    explicit HotCounters(StatsRegistry& st);
    uint64_t* page_faults;
    uint64_t* zram_loads;
    uint64_t* zram_stores;
    uint64_t* direct_reclaims;
    uint64_t* kswapd_wakeups;
    uint64_t* refaults;
    uint64_t* refaults_fg;
    uint64_t* refaults_bg;
    uint64_t* refaults_anon;
    uint64_t* refaults_file;
    uint64_t* refaults_java_heap;
    uint64_t* refaults_native_heap;
    uint64_t* pages_reclaimed;
    uint64_t* pages_reclaimed_kswapd;
    uint64_t* pages_reclaimed_direct;
    uint64_t* pages_reclaimed_anon;
    uint64_t* pages_reclaimed_anon_kswapd;
    uint64_t* pages_reclaimed_anon_direct;
    uint64_t* pages_reclaimed_file;
    uint64_t* pages_reclaimed_file_kswapd;
    uint64_t* pages_reclaimed_file_direct;
    uint64_t* zram_rejects;
    uint64_t* swap_rejects_hot;
    uint64_t* swap_writeback_pages;
    uint64_t* swap_stores_fast;
    uint64_t* swap_stores_dense;
  };

  Engine& engine_;
  MemConfig config_;
  BlockDevice* storage_;  // May be null in pure-memory unit tests.
  HotCounters ct_;
  Rng contention_rng_;

  // Keeps free_pages_ in sync with the RAM the zram store itself occupies
  // (compressed data lives in RAM — evicting an anonymous page only frees
  // the *uncompressed minus compressed* difference).
  void SyncZramFrames();

  std::vector<AddressSpace*> spaces_;
  uint32_t next_space_id_ = 0;  // Assigned at Register; never reused.
  size_t reclaim_cursor_ = 0;  // Rotates fairness across spaces.
  Zram zram_;
  PageCount zram_frames_held_ = 0;
  ShadowRegistry shadow_;
  SwapGovernor swap_gov_;
  // Last capacity reject, feeding SwapPressure()'s pinned window.
  SimTime last_zram_reject_time_ = 0;
  bool has_zram_reject_ = false;

  int64_t free_pages_ = 0;
  Uid foreground_uid_ = kInvalidUid;
  uint64_t arena_bytes_live_ = 0;
  uint64_t arena_bytes_peak_ = 0;

  LruLists::VictimFilter victim_filter_;
  std::function<void()> kswapd_waker_;
  std::function<bool()> oom_handler_;
  bool kswapd_woken_ = false;
  bool in_reclaim_ = false;  // Guards against reentrant reclaim.
  // Isolation scratch reused across reclaim batches (safe: in_reclaim_ bars
  // reentry, so only one batch uses it at a time).
  std::vector<PageInfo*> isolate_scratch_;

  // Pages with an in-flight flash read and the tasks waiting on them, keyed
  // by the packed {space_id, vpn} handle (the global page-table view of a
  // page: space ids are per-manager and never reused, so a stale handle can
  // only miss, never alias).
  using WaiterList = std::vector<std::function<void()>>;
  std::unordered_map<uint64_t, WaiterList> pending_faults_;

  // Retired waiter lists, recycled so fault storms do not heap-allocate a
  // fresh vector per blocked fault.
  std::vector<WaiterList> waiter_pool_;
  WaiterList TakeWaiterList();
  void RecycleWaiterList(WaiterList&& waiters);

  // Dirty file pages coalesced into one writeback bio.
  PageCount writeback_pending_ = 0;
};

}  // namespace ice

#endif  // SRC_MEM_MEMORY_MANAGER_H_
