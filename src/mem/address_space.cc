#include "src/mem/address_space.h"

#include <utility>

#include "src/base/log.h"

namespace ice {

AddressSpace::AddressSpace(Pid pid, Uid uid, std::string name, const AddressSpaceLayout& layout)
    : pid_(pid), uid_(uid), name_(std::move(name)), layout_(layout) {
  page_count_ = layout.total();
  pages_ = std::make_unique<PageInfo[]>(page_count_);
  for (uint32_t vpn = 0; vpn < page_count_; ++vpn) {
    PageInfo& p = pages_[vpn];
    p.owner = this;
    p.vpn = vpn;
    p.kind = KindOf(vpn);
  }
}

PageInfo& AddressSpace::page(uint32_t vpn) {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

const PageInfo& AddressSpace::page(uint32_t vpn) const {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

HeapKind AddressSpace::KindOf(uint32_t vpn) const {
  if (vpn < java_end()) {
    return HeapKind::kJavaHeap;
  }
  if (vpn < native_end()) {
    return HeapKind::kNativeHeap;
  }
  return HeapKind::kFile;
}

void AddressSpace::AddResident(int64_t delta) {
  int64_t next = static_cast<int64_t>(resident_) + delta;
  ICE_CHECK_GE(next, 0);
  resident_ = static_cast<PageCount>(next);
}

void AddressSpace::AddEvicted(int64_t delta) {
  int64_t next = static_cast<int64_t>(evicted_) + delta;
  ICE_CHECK_GE(next, 0);
  evicted_ = static_cast<PageCount>(next);
}

}  // namespace ice
