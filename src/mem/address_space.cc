#include "src/mem/address_space.h"

#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

void PageArenaDeleter::operator()(PageInfo* pages) const {
  ::operator delete(static_cast<void*>(pages), std::align_val_t(kPageArenaAlign));
}

AddressSpace::AddressSpace(Pid pid, Uid uid, std::string name, const AddressSpaceLayout& layout)
    : pid_(pid), uid_(uid), name_(std::move(name)), layout_(layout) {
  page_count_ = layout.total();
  void* raw = ::operator new(page_count_ * sizeof(PageInfo), std::align_val_t(kPageArenaAlign));
  // Zero the arena before constructing: PageInfo has padding (26 payload
  // bytes in a 32-byte record), and snapshots dump the arena raw — padding
  // left as heap garbage would make otherwise-identical states compare
  // unequal byte-wise.
  std::memset(raw, 0, page_count_ * sizeof(PageInfo));
  PageInfo* pages = static_cast<PageInfo*>(raw);
  for (uint32_t vpn = 0; vpn < page_count_; ++vpn) {
    PageInfo& p = *new (pages + vpn) PageInfo();
    p.vpn = vpn;
    p.set_kind(KindOf(vpn));
  }
  pages_ = std::unique_ptr<PageInfo[], PageArenaDeleter>(pages, PageArenaDeleter{});
  lru_.BindArena(this, pages, page_count_);
}

PageInfo& AddressSpace::page(uint32_t vpn) {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

const PageInfo& AddressSpace::page(uint32_t vpn) const {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

HeapKind AddressSpace::KindOf(uint32_t vpn) const {
  if (vpn < java_end()) {
    return HeapKind::kJavaHeap;
  }
  if (vpn < native_end()) {
    return HeapKind::kNativeHeap;
  }
  return HeapKind::kFile;
}

void AddressSpace::AddResident(int64_t delta) {
  int64_t next = static_cast<int64_t>(resident_) + delta;
  ICE_CHECK_GE(next, 0);
  resident_ = static_cast<PageCount>(next);
}

void AddressSpace::AddEvicted(int64_t delta) {
  int64_t next = static_cast<int64_t>(evicted_) + delta;
  ICE_CHECK_GE(next, 0);
  evicted_ = static_cast<PageCount>(next);
}

// The arena dumps as raw bytes: links are vpn indices, not pointers.
static_assert(std::is_trivially_copyable_v<PageInfo>,
              "PageInfo must stay raw-dumpable for snapshots");

namespace {

// A freshly-constructed page record (zeroed padding, like the arena
// constructor produces) used as the byte reference for the sparse dump.
struct FreshRecord {
  alignas(alignof(PageInfo)) unsigned char bytes[sizeof(PageInfo)] = {};

  explicit FreshRecord(HeapKind kind) {
    PageInfo* p = new (bytes) PageInfo();
    p->set_kind(kind);
  }

  bool Matches(const PageInfo& record, uint32_t vpn) {
    reinterpret_cast<PageInfo*>(bytes)->vpn = vpn;
    return std::memcmp(bytes, &record, sizeof(PageInfo)) == 0;
  }
};

}  // namespace

void AddressSpace::SaveTo(BinaryWriter& w) const {
  w.U32(space_id_);
  w.U64(page_count_);
  // Sparse arena dump: only runs of records that differ from their
  // freshly-constructed state, as {u32 first vpn, u32 count, raw records}
  // extents. Typically half of an arena is untouched VA whose records are
  // byte-identical to what the constructor rebuilds, so shipping them would
  // double the stream for nothing — arena payload dominates snapshot size.
  std::vector<std::pair<uint32_t, uint32_t>> extents;
  {
    FreshRecord fresh(HeapKind::kJavaHeap);
    HeapKind kind = HeapKind::kJavaHeap;
    uint32_t run_start = 0;
    bool in_run = false;
    for (uint32_t vpn = 0; vpn < page_count_; ++vpn) {
      HeapKind k = KindOf(vpn);
      if (k != kind) {
        kind = k;
        fresh = FreshRecord(kind);
      }
      if (fresh.Matches(pages_[vpn], vpn)) {
        if (in_run) {
          extents.emplace_back(run_start, vpn - run_start);
          in_run = false;
        }
      } else if (!in_run) {
        run_start = vpn;
        in_run = true;
      }
    }
    if (in_run) {
      extents.emplace_back(run_start, static_cast<uint32_t>(page_count_) - run_start);
    }
  }
  w.U64(extents.size());
  for (const auto& [start, count] : extents) {
    w.U32(start);
    w.U32(count);
    w.Bytes(pages_.get() + start, count * sizeof(PageInfo));
  }
  w.U64(resident_);
  w.U64(evicted_);
  w.U64(total_evictions);
  w.U64(total_refaults);
  w.U32(last_flash_fault_vpn);
  lru_.SaveTo(w);
}

void AddressSpace::RestoreFrom(BinaryReader& r) {
  uint32_t space_id = r.U32();
  ICE_CHECK_EQ(space_id, space_id_) << "snapshot space-id mismatch for " << name_;
  uint64_t count = r.U64();
  ICE_CHECK_EQ(count, page_count_) << "snapshot layout mismatch for " << name_;
  // The arena was freshly constructed by the restore-mode lifecycle replay,
  // so every record outside the dumped extents already holds its saved
  // (fresh) bytes; only the extents need copying in.
  uint64_t n_extents = r.U64();
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i < n_extents; ++i) {
    uint32_t start = r.U32();
    uint32_t run = r.U32();
    if (start < prev_end || static_cast<uint64_t>(start) + run > page_count_) {
      throw std::runtime_error("snapshot: arena extent out of order or out of range for " +
                               name_);
    }
    r.Bytes(pages_.get() + start, run * sizeof(PageInfo));
    prev_end = static_cast<uint64_t>(start) + run;
  }
  resident_ = r.U64();
  evicted_ = r.U64();
  total_evictions = r.U64();
  total_refaults = r.U64();
  last_flash_fault_vpn = r.U32();
  lru_.RestoreFrom(r);
}

}  // namespace ice
