#include "src/mem/address_space.h"

#include <new>
#include <utility>

#include "src/base/log.h"

namespace ice {

void PageArenaDeleter::operator()(PageInfo* pages) const {
  ::operator delete(static_cast<void*>(pages), std::align_val_t(kPageArenaAlign));
}

AddressSpace::AddressSpace(Pid pid, Uid uid, std::string name, const AddressSpaceLayout& layout)
    : pid_(pid), uid_(uid), name_(std::move(name)), layout_(layout) {
  page_count_ = layout.total();
  void* raw = ::operator new(page_count_ * sizeof(PageInfo), std::align_val_t(kPageArenaAlign));
  PageInfo* pages = static_cast<PageInfo*>(raw);
  for (uint32_t vpn = 0; vpn < page_count_; ++vpn) {
    PageInfo& p = *new (pages + vpn) PageInfo();
    p.vpn = vpn;
    p.set_kind(KindOf(vpn));
  }
  pages_ = std::unique_ptr<PageInfo[], PageArenaDeleter>(pages, PageArenaDeleter{});
  lru_.BindArena(this, pages, page_count_);
}

PageInfo& AddressSpace::page(uint32_t vpn) {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

const PageInfo& AddressSpace::page(uint32_t vpn) const {
  ICE_CHECK_LT(vpn, page_count_);
  return pages_[vpn];
}

HeapKind AddressSpace::KindOf(uint32_t vpn) const {
  if (vpn < java_end()) {
    return HeapKind::kJavaHeap;
  }
  if (vpn < native_end()) {
    return HeapKind::kNativeHeap;
  }
  return HeapKind::kFile;
}

void AddressSpace::AddResident(int64_t delta) {
  int64_t next = static_cast<int64_t>(resident_) + delta;
  ICE_CHECK_GE(next, 0);
  resident_ = static_cast<PageCount>(next);
}

void AddressSpace::AddEvicted(int64_t delta) {
  int64_t next = static_cast<int64_t>(evicted_) + delta;
  ICE_CHECK_GE(next, 0);
  evicted_ = static_cast<PageCount>(next);
}

}  // namespace ice
