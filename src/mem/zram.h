// ZRAM: the compressed in-RAM swap device Android uses for anonymous pages.
//
// Stores compressed copies of evicted anonymous pages up to a configured
// capacity (512 MB on Pixel3, 1024 MB on P20 per Table 4). Compression and
// decompression consume CPU time in the context of whoever performs them
// (kswapd, a direct-reclaiming task, or a faulting task), which is one of
// the CPU-pressure channels §6.2.2 measures.
#ifndef SRC_MEM_ZRAM_H_
#define SRC_MEM_ZRAM_H_

#include <cstdint>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/mem/page.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct ZramConfig {
  uint64_t capacity_bytes = 512 * kMiB;
  // LZ4-class costs on a mobile big core.
  SimDuration compress_us = Us(35);
  SimDuration decompress_us = Us(15);
  // Compression ratio model: compressed size = kPageSize / ratio with ratio
  // drawn log-normally around `mean_ratio`.
  double mean_ratio = 2.8;
  double ratio_sigma = 0.35;
};

class Zram {
 public:
  Zram(const ZramConfig& config, Rng rng);

  // True when a page of typical compressed size still fits.
  bool HasRoom() const;

  // Compresses `page` into the store. Returns false (and stores nothing)
  // when the device is full. On success, sets page->zram_bytes.
  bool Store(PageInfo* page);

  // Tiered store for the hotness swap policy: same single RNG draw per call
  // as Store() — only the log-normal parameters differ — so enabling tiers
  // never shifts the compression-ratio stream's position.
  bool StoreWithRatio(PageInfo* page, double mean_ratio, double ratio_sigma);

  // Removes `page`'s compressed copy (fault-in or owner exit).
  void Drop(PageInfo* page);

  SimDuration compress_cost() const { return config_.compress_us; }
  SimDuration decompress_cost() const { return config_.decompress_us; }

  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t capacity_bytes() const { return config_.capacity_bytes; }
  uint64_t stored_pages() const { return stored_pages_; }
  double utilization() const {
    return static_cast<double>(stored_bytes_) / static_cast<double>(config_.capacity_bytes);
  }

  // Snapshot support: occupancy plus the compression-ratio RNG stream (the
  // per-page compressed sizes themselves live in PageInfo::zram_bytes).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  ZramConfig config_;
  Rng rng_;
  uint64_t stored_bytes_ = 0;
  uint64_t stored_pages_ = 0;
};

}  // namespace ice

#endif  // SRC_MEM_ZRAM_H_
