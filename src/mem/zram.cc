#include "src/mem/zram.h"

#include <algorithm>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

Zram::Zram(const ZramConfig& config, Rng rng) : config_(config), rng_(rng) {}

bool Zram::HasRoom() const {
  uint64_t typical = static_cast<uint64_t>(kPageSize / config_.mean_ratio);
  return stored_bytes_ + typical <= config_.capacity_bytes;
}

bool Zram::Store(PageInfo* page) {
  return StoreWithRatio(page, config_.mean_ratio, config_.ratio_sigma);
}

bool Zram::StoreWithRatio(PageInfo* page, double mean_ratio, double ratio_sigma) {
  ICE_CHECK(page != nullptr);
  ICE_CHECK(IsAnon(page->kind())) << "only anonymous pages swap to zram";
  double ratio = std::max(1.05, rng_.LogNormal(mean_ratio, ratio_sigma));
  uint32_t compressed = static_cast<uint32_t>(kPageSize / ratio);
  if (stored_bytes_ + compressed > config_.capacity_bytes) {
    return false;
  }
  page->zram_bytes = compressed;
  stored_bytes_ += compressed;
  ++stored_pages_;
  return true;
}

void Zram::SaveTo(BinaryWriter& w) const {
  rng_.SaveTo(w);
  w.U64(stored_bytes_);
  w.U64(stored_pages_);
}

void Zram::RestoreFrom(BinaryReader& r) {
  rng_.RestoreFrom(r);
  stored_bytes_ = r.U64();
  stored_pages_ = r.U64();
}

void Zram::Drop(PageInfo* page) {
  ICE_CHECK(page != nullptr);
  ICE_CHECK_GT(page->zram_bytes, 0u);
  ICE_CHECK_GE(stored_bytes_, page->zram_bytes);
  stored_bytes_ -= page->zram_bytes;
  ICE_CHECK_GT(stored_pages_, 0u);
  --stored_pages_;
  page->zram_bytes = 0;
}

}  // namespace ice
