// The page-aging policy axis: how LruLists decides which resident pages are
// cold. Two implementations share one facade (see src/mem/lru.h):
//
//  * kTwoList — the classic Linux active/inactive two-list LRU the rest of
//    the reproduction was built on: list order *is* recency, reclaim walks
//    the inactive tail by prev-links.
//  * kGenClock — an MGLRU-style generation clock: every linked page carries
//    a 3-bit generation number (in the PageInfo flag word), a touch
//    refreshes it to the pool's current clock value, and the reclaim scan
//    sweeps the contiguous page arena sequentially selecting pages whose
//    generation lags the clock. No list links are maintained, so the scan
//    has no pointer-chase dependency chain.
//
// The policy is chosen per MemoryManager (MemConfig::aging) and applied to
// every address space at Register time; sweeps treat it as a first-class
// axis (SweepAxes::agings, icesim_cli --aging).
#ifndef SRC_MEM_AGING_H_
#define SRC_MEM_AGING_H_

#include <cstdint>
#include <string>

namespace ice {

enum class AgingPolicy : uint8_t { kTwoList, kGenClock };

inline const char* AgingPolicyName(AgingPolicy policy) {
  return policy == AgingPolicy::kGenClock ? "gen_clock" : "two_list";
}

// Parses the CLI/config spelling. Returns false (and leaves *out untouched)
// for unknown names so callers own the error surface.
inline bool AgingPolicyFromName(const std::string& name, AgingPolicy* out) {
  if (name == "two_list") {
    *out = AgingPolicy::kTwoList;
    return true;
  }
  if (name == "gen_clock") {
    *out = AgingPolicy::kGenClock;
    return true;
  }
  return false;
}

}  // namespace ice

#endif  // SRC_MEM_AGING_H_
