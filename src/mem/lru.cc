#include "src/mem/lru.h"

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

namespace {

inline void PrefetchPage(const PageInfo* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

}  // namespace

uint32_t LruLists::IsolateCandidates(LruPool pool, uint32_t max, uint32_t scan_budget,
                                     const VictimFilter& filter, std::vector<PageInfo*>& out) {
  if (aging_ == AgingPolicy::kGenClock) {
    return GenIsolate(pool, max, scan_budget, filter, out);
  }
  out.clear();
  IndexList& inactive = list(pool, false);
  IndexList& active = list(pool, true);

  // Scan from the inactive tail in gathered batches. Each refill walks the
  // prev-links for up to kScanBatch candidates and prefetches their records,
  // so by the time a candidate's flags are inspected its cache line is
  // (usually) already in flight. Processing a page only ever unlinks *that*
  // page (isolate), or moves it to the active list (second chance) or the
  // inactive head (filter rotation) — never a not-yet-processed batch entry —
  // so the gathered tail segment stays a valid walk of the list.
  uint32_t scanned = 0;
  uint32_t batch[kScanBatch];
  while (out.size() < max && scanned < scan_budget && inactive.size != 0) {
    uint32_t batch_len = 0;
    uint32_t cursor = inactive.tail;
    while (cursor != kNoPage && batch_len < kScanBatch) {
      PageInfo& candidate = at(cursor);
      PrefetchPage(&candidate);
      batch[batch_len++] = cursor;
      cursor = candidate.lru.prev;
    }
    for (uint32_t i = 0; i < batch_len; ++i) {
      if (out.size() >= max || scanned >= scan_budget) {
        return scanned;
      }
      ++scanned;
      PageInfo* page = &at(batch[i]);
      Unlink(inactive, page);
      if (page->referenced()) {
        // Second chance: promote to active.
        page->set_referenced(false);
        page->set_active(true);
        PushFront(active, page);
        continue;
      }
      if (filter && filter(*owner_, *page)) {
        // Protected (e.g. foreground under Acclaim): rotate to inactive head.
        PushFront(inactive, page);
        continue;
      }
      out.push_back(page);
    }
  }
  return scanned;
}

void LruLists::SaveTo(BinaryWriter& w) const {
  w.U8(static_cast<uint8_t>(aging_));
  for (const IndexList& l : lists_) {
    w.U32(l.head);
    w.U32(l.tail);
    w.U32(l.size);
  }
  for (const GenState& g : gen_) {
    for (uint32_t c : g.counts) {
      w.U32(c);
    }
    w.U32(g.linked);
    w.U32(g.hand);
    w.U8(g.clock);
  }
}

void LruLists::RestoreFrom(BinaryReader& r) {
  AgingPolicy aging = static_cast<AgingPolicy>(r.U8());
  ICE_CHECK(aging == aging_) << "snapshot aging policy mismatch";
  for (IndexList& l : lists_) {
    l.head = r.U32();
    l.tail = r.U32();
    l.size = r.U32();
  }
  for (GenState& g : gen_) {
    for (uint32_t& c : g.counts) {
      c = r.U32();
    }
    g.linked = r.U32();
    g.hand = r.U32();
    g.clock = r.U8();
  }
}

void LruLists::Balance(LruPool pool) {
  if (aging_ == AgingPolicy::kGenClock) {
    GenBalance(pool);
    return;
  }
  IndexList& active = list(pool, true);
  IndexList& inactive = list(pool, false);
  // inactive_is_low: keep inactive >= active / 2 (i.e. at least 1/3 of pool).
  while (active.size != 0 && inactive.size * 2 < active.size) {
    if (at(active.tail).lru.prev != kNoPage) {
      PrefetchPage(&at(at(active.tail).lru.prev));
    }
    PageInfo* page = PopBack(active);
    page->set_active(false);
    // Clear the reference bit on demotion: a genuinely hot page earns its
    // way back to the active list through fresh references.
    page->set_referenced(false);
    PushFront(inactive, page);
  }
}

}  // namespace ice
