#include "src/mem/lru.h"

#include "src/base/log.h"

namespace ice {

void LruLists::Insert(PageInfo* page) {
  ICE_CHECK(!List::IsLinked(page));
  // Newly faulted pages start on the active list (they were just
  // referenced); aging happens by demotion through Balance(), so the
  // inactive list is a genuine aging pipeline rather than a parking lot.
  page->active = true;
  page->referenced = false;
  list(PoolOf(*page), true).PushFront(page);
}

void LruLists::Remove(PageInfo* page) {
  if (List::IsLinked(page)) {
    list(PoolOf(*page), page->active).Remove(page);
  }
}

void LruLists::Touch(PageInfo* page) {
  if (!List::IsLinked(page)) {
    return;
  }
  if (page->active) {
    page->referenced = true;
    return;
  }
  if (!page->referenced) {
    // First touch while inactive: set the reference bit only.
    page->referenced = true;
    return;
  }
  // Second touch while inactive: promote.
  list(PoolOf(*page), false).Remove(page);
  page->active = true;
  page->referenced = false;
  list(PoolOf(*page), true).PushFront(page);
}

void LruLists::IsolateCandidates(LruPool pool, uint32_t max, uint32_t scan_budget,
                                 const VictimFilter& filter, std::vector<PageInfo*>& out) {
  out.clear();
  List& inactive = list(pool, false);
  List& active = list(pool, true);

  uint32_t scanned = 0;
  while (out.size() < max && scanned < scan_budget && !inactive.empty()) {
    ++scanned;
    PageInfo* page = inactive.PopBack();
    if (page->referenced) {
      // Second chance: promote to active.
      page->referenced = false;
      page->active = true;
      active.PushFront(page);
      continue;
    }
    if (filter && filter(*page)) {
      // Protected (e.g. foreground under Acclaim): rotate to inactive head.
      inactive.PushFront(page);
      continue;
    }
    out.push_back(page);
  }
}

void LruLists::Balance(LruPool pool) {
  List& active = list(pool, true);
  List& inactive = list(pool, false);
  // inactive_is_low: keep inactive >= active / 2 (i.e. at least 1/3 of pool).
  while (!active.empty() && inactive.size() * 2 < active.size()) {
    PageInfo* page = active.PopBack();
    page->active = false;
    // Clear the reference bit on demotion: a genuinely hot page earns its
    // way back to the active list through fresh references.
    page->referenced = false;
    inactive.PushFront(page);
  }
}

void LruLists::PutBackInactive(PageInfo* page) {
  ICE_CHECK(!List::IsLinked(page));
  page->active = false;
  list(PoolOf(*page), false).PushFront(page);
}

}  // namespace ice
