// Free-memory watermarks, following the kernel's zone watermark scheme and
// the paper's configuration (low = 5/6 · high, min = 2/3 · high).
#ifndef SRC_MEM_WATERMARK_H_
#define SRC_MEM_WATERMARK_H_

#include "src/base/units.h"

namespace ice {

struct Watermarks {
  PageCount high = 0;  // kswapd reclaims until free >= high.
  PageCount low = 0;   // kswapd wakes when free < low.
  PageCount min = 0;   // allocations below min enter direct reclaim.

  // Builds the triple from the high watermark using the paper's ratios
  // (footnote to Table 4: low and min are 5/6 and 2/3 of high).
  static Watermarks FromHigh(PageCount high_pages);

  bool NeedsKswapd(PageCount free) const { return free < low; }
  bool NeedsDirectReclaim(PageCount free) const { return free <= min; }
  bool KswapdDone(PageCount free) const { return free >= high; }
};

}  // namespace ice

#endif  // SRC_MEM_WATERMARK_H_
