#include "src/mem/watermark.h"

namespace ice {

Watermarks Watermarks::FromHigh(PageCount high_pages) {
  Watermarks wm;
  wm.high = high_pages;
  wm.low = high_pages * 5 / 6;
  wm.min = high_pages * 2 / 3;
  return wm;
}

}  // namespace ice
