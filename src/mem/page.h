// Per-page metadata, the simulator's analog of `struct page` + PTE bits.
//
// Layout budget: the reclaim scan, LRU rotation and refault path touch this
// record millions of times per simulated second, so it is packed into a
// 32-byte slab entry (two per cache line):
//
//   PageLinks lru       8 bytes  32-bit index links (vpn within the owning
//                                AddressSpace arena) instead of 16 bytes of
//                                intrusive-list pointers
//   vpn                 4 bytes
//   zram_bytes          4 bytes  compressed size while in ZRAM
//   evict_cookie        8 bytes  workingset shadow entry (kept 64-bit: the
//                                global eviction sequence overflows 32 bits
//                                on long sweeps)
//   bits                2 bytes  state:3 | kind:2 | dirty | referenced |
//                                active | linked | generation:3 |
//                                hotness:3 | zram_dense
//
// The owner back-pointer was removed: every hot path already knows the
// AddressSpace it is operating on, so call sites pass it explicitly and the
// record stays within budget. Pages live in one contiguous per-AddressSpace
// arena and never move (see AddressSpace), so a {space, vpn} handle or a raw
// PageInfo* is stable for the space's lifetime.
#ifndef SRC_MEM_PAGE_H_
#define SRC_MEM_PAGE_H_

#include <cstdint>
#include <type_traits>

namespace ice {

// Where the page's contents currently live.
enum class PageState : uint8_t {
  // Never touched; consumes no frame (analog of an unpopulated PTE).
  kUntouched,
  // Resident in RAM.
  kPresent,
  // Anonymous page compressed into ZRAM (the \_PAGE_PRESENT bit is clear and
  // the PTE holds a swap entry).
  kInZram,
  // File-backed page not in the page cache: clean pages were discarded,
  // dirty pages were written back. A fault must read from flash.
  kOnFlash,
  // A fault is in flight; faulting tasks queue on the page.
  kFaultingIn,
};

// Which heap/region the page belongs to, matching the paper's Figure 4
// categorization (file-backed vs anonymous, and for anonymous pages the Java
// heap managed by ART vs the native malloc heap).
enum class HeapKind : uint8_t {
  kJavaHeap,
  kNativeHeap,
  kFile,
};

inline bool IsAnon(HeapKind kind) { return kind != HeapKind::kFile; }

// Sentinel for "no page" in the index-linked LRU lists.
inline constexpr uint32_t kNoPage = UINT32_MAX;

// The LRU link record: 32-bit neighbor indices (vpns into the owning
// AddressSpace's page arena) — half the size of the pointer-based intrusive
// node it replaced, so a list hop plus the flag word land in one cache line.
struct PageLinks {
  uint32_t prev = kNoPage;
  uint32_t next = kNoPage;
};

// A page identity that survives outside the owning AddressSpace: the
// MemoryManager assigns each registered space a per-manager id and keys
// cross-space structures (the in-flight fault table) by this packed handle.
struct PageHandle {
  uint64_t packed = 0;

  PageHandle() = default;
  PageHandle(uint32_t space_id, uint32_t vpn)
      : packed((static_cast<uint64_t>(space_id) << 32) | vpn) {}

  uint32_t space_id() const { return static_cast<uint32_t>(packed >> 32); }
  uint32_t vpn() const { return static_cast<uint32_t>(packed); }
  bool operator==(const PageHandle& o) const { return packed == o.packed; }
};

struct alignas(32) PageInfo {
  // LRU list membership; managed exclusively by LruLists.
  PageLinks lru;

  uint32_t vpn = 0;

  // Compressed size while in ZRAM.
  uint32_t zram_bytes = 0;

  // Workingset shadow entry: the global eviction sequence number at the time
  // this page was last evicted, or 0 when the page has never been evicted.
  // A fault on a page with a nonzero cookie is a *refault* and the distance
  // is (current sequence - cookie), matching mm/workingset.c. The shadow
  // entry is packed into the page record itself (the kernel packs it into
  // the vacated radix-tree slot), so evictions allocate nothing.
  uint64_t evict_cookie = 0;

  PageState state() const { return static_cast<PageState>(bits_ & kStateMask); }
  void set_state(PageState s) {
    bits_ = static_cast<uint16_t>((bits_ & ~kStateMask) | static_cast<uint16_t>(s));
  }

  HeapKind kind() const {
    return static_cast<HeapKind>((bits_ >> kKindShift) & kKindMask);
  }
  void set_kind(HeapKind k) {
    bits_ = static_cast<uint16_t>((bits_ & ~(kKindMask << kKindShift)) |
                                  (static_cast<uint16_t>(k) << kKindShift));
  }

  // Dirty file pages need writeback before reclaim; anonymous pages are
  // always "dirty" in the kernel sense, so the bit is only meaningful for
  // file pages.
  bool dirty() const { return bits_ & kDirtyBit; }
  void set_dirty(bool v) { SetBit(kDirtyBit, v); }

  // Second-chance reference bit, set on access, cleared by the reclaim scan.
  bool referenced() const { return bits_ & kReferencedBit; }
  void set_referenced(bool v) { SetBit(kReferencedBit, v); }

  // Which LRU list the page is on (valid only while linked).
  bool active() const { return bits_ & kActiveBit; }
  void set_active(bool v) { SetBit(kActiveBit, v); }

  // Whether the page is on any LRU list (maintained by LruLists).
  bool lru_linked() const { return bits_ & kLinkedBit; }
  void set_lru_linked(bool v) { SetBit(kLinkedBit, v); }

  // Generation number under the gen-clock aging policy (AgingPolicy::
  // kGenClock): the pool clock value at the page's last insert/touch, valid
  // only while lru_linked. 3 bits wrapping mod 8 — a page whose stored
  // generation aliases the advancing clock merely looks young again, which
  // the counts in LruLists track consistently. Unused (stays 0) under the
  // two-list policy.
  uint8_t generation() const {
    return static_cast<uint8_t>((bits_ >> kGenShift) & kGenMask);
  }
  void set_generation(uint8_t gen) {
    bits_ = static_cast<uint16_t>((bits_ & ~(kGenMask << kGenShift)) |
                                  (static_cast<uint16_t>(gen & kGenMask) << kGenShift));
  }

  // Decayed re-reference counter under the hotness swap policy (SwapPolicy::
  // kHotness): anon refaults boost it (saturating at 7), zram admission
  // halves it. Gates zram admission and picks the compression tier. Unused
  // (stays 0) under the baseline swap policy.
  uint8_t hotness() const {
    return static_cast<uint8_t>((bits_ >> kHotShift) & kHotMask);
  }
  void set_hotness(uint8_t h) {
    bits_ = static_cast<uint16_t>((bits_ & ~(kHotMask << kHotShift)) |
                                  (static_cast<uint16_t>(h & kHotMask) << kHotShift));
  }

  // Which compression tier the page's zram copy used (valid only while
  // kInZram): set = dense codec, clear = fast codec. Decides the decompress
  // cost charged on refault. Always clear under the baseline swap policy.
  bool zram_dense() const { return bits_ & kDenseBit; }
  void set_zram_dense(bool v) { SetBit(kDenseBit, v); }

 private:
  static constexpr uint16_t kStateMask = 0x7;
  static constexpr uint16_t kKindShift = 3;
  static constexpr uint16_t kKindMask = 0x3;
  static constexpr uint16_t kDirtyBit = 1u << 5;
  static constexpr uint16_t kReferencedBit = 1u << 6;
  static constexpr uint16_t kActiveBit = 1u << 7;
  static constexpr uint16_t kLinkedBit = 1u << 8;
  static constexpr uint16_t kGenShift = 9;
  static constexpr uint16_t kGenMask = 0x7;   // Bits 9-11.
  static constexpr uint16_t kHotShift = 12;
  static constexpr uint16_t kHotMask = 0x7;   // Bits 12-14.
  static constexpr uint16_t kDenseBit = 1u << 15;  // Flag word is now full.

  void SetBit(uint16_t bit, bool v) {
    bits_ = static_cast<uint16_t>(v ? (bits_ | bit) : (bits_ & ~bit));
  }

  uint16_t bits_ = 0;
};

// The layout budget above is load-bearing: the reclaim scan is memory-bound
// and sized around two PageInfo records per 64-byte cache line. A new field
// must either fit the existing padding or earn a redesign — this assert makes
// the regression loud instead of a silent sweep slowdown.
static_assert(sizeof(PageInfo) <= 32, "PageInfo outgrew its 32-byte budget");
// alignas(32) keeps every record inside a single cache line (two records per
// 64-byte line with a line-aligned arena; see AddressSpace).
static_assert(alignof(PageInfo) == 32);
static_assert(sizeof(PageLinks) == 8,
              "LRU link record must stay two 32-bit indices (one half cache "
              "line per hop including the flag word)");
// The arena allocates raw storage and frees it without running destructors.
static_assert(std::is_trivially_destructible_v<PageInfo>);

}  // namespace ice

#endif  // SRC_MEM_PAGE_H_
