// Per-page metadata, the simulator's analog of `struct page` + PTE bits.
#ifndef SRC_MEM_PAGE_H_
#define SRC_MEM_PAGE_H_

#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/base/units.h"

namespace ice {

class AddressSpace;

// Where the page's contents currently live.
enum class PageState : uint8_t {
  // Never touched; consumes no frame (analog of an unpopulated PTE).
  kUntouched,
  // Resident in RAM.
  kPresent,
  // Anonymous page compressed into ZRAM (the \_PAGE_PRESENT bit is clear and
  // the PTE holds a swap entry).
  kInZram,
  // File-backed page not in the page cache: clean pages were discarded,
  // dirty pages were written back. A fault must read from flash.
  kOnFlash,
  // A fault is in flight; faulting tasks queue on the page.
  kFaultingIn,
};

// Which heap/region the page belongs to, matching the paper's Figure 4
// categorization (file-backed vs anonymous, and for anonymous pages the Java
// heap managed by ART vs the native malloc heap).
enum class HeapKind : uint8_t {
  kJavaHeap,
  kNativeHeap,
  kFile,
};

inline bool IsAnon(HeapKind kind) { return kind != HeapKind::kFile; }

// LRU list membership tag for the intrusive node.
struct LruTag {};

struct PageInfo : ListNode<LruTag> {
  AddressSpace* owner = nullptr;
  uint32_t vpn = 0;

  PageState state = PageState::kUntouched;
  HeapKind kind = HeapKind::kFile;

  // Dirty file pages need writeback before reclaim; anonymous pages are
  // always "dirty" in the kernel sense, so the bit is only meaningful for
  // file pages.
  bool dirty = false;

  // Second-chance reference bit, set on access, cleared by the reclaim scan.
  bool referenced = false;

  // Which LRU list the page is on (valid only while linked).
  bool active = false;

  // Workingset shadow entry: the global eviction sequence number at the time
  // this page was last evicted, or 0 when the page has never been evicted.
  // A fault on a page with a nonzero cookie is a *refault* and the distance
  // is (current sequence - cookie), matching mm/workingset.c.
  uint64_t evict_cookie = 0;

  // Compressed size while in ZRAM.
  uint32_t zram_bytes = 0;
};

}  // namespace ice

#endif  // SRC_MEM_PAGE_H_
