#include "src/mem/shadow.h"

#include <algorithm>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/mem/address_space.h"

namespace ice {

void ShadowRegistry::RecordEviction(PageInfo* page) {
  ICE_CHECK(page != nullptr);
  page->evict_cookie = ++eviction_seq_;
}

RefaultEvent ShadowRegistry::RecordRefault(PageInfo* page, const AddressSpace& space,
                                           SimTime now, bool foreground) {
  ICE_CHECK(page != nullptr);
  ICE_CHECK_GT(page->evict_cookie, 0u);
  RefaultEvent event;
  event.time = now;
  event.pid = space.pid();
  event.uid = space.uid();
  event.kind = page->kind();
  event.foreground = foreground;
  event.distance = eviction_seq_ - page->evict_cookie;
  page->evict_cookie = 0;
  ++refault_count_;
  for (RefaultListener* l : listeners_) {
    l->OnRefault(event);
  }
  return event;
}

void ShadowRegistry::SaveTo(BinaryWriter& w) const {
  w.U64(eviction_seq_);
  w.U64(refault_count_);
}

void ShadowRegistry::RestoreFrom(BinaryReader& r) {
  eviction_seq_ = r.U64();
  refault_count_ = r.U64();
}

void ShadowRegistry::AddListener(RefaultListener* listener) {
  ICE_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

void ShadowRegistry::RemoveListener(RefaultListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

}  // namespace ice
