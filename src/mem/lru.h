// Global page aging structure with two selectable policies (AgingPolicy,
// src/mem/aging.h) behind one facade:
//
//  * Two-list (default): the classic Linux design — one active and one
//    inactive list per pool (anonymous, file-backed). Pages enter active on
//    fault; a reference while inactive promotes them on the next scan
//    (second chance); the reclaim scan isolates victims from the inactive
//    tail. Lists are index-linked rather than pointer-linked: every page
//    lives in one AddressSpace's contiguous arena, so the link stored in
//    PageInfo is the neighbor's vpn (32 bits) and the list header is three
//    32-bit words — half the per-page link footprint of an intrusive
//    pointer list, with a scan hop plus the flag word in one cache line.
//
//  * Gen-clock: an MGLRU-style generation clock (src/mem/gen_clock.cc).
//    Each pool keeps a 3-bit clock; a linked page stores the clock value of
//    its last insert/touch in its flag word, and per-generation population
//    counts replace list sizes. Reclaim sweeps the contiguous arena
//    sequentially from a persistent hand cursor selecting pages whose
//    generation lags the clock — no prev-link dependency chain at all, so
//    the scan streams at memory bandwidth instead of pointer-chase latency.
//
// Both policies honor the same VictimFilter hook (the Acclaim baseline's
// foreground-aware eviction) and the same second-chance reference bit, and
// both are deterministic: identical operation sequences produce identical
// victim orders regardless of thread count or wall clock.
#ifndef SRC_MEM_LRU_H_
#define SRC_MEM_LRU_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/log.h"
#include "src/mem/aging.h"
#include "src/mem/page.h"

namespace ice {

class AddressSpace;
class BinaryReader;
class BinaryWriter;

enum class LruPool { kAnon, kFile };

inline LruPool PoolOf(const PageInfo& page) {
  return IsAnon(page.kind()) ? LruPool::kAnon : LruPool::kFile;
}

class LruLists {
 public:
  // Returns true to *skip* (rotate) the candidate instead of evicting it.
  // The owning AddressSpace is passed alongside the page because the packed
  // PageInfo no longer carries an owner back-pointer.
  using VictimFilter = std::function<bool(const AddressSpace&, const PageInfo&)>;

  LruLists() = default;

  LruLists(const LruLists&) = delete;
  LruLists& operator=(const LruLists&) = delete;

  // Binds the lists to the arena they link into. Must be called (by the
  // owning AddressSpace, or a test harness) before any list operation; the
  // arena must outlive the lists and never move. `page_count` bounds the
  // gen-clock hand sweep (and vpn-indexed links never exceed it).
  void BindArena(const AddressSpace* owner, PageInfo* arena, uint32_t page_count) {
    owner_ = owner;
    arena_ = arena;
    page_count_ = page_count;
  }

  // Selects the aging policy. Must be called while no page is linked: the
  // two representations share no per-page state.
  void set_aging(AgingPolicy policy) {
    ICE_CHECK_EQ(total_size(), 0u) << "aging policy change on a populated LRU";
    aging_ = policy;
  }
  AgingPolicy aging() const { return aging_; }

  // Adds a newly-present page to the active head of its pool. Defined inline
  // below: Insert/Remove/Touch run once per simulated page access, so they
  // must inline into the fault path rather than cross a TU boundary.
  void Insert(PageInfo* page);

  // Removes a page from whichever list it is on (eviction, process exit).
  void Remove(PageInfo* page);

  // Marks an access. Inactive+referenced pages are promoted to active
  // immediately (a simplification of the kernel's mark-then-promote-on-scan
  // that preserves the working-set-protection property).
  void Touch(PageInfo* page);

  // Isolates up to `max` eviction candidates from the inactive tail of
  // `pool` into `out` (cleared first; a caller-provided scratch vector so
  // repeated reclaim batches reuse one allocation). Referenced pages get a
  // second chance (promoted to active, reference bit cleared). Pages rejected
  // by `filter` are rotated to the inactive head and count against
  // `scan_budget`. Isolated pages are unlinked from the LRU; the caller owns
  // their fate.
  //
  // Returns the number of pages examined: isolations PLUS second-chance
  // promotions and filter rotations. The caller must charge scan cost from
  // this count, not from out.size() — on a busy device most tail pages are
  // referenced, so the scan work far exceeds the pages it isolates.
  //
  // Two-list: the scan walks the inactive tail in cache-line-sized batches —
  // up to kScanBatch upcoming candidates are gathered (prefetching their
  // metadata) before any is processed, so the eviction decision never stalls
  // on the list hop. Processing only ever unlinks the page being processed,
  // which is why a gathered batch stays valid.
  //
  // Gen-clock: a sequential sweep of the contiguous arena from a persistent
  // per-pool hand cursor, selecting linked pages of `pool` whose generation
  // lags the clock; hops over young/foreign slots are a single flag-word
  // read on a streamed line and are not charged against `scan_budget`.
  uint32_t IsolateCandidates(LruPool pool, uint32_t max, uint32_t scan_budget,
                             const VictimFilter& filter, std::vector<PageInfo*>& out);

  // Two-list: moves pages from the active tail to the inactive head until
  // the inactive list holds at least half the pool (inactive_is_low).
  // Gen-clock: advances the pool clock when the young generation outgrows
  // twice the old pages — the same ratio at generation granularity.
  void Balance(LruPool pool);

  // Returns a rejected candidate to the inactive head.
  void PutBackInactive(PageInfo* page);

  // Under gen-clock, "active" means the young (current-clock) generation and
  // "inactive" every lagging one, so the reclaim weighting in ReclaimBatch
  // and the inactive_is_low balancing read the same way under both policies.
  size_t active_size(LruPool pool) const {
    if (aging_ == AgingPolicy::kGenClock) {
      const GenState& g = gen(pool);
      return g.counts[g.clock];
    }
    return list(pool, true).size;
  }
  size_t inactive_size(LruPool pool) const {
    if (aging_ == AgingPolicy::kGenClock) {
      const GenState& g = gen(pool);
      return g.linked - g.counts[g.clock];
    }
    return list(pool, false).size;
  }
  size_t pool_size(LruPool pool) const {
    return active_size(pool) + inactive_size(pool);
  }
  size_t total_size() const {
    return pool_size(LruPool::kAnon) + pool_size(LruPool::kFile);
  }

  // Candidates gathered (and prefetched) per scan step.
  static constexpr uint32_t kScanBatch = 8;

  // Snapshot support: list heads/tails/sizes and gen-clock hands/counters.
  // Per-page link state rides along with the owning arena's raw dump, so
  // restore assumes the arena bytes were restored first.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  // List header: head/tail arena indices plus a cached size. 12 bytes, so
  // all four pool lists fit in one cache line.
  struct IndexList {
    uint32_t head = kNoPage;
    uint32_t tail = kNoPage;
    uint32_t size = 0;
  };
  static_assert(sizeof(IndexList) == 12, "list header outgrew its budget");

  // Gen-clock per-pool state: the 3-bit clock, the persistent arena hand
  // cursor the scan resumes from, the population of each stored generation
  // value, and the pool's linked total. `counts` is keyed by the raw stored
  // 3-bit value, so it and the scan always agree on which pages are young —
  // including after mod-8 aliasing.
  struct GenState {
    uint32_t counts[8] = {};
    uint32_t linked = 0;
    uint32_t hand = 0;
    uint8_t clock = 0;
  };

  IndexList& list(LruPool pool, bool active) {
    return lists_[static_cast<int>(pool) * 2 + (active ? 1 : 0)];
  }
  const IndexList& list(LruPool pool, bool active) const {
    return lists_[static_cast<int>(pool) * 2 + (active ? 1 : 0)];
  }
  GenState& gen(LruPool pool) { return gen_[static_cast<int>(pool)]; }
  const GenState& gen(LruPool pool) const { return gen_[static_cast<int>(pool)]; }

  PageInfo& at(uint32_t index) { return arena_[index]; }

  void PushFront(IndexList& l, PageInfo* page);
  void Unlink(IndexList& l, PageInfo* page);
  PageInfo* PopBack(IndexList& l);

  // Gen-clock policy bodies (src/mem/gen_clock.cc). Deliberately out of
  // line: the two-list Insert/Remove/Touch fast paths below must stay small
  // enough to inline into the fault path, so the gen-clock branch is a
  // single predictable test plus a call.
  void GenInsert(PageInfo* page);
  void GenRemove(PageInfo* page);
  void GenTouch(PageInfo* page);
  void GenPutBackInactive(PageInfo* page);
  uint32_t GenIsolate(LruPool pool, uint32_t max, uint32_t scan_budget,
                      const VictimFilter& filter, std::vector<PageInfo*>& out);
  void GenBalance(LruPool pool);
  static void GenAdvanceClock(GenState& g);

  const AddressSpace* owner_ = nullptr;
  PageInfo* arena_ = nullptr;
  uint32_t page_count_ = 0;
  AgingPolicy aging_ = AgingPolicy::kTwoList;
  IndexList lists_[4];
  GenState gen_[2];
};

// ---------------------------------------------------------------------------
// Hot-path inline definitions. PushFront/Unlink finish all writes to `page`
// (flag word and links) before touching neighbor records: stores into the
// arena could alias the page's own fields as far as the compiler knows, so
// interleaving them forces reloads on the hottest path in the simulator.
// ---------------------------------------------------------------------------

inline void LruLists::PushFront(IndexList& l, PageInfo* page) {
  const uint32_t idx = page->vpn;
  const uint32_t old_head = l.head;
  page->set_lru_linked(true);
  page->lru.prev = kNoPage;
  page->lru.next = old_head;
  l.head = idx;
  ++l.size;
  if (old_head != kNoPage) {
    at(old_head).lru.prev = idx;
  } else {
    l.tail = idx;
  }
}

inline void LruLists::Unlink(IndexList& l, PageInfo* page) {
  ICE_CHECK(page->lru_linked()) << "removing unlinked page";
  const uint32_t prev = page->lru.prev;
  const uint32_t next = page->lru.next;
  page->set_lru_linked(false);
  page->lru.prev = kNoPage;
  page->lru.next = kNoPage;
  --l.size;
  if (prev != kNoPage) {
    at(prev).lru.next = next;
  } else {
    l.head = next;
  }
  if (next != kNoPage) {
    at(next).lru.prev = prev;
  } else {
    l.tail = prev;
  }
}

inline PageInfo* LruLists::PopBack(IndexList& l) {
  if (l.tail == kNoPage) {
    return nullptr;
  }
  PageInfo* page = &at(l.tail);
  Unlink(l, page);
  return page;
}

inline void LruLists::Insert(PageInfo* page) {
  ICE_CHECK(!page->lru_linked());
  // Newly faulted pages start young/active (they were just referenced);
  // aging happens by Balance() demotion (two-list) or by the pool clock
  // advancing past them (gen-clock).
  page->set_active(true);
  page->set_referenced(false);
  if (aging_ == AgingPolicy::kGenClock) {
    GenInsert(page);
    return;
  }
  PushFront(list(PoolOf(*page), true), page);
}

inline void LruLists::Remove(PageInfo* page) {
  if (!page->lru_linked()) {
    return;
  }
  if (aging_ == AgingPolicy::kGenClock) {
    GenRemove(page);
    return;
  }
  Unlink(list(PoolOf(*page), page->active()), page);
}

inline void LruLists::Touch(PageInfo* page) {
  if (!page->lru_linked()) {
    return;
  }
  if (aging_ == AgingPolicy::kGenClock) {
    GenTouch(page);
    return;
  }
  if (page->active()) {
    page->set_referenced(true);
    return;
  }
  if (!page->referenced()) {
    // First touch while inactive: set the reference bit only.
    page->set_referenced(true);
    return;
  }
  // Second touch while inactive: promote.
  Unlink(list(PoolOf(*page), false), page);
  page->set_active(true);
  page->set_referenced(false);
  PushFront(list(PoolOf(*page), true), page);
}

inline void LruLists::PutBackInactive(PageInfo* page) {
  ICE_CHECK(!page->lru_linked());
  page->set_active(false);
  if (aging_ == AgingPolicy::kGenClock) {
    GenPutBackInactive(page);
    return;
  }
  PushFront(list(PoolOf(*page), false), page);
}

}  // namespace ice

#endif  // SRC_MEM_LRU_H_
