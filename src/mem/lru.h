// Global page LRU lists, modeled after the classic Linux two-list design:
// one active and one inactive list per pool (anonymous, file-backed).
//
// Pages enter the inactive list on first touch; a reference while inactive
// promotes them to active on the next scan (second chance). The reclaim scan
// isolates victims from the inactive tail. A pluggable VictimFilter lets the
// Acclaim baseline implement foreground-aware eviction (FAE) by rotating
// foreground pages instead of evicting them.
#ifndef SRC_MEM_LRU_H_
#define SRC_MEM_LRU_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/mem/page.h"

namespace ice {

enum class LruPool { kAnon, kFile };

inline LruPool PoolOf(const PageInfo& page) {
  return IsAnon(page.kind) ? LruPool::kAnon : LruPool::kFile;
}

class LruLists {
 public:
  // Returns true to *skip* (rotate) the candidate instead of evicting it.
  using VictimFilter = std::function<bool(const PageInfo&)>;

  LruLists() = default;

  // Adds a newly-present page to the inactive head of its pool.
  void Insert(PageInfo* page);

  // Removes a page from whichever list it is on (eviction, process exit).
  void Remove(PageInfo* page);

  // Marks an access. Inactive+referenced pages are promoted to active
  // immediately (a simplification of the kernel's mark-then-promote-on-scan
  // that preserves the working-set-protection property).
  void Touch(PageInfo* page);

  // Isolates up to `max` eviction candidates from the inactive tail of
  // `pool` into `out` (cleared first; a caller-provided scratch vector so
  // repeated reclaim batches reuse one allocation). Referenced pages get a
  // second chance (promoted to active, reference bit cleared). Pages rejected
  // by `filter` are rotated to the inactive head and count against
  // `scan_budget`. Isolated pages are unlinked from the LRU; the caller owns
  // their fate.
  void IsolateCandidates(LruPool pool, uint32_t max, uint32_t scan_budget,
                         const VictimFilter& filter, std::vector<PageInfo*>& out);

  // Moves pages from the active tail to the inactive head until the inactive
  // list holds at least half the pool (mirrors inactive_is_low balancing).
  void Balance(LruPool pool);

  // Returns a rejected candidate to the inactive head.
  void PutBackInactive(PageInfo* page);

  size_t active_size(LruPool pool) const { return list(pool, true).size(); }
  size_t inactive_size(LruPool pool) const { return list(pool, false).size(); }
  size_t pool_size(LruPool pool) const {
    return active_size(pool) + inactive_size(pool);
  }
  size_t total_size() const {
    return pool_size(LruPool::kAnon) + pool_size(LruPool::kFile);
  }

 private:
  using List = IntrusiveList<PageInfo, LruTag>;

  List& list(LruPool pool, bool active) {
    return lists_[static_cast<int>(pool) * 2 + (active ? 1 : 0)];
  }
  const List& list(LruPool pool, bool active) const {
    return lists_[static_cast<int>(pool) * 2 + (active ? 1 : 0)];
  }

  List lists_[4];
};

}  // namespace ice

#endif  // SRC_MEM_LRU_H_
