// A process address space: fixed-capacity page table with three regions
// (Java heap, native heap, file-backed), populated lazily on first touch.
//
// Page metadata lives in one contiguous arena (`pages_`) sized at
// construction, so a space's records are a single slab: the reclaim scan and
// LRU rotation walk packed 32-byte entries instead of pointer-chasing heap
// nodes. Capacity is fixed so PageInfo records never move — LRU index links
// and in-flight faults address pages by vpn for the AddressSpace lifetime.
// "Heap growth" is modeled by touching previously untouched pages, which is
// how the PUBG-style game workload allocates its 100 MB+ per battle round.
#ifndef SRC_MEM_ADDRESS_SPACE_H_
#define SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/base/units.h"
#include "src/mem/lru.h"
#include "src/mem/page.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct AddressSpaceLayout {
  PageCount java_pages = 0;
  PageCount native_pages = 0;
  PageCount file_pages = 0;

  PageCount total() const { return java_pages + native_pages + file_pages; }
};

// Arena allocation alignment: a full cache line, so 32-byte records pair up
// two per line and a record never straddles a line boundary.
inline constexpr size_t kPageArenaAlign = 64;

// Deleter for the arena: PageInfo is trivially destructible, so this only
// returns the raw block.
struct PageArenaDeleter {
  void operator()(PageInfo* pages) const;
};

// Value of space_id() before MemoryManager::Register assigns one.
inline constexpr uint32_t kInvalidSpaceId = UINT32_MAX;

class AddressSpace {
 public:
  AddressSpace(Pid pid, Uid uid, std::string name, const AddressSpaceLayout& layout);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  Pid pid() const { return pid_; }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }
  const AddressSpaceLayout& layout() const { return layout_; }

  // Per-MemoryManager registration id; half of the {space_id, vpn} handle
  // that names pages outside the space (see PageHandle).
  uint32_t space_id() const { return space_id_; }
  void set_space_id(uint32_t id) { space_id_ = id; }
  PageHandle handle_of(uint32_t vpn) const { return PageHandle(space_id_, vpn); }

  PageCount total_pages() const { return page_count_; }
  // Bytes of page-metadata arena this space pins for its lifetime; the
  // MemoryManager aggregates these into live/peak figures so device-memory
  // headroom claims (and the fleet's low-RAM tiers) are backed by data.
  size_t arena_bytes() const { return page_count_ * sizeof(PageInfo); }
  PageInfo& page(uint32_t vpn);
  const PageInfo& page(uint32_t vpn) const;

  // Region boundaries: [0, java) java heap, [java, java+native) native heap,
  // [java+native, total) file-backed.
  uint32_t java_begin() const { return 0; }
  uint32_t java_end() const { return static_cast<uint32_t>(layout_.java_pages); }
  uint32_t native_begin() const { return java_end(); }
  uint32_t native_end() const { return native_begin() + static_cast<uint32_t>(layout_.native_pages); }
  uint32_t file_begin() const { return native_end(); }
  uint32_t file_end() const { return static_cast<uint32_t>(page_count_); }

  HeapKind KindOf(uint32_t vpn) const;

  // Resident (kPresent) page count, maintained by the MemoryManager.
  PageCount resident() const { return resident_; }
  // Pages in ZRAM or on flash (evicted but part of the working set).
  PageCount evicted() const { return evicted_; }

  // Bookkeeping used by MemoryManager only.
  void AddResident(int64_t delta);
  void AddEvicted(int64_t delta);

  // Iterates every page (for whole-process reclaim / teardown). The arena is
  // pinned for the AddressSpace lifetime (LRU links and fault handles
  // address into it), hence the fixed slab rather than a growable container.
  std::span<PageInfo> pages() { return {pages_.get(), page_count_}; }

  // Cumulative lifetime counters, maintained by the MemoryManager; used by
  // the per-app studies (Figures 3 and 4).
  uint64_t total_evictions = 0;
  uint64_t total_refaults = 0;

  // Readahead state: the last flash-faulting vpn. The memory manager only
  // opens a readahead window when faults are sequential, like the kernel.
  uint32_t last_flash_fault_vpn = UINT32_MAX;

  // Snapshot support: a raw dump of the page-metadata arena (PageInfo is
  // trivially copyable and holds no pointers — LRU links are vpn indices)
  // plus residency counters and LRU/gen-clock heads. RestoreFrom requires a
  // structurally identical space (same layout, built by replaying process
  // creation) and overwrites its dynamic state.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // Per-address-space LRU lists: the memcg model. Android places each app in
  // its own memory cgroup, and kswapd applies reclaim pressure to every
  // cgroup proportionally — the foreground app included. That proportional
  // scanning is what lets background churn displace foreground pages.
  LruLists& lru() { return lru_; }
  const LruLists& lru() const { return lru_; }

 private:
  Pid pid_;
  Uid uid_;
  std::string name_;
  AddressSpaceLayout layout_;
  uint32_t space_id_ = kInvalidSpaceId;
  // The arena is placement-new constructed so vpn/kind are set in the same
  // pass that first touches each element. `new PageInfo[n]` would
  // zero-initialize the whole array (tens of MB for a large app) and then a
  // second loop would rewrite it — at process-start rates that double sweep
  // dominated sweep-runner profiles.
  std::unique_ptr<PageInfo[], PageArenaDeleter> pages_;
  size_t page_count_ = 0;
  PageCount resident_ = 0;
  PageCount evicted_ = 0;
  LruLists lru_;
};

}  // namespace ice

#endif  // SRC_MEM_ADDRESS_SPACE_H_
