// A process address space: fixed-capacity page table with three regions
// (Java heap, native heap, file-backed), populated lazily on first touch.
//
// Capacity is fixed at construction so PageInfo objects never move — LRU
// lists and in-flight faults hold stable pointers into `pages_`. "Heap
// growth" is modeled by touching previously untouched pages, which is how
// the PUBG-style game workload allocates its 100 MB+ per battle round.
#ifndef SRC_MEM_ADDRESS_SPACE_H_
#define SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/base/units.h"
#include "src/mem/lru.h"
#include "src/mem/page.h"

namespace ice {

struct AddressSpaceLayout {
  PageCount java_pages = 0;
  PageCount native_pages = 0;
  PageCount file_pages = 0;

  PageCount total() const { return java_pages + native_pages + file_pages; }
};

// Deleter for the placement-new constructed page array (see AddressSpace's
// constructor): destroys elements in reverse order, then frees the raw block.
struct PageArrayDeleter {
  size_t count = 0;
  void operator()(PageInfo* pages) const;
};

class AddressSpace {
 public:
  AddressSpace(Pid pid, Uid uid, std::string name, const AddressSpaceLayout& layout);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  Pid pid() const { return pid_; }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }
  const AddressSpaceLayout& layout() const { return layout_; }

  PageCount total_pages() const { return page_count_; }
  PageInfo& page(uint32_t vpn);
  const PageInfo& page(uint32_t vpn) const;

  // Region boundaries: [0, java) java heap, [java, java+native) native heap,
  // [java+native, total) file-backed.
  uint32_t java_begin() const { return 0; }
  uint32_t java_end() const { return static_cast<uint32_t>(layout_.java_pages); }
  uint32_t native_begin() const { return java_end(); }
  uint32_t native_end() const { return native_begin() + static_cast<uint32_t>(layout_.native_pages); }
  uint32_t file_begin() const { return native_end(); }
  uint32_t file_end() const { return static_cast<uint32_t>(page_count_); }

  HeapKind KindOf(uint32_t vpn) const;

  // Resident (kPresent) page count, maintained by the MemoryManager.
  PageCount resident() const { return resident_; }
  // Pages in ZRAM or on flash (evicted but part of the working set).
  PageCount evicted() const { return evicted_; }

  // Bookkeeping used by MemoryManager only.
  void AddResident(int64_t delta);
  void AddEvicted(int64_t delta);

  // Iterates every page (for whole-process reclaim / teardown). PageInfo
  // objects are pinned for the AddressSpace lifetime (LRU lists hold
  // pointers), hence the fixed array rather than a growable container.
  std::span<PageInfo> pages() { return {pages_.get(), page_count_}; }

  // Cumulative lifetime counters, maintained by the MemoryManager; used by
  // the per-app studies (Figures 3 and 4).
  uint64_t total_evictions = 0;
  uint64_t total_refaults = 0;

  // Readahead state: the last flash-faulting vpn. The memory manager only
  // opens a readahead window when faults are sequential, like the kernel.
  uint32_t last_flash_fault_vpn = UINT32_MAX;

  // Per-address-space LRU lists: the memcg model. Android places each app in
  // its own memory cgroup, and kswapd applies reclaim pressure to every
  // cgroup proportionally — the foreground app included. That proportional
  // scanning is what lets background churn displace foreground pages.
  LruLists& lru() { return lru_; }
  const LruLists& lru() const { return lru_; }

 private:
  Pid pid_;
  Uid uid_;
  std::string name_;
  AddressSpaceLayout layout_;
  // The page array is placement-new constructed so owner/vpn/kind are set in
  // the same pass that first touches each element. `new PageInfo[n]` would
  // zero-initialize the whole array (tens of MB for a large app) and then a
  // second loop would rewrite it — at process-start rates that double sweep
  // dominated sweep-runner profiles.
  std::unique_ptr<PageInfo[], PageArrayDeleter> pages_;
  size_t page_count_ = 0;
  PageCount resident_ = 0;
  PageCount evicted_ = 0;
  LruLists lru_;
};

}  // namespace ice

#endif  // SRC_MEM_ADDRESS_SPACE_H_
