#include "src/mem/memory_manager.h"

#include <algorithm>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/trace/trace.h"

namespace ice {

MemoryManager::HotCounters::HotCounters(StatsRegistry& st)
    : page_faults(st.Counter(stat::kPageFaults)),
      zram_loads(st.Counter(stat::kZramLoads)),
      zram_stores(st.Counter(stat::kZramStores)),
      direct_reclaims(st.Counter(stat::kDirectReclaims)),
      kswapd_wakeups(st.Counter(stat::kKswapdWakeups)),
      refaults(st.Counter(stat::kRefaults)),
      refaults_fg(st.Counter(stat::kRefaultsFg)),
      refaults_bg(st.Counter(stat::kRefaultsBg)),
      refaults_anon(st.Counter(stat::kRefaultsAnon)),
      refaults_file(st.Counter(stat::kRefaultsFile)),
      refaults_java_heap(st.Counter(stat::kRefaultsJavaHeap)),
      refaults_native_heap(st.Counter(stat::kRefaultsNativeHeap)),
      pages_reclaimed(st.Counter(stat::kPagesReclaimed)),
      pages_reclaimed_kswapd(st.Counter(stat::kPagesReclaimedKswapd)),
      pages_reclaimed_direct(st.Counter(stat::kPagesReclaimedDirect)),
      pages_reclaimed_anon(st.Counter(stat::kPagesReclaimedAnon)),
      pages_reclaimed_anon_kswapd(st.Counter(stat::kPagesReclaimedAnonKswapd)),
      pages_reclaimed_anon_direct(st.Counter(stat::kPagesReclaimedAnonDirect)),
      pages_reclaimed_file(st.Counter(stat::kPagesReclaimedFile)),
      pages_reclaimed_file_kswapd(st.Counter(stat::kPagesReclaimedFileKswapd)),
      pages_reclaimed_file_direct(st.Counter(stat::kPagesReclaimedFileDirect)),
      zram_rejects(st.Counter(stat::kZramRejects)),
      swap_rejects_hot(st.Counter(stat::kSwapRejectsHot)),
      swap_writeback_pages(st.Counter(stat::kSwapWritebackPages)),
      swap_stores_fast(st.Counter(stat::kSwapStoresFast)),
      swap_stores_dense(st.Counter(stat::kSwapStoresDense)) {}

MemoryManager::MemoryManager(Engine& engine, const MemConfig& config, BlockDevice* storage)
    : engine_(engine),
      config_(config),
      storage_(storage),
      ct_(engine.stats()),
      // Contention jitter and zram compressibility are environment noise:
      // they fork from the noise stream so construction consumes zero draws
      // from the seeded stream (the warm-boot template contract). The
      // governor holds no RNG on purpose (see governor.h).
      contention_rng_(engine.noise_rng().Fork()),
      zram_(config.zram, engine.noise_rng().Fork()),
      swap_gov_(config.swap) {
  ICE_CHECK_GT(config_.total_pages, config_.os_reserved_pages);
  free_pages_ = static_cast<int64_t>(config_.total_pages - config_.os_reserved_pages);
}

PageCount MemoryManager::file_lru_pages() const {
  PageCount total = 0;
  for (const AddressSpace* space : spaces_) {
    total += space->lru().pool_size(LruPool::kFile);
  }
  return total;
}

PageCount MemoryManager::available_pages() const {
  int64_t avail = free_pages_ + static_cast<int64_t>(file_lru_pages()) / 2;
  return avail < 0 ? 0 : static_cast<PageCount>(avail);
}

void MemoryManager::SyncZramFrames() {
  PageCount held = BytesToPages(zram_.stored_bytes());
  if (held > zram_frames_held_) {
    free_pages_ -= static_cast<int64_t>(held - zram_frames_held_);
  } else {
    free_pages_ += static_cast<int64_t>(zram_frames_held_ - held);
  }
  zram_frames_held_ = held;
}

void MemoryManager::Register(AddressSpace& space) {
  // Lazy population: pages enter the system on first touch.
  for (PageInfo& p : space.pages()) {
    ICE_CHECK(p.state() == PageState::kUntouched);
  }
  space.set_space_id(next_space_id_++);
  space.lru().set_aging(config_.aging);
  spaces_.push_back(&space);
  arena_bytes_live_ += space.arena_bytes();
  arena_bytes_peak_ = std::max(arena_bytes_peak_, arena_bytes_live_);
}

void MemoryManager::Release(AddressSpace& space) {
  size_t before = spaces_.size();
  spaces_.erase(std::remove(spaces_.begin(), spaces_.end(), &space), spaces_.end());
  if (spaces_.size() < before) {
    arena_bytes_live_ -= space.arena_bytes();
  }
  for (PageInfo& p : space.pages()) {
    switch (p.state()) {
      case PageState::kPresent:
        space.lru().Remove(&p);
        ++free_pages_;
        break;
      case PageState::kInZram:
        // Frames-held sync is batched: one SyncZramFrames() after the loop.
        zram_.Drop(&p);
        break;
      case PageState::kFaultingIn: {
        // Abandon the in-flight fault; the completion handler no-ops once the
        // state is reset. Waiters belong to the dying process.
        auto it = pending_faults_.find(space.handle_of(p.vpn).packed);
        if (it != pending_faults_.end()) {
          RecycleWaiterList(std::move(it->second));
          pending_faults_.erase(it);
        }
        break;
      }
      case PageState::kOnFlash:
      case PageState::kUntouched:
        break;
    }
    p.set_state(PageState::kUntouched);
    p.set_dirty(false);
    p.set_referenced(false);
    p.set_hotness(0);
    p.set_zram_dense(false);
    p.evict_cookie = 0;
  }
  space.AddResident(-static_cast<int64_t>(space.resident()));
  space.AddEvicted(-static_cast<int64_t>(space.evicted()));
  SyncZramFrames();
}

void MemoryManager::ResetForRecycle() {
  ICE_CHECK(spaces_.empty()) << "recycle with address spaces still registered";
  ICE_CHECK(pending_faults_.empty()) << "recycle with in-flight faults";
  ICE_CHECK(!in_reclaim_);
  ICE_CHECK_EQ(zram_.stored_bytes(), 0u) << "recycle with pages still in zram";
  next_space_id_ = 0;
  reclaim_cursor_ = 0;
  zram_frames_held_ = 0;
  last_zram_reject_time_ = 0;
  has_zram_reject_ = false;
  free_pages_ = static_cast<int64_t>(config_.total_pages - config_.os_reserved_pages);
  foreground_uid_ = kInvalidUid;
  arena_bytes_live_ = 0;
  arena_bytes_peak_ = 0;
  kswapd_woken_ = false;
  writeback_pending_ = 0;
}

SimDuration MemoryManager::ContentionPenalty() {
  if (!kswapd_woken_ || config_.reclaim_contention_mean == 0) {
    return 0;
  }
  return static_cast<SimDuration>(
      contention_rng_.Exponential(static_cast<double>(config_.reclaim_contention_mean)));
}

AccessOutcome MemoryManager::Access(AddressSpace& space, uint32_t vpn, bool write,
                                    const std::function<void()>& waker) {
  AccessOutcome outcome;
  PageInfo& p = space.page(vpn);
  bool foreground = space.uid() == foreground_uid_ && foreground_uid_ != kInvalidUid;

  switch (p.state()) {
    case PageState::kPresent:
      space.lru().Touch(&p);
      if (write && p.kind() == HeapKind::kFile) {
        p.set_dirty(true);
      }
      outcome.kind = AccessOutcome::Kind::kHit;
      outcome.cpu_us = config_.hit_cost;
      return outcome;

    case PageState::kUntouched: {
      ++*ct_.page_faults;
      outcome.kind = AccessOutcome::Kind::kFirstTouch;
      outcome.cpu_us = config_.fault_fixed_cost + ContentionPenalty();
      TakeFrame(space, outcome);
      MakePresent(space, &p);
      if (write && p.kind() == HeapKind::kFile) {
        p.set_dirty(true);
      }
      return outcome;
    }

    case PageState::kInZram: {
      ++*ct_.page_faults;
      outcome.kind = AccessOutcome::Kind::kZramFault;
      // Decompress cost is per-tier under the hotness policy (the dense bit
      // remembers which codec stored the page); baseline keeps the single
      // device codec cost. The ContentionPenalty() RNG draw stays in the
      // same stream position either way.
      SimDuration decompress = swap_gov_.enabled() ? swap_gov_.DecompressCost(p)
                                                   : zram_.decompress_cost();
      outcome.cpu_us = config_.fault_fixed_cost + decompress + ContentionPenalty();
      outcome.refault = true;
      TakeFrame(space, outcome);
      ICE_TRACE(engine_, TraceEventType::kZramDecompress,
                {.pid = space.pid(), .uid = space.uid(), .arg0 = p.zram_bytes});
      zram_.Drop(&p);
      SyncZramFrames();
      if (swap_gov_.enabled()) {
        swap_gov_.OnRefault(&p);
        p.set_zram_dense(false);
      }
      ++*ct_.zram_loads;
      RecordRefaultStats(space, p, foreground);
      shadow_.RecordRefault(&p, space, engine_.now(), foreground);
      MakePresent(space, &p);
      return outcome;
    }

    case PageState::kOnFlash: {
      ++*ct_.page_faults;
      outcome.kind = AccessOutcome::Kind::kIoFault;
      outcome.cpu_us = config_.fault_fixed_cost + ContentionPenalty();
      outcome.blocked = true;
      outcome.refault = true;
      TakeFrame(space, outcome);
      // The paper's RPF detects the refault at page-fault time (PTE check),
      // before the I/O completes — so the event fires here.
      RecordRefaultStats(space, p, foreground);
      shadow_.RecordRefault(&p, space, engine_.now(), foreground);
      if (swap_gov_.enabled() && IsAnon(p.kind())) {
        // An anon page only reaches flash via zram writeback; refaulting it
        // is exactly the re-reference evidence the hotness counter tracks.
        swap_gov_.OnRefault(&p);
      }
      p.set_state(PageState::kFaultingIn);

      // The entry itself is created even without a waker: faults_in_flight()
      // counts primary flash faults by pending_faults_ size.
      auto [it, inserted] = pending_faults_.try_emplace(space.handle_of(vpn).packed);
      if (inserted && it->second.capacity() == 0) {
        it->second = TakeWaiterList();
      }
      if (waker) {
        it->second.push_back(waker);
      }
      ICE_CHECK(storage_ != nullptr) << "flash fault without a storage device";

      // Readahead: only when the fault pattern is sequential (the kernel's
      // readahead heuristic) pull the following contiguous on-flash pages in
      // the same request. They complete together, so bulk restores (launch,
      // content streaming) mostly hit while random faults stay single-page.
      bool sequential = space.last_flash_fault_vpn != UINT32_MAX &&
                        vpn >= space.last_flash_fault_vpn &&
                        vpn - space.last_flash_fault_vpn <= 4;
      space.last_flash_fault_vpn = vpn;
      uint32_t window = sequential ? config_.readahead_pages : 1;
      // The readahead batch is the contiguous run [vpn, vpn + batch_pages):
      // the completion closure carries just the range, so a flash fault
      // allocates no per-fault vpn list.
      uint32_t batch_pages = 1;
      for (uint32_t next = vpn + 1;
           next < space.total_pages() && batch_pages < window; ++next) {
        PageInfo& np = space.page(next);
        if (np.state() != PageState::kOnFlash) {
          break;
        }
        ++*ct_.page_faults;
        RecordRefaultStats(space, np, foreground);
        shadow_.RecordRefault(&np, space, engine_.now(), foreground);
        if (swap_gov_.enabled() && IsAnon(np.kind())) {
          swap_gov_.OnRefault(&np);
        }
        TakeFrame(space, outcome);
        np.set_state(PageState::kFaultingIn);
        ++batch_pages;
      }

      Bio bio;
      bio.dir = IoDir::kRead;
      bio.pages = batch_pages;
      bio.foreground = foreground;
      bio.pid = space.pid();
      AddressSpace* sp = &space;
      bio.on_complete = [this, sp, vpn, batch_pages]() {
        for (uint32_t i = 0; i < batch_pages; ++i) {
          FinishIoFault(sp, vpn + i);
        }
      };
      storage_->Submit(bio);
      return outcome;
    }

    case PageState::kFaultingIn: {
      // Pile onto the in-flight read.
      outcome.kind = AccessOutcome::Kind::kIoFault;
      outcome.blocked = true;
      if (waker) {
        auto [it, inserted] = pending_faults_.try_emplace(space.handle_of(vpn).packed);
        if (inserted && it->second.capacity() == 0) {
          it->second = TakeWaiterList();
        }
        it->second.push_back(waker);
      }
      return outcome;
    }
  }
  ICE_CHECK(false) << "unreachable";
  return outcome;
}

MemoryManager::WaiterList MemoryManager::TakeWaiterList() {
  if (waiter_pool_.empty()) {
    return {};
  }
  WaiterList list = std::move(waiter_pool_.back());
  waiter_pool_.pop_back();
  return list;
}

void MemoryManager::RecycleWaiterList(WaiterList&& waiters) {
  waiters.clear();
  if (waiters.capacity() > 0 && waiter_pool_.size() < 64) {
    waiter_pool_.push_back(std::move(waiters));
  }
}

void MemoryManager::RecordRefaultStats(AddressSpace& space, const PageInfo& p,
                                       bool foreground) {
  HeapKind kind = p.kind();
  ICE_TRACE(engine_, TraceEventType::kRefault,
            {.pid = space.pid(),
             .uid = space.uid(),
             .flags = (foreground ? kTraceFlagForeground : 0) |
                      (IsAnon(kind) ? kTraceFlagAnon : 0),
             .arg0 = p.vpn});
  ++*ct_.refaults;
  ++*(foreground ? ct_.refaults_fg : ct_.refaults_bg);
  ++*(IsAnon(kind) ? ct_.refaults_anon : ct_.refaults_file);
  if (kind == HeapKind::kJavaHeap) {
    ++*ct_.refaults_java_heap;
  } else if (kind == HeapKind::kNativeHeap) {
    ++*ct_.refaults_native_heap;
  }
  ++space.total_refaults;
}

void MemoryManager::MakePresent(AddressSpace& space, PageInfo* page) {
  ICE_CHECK(page->state() != PageState::kPresent);
  bool was_evicted =
      page->state() == PageState::kInZram || page->state() == PageState::kFaultingIn ||
      page->state() == PageState::kOnFlash;
  page->set_state(PageState::kPresent);
  space.AddResident(1);
  if (was_evicted) {
    space.AddEvicted(-1);
  }
  space.lru().Insert(page);
}

void MemoryManager::FinishIoFault(AddressSpace* space, uint32_t vpn) {
  PageInfo& p = space->page(vpn);
  if (p.state() != PageState::kFaultingIn) {
    // Process released while the read was in flight.
    return;
  }
  MakePresent(*space, &p);
  auto it = pending_faults_.find(space->handle_of(vpn).packed);
  if (it != pending_faults_.end()) {
    WaiterList waiters = std::move(it->second);
    pending_faults_.erase(it);
    for (auto& w : waiters) {
      w();
    }
    RecycleWaiterList(std::move(waiters));
  }
}

void MemoryManager::TakeFrame(AddressSpace& space, AccessOutcome& outcome) {
  (void)space;
  if (config_.wm.NeedsDirectReclaim(free_pages_ < 0 ? 0 : static_cast<PageCount>(free_pages_)) &&
      !in_reclaim_) {
    // Direct reclaim: performed synchronously in the allocating task's
    // context regardless of its priority — the priority inversion of §2.2.3.
    ++*ct_.direct_reclaims;
    int attempts = 0;
    while (config_.wm.NeedsDirectReclaim(
               free_pages_ < 0 ? 0 : static_cast<PageCount>(free_pages_)) &&
           attempts < 8) {
      ++attempts;
      ReclaimResult r = ReclaimBatch(config_.reclaim_batch, /*direct=*/true);
      outcome.cpu_us += r.cpu_us;
      outcome.direct_reclaimed += r.reclaimed;
      if (r.reclaimed == 0) {
        // Reclaim cannot make progress: fall back to the OOM path (LMK).
        if (!oom_handler_ || !oom_handler_()) {
          break;  // Emergency allocation from the reserve below.
        }
      }
    }
  }
  --free_pages_;
  MaybeWakeKswapd();
}

void MemoryManager::MaybeWakeKswapd() {
  PageCount free = free_pages_ < 0 ? 0 : static_cast<PageCount>(free_pages_);
  if (config_.wm.NeedsKswapd(free) && !kswapd_woken_) {
    kswapd_woken_ = true;
    ++*ct_.kswapd_wakeups;
    if (kswapd_waker_) {
      kswapd_waker_();
    }
  }
}

void MemoryManager::SaveTo(BinaryWriter& w) const {
  // Quiescent-point contract: no flash fault may be mid-flight (its I/O
  // completion closure would be lost) and no reclaim batch mid-run.
  ICE_CHECK_EQ(pending_faults_.size(), 0u) << "snapshot with faults in flight";
  ICE_CHECK(!in_reclaim_) << "snapshot during a reclaim batch";
  w.U32(next_space_id_);
  w.U64(reclaim_cursor_);
  w.I64(free_pages_);
  w.U64(zram_frames_held_);
  w.U64(writeback_pending_);
  w.I64(foreground_uid_);
  w.U64(arena_bytes_live_);
  w.U64(arena_bytes_peak_);
  w.Bool(kswapd_woken_);
  contention_rng_.SaveTo(w);
  zram_.SaveTo(w);
  shadow_.SaveTo(w);
  w.Bool(has_zram_reject_);
  w.U64(last_zram_reject_time_);
  swap_gov_.SaveTo(w);
  w.U64(spaces_.size());
  for (const AddressSpace* space : spaces_) {
    space->SaveTo(w);
  }
}

void MemoryManager::RestoreFrom(BinaryReader& r) {
  ICE_CHECK_EQ(pending_faults_.size(), 0u);
  ICE_CHECK(!in_reclaim_);
  uint32_t next_space_id = r.U32();
  ICE_CHECK_EQ(next_space_id, next_space_id_)
      << "structural replay diverged: space-id allocation differs";
  reclaim_cursor_ = r.U64();
  free_pages_ = r.I64();
  zram_frames_held_ = r.U64();
  writeback_pending_ = r.U64();
  foreground_uid_ = static_cast<Uid>(r.I64());
  arena_bytes_live_ = r.U64();
  arena_bytes_peak_ = r.U64();
  kswapd_woken_ = r.Bool();
  contention_rng_.RestoreFrom(r);
  zram_.RestoreFrom(r);
  shadow_.RestoreFrom(r);
  has_zram_reject_ = r.Bool();
  last_zram_reject_time_ = r.U64();
  swap_gov_.RestoreFrom(r);
  uint64_t count = r.U64();
  ICE_CHECK_EQ(count, spaces_.size())
      << "structural replay diverged: registered space count differs";
  for (AddressSpace* space : spaces_) {
    space->RestoreFrom(r);
  }
}

AddressSpace* MemoryManager::FindSpaceById(uint32_t space_id) const {
  for (AddressSpace* space : spaces_) {
    if (space->space_id() == space_id) {
      return space;
    }
  }
  return nullptr;
}

double MemoryManager::SwapPressure() const {
  if (!swap_gov_.enabled()) {
    return 0.0;
  }
  if (has_zram_reject_ &&
      engine_.now() - last_zram_reject_time_ <= config_.swap.reject_pressure_window) {
    return 1.0;
  }
  // Between rejects the signal ramps with how far utilization has pushed
  // past the writeback threshold — the pool is compressing, but poorly
  // enough that writeback cannot keep it comfortable.
  const double lo = config_.swap.writeback_util;
  const double util = zram_.utilization();
  if (util <= lo || lo >= 1.0) {
    return 0.0;
  }
  return std::min(1.0, (util - lo) / (1.0 - lo));
}

bool MemoryManager::KswapdShouldRun() const {
  if (!kswapd_woken_) {
    return false;
  }
  PageCount free = free_pages_ < 0 ? 0 : static_cast<PageCount>(free_pages_);
  return !config_.wm.KswapdDone(free);
}

ReclaimResult MemoryManager::KswapdBatch() {
  ReclaimResult r = ReclaimBatch(config_.reclaim_batch, /*direct=*/false);
  PageCount free = free_pages_ < 0 ? 0 : static_cast<PageCount>(free_pages_);
  if (config_.wm.KswapdDone(free) || r.reclaimed == 0) {
    kswapd_woken_ = false;
  }
  return r;
}

}  // namespace ice
