// Reclaim half of the MemoryManager: per-memcg proportional LRU scanning,
// page eviction, kswapd batches, direct reclaim and per-process reclaim.
//
// Mirrors Android's shrink_node(): every registered address space ("memory
// cgroup") receives reclaim pressure proportional to its LRU size — the
// foreground app included. This proportional pressure is why background
// memory churn displaces foreground pages on real devices, and it is the
// exact behavior Acclaim's foreground-aware eviction filter modifies.
#include <algorithm>

#include "src/base/log.h"
#include "src/mem/memory_manager.h"
#include "src/trace/trace.h"

namespace ice {

namespace {
// Linux-style swappiness: how strongly anonymous pages are preferred
// relative to file pages (0..200 scale, 100 = proportional). Android ships
// with a high value because ZRAM makes anon reclaim cheap.
constexpr uint32_t kSwappiness = 100;
}  // namespace

ReclaimResult MemoryManager::ReclaimBatch(PageCount target, bool direct) {
  ReclaimResult result;
  result.direct = direct;
  if (target == 0 || spaces_.empty()) {
    return result;
  }
  ICE_CHECK(!in_reclaim_) << "reentrant reclaim";
  in_reclaim_ = true;
  ICE_TRACE(engine_, TraceEventType::kReclaimBegin,
            {.flags = direct ? kTraceFlagDirect : 0, .arg0 = target});

  // Total LRU size across spaces, for proportional pressure.
  uint64_t total_lru = 0;
  for (AddressSpace* space : spaces_) {
    total_lru += space->lru().total_size();
  }
  if (total_lru == 0) {
    ICE_TRACE(engine_, TraceEventType::kReclaimEnd,
              {.flags = direct ? kTraceFlagDirect : 0, .arg0 = 0, .arg1 = 0});
    in_reclaim_ = false;
    return result;
  }

  bool anon_ok = zram_.HasRoom();
  if (swap_gov_.enabled() &&
      (!anon_ok || zram_.utilization() >= config_.swap.writeback_util)) {
    // Self-clean before planning: drain FIFO-oldest compressed pages to
    // flash so this batch's anon share has room to land.
    PageCount written = ZramWritebackBatch(config_.swap.writeback_batch);
    result.cpu_us += written * config_.writeback_submit_cost;
    anon_ok = zram_.HasRoom();
  }
  size_t n = spaces_.size();
  size_t spaces_scanned = 0;
  // Rotate the starting space so rounding leftovers spread fairly.
  for (size_t i = 0; i < n && result.reclaimed < target; ++i) {
    spaces_scanned = i + 1;
    AddressSpace* space = spaces_[(reclaim_cursor_ + i) % n];
    LruLists& lru = space->lru();
    uint64_t space_lru = lru.total_size();
    if (space_lru == 0) {
      continue;
    }
    // This space's proportional share (at least one page so small spaces
    // still age).
    PageCount share = std::max<PageCount>(1, target * space_lru / total_lru);
    share = std::min(share, target - result.reclaimed);

    lru.Balance(LruPool::kAnon);
    lru.Balance(LruPool::kFile);

    size_t anon_avail = anon_ok ? lru.inactive_size(LruPool::kAnon) : 0;
    size_t file_avail = lru.inactive_size(LruPool::kFile);
    uint64_t anon_weight = static_cast<uint64_t>(anon_avail) * kSwappiness;
    uint64_t file_weight = static_cast<uint64_t>(file_avail) * 100;
    uint64_t total_weight = anon_weight + file_weight;
    if (total_weight == 0) {
      continue;
    }
    PageCount anon_share = static_cast<PageCount>(share * anon_weight / total_weight);
    PageCount file_share = share - anon_share;

    struct PoolPlan {
      LruPool pool;
      PageCount want;
    };
    PoolPlan plans[2] = {{LruPool::kFile, file_share}, {LruPool::kAnon, anon_share}};
    for (const PoolPlan& plan : plans) {
      if (plan.want == 0) {
        continue;
      }
      uint32_t want = static_cast<uint32_t>(plan.want);
      // Charge the true pages-examined count: second-chance promotions and
      // filter rotations consume scan budget even though they isolate
      // nothing, so `scanned` (and the scan_cost charged from it) must come
      // from the scan itself, not from the victims it yielded.
      result.scanned +=
          lru.IsolateCandidates(plan.pool, want, want * 4, victim_filter_, isolate_scratch_);
      bool store_failed = false;
      for (PageInfo* page : isolate_scratch_) {
        if (store_failed && IsAnon(page->kind())) {
          // A store already failed in this batch: the remaining anonymous
          // victims cannot fit either, so put them back without burning a
          // compression attempt (Zram::Store draws its ratio before the
          // capacity check).
          lru.PutBackInactive(page);
          continue;
        }
        if (EvictPage(*space, page, result, direct) == EvictOutcome::kZramFull) {
          store_failed = true;
        }
      }
      if (store_failed) {
        // ZRAM filled up mid-batch: give writeback (hotness policy only) a
        // chance to reopen the pool, then re-check instead of trusting the
        // value computed before the space loop, so later spaces stop
        // planning anon shares and churning isolate/put-back on unstorable
        // pages.
        if (swap_gov_.enabled()) {
          PageCount written = ZramWritebackBatch(config_.swap.writeback_batch);
          result.cpu_us += written * config_.writeback_submit_cost;
        }
        anon_ok = zram_.HasRoom();
      }
    }
  }
  // Advance the cursor past the last space scanned: when the batch hit its
  // target early, the next batch starts at the first unscanned space instead
  // of re-draining the same early spaces every time. A full cycle (or a
  // no-progress pass) still rotates by one so rounding leftovers spread.
  size_t advance = spaces_scanned % n;
  reclaim_cursor_ = (reclaim_cursor_ + std::max<size_t>(1, advance)) % n;

  result.cpu_us += result.scanned * config_.scan_cost + config_.reclaim_batch_overhead;
  // One zram-frame sync per batch instead of per evicted page: nothing reads
  // free_pages_ between evictions of a batch, so deferring the stored-bytes →
  // frames-held reconciliation to the batch boundary is observation-
  // equivalent and removes a division from the per-page eviction path.
  SyncZramFrames();
  FlushWritebackBatch();

  ICE_TRACE(engine_, TraceEventType::kReclaimEnd,
            {.flags = direct ? kTraceFlagDirect : 0,
             .arg0 = result.reclaimed,
             .arg1 = result.scanned});
  in_reclaim_ = false;
  return result;
}

MemoryManager::EvictOutcome MemoryManager::EvictPage(AddressSpace& space, PageInfo* page,
                                                     ReclaimResult& result, bool direct) {
  ICE_CHECK(page->state() == PageState::kPresent);

  if (IsAnon(page->kind())) {
    if (swap_gov_.ShouldReject(*page)) {
      // Warm page: the admission gate keeps it resident rather than
      // round-tripping it through a compression it would immediately undo.
      // It also cools by one step, so sustained scan pressure eventually
      // wins over a page that stops refaulting.
      space.lru().PutBackInactive(page);
      swap_gov_.OnRejected(page);
      ++*ct_.swap_rejects_hot;
      ICE_TRACE(engine_, TraceEventType::kZramReject,
                {.uid = space.uid(),
                 .flags = kTraceFlagHot | (direct ? kTraceFlagDirect : 0),
                 .arg0 = page->vpn});
      return EvictOutcome::kRejectedHot;
    }
    SimDuration compress_cost = zram_.compress_cost();
    bool dense = false;
    bool stored;
    if (swap_gov_.enabled()) {
      dense = swap_gov_.UseDenseTier(*page);
      const ZramTierProfile& tier = swap_gov_.TierFor(dense);
      stored = zram_.StoreWithRatio(page, tier.mean_ratio, tier.ratio_sigma);
      compress_cost = tier.compress_us;
    } else {
      stored = zram_.Store(page);
    }
    if (!stored) {
      // ZRAM full: the page cannot be evicted; give it back. The reject is
      // visible — counter, trace event, and the SwapPressure() window the
      // LMK reads — instead of silently stopping anon planning.
      space.lru().PutBackInactive(page);
      ++*ct_.zram_rejects;
      last_zram_reject_time_ = engine_.now();
      has_zram_reject_ = true;
      ICE_TRACE(engine_, TraceEventType::kZramReject,
                {.uid = space.uid(),
                 .flags = direct ? kTraceFlagDirect : 0,
                 .arg0 = page->vpn});
      return EvictOutcome::kZramFull;
    }
    page->set_state(PageState::kInZram);
    if (swap_gov_.enabled()) {
      page->set_zram_dense(dense);
      ++*(dense ? ct_.swap_stores_dense : ct_.swap_stores_fast);
      swap_gov_.OnStored(page, space.handle_of(page->vpn).packed);
    }
    result.cpu_us += compress_cost + config_.unmap_cost;
    ++*ct_.zram_stores;
    ++*ct_.pages_reclaimed_anon;
    ++*(direct ? ct_.pages_reclaimed_anon_direct : ct_.pages_reclaimed_anon_kswapd);
    ++result.reclaimed_anon;
    ICE_TRACE(engine_, TraceEventType::kZramCompress,
              {.uid = space.uid(), .arg0 = page->zram_bytes});
  } else {
    if (page->dirty()) {
      ++writeback_pending_;
      page->set_dirty(false);
      result.cpu_us += config_.writeback_submit_cost + config_.unmap_cost;
      if (writeback_pending_ >= config_.writeback_batch) {
        FlushWritebackBatch();
      }
    } else {
      result.cpu_us += config_.discard_cost + config_.unmap_cost;
    }
    page->set_state(PageState::kOnFlash);
    ++*ct_.pages_reclaimed_file;
    ++*(direct ? ct_.pages_reclaimed_file_direct : ct_.pages_reclaimed_file_kswapd);
    ++result.reclaimed_file;
  }

  shadow_.RecordEviction(page);
  space.AddResident(-1);
  space.AddEvicted(1);
  ++space.total_evictions;
  ++free_pages_;
  ++result.reclaimed;
  ++*ct_.pages_reclaimed;
  ++*(direct ? ct_.pages_reclaimed_direct : ct_.pages_reclaimed_kswapd);
  ICE_TRACE(engine_, TraceEventType::kPageEvict,
            {.uid = space.uid(),
             .flags = (IsAnon(page->kind()) ? kTraceFlagAnon : 0) |
                      (direct ? kTraceFlagDirect : 0),
             .arg0 = page->vpn});
  return EvictOutcome::kEvicted;
}

PageCount MemoryManager::ZramWritebackBatch(PageCount max_pages) {
  PageCount written = 0;
  uint64_t handle = 0;
  while (written < max_pages && swap_gov_.PopWritebackCandidate(&handle)) {
    PageHandle h;
    h.packed = handle;
    // Space ids are never reused, so a stale handle (refaulted page, dead
    // process, or a duplicate FIFO entry from a re-stored page) can only
    // miss; misses are skipped without consuming the page budget.
    AddressSpace* space = FindSpaceById(h.space_id());
    if (space == nullptr) {
      continue;
    }
    PageInfo& page = space->page(h.vpn());
    if (page.state() != PageState::kInZram) {
      continue;
    }
    zram_.Drop(&page);
    page.set_zram_dense(false);
    page.set_state(PageState::kOnFlash);
    ++written;
  }
  if (written == 0) {
    return 0;
  }
  *ct_.swap_writeback_pages += written;
  SyncZramFrames();
  ICE_TRACE(engine_, TraceEventType::kZramWriteback, {.arg0 = written});
  if (storage_ != nullptr) {
    Bio bio;
    bio.dir = IoDir::kWrite;
    bio.pages = written;
    bio.foreground = false;
    storage_->Submit(bio);
  }
  return written;
}

void MemoryManager::FlushWritebackBatch() {
  if (writeback_pending_ == 0 || storage_ == nullptr) {
    writeback_pending_ = 0;
    return;
  }
  Bio bio;
  bio.dir = IoDir::kWrite;
  bio.pages = writeback_pending_;
  bio.foreground = false;
  storage_->Submit(bio);
  writeback_pending_ = 0;
}

ReclaimResult MemoryManager::ReclaimAllOf(AddressSpace& space) {
  ReclaimResult result;
  ICE_CHECK(!in_reclaim_);
  in_reclaim_ = true;
  for (PageInfo& page : space.pages()) {
    if (page.state() != PageState::kPresent) {
      continue;
    }
    ++result.scanned;
    space.lru().Remove(&page);
    // Per-process reclaim runs in a daemon context, not an allocating task's:
    // attribute to the non-direct (kswapd-side) buckets.
    if (EvictPage(space, &page, result, /*direct=*/false) != EvictOutcome::kEvicted) {
      // Put back happened inside EvictPage (zram full or hotness-rejected);
      // nothing more to do.
      continue;
    }
  }
  result.cpu_us += result.scanned * config_.scan_cost;
  SyncZramFrames();
  FlushWritebackBatch();
  in_reclaim_ = false;
  return result;
}

}  // namespace ice
