// Workingset shadow-entry bookkeeping and the refault event stream.
//
// When a page is evicted the kernel leaves a shadow entry recording the
// global eviction sequence number; a later fault on that entry is a
// *refault* with distance = (sequence now) - (sequence at eviction). ICE's
// RPF component consumes exactly this signal (§4.2.1, "the modern Linux
// kernel has already provided an interface to obtain the refault-related
// information (shadow_entry)").
#ifndef SRC_MEM_SHADOW_H_
#define SRC_MEM_SHADOW_H_

#include <cstdint>
#include <vector>

#include "src/base/units.h"
#include "src/mem/page.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct RefaultEvent {
  SimTime time = 0;
  Pid pid = kInvalidPid;
  Uid uid = kInvalidUid;
  HeapKind kind = HeapKind::kFile;
  // True when the owning application was foreground at fault time.
  bool foreground = false;
  // Eviction-to-refault distance in evicted pages (refault distance).
  uint64_t distance = 0;
};

class RefaultListener {
 public:
  virtual ~RefaultListener() = default;
  virtual void OnRefault(const RefaultEvent& event) = 0;
};

class AddressSpace;

// Tracks the global eviction sequence and fans refault events out to
// listeners (ICE's daemon, experiment probes, ...).
//
// Shadow entries are packed into the evicted page's own PageInfo record
// (`evict_cookie`), the way the kernel packs them into the vacated radix-tree
// slot — recording an eviction or a refault allocates nothing. The owning
// AddressSpace is passed explicitly because the packed PageInfo carries no
// owner back-pointer.
class ShadowRegistry {
 public:
  ShadowRegistry() = default;

  // Called on eviction: stamps the page's shadow cookie.
  void RecordEviction(PageInfo* page);

  // Called on fault-in of a previously evicted page. Returns the populated
  // event (already dispatched to listeners).
  RefaultEvent RecordRefault(PageInfo* page, const AddressSpace& space, SimTime now,
                             bool foreground);

  void AddListener(RefaultListener* listener);
  void RemoveListener(RefaultListener* listener);

  uint64_t eviction_sequence() const { return eviction_seq_; }
  uint64_t refault_count() const { return refault_count_; }

  // Snapshot support: the sequence counters only — shadow cookies live in
  // PageInfo records and listeners are re-registered structurally.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  uint64_t eviction_seq_ = 0;
  uint64_t refault_count_ = 0;
  std::vector<RefaultListener*> listeners_;
};

}  // namespace ice

#endif  // SRC_MEM_SHADOW_H_
