// Named monotonic counters, the simulator's equivalent of /proc/vmstat.
//
// Subsystems increment counters through a shared StatsRegistry owned by the
// simulation; experiments snapshot and diff them to produce table rows.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ice {

class BinaryReader;
class BinaryWriter;

class StatsRegistry {
 public:
  StatsRegistry() = default;

  // Returns a stable pointer to the named counter; creating it (0) if absent.
  // Pointers remain valid for the registry's lifetime.
  uint64_t* Counter(const std::string& name);

  void Add(const std::string& name, uint64_t delta) { *Counter(name) += delta; }
  void Increment(const std::string& name) { Add(name, 1); }

  uint64_t Get(const std::string& name) const;

  // Snapshot of all counters (sorted by name).
  std::map<std::string, uint64_t> Snapshot() const;

  // Difference of two snapshots, counter-by-counter (new counters included).
  static std::map<std::string, uint64_t> Diff(const std::map<std::string, uint64_t>& before,
                                              const std::map<std::string, uint64_t>& after);

  void Reset();

  std::string ToString() const;

  // Snapshot support. RestoreFrom zeroes existing counters in place and
  // overwrites/creates from the stream — counters are never erased, so
  // pointers handed out by Counter() stay valid across a restore.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  // std::map keeps pointer stability on insert.
  std::map<std::string, uint64_t> counters_;
};

// Well-known counter names, shared between subsystems and experiments.
namespace stat {
inline constexpr const char* kPagesReclaimed = "mem.pages_reclaimed";
inline constexpr const char* kPagesReclaimedAnon = "mem.pages_reclaimed_anon";
inline constexpr const char* kPagesReclaimedFile = "mem.pages_reclaimed_file";
// kswapd vs direct-reclaim attribution (vmstat's pgsteal_kswapd/_direct
// analog), per pool and total. The "kswapd" buckets cover every non-direct
// context (kswapd batches and per-process reclaim); Fig 10's breakdown and
// the reclaim_begin/end trace events rely on the split.
inline constexpr const char* kPagesReclaimedKswapd = "mem.pages_reclaimed_kswapd";
inline constexpr const char* kPagesReclaimedDirect = "mem.pages_reclaimed_direct";
inline constexpr const char* kPagesReclaimedAnonKswapd = "mem.pages_reclaimed_anon_kswapd";
inline constexpr const char* kPagesReclaimedAnonDirect = "mem.pages_reclaimed_anon_direct";
inline constexpr const char* kPagesReclaimedFileKswapd = "mem.pages_reclaimed_file_kswapd";
inline constexpr const char* kPagesReclaimedFileDirect = "mem.pages_reclaimed_file_direct";
inline constexpr const char* kRefaults = "mem.refaults";
inline constexpr const char* kRefaultsFg = "mem.refaults_fg";
inline constexpr const char* kRefaultsBg = "mem.refaults_bg";
inline constexpr const char* kRefaultsAnon = "mem.refaults_anon";
inline constexpr const char* kRefaultsFile = "mem.refaults_file";
inline constexpr const char* kRefaultsJavaHeap = "mem.refaults_java_heap";
inline constexpr const char* kRefaultsNativeHeap = "mem.refaults_native_heap";
inline constexpr const char* kPageFaults = "mem.page_faults";
inline constexpr const char* kDirectReclaims = "mem.direct_reclaims";
inline constexpr const char* kKswapdWakeups = "mem.kswapd_wakeups";
inline constexpr const char* kZramStores = "mem.zram_stores";
inline constexpr const char* kZramLoads = "mem.zram_loads";
// A Store refused for lack of capacity (the pool hard-stopped mid-batch).
inline constexpr const char* kZramRejects = "mem.zram_rejects";
// Hotness swap policy: victims kept resident by the admission gate, pages
// written back from zram to flash, and stores by compression tier.
inline constexpr const char* kSwapRejectsHot = "swap.rejects_hot";
inline constexpr const char* kSwapWritebackPages = "swap.writeback_pages";
inline constexpr const char* kSwapStoresFast = "swap.stores_fast";
inline constexpr const char* kSwapStoresDense = "swap.stores_dense";
inline constexpr const char* kIoReads = "io.reads";
inline constexpr const char* kIoWrites = "io.writes";
inline constexpr const char* kIoReadBytes = "io.read_bytes";
inline constexpr const char* kIoWriteBytes = "io.write_bytes";
inline constexpr const char* kLmkKills = "proc.lmk_kills";
inline constexpr const char* kFreezes = "ice.freezes";
inline constexpr const char* kThaws = "ice.thaws";
inline constexpr const char* kColdLaunches = "android.cold_launches";
inline constexpr const char* kHotLaunches = "android.hot_launches";
}  // namespace stat

}  // namespace ice

#endif  // SRC_BASE_STATS_H_
