// Basic unit types and literal helpers shared across the simulator.
//
// All simulated time is expressed in microseconds (SimTime). All memory sizes
// are expressed either in bytes (uint64_t) or in 4 KiB pages (PageCount).
#ifndef SRC_BASE_UNITS_H_
#define SRC_BASE_UNITS_H_

#include <cstdint>

namespace ice {

// Simulated time in microseconds since simulation start.
using SimTime = uint64_t;
// A duration in microseconds.
using SimDuration = uint64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

constexpr SimDuration Us(uint64_t n) { return n; }
constexpr SimDuration Ms(uint64_t n) { return n * kMillisecond; }
constexpr SimDuration Sec(uint64_t n) { return n * kSecond; }
constexpr SimDuration Min(uint64_t n) { return n * kMinute; }

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / kMillisecond; }

// Memory sizes.
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// The simulator models 4 KiB pages, matching ARM64 Android defaults.
inline constexpr uint64_t kPageSize = 4 * kKiB;

using PageCount = uint64_t;

constexpr PageCount BytesToPages(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }
constexpr uint64_t PagesToBytes(PageCount pages) { return pages * kPageSize; }
constexpr double PagesToMiB(PageCount pages) {
  return static_cast<double>(PagesToBytes(pages)) / static_cast<double>(kMiB);
}

// Process / application identifiers, mirroring Linux pid_t and Android UIDs.
using Pid = int32_t;
using Uid = int32_t;

inline constexpr Pid kInvalidPid = -1;
inline constexpr Uid kInvalidUid = -1;

}  // namespace ice

#endif  // SRC_BASE_UNITS_H_
