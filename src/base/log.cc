#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ice {

namespace {
// Atomic: sweep worker threads read the level while logging concurrently.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace ice
