#include "src/base/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/base/log.h"

namespace ice {

void Histogram::Add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::Clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Histogram::Sum() const {
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s;
}

double Histogram::Mean() const { return values_.empty() ? 0.0 : Sum() / values_.size(); }

double Histogram::Min() const {
  return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
}

double Histogram::Max() const {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

double Histogram::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double m = Mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / (values_.size() - 1));
}

double Histogram::Percentile(double q) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  double rank = q * (sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - lo;
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Histogram::FractionAbove(double threshold) const {
  if (values_.empty()) {
    return 0.0;
  }
  size_t n = 0;
  for (double v : values_) {
    if (v > threshold) {
      ++n;
    }
  }
  return static_cast<double>(n) / values_.size();
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << Mean() << " p50=" << Percentile(0.5)
     << " p95=" << Percentile(0.95) << " max=" << Max();
  return os.str();
}

}  // namespace ice
