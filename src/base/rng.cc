#include "src/base/rng.h"

#include <cmath>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

namespace {
// SplitMix64, used to expand the user seed into PCG state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  state_ = SplitMix64(s);
  inc_ = SplitMix64(s) | 1ULL;  // Stream selector must be odd.
  Next();
}

uint32_t Rng::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

uint32_t Rng::Below(uint32_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Lemire's method with rejection for exact uniformity.
  uint64_t m = static_cast<uint64_t>(Next()) * bound;
  uint32_t l = static_cast<uint32_t>(m);
  if (l < bound) {
    uint32_t t = -bound % bound;
    while (l < t) {
      m = static_cast<uint64_t>(Next()) * bound;
      l = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  ICE_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next64());
  }
  if (span <= UINT32_MAX) {
    return lo + static_cast<int64_t>(Below(static_cast<uint32_t>(span)));
  }
  return lo + static_cast<int64_t>(Next64() % span);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_gauss_) {
    has_gauss_ = false;
    return mean + stddev * gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double mean) {
  ICE_CHECK_GT(mean, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-12);
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) {
    return 0;
  }
  // Inverse-CDF approximation for the continuous Zipf/Pareto distribution.
  // Exact for s == 1 up to normalization; adequate for skewed access models.
  double u = NextDouble();
  if (s == 1.0) {
    double h = std::log(static_cast<double>(n));
    uint64_t r = static_cast<uint64_t>(std::exp(u * h)) - 1;
    return r >= n ? n - 1 : r;
  }
  double one_minus_s = 1.0 - s;
  double hn = (std::pow(static_cast<double>(n), one_minus_s) - 1.0) / one_minus_s;
  double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s);
  uint64_t r = static_cast<uint64_t>(x) - (x >= 1.0 ? 1 : 0);
  return r >= n ? n - 1 : r;
}

double Rng::LogNormal(double median, double sigma) {
  ICE_CHECK_GT(median, 0.0);
  return median * std::exp(Gaussian(0.0, sigma));
}

Rng Rng::Fork() { return Rng(Next64()); }

void Rng::SaveTo(BinaryWriter& w) const {
  w.U64(state_);
  w.U64(inc_);
  w.Bool(has_gauss_);
  w.F64(gauss_);
}

void Rng::RestoreFrom(BinaryReader& r) {
  state_ = r.U64();
  inc_ = r.U64();
  has_gauss_ = r.Bool();
  gauss_ = r.F64();
}

}  // namespace ice
