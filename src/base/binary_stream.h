// Versioned binary serialization for simulation snapshots.
//
// A stream is: an 8-byte magic, a u32 format version, then a sequence of
// tagged sections ({u32 tag, u64 payload length, payload}, nestable), a
// zero end-marker tag, and a trailing 64-bit checksum (lane-folded FNV-1a,
// SnapshotChecksum64) over everything before it. Integers are little-endian
// fixed-width; no varints — snapshot size is dominated by page-arena dumps,
// not field encoding.
//
// BinaryReader is defensive end to end: magic/version/checksum are verified
// up front, every read is bounds-checked, and section nesting is enforced,
// so corrupt, truncated, or version-skewed inputs fail with a
// std::runtime_error ("snapshot: ...") instead of undefined behavior.
#ifndef SRC_BASE_BINARY_STREAM_H_
#define SRC_BASE_BINARY_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ice {

inline constexpr char kSnapshotMagic[8] = {'I', 'C', 'E', 'S', 'N', 'A', 'P', '1'};
// Version history: 1 = initial format; 2 = Engine serializes the auxiliary
// noise RNG stream after the seeded one.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

class BinaryWriter {
 public:
  BinaryWriter();

  void U8(uint8_t v);
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);
  void Bytes(const void* data, size_t size);

  // Opens a tagged section (tag must be nonzero). Sections nest; each
  // BeginSection must be matched by an EndSection before Finish().
  void BeginSection(uint32_t tag);
  void EndSection();

  // Capacity hint: pre-grows the buffer to hold `total` more bytes, so a
  // caller that knows the dominant payload size (page-arena dumps) avoids
  // the doubling-growth copies of a multi-megabyte append sequence.
  void Reserve(size_t total) { buf_.reserve(buf_.size() + total); }

  // Writes the end marker and the trailing checksum, then returns the
  // completed buffer. The writer is spent afterwards (until Clear()).
  std::vector<uint8_t> Finish();

  // Rewinds to a fresh stream (magic + version re-written) while keeping the
  // buffer's capacity, so a worker that snapshots repeatedly pays the
  // multi-megabyte growth sequence once instead of per save. Pair with
  // FinishInPlace(), which — unlike Finish() — does not move the buffer (and
  // its capacity) out of the writer.
  void Clear();

  size_t size() const { return buf_.size(); }
  size_t capacity() const { return buf_.capacity(); }

  // Read-only view of the raw stream built so far (without end marker or
  // checksum until Finish runs).
  const std::vector<uint8_t>& buffer() const { return buf_; }

  // Like Finish(), but completes the stream in place (end marker + checksum)
  // and leaves the bytes in the writer's own buffer, returning a view. The
  // caller copies or reads what it needs, then Clear() re-arms the writer
  // with its capacity intact — the reuse path Finish()'s move-out can't
  // offer.
  const std::vector<uint8_t>& FinishInPlace();

 private:
  std::vector<uint8_t> buf_;
  std::vector<size_t> open_;  // Offsets of open sections' length fields.
  bool finished_ = false;
};

class BinaryReader {
 public:
  // Verifies magic, version, and the trailing checksum; throws
  // std::runtime_error on any mismatch or short buffer. The buffer must
  // outlive the reader. `verify_checksum = false` skips the full-stream
  // checksum scan (magic/version/bounds checks remain) — for buffers that
  // never left this process, e.g. a sweep cell forking from a donor
  // snapshot still in memory, where the scan costs a pass over tens of
  // megabytes and can't catch anything.
  BinaryReader(const uint8_t* data, size_t size, bool verify_checksum = true);
  explicit BinaryReader(const std::vector<uint8_t>& buf, bool verify_checksum = true)
      : BinaryReader(buf.data(), buf.size(), verify_checksum) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  void Bytes(void* out, size_t size);

  // Reads a section header and requires its tag to equal `tag`.
  void ExpectSection(uint32_t tag);
  // Requires the cursor to sit exactly at the innermost open section's end.
  void EndSection();
  // Reads the zero end-marker tag (after all top-level sections).
  void ExpectEnd();

  size_t remaining() const { return limit_ - pos_; }

 private:
  [[noreturn]] void Fail(const std::string& what) const;
  void Need(size_t n) const;

  const uint8_t* data_;
  size_t pos_ = 0;
  size_t limit_ = 0;                // Checksum excluded.
  std::vector<size_t> section_end_;  // Ends of open sections, innermost last.
};

// The stream checksum: FNV-1a folded over four 8-byte lanes (see the
// definition for why not plain byte-wise FNV-1a).
uint64_t SnapshotChecksum64(const uint8_t* data, size_t size);

}  // namespace ice

#endif  // SRC_BASE_BINARY_STREAM_H_
