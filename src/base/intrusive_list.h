// Intrusive doubly-linked list, the classic kernel idiom used by the LRU
// lists and scheduler run queues.
//
// An element embeds a ListNode (possibly several, via tags) and can be
// linked/unlinked in O(1) without any allocation. Unlike std::list, moving an
// element between lists never invalidates the element itself, and membership
// can be tested cheaply — both properties the memory manager relies on when
// pages migrate between active/inactive lists during reclaim.
#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>
#include <typeinfo>

#include "src/base/log.h"

namespace ice {

struct DefaultListTag {};

// Embed one of these per list the object can be on.
template <typename Tag = DefaultListTag>
class ListNode {
 public:
  ListNode() = default;
  ~ListNode() {
    ICE_CHECK(!linked()) << "destroying a linked ListNode tag=" << typeid(Tag).name();
  }

  ListNode(const ListNode&) = delete;
  ListNode& operator=(const ListNode&) = delete;

  bool linked() const { return next_ != nullptr; }

 private:
  template <typename T, typename U>
  friend class IntrusiveList;

  ListNode* prev_ = nullptr;
  ListNode* next_ = nullptr;
};

// T must derive from (or contain as base) ListNode<Tag>.
template <typename T, typename Tag = DefaultListTag>
class IntrusiveList {
 public:
  using Node = ListNode<Tag>;

  IntrusiveList() {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  ~IntrusiveList() {
    Clear();
    // Neutralize the self-referencing sentinel so its own ~ListNode check
    // (which guards real elements) does not fire.
    head_.prev_ = nullptr;
    head_.next_ = nullptr;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next_ == &head_; }
  size_t size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&head_, item); }
  void PushFront(T* item) { InsertBefore(head_.next_, item); }

  T* Front() const { return empty() ? nullptr : FromNode(head_.next_); }
  T* Back() const { return empty() ? nullptr : FromNode(head_.prev_); }

  // Removes and returns the front element, or nullptr when empty.
  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* item = Front();
    Remove(item);
    return item;
  }

  T* PopBack() {
    if (empty()) {
      return nullptr;
    }
    T* item = Back();
    Remove(item);
    return item;
  }

  void Remove(T* item) {
    Node* n = AsNode(item);
    ICE_CHECK(n->linked()) << "removing unlinked item";
    n->prev_->next_ = n->next_;
    n->next_->prev_ = n->prev_;
    n->prev_ = nullptr;
    n->next_ = nullptr;
    --size_;
  }

  // Rotates the front element to the back (used when a reclaim scan decides
  // to keep a page).
  void RotateFrontToBack() {
    T* item = PopFront();
    if (item != nullptr) {
      PushBack(item);
    }
  }

  static bool IsLinked(const T* item) { return AsNode(item)->linked(); }

  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

  // Minimal forward iteration support (range-for).
  class Iterator {
   public:
    explicit Iterator(Node* n) : node_(n) {}
    T* operator*() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    Node* node_;
  };

  Iterator begin() { return Iterator(head_.next_); }
  Iterator end() { return Iterator(&head_); }

 private:
  static Node* AsNode(T* item) { return static_cast<Node*>(item); }
  static const Node* AsNode(const T* item) { return static_cast<const Node*>(item); }
  static T* FromNode(Node* n) { return static_cast<T*>(n); }

  void InsertBefore(Node* pos, T* item) {
    Node* n = AsNode(item);
    ICE_CHECK(!n->linked()) << "inserting already linked item";
    n->prev_ = pos->prev_;
    n->next_ = pos;
    pos->prev_->next_ = n;
    pos->prev_ = n;
    ++size_;
  }

  Node head_;
  size_t size_ = 0;
};

}  // namespace ice

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
