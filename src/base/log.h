// Minimal logging and assertion support for the simulator.
//
// ICE_CHECK aborts with a message on invariant violation; it is always on
// (the simulator is not performance critical enough to justify stripping
// invariant checks in release builds, and silent corruption of simulation
// state would invalidate experiment results).
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <sstream>
#include <string>

namespace ice {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum level; messages below it are discarded. Default: kWarning,
// so simulations are quiet unless a caller opts into verbosity.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {

// Accumulates one log statement and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows a streamed expression when the log level filters it out.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define ICE_LOG(level)                                                               \
  (::ice::LogLevel::level < ::ice::GetLogLevel())                                    \
      ? (void)0                                                                      \
      : ::ice::log_internal::Voidify() &                                             \
            ::ice::log_internal::LogMessage(::ice::LogLevel::level, __FILE__, __LINE__) \
                .stream()

#define ICE_CHECK(cond)                                                                  \
  (cond) ? (void)0                                                                       \
         : ::ice::log_internal::Voidify() &                                              \
               ::ice::log_internal::LogMessage(::ice::LogLevel::kFatal, __FILE__, __LINE__) \
                       .stream()                                                         \
                   << "Check failed: " #cond " "

#define ICE_CHECK_LE(a, b) ICE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICE_CHECK_LT(a, b) ICE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICE_CHECK_GE(a, b) ICE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICE_CHECK_GT(a, b) ICE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICE_CHECK_EQ(a, b) ICE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ICE_CHECK_NE(a, b) ICE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace ice

#endif  // SRC_BASE_LOG_H_
