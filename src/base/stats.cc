#include "src/base/stats.h"

#include <sstream>

#include "src/base/binary_stream.h"

namespace ice {

uint64_t* StatsRegistry::Counter(const std::string& name) { return &counters_[name]; }

uint64_t StatsRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> StatsRegistry::Snapshot() const { return counters_; }

std::map<std::string, uint64_t> StatsRegistry::Diff(
    const std::map<std::string, uint64_t>& before, const std::map<std::string, uint64_t>& after) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    uint64_t prev = it == before.end() ? 0 : it->second;
    out[name] = value - prev;
  }
  return out;
}

void StatsRegistry::Reset() {
  for (auto& [name, value] : counters_) {
    value = 0;
  }
}

void StatsRegistry::SaveTo(BinaryWriter& w) const {
  w.U64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.Str(name);
    w.U64(value);
  }
}

void StatsRegistry::RestoreFrom(BinaryReader& r) {
  Reset();
  uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    std::string name = r.Str();
    counters_[name] = r.U64();
  }
}

std::string StatsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace ice
