#include "src/base/merge_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

MergeHistogram::MergeHistogram(const Options& options) : options_(options) {
  ICE_CHECK_GT(options_.lo, 0.0);
  ICE_CHECK_GT(options_.hi, options_.lo);
  ICE_CHECK_GE(options_.buckets, 1u);
  bounds_.resize(options_.buckets + 1);
  const double log_ratio = std::log(options_.hi / options_.lo);
  for (uint32_t i = 0; i <= options_.buckets; ++i) {
    bounds_[i] = options_.lo *
                 std::exp(log_ratio * static_cast<double>(i) /
                          static_cast<double>(options_.buckets));
  }
  // Pin the endpoints exactly so BucketFor's range checks and the bucket
  // edges agree bit-for-bit.
  bounds_.front() = options_.lo;
  bounds_.back() = options_.hi;
  counts_.assign(options_.buckets + 2, 0);
}

size_t MergeHistogram::BucketFor(double value) const {
  if (!(value >= options_.lo)) {  // Also routes NaN to underflow.
    return 0;
  }
  if (value >= options_.hi) {
    return counts_.size() - 1;
  }
  // First edge strictly greater than value; bucket i covers
  // [bounds_[i-1], bounds_[i]).
  return static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
}

void MergeHistogram::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[BucketFor(value)];
}

void MergeHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

bool MergeHistogram::SameShape(const MergeHistogram& other) const {
  return options_.lo == other.options_.lo && options_.hi == other.options_.hi &&
         options_.buckets == other.options_.buckets;
}

void MergeHistogram::Merge(const MergeHistogram& other) {
  ICE_CHECK(SameShape(other)) << "merging histograms with different bucket shapes";
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double MergeHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double MergeHistogram::Min() const { return count_ == 0 ? 0.0 : min_; }

double MergeHistogram::Max() const { return count_ == 0 ? 0.0 : max_; }

double MergeHistogram::bucket_lower(size_t index) const {
  if (index == 0) {
    return Min();
  }
  if (index == counts_.size() - 1) {
    return bounds_.back();
  }
  return bounds_[index - 1];
}

double MergeHistogram::bucket_upper(size_t index) const {
  if (index == 0) {
    return bounds_.front();
  }
  if (index == counts_.size() - 1) {
    return Max();
  }
  return bounds_[index];
}

double MergeHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample among [0, count). Buckets are walked
  // cumulatively; within the selected bucket the value is interpolated
  // between the bucket edges (clamped to the observed range).
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t n = counts_[i];
    if (n == 0) {
      continue;
    }
    if (rank < static_cast<double>(cum + n)) {
      double lower = std::max(bucket_lower(i), Min());
      double upper = std::min(bucket_upper(i), Max());
      if (upper < lower) {
        upper = lower;
      }
      const double frac =
          (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(n);
      return lower + std::clamp(frac, 0.0, 1.0) * (upper - lower);
    }
    cum += n;
  }
  return Max();
}

void MergeHistogram::SaveTo(BinaryWriter& w) const {
  w.F64(options_.lo);
  w.F64(options_.hi);
  w.U32(options_.buckets);
  for (uint64_t c : counts_) {
    w.U64(c);
  }
  w.U64(count_);
  w.F64(sum_);
  w.F64(min_);
  w.F64(max_);
}

void MergeHistogram::RestoreFrom(BinaryReader& r) {
  const double lo = r.F64();
  const double hi = r.F64();
  const uint32_t buckets = r.U32();
  ICE_CHECK(lo == options_.lo && hi == options_.hi && buckets == options_.buckets)
      << "restoring a histogram with a different bucket shape";
  for (uint64_t& c : counts_) {
    c = r.U64();
  }
  count_ = r.U64();
  sum_ = r.F64();
  min_ = r.F64();
  max_ = r.F64();
}

std::string MergeHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p95=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Mean(), Percentile(0.5),
                Percentile(0.95), Max());
  return buf;
}

}  // namespace ice
