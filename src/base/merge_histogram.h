// Fixed-bucket log-scaled histogram built for population-scale aggregation.
//
// The exact `Histogram` keeps every sample, which is fine for a single run
// but cannot scale to a fleet: 100k devices x 1k frame latencies would hold
// 1e8 doubles. MergeHistogram instead holds a fixed bucket array — B
// log-spaced buckets over [lo, hi) plus an underflow and an overflow bucket
// — so memory is O(B) regardless of sample count, and two histograms over
// the same bucket shape merge by adding counts.
//
// Determinism contract: bucket counts, count and min/max merge with integer
// adds and compares, so they are independent of merge order. The running sum
// is a double, whose low bits depend on addition order — aggregations that
// must be byte-stable therefore fold partials in a fixed order (the fleet
// runner folds per-chunk partials in chunk-index order; see DESIGN.md
// "Fleet"). Percentiles depend only on bucket counts and min/max, so they
// are merge-order independent.
#ifndef SRC_BASE_MERGE_HISTOGRAM_H_
#define SRC_BASE_MERGE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ice {

class BinaryReader;
class BinaryWriter;

class MergeHistogram {
 public:
  struct Options {
    double lo = 1.0;       // Lower edge of the first finite bucket.
    double hi = 1e9;       // Values >= hi land in the overflow bucket.
    uint32_t buckets = 64; // Log-spaced buckets between lo and hi.
  };

  MergeHistogram() : MergeHistogram(Options{}) {}
  explicit MergeHistogram(const Options& options);

  void Add(double value);
  void Clear();

  // Adds another histogram's contents. Both must share the same Options
  // (checked); see the header comment for the merge-order contract.
  void Merge(const MergeHistogram& other);
  bool SameShape(const MergeHistogram& other) const;

  const Options& options() const { return options_; }
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double Sum() const { return sum_; }
  double Mean() const;
  double Min() const;  // 0 when empty.
  double Max() const;  // 0 when empty.

  // q in [0, 1]; linear interpolation inside the selected bucket, clamped to
  // the observed [Min, Max]. Accurate to one bucket's width, i.e. a relative
  // error of at most (hi/lo)^(1/buckets) - 1 for in-range values.
  double Percentile(double q) const;

  // Bucket introspection (index 0 = underflow, 1..buckets = finite,
  // buckets+1 = overflow).
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t index) const { return counts_[index]; }
  // Value range [lower, upper) the bucket covers; the underflow/overflow
  // edges are reported as the observed min/max.
  double bucket_lower(size_t index) const;
  double bucket_upper(size_t index) const;
  size_t BucketFor(double value) const;

  // "count=.. mean=.. p50=.. p95=.. max=.." one-liner for reports.
  std::string Summary() const;

  // Snapshot support: writes the shape (checked on restore — a histogram
  // only restores into one constructed with the same Options) plus counts
  // and running aggregates. bounds_ are recomputed by the constructor, so
  // they are not serialized.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  Options options_;
  std::vector<double> bounds_;   // buckets + 1 edges over [lo, hi].
  std::vector<uint64_t> counts_; // buckets + 2 (underflow / finite / overflow).
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ice

#endif  // SRC_BASE_MERGE_HISTOGRAM_H_
