// Deterministic pseudo-random number generation for the simulator.
//
// Every experiment owns exactly one Rng seeded from its configuration, so all
// results are bit-for-bit reproducible. The core generator is PCG32
// (O'Neill, 2014): small state, excellent statistical quality, and cheap
// enough for the simulator's hot paths.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ice {

class BinaryReader;
class BinaryWriter;

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  // Uniform 32-bit value.
  uint32_t Next();

  // Uniform 64-bit value.
  uint64_t Next64();

  // Uniform in [0, bound) using Lemire's multiply-shift rejection method.
  uint32_t Below(uint32_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool Chance(double p);

  // Gaussian via Box-Muller; mean/stddev in caller units.
  double Gaussian(double mean, double stddev);

  // Exponential with given mean (> 0).
  double Exponential(double mean);

  // Pareto-ish heavy tail used by working-set models: returns a rank in
  // [0, n) where low ranks are much more likely (Zipf with exponent s).
  uint64_t Zipf(uint64_t n, double s);

  // Log-normal sample with the given median and sigma of the underlying
  // normal. Used for service-time jitter.
  double LogNormal(double median, double sigma);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Below(static_cast<uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; used to give each module its own
  // stream without interleaving artifacts.
  Rng Fork();

  // Snapshot support: the complete generator state (PCG32 state/stream plus
  // the cached Box-Muller value), so a restored stream continues bit-exact.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Cached second Box-Muller value.
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace ice

#endif  // SRC_BASE_RNG_H_
