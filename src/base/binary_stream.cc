#include "src/base/binary_stream.h"

#include <stdexcept>

#include "src/base/log.h"

namespace ice {

uint64_t SnapshotChecksum64(const uint8_t* data, size_t size) {
  // FNV-1a structure (xor then multiply by the 64-bit FNV prime) folded over
  // four independent 8-byte lanes instead of single bytes. Snapshots are tens
  // of megabytes — arena dumps — and the byte-serial dependency chain of
  // textbook FNV-1a caps it near 0.7 GB/s, which made the checksum the single
  // most expensive part of both save and restore. Four lanes break the chain
  // (one multiply per lane per 32 bytes) and run at memory speed; the result
  // is still a fixed deterministic function of the bytes, which is all an
  // integrity check needs.
  constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t h0 = kOffset;
  uint64_t h1 = kOffset ^ 0x9e3779b97f4a7c15ull;
  uint64_t h2 = kOffset ^ 0xc2b2ae3d27d4eb4full;
  uint64_t h3 = kOffset ^ 0x165667b19e3779f9ull;
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    uint64_t v0, v1, v2, v3;
    std::memcpy(&v0, data + i, 8);
    std::memcpy(&v1, data + i + 8, 8);
    std::memcpy(&v2, data + i + 16, 8);
    std::memcpy(&v3, data + i + 24, 8);
    h0 = (h0 ^ v0) * kPrime;
    h1 = (h1 ^ v1) * kPrime;
    h2 = (h2 ^ v2) * kPrime;
    h3 = (h3 ^ v3) * kPrime;
  }
  uint64_t h = (((h0 * kPrime ^ h1) * kPrime ^ h2) * kPrime) ^ h3;
  for (; i < size; ++i) {
    h = (h ^ data[i]) * kPrime;
  }
  return h;
}

namespace {

void PutU32At(std::vector<uint8_t>& buf, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[at + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutU64At(std::vector<uint8_t>& buf, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

BinaryWriter::BinaryWriter() {
  buf_.reserve(256);
  buf_.insert(buf_.end(), kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic));
  U32(kSnapshotFormatVersion);
}

void BinaryWriter::U8(uint8_t v) { buf_.push_back(v); }

void BinaryWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::U32(uint32_t v) {
  size_t at = buf_.size();
  buf_.resize(at + 4);
  PutU32At(buf_, at, v);
}

void BinaryWriter::U64(uint64_t v) {
  size_t at = buf_.size();
  buf_.resize(at + 8);
  PutU64At(buf_, at, v);
}

void BinaryWriter::F64(double v) {
  static_assert(sizeof(double) == 8);
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  U64(bits);
}

void BinaryWriter::Str(const std::string& s) {
  U64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::Bytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void BinaryWriter::BeginSection(uint32_t tag) {
  ICE_CHECK(tag != 0) << "section tag 0 is the end marker";
  U32(tag);
  open_.push_back(buf_.size());
  U64(0);  // Length placeholder, patched by EndSection.
}

void BinaryWriter::EndSection() {
  ICE_CHECK(!open_.empty()) << "EndSection without BeginSection";
  size_t at = open_.back();
  open_.pop_back();
  PutU64At(buf_, at, buf_.size() - (at + 8));
}

std::vector<uint8_t> BinaryWriter::Finish() {
  FinishInPlace();
  return std::move(buf_);
}

const std::vector<uint8_t>& BinaryWriter::FinishInPlace() {
  ICE_CHECK(open_.empty()) << "Finish with an open section";
  ICE_CHECK(!finished_);
  finished_ = true;
  U32(0);  // End marker.
  U64(SnapshotChecksum64(buf_.data(), buf_.size()));
  return buf_;
}

void BinaryWriter::Clear() {
  buf_.clear();  // Keeps capacity.
  open_.clear();
  finished_ = false;
  buf_.insert(buf_.end(), kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic));
  U32(kSnapshotFormatVersion);
}

BinaryReader::BinaryReader(const uint8_t* data, size_t size, bool verify_checksum)
    : data_(data) {
  constexpr size_t kHeader = sizeof(kSnapshotMagic) + 4;
  if (size < kHeader + 4 + 8) {
    Fail("truncated stream (shorter than header + end marker + checksum)");
  }
  limit_ = size - 8;
  if (verify_checksum) {
    uint64_t want = 0;
    for (int i = 7; i >= 0; --i) {
      want = (want << 8) | data_[limit_ + i];
    }
    if (want != SnapshotChecksum64(data_, limit_)) {
      Fail("checksum mismatch (corrupt or truncated stream)");
    }
  }
  if (std::memcmp(data_, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    Fail("bad magic (not a snapshot stream)");
  }
  pos_ = sizeof(kSnapshotMagic);
  uint32_t version = U32();
  if (version != kSnapshotFormatVersion) {
    Fail("format version " + std::to_string(version) + " (this build reads " +
         std::to_string(kSnapshotFormatVersion) + ")");
  }
}

void BinaryReader::Fail(const std::string& what) const {
  throw std::runtime_error("snapshot: " + what);
}

void BinaryReader::Need(size_t n) const {
  size_t end = section_end_.empty() ? limit_ : section_end_.back();
  if (pos_ + n > end) {
    Fail("truncated stream (read past " +
         std::string(section_end_.empty() ? "end" : "section end") + ")");
  }
}

uint8_t BinaryReader::U8() {
  Need(1);
  return data_[pos_++];
}

uint16_t BinaryReader::U16() {
  Need(2);
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

uint32_t BinaryReader::U32() {
  Need(4);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + i];
  }
  pos_ += 4;
  return v;
}

uint64_t BinaryReader::U64() {
  Need(8);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + i];
  }
  pos_ += 8;
  return v;
}

double BinaryReader::F64() {
  uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string BinaryReader::Str() {
  uint64_t n = U64();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void BinaryReader::Bytes(void* out, size_t size) {
  Need(size);
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

void BinaryReader::ExpectSection(uint32_t tag) {
  uint32_t got = U32();
  if (got != tag) {
    Fail("expected section tag " + std::to_string(tag) + ", found " +
         std::to_string(got));
  }
  uint64_t len = U64();
  Need(len);
  section_end_.push_back(pos_ + len);
}

void BinaryReader::EndSection() {
  if (section_end_.empty()) {
    Fail("EndSection outside any section");
  }
  if (pos_ != section_end_.back()) {
    Fail("section length mismatch (" +
         std::to_string(section_end_.back() - pos_) + " bytes unread)");
  }
  section_end_.pop_back();
}

void BinaryReader::ExpectEnd() {
  if (!section_end_.empty()) {
    Fail("end marker inside an open section");
  }
  uint32_t got = U32();
  if (got != 0) {
    Fail("expected end marker, found section tag " + std::to_string(got));
  }
  if (pos_ != limit_) {
    Fail("trailing bytes after end marker");
  }
}

}  // namespace ice
