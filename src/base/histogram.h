// Streaming histogram / summary statistics used by the metrics layer.
#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ice {

// Keeps every sample; fine for the sample counts the experiments produce
// (at most a few hundred thousand frame latencies). Percentiles are computed
// on demand by sorting a scratch copy.
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Clear();

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;

  // q in [0, 1]; linear interpolation between closest ranks.
  double Percentile(double q) const;

  // Fraction of samples strictly above the threshold.
  double FractionAbove(double threshold) const;

  const std::vector<double>& values() const { return values_; }

  // "mean=.. p50=.. p95=.. max=.." one-liner for reports.
  std::string Summary() const;

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;   // Cache for percentile queries.
  mutable bool sorted_valid_ = false;
};

}  // namespace ice

#endif  // SRC_BASE_HISTOGRAM_H_
