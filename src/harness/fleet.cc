#include "src/harness/fleet.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/harness/experiment.h"
#include "src/harness/sweep.h"
#include "src/workload/usage_trace.h"

namespace ice {

namespace {
// The per-group install list for the trace runner: identical for every
// device of a group (catalog and uid assignment are pure functions of the
// group config), so it is built once per (worker, group) and shared.
std::vector<UsageTraceRunner::InstalledApp> InstalledAppsOf(Experiment& exp) {
  std::vector<UsageTraceRunner::InstalledApp> apps;
  apps.reserve(exp.catalog().size());
  std::vector<Uid> uids = exp.CatalogUids();
  for (size_t i = 0; i < exp.catalog().size(); ++i) {
    apps.push_back({uids[i], exp.catalog()[i].category});
  }
  return apps;
}
}  // namespace

// Per-worker warm-boot state. Workers never share: each thread owns one.
struct FleetRunner::WorkerContext {
  struct GroupContext {
    bool initialized = false;
    // Donor failed to settle — run this group's devices cold. Settling is a
    // pure function of the group config (boot consumes no device-seed
    // draws), so every worker reaches the same verdict and templated output
    // stays byte-identical to cold.
    bool cold_fallback = false;
    std::vector<uint8_t> template_bytes;
    std::unique_ptr<Experiment> donor;
    std::vector<UsageTraceRunner::InstalledApp> apps;
  };
  std::vector<GroupContext> groups;
  // Reused across every template save this worker performs: Clear() keeps
  // the buffer, so only the first save grows it.
  BinaryWriter writer;
};

void FleetGroupStats::MergeFrom(const FleetGroupStats& other) {
  devices += other.devices;
  failures += other.failures;
  if (other.first_error_device < first_error_device) {
    first_error_device = other.first_error_device;
    first_error = other.first_error;
  }
  frame_latency_us.Merge(other.frame_latency_us);
  fps.Merge(other.fps);
  ria.Merge(other.ria);
  refaults.Merge(other.refaults);
  lmk_kills.Merge(other.lmk_kills);
  zram_compressed_bytes.Merge(other.zram_compressed_bytes);
  total_frames += other.total_frames;
  total_refaults += other.total_refaults;
  total_lmk_kills += other.total_lmk_kills;
  peak_arena_bytes = std::max(peak_arena_bytes, other.peak_arena_bytes);
}

FleetRunner::FleetRunner(const FleetConfig& config) : config_(config) {
  if (config_.tiers.empty()) {
    config_.tiers = FleetTierNames();
  }
  for (const std::string& tier : config_.tiers) {
    ICE_CHECK(IsFleetTier(tier)) << "unknown fleet tier: " << tier;
  }
  ICE_CHECK(!config_.schemes.empty());
  SwapPolicy swap_policy;
  ICE_CHECK(SwapPolicyFromName(config_.swap, &swap_policy))
      << "unknown swap policy: " << config_.swap;
  ICE_CHECK_GE(config_.sessions, 1);
  if (config_.jobs <= 0) {
    config_.jobs = DefaultSweepJobs();
  }
  if (config_.chunk == 0) {
    // Auto chunking: coarse enough that the ordered fold and queue traffic
    // are cheap, fine enough that stealing can balance stragglers. A pure
    // function of the device count — never of jobs — so the per-chunk
    // double-sum grouping (and hence the output bytes) is shard-independent.
    config_.chunk = static_cast<uint32_t>(
        std::clamp<uint64_t>(config_.devices / 64, 1, 256));
  }
  chunk_ = config_.chunk;
}

uint64_t FleetRunner::num_chunks() const {
  return (config_.devices + chunk_ - 1) / chunk_;
}

uint64_t FleetRunner::DeviceSeed(uint64_t fleet_seed, uint64_t device_index) {
  // SplitMix64 with the index folded in; decorrelates neighbouring devices.
  uint64_t z = fleet_seed + 0x9e3779b97f4a7c15ULL * (device_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<FleetGroupStats> FleetRunner::MakeAccumulators() const {
  std::vector<FleetGroupStats> groups(num_groups());
  for (size_t t = 0; t < config_.tiers.size(); ++t) {
    for (size_t s = 0; s < config_.schemes.size(); ++s) {
      FleetGroupStats& g = groups[t * config_.schemes.size() + s];
      g.tier = config_.tiers[t];
      g.scheme = config_.schemes[s];
    }
  }
  return groups;
}

ExperimentConfig FleetRunner::GroupConfig(size_t group, uint64_t seed) const {
  ExperimentConfig ec;
  ec.aging = config_.aging;
  ec.swap = config_.swap;
  ec.device = FleetTierProfile(config_.tiers[group / config_.schemes.size()]);
  ec.scheme = config_.schemes[group % config_.schemes.size()];
  ec.seed = seed;
  return ec;
}

void FleetRunner::RunDevice(uint64_t device_index, FleetGroupStats& group) const {
  Experiment exp(GroupConfig(GroupOf(device_index),
                             DeviceSeed(config_.seed, device_index)));
  // Settle to the same quiescent boundary the warm-boot template is taken
  // at, so templated and cold devices start the trace at identical clocks.
  // Settling is seed-independent; if it fails here it fails on the donor
  // too, and both paths just start wherever the bounded search stopped.
  exp.SettleToQuiescence();
  std::vector<UsageTraceRunner::InstalledApp> apps = InstalledAppsOf(exp);
  RunTrace(exp, apps, group);
}

void FleetRunner::RunDeviceWith(WorkerContext& wc, uint64_t device_index,
                                FleetGroupStats& group) const {
  if (!config_.use_templates) {
    RunDevice(device_index, group);
    return;
  }
  WorkerContext::GroupContext& gc = wc.groups[GroupOf(device_index)];
  if (!gc.initialized) {
    gc.initialized = true;
    // The donor seed is arbitrary — boot draws nothing from the device-seed
    // stream and the template fingerprint is compared seed-agnostically —
    // but the fleet seed keeps it deterministic and clearly not any
    // device's.
    auto donor = std::make_unique<Experiment>(
        GroupConfig(GroupOf(device_index), config_.seed));
    if (donor->SettleToQuiescence()) {
      wc.writer.Clear();
      donor->SaveSnapshotInto(wc.writer);
      gc.template_bytes = wc.writer.FinishInPlace();
      gc.apps = InstalledAppsOf(*donor);
      gc.donor = std::move(donor);
    } else {
      gc.cold_fallback = true;
    }
  }
  if (gc.cold_fallback) {
    RunDevice(device_index, group);
    return;
  }
  try {
    gc.donor->RestoreTemplate(gc.template_bytes,
                              DeviceSeed(config_.seed, device_index));
    RunTrace(*gc.donor, gc.apps, group);
  } catch (...) {
    // A device that threw leaves the donor in an unknown mid-run state;
    // discard it so the group's next device rebuilds from a clean boot.
    gc.donor.reset();
    gc.template_bytes.clear();
    gc.initialized = false;
    throw;
  }
}

void FleetRunner::RunTrace(Experiment& exp,
                           const std::vector<UsageTraceRunner::InstalledApp>& apps,
                           FleetGroupStats& group) const {
  UsageTraceRunner::Config tc;
  tc.days = 1;
  tc.sessions_per_day = config_.sessions;
  tc.session_mean = config_.session_mean;
  tc.session_sigma = config_.session_sigma;
  // The fleet aggregates endpoint metrics only; disable the per-interval
  // cumulative samples the Fig 3 study wants.
  tc.sample_interval = Sec(24 * 3600);
  UsageTraceRunner runner(exp.am(), exp.choreographer(), apps,
                          exp.engine().rng().Fork(), tc);
  runner.Run();

  const FrameStats& frames = exp.choreographer().stats();
  for (double latency : frames.latency_us().values()) {
    group.frame_latency_us.Add(latency);
  }
  const SimTime end = exp.engine().now();
  group.fps.Add(frames.AverageFps(0, end));
  group.ria.Add(frames.Ria());
  const StatsRegistry& st = exp.engine().stats();
  const uint64_t refaults = st.Get(stat::kRefaults);
  const uint64_t kills = st.Get(stat::kLmkKills);
  group.refaults.Add(static_cast<double>(refaults));
  group.lmk_kills.Add(static_cast<double>(kills));
  group.zram_compressed_bytes.Merge(exp.mm().swap_governor().compressed_bytes());
  group.total_frames += frames.frames_completed();
  group.total_refaults += refaults;
  group.total_lmk_kills += kills;
  group.peak_arena_bytes = std::max(group.peak_arena_bytes, exp.mm().arena_bytes_peak());
  ++group.devices;
}

void FleetRunner::RunChunk(uint64_t chunk_index,
                           std::vector<FleetGroupStats>& partial,
                           WorkerContext& wc) const {
  const uint64_t begin = chunk_index * chunk_;
  const uint64_t end = std::min(begin + chunk_, config_.devices);
  for (uint64_t i = begin; i < end; ++i) {
    FleetGroupStats& g = partial[GroupOf(i)];
    try {
      RunDeviceWith(wc, i, g);
    } catch (const std::exception& e) {
      ++g.failures;
      if (i < g.first_error_device) {
        g.first_error_device = i;
        g.first_error = e.what();
      }
    } catch (...) {
      ++g.failures;
      if (i < g.first_error_device) {
        g.first_error_device = i;
        g.first_error = "unknown exception";
      }
    }
  }
}

FleetResult FleetRunner::Run() const {
  const auto t0 = std::chrono::steady_clock::now();
  FleetResult result;
  result.config = config_;
  result.groups = MakeAccumulators();

  const uint64_t chunks = num_chunks();
  const int workers =
      static_cast<int>(std::min<uint64_t>(static_cast<uint64_t>(config_.jobs),
                                          chunks == 0 ? 1 : chunks));

  // Work-stealing chunk queues: contiguous blocks per worker, own work pops
  // from the front, steals take from the back of the fullest victim. One
  // mutex guards the queues — chunks are coarse, so queue traffic is cold.
  std::mutex queue_mu;
  std::vector<std::deque<uint64_t>> queues(static_cast<size_t>(workers));
  for (uint64_t c = 0; c < chunks; ++c) {
    const size_t w = static_cast<size_t>(c * static_cast<uint64_t>(workers) / chunks);
    queues[w].push_back(c);
  }
  auto pop = [&queue_mu, &queues](size_t self, uint64_t* chunk) {
    std::lock_guard<std::mutex> lock(queue_mu);
    if (!queues[self].empty()) {
      *chunk = queues[self].front();
      queues[self].pop_front();
      return true;
    }
    size_t victim = queues.size();
    size_t best = 0;
    for (size_t i = 0; i < queues.size(); ++i) {
      if (queues[i].size() > best) {
        best = queues[i].size();
        victim = i;
      }
    }
    if (victim == queues.size()) {
      return false;
    }
    *chunk = queues[victim].back();
    queues[victim].pop_back();
    return true;
  };

  // Ordered streaming fold: finished chunk partials wait (bounded by
  // scheduling skew) until every lower-indexed chunk has folded, so the
  // reduce order — and therefore every double sum — is independent of which
  // worker ran what.
  std::mutex fold_mu;
  std::map<uint64_t, std::vector<FleetGroupStats>> pending;
  uint64_t next_fold = 0;

  auto worker_fn = [&, this](size_t self) {
    // Per-worker warm-boot donors live across chunks: with stratified
    // groups every chunk touches every group, so each worker boots each
    // group at most once for the whole run.
    WorkerContext wc;
    wc.groups.resize(num_groups());
    uint64_t chunk = 0;
    while (pop(self, &chunk)) {
      std::vector<FleetGroupStats> partial = MakeAccumulators();
      RunChunk(chunk, partial, wc);
      std::lock_guard<std::mutex> lock(fold_mu);
      pending.emplace(chunk, std::move(partial));
      while (!pending.empty() && pending.begin()->first == next_fold) {
        std::vector<FleetGroupStats>& ready = pending.begin()->second;
        for (size_t g = 0; g < result.groups.size(); ++g) {
          result.groups[g].MergeFrom(ready[g]);
        }
        pending.erase(pending.begin());
        ++next_fold;
      }
    }
  };

  if (workers <= 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back(worker_fn, static_cast<size_t>(w));
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  ICE_CHECK_EQ(next_fold, chunks);

  for (const FleetGroupStats& g : result.groups) {
    result.devices_failed += g.failures;
    result.peak_arena_bytes = std::max(result.peak_arena_bytes, g.peak_arena_bytes);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace ice
