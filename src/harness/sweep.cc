#include "src/harness/sweep.h"

#include <algorithm>

#include "src/base/binary_stream.h"
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

namespace ice {

std::vector<SweepCell> SweepAxes::Cells() const {
  std::vector<SweepCell> cells;
  cells.reserve(size());
  const std::vector<std::string> swap_axis =
      swaps.empty() ? std::vector<std::string>{base.swap} : swaps;
  const std::vector<std::string> aging_axis =
      agings.empty() ? std::vector<std::string>{base.aging} : agings;
  for (const std::string& swap : swap_axis) {
    for (const std::string& aging : aging_axis) {
      for (const DeviceProfile& device : devices) {
        for (const std::string& scheme : schemes) {
          for (ScenarioKind scenario : scenarios) {
            for (int bg : bg_counts) {
              for (uint64_t seed : seeds) {
                SweepCell cell;
                cell.config = base;
                cell.config.swap = swap;
                cell.config.aging = aging;
                cell.config.device = device;
                cell.config.scheme = scheme;
                cell.config.seed = seed;
                cell.scenario = scenario;
                cell.bg_apps = bg;
                cell.duration = duration;
                cell.warmup = warmup;
                cells.push_back(cell);
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

size_t SweepAxes::Index(size_t device, size_t scheme, size_t scenario, size_t bg,
                        size_t seed) const {
  return (((device * schemes.size() + scheme) * scenarios.size() + scenario) *
              bg_counts.size() +
          bg) *
             seeds.size() +
         seed;
}

int DefaultSweepJobs() {
  const char* env = std::getenv("ICE_JOBS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs > 0 ? jobs : DefaultSweepJobs()) {}

void SweepRunner::Dispatch(size_t n, const std::function<void(size_t)>& task) const {
  if (n == 0) {
    return;
  }
  size_t workers = std::min(static_cast<size_t>(jobs_), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&next, &task, n] {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      task(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

namespace {

// Cells share a caching prefix iff they agree on everything but the
// background-app count: full config, scenario (which fixes the excluded
// foreground app) and measurement window.
std::string PrefixGroupKey(const SweepCell& cell) {
  std::ostringstream out;
  out << ConfigFingerprint(cell.config) << " scenario=" << static_cast<int>(cell.scenario)
      << " duration=" << cell.duration << " warmup=" << cell.warmup;
  return out.str();
}

// Phase 1 body: run one donor through the group's shared caching prefix,
// snapshotting at each member's boundary — except the last (largest-bg)
// member, whose cell the donor runs inline: at that point the donor *is*
// that cell's cold state, so a save/restore round trip of the biggest
// snapshot would be pure overhead. Members are in ascending-bg order. On
// any failure (settle does not converge, pool exhausted, or an exception)
// the remaining members keep an empty slot and fall back cold.
void RunPrefixDonor(const std::vector<SweepCell>& cells,
                    const std::vector<size_t>& members,
                    std::vector<std::optional<std::vector<uint8_t>>>& snapshots,
                    std::vector<std::optional<ScenarioResult>>& donor_results) {
  try {
    const SweepCell& proto = cells[members.front()];
    Experiment donor(proto.config);
    Uid fg = donor.UidOf(ScenarioPackage(proto.scenario));
    std::vector<Uid> pool = donor.PlanBackgroundPool({fg});
    int cached = 0;
    // One writer for every boundary this donor saves: Clear() keeps the
    // buffer, so only the first (smallest) snapshot pays for growth.
    BinaryWriter writer;
    for (size_t m = 0; m < members.size(); ++m) {
      size_t idx = members[m];
      int bg = SweepRunner::NormalizedBg(cells[idx]);
      if (static_cast<size_t>(bg) > pool.size()) {
        return;  // The cold path reports the error for this cell.
      }
      while (cached < bg) {
        if (!donor.CacheOneBackgroundApp(pool[static_cast<size_t>(cached)])) {
          return;  // No quiescent boundary here: this and later members run cold.
        }
        ++cached;
      }
      if (m + 1 < members.size()) {
        writer.Clear();
        donor.SaveSnapshotInto(writer);
        snapshots[idx] = writer.FinishInPlace();
      } else {
        donor.FinishCaching();
        donor_results[idx] =
            donor.RunScenario(cells[idx].scenario, cells[idx].duration, cells[idx].warmup);
      }
    }
  } catch (...) {
    // Donor construction/caching failed; cold runs will surface the error.
  }
}

}  // namespace

std::vector<CellOutcome> SweepRunner::Run(const std::vector<SweepCell>& cells,
                                          bool share_prefix) const {
  // Group prefix-sharable cells. std::map keys the groups deterministically;
  // members keep cell order and are stably sorted by bg so the donor caches
  // monotonically. A group is worth a donor only when at least two members
  // actually cache background apps.
  std::vector<std::optional<std::vector<uint8_t>>> snapshots(cells.size());
  std::vector<std::optional<ScenarioResult>> donor_results(cells.size());
  if (share_prefix) {
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (NormalizedBg(cells[i]) > 0) {
        groups[PrefixGroupKey(cells[i])].push_back(i);
      }
    }
    std::vector<std::vector<size_t>> donors;
    for (auto& [key, members] : groups) {
      if (members.size() < 2) {
        continue;
      }
      std::stable_sort(members.begin(), members.end(), [&cells](size_t a, size_t b) {
        return NormalizedBg(cells[a]) < NormalizedBg(cells[b]);
      });
      donors.push_back(std::move(members));
    }
    // Phase 1: donors in parallel. Each writes only its own members' slots.
    Dispatch(donors.size(), [&](size_t g) {
      RunPrefixDonor(cells, donors[g], snapshots, donor_results);
    });
  }

  // Phase 2: every cell in parallel — already computed inline by its donor,
  // forked from its snapshot when phase 1 produced one, cold otherwise.
  return Map<ScenarioResult>(cells.size(), [&cells, &snapshots,
                                            &donor_results](size_t i) {
    if (donor_results[i].has_value()) {
      return *donor_results[i];
    }
    if (snapshots[i].has_value()) {
      std::vector<uint8_t> bytes = std::move(*snapshots[i]);
      snapshots[i].reset();
      // No checksum scan: the bytes never left this process.
      auto exp = Experiment::RestoreSnapshot(cells[i].config, bytes,
                                             /*verify_checksum=*/false);
      exp->FinishCaching();
      return exp->RunScenario(cells[i].scenario, cells[i].duration, cells[i].warmup);
    }
    return RunCell(cells[i]);
  });
}

int SweepRunner::NormalizedBg(const SweepCell& cell) {
  return cell.bg_apps >= 0 ? cell.bg_apps : cell.config.device.full_pressure_bg_apps;
}

ScenarioResult SweepRunner::RunCell(const SweepCell& cell) {
  Experiment exp(cell.config);
  Uid fg = exp.UidOf(ScenarioPackage(cell.scenario));
  int bg = NormalizedBg(cell);
  if (bg > 0) {
    exp.CacheBackgroundApps(bg, {fg});
  }
  return exp.RunScenario(cell.scenario, cell.duration, cell.warmup);
}

}  // namespace ice
