#include "src/harness/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace ice {

std::vector<SweepCell> SweepAxes::Cells() const {
  std::vector<SweepCell> cells;
  cells.reserve(size());
  const std::vector<std::string> aging_axis =
      agings.empty() ? std::vector<std::string>{base.aging} : agings;
  for (const std::string& aging : aging_axis) {
    for (const DeviceProfile& device : devices) {
      for (const std::string& scheme : schemes) {
        for (ScenarioKind scenario : scenarios) {
          for (int bg : bg_counts) {
            for (uint64_t seed : seeds) {
              SweepCell cell;
              cell.config = base;
              cell.config.aging = aging;
              cell.config.device = device;
              cell.config.scheme = scheme;
              cell.config.seed = seed;
              cell.scenario = scenario;
              cell.bg_apps = bg;
              cell.duration = duration;
              cell.warmup = warmup;
              cells.push_back(cell);
            }
          }
        }
      }
    }
  }
  return cells;
}

size_t SweepAxes::Index(size_t device, size_t scheme, size_t scenario, size_t bg,
                        size_t seed) const {
  return (((device * schemes.size() + scheme) * scenarios.size() + scenario) *
              bg_counts.size() +
          bg) *
             seeds.size() +
         seed;
}

int DefaultSweepJobs() {
  const char* env = std::getenv("ICE_JOBS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs > 0 ? jobs : DefaultSweepJobs()) {}

void SweepRunner::Dispatch(size_t n, const std::function<void(size_t)>& task) const {
  if (n == 0) {
    return;
  }
  size_t workers = std::min(static_cast<size_t>(jobs_), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&next, &task, n] {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      task(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

std::vector<CellOutcome> SweepRunner::Run(const std::vector<SweepCell>& cells) const {
  return Map<ScenarioResult>(cells.size(),
                             [&cells](size_t i) { return RunCell(cells[i]); });
}

ScenarioResult SweepRunner::RunCell(const SweepCell& cell) {
  Experiment exp(cell.config);
  Uid fg = exp.UidOf(ScenarioPackage(cell.scenario));
  int bg = cell.bg_apps >= 0 ? cell.bg_apps : cell.config.device.full_pressure_bg_apps;
  if (bg > 0) {
    exp.CacheBackgroundApps(bg, {fg});
  }
  return exp.RunScenario(cell.scenario, cell.duration, cell.warmup);
}

}  // namespace ice
