// Compact JSON export for fleet runs: one results/FLEET_<name>.json per
// fleet, holding per-(policy x tier) aggregate distributions instead of
// per-device records. The schema is documented in README.md ("Fleet runs").
//
// The report deliberately omits anything nondeterministic (jobs, wall time):
// two runs of the same fleet configuration must produce byte-identical
// files for any --jobs=N, and CI diffs them directly.
#ifndef SRC_HARNESS_FLEET_REPORT_H_
#define SRC_HARNESS_FLEET_REPORT_H_

#include <string>

#include "src/harness/fleet.h"

namespace ice {

// Serializes one fleet result to a JSON string.
std::string FleetReportJson(const std::string& name, const FleetResult& result);

// Writes the report to `<dir>/FLEET_<name>.json`, creating `dir` if needed.
// Returns the written path (empty on I/O failure).
std::string WriteFleetReport(const std::string& name, const FleetResult& result,
                             const std::string& dir = "results");

}  // namespace ice

#endif  // SRC_HARNESS_FLEET_REPORT_H_
