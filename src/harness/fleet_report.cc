#include "src/harness/fleet_report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/log.h"

namespace ice {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g round-trips an IEEE double exactly, so reports are byte-identical
// across runs whenever the aggregates are.
std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// A histogram serializes as its summary statistics plus the sparse list of
// non-empty buckets — enough to re-plot the distribution without ever
// materializing per-device samples.
void AppendHistogram(std::ostringstream& out, const char* key,
                     const MergeHistogram& h) {
  out << "\"" << key << "\": {\"count\": " << h.count();
  if (h.count() > 0) {
    out << ", \"sum\": " << JsonNum(h.Sum()) << ", \"min\": " << JsonNum(h.Min())
        << ", \"max\": " << JsonNum(h.Max())
        << ", \"p50\": " << JsonNum(h.Percentile(0.5))
        << ", \"p90\": " << JsonNum(h.Percentile(0.9))
        << ", \"p99\": " << JsonNum(h.Percentile(0.99)) << ", \"buckets\": [";
    bool first = true;
    for (size_t i = 0; i < h.num_buckets(); ++i) {
      if (h.bucket_count(i) == 0) {
        continue;
      }
      if (!first) {
        out << ", ";
      }
      first = false;
      out << "[" << i << ", " << h.bucket_count(i) << "]";
    }
    out << "]";
  }
  out << "}";
}

void AppendGroup(std::ostringstream& out, const FleetGroupStats& g,
                 bool include_swap) {
  out << "    {\"tier\": \"" << JsonEscape(g.tier) << "\", \"scheme\": \""
      << JsonEscape(g.scheme) << "\", \"devices\": " << g.devices
      << ", \"failures\": " << g.failures;
  if (g.failures > 0) {
    out << ", \"first_error_device\": " << g.first_error_device
        << ", \"first_error\": \"" << JsonEscape(g.first_error) << "\"";
  }
  out << ",\n     ";
  AppendHistogram(out, "frame_latency_us", g.frame_latency_us);
  out << ",\n     ";
  AppendHistogram(out, "fps", g.fps);
  out << ",\n     ";
  AppendHistogram(out, "ria", g.ria);
  out << ",\n     ";
  AppendHistogram(out, "refaults", g.refaults);
  out << ",\n     ";
  AppendHistogram(out, "lmk_kills", g.lmk_kills);
  if (include_swap) {
    out << ",\n     ";
    AppendHistogram(out, "zram_compressed_bytes", g.zram_compressed_bytes);
  }
  out << ",\n     \"total_frames\": " << g.total_frames
      << ", \"total_refaults\": " << g.total_refaults
      << ", \"total_lmk_kills\": " << g.total_lmk_kills
      << ", \"peak_arena_bytes\": " << g.peak_arena_bytes << "}";
}

}  // namespace

std::string FleetReportJson(const std::string& name, const FleetResult& result) {
  const FleetConfig& c = result.config;
  std::ostringstream out;
  out << "{\n  \"fleet\": \"" << JsonEscape(name) << "\",\n";
  // Emitted only off the default so pre-existing reports stay byte-identical.
  if (c.aging != "two_list") {
    out << "  \"aging\": \"" << JsonEscape(c.aging) << "\",\n";
  }
  if (c.swap != "baseline") {
    out << "  \"swap\": \"" << JsonEscape(c.swap) << "\",\n";
  }
  out << "  \"devices\": " << c.devices << ",\n"
      << "  \"chunk\": " << c.chunk << ",\n"
      << "  \"seed\": " << c.seed << ",\n"
      << "  \"sessions\": " << c.sessions << ",\n"
      << "  \"session_mean_s\": " << JsonNum(ToSeconds(c.session_mean)) << ",\n"
      << "  \"devices_failed\": " << result.devices_failed << ",\n"
      << "  \"peak_arena_bytes\": " << result.peak_arena_bytes << ",\n"
      << "  \"groups\": [\n";
  for (size_t i = 0; i < result.groups.size(); ++i) {
    AppendGroup(out, result.groups[i], /*include_swap=*/c.swap != "baseline");
    out << (i + 1 < result.groups.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string WriteFleetReport(const std::string& name, const FleetResult& result,
                             const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    ICE_LOG(kError) << "cannot create " << dir << ": " << ec.message();
    return "";
  }
  std::string path = dir + "/FLEET_" + name + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    ICE_LOG(kError) << "cannot open " << path;
    return "";
  }
  file << FleetReportJson(name, result);
  return path;
}

}  // namespace ice
