#include "src/harness/sweep_report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/log.h"
#include "src/trace/summary.h"

namespace ice {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g round-trips an IEEE double exactly, so reports are byte-identical
// across runs whenever the metrics are.
std::string JsonNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Same histogram serialization the fleet report uses: summary statistics
// plus the sparse list of non-empty buckets.
void AppendHistogram(std::ostringstream& out, const char* key,
                     const MergeHistogram& h) {
  out << "\"" << key << "\": {\"count\": " << h.count();
  if (h.count() > 0) {
    out << ", \"sum\": " << JsonNum(h.Sum()) << ", \"min\": " << JsonNum(h.Min())
        << ", \"max\": " << JsonNum(h.Max())
        << ", \"p50\": " << JsonNum(h.Percentile(0.5))
        << ", \"p90\": " << JsonNum(h.Percentile(0.9))
        << ", \"p99\": " << JsonNum(h.Percentile(0.99)) << ", \"buckets\": [";
    bool first = true;
    for (size_t i = 0; i < h.num_buckets(); ++i) {
      if (h.bucket_count(i) == 0) {
        continue;
      }
      if (!first) {
        out << ", ";
      }
      first = false;
      out << "[" << i << ", " << h.bucket_count(i) << "]";
    }
    out << "]";
  }
  out << "}";
}

void AppendCell(std::ostringstream& out, const SweepCell& cell,
                const CellOutcome& outcome) {
  const ExperimentConfig& c = cell.config;
  int bg = cell.bg_apps >= 0 ? cell.bg_apps : c.device.full_pressure_bg_apps;
  out << "    {\"device\": \"" << JsonEscape(c.device.name) << "\""
      << ", \"scheme\": \"" << JsonEscape(c.scheme) << "\"";
  // Emitted only off the default so pre-existing reports stay byte-identical.
  if (c.aging != "two_list") {
    out << ", \"aging\": \"" << JsonEscape(c.aging) << "\"";
  }
  if (c.swap != "baseline") {
    out << ", \"swap\": \"" << JsonEscape(c.swap) << "\"";
  }
  out << ", \"scenario\": \"" << ScenarioLabel(cell.scenario) << "\""
      << ", \"bg_apps\": " << bg << ", \"seed\": " << c.seed
      << ", \"duration_s\": " << JsonNum(ToSeconds(cell.duration))
      << ", \"warmup_s\": " << JsonNum(ToSeconds(cell.warmup))
      << ", \"ok\": " << (outcome.ok ? "true" : "false");
  if (!outcome.ok) {
    out << ", \"error\": \"" << JsonEscape(outcome.error) << "\"}";
    return;
  }
  const ScenarioResult& r = outcome.value;
  out << ", \"metrics\": {\"avg_fps\": " << JsonNum(r.avg_fps)
      << ", \"ria\": " << JsonNum(r.ria) << ", \"reclaims\": " << r.reclaims
      << ", \"refaults\": " << r.refaults << ", \"refaults_bg\": " << r.refaults_bg
      << ", \"refaults_fg\": " << r.refaults_fg
      << ", \"io_requests\": " << r.io_requests << ", \"io_bytes\": " << r.io_bytes
      << ", \"cpu_util\": " << JsonNum(r.cpu_util) << ", \"freezes\": " << r.freezes
      << ", \"thaws\": " << r.thaws << ", \"lmk_kills\": " << r.lmk_kills
      << ", \"arena_bytes_peak\": " << r.arena_bytes_peak;
  // Byte-compat rule: keys below appear only when they carry signal, so
  // baseline-swap reports do not change shape.
  if (r.zram_rejects > 0) {
    out << ", \"zram_rejects\": " << r.zram_rejects;
  }
  if (c.swap != "baseline") {
    out << ", \"swap_rejects_hot\": " << r.swap_rejects_hot
        << ", \"swap_writeback_pages\": " << r.swap_writeback_pages
        << ", \"swap_stores_fast\": " << r.swap_stores_fast
        << ", \"swap_stores_dense\": " << r.swap_stores_dense << ", ";
    AppendHistogram(out, "zram_compressed_bytes", r.zram_compressed_bytes);
  }
  out << ", \"fps_series\": [";
  for (size_t i = 0; i < r.fps_series.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << JsonNum(r.fps_series[i]);
  }
  out << "]";
  if (r.trace.enabled) {
    out << ", \"trace\": " << TraceSummaryJson(r.trace);
  }
  out << "}}";
}

}  // namespace

std::string SweepReportJson(const std::string& name, int jobs,
                            const std::vector<SweepCell>& cells,
                            const std::vector<CellOutcome>& outcomes) {
  ICE_CHECK_EQ(cells.size(), outcomes.size());
  std::ostringstream out;
  out << "{\n  \"sweep\": \"" << JsonEscape(name) << "\",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCell(out, cells[i], outcomes[i]);
    out << (i + 1 < cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string WriteSweepReport(const std::string& name, int jobs,
                             const std::vector<SweepCell>& cells,
                             const std::vector<CellOutcome>& outcomes,
                             const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    ICE_LOG(kError) << "cannot create " << dir << ": " << ec.message();
    return "";
  }
  std::string path = dir + "/" + name + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    ICE_LOG(kError) << "cannot open " << path;
    return "";
  }
  file << SweepReportJson(name, jobs, cells, outcomes);
  return path;
}

}  // namespace ice
