// Machine-readable export for sweep results: one JSON file per sweep under
// results/, so figures and regression checks can be rebuilt without
// re-running the grid. The schema is documented in README.md ("Running
// sweeps"); doubles are printed with %.17g so a report round-trips the exact
// values and two deterministic runs produce byte-identical files.
#ifndef SRC_HARNESS_SWEEP_REPORT_H_
#define SRC_HARNESS_SWEEP_REPORT_H_

#include <string>
#include <vector>

#include "src/harness/sweep.h"

namespace ice {

// Serializes one sweep (grid + per-cell outcomes) to a JSON string.
// `cells` and `outcomes` must be parallel vectors in grid order.
std::string SweepReportJson(const std::string& name, int jobs,
                            const std::vector<SweepCell>& cells,
                            const std::vector<CellOutcome>& outcomes);

// Writes the report to `<dir>/<name>.json`, creating `dir` if needed.
// Returns the written path (empty on I/O failure).
std::string WriteSweepReport(const std::string& name, int jobs,
                             const std::vector<SweepCell>& cells,
                             const std::vector<CellOutcome>& outcomes,
                             const std::string& dir = "results");

}  // namespace ice

#endif  // SRC_HARNESS_SWEEP_REPORT_H_
