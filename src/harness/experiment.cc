#include "src/harness/experiment.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/workload/bg_activity.h"

namespace ice {

Experiment::Experiment(const ExperimentConfig& config) : config_(config) {
  RegisterIceScheme();
  config_.tuning.footprint_scale *= config_.device.footprint_scale;
  if (config_.ice.hwm_mib == 0) {
    // Table 4: H_wm for Eq. 1 comes from the device configuration.
    config_.ice.hwm_mib = config_.device.mdt_hwm_mib;
  }

  engine_ = std::make_unique<Engine>(config_.seed);
  if (config_.trace) {
    // Install before any subsystem exists so task creation can register
    // names and no early event is missed.
    tracer_ = std::make_unique<Tracer>(config_.trace_buffer_pages);
    engine_->set_tracer(tracer_.get());
  }
  storage_ = std::make_unique<BlockDevice>(*engine_, config_.device.flash);
  MemConfig mem_config = config_.device.mem;
  ICE_CHECK(AgingPolicyFromName(config_.aging, &mem_config.aging))
      << "unknown aging policy: " << config_.aging;
  mm_ = std::make_unique<MemoryManager>(*engine_, mem_config, storage_.get());
  scheduler_ = std::make_unique<Scheduler>(*engine_, *mm_, config_.device.num_cores);
  services_ = std::make_unique<SystemServices>(*scheduler_, *mm_, config_.services);
  freezer_ = std::make_unique<Freezer>(*engine_);
  lmk_ = std::make_unique<Lmk>(*engine_, *mm_);
  am_ = std::make_unique<ActivityManager>(*engine_, *scheduler_, *mm_, *freezer_);
  choreographer_ = std::make_unique<Choreographer>(*am_);

  lmk_->set_kill_fn([this]() { return am_->KillOneCached(); });
  lmk_->InstallOomHandler();
  lmk_->set_minfree_pages(BytesToPages(110 * kMiB));
  lmk_->set_psi_refaults_per_sec(9000.0);

  // Install the catalog.
  if (config_.extended_catalog) {
    Rng catalog_rng = engine_->rng().Fork();
    catalog_ = ExtendedCatalog(catalog_rng, config_.tuning);
  } else {
    catalog_ = DefaultCatalog(config_.tuning);
  }
  for (const CatalogApp& app : catalog_) {
    App* installed = am_->Install(app.descriptor);
    catalog_uids_.push_back(installed->uid());
  }

  // Background-activity factory: looks up the launched app in the catalog.
  bool disable_gc = config_.disable_gc;
  am_->set_bg_task_factory([this, disable_gc](ActivityManager& am, App& app) {
    const CatalogApp* entry = FindInCatalog(catalog_, app.package());
    if (entry != nullptr) {
      AttachBgActivity(am, app, entry->bg, disable_gc);
    }
  });

  // Install the policy.
  if (config_.scheme == "ice") {
    auto daemon = std::make_unique<IceDaemon>(config_.ice);
    scheme_ = std::move(daemon);
  } else {
    scheme_ = MakeScheme(config_.scheme);
  }
  SystemRefs refs;
  refs.engine = engine_.get();
  refs.mm = mm_.get();
  refs.scheduler = scheduler_.get();
  refs.freezer = freezer_.get();
  refs.am = am_.get();
  refs.storage = storage_.get();
  scheme_->Install(refs);

  // Let the base system settle (services reach steady state).
  engine_->RunFor(Sec(2));
}

Experiment::~Experiment() = default;

Uid Experiment::UidOf(const std::string& package) const {
  for (size_t i = 0; i < catalog_.size(); ++i) {
    if (catalog_[i].descriptor.package == package) {
      return catalog_uids_[i];
    }
  }
  ICE_CHECK(false) << "package not installed: " << package;
  return kInvalidUid;
}

std::vector<Uid> Experiment::CatalogUids() const { return catalog_uids_; }

void Experiment::AwaitInteractive(Uid uid, SimDuration timeout) {
  SimTime deadline = engine_->now() + timeout;
  while (!am_->interactive(uid) && engine_->now() < deadline) {
    engine_->RunFor(Ms(50));
  }
}

std::vector<Uid> Experiment::CacheBackgroundApps(int n, const std::vector<Uid>& exclude,
                                                 SimDuration settle) {
  std::vector<Uid> pool;
  for (Uid uid : catalog_uids_) {
    if (std::find(exclude.begin(), exclude.end(), uid) == exclude.end()) {
      pool.push_back(uid);
    }
  }
  engine_->rng().Shuffle(pool);
  ICE_CHECK_LE(static_cast<size_t>(n), pool.size());
  pool.resize(static_cast<size_t>(n));

  for (Uid uid : pool) {
    am_->Launch(uid);
    AwaitInteractive(uid, Sec(20));
    engine_->RunFor(settle);
  }
  am_->MoveForegroundToBackground();
  engine_->RunFor(Sec(1));
  return pool;
}

ScenarioResult Experiment::RunScenario(ScenarioKind kind, SimDuration duration,
                                       SimDuration warmup) {
  return RunScenarioForApp(UidOf(ScenarioPackage(kind)), kind, duration, warmup);
}

ScenarioResult Experiment::RunScenarioForApp(Uid uid, ScenarioKind kind,
                                             SimDuration duration, SimDuration warmup) {
  am_->Launch(uid);
  AwaitInteractive(uid, Sec(30));

  Scenario scenario(*am_, uid, kind, engine_->rng().Fork());
  choreographer_->SetSource(&scenario);
  choreographer_->Start();
  if (warmup > 0) {
    engine_->RunFor(warmup);
  }
  choreographer_->stats().Clear();

  auto stats_before = engine_->stats().Snapshot();
  uint64_t busy_before = scheduler_->busy_us();
  uint64_t cap_before = scheduler_->capacity_us();
  SimTime begin = engine_->now();

  engine_->RunFor(duration);

  SimTime end = engine_->now();
  choreographer_->SetSource(nullptr);
  auto delta = StatsRegistry::Diff(stats_before, engine_->stats().Snapshot());

  ScenarioResult result;
  result.avg_fps = choreographer_->stats().AverageFps(begin, end);
  result.ria = choreographer_->stats().Ria();
  result.fps_series = choreographer_->stats().FpsPerSecond(begin, end);
  result.reclaims = delta[stat::kPagesReclaimed];
  result.refaults = delta[stat::kRefaults];
  result.refaults_bg = delta[stat::kRefaultsBg];
  result.refaults_fg = delta[stat::kRefaultsFg];
  result.io_requests = delta[stat::kIoReads] + delta[stat::kIoWrites];
  result.io_bytes = delta[stat::kIoReadBytes] + delta[stat::kIoWriteBytes];
  result.freezes = delta[stat::kFreezes];
  result.thaws = delta[stat::kThaws];
  result.lmk_kills = delta[stat::kLmkKills];
  result.arena_bytes_peak = mm_->arena_bytes_peak();
  uint64_t cap = scheduler_->capacity_us() - cap_before;
  result.cpu_util =
      cap == 0 ? 0.0 : static_cast<double>(scheduler_->busy_us() - busy_before) / cap;
  if (tracer_ != nullptr) {
    result.trace = SummarizeTrace(*tracer_);
  }
  return result;
}

}  // namespace ice
