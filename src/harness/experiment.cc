#include "src/harness/experiment.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/workload/bg_activity.h"

namespace ice {

namespace {
// Top-level snapshot section tags (envelope: src/base/binary_stream.h).
// Restore order matters: the activity manager replays its lifecycle log,
// recreating every process and address space with the same ids structural
// construction produced — so it must precede the memory-manager and
// scheduler sections that index into those objects.
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionEngine = 2;
constexpr uint32_t kSectionActivityManager = 3;
constexpr uint32_t kSectionMemory = 4;
constexpr uint32_t kSectionScheduler = 5;
constexpr uint32_t kSectionStorage = 6;
constexpr uint32_t kSectionFreezer = 7;
constexpr uint32_t kSectionLmk = 8;
constexpr uint32_t kSectionScheme = 9;
constexpr uint32_t kSectionTrace = 10;

// Fingerprint with the " seed=<n>" token removed, for the seed-agnostic
// comparison RestoreTemplate needs (a warm-boot template is valid for any
// seed of its group: boot consumes no device-seed draws).
std::string StripSeedToken(const std::string& fp) {
  size_t pos = fp.find(" seed=");
  if (pos == std::string::npos) {
    return fp;
  }
  size_t end = fp.find(' ', pos + 1);
  return fp.substr(0, pos) + (end == std::string::npos ? "" : fp.substr(end));
}
}  // namespace

Experiment::Experiment(const ExperimentConfig& config) : Experiment(config, nullptr) {}

Experiment::Experiment(const ExperimentConfig& config,
                       const std::vector<uint8_t>* snapshot, bool verify_checksum)
    : config_(config) {
  RegisterIceScheme();
  config_.tuning.footprint_scale *= config_.device.footprint_scale;
  if (config_.ice.hwm_mib == 0) {
    // Table 4: H_wm for Eq. 1 comes from the device configuration.
    config_.ice.hwm_mib = config_.device.mdt_hwm_mib;
  }

  engine_ = std::make_unique<Engine>(config_.seed);
  if (config_.trace) {
    // Install before any subsystem exists so task creation can register
    // names and no early event is missed.
    tracer_ = std::make_unique<Tracer>(config_.trace_buffer_pages);
    engine_->set_tracer(tracer_.get());
  }
  storage_ = std::make_unique<BlockDevice>(*engine_, config_.device.flash);
  MemConfig mem_config = config_.device.mem;
  ICE_CHECK(AgingPolicyFromName(config_.aging, &mem_config.aging))
      << "unknown aging policy: " << config_.aging;
  ICE_CHECK(SwapPolicyFromName(config_.swap, &mem_config.swap.policy))
      << "unknown swap policy: " << config_.swap;
  mm_ = std::make_unique<MemoryManager>(*engine_, mem_config, storage_.get());
  scheduler_ = std::make_unique<Scheduler>(*engine_, *mm_, config_.device.num_cores);
  services_ = std::make_unique<SystemServices>(*scheduler_, *mm_, config_.services);
  freezer_ = std::make_unique<Freezer>(*engine_);
  lmk_ = std::make_unique<Lmk>(*engine_, *mm_);
  am_ = std::make_unique<ActivityManager>(*engine_, *scheduler_, *mm_, *freezer_);
  choreographer_ = std::make_unique<Choreographer>(*am_);

  lmk_->set_kill_fn([this]() { return am_->KillOneCached(); });
  lmk_->InstallOomHandler();
  lmk_->set_minfree_pages(BytesToPages(110 * kMiB));
  lmk_->set_psi_refaults_per_sec(9000.0);

  // Install the catalog. Drawn from the noise stream: boot must consume
  // zero device-seed draws so a post-boot template is seed-independent
  // (the catalog is identical across devices of a fleet group anyway).
  if (config_.extended_catalog) {
    Rng catalog_rng = engine_->noise_rng().Fork();
    catalog_ = ExtendedCatalog(catalog_rng, config_.tuning);
  } else {
    catalog_ = DefaultCatalog(config_.tuning);
  }
  for (const CatalogApp& app : catalog_) {
    App* installed = am_->Install(app.descriptor);
    catalog_uids_.push_back(installed->uid());
  }

  // Background-activity factory: looks up the launched app in the catalog.
  bool disable_gc = config_.disable_gc;
  am_->set_bg_task_factory([this, disable_gc](ActivityManager& am, App& app) {
    const CatalogApp* entry = FindInCatalog(catalog_, app.package());
    if (entry != nullptr) {
      AttachBgActivity(am, app, entry->bg, disable_gc);
    }
  });

  // Install the policy.
  if (config_.scheme == "ice") {
    auto daemon = std::make_unique<IceDaemon>(config_.ice);
    scheme_ = std::move(daemon);
  } else {
    scheme_ = MakeScheme(config_.scheme);
  }
  SystemRefs refs;
  refs.engine = engine_.get();
  refs.mm = mm_.get();
  refs.scheduler = scheduler_.get();
  refs.freezer = freezer_.get();
  refs.am = am_.get();
  refs.storage = storage_.get();
  scheme_->Install(refs);

  // Everything alive now (kswapd + services) is the boot prefix recycling
  // truncates back to; app tasks are only created later.
  boot_task_count_ = scheduler_->task_count();

  if (snapshot == nullptr) {
    // Let the base system settle (services reach steady state).
    engine_->RunFor(Sec(2));
  } else {
    // Restore mode: nothing has run yet, so the only scheduled events are
    // the ones Install() armed — RestoreFromBytes cancels those and replays
    // the saved state instead.
    RestoreFromBytes(*snapshot, verify_checksum);
  }
}

Experiment::~Experiment() = default;

Uid Experiment::UidOf(const std::string& package) const {
  for (size_t i = 0; i < catalog_.size(); ++i) {
    if (catalog_[i].descriptor.package == package) {
      return catalog_uids_[i];
    }
  }
  ICE_CHECK(false) << "package not installed: " << package;
  return kInvalidUid;
}

std::vector<Uid> Experiment::CatalogUids() const { return catalog_uids_; }

void Experiment::AwaitInteractive(Uid uid, SimDuration timeout) {
  SimTime deadline = engine_->now() + timeout;
  while (!am_->interactive(uid) && engine_->now() < deadline) {
    engine_->RunFor(Ms(50));
  }
}

std::vector<Uid> Experiment::PlanBackgroundPool(const std::vector<Uid>& exclude) {
  std::vector<Uid> pool;
  for (Uid uid : catalog_uids_) {
    if (std::find(exclude.begin(), exclude.end(), uid) == exclude.end()) {
      pool.push_back(uid);
    }
  }
  engine_->rng().Shuffle(pool);
  return pool;
}

bool Experiment::CacheOneBackgroundApp(Uid uid, SimDuration settle) {
  am_->Launch(uid);
  AwaitInteractive(uid, Sec(20));
  engine_->RunFor(settle);
  return SettleToQuiescence();
}

void Experiment::FinishCaching() {
  am_->MoveForegroundToBackground();
  engine_->RunFor(Sec(1));
}

std::vector<Uid> Experiment::CacheBackgroundApps(int n, const std::vector<Uid>& exclude,
                                                 SimDuration settle) {
  std::vector<Uid> pool = PlanBackgroundPool(exclude);
  ICE_CHECK_LE(static_cast<size_t>(n), pool.size());
  pool.resize(static_cast<size_t>(n));

  for (Uid uid : pool) {
    CacheOneBackgroundApp(uid, settle);
  }
  FinishCaching();
  return pool;
}

ScenarioResult Experiment::RunScenario(ScenarioKind kind, SimDuration duration,
                                       SimDuration warmup) {
  return RunScenarioForApp(UidOf(ScenarioPackage(kind)), kind, duration, warmup);
}

ScenarioResult Experiment::RunScenarioForApp(Uid uid, ScenarioKind kind,
                                             SimDuration duration, SimDuration warmup) {
  am_->Launch(uid);
  AwaitInteractive(uid, Sec(30));

  Scenario scenario(*am_, uid, kind, engine_->rng().Fork());
  choreographer_->SetSource(&scenario);
  choreographer_->Start();
  if (warmup > 0) {
    engine_->RunFor(warmup);
  }
  choreographer_->stats().Clear();

  auto stats_before = engine_->stats().Snapshot();
  uint64_t busy_before = scheduler_->busy_us();
  uint64_t cap_before = scheduler_->capacity_us();
  SimTime begin = engine_->now();

  engine_->RunFor(duration);

  SimTime end = engine_->now();
  choreographer_->SetSource(nullptr);
  auto delta = StatsRegistry::Diff(stats_before, engine_->stats().Snapshot());

  ScenarioResult result;
  result.avg_fps = choreographer_->stats().AverageFps(begin, end);
  result.ria = choreographer_->stats().Ria();
  result.fps_series = choreographer_->stats().FpsPerSecond(begin, end);
  result.reclaims = delta[stat::kPagesReclaimed];
  result.refaults = delta[stat::kRefaults];
  result.refaults_bg = delta[stat::kRefaultsBg];
  result.refaults_fg = delta[stat::kRefaultsFg];
  result.io_requests = delta[stat::kIoReads] + delta[stat::kIoWrites];
  result.io_bytes = delta[stat::kIoReadBytes] + delta[stat::kIoWriteBytes];
  result.freezes = delta[stat::kFreezes];
  result.thaws = delta[stat::kThaws];
  result.lmk_kills = delta[stat::kLmkKills];
  result.arena_bytes_peak = mm_->arena_bytes_peak();
  result.zram_rejects = delta[stat::kZramRejects];
  result.swap_rejects_hot = delta[stat::kSwapRejectsHot];
  result.swap_writeback_pages = delta[stat::kSwapWritebackPages];
  result.swap_stores_fast = delta[stat::kSwapStoresFast];
  result.swap_stores_dense = delta[stat::kSwapStoresDense];
  // Lifetime distribution, like arena_bytes_peak: stores during warmup and
  // background caching are exactly the admission decisions worth observing.
  result.zram_compressed_bytes = mm_->swap_governor().compressed_bytes();
  uint64_t cap = scheduler_->capacity_us() - cap_before;
  result.cpu_util =
      cap == 0 ? 0.0 : static_cast<double>(scheduler_->busy_us() - busy_before) / cap;
  if (tracer_ != nullptr) {
    result.trace = SummarizeTrace(*tracer_);
  }
  return result;
}

// ---- Snapshot / restore -----------------------------------------------------

bool Experiment::QuiescentNow() const {
  if (mm_->faults_in_flight() != 0) {
    return false;
  }
  if (storage_->queued() != 0 || storage_->inflight() != 0) {
    return false;
  }
  if (choreographer_->started()) {
    return false;
  }
  for (Task* task : scheduler_->live_tasks()) {
    if (!task->behavior().Quiescent()) {
      return false;
    }
  }
  return true;
}

bool Experiment::SettleToQuiescence(int max_ticks) {
  for (int i = 0; i < max_ticks; ++i) {
    if (QuiescentNow()) {
      return true;
    }
    engine_->RunFor(Engine::kTick);
  }
  return QuiescentNow();
}

std::string ConfigFingerprint(const ExperimentConfig& c) {
  std::ostringstream out;
  out.precision(17);
  out << "device=" << c.device.name << " cores=" << c.device.num_cores
      << " pages=" << c.device.mem.total_pages
      << " reserved=" << c.device.mem.os_reserved_pages
      << " hwm=" << c.device.mdt_hwm_mib << " fpba=" << c.device.full_pressure_bg_apps
      << " seed=" << c.seed << " scheme=" << c.scheme << " aging=" << c.aging
      << " swap=" << c.swap
      << " fscale=" << c.tuning.footprint_scale
      << " bgscale=" << c.tuning.bg_activity_scale << " ext=" << c.extended_catalog
      << " nogc=" << c.disable_gc << " svc=" << c.services.service_tasks << '/'
      << c.services.period << '/' << c.services.duty << '/' << c.services.jitter
      << " ice=" << c.ice.delta << '/' << c.ice.thaw_duration << '/'
      << c.ice.min_freeze << '/' << c.ice.max_freeze << '/' << c.ice.hwm_mib << '/'
      << c.ice.whitelist_adj_threshold << '/' << c.ice.application_grain << '/'
      << c.ice.enable_prediction << '/' << c.ice.prediction_fanout
      << " trace=" << c.trace << '/' << c.trace_buffer_pages;
  return out.str();
}

std::string Experiment::Fingerprint() const { return ConfigFingerprint(config_); }

std::vector<uint8_t> Experiment::SaveSnapshot() const {
  BinaryWriter w;
  SaveSnapshotInto(w);
  return w.Finish();
}

void Experiment::SaveSnapshotInto(BinaryWriter& w) const {
  ICE_CHECK(QuiescentNow()) << "snapshot requires a quiescent tick boundary";
  // The stream is dominated by the page-arena dumps; growing a vector to
  // tens of megabytes by doubling would copy the whole payload again, so
  // size it up front (an eighth of slack plus 4 MiB covers every other
  // section, including a full trace ring). On a reused writer whose buffer
  // already reached this size, Reserve is a no-op.
  w.Reserve(mm_->arena_bytes_live() + mm_->arena_bytes_live() / 8 + (4u << 20));
  w.BeginSection(kSectionMeta);
  w.Str(Fingerprint());
  w.EndSection();
  w.BeginSection(kSectionEngine);
  engine_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionActivityManager);
  am_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionMemory);
  mm_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionScheduler);
  scheduler_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionStorage);
  storage_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionFreezer);
  freezer_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionLmk);
  lmk_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionScheme);
  scheme_->SaveTo(w);
  w.EndSection();
  w.BeginSection(kSectionTrace);
  w.Bool(tracer_ != nullptr);
  if (tracer_ != nullptr) {
    tracer_->SaveTo(w);
  }
  w.EndSection();
}

void Experiment::SaveSnapshotToFile(const std::string& path) const {
  std::vector<uint8_t> bytes = SaveSnapshot();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ICE_CHECK(out.good()) << "cannot open snapshot file for writing: " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  ICE_CHECK(out.good()) << "short write to snapshot file: " << path;
}

void Experiment::RestoreFromBytes(const std::vector<uint8_t>& snapshot,
                                  bool verify_checksum, bool seed_agnostic) {
  BinaryReader r(snapshot, verify_checksum);
  r.ExpectSection(kSectionMeta);
  std::string fp = r.Str();
  r.EndSection();
  std::string expected = Fingerprint();
  bool match = seed_agnostic ? StripSeedToken(fp) == StripSeedToken(expected)
                             : fp == expected;
  if (!match) {
    throw std::runtime_error("snapshot: config fingerprint mismatch\n  snapshot: " +
                             fp + "\n  config:   " + expected);
  }
  // Cancel everything Install() armed; the wheel must be empty before the
  // engine restore so the saved event sequence replays exactly.
  scheme_->BeginRestore();
  r.ExpectSection(kSectionEngine);
  engine_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionActivityManager);
  am_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionMemory);
  mm_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionScheduler);
  scheduler_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionStorage);
  storage_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionFreezer);
  freezer_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionLmk);
  lmk_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionScheme);
  scheme_->RestoreFrom(r);
  r.EndSection();
  r.ExpectSection(kSectionTrace);
  bool has_trace = r.Bool();
  if (has_trace != (tracer_ != nullptr)) {
    throw std::runtime_error(
        "snapshot: tracing configuration mismatch between snapshot and config");
  }
  if (has_trace) {
    tracer_->RestoreFrom(r);
  }
  r.EndSection();
  r.ExpectEnd();
}

void Experiment::ResetForRecycle() {
  // Ordering contract:
  //  1. Choreographer first — it stops the vsync clock (the trace runner
  //     starts it but never stops it) while its event handle is still valid.
  //  2. Kill every app while the wheel is live (KillApp cancels task timers,
  //     releases spaces back to the MM, drains their pending faults, drops
  //     their zram residency, and parks the processes in the graveyard).
  //  3. Clear the wheel. Boot tasks keep stale timer handles; the generation
  //     bump makes them resolve to nothing, and Task::RestoreFrom re-arms.
  //  4. Destroy the dead post-boot tasks and rewind the task-id sequence.
  //     Must precede graveyard teardown: tasks hold Process* backpointers.
  //  5. Drop the graveyard and rewind the lifecycle history / pid sequence.
  //  6/7. Rewind the memory manager's and block device's scalar state.
  choreographer_->ResetForRecycle();
  am_->KillAllForRecycle();
  engine_->ResetForRecycle();
  scheduler_->ResetForRecycle(boot_task_count_);
  am_->ResetForRecycle();
  mm_->ResetForRecycle();
  storage_->ResetForRecycle();
}

void Experiment::RestoreTemplate(const std::vector<uint8_t>& snapshot,
                                 uint64_t new_seed) {
  ResetForRecycle();
  config_.seed = new_seed;
  RestoreFromBytes(snapshot, /*verify_checksum=*/false, /*seed_agnostic=*/true);
  // The snapshot carries the donor's trace stream; give this device its own.
  // The noise stream stays as restored — cold and templated runs then consume
  // identical noise draws from the template point on.
  engine_->rng() = Rng(new_seed);
}

std::unique_ptr<Experiment> Experiment::RestoreSnapshot(
    const ExperimentConfig& config, const std::vector<uint8_t>& snapshot,
    bool verify_checksum) {
  return std::unique_ptr<Experiment>(
      new Experiment(config, &snapshot, verify_checksum));
}

std::unique_ptr<Experiment> Experiment::RestoreSnapshotFromFile(
    const ExperimentConfig& config, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("snapshot: cannot open file: " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return RestoreSnapshot(config, bytes);
}

}  // namespace ice
