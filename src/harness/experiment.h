// Experiment harness: builds a complete simulated device (engine, flash,
// memory manager, scheduler, system services, freezer, LMK, activity
// manager, choreographer), installs the app catalog and a policy scheme, and
// provides the common drivers the benches and tests share (cache N
// background apps, run scenario X in the foreground, collect metrics).
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/android/activity_manager.h"
#include "src/android/choreographer.h"
#include "src/android/device_profile.h"
#include "src/android/system_services.h"
#include "src/ice/daemon.h"
#include "src/mem/memory_manager.h"
#include "src/metrics/frame_stats.h"
#include "src/policy/registry.h"
#include "src/proc/freezer.h"
#include "src/proc/lmk.h"
#include "src/proc/scheduler.h"
#include "src/sim/engine.h"
#include "src/storage/block_device.h"
#include "src/trace/summary.h"
#include "src/trace/tracer.h"
#include "src/workload/app_catalog.h"
#include "src/workload/scenario.h"

namespace ice {

struct ExperimentConfig {
  DeviceProfile device;
  uint64_t seed = 42;
  // "lru_cfs", "ucsg", "acclaim", "power", "ice".
  std::string scheme = "lru_cfs";
  // Page aging policy: "two_list" (classic active/inactive LRU) or
  // "gen_clock" (MGLRU-style generation clock). A sweepable axis, orthogonal
  // to the scheme (any policy scheme runs on either aging substrate).
  std::string aging = "two_list";
  // Swap-out policy: "baseline" (admit-everything zram) or "hotness" (the
  // Ariadne-style hotness-gated, size-adaptive policy in src/swap/). Another
  // sweepable axis, orthogonal to both scheme and aging.
  std::string swap = "baseline";
  WorkloadTuning tuning;
  bool extended_catalog = false;  // 40 apps (§3.2 study) instead of 20.
  bool disable_gc = false;        // The "idle runtime GC off" experiment.
  SystemServicesConfig services;
  // Optional override of ICE parameters (used by the MDT ablation).
  IceConfig ice;
  // Tracing (ftrace-style ring buffer; see src/trace/). Off by default:
  // a null tracer keeps every ICE_TRACE site to a single branch.
  bool trace = false;
  uint32_t trace_buffer_pages = kDefaultTraceBufferPages;

  ExperimentConfig() : device(P20Profile()) {}
};

// Metrics over one foreground-scenario window.
struct ScenarioResult {
  double avg_fps = 0.0;
  double ria = 0.0;
  std::vector<double> fps_series;  // Per-second.
  uint64_t reclaims = 0;
  uint64_t refaults = 0;
  uint64_t refaults_bg = 0;
  uint64_t refaults_fg = 0;
  uint64_t io_requests = 0;
  uint64_t io_bytes = 0;
  double cpu_util = 0.0;
  uint64_t freezes = 0;
  uint64_t thaws = 0;
  uint64_t lmk_kills = 0;
  // High-water mark of the simulator's own page-metadata arenas
  // (MemoryManager::arena_bytes_peak()) over the experiment lifetime, so
  // sweep reports carry the same metadata-footprint figure fleet reports do.
  uint64_t arena_bytes_peak = 0;
  // Swap-policy observability: capacity rejects are meaningful under any
  // policy; the rest move only under "hotness" and are reported only then.
  uint64_t zram_rejects = 0;
  uint64_t swap_rejects_hot = 0;
  uint64_t swap_writeback_pages = 0;
  uint64_t swap_stores_fast = 0;
  uint64_t swap_stores_dense = 0;
  // Compressed-size distribution of every zram store (hotness policy only;
  // empty under baseline). Shape is the shared kZramSizeHist* bucketing.
  MergeHistogram zram_compressed_bytes{MergeHistogram::Options{
      kZramSizeHistLo, kZramSizeHistHi, kZramSizeHistBuckets}};
  // Filled from the experiment's tracer when tracing is enabled.
  TraceSummary trace;
};

// Deterministic digest of every ExperimentConfig field that shapes
// simulation state. Equal digests on raw configs imply the two runs evolve
// identically; the sweep runner uses this to group prefix-sharable cells.
std::string ConfigFingerprint(const ExperimentConfig& config);

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  Engine& engine() { return *engine_; }
  BlockDevice& storage() { return *storage_; }
  MemoryManager& mm() { return *mm_; }
  Scheduler& scheduler() { return *scheduler_; }
  Freezer& freezer() { return *freezer_; }
  Lmk& lmk() { return *lmk_; }
  ActivityManager& am() { return *am_; }
  Choreographer& choreographer() { return *choreographer_; }
  Scheme& scheme() { return *scheme_; }
  // Null unless config.trace was set.
  Tracer* tracer() { return tracer_.get(); }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<CatalogApp>& catalog() const { return catalog_; }

  // Uid of an installed catalog app by package name (aborts when missing).
  Uid UidOf(const std::string& package) const;
  // All installed catalog uids, in catalog order.
  std::vector<Uid> CatalogUids() const;

  // Launches `n` catalog apps (chosen pseudo-randomly, excluding `exclude`)
  // and sends each to the background after `settle` of foreground time.
  // Equivalent to PlanBackgroundPool + n times CacheOneBackgroundApp +
  // FinishCaching — the decomposed form the prefix-sharing sweep uses to
  // snapshot between apps.
  std::vector<Uid> CacheBackgroundApps(int n, const std::vector<Uid>& exclude = {},
                                       SimDuration settle = Ms(2500));

  // The full shuffled candidate pool for background caching (all catalog
  // apps minus `exclude`). Draws from the engine RNG, so the sequence of
  // pools is deterministic for a given config and call order. The shuffle
  // always covers the whole pool, making the RNG draw count independent of
  // how many apps the caller then caches.
  std::vector<Uid> PlanBackgroundPool(const std::vector<Uid>& exclude = {});

  // Launches one app, waits for it to become interactive, lets it settle in
  // the foreground, then settles the whole system to a quiescent tick
  // boundary (so a snapshot may be taken). Returns false when quiescence was
  // not reached within the bounded search — the caller must then not
  // snapshot at this boundary.
  bool CacheOneBackgroundApp(Uid uid, SimDuration settle = Ms(2500));

  // Sends the last cached app to the background and gives the system a
  // second to absorb it; call once after the final CacheOneBackgroundApp.
  void FinishCaching();

  // ---- Snapshot / restore ---------------------------------------------
  //
  // A snapshot captures the complete simulator state at a quiescent tick
  // boundary: no faults or IO in flight, every task idle at its steady
  // state, choreographer not yet started. Restoring into a freshly
  // constructed Experiment with the *same config* resumes bit-identically —
  // the restored run's outputs match an uninterrupted run byte for byte.

  // True when the system is quiescent right now (safe to snapshot).
  bool QuiescentNow() const;

  // Runs single ticks (up to `max_ticks`) until QuiescentNow(); returns
  // whether quiescence was reached. Runs in *every* caching path, shared or
  // not, so cold and forked runs advance the clock identically. The default
  // bound (2 simulated seconds) rides out a full-pressure device: with every
  // background slot filled, joint idle windows across all tasks are rare and
  // a few hundred ticks of search is routinely needed.
  bool SettleToQuiescence(int max_ticks = 2000);

  // Deterministic digest of every config field that shapes simulation
  // state (ConfigFingerprint of the normalized config). Stored in the
  // snapshot and checked on restore: restoring under a different config is
  // a hard error, not a silent divergence.
  std::string Fingerprint() const;

  // Serializes the full state (aborts if !QuiescentNow()).
  std::vector<uint8_t> SaveSnapshot() const;
  // Same, into a caller-owned writer: repeated saves in one worker reuse the
  // writer's buffer (Clear() keeps capacity) instead of growing a fresh
  // vector to tens of megabytes each time. The caller calls Finish()/
  // FinishInPlace() when done.
  void SaveSnapshotInto(BinaryWriter& w) const;
  void SaveSnapshotToFile(const std::string& path) const;

  // Builds an Experiment from `config` and restores `snapshot` into it.
  // Throws std::runtime_error on a corrupt/truncated/mismatched stream.
  // `verify_checksum = false` skips the whole-stream checksum scan; only for
  // snapshots that never left this process (the sweep forking from an
  // in-memory donor snapshot) — anything read from disk should verify.
  static std::unique_ptr<Experiment> RestoreSnapshot(
      const ExperimentConfig& config, const std::vector<uint8_t>& snapshot,
      bool verify_checksum = true);
  static std::unique_ptr<Experiment> RestoreSnapshotFromFile(
      const ExperimentConfig& config, const std::string& path);

  // ---- Warm-boot templates (instance recycling) -----------------------
  //
  // RestoreTemplate rewinds this *live* Experiment back to the snapshot
  // instead of constructing a fresh one: every running app is killed with
  // listeners suppressed, the event wheel / scheduler / activity manager /
  // memory manager / block device are reset to their post-construction
  // shape (keeping their allocations — timing-wheel node pool, task
  // scratch, arena pools, writer capacity), and the snapshot is overlaid
  // via the normal restore path. The trace RNG is then reseeded from
  // `new_seed` and config().seed updated, so the recycled instance is
  // indistinguishable from a cold Experiment(config with seed=new_seed)
  // restored from the same template: boot consumes zero draws from the
  // device-seed stream (they all come from Engine::noise_rng()), so the
  // snapshot is seed-independent apart from the fingerprint text. The
  // fingerprint check is therefore seed-agnostic on this path; every other
  // config field must still match exactly. The checksum scan is skipped —
  // templates never leave the process.
  void RestoreTemplate(const std::vector<uint8_t>& snapshot, uint64_t new_seed);

  // Launches the scenario's own app in the foreground and runs the scenario
  // for `warmup + duration`, measuring only over the final `duration` — the
  // warmup brings the memory system to its hot steady state, like the
  // paper's sampled periods from long-running sessions.
  ScenarioResult RunScenario(ScenarioKind kind, SimDuration duration,
                             SimDuration warmup = Sec(240));
  ScenarioResult RunScenarioForApp(Uid uid, ScenarioKind kind, SimDuration duration,
                                   SimDuration warmup = Sec(240));

  // Runs until the app's pending launch completes (bounded wait).
  void AwaitInteractive(Uid uid, SimDuration timeout = Sec(30));

 private:
  // Shared constructor body: builds the device, then either settles the
  // fresh system (snapshot == nullptr) or restores the saved state.
  Experiment(const ExperimentConfig& config, const std::vector<uint8_t>* snapshot,
             bool verify_checksum = true);

  // `seed_agnostic` compares fingerprints with the seed token stripped
  // (RestoreTemplate overlays a donor snapshot onto a different seed).
  void RestoreFromBytes(const std::vector<uint8_t>& snapshot, bool verify_checksum,
                        bool seed_agnostic = false);

  // Teardown half of RestoreTemplate; see the member comment there for the
  // ordering contract between the wheel clear, task destruction, and the
  // process graveyard.
  void ResetForRecycle();

  ExperimentConfig config_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<BlockDevice> storage_;
  std::unique_ptr<MemoryManager> mm_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<SystemServices> services_;
  std::unique_ptr<Freezer> freezer_;
  std::unique_ptr<Lmk> lmk_;
  std::unique_ptr<ActivityManager> am_;
  std::unique_ptr<Choreographer> choreographer_;
  std::unique_ptr<Scheme> scheme_;
  std::vector<CatalogApp> catalog_;
  std::vector<Uid> catalog_uids_;
  // Tasks alive at the end of construction (kswapd + system services); the
  // boundary ResetForRecycle truncates the scheduler's task vector back to.
  size_t boot_task_count_ = 0;
};

}  // namespace ice

#endif  // SRC_HARNESS_EXPERIMENT_H_
