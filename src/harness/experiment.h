// Experiment harness: builds a complete simulated device (engine, flash,
// memory manager, scheduler, system services, freezer, LMK, activity
// manager, choreographer), installs the app catalog and a policy scheme, and
// provides the common drivers the benches and tests share (cache N
// background apps, run scenario X in the foreground, collect metrics).
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/android/activity_manager.h"
#include "src/android/choreographer.h"
#include "src/android/device_profile.h"
#include "src/android/system_services.h"
#include "src/ice/daemon.h"
#include "src/mem/memory_manager.h"
#include "src/metrics/frame_stats.h"
#include "src/policy/registry.h"
#include "src/proc/freezer.h"
#include "src/proc/lmk.h"
#include "src/proc/scheduler.h"
#include "src/sim/engine.h"
#include "src/storage/block_device.h"
#include "src/trace/summary.h"
#include "src/trace/tracer.h"
#include "src/workload/app_catalog.h"
#include "src/workload/scenario.h"

namespace ice {

struct ExperimentConfig {
  DeviceProfile device;
  uint64_t seed = 42;
  // "lru_cfs", "ucsg", "acclaim", "power", "ice".
  std::string scheme = "lru_cfs";
  // Page aging policy: "two_list" (classic active/inactive LRU) or
  // "gen_clock" (MGLRU-style generation clock). A sweepable axis, orthogonal
  // to the scheme (any policy scheme runs on either aging substrate).
  std::string aging = "two_list";
  WorkloadTuning tuning;
  bool extended_catalog = false;  // 40 apps (§3.2 study) instead of 20.
  bool disable_gc = false;        // The "idle runtime GC off" experiment.
  SystemServicesConfig services;
  // Optional override of ICE parameters (used by the MDT ablation).
  IceConfig ice;
  // Tracing (ftrace-style ring buffer; see src/trace/). Off by default:
  // a null tracer keeps every ICE_TRACE site to a single branch.
  bool trace = false;
  uint32_t trace_buffer_pages = kDefaultTraceBufferPages;

  ExperimentConfig() : device(P20Profile()) {}
};

// Metrics over one foreground-scenario window.
struct ScenarioResult {
  double avg_fps = 0.0;
  double ria = 0.0;
  std::vector<double> fps_series;  // Per-second.
  uint64_t reclaims = 0;
  uint64_t refaults = 0;
  uint64_t refaults_bg = 0;
  uint64_t refaults_fg = 0;
  uint64_t io_requests = 0;
  uint64_t io_bytes = 0;
  double cpu_util = 0.0;
  uint64_t freezes = 0;
  uint64_t thaws = 0;
  uint64_t lmk_kills = 0;
  // High-water mark of the simulator's own page-metadata arenas
  // (MemoryManager::arena_bytes_peak()) over the experiment lifetime, so
  // sweep reports carry the same metadata-footprint figure fleet reports do.
  uint64_t arena_bytes_peak = 0;
  // Filled from the experiment's tracer when tracing is enabled.
  TraceSummary trace;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  Engine& engine() { return *engine_; }
  BlockDevice& storage() { return *storage_; }
  MemoryManager& mm() { return *mm_; }
  Scheduler& scheduler() { return *scheduler_; }
  Freezer& freezer() { return *freezer_; }
  Lmk& lmk() { return *lmk_; }
  ActivityManager& am() { return *am_; }
  Choreographer& choreographer() { return *choreographer_; }
  Scheme& scheme() { return *scheme_; }
  // Null unless config.trace was set.
  Tracer* tracer() { return tracer_.get(); }
  const ExperimentConfig& config() const { return config_; }
  const std::vector<CatalogApp>& catalog() const { return catalog_; }

  // Uid of an installed catalog app by package name (aborts when missing).
  Uid UidOf(const std::string& package) const;
  // All installed catalog uids, in catalog order.
  std::vector<Uid> CatalogUids() const;

  // Launches `n` catalog apps (chosen pseudo-randomly, excluding `exclude`)
  // and sends each to the background after `settle` of foreground time.
  std::vector<Uid> CacheBackgroundApps(int n, const std::vector<Uid>& exclude = {},
                                       SimDuration settle = Ms(2500));

  // Launches the scenario's own app in the foreground and runs the scenario
  // for `warmup + duration`, measuring only over the final `duration` — the
  // warmup brings the memory system to its hot steady state, like the
  // paper's sampled periods from long-running sessions.
  ScenarioResult RunScenario(ScenarioKind kind, SimDuration duration,
                             SimDuration warmup = Sec(240));
  ScenarioResult RunScenarioForApp(Uid uid, ScenarioKind kind, SimDuration duration,
                                   SimDuration warmup = Sec(240));

  // Runs until the app's pending launch completes (bounded wait).
  void AwaitInteractive(Uid uid, SimDuration timeout = Sec(30));

 private:
  ExperimentConfig config_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<BlockDevice> storage_;
  std::unique_ptr<MemoryManager> mm_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<SystemServices> services_;
  std::unique_ptr<Freezer> freezer_;
  std::unique_ptr<Lmk> lmk_;
  std::unique_ptr<ActivityManager> am_;
  std::unique_ptr<Choreographer> choreographer_;
  std::unique_ptr<Scheme> scheme_;
  std::vector<CatalogApp> catalog_;
  std::vector<Uid> catalog_uids_;
};

}  // namespace ice

#endif  // SRC_HARNESS_EXPERIMENT_H_
