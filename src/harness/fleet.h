// Population-scale fleet runner: simulates N devices, each a
// (device-tier, policy, per-device seed) cell driving a stochastic
// daily-usage trace (src/workload/usage_trace), and streams the results into
// per-(policy x tier) mergeable histograms instead of per-device records —
// a million cells cannot each write a JSON blob.
//
// Execution model: devices are grouped into fixed-size chunks and the chunks
// are fed to a work-stealing job pool — each worker owns a deque of chunks
// and steals from the fullest victim when its own runs dry, so stragglers
// (e.g. an entry-tier device thrashing through LMK) do not idle the other
// cores. Each chunk accumulates its own partial FleetGroupStats; finished
// partials are folded into the global aggregate *in chunk-index order*
// ("ordered streaming fold"), so memory stays bounded by the scheduling
// skew, never by N.
//
// Determinism contract (shard-independent): a device's results depend only
// on its index (tier, scheme, seed are all pure functions of it), and the
// reduce order is fixed by chunk index — so the fleet output is
// byte-identical for any jobs=N. CI diffs --jobs=1 vs --jobs=8 reports.
// Changing `chunk` (or `devices`) regroups the double-precision sums and is
// NOT covered by the byte-identity guarantee; chunk size is therefore a pure
// function of the device count, never of the worker count.
#ifndef SRC_HARNESS_FLEET_H_
#define SRC_HARNESS_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/merge_histogram.h"
#include "src/base/units.h"
#include "src/swap/swap_policy.h"
#include "src/workload/usage_trace.h"

namespace ice {

class Experiment;
struct ExperimentConfig;

struct FleetConfig {
  uint64_t devices = 1000;
  int jobs = 0;    // <= 0: DefaultSweepJobs() (ICE_JOBS env or all cores).
  uint32_t chunk = 0;  // Devices per chunk; 0 = auto (a function of `devices` only).
  uint64_t seed = 1;   // Fleet seed; per-device seeds are derived from it.
  std::vector<std::string> schemes{"lru_cfs", "ice"};
  // Page aging policy for every device ("two_list" / "gen_clock").
  std::string aging = "two_list";
  // Swap-out policy for every device ("baseline" / "hotness").
  std::string swap = "baseline";
  // Tier names (see FleetTierNames()); empty = the full default ladder.
  std::vector<std::string> tiers;
  // Per-device daily-usage shape: one compressed "day" of foreground
  // sessions. Small defaults keep a 10k-device fleet inside a CI smoke
  // budget; scale up locally for longer days.
  int sessions = 3;
  SimDuration session_mean = Sec(4);
  double session_sigma = 0.4;
  // Warm-boot templates: each worker builds one donor Experiment per fleet
  // group, snapshots it at the post-boot quiescent boundary, and runs every
  // device of that group by recycling the donor in place (restore template,
  // reseed the trace RNG from the device seed). Boot consumes zero
  // device-seed draws, so the output is byte-identical to cold per-device
  // construction — `off` is the escape hatch CI diffs against.
  bool use_templates = true;
};

// Streaming aggregate for one (tier, scheme) cell of the fleet. All fields
// merge associatively; MergeFrom is the reduce step and must be applied in
// chunk-index order for byte-stable double sums (see header comment).
struct FleetGroupStats {
  std::string tier;
  std::string scheme;
  uint64_t devices = 0;
  uint64_t failures = 0;
  // First failure by device index, kept for the report; the ordered fold
  // makes "first" deterministic.
  uint64_t first_error_device = UINT64_MAX;
  std::string first_error;

  // Per-frame latency across every device of the group.
  MergeHistogram frame_latency_us{{100.0, 1e6, 96}};
  // Per-device distributions.
  MergeHistogram fps{{1.0, 240.0, 96}};
  MergeHistogram ria{{1e-4, 1.0, 48}};
  MergeHistogram refaults{{1.0, 1e8, 80}};
  MergeHistogram lmk_kills{{1.0, 1e4, 32}};
  // Per-store compressed sizes across the group's devices (hotness swap
  // policy only; stays empty — and unreported — under baseline).
  MergeHistogram zram_compressed_bytes{
      {kZramSizeHistLo, kZramSizeHistHi, kZramSizeHistBuckets}};

  uint64_t total_frames = 0;
  uint64_t total_refaults = 0;
  uint64_t total_lmk_kills = 0;
  // Max over devices of MemoryManager::arena_bytes_peak() — the simulator's
  // metadata footprint headroom figure for the tier.
  uint64_t peak_arena_bytes = 0;

  void MergeFrom(const FleetGroupStats& other);
};

struct FleetResult {
  FleetConfig config;  // As resolved (jobs/chunk/tiers filled in).
  // Tier-major x scheme-minor, matching FleetRunner::GroupOf.
  std::vector<FleetGroupStats> groups;
  uint64_t devices_failed = 0;
  uint64_t peak_arena_bytes = 0;  // Fleet-wide max.
  double wall_seconds = 0.0;      // Never serialized (nondeterministic).
};

class FleetRunner {
 public:
  explicit FleetRunner(const FleetConfig& config);

  FleetResult Run() const;

  const FleetConfig& config() const { return config_; }
  size_t num_groups() const { return config_.tiers.size() * config_.schemes.size(); }
  // Stratified assignment: device i belongs to group i % num_groups(), so
  // every group sees the same device count (+/- 1) and the same spread of
  // seeds regardless of N.
  size_t GroupOf(uint64_t device_index) const { return device_index % num_groups(); }
  uint32_t chunk_size() const { return chunk_; }
  uint64_t num_chunks() const;

  // SplitMix64 over (fleet seed, device index): decorrelated per-device
  // streams from one fleet seed.
  static uint64_t DeviceSeed(uint64_t fleet_seed, uint64_t device_index);

  // Runs one device cell cold (fresh Experiment, no template) and folds its
  // metrics into `group` (which must be the accumulator for
  // GroupOf(device_index)). Exposed for tests; Run() goes through the
  // warm-boot template path when config().use_templates (same bytes out).
  void RunDevice(uint64_t device_index, FleetGroupStats& group) const;

 private:
  // Per-worker warm-boot state: one donor Experiment + template per group
  // this worker has touched, plus a reusable snapshot writer. Defined in
  // fleet.cc; workers are threads, so nothing here is shared.
  struct WorkerContext;

  // The experiment config for one (tier, scheme) group; everything but the
  // seed is a pure function of the group index.
  ExperimentConfig GroupConfig(size_t group, uint64_t seed) const;
  // Template-or-cold dispatch for one device.
  void RunDeviceWith(WorkerContext& wc, uint64_t device_index,
                     FleetGroupStats& group) const;
  // The trace phase shared by both paths, on an experiment already at the
  // post-boot quiescent boundary.
  void RunTrace(Experiment& exp,
                const std::vector<UsageTraceRunner::InstalledApp>& apps,
                FleetGroupStats& group) const;
  void RunChunk(uint64_t chunk_index, std::vector<FleetGroupStats>& partial,
                WorkerContext& wc) const;
  std::vector<FleetGroupStats> MakeAccumulators() const;

  FleetConfig config_;
  uint32_t chunk_ = 1;
};

}  // namespace ice

#endif  // SRC_HARNESS_FLEET_H_
