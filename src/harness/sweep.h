// Parallel sweep runner for the experiment harness.
//
// Every figure and ablation in the paper is a grid of independent runs —
// scheme × scenario × background-app count × seed. Each cell owns its own
// Engine, Rng and StatsRegistry, so the grid is embarrassingly parallel.
// SweepRunner fans cells out to a worker pool and returns results in
// deterministic grid order regardless of scheduling: the metrics of a cell
// depend only on its own config (and seed), never on which thread ran it or
// in what order, so a parallel sweep is bit-for-bit identical to a serial
// one. CI asserts this invariant (tests/harness/sweep_test.cc).
#ifndef SRC_HARNESS_SWEEP_H_
#define SRC_HARNESS_SWEEP_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace ice {

// One fully-specified cell: an experiment configuration plus the scenario
// window to measure. `config.seed` carries the per-cell seed.
struct SweepCell {
  ExperimentConfig config;
  ScenarioKind scenario = ScenarioKind::kShortVideo;
  int bg_apps = 0;  // -1 = the device's full-pressure count.
  SimDuration duration = Sec(30);
  SimDuration warmup = Sec(240);
};

// Declarative grid specification. The cross product enumerates cells in
// row-major order with `devices` slowest and `seeds` fastest, which fixes
// the result ordering for reports and comparisons.
struct SweepAxes {
  std::vector<DeviceProfile> devices;
  std::vector<std::string> schemes;
  std::vector<ScenarioKind> scenarios;
  std::vector<int> bg_counts;  // -1 = device full-pressure count.
  std::vector<uint64_t> seeds;
  // Page aging policies ("two_list" / "gen_clock"); empty = base.aging only.
  // Outermost (slowest) axis, so a grid without it enumerates exactly as
  // before the axis existed.
  std::vector<std::string> agings;
  // Swap policies ("baseline" / "hotness"); empty = base.swap only. Sits
  // outside even `agings` under the same rule: a grid without it enumerates
  // exactly as before.
  std::vector<std::string> swaps;
  SimDuration duration = Sec(30);
  SimDuration warmup = Sec(240);
  // Applied to every cell before the per-axis fields; lets callers sweep
  // IceConfig knobs (ablations) while keeping the grid declarative.
  ExperimentConfig base;

  std::vector<SweepCell> Cells() const;
  // Flat index of (device, scheme, scenario, bg, seed) into Cells(), within
  // the first (or only) swap/aging block.
  size_t Index(size_t device, size_t scheme, size_t scenario, size_t bg,
               size_t seed) const;
  size_t size() const {
    return (swaps.empty() ? 1 : swaps.size()) * (agings.empty() ? 1 : agings.size()) *
           devices.size() * schemes.size() * scenarios.size() * bg_counts.size() *
           seeds.size();
  }
};

// Result slot for one unit of sweep work. A cell whose body throws is
// reported here (ok = false, error = what()) without poisoning siblings.
template <typename T>
struct SweepOutcome {
  T value{};
  bool ok = false;
  std::string error;
};

using CellOutcome = SweepOutcome<ScenarioResult>;

// Worker count: ICE_JOBS env override, else hardware concurrency (min 1).
int DefaultSweepJobs();

class SweepRunner {
 public:
  // jobs <= 0 selects DefaultSweepJobs().
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Deterministic parallel map: runs fn(i) for i in [0, n) on the pool and
  // returns outcomes indexed by i, independent of scheduling. fn must not
  // touch shared mutable state (each sweep cell builds its own Experiment).
  template <typename T>
  std::vector<SweepOutcome<T>> Map(size_t n, const std::function<T(size_t)>& fn) const {
    std::vector<SweepOutcome<T>> out(n);
    Dispatch(n, [&](size_t i) {
      try {
        out[i].value = fn(i);
        out[i].ok = true;
      } catch (const std::exception& e) {
        out[i].error = e.what();
      } catch (...) {
        out[i].error = "unknown exception";
      }
    });
    return out;
  }

  // Runs every cell on the pool. With `share_prefix` on (the default),
  // cells that agree on everything except their background-app count share
  // one warmed caching prefix: the common prefix runs once in a donor
  // experiment, is snapshotted at each member's boundary, and every member
  // forks from its snapshot instead of re-running the caching from scratch.
  // Forked cells are byte-identical to cold runs — the full-pool shuffle in
  // PlanBackgroundPool and the per-app settle-to-quiescence run in both
  // paths — so sharing changes wall-clock only, never results
  // (tests/harness/prefix_sweep_test.cc asserts this). Cells that cannot
  // share (bg = 0, singleton groups, or a donor that fails to reach
  // quiescence) silently fall back to a cold run.
  std::vector<CellOutcome> Run(const std::vector<SweepCell>& cells,
                               bool share_prefix = true) const;

  // The canonical cold cell body shared by benches, the CLI and tests:
  // build an isolated Experiment, cache the background apps, run the
  // scenario.
  static ScenarioResult RunCell(const SweepCell& cell);

  // The cell's effective background-app count (-1 resolves to the device's
  // full-pressure count).
  static int NormalizedBg(const SweepCell& cell);

 private:
  // Runs task(i) for all i; task is expected not to throw.
  void Dispatch(size_t n, const std::function<void(size_t)>& task) const;

  int jobs_;
};

}  // namespace ice

#endif  // SRC_HARNESS_SWEEP_H_
