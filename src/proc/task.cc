#include "src/proc/task.h"

#include <optional>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/app.h"
#include "src/proc/behavior.h"
#include "src/proc/process.h"
#include "src/proc/scheduler.h"

namespace ice {

namespace {
// The kernel's sched_prio_to_weight table (nice -20 .. +19).
constexpr int kNiceToWeight[40] = {
    88761, 71755, 56483, 46273, 36291,  // -20..-16
    29154, 23254, 18705, 14949, 11916,  // -15..-11
    9548,  7620,  6100,  4904,  3906,   // -10..-6
    3121,  2501,  1991,  1586,  1277,   // -5..-1
    1024,                               // 0
    820,   655,   526,   423,   335,    // 1..5
    272,   215,   172,   137,   110,    // 6..10
    87,    70,    56,    45,    36,     // 11..15
    29,    23,    18,    15,             // 16..19
};
}  // namespace

int NiceToWeight(int nice) {
  if (nice < -20) {
    nice = -20;
  }
  if (nice > 19) {
    nice = 19;
  }
  return kNiceToWeight[nice + 20];
}

Task::Task(Scheduler& scheduler, std::string name, Process* process, int nice,
           std::unique_ptr<Behavior> behavior)
    : scheduler_(scheduler),
      name_(std::move(name)),
      process_(process),
      nice_(nice),
      weight_(NiceToWeight(nice)),
      behavior_(std::move(behavior)),
      io_waker_([this] { Wake(); }) {
  ICE_CHECK(behavior_ != nullptr);
}

Task::~Task() = default;

void Task::set_nice(int nice) {
  nice_ = nice;
  weight_ = NiceToWeight(nice);
}

void Task::ChargeCpu(SimDuration us) {
  cpu_time_us_ += us;
  if (process_ != nullptr && process_->app() != nullptr) {
    process_->app()->cpu_time_us += us;
  }
}

void Task::CancelTimer() {
  if (timer_event_ != kInvalidEventId) {
    scheduler_.engine().Cancel(timer_event_);
    timer_event_ = kInvalidEventId;
  }
  ++timer_generation_;
}

void Task::EnterState(TaskState next) {
  if (state_ == next) {
    return;
  }
  bool was_runnable = state_ == TaskState::kRunnable;
  bool now_runnable = next == TaskState::kRunnable;
  state_ = next;
  if (was_runnable && !now_runnable) {
    scheduler_.OnTaskNotRunnable(this);
  } else if (!was_runnable && now_runnable) {
    scheduler_.OnTaskRunnable(this);
  }
}

void Task::Wake() {
  switch (state_) {
    case TaskState::kRunnable:
    case TaskState::kDead:
      return;
    case TaskState::kFrozen:
      wake_pending_ = true;
      return;
    case TaskState::kSleeping:
    case TaskState::kBlocked:
      CancelTimer();
      if (freeze_pending_) {
        // The freezer caught us at the wakeup point.
        freeze_pending_ = false;
        wake_pending_ = true;
        EnterState(TaskState::kFrozen);
        return;
      }
      EnterState(TaskState::kRunnable);
      return;
  }
}

void Task::SleepUntilWoken() {
  ICE_CHECK(state_ == TaskState::kRunnable) << name_;
  if (freeze_pending_) {
    freeze_pending_ = false;
    EnterState(TaskState::kFrozen);
    return;
  }
  EnterState(TaskState::kSleeping);
}

void Task::SleepFor(SimDuration delay) {
  ICE_CHECK(state_ == TaskState::kRunnable) << name_;
  if (freeze_pending_) {
    freeze_pending_ = false;
    EnterState(TaskState::kFrozen);
    // The frozen task loses its timer; thaw makes it runnable again.
    return;
  }
  EnterState(TaskState::kSleeping);
  uint64_t generation = ++timer_generation_;
  timer_event_ = scheduler_.engine().ScheduleAfter(delay, [this, generation]() {
    if (generation != timer_generation_) {
      return;  // Timer superseded.
    }
    timer_event_ = kInvalidEventId;
    Wake();
  });
}

void Task::BlockOnIo() {
  ICE_CHECK(state_ == TaskState::kRunnable) << name_;
  EnterState(TaskState::kBlocked);
}

void Task::RequestFreeze() {
  switch (state_) {
    case TaskState::kDead:
    case TaskState::kFrozen:
      return;
    case TaskState::kRunnable:
      if (on_cpu_) {
        // Mid-quantum: freeze at the next safe point (behaviors observe
        // freeze_pending_ through ShouldStop(); the scheduler commits the
        // freeze when the quantum ends).
        freeze_pending_ = true;
        return;
      }
      freeze_pending_ = false;
      EnterState(TaskState::kFrozen);
      return;
    case TaskState::kSleeping:
      CancelTimer();
      freeze_pending_ = false;
      EnterState(TaskState::kFrozen);
      return;
    case TaskState::kBlocked:
      // Cannot freeze mid-I/O; the freezer catches the task on wakeup.
      freeze_pending_ = true;
      return;
  }
}

void Task::CommitPendingFreeze() {
  if (!freeze_pending_ || state_ != TaskState::kRunnable) {
    return;
  }
  freeze_pending_ = false;
  EnterState(TaskState::kFrozen);
}

void Task::ThawNow() {
  freeze_pending_ = false;
  if (state_ != TaskState::kFrozen) {
    return;
  }
  wake_pending_ = false;
  // Thawed tasks become runnable and re-evaluate their work; behaviors with
  // nothing to do will re-sleep on their first quantum.
  EnterState(TaskState::kRunnable);
}

void Task::SaveTo(BinaryWriter& w) const {
  ICE_CHECK(!on_cpu_) << name_;
  w.U8(static_cast<uint8_t>(state_));
  w.Bool(freeze_pending_);
  w.Bool(wake_pending_);
  w.U64(vruntime_us_);
  w.U64(debt_us_);
  w.U64(cpu_time_us_);
  w.I64(nice_);
  w.U64(trace_id_);
  w.U64(timer_generation_);
  bool has_timer = timer_event_ != kInvalidEventId;
  std::optional<std::pair<SimTime, uint64_t>> pending;
  if (has_timer) {
    pending = scheduler_.engine().PendingEvent(timer_event_);
    ICE_CHECK(pending.has_value()) << name_ << ": stale timer EventId";
  }
  w.Bool(has_timer);
  if (has_timer) {
    w.U64(pending->first);
    w.U64(pending->second);
  }
  behavior_->SaveTo(w);
}

void Task::RestoreFrom(BinaryReader& r) {
  // The scheduler has already emptied its run queue; state_ is set directly
  // and membership is rebuilt from the serialized queue order afterwards.
  state_ = static_cast<TaskState>(r.U8());
  freeze_pending_ = r.Bool();
  wake_pending_ = r.Bool();
  vruntime_us_ = r.U64();
  debt_us_ = r.U64();
  cpu_time_us_ = r.U64();
  set_nice(static_cast<int>(r.I64()));
  uint64_t trace_id = r.U64();
  ICE_CHECK_EQ(trace_id, trace_id_) << name_ << ": structural replay diverged";
  uint64_t saved_generation = r.U64();
  CancelTimer();  // Drop any construction-time timer (bumps the generation).
  timer_generation_ = saved_generation;
  if (r.Bool()) {
    SimTime when = r.U64();
    uint64_t seq = r.U64();
    uint64_t generation = timer_generation_;
    timer_event_ = scheduler_.engine().ScheduleAtWithSeq(when, seq, [this, generation]() {
      if (generation != timer_generation_) {
        return;  // Timer superseded.
      }
      timer_event_ = kInvalidEventId;
      Wake();
    });
  }
  behavior_->RestoreFrom(r);
}

void Task::MarkDead() {
  if (state_ == TaskState::kDead) {
    return;
  }
  CancelTimer();
  freeze_pending_ = false;
  wake_pending_ = false;
  EnterState(TaskState::kDead);
  scheduler_.OnTaskDead(this);
}

}  // namespace ice
