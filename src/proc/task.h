// Task: the schedulable entity (analog of a Linux task_struct).
//
// Tasks run a Behavior under a per-quantum budget. A task that performs a
// long non-preemptive operation (direct reclaim, zram compression) simply
// overruns its budget and accumulates *debt*: subsequent quanta are consumed
// repaying it before the behavior runs again. This models non-preemptive
// kernel sections without simulating instruction-level preemption.
//
// Freezing follows the kernel freezer: a freeze request takes effect at the
// next safe point — immediately for runnable/sleeping tasks, at I/O
// completion for blocked ones (try_to_freeze() semantics).
#ifndef SRC_PROC_TASK_H_
#define SRC_PROC_TASK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/base/intrusive_list.h"
#include "src/base/units.h"
#include "src/sim/engine.h"

namespace ice {

class Behavior;
class BinaryReader;
class BinaryWriter;
class Process;
class Scheduler;

struct RunQueueTag {};

enum class TaskState : uint8_t {
  kRunnable,  // On the run queue (or currently on a CPU).
  kSleeping,  // Waiting on a timer or an explicit Wake().
  kBlocked,   // Waiting on I/O completion.
  kFrozen,    // In the freezer; ineligible to run until thawed.
  kDead,      // Process exited; kept in the scheduler graveyard.
};

// Subset of the kernel's nice-to-weight table.
int NiceToWeight(int nice);

class Task : public ListNode<RunQueueTag> {
 public:
  Task(Scheduler& scheduler, std::string name, Process* process, int nice,
       std::unique_ptr<Behavior> behavior);
  ~Task();

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  const std::string& name() const { return name_; }
  Process* process() const { return process_; }
  TaskState state() const { return state_; }
  Behavior& behavior() { return *behavior_; }

  int nice() const { return nice_; }
  void set_nice(int nice);
  int weight() const { return weight_; }

  uint64_t vruntime_us() const { return vruntime_us_; }
  SimDuration debt_us() const { return debt_us_; }
  SimDuration cpu_time_us() const { return cpu_time_us_; }

  // True for kernel threads (kswapd, kworker): never frozen, never killed.
  bool is_kernel() const { return process_ == nullptr; }

  // Stable creation-order id for sched_switch trace events (0 = unset/idle).
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  // ---- State transitions ----------------------------------------------------

  // Makes a sleeping/blocked task runnable. On a frozen task the wake is
  // remembered and delivered at thaw. No-op on runnable/dead tasks.
  void Wake();

  // Sleep waiting for an explicit Wake().
  void SleepUntilWoken();

  // Sleep until now + delay (or an earlier Wake()).
  void SleepFor(SimDuration delay);

  // Park waiting for I/O; the memory manager's completion waker calls Wake().
  void BlockOnIo();

  // Reusable `[this] { Wake(); }` for the fault path. Tasks are owned by
  // unique_ptr and graveyarded rather than destroyed mid-simulation, so the
  // captured pointer stays valid; reusing one std::function avoids building
  // a fresh callable on every memory access.
  const std::function<void()>& io_waker() const { return io_waker_; }

  // Freezer interface (used via the Freezer, the paper's try_to_freeze()).
  void RequestFreeze();
  void ThawNow();
  bool frozen() const { return state_ == TaskState::kFrozen; }
  bool freeze_pending() const { return freeze_pending_; }

  // Scheduler bracketing around a quantum: freeze requests arriving while
  // the task is on a CPU take effect at the next safe point (quantum end or
  // voluntary sleep), mirroring try_to_freeze().
  void set_on_cpu(bool on_cpu) { on_cpu_ = on_cpu; }
  bool on_cpu() const { return on_cpu_; }
  // Applies a deferred freeze at quantum end.
  void CommitPendingFreeze();

  void MarkDead();

  // ---- Scheduler internals --------------------------------------------------

  // ---- Snapshot support -----------------------------------------------------
  // Serializes dynamic state (scheduling accounting, freezer flags, pending
  // sleep timer as (deadline, seq), and the behavior's progress). Restore sets
  // state_ directly — the scheduler rebuilds run-queue membership afterwards
  // in its own serialized order — and re-arms the sleep timer with the saved
  // event sequence number so wheel dispatch order is bit-identical.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  void AddVruntime(SimDuration used_us) {
    vruntime_us_ += used_us * 1024 / static_cast<uint64_t>(weight_);
  }
  void SetVruntime(uint64_t v) { vruntime_us_ = v; }
  void ChargeCpu(SimDuration us);
  void AddDebt(SimDuration us) { debt_us_ += us; }
  void PayDebt(SimDuration us) {
    debt_us_ = debt_us_ > us ? debt_us_ - us : 0;
  }

 private:
  void CancelTimer();
  void EnterState(TaskState next);

  Scheduler& scheduler_;
  std::string name_;
  Process* process_;
  int nice_;
  int weight_;
  std::unique_ptr<Behavior> behavior_;

  TaskState state_ = TaskState::kRunnable;
  bool freeze_pending_ = false;
  bool wake_pending_ = false;  // Wake arrived while frozen.
  bool on_cpu_ = false;

  uint64_t vruntime_us_ = 0;
  SimDuration debt_us_ = 0;
  SimDuration cpu_time_us_ = 0;
  uint64_t trace_id_ = 0;

  EventId timer_event_ = kInvalidEventId;
  uint64_t timer_generation_ = 0;
  std::function<void()> io_waker_;
};

}  // namespace ice

#endif  // SRC_PROC_TASK_H_
