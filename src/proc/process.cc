#include "src/proc/process.h"

#include <utility>

#include "src/proc/app.h"
#include "src/proc/task.h"

namespace ice {

Process::Process(Pid pid, App* app, std::string name, const AddressSpaceLayout& layout)
    : pid_(pid),
      app_(app),
      name_(name),
      space_(pid, app != nullptr ? app->uid() : kInvalidUid, std::move(name), layout) {}

void Process::Kill() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  for (Task* task : tasks_) {
    task->MarkDead();
  }
}

}  // namespace ice
