// Behaviors: what a task does with its CPU time.
//
// A Behavior's Run() is invoked whenever its task is given a quantum. It
// performs work through the TaskContext — computing, touching memory pages
// (which may fault, reclaim, or block), and finally either exhausting the
// budget or putting the task to sleep. Behaviors must be resumable: Run()
// will be called again after a block/sleep with whatever internal progress
// state the behavior kept.
#ifndef SRC_PROC_BEHAVIOR_H_
#define SRC_PROC_BEHAVIOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/mem/address_space.h"
#include "src/mem/memory_manager.h"

namespace ice {

class BinaryReader;
class BinaryWriter;
class Task;
class Scheduler;

// Execution context for one scheduling quantum. The budget may be overrun
// by non-preemptive operations (direct reclaim); the excess becomes task
// debt repaid over subsequent quanta.
class TaskContext {
 public:
  TaskContext(Task& task, Scheduler& scheduler, SimDuration budget);

  // Consumes CPU time. Returns true while budget remains.
  bool Compute(SimDuration us);

  // Touches one page (read or write). Charges fault costs to this context;
  // blocks the task on flash faults. Returns false when the caller should
  // stop running (blocked or budget exhausted).
  bool Touch(AddressSpace& space, uint32_t vpn, bool write);

  // Parks the task. Behaviors must return from Run() promptly afterwards.
  void SleepUntilWoken();
  void SleepFor(SimDuration delay);

  // True when the behavior should return: budget exhausted, task blocked or
  // asleep, or a freeze is pending (the freezer's safe point).
  bool ShouldStop() const;

  SimDuration used() const { return used_; }
  SimDuration budget() const { return budget_; }
  bool blocked() const { return blocked_; }

  Task& task() { return task_; }
  Scheduler& scheduler() { return scheduler_; }
  MemoryManager& mm();
  Rng& rng();
  SimTime now() const;

 private:
  Task& task_;
  Scheduler& scheduler_;
  SimDuration budget_;
  SimDuration used_ = 0;
  bool blocked_ = false;
  bool slept_ = false;
};

class Behavior {
 public:
  virtual ~Behavior() = default;
  virtual void Run(TaskContext& ctx) = 0;

  // ---- Snapshot support -----------------------------------------------------
  // A behavior is quiescent when its internal progress is fully expressible
  // through SaveTo — e.g. no queued WorkItems whose closures a snapshot cannot
  // carry. Snapshots are only taken when every live task's behavior reports
  // quiescence.
  virtual bool Quiescent() const { return true; }
  virtual void SaveTo(BinaryWriter& w) const { (void)w; }
  virtual void RestoreFrom(BinaryReader& r) { (void)r; }
};

// A unit of deferred work: CPU time plus a set of page touches, with an
// optional completion callback (used for frame latency measurement).
struct WorkItem {
  SimDuration compute_us = 0;
  std::vector<uint32_t> touch_vpns;
  AddressSpace* space = nullptr;
  bool write = false;
  std::function<void()> on_complete;

  // Progress (internal).
  size_t next_touch = 0;
};

// Generic behavior draining a FIFO of WorkItems; sleeps when idle. This is
// the workhorse for app main threads, render threads and service tasks:
// producers (the choreographer, BG activity generators) push items and the
// scheduler drives them to completion.
class WorkQueueBehavior : public Behavior {
 public:
  WorkQueueBehavior() = default;

  // Pushing work wakes the owning task.
  void Push(WorkItem item);

  void Run(TaskContext& ctx) override;

  // Set once the task exists (CreateTask returns the Task*).
  void BindTask(Task* task) { task_ = task; }
  Task* task() const { return task_; }

  size_t pending() const { return queue_.size(); }
  uint64_t completed() const { return completed_; }

  // Queued WorkItems carry completion closures a snapshot cannot carry.
  bool Quiescent() const override { return queue_.empty(); }
  void SaveTo(BinaryWriter& w) const override;
  void RestoreFrom(BinaryReader& r) override;

 private:
  Task* task_ = nullptr;
  std::deque<WorkItem> queue_;
  uint64_t completed_ = 0;
};

// kswapd: wakes when the memory manager signals pressure, reclaims in
// batches until the high watermark is restored, then sleeps.
class KswapdBehavior : public Behavior {
 public:
  void Run(TaskContext& ctx) override;
};

// Periodic compute-plus-touch load (system services, cputester): every
// `period`, runs `compute_us` and touches `touches` pages drawn uniformly
// from its space (if any).
class PeriodicLoadBehavior : public Behavior {
 public:
  struct Params {
    SimDuration period = Ms(100);
    SimDuration compute_us = Us(500);
    uint32_t touches = 0;
    AddressSpace* space = nullptr;
    // Jitter applied to each period (fraction of period, uniform).
    double jitter = 0.2;
  };

  explicit PeriodicLoadBehavior(const Params& params) : params_(params) {}

  void Run(TaskContext& ctx) override;

  void SaveTo(BinaryWriter& w) const override;
  void RestoreFrom(BinaryReader& r) override;

 private:
  Params params_;
  SimDuration remaining_compute_ = 0;
  uint32_t remaining_touches_ = 0;
  bool started_ = false;
};

}  // namespace ice

#endif  // SRC_PROC_BEHAVIOR_H_
