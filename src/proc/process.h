// Process: address space plus tasks, attached to an App (or to the kernel).
#ifndef SRC_PROC_PROCESS_H_
#define SRC_PROC_PROCESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/units.h"
#include "src/mem/address_space.h"

namespace ice {

class App;
class Task;

class Process {
 public:
  Process(Pid pid, App* app, std::string name, const AddressSpaceLayout& layout);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  App* app() const { return app_; }
  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }

  AddressSpace& space() { return space_; }
  const AddressSpace& space() const { return space_; }

  const std::vector<Task*>& tasks() const { return tasks_; }
  void AddTask(Task* task) { tasks_.push_back(task); }

  // Marks the process dead and its tasks with it. Frame release is the
  // MemoryManager's job (callers invoke mm.Release(space()) alongside).
  void Kill();

 private:
  Pid pid_;
  App* app_;
  std::string name_;
  AddressSpace space_;
  std::vector<Task*> tasks_;
  bool alive_ = true;
};

}  // namespace ice

#endif  // SRC_PROC_PROCESS_H_
