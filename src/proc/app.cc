#include "src/proc/app.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"

namespace ice {

App::App(Uid uid, std::string package) : uid_(uid), package_(std::move(package)) {}

void App::AddProcess(Process* process) {
  ICE_CHECK(process != nullptr);
  processes_.push_back(process);
}

void App::RemoveProcess(Process* process) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), process),
                   processes_.end());
}

}  // namespace ice
