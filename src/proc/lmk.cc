#include "src/proc/lmk.h"

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

Lmk::Lmk(Engine& engine, MemoryManager& mm) : engine_(engine), mm_(mm) {
  engine_.AddTicker(this);
}

Lmk::~Lmk() { engine_.RemoveTicker(this); }

void Lmk::InstallOomHandler() {
  mm_.set_oom_handler([this]() { return KillOne(); });
}

void Lmk::Tick(SimTime now) {
  if (now < next_check_) {
    return;
  }
  next_check_ = now + kCheckPeriod;
  PageCount free = mm_.free_pages() < 0 ? 0 : static_cast<PageCount>(mm_.free_pages());

  // Refault-rate EWMA (the PSI signal), sampled every check period.
  uint64_t refaults = engine_.stats().Get(stat::kRefaults);
  double instant_rate =
      static_cast<double>(refaults - last_refaults_) * (kSecond / kCheckPeriod);
  last_refaults_ = refaults;
  constexpr double kAlpha = 0.06;  // ~1.5 s smoothing at 100 ms samples.
  refault_rate_ewma_ += kAlpha * (instant_rate - refault_rate_ewma_);
  // lmkd-style triggers:
  //  * sustained pressure below the min watermark with no cheaply
  //    reclaimable file cache left;
  //  * the minfree ladder: MemAvailable below the cached-app threshold;
  //  * the zram wall: swap exhausted while the zone is under its low
  //    watermark (anonymous memory can no longer be reclaimed at all);
  //  * the SWAM-style swap signal: the hotness swap policy reports the pool
  //    can no longer absorb anon reclaim (recent capacity reject), so swap
  //    and the killer coordinate instead of racing. Always 0.0 under the
  //    baseline policy, which keeps pre-existing runs bit-for-bit.
  bool direct_pressure =
      free <= mm_.watermarks().min && mm_.available_pages() < mm_.watermarks().low;
  bool minfree_hit = minfree_pages_ > 0 && mm_.available_pages() < minfree_pages_;
  bool zram_wall = !mm_.zram().HasRoom() && free < mm_.watermarks().low;
  bool psi_hit = psi_threshold_ > 0.0 && refault_rate_ewma_ > psi_threshold_;
  bool swap_hit = mm_.SwapPressure() >= 1.0 && free < mm_.watermarks().low;
  if (direct_pressure || minfree_hit || zram_wall || psi_hit || swap_hit) {
    KillOne();
  }
}

bool Lmk::KillOne() {
  SimTime now = engine_.now();
  if (ever_killed_ && now - last_kill_time_ < kMinKillInterval) {
    return false;  // Let the previous kill's memory land first.
  }
  if (!kill_fn_) {
    return false;
  }
  if (!kill_fn_()) {
    return false;
  }
  last_kill_time_ = now;
  ever_killed_ = true;
  ++kills_;
  engine_.stats().Increment(stat::kLmkKills);
  return true;
}

void Lmk::SaveTo(BinaryWriter& w) const {
  w.U64(last_refaults_);
  w.F64(refault_rate_ewma_);
  w.U64(last_kill_time_);
  w.Bool(ever_killed_);
  w.U64(kills_);
  w.U64(next_check_);
}

void Lmk::RestoreFrom(BinaryReader& r) {
  last_refaults_ = r.U64();
  refault_rate_ewma_ = r.F64();
  last_kill_time_ = r.U64();
  ever_killed_ = r.Bool();
  kills_ = r.U64();
  next_check_ = r.U64();
}

}  // namespace ice
