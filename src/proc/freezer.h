// Application-grain freezer (the paper's §4.2.2): freezing always applies to
// every process of an app, because processes of one app depend on each other
// and freezing a single one can wedge the whole application.
#ifndef SRC_PROC_FREEZER_H_
#define SRC_PROC_FREEZER_H_

#include <cstdint>

#include "src/proc/app.h"
#include "src/sim/engine.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class Freezer {
 public:
  explicit Freezer(Engine& engine) : engine_(engine) {}

  // Sends freeze signals to every task of every process of `app`; tasks park
  // at their next safe point (try_to_freeze semantics). No-op if already
  // frozen.
  void FreezeApp(App& app);

  // Thaws every task; they become runnable and re-evaluate their work.
  void ThawApp(App& app);

  uint64_t freeze_count() const { return freeze_count_; }
  uint64_t thaw_count() const { return thaw_count_; }

  // Snapshot support (counters only; per-task freeze state lives in Task).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  Engine& engine_;
  uint64_t freeze_count_ = 0;
  uint64_t thaw_count_ = 0;
};

}  // namespace ice

#endif  // SRC_PROC_FREEZER_H_
