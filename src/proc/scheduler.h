// CFS-like scheduler over a fixed number of identical cores.
//
// Each engine tick is one 1 ms scheduling quantum: the scheduler picks the
// `num_cores` runnable tasks with the lowest virtual runtime and runs each
// for up to one quantum. Virtual runtime advances inversely to the task's
// nice weight, giving the completely-fair behavior the paper's LRU+CFS
// baseline assumes; the UCSG baseline only re-nices tasks.
//
// The scheduler owns every Task. Dead tasks are moved to a graveyard (never
// deallocated mid-simulation) so outstanding wakers stay safe.
#ifndef SRC_PROC_SCHEDULER_H_
#define SRC_PROC_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/units.h"
#include "src/mem/memory_manager.h"
#include "src/proc/task.h"
#include "src/sim/engine.h"

namespace ice {

class Behavior;
class BinaryReader;
class BinaryWriter;

class Scheduler : public Ticker {
 public:
  Scheduler(Engine& engine, MemoryManager& mm, int num_cores);
  ~Scheduler() override;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Engine& engine() { return engine_; }
  MemoryManager& mm() { return mm_; }
  int num_cores() const { return num_cores_; }

  // Creates a task owned by the scheduler. `process` may be null for kernel
  // threads.
  Task* CreateTask(std::string name, Process* process, int nice,
                   std::unique_ptr<Behavior> behavior);

  void Tick(SimTime now) override;

  // Quiescence: no runnable task means every Tick is a no-op (capacity
  // accounting is batch-applied in OnTicksSkipped), except that with a tracer
  // installed the first idle tick must still run to emit the switch-to-idle
  // sched events.
  SimTime NextWorkAt(SimTime now) override;
  // Applies the capacity/per-second accounting the skipped (all-idle) ticks
  // would have performed, bit-for-bit.
  void OnTicksSkipped(SimTime first_skipped, uint64_t count) override;

  // ---- Run queue maintenance (called by Task) -------------------------------
  void OnTaskRunnable(Task* task);
  void OnTaskNotRunnable(Task* task);
  void OnTaskDead(Task* task);

  size_t runnable_count() const { return run_queue_.size(); }

  // ---- CPU accounting --------------------------------------------------------
  // Cumulative busy core-µs and capacity core-µs since construction.
  uint64_t busy_us() const { return busy_us_; }
  uint64_t capacity_us() const { return capacity_us_; }
  double utilization() const {
    return capacity_us_ == 0 ? 0.0 : static_cast<double>(busy_us_) / capacity_us_;
  }
  // Per-simulated-second utilization samples (for Table 1 peak/average).
  const std::vector<double>& utilization_per_second() const { return per_second_; }

  // All live tasks (for experiments/inspection).
  const std::vector<Task*>& live_tasks() const { return live_tasks_; }
  // Total tasks ever created (live + graveyard); the boot-task count the
  // recycler captures right after construction.
  size_t task_count() const { return tasks_.size(); }

  // ---- Snapshot support -----------------------------------------------------
  // Serializes CPU accounting, every task's dynamic state (tasks_ order), the
  // run-queue order as trace ids (std::partial_sort in Tick is unstable, so
  // queue order is part of the deterministic state), and per-core occupancy.
  // RestoreFrom expects the structural replay to have recreated the identical
  // task population (task_seq_ and tasks_.size() are checked).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // Recycling support: destroys every task created after the boot prefix
  // (app tasks — all already dead; the usual mid-simulation graveyard rule
  // does not apply because nothing is running) and rewinds the task-id
  // sequence, so a post-boot snapshot can be overlaid via RestoreFrom. The
  // engine's event wheel must already be cleared: destroyed tasks may hold
  // stale timer handles, and RestoreFrom's CancelTimer relies on those ids
  // resolving to nothing.
  void ResetForRecycle(size_t boot_task_count);

 private:
  Engine& engine_;
  MemoryManager& mm_;
  int num_cores_;

  IntrusiveList<Task, RunQueueTag> run_queue_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> live_tasks_;

  uint64_t busy_us_ = 0;
  uint64_t capacity_us_ = 0;
  uint64_t second_busy_us_ = 0;
  uint64_t second_capacity_us_ = 0;
  std::vector<double> per_second_;
  SimTime next_second_boundary_ = kSecond;

  uint64_t min_vruntime_us_ = 0;

  // Per-tick candidate scratch, reused so the Tick hot path never allocates.
  std::vector<Task*> candidates_;

  // Tracing: the task last seen on each core, so Tick emits one sched_switch
  // per actual occupancy change (scratch vector avoids per-tick allocation).
  // Touched only when the engine has a tracer installed.
  std::vector<const Task*> core_last_;
  std::vector<const Task*> core_occupants_;
  uint64_t task_seq_ = 0;  // Source of stable per-task trace ids (1-based).

  friend class Task;
};

}  // namespace ice

#endif  // SRC_PROC_SCHEDULER_H_
