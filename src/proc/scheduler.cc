#include "src/proc/scheduler.h"

#include <algorithm>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/behavior.h"
#include "src/proc/process.h"
#include "src/trace/trace.h"
#include "src/trace/tracer.h"

namespace ice {

Scheduler::Scheduler(Engine& engine, MemoryManager& mm, int num_cores)
    : engine_(engine), mm_(mm), num_cores_(num_cores) {
  ICE_CHECK_GT(num_cores, 0);
  engine_.AddTicker(this);
}

Scheduler::~Scheduler() {
  engine_.RemoveTicker(this);
  // Unlink every queued task before the unique_ptrs release them (ListNode
  // asserts it is unlinked at destruction).
  run_queue_.Clear();
}

Task* Scheduler::CreateTask(std::string name, Process* process, int nice,
                            std::unique_ptr<Behavior> behavior) {
  auto task = std::make_unique<Task>(*this, std::move(name), process, nice, std::move(behavior));
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  live_tasks_.push_back(raw);
  raw->set_trace_id(++task_seq_);
#ifndef ICE_TRACE_DISABLED
  if (Tracer* tracer = engine_.tracer()) {
    tracer->RegisterTaskName(raw->trace_id(), raw->name());
  }
#endif
  if (process != nullptr) {
    process->AddTask(raw);
  }
  // New tasks start runnable at the current fairness floor.
  raw->SetVruntime(min_vruntime_us_);
  run_queue_.PushBack(raw);
  return raw;
}

void Scheduler::OnTaskRunnable(Task* task) {
  using RunQueue = IntrusiveList<Task, RunQueueTag>;
  ICE_CHECK(!RunQueue::IsLinked(task));
  // Waking tasks are placed at the fairness floor so long sleepers cannot
  // monopolize the CPU (min_vruntime normalization).
  if (task->vruntime_us() < min_vruntime_us_) {
    task->SetVruntime(min_vruntime_us_);
  }
  run_queue_.PushBack(task);
}

void Scheduler::OnTaskNotRunnable(Task* task) {
  using RunQueue = IntrusiveList<Task, RunQueueTag>;
  if (RunQueue::IsLinked(task)) {
    run_queue_.Remove(task);
  }
}

void Scheduler::OnTaskDead(Task* task) {
  live_tasks_.erase(std::remove(live_tasks_.begin(), live_tasks_.end(), task),
                    live_tasks_.end());
}

SimTime Scheduler::NextWorkAt(SimTime now) {
  if (!run_queue_.empty()) {
    return now;
  }
#ifndef ICE_TRACE_DISABLED
  if (engine_.tracer() != nullptr) {
    // A core still shows a (stale) occupant: the next Tick emits its
    // switch-to-idle sched event, so that tick cannot be skipped.
    for (const Task* t : core_last_) {
      if (t != nullptr) {
        return now;
      }
    }
  }
#endif
  return kTickerIdle;
}

void Scheduler::OnTicksSkipped(SimTime first_skipped, uint64_t count) {
  const SimDuration quantum = Engine::kTick;
  const uint64_t cap_per_tick = static_cast<uint64_t>(num_cores_) * quantum;
  SimTime t = first_skipped;
  uint64_t remaining = count;
  while (remaining > 0) {
    // First skipped tick at which the per-second sampler would have fired
    // (Tick samples when t + quantum >= next_second_boundary_).
    SimTime threshold = next_second_boundary_ - quantum;
    uint64_t until_sample = threshold > t ? (threshold - t + quantum - 1) / quantum : 0;
    uint64_t chunk = std::min(remaining, until_sample + 1);
    capacity_us_ += chunk * cap_per_tick;
    second_capacity_us_ += chunk * cap_per_tick;
    t += chunk * quantum;
    remaining -= chunk;
    if (chunk == until_sample + 1) {
      per_second_.push_back(second_capacity_us_ == 0
                                ? 0.0
                                : static_cast<double>(second_busy_us_) / second_capacity_us_);
      second_busy_us_ = 0;
      second_capacity_us_ = 0;
      next_second_boundary_ += kSecond;
    }
  }
}

void Scheduler::SaveTo(BinaryWriter& w) const {
  w.U64(busy_us_);
  w.U64(capacity_us_);
  w.U64(second_busy_us_);
  w.U64(second_capacity_us_);
  w.U64(next_second_boundary_);
  w.U64(min_vruntime_us_);
  w.U64(task_seq_);
  w.U64(per_second_.size());
  for (double v : per_second_) {
    w.F64(v);
  }
  w.U64(tasks_.size());
  for (const auto& t : tasks_) {
    t->SaveTo(w);
  }
  // Run-queue ORDER matters: Tick's std::partial_sort is unstable, so the
  // queue ordering at the snapshot point is part of the deterministic state.
  w.U64(run_queue_.size());
  for (const Task* t : const_cast<IntrusiveList<Task, RunQueueTag>&>(run_queue_)) {
    w.U64(t->trace_id());
  }
  w.U64(core_last_.size());
  for (const Task* t : core_last_) {
    w.U64(t != nullptr ? t->trace_id() : 0);
  }
}

void Scheduler::RestoreFrom(BinaryReader& r) {
  busy_us_ = r.U64();
  capacity_us_ = r.U64();
  second_busy_us_ = r.U64();
  second_capacity_us_ = r.U64();
  next_second_boundary_ = r.U64();
  min_vruntime_us_ = r.U64();
  uint64_t task_seq = r.U64();
  ICE_CHECK_EQ(task_seq, task_seq_) << "structural replay diverged (task count)";
  per_second_.clear();
  uint64_t samples = r.U64();
  per_second_.reserve(samples);
  for (uint64_t i = 0; i < samples; ++i) {
    per_second_.push_back(r.F64());
  }
  uint64_t task_count = r.U64();
  ICE_CHECK_EQ(task_count, tasks_.size()) << "structural replay diverged (tasks)";
  // Empty the run queue before tasks set their states directly; membership is
  // rebuilt below in the serialized order.
  run_queue_.Clear();
  for (auto& t : tasks_) {
    t->RestoreFrom(r);
  }
  uint64_t queued = r.U64();
  for (uint64_t i = 0; i < queued; ++i) {
    uint64_t trace_id = r.U64();
    ICE_CHECK_GE(trace_id, 1u);
    ICE_CHECK_LE(trace_id, tasks_.size());
    Task* t = tasks_[trace_id - 1].get();
    ICE_CHECK(t->state() == TaskState::kRunnable);
    run_queue_.PushBack(t);
  }
  core_last_.clear();
  uint64_t cores = r.U64();
  for (uint64_t i = 0; i < cores; ++i) {
    uint64_t trace_id = r.U64();
    ICE_CHECK_LE(trace_id, tasks_.size());
    core_last_.push_back(trace_id == 0 ? nullptr : tasks_[trace_id - 1].get());
  }
}

void Scheduler::ResetForRecycle(size_t boot_task_count) {
  ICE_CHECK_LE(boot_task_count, tasks_.size());
  // Unlink everything first; ListNode asserts unlinked at destruction, and
  // RestoreFrom rebuilds membership from the serialized order anyway.
  run_queue_.Clear();
  for (size_t i = boot_task_count; i < tasks_.size(); ++i) {
    ICE_CHECK(tasks_[i]->state() == TaskState::kDead)
        << tasks_[i]->name() << ": recycle with a live post-boot task";
  }
  tasks_.resize(boot_task_count);
  live_tasks_.clear();
  for (auto& t : tasks_) {
    ICE_CHECK(t->state() != TaskState::kDead) << t->name() << ": dead boot task";
    live_tasks_.push_back(t.get());
  }
  task_seq_ = boot_task_count;
}

void Scheduler::Tick(SimTime now) {
  const SimDuration quantum = Engine::kTick;
  capacity_us_ += static_cast<uint64_t>(num_cores_) * quantum;
  second_capacity_us_ += static_cast<uint64_t>(num_cores_) * quantum;

#ifndef ICE_TRACE_DISABLED
  Tracer* tracer = engine_.tracer();
  if (tracer != nullptr) {
    core_occupants_.assign(static_cast<size_t>(num_cores_), nullptr);
  }
#endif

  if (!run_queue_.empty()) {
    // Select up to num_cores tasks. Tasks repaying debt (mid non-preemptive
    // section) keep their cores; the rest are picked by minimum vruntime.
    candidates_.clear();
    candidates_.reserve(run_queue_.size());
    uint64_t min_vr = UINT64_MAX;
    for (Task* t : run_queue_) {
      candidates_.push_back(t);
      min_vr = std::min(min_vr, t->vruntime_us());
    }
    if (min_vr != UINT64_MAX) {
      min_vruntime_us_ = std::max(min_vruntime_us_, min_vr);
    }
    size_t slots = std::min(candidates_.size(), static_cast<size_t>(num_cores_));
    std::partial_sort(candidates_.begin(), candidates_.begin() + slots, candidates_.end(),
                      [](const Task* a, const Task* b) {
                        bool a_debt = a->debt_us() > 0;
                        bool b_debt = b->debt_us() > 0;
                        if (a_debt != b_debt) {
                          return a_debt;
                        }
                        return a->vruntime_us() < b->vruntime_us();
                      });

    for (size_t i = 0; i < slots; ++i) {
      Task* task = candidates_[i];
      if (task->state() != TaskState::kRunnable) {
        continue;  // Frozen/killed by an earlier task this tick.
      }
#ifndef ICE_TRACE_DISABLED
      if (tracer != nullptr) {
        core_occupants_[i] = task;
      }
#endif
      SimDuration budget = quantum;
      SimDuration busy = 0;

      if (task->debt_us() > 0) {
        SimDuration pay = std::min(task->debt_us(), budget);
        task->PayDebt(pay);
        budget -= pay;
        busy += pay;  // CPU time & vruntime were charged when the debt arose.
      }

      if (budget > 0 && task->debt_us() == 0 && task->state() == TaskState::kRunnable) {
        TaskContext ctx(*task, *this, budget);
        task->set_on_cpu(true);
        task->behavior().Run(ctx);
        task->set_on_cpu(false);
        task->CommitPendingFreeze();
        SimDuration used = ctx.used();
        task->ChargeCpu(used);
        task->AddVruntime(used);
        if (used > budget) {
          task->AddDebt(used - budget);
          busy += budget;
        } else {
          busy += used;
        }
      }

      busy_us_ += busy;
      second_busy_us_ += busy;
    }
  }

#ifndef ICE_TRACE_DISABLED
  // One sched_switch per core whose occupant changed this quantum (trace id
  // 0 = idle). Graveyarded tasks are never deallocated mid-simulation, so
  // the stale pointers in core_last_ are safe to compare against.
  if (tracer != nullptr) {
    if (core_last_.size() != static_cast<size_t>(num_cores_)) {
      core_last_.assign(static_cast<size_t>(num_cores_), nullptr);
    }
    for (int i = 0; i < num_cores_; ++i) {
      const Task* occ = core_occupants_[i];
      if (occ == core_last_[i]) {
        continue;
      }
      core_last_[i] = occ;
      int pid = (occ != nullptr && occ->process() != nullptr) ? occ->process()->pid() : -1;
      ICE_TRACE(engine_, TraceEventType::kSchedSwitch,
                {.pid = pid, .core = i, .arg0 = occ != nullptr ? occ->trace_id() : 0});
    }
  }
#endif

  // Per-second utilization sampling for Table-1 style peak/average figures.
  if (now + quantum >= next_second_boundary_) {
    per_second_.push_back(second_capacity_us_ == 0
                              ? 0.0
                              : static_cast<double>(second_busy_us_) / second_capacity_us_);
    second_busy_us_ = 0;
    second_capacity_us_ = 0;
    next_second_boundary_ += kSecond;
  }
}

}  // namespace ice
