#include "src/proc/freezer.h"

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/process.h"
#include "src/proc/task.h"
#include "src/trace/trace.h"

namespace ice {

void Freezer::FreezeApp(App& app) {
  if (app.frozen()) {
    return;
  }
  app.set_frozen(true);
  ++freeze_count_;
  engine_.stats().Increment(stat::kFreezes);
  ICE_TRACE(engine_, TraceEventType::kFreeze, {.uid = app.uid()});
  for (Process* process : app.processes()) {
    for (Task* task : process->tasks()) {
      task->RequestFreeze();
    }
  }
}

void Freezer::ThawApp(App& app) {
  if (!app.frozen()) {
    return;
  }
  app.set_frozen(false);
  ++thaw_count_;
  engine_.stats().Increment(stat::kThaws);
  ICE_TRACE(engine_, TraceEventType::kThaw, {.uid = app.uid()});
  for (Process* process : app.processes()) {
    for (Task* task : process->tasks()) {
      task->ThawNow();
    }
  }
}

void Freezer::SaveTo(BinaryWriter& w) const {
  w.U64(freeze_count_);
  w.U64(thaw_count_);
}

void Freezer::RestoreFrom(BinaryReader& r) {
  freeze_count_ = r.U64();
  thaw_count_ = r.U64();
}

}  // namespace ice
