#include "src/proc/freezer.h"

#include "src/base/log.h"
#include "src/proc/process.h"
#include "src/proc/task.h"
#include "src/trace/trace.h"

namespace ice {

void Freezer::FreezeApp(App& app) {
  if (app.frozen()) {
    return;
  }
  app.set_frozen(true);
  ++freeze_count_;
  engine_.stats().Increment(stat::kFreezes);
  ICE_TRACE(engine_, TraceEventType::kFreeze, {.uid = app.uid()});
  for (Process* process : app.processes()) {
    for (Task* task : process->tasks()) {
      task->RequestFreeze();
    }
  }
}

void Freezer::ThawApp(App& app) {
  if (!app.frozen()) {
    return;
  }
  app.set_frozen(false);
  ++thaw_count_;
  engine_.stats().Increment(stat::kThaws);
  ICE_TRACE(engine_, TraceEventType::kThaw, {.uid = app.uid()});
  for (Process* process : app.processes()) {
    for (Task* task : process->tasks()) {
      task->ThawNow();
    }
  }
}

}  // namespace ice
