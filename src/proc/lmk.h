// Low Memory Killer: Android's last line of defense. When reclaim cannot
// keep the device above the min watermark, the cached app with the highest
// oom_score_adj is killed, releasing all of its memory.
//
// The actual victim selection and teardown live in the ActivityManager
// (which owns app lifecycles); Lmk provides the triggering policy: an OOM
// callback from direct reclaim plus a periodic low-memory check, throttled
// so one kill can take effect before the next fires.
#ifndef SRC_PROC_LMK_H_
#define SRC_PROC_LMK_H_

#include <functional>

#include "src/mem/memory_manager.h"
#include "src/sim/engine.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class Lmk : public Ticker {
 public:
  // `kill_one` must kill the best victim and return true, or return false
  // when there is nothing left to kill.
  using KillFn = std::function<bool()>;

  Lmk(Engine& engine, MemoryManager& mm);
  ~Lmk() override;

  void set_kill_fn(KillFn fn) { kill_fn_ = std::move(fn); }

  // Installs this LMK as the memory manager's OOM handler.
  void InstallOomHandler();

  void Tick(SimTime now) override;

  // Tick is a no-op until the next periodic check, so idle time up to it can
  // be skipped.
  SimTime NextWorkAt(SimTime now) override { return next_check_ > now ? next_check_ : now; }

  uint64_t kills() const { return kills_; }

  // lmkd minfree analog: cached apps die when MemAvailable falls below this
  // (0 disables; the experiment harness sets the device's ladder value for
  // fully-cached adj levels, ~110 MB).
  void set_minfree_pages(PageCount pages) { minfree_pages_ = pages; }

  // PSI analog: modern lmkd kills on sustained memory-stall pressure. We
  // approximate stall pressure with the system-wide refault rate; a cached
  // app dies when the smoothed rate exceeds this threshold (0 disables).
  void set_psi_refaults_per_sec(double rate) { psi_threshold_ = rate; }
  double psi_refault_rate() const { return refault_rate_ewma_; }

  // Snapshot support (thresholds are reconfigured by the harness, not saved).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  bool KillOne();

  Engine& engine_;
  MemoryManager& mm_;
  KillFn kill_fn_;
  PageCount minfree_pages_ = 0;
  double psi_threshold_ = 0.0;
  uint64_t last_refaults_ = 0;
  double refault_rate_ewma_ = 0.0;
  SimTime last_kill_time_ = 0;
  bool ever_killed_ = false;
  uint64_t kills_ = 0;

  static constexpr SimDuration kMinKillInterval = Ms(500);
  static constexpr SimDuration kCheckPeriod = Ms(100);
  SimTime next_check_ = 0;
};

}  // namespace ice

#endif  // SRC_PROC_LMK_H_
