#include "src/proc/behavior.h"

#include <algorithm>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace ice {

TaskContext::TaskContext(Task& task, Scheduler& scheduler, SimDuration budget)
    : task_(task), scheduler_(scheduler), budget_(budget) {}

MemoryManager& TaskContext::mm() { return scheduler_.mm(); }
// Behavior randomness (service jitter, background activity, launch work) is
// environment noise: it draws from the noise stream so the seeded stream is
// untouched until the usage trace starts (the warm-boot template contract).
// The noise RNG is serialized with the engine, so restored runs continue the
// stream bit-exact.
Rng& TaskContext::rng() { return scheduler_.engine().noise_rng(); }
SimTime TaskContext::now() const { return scheduler_.engine().now(); }

bool TaskContext::Compute(SimDuration us) {
  used_ += us;
  return !ShouldStop();
}

bool TaskContext::Touch(AddressSpace& space, uint32_t vpn, bool write) {
  AccessOutcome outcome = mm().Access(space, vpn, write, task_.io_waker());
  used_ += outcome.cpu_us;
  if (outcome.blocked) {
    blocked_ = true;
    task_.BlockOnIo();
    return false;
  }
  return !ShouldStop();
}

void TaskContext::SleepUntilWoken() {
  slept_ = true;
  task_.SleepUntilWoken();
}

void TaskContext::SleepFor(SimDuration delay) {
  slept_ = true;
  task_.SleepFor(delay);
}

bool TaskContext::ShouldStop() const {
  return blocked_ || slept_ || used_ >= budget_ || task_.freeze_pending() ||
         task_.state() != TaskState::kRunnable;
}

// ---- WorkQueueBehavior -------------------------------------------------------

void WorkQueueBehavior::Push(WorkItem item) {
  queue_.push_back(std::move(item));
  if (task_ != nullptr && task_->state() == TaskState::kSleeping) {
    task_->Wake();
  }
}

void WorkQueueBehavior::Run(TaskContext& ctx) {
  while (!ctx.ShouldStop()) {
    if (queue_.empty()) {
      ctx.SleepUntilWoken();
      return;
    }
    WorkItem& item = queue_.front();

    // Touch the item's pages first (rendering reads its inputs), then burn
    // the compute. Both phases are resumable.
    while (item.next_touch < item.touch_vpns.size()) {
      ICE_CHECK(item.space != nullptr);
      uint32_t vpn = item.touch_vpns[item.next_touch];
      ++item.next_touch;
      ctx.Touch(*item.space, vpn, item.write);
      if (ctx.ShouldStop()) {
        return;
      }
    }

    if (item.compute_us > 0) {
      SimDuration rem = ctx.budget() > ctx.used() ? ctx.budget() - ctx.used() : 0;
      SimDuration chunk = std::min(item.compute_us, std::max<SimDuration>(rem, 1));
      ctx.Compute(chunk);
      item.compute_us -= chunk;
      if (item.compute_us > 0) {
        if (ctx.ShouldStop()) {
          return;
        }
        continue;
      }
    }

    std::function<void()> done = std::move(item.on_complete);
    queue_.pop_front();
    ++completed_;
    if (done) {
      done();
    }
  }
}

void WorkQueueBehavior::SaveTo(BinaryWriter& w) const {
  ICE_CHECK(queue_.empty()) << "snapshot with queued work";
  w.U64(completed_);
}

void WorkQueueBehavior::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(queue_.empty());
  completed_ = r.U64();
}

// ---- KswapdBehavior ----------------------------------------------------------

void KswapdBehavior::Run(TaskContext& ctx) {
  MemoryManager& mm = ctx.mm();
  while (!ctx.ShouldStop()) {
    if (!mm.KswapdShouldRun()) {
      ctx.SleepUntilWoken();
      return;
    }
    ReclaimResult r = mm.KswapdBatch();
    // Even a fruitless scan costs something; avoids a zero-cost spin.
    ctx.Compute(std::max<SimDuration>(r.cpu_us, Us(5)));
  }
}

// ---- PeriodicLoadBehavior ------------------------------------------------------

void PeriodicLoadBehavior::Run(TaskContext& ctx) {
  if (!started_) {
    started_ = true;
    // Random phase so a fleet of periodic tasks does not beat in lockstep.
    SimDuration phase = ctx.rng().Below(static_cast<uint32_t>(std::max<SimDuration>(
        params_.period, 1)));
    ctx.SleepFor(std::max<SimDuration>(phase, 1));
    return;
  }
  while (!ctx.ShouldStop()) {
    if (remaining_compute_ == 0 && remaining_touches_ == 0) {
      remaining_compute_ = params_.compute_us;
      remaining_touches_ = params_.touches;
      if (remaining_compute_ == 0 && remaining_touches_ == 0) {
        ctx.SleepFor(params_.period);
        return;
      }
    }
    while (remaining_touches_ > 0) {
      ICE_CHECK(params_.space != nullptr) << "touches configured without a space";
      uint32_t vpn = ctx.rng().Below(static_cast<uint32_t>(params_.space->total_pages()));
      --remaining_touches_;
      ctx.Touch(*params_.space, vpn, /*write=*/false);
      if (ctx.ShouldStop()) {
        return;
      }
    }
    while (remaining_compute_ > 0) {
      SimDuration rem = ctx.budget() > ctx.used() ? ctx.budget() - ctx.used() : 0;
      SimDuration chunk = std::min(remaining_compute_, std::max<SimDuration>(rem, 1));
      ctx.Compute(chunk);
      remaining_compute_ -= chunk;
      if (ctx.ShouldStop() && remaining_compute_ > 0) {
        return;
      }
    }
    // Burst complete: sleep out the rest of the (jittered) period, so the
    // configured duty cycle is met regardless of burst length.
    double jitter = 1.0 + params_.jitter * (2.0 * ctx.rng().NextDouble() - 1.0);
    double sleep_target =
        static_cast<double>(params_.period) * jitter - static_cast<double>(params_.compute_us);
    ctx.SleepFor(static_cast<SimDuration>(std::max(1.0, sleep_target)));
    return;
  }
}

void PeriodicLoadBehavior::SaveTo(BinaryWriter& w) const {
  w.U64(remaining_compute_);
  w.U32(remaining_touches_);
  w.Bool(started_);
}

void PeriodicLoadBehavior::RestoreFrom(BinaryReader& r) {
  remaining_compute_ = r.U64();
  remaining_touches_ = r.U32();
  started_ = r.Bool();
}

}  // namespace ice
