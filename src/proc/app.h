// Application (Android UID granularity): a set of processes sharing one
// package, one oom_score_adj, and — under ICE — one freezing fate.
#ifndef SRC_PROC_APP_H_
#define SRC_PROC_APP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace ice {

class Process;

enum class AppState : uint8_t {
  kNotRunning,
  kForeground,
  // User-perceptible background work (music, download, call): whitelisted.
  kPerceptible,
  kCached,
};

// Android oom_score_adj conventions used by the paper (§4.4): foreground 0,
// perceptible 200, cached apps higher. ICE's whitelist is "adj <= 200".
inline constexpr int kAdjForeground = 0;
inline constexpr int kAdjPerceptible = 200;
inline constexpr int kAdjCachedBase = 900;

class App {
 public:
  App(Uid uid, std::string package);

  App(const App&) = delete;
  App& operator=(const App&) = delete;

  Uid uid() const { return uid_; }
  const std::string& package() const { return package_; }

  AppState state() const { return state_; }
  void set_state(AppState state) { state_ = state; }

  int oom_adj() const { return oom_adj_; }
  void set_oom_adj(int adj) { oom_adj_ = adj; }

  bool frozen() const { return frozen_; }
  void set_frozen(bool frozen) { frozen_ = frozen; }

  bool running() const { return !processes_.empty(); }

  const std::vector<Process*>& processes() const { return processes_; }
  void AddProcess(Process* process);
  void RemoveProcess(Process* process);

  // Cumulative CPU consumed by this app's tasks (maintained by Task).
  uint64_t cpu_time_us = 0;

  // Timestamp of the last launch / foreground entry; used by LMK victim
  // selection (oldest cached app dies first among equals).
  SimTime last_foreground_time = 0;

 private:
  Uid uid_;
  std::string package_;
  AppState state_ = AppState::kNotRunning;
  int oom_adj_ = kAdjCachedBase;
  bool frozen_ = false;
  std::vector<Process*> processes_;
};

}  // namespace ice

#endif  // SRC_PROC_APP_H_
