// The simulation engine: a hybrid of a 1 ms tick loop (CPU scheduling quanta)
// and a µs-resolution discrete-event queue (timers, I/O completions, vsync).
//
// Per iteration the engine (1) fires every event due at or before the current
// time, then (2) calls each registered Ticker once. Tickers model components
// that do work every scheduling quantum — chiefly the CPU scheduler. The
// engine also owns the experiment-wide Rng and StatsRegistry so determinism
// and accounting have a single root.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/units.h"
#include "src/sim/event_queue.h"

namespace ice {

class Tracer;

class Ticker {
 public:
  virtual ~Ticker() = default;
  // Called once per engine tick with the current simulated time.
  virtual void Tick(SimTime now) = 0;
};

class Engine {
 public:
  // Scheduling quantum; all Tickers advance in steps of this duration.
  static constexpr SimDuration kTick = kMillisecond;

  explicit Engine(uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }
  uint64_t ticks_elapsed() const { return ticks_; }

  Rng& rng() { return rng_; }
  StatsRegistry& stats() { return stats_; }

  // Optional trace sink (owned by the experiment). Null — the default —
  // means tracing is off; ICE_TRACE call sites pay one branch and nothing
  // else. The tracer must never influence simulation behavior: a traced run
  // and an untraced run of the same seed are identical.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  EventId ScheduleAt(SimTime when, std::function<void()> fn);
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);
  bool Cancel(EventId id);

  // Tickers are called in registration order. Registration during a tick
  // takes effect from the next tick.
  void AddTicker(Ticker* ticker);
  void RemoveTicker(Ticker* ticker);

  // Advances simulation until `now() >= until`.
  void RunUntil(SimTime until);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

 private:
  void RunOneTick();

  SimTime now_ = 0;
  uint64_t ticks_ = 0;
  Tracer* tracer_ = nullptr;
  Rng rng_;
  StatsRegistry stats_;
  EventQueue events_;
  std::vector<Ticker*> tickers_;
  std::vector<Ticker*> pending_tickers_;
  bool in_tick_ = false;
  bool tickers_dirty_ = false;  // A removal happened during iteration.
};

}  // namespace ice

#endif  // SRC_SIM_ENGINE_H_
