// The simulation engine: a hybrid of a 1 ms tick loop (CPU scheduling quanta)
// and a µs-resolution discrete-event queue (timers, I/O completions, vsync).
//
// Per iteration the engine (1) fires every event due at or before the current
// time, then (2) calls each registered Ticker once. Tickers model components
// that do work every scheduling quantum — chiefly the CPU scheduler. The
// engine also owns the experiment-wide Rng and StatsRegistry so determinism
// and accounting have a single root.
//
// When every Ticker reports quiescence via NextWorkAt() and no event is due,
// the engine jumps time forward in whole ticks instead of spinning 1 ms at a
// time ("idle tick-skipping"). Skipped ticks are observationally identical to
// executed ones: ticks_elapsed() counts them, and tickers that accumulate
// per-tick state batch-apply it in OnTicksSkipped().
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/units.h"
#include "src/sim/event_queue.h"

namespace ice {

class BinaryReader;
class BinaryWriter;
class Tracer;

// Sentinel NextWorkAt() result: this ticker has no self-initiated work at any
// future time (it only reacts to events or other components).
inline constexpr SimTime kTickerIdle = UINT64_MAX;

class Ticker {
 public:
  virtual ~Ticker() = default;
  // Called once per engine tick with the current simulated time.
  virtual void Tick(SimTime now) = 0;

  // Earliest time at or after `now` at which this ticker has work to do, or
  // kTickerIdle if none. The engine may skip Tick() calls strictly before the
  // reported time, so implementations must never under-report: returning T
  // asserts that every Tick(t) with t < T would have been a no-op (stats
  // updates excepted if batch-applied via OnTicksSkipped). The conservative
  // default — "work every tick" — disables skipping for this ticker.
  virtual SimTime NextWorkAt(SimTime now) { return now; }

  // Notification that the engine skipped `count` ticks that would have
  // occurred at times first, first + kTick, ... Tickers that accumulate
  // per-tick state (e.g. scheduler capacity accounting) apply the batch
  // equivalent here so skipped and executed runs produce identical stats.
  virtual void OnTicksSkipped(SimTime first_skipped, uint64_t count) {
    (void)first_skipped;
    (void)count;
  }
};

class Engine {
 public:
  // Scheduling quantum; all Tickers advance in steps of this duration.
  static constexpr SimDuration kTick = kMillisecond;

  explicit Engine(uint64_t seed = 1);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }
  uint64_t ticks_elapsed() const { return ticks_; }

  Rng& rng() { return rng_; }
  // Config-independent auxiliary stream for boot-time and environment noise
  // (service jitter, storage latency, contention). Keeping these draws off
  // the seeded stream means experiment construction consumes zero draws from
  // rng(): a device's seed feeds only its usage trace, so a post-boot
  // snapshot plus a reseed of rng() reproduces a cold boot exactly (the fleet
  // warm-boot template contract).
  Rng& noise_rng() { return noise_rng_; }
  StatsRegistry& stats() { return stats_; }

  // Optional trace sink (owned by the experiment). Null — the default —
  // means tracing is off; ICE_TRACE call sites pay one branch and nothing
  // else. The tracer must never influence simulation behavior: a traced run
  // and an untraced run of the same seed are identical.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  EventId ScheduleAt(SimTime when, EventFn fn);
  EventId ScheduleAfter(SimDuration delay, EventFn fn);
  bool Cancel(EventId id);

  // ---- Snapshot/restore -----------------------------------------------------
  // Components re-arm their own timers on restore: they serialize each
  // pending event's (when, seq) via PendingEvent() and re-create it with
  // ScheduleAtWithSeq(), which reproduces the original firing order without
  // the wheel ever serializing callables.
  EventId ScheduleAtWithSeq(SimTime when, uint64_t seq, EventFn fn);
  std::optional<std::pair<SimTime, uint64_t>> PendingEvent(EventId id) const {
    return events_.Pending(id);
  }
  // Live events in the wheel. Snapshot sanity: every one of these must be
  // owned (and re-armed on restore) by some component's serialization.
  size_t pending_events() const { return events_.size(); }

  // Clock, tick counters, event-sequence cursor, RNGs, and stats registry.
  // RestoreFrom requires the event queue to be empty (timers are re-armed by
  // their owners afterwards) and repositions the wheel cursor to now().
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // Recycling support: drop every pending event (keeping the wheel's node
  // pool) and rewind the clock so a subsequent RestoreFrom can overlay a
  // snapshot onto this live engine. Registered tickers are kept — the
  // components that own them persist across a recycle.
  void ResetForRecycle();

  // Tickers are called in registration order. Registration during a tick
  // takes effect from the next tick.
  void AddTicker(Ticker* ticker);
  void RemoveTicker(Ticker* ticker);

  // Advances simulation until `now() >= until`.
  void RunUntil(SimTime until);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Number of idle ticks elided by tick-skipping so far (each still counted
  // in ticks_elapsed()). Exposed for tests and benchmarks.
  uint64_t ticks_skipped() const { return ticks_skipped_; }

 private:
  void RunOneTick();
  // After a tick at now_, jump now_ forward to the next tick with work
  // (bounded by `until`) if every ticker and the event queue are quiescent.
  void MaybeSkipIdleTicks(SimTime until);

  SimTime now_ = 0;
  uint64_t ticks_ = 0;
  uint64_t ticks_skipped_ = 0;
  Tracer* tracer_ = nullptr;
  Rng rng_;
  Rng noise_rng_;
  StatsRegistry stats_;
  EventQueue events_;
  std::vector<Ticker*> tickers_;
  std::vector<Ticker*> pending_tickers_;
  bool in_tick_ = false;
  bool tickers_dirty_ = false;  // A removal happened during iteration.
};

}  // namespace ice

#endif  // SRC_SIM_ENGINE_H_
