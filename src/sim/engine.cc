#include "src/sim/engine.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"

namespace ice {

Engine::Engine(uint64_t seed) : rng_(seed) {}

EventId Engine::ScheduleAt(SimTime when, std::function<void()> fn) {
  ICE_CHECK_GE(when, now_) << "scheduling into the past";
  return events_.Schedule(when, std::move(fn));
}

EventId Engine::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return events_.Schedule(now_ + delay, std::move(fn));
}

bool Engine::Cancel(EventId id) { return events_.Cancel(id); }

void Engine::AddTicker(Ticker* ticker) {
  ICE_CHECK(ticker != nullptr);
  if (in_tick_) {
    pending_tickers_.push_back(ticker);
  } else {
    tickers_.push_back(ticker);
  }
}

void Engine::RemoveTicker(Ticker* ticker) {
  auto it = std::find(tickers_.begin(), tickers_.end(), ticker);
  if (it != tickers_.end()) {
    if (in_tick_) {
      *it = nullptr;  // Compacted after the iteration completes.
      tickers_dirty_ = true;
    } else {
      tickers_.erase(it);
    }
    return;
  }
  auto pit = std::find(pending_tickers_.begin(), pending_tickers_.end(), ticker);
  if (pit != pending_tickers_.end()) {
    pending_tickers_.erase(pit);
  }
}

void Engine::RunOneTick() {
  events_.RunDue(now_);

  in_tick_ = true;
  for (Ticker* t : tickers_) {
    if (t != nullptr) {
      t->Tick(now_);
    }
  }
  in_tick_ = false;

  if (tickers_dirty_) {
    tickers_.erase(std::remove(tickers_.begin(), tickers_.end(), nullptr), tickers_.end());
    tickers_dirty_ = false;
  }
  if (!pending_tickers_.empty()) {
    tickers_.insert(tickers_.end(), pending_tickers_.begin(), pending_tickers_.end());
    pending_tickers_.clear();
  }

  now_ += kTick;
  ++ticks_;
}

void Engine::RunUntil(SimTime until) {
  while (now_ < until) {
    RunOneTick();
  }
  // Deliver events that land exactly on the boundary.
  events_.RunDue(now_);
}

}  // namespace ice
