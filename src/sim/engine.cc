#include "src/sim/engine.h"

#include <algorithm>
#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

namespace {
// Seed of the noise stream. A fixed constant, deliberately not derived from
// the experiment seed: every boot draws the same environment noise, so the
// seeded stream stays untouched until the workload starts consuming it.
constexpr uint64_t kNoiseStreamSeed = 0x1cebeefc0ffee123ULL;
}  // namespace

Engine::Engine(uint64_t seed) : rng_(seed), noise_rng_(kNoiseStreamSeed) {}

EventId Engine::ScheduleAt(SimTime when, EventFn fn) {
  ICE_CHECK_GE(when, now_) << "scheduling into the past";
  return events_.Schedule(when, std::move(fn));
}

EventId Engine::ScheduleAfter(SimDuration delay, EventFn fn) {
  return events_.Schedule(now_ + delay, std::move(fn));
}

bool Engine::Cancel(EventId id) { return events_.Cancel(id); }

EventId Engine::ScheduleAtWithSeq(SimTime when, uint64_t seq, EventFn fn) {
  ICE_CHECK_GE(when, now_) << "scheduling into the past";
  return events_.ScheduleWithSeq(when, seq, std::move(fn));
}

void Engine::SaveTo(BinaryWriter& w) const {
  w.U64(now_);
  w.U64(ticks_);
  w.U64(ticks_skipped_);
  w.U64(events_.next_seq());
  rng_.SaveTo(w);
  noise_rng_.SaveTo(w);
  stats_.SaveTo(w);
}

void Engine::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(events_.empty()) << "engine restore with timers still scheduled";
  now_ = r.U64();
  ticks_ = r.U64();
  ticks_skipped_ = r.U64();
  events_.set_next_seq(r.U64());
  events_.RestoreClock(now_);
  rng_.RestoreFrom(r);
  noise_rng_.RestoreFrom(r);
  stats_.RestoreFrom(r);
}

void Engine::ResetForRecycle() {
  events_.Clear();
  now_ = 0;
  ticks_ = 0;
  ticks_skipped_ = 0;
}

void Engine::AddTicker(Ticker* ticker) {
  ICE_CHECK(ticker != nullptr);
  if (in_tick_) {
    pending_tickers_.push_back(ticker);
  } else {
    tickers_.push_back(ticker);
  }
}

void Engine::RemoveTicker(Ticker* ticker) {
  auto it = std::find(tickers_.begin(), tickers_.end(), ticker);
  if (it != tickers_.end()) {
    if (in_tick_) {
      *it = nullptr;  // Compacted after the iteration completes.
      tickers_dirty_ = true;
    } else {
      tickers_.erase(it);
    }
    return;
  }
  auto pit = std::find(pending_tickers_.begin(), pending_tickers_.end(), ticker);
  if (pit != pending_tickers_.end()) {
    pending_tickers_.erase(pit);
  }
}

void Engine::RunOneTick() {
  events_.RunDue(now_);

  in_tick_ = true;
  for (Ticker* t : tickers_) {
    if (t != nullptr) {
      t->Tick(now_);
    }
  }
  in_tick_ = false;

  if (tickers_dirty_) {
    tickers_.erase(std::remove(tickers_.begin(), tickers_.end(), nullptr), tickers_.end());
    tickers_dirty_ = false;
  }
  if (!pending_tickers_.empty()) {
    tickers_.insert(tickers_.end(), pending_tickers_.begin(), pending_tickers_.end());
    pending_tickers_.clear();
  }

  now_ += kTick;
  ++ticks_;
}

void Engine::MaybeSkipIdleTicks(SimTime until) {
  // Rounds `t` up to the next tick boundary (ticks land at now_ + k * kTick).
  // Callers guard t != kTickerIdle so the arithmetic cannot overflow.
  auto ceil_to_tick = [this](SimTime t) -> SimTime {
    if (t <= now_) {
      return now_;
    }
    return now_ + ((t - now_ + kTick - 1) / kTick) * kTick;
  };

  SimTime target = ceil_to_tick(until);
  for (Ticker* t : tickers_) {
    SimTime w = t->NextWorkAt(now_);
    if (w == kTickerIdle) {
      continue;
    }
    SimTime tick_of_w = ceil_to_tick(w);
    if (tick_of_w < target) {
      target = tick_of_w;
    }
    if (target == now_) {
      return;  // Some ticker has work right now; nothing to skip.
    }
  }
  if (!events_.empty()) {
    SimTime tick_of_ev = ceil_to_tick(events_.NextTime());
    if (tick_of_ev < target) {
      target = tick_of_ev;
    }
  }
  if (target <= now_) {
    return;
  }

  const uint64_t skipped = (target - now_) / kTick;
  for (Ticker* t : tickers_) {
    t->OnTicksSkipped(now_, skipped);
  }
  now_ = target;
  ticks_ += skipped;
  ticks_skipped_ += skipped;
}

void Engine::RunUntil(SimTime until) {
  while (now_ < until) {
    RunOneTick();
    if (now_ < until) {
      MaybeSkipIdleTicks(until);
    }
  }
  // Deliver events that land exactly on the boundary.
  events_.RunDue(now_);
}

}  // namespace ice
