// EventFn: a small-buffer-optimized, move-only callable for scheduled events.
//
// The simulator schedules millions of events per run (task sleep timers,
// vsync, I/O completions) and nearly all of them capture a pointer or two.
// std::function heap-allocates for most lambda captures; EventFn stores
// captures up to kInlineSize bytes inline, so the Schedule hot path performs
// no allocation. Larger callables (e.g. ones that own a Bio with its own
// std::function) fall back to a single heap allocation, same as before.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ice {

class EventFn {
 public:
  // Sized for the common capture shapes: [this], [this, id, generation],
  // and a moved-in std::function<void()> (32 bytes on libstdc++) all fit.
  static constexpr size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  // Invoking an empty EventFn is undefined; callers check beforehand.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the wrapped callable (used to release captures promptly when an
  // event is cancelled, without waiting for the node to be lazily reclaimed).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // True when the callable lives in the inline buffer (no heap allocation).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the callable into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool inline_storage;
  };

  template <typename Fn>
  static Fn* Stored(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn* HeapStored(void* storage) noexcept {
    return *std::launder(reinterpret_cast<Fn**>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*Stored<Fn>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) {
        Fn* f = Stored<Fn>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      /*destroy=*/[](void* s) { Stored<Fn>(s)->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (*HeapStored<Fn>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) { ::new (dst) Fn*(HeapStored<Fn>(src)); },
      /*destroy=*/[](void* s) { delete HeapStored<Fn>(s); },
      /*inline_storage=*/false,
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ice

#endif  // SRC_SIM_EVENT_FN_H_
