// Hierarchical timing wheel: the discrete-event core behind EventQueue.
//
// Linux-timer style: four levels of 64 slots each. Level 0 slots are 1024 µs
// wide (one engine tick fits in one slot), and each higher level is 64×
// coarser, so the wheel spans ~4.8 simulated hours; rarer far-future events
// overflow into a small min-heap. Schedule is O(1) (compute the level from
// the delta, append to the slot's chain), Cancel is a true O(1) generation-
// tag check — no tombstone set, no heap sift.
//
// Determinism contract: events fire in exactly (when, seq) order — identical
// to a binary heap with FIFO tie-break — including events scheduled during
// dispatch at times <= now, which join the current dispatch batch. Dispatch
// collects the batch into a flat run of (when, seq, node) entries, sorts it
// once, and walks it in order — merging a small side min-heap for events the
// batch's own callbacks schedule at times <= now — so wheel internals (slot
// chains, cascades) never leak into observable firing order.
//
// Event nodes live in a pooled free-list; the callback is an EventFn with
// inline storage, so the schedule/fire hot path performs no allocation in
// steady state.
#ifndef SRC_SIM_TIMING_WHEEL_H_
#define SRC_SIM_TIMING_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/units.h"
#include "src/sim/event_fn.h"

namespace ice {

// Handle for a scheduled event. Encodes (generation << 32 | node index + 1),
// so a handle is invalidated the moment its event fires or is cancelled —
// cancel-after-fire and double-cancel are detected exactly, not by bookkeeping
// side tables.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class TimingWheel {
 public:
  TimingWheel();

  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  // Schedules `fn` at absolute time `when`. Ties are broken FIFO by insertion
  // order so simulation order is deterministic.
  EventId Schedule(SimTime when, EventFn fn);

  // O(1) cancel. Returns false — with no other effect — if the event already
  // fired, was already cancelled, or the id is unknown/invalid.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Earliest pending (non-cancelled) event time; only valid when !empty().
  SimTime NextTime();

  // Pops and runs every event with time <= now, in (when, seq) order. Events
  // scheduled during dispatch at times <= now also run in this call.
  void RunDue(SimTime now);

  // ---- Snapshot/restore support ---------------------------------------------
  // Schedules `fn` with an explicit (when, seq) pair instead of drawing the
  // next sequence number. Restore paths use this to re-arm timers whose
  // (when, seq) was captured by a snapshot, reproducing the pre-snapshot
  // firing order exactly. next_seq_ is not advanced; the restorer sets it
  // once via set_next_seq() after every timer is re-armed.
  EventId ScheduleWithSeq(SimTime when, uint64_t seq, EventFn fn);

  // The (when, seq) of a still-pending event, or nullopt if the id is
  // invalid, already fired, or cancelled. Lets components serialize their
  // outstanding timers without the wheel serializing callables.
  std::optional<std::pair<SimTime, uint64_t>> Pending(EventId id) const;

  uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(uint64_t seq) { next_seq_ = seq; }

  // Moves the cursor to the slot containing `now` on an EMPTY wheel. The
  // emptiness requirement is structural: jumping the cursor past occupied
  // slots would skip their cascades, so restore re-arms timers only after
  // the clock is set.
  void RestoreClock(SimTime now);

  // Drops every node — live or husk — back into the free pool and rewinds the
  // cursor to slot 0, keeping the pool's capacity. Recycling support: a wheel
  // that has run a whole device trace is reset in O(nodes) with no frees, so
  // the next restore re-arms timers into warm storage.
  void Clear();

  // ---- Introspection (tests, benches) ---------------------------------------
  // Total pool capacity ever allocated (live + dead + free nodes).
  size_t allocated_nodes() const { return pool_.size(); }
  size_t overflow_size() const { return overflow_.size(); }

 private:
  static constexpr uint32_t kSlotBits = 6;         // 64 slots per level.
  static constexpr uint32_t kSlots = 1u << kSlotBits;
  static constexpr uint32_t kSlotMask = kSlots - 1;
  static constexpr uint32_t kLevel0Shift = 10;     // 1024 µs per level-0 slot.
  static constexpr uint32_t kLevels = 4;
  static constexpr uint32_t kNil = 0xffffffffu;

  enum class Where : uint8_t { kFree, kWheel, kOverflow, kDue };

  struct Node {
    SimTime when = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;
    uint32_t next = kNil;  // Intra-slot chain link.
    Where where = Where::kFree;
    bool live = false;
    EventFn fn;
  };

  struct Slot {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };

  // Value entry for the dispatch batch: carrying (when, seq) by value keeps
  // the sort/merge comparisons on contiguous memory instead of chasing node
  // indices back into the pool.
  struct DueEntry {
    SimTime when;
    uint64_t seq;
    uint32_t idx;
  };

  static bool EntryBefore(const DueEntry& a, const DueEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // Adapter for std::push_heap/pop_heap (which build max-heaps): ordering the
  // heap by "later" makes its top the earliest entry.
  static bool EntryLater(const DueEntry& a, const DueEntry& b) { return EntryBefore(b, a); }

  static EventId MakeId(uint32_t index, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | (static_cast<EventId>(index) + 1);
  }

  uint32_t AllocNode();
  void FreeNode(uint32_t idx);

  EventId ScheduleImpl(SimTime when, uint64_t seq, EventFn fn);

  // Places a (non-due) node into the wheel or the overflow heap based on its
  // distance from the cursor. Past-dated nodes are clamped into the cursor's
  // slot so every RunDue rescans them.
  void PlaceNode(uint32_t idx);
  void AppendToSlot(uint32_t level, uint32_t slot, uint32_t idx);

  // Detaches a whole slot chain (clearing its occupancy bit) and returns the
  // head, preserving insertion order.
  uint32_t DetachSlot(uint32_t level, uint32_t slot);

  // Appends a live node to the dispatch batch (sorted later, in one pass).
  void PushDue(uint32_t idx) {
    Node& n = pool_[idx];
    n.where = Where::kDue;
    due_.push_back(DueEntry{n.when, n.seq, idx});
  }

  // Moves every live node of a level-0 slot to the dispatch batch; frees dead
  // ones.
  void DrainSlotToDue(uint32_t slot);
  // Redistributes a higher-level slot one level down (or into level 0).
  void Cascade(uint32_t level, uint32_t slot);
  // Runs the cascades owed when the cursor enters the window starting at
  // `slot_time` (a multiple of kSlots).
  void CascadeAt(uint64_t abs_slot);

  // Advances the cursor to `target` (absolute level-0 slot number), fully
  // draining every slot it passes. Uses the occupancy bitmaps to jump over
  // empty stretches in O(1) per 64-slot window.
  void AdvanceTo(uint64_t target);
  // Extracts nodes with when <= now from the cursor's own (partial) slot.
  void ScanCurrentSlot(SimTime now);
  // Moves due overflow events (when <= now) to the dispatch batch.
  void DrainOverflow(SimTime now);
  // Sorts the collected batch and fires it in (when, seq) order, merging any
  // same-batch events scheduled by the callbacks themselves.
  void DispatchDue();

  bool WheelOccupied() const {
    return (occupied_[0] | occupied_[1] | occupied_[2] | occupied_[3]) != 0;
  }

  // (when, seq) min-heap helpers over node indices (the overflow heap).
  bool Later(uint32_t a, uint32_t b) const {
    const Node& na = pool_[a];
    const Node& nb = pool_[b];
    if (na.when != nb.when) {
      return na.when > nb.when;
    }
    return na.seq > nb.seq;
  }
  void HeapPush(std::vector<uint32_t>& heap, uint32_t idx);
  uint32_t HeapPop(std::vector<uint32_t>& heap);

  std::vector<Node> pool_;
  uint32_t free_head_ = kNil;

  Slot slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels] = {0, 0, 0, 0};
  // All level-0 slots strictly below cur_slot_ are fully drained; the slot at
  // cur_slot_ may have been partially drained up to the last RunDue's `now`.
  uint64_t cur_slot_ = 0;

  std::vector<uint32_t> overflow_;  // (when, seq) min-heap of far-future nodes.
  std::vector<DueEntry> due_;       // Dispatch batch; sorted once per RunDue.
  // (when, seq) min-heap of events scheduled *during* dispatch at <= now;
  // merged against the sorted run so they fire in order within the batch.
  std::vector<DueEntry> due_extra_;

  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  bool in_run_due_ = false;
  SimTime dispatch_now_ = 0;
};

}  // namespace ice

#endif  // SRC_SIM_TIMING_WHEEL_H_
