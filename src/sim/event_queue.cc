#include "src/sim/event_queue.h"

#include <utility>

#include "src/base/log.h"

namespace ice {

EventId EventQueue::Schedule(SimTime when, std::function<void()> fn) {
  ICE_CHECK(fn != nullptr);
  EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // Double-cancel or cancel-after-fire: the id will not be in the heap; the
  // tombstone is then inert (cleaned up lazily when ids wrap is not a concern
  // for simulation lifetimes).
  auto [it, inserted] = cancelled_.insert(id);
  if (inserted && live_count_ > 0) {
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::SkipCancelledHead() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelledHead();
  ICE_CHECK(!heap_.empty()) << "NextTime on empty queue";
  return heap_.top().when;
}

void EventQueue::RunDue(SimTime now) {
  for (;;) {
    SkipCancelledHead();
    if (heap_.empty() || heap_.top().when > now) {
      return;
    }
    std::function<void()> fn = std::move(heap_.top().fn);
    heap_.pop();
    --live_count_;
    fn();
  }
}

}  // namespace ice
