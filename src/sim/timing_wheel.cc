#include "src/sim/timing_wheel.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/base/log.h"

namespace ice {

TimingWheel::TimingWheel() {
  pool_.reserve(256);
  due_.reserve(64);
  due_extra_.reserve(8);
}

uint32_t TimingWheel::AllocNode() {
  if (free_head_ != kNil) {
    uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    return idx;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void TimingWheel::FreeNode(uint32_t idx) {
  Node& n = pool_[idx];
  n.fn.reset();
  n.live = false;
  n.where = Where::kFree;
  ++n.gen;  // Invalidates every outstanding EventId for this node.
  n.next = free_head_;
  free_head_ = idx;
}

void TimingWheel::HeapPush(std::vector<uint32_t>& heap, uint32_t idx) {
  heap.push_back(idx);
  std::push_heap(heap.begin(), heap.end(),
                 [this](uint32_t a, uint32_t b) { return Later(a, b); });
}

uint32_t TimingWheel::HeapPop(std::vector<uint32_t>& heap) {
  std::pop_heap(heap.begin(), heap.end(),
                [this](uint32_t a, uint32_t b) { return Later(a, b); });
  uint32_t idx = heap.back();
  heap.pop_back();
  return idx;
}

void TimingWheel::AppendToSlot(uint32_t level, uint32_t slot, uint32_t idx) {
  Slot& s = slots_[level][slot];
  pool_[idx].next = kNil;
  if (s.tail == kNil) {
    s.head = idx;
  } else {
    pool_[s.tail].next = idx;
  }
  s.tail = idx;
  occupied_[level] |= 1ull << slot;
}

uint32_t TimingWheel::DetachSlot(uint32_t level, uint32_t slot) {
  Slot& s = slots_[level][slot];
  uint32_t head = s.head;
  s.head = kNil;
  s.tail = kNil;
  occupied_[level] &= ~(1ull << slot);
  return head;
}

void TimingWheel::PlaceNode(uint32_t idx) {
  Node& n = pool_[idx];
  uint64_t ev_slot = n.when >> kLevel0Shift;
  uint64_t delta = ev_slot > cur_slot_ ? ev_slot - cur_slot_ : 0;
  n.where = Where::kWheel;
  if (delta < kSlots) {
    // Past-dated nodes clamp to the cursor's slot, which every RunDue rescans.
    uint64_t s = ev_slot > cur_slot_ ? ev_slot : cur_slot_;
    AppendToSlot(0, static_cast<uint32_t>(s & kSlotMask), idx);
  } else if (delta < (1ull << (2 * kSlotBits))) {
    AppendToSlot(1, static_cast<uint32_t>((n.when >> (kLevel0Shift + kSlotBits)) & kSlotMask),
                 idx);
  } else if (delta < (1ull << (3 * kSlotBits))) {
    AppendToSlot(2, static_cast<uint32_t>((n.when >> (kLevel0Shift + 2 * kSlotBits)) & kSlotMask),
                 idx);
  } else if (delta < (1ull << (4 * kSlotBits))) {
    AppendToSlot(3, static_cast<uint32_t>((n.when >> (kLevel0Shift + 3 * kSlotBits)) & kSlotMask),
                 idx);
  } else {
    n.where = Where::kOverflow;
    HeapPush(overflow_, idx);
  }
}

EventId TimingWheel::Schedule(SimTime when, EventFn fn) {
  return ScheduleImpl(when, next_seq_++, std::move(fn));
}

EventId TimingWheel::ScheduleWithSeq(SimTime when, uint64_t seq, EventFn fn) {
  return ScheduleImpl(when, seq, std::move(fn));
}

EventId TimingWheel::ScheduleImpl(SimTime when, uint64_t seq, EventFn fn) {
  ICE_CHECK(static_cast<bool>(fn));
  uint32_t idx = AllocNode();
  Node& n = pool_[idx];
  n.when = when;
  n.seq = seq;
  n.live = true;
  n.fn = std::move(fn);
  n.next = kNil;
  ++live_count_;
  EventId id = MakeId(idx, n.gen);
  if (in_run_due_ && when <= dispatch_now_) {
    // Scheduled by a firing callback: joins the current dispatch batch,
    // ordered by (when, seq). The sorted run is immutable mid-walk, so these
    // go to the side heap that DispatchDue merges against it.
    n.where = Where::kDue;
    due_extra_.push_back(DueEntry{n.when, n.seq, idx});
    std::push_heap(due_extra_.begin(), due_extra_.end(), EntryLater);
  } else {
    PlaceNode(idx);
  }
  return id;
}

std::optional<std::pair<SimTime, uint64_t>> TimingWheel::Pending(EventId id) const {
  uint32_t low = static_cast<uint32_t>(id & 0xffffffffu);
  if (low == 0 || low > pool_.size()) {
    return std::nullopt;
  }
  const Node& n = pool_[low - 1];
  if (n.gen != static_cast<uint32_t>(id >> 32) || !n.live) {
    return std::nullopt;
  }
  return std::make_pair(n.when, n.seq);
}

void TimingWheel::RestoreClock(SimTime now) {
  ICE_CHECK_EQ(live_count_, 0u) << "RestoreClock on a non-empty wheel";
  ICE_CHECK(!in_run_due_);
  // Husks of cancelled events may still sit in slots/overflow; sweep them so
  // the cursor jump cannot strand one in an already-passed slot.
  for (uint32_t level = 0; level < kLevels; ++level) {
    for (uint32_t slot = 0; slot < kSlots; ++slot) {
      uint32_t idx = DetachSlot(level, slot);
      while (idx != kNil) {
        uint32_t next = pool_[idx].next;
        ICE_CHECK(!pool_[idx].live);
        FreeNode(idx);
        idx = next;
      }
    }
  }
  while (!overflow_.empty()) {
    FreeNode(HeapPop(overflow_));
  }
  cur_slot_ = now >> kLevel0Shift;
}

void TimingWheel::Clear() {
  ICE_CHECK(!in_run_due_) << "Clear during dispatch";
  for (uint32_t level = 0; level < kLevels; ++level) {
    for (uint32_t slot = 0; slot < kSlots; ++slot) {
      uint32_t idx = DetachSlot(level, slot);
      while (idx != kNil) {
        uint32_t next = pool_[idx].next;
        if (pool_[idx].live) {
          pool_[idx].live = false;
          --live_count_;
        }
        FreeNode(idx);
        idx = next;
      }
    }
  }
  while (!overflow_.empty()) {
    uint32_t idx = HeapPop(overflow_);
    if (pool_[idx].live) {
      pool_[idx].live = false;
      --live_count_;
    }
    FreeNode(idx);
  }
  due_.clear();
  due_extra_.clear();
  ICE_CHECK_EQ(live_count_, 0u);
  cur_slot_ = 0;
  next_seq_ = 1;
}

bool TimingWheel::Cancel(EventId id) {
  uint32_t low = static_cast<uint32_t>(id & 0xffffffffu);
  if (low == 0 || low > pool_.size()) {
    return false;
  }
  uint32_t idx = low - 1;
  Node& n = pool_[idx];
  if (n.gen != static_cast<uint32_t>(id >> 32) || !n.live) {
    return false;  // Already fired, already cancelled, or a stale handle.
  }
  n.live = false;
  n.fn.reset();  // Release captures now; the node husk is reclaimed lazily.
  --live_count_;
  return true;
}

void TimingWheel::DrainSlotToDue(uint32_t slot) {
  uint32_t idx = DetachSlot(0, slot);
  while (idx != kNil) {
    uint32_t next = pool_[idx].next;
    if (pool_[idx].live) {
      PushDue(idx);
    } else {
      FreeNode(idx);
    }
    idx = next;
  }
}

void TimingWheel::Cascade(uint32_t level, uint32_t slot) {
  if ((occupied_[level] >> slot & 1) == 0) {
    return;
  }
  uint32_t idx = DetachSlot(level, slot);
  while (idx != kNil) {
    uint32_t next = pool_[idx].next;
    if (pool_[idx].live) {
      PlaceNode(idx);
    } else {
      FreeNode(idx);
    }
    idx = next;
  }
}

void TimingWheel::CascadeAt(uint64_t abs_slot) {
  // Highest wrapped level first, so far events trickle down through every
  // level they now belong to.
  uint64_t c1 = abs_slot >> kSlotBits;
  if ((c1 & kSlotMask) == 0) {
    uint64_t c2 = c1 >> kSlotBits;
    if ((c2 & kSlotMask) == 0) {
      uint64_t c3 = c2 >> kSlotBits;
      Cascade(3, static_cast<uint32_t>(c3 & kSlotMask));
    }
    Cascade(2, static_cast<uint32_t>(c2 & kSlotMask));
  }
  Cascade(1, static_cast<uint32_t>(c1 & kSlotMask));
}

void TimingWheel::AdvanceTo(uint64_t target) {
  while (cur_slot_ < target) {
    if (!WheelOccupied()) {
      // Nothing anywhere in the wheel: jump straight to the target. Any
      // cascade the cursor would have performed is vacuous.
      cur_slot_ = target;
      return;
    }
    uint32_t idx0 = static_cast<uint32_t>(cur_slot_ & kSlotMask);
    uint64_t window_base = cur_slot_ - idx0;
    uint64_t bits = occupied_[0] >> idx0;
    uint64_t next_occ = bits != 0 ? cur_slot_ + std::countr_zero(bits) : UINT64_MAX;
    uint64_t boundary = window_base + kSlots;
    uint64_t stop = boundary < target ? boundary : target;
    if (next_occ < stop) {
      cur_slot_ = next_occ;
      DrainSlotToDue(static_cast<uint32_t>(cur_slot_ & kSlotMask));
      ++cur_slot_;
    } else {
      cur_slot_ = stop;
    }
    if ((cur_slot_ & kSlotMask) == 0) {
      CascadeAt(cur_slot_);
    }
  }
}

void TimingWheel::ScanCurrentSlot(SimTime now) {
  uint32_t slot = static_cast<uint32_t>(cur_slot_ & kSlotMask);
  if ((occupied_[0] >> slot & 1) == 0) {
    return;
  }
  Slot& s = slots_[0][slot];
  uint32_t idx = s.head;
  uint32_t prev = kNil;
  while (idx != kNil) {
    uint32_t next = pool_[idx].next;
    bool remove;
    if (!pool_[idx].live) {
      remove = true;
    } else if (pool_[idx].when <= now) {
      remove = true;
    } else {
      remove = false;
    }
    if (remove) {
      if (prev == kNil) {
        s.head = next;
      } else {
        pool_[prev].next = next;
      }
      if (s.tail == idx) {
        s.tail = prev;
      }
      if (pool_[idx].live) {
        PushDue(idx);
      } else {
        FreeNode(idx);
      }
    } else {
      prev = idx;
    }
    idx = next;
  }
  if (s.head == kNil) {
    occupied_[0] &= ~(1ull << slot);
  }
}

void TimingWheel::DrainOverflow(SimTime now) {
  while (!overflow_.empty()) {
    uint32_t top = overflow_.front();
    if (!pool_[top].live) {
      HeapPop(overflow_);
      FreeNode(top);
      continue;
    }
    if (pool_[top].when > now) {
      return;
    }
    HeapPop(overflow_);
    PushDue(top);
  }
}

void TimingWheel::DispatchDue() {
  // One sort over contiguous (when, seq, idx) entries replaces a heap
  // push + pop per event; the batch is complete before any callback runs, so
  // the run never mutates mid-walk. Only callback-scheduled same-batch events
  // arrive later, via the due_extra_ side heap. Entry indices are unique
  // (each node sits in exactly one container position), so a node freed and
  // reused by a callback can never alias a not-yet-walked entry.
  std::sort(due_.begin(), due_.end(), EntryBefore);
  size_t pos = 0;
  for (;;) {
    uint32_t idx;
    if (!due_extra_.empty() &&
        (pos == due_.size() || EntryBefore(due_extra_.front(), due_[pos]))) {
      std::pop_heap(due_extra_.begin(), due_extra_.end(), EntryLater);
      idx = due_extra_.back().idx;
      due_extra_.pop_back();
    } else if (pos < due_.size()) {
      idx = due_[pos++].idx;
    } else {
      break;
    }
    if (!pool_[idx].live) {
      FreeNode(idx);
      continue;
    }
    EventFn fn = std::move(pool_[idx].fn);
    pool_[idx].live = false;
    --live_count_;
    FreeNode(idx);
    // The callback may Schedule (possibly into this batch) or Cancel; no
    // node reference is held across it.
    fn();
  }
  due_.clear();
}

void TimingWheel::RunDue(SimTime now) {
  ICE_CHECK(!in_run_due_) << "reentrant RunDue";
  in_run_due_ = true;
  dispatch_now_ = now;
  DrainOverflow(now);
  AdvanceTo(now >> kLevel0Shift);
  ScanCurrentSlot(now);
  DispatchDue();
  in_run_due_ = false;
}

SimTime TimingWheel::NextTime() {
  ICE_CHECK(live_count_ > 0) << "NextTime on empty queue";
  SimTime best = UINT64_MAX;
  for (uint32_t level = 0; level < kLevels; ++level) {
    if (occupied_[level] == 0) {
      continue;
    }
    uint32_t start = static_cast<uint32_t>((cur_slot_ >> (level * kSlotBits)) & kSlotMask);
    // Cyclic scan in time order. Level 0 starts at the cursor's own slot;
    // higher levels' cursor slot was already cascaded, so any residue there
    // is next-cycle (latest) and scans last.
    for (uint32_t k = 0; k < kSlots; ++k) {
      uint32_t s = (start + k + (level == 0 ? 0 : 1)) & kSlotMask;
      if ((occupied_[level] >> s & 1) == 0) {
        continue;
      }
      // Prune dead nodes while scanning for the slot's earliest live event.
      Slot& sl = slots_[level][s];
      SimTime slot_min = UINT64_MAX;
      uint32_t idx = sl.head;
      uint32_t prev = kNil;
      while (idx != kNil) {
        uint32_t next = pool_[idx].next;
        if (!pool_[idx].live) {
          if (prev == kNil) {
            sl.head = next;
          } else {
            pool_[prev].next = next;
          }
          if (sl.tail == idx) {
            sl.tail = prev;
          }
          FreeNode(idx);
        } else {
          slot_min = std::min(slot_min, pool_[idx].when);
          prev = idx;
        }
        idx = next;
      }
      if (sl.head == kNil) {
        occupied_[level] &= ~(1ull << s);
        continue;  // Slot was all-dead; keep scanning this level.
      }
      best = std::min(best, slot_min);
      break;  // First occupied slot in time order bounds this level.
    }
  }
  while (!overflow_.empty() && !pool_[overflow_.front()].live) {
    FreeNode(HeapPop(overflow_));
  }
  if (!overflow_.empty()) {
    best = std::min(best, pool_[overflow_.front()].when);
  }
  ICE_CHECK(best != UINT64_MAX);
  return best;
}

}  // namespace ice
