// Time-ordered callback queue driving the discrete-event half of the
// simulator (timers, I/O completions, MDT heartbeats, vsync, ...).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/units.h"

namespace ice {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;

  // Schedules `fn` at absolute time `when`. Ties are broken FIFO by insertion
  // order so simulation order is deterministic.
  EventId Schedule(SimTime when, std::function<void()> fn);

  // Best-effort cancel; O(1) by tombstoning. Returns false if the event was
  // unknown or already fired.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Earliest pending (non-cancelled) event time; only valid when !empty().
  SimTime NextTime();

  // Pops and runs every event with time <= now, in order. Events scheduled
  // during dispatch at times <= now also run in this call.
  void RunDue(SimTime now);

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Mutable so the function can be moved out of the priority_queue top.
    mutable std::function<void()> fn;

    bool operator<(const Event& other) const {
      // priority_queue is a max-heap; invert for earliest-first.
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Removes cancelled events sitting at the heap top.
  void SkipCancelledHead();

  std::priority_queue<Event> heap_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ice

#endif  // SRC_SIM_EVENT_QUEUE_H_
