// Time-ordered callback queue driving the discrete-event half of the
// simulator (timers, I/O completions, MDT heartbeats, vsync, ...).
//
// EventQueue is the hierarchical timing wheel from timing_wheel.h: O(1)
// schedule, O(1) generation-checked cancel, allocation-free hot path, and
// firing order identical to the original binary-heap implementation
// ((when, seq) with FIFO tie-break). See timing_wheel.h for the invariants
// and DESIGN.md ("Engine") for the level layout.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include "src/sim/timing_wheel.h"

namespace ice {

using EventQueue = TimingWheel;

}  // namespace ice

#endif  // SRC_SIM_EVENT_QUEUE_H_
