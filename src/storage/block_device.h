// Queued flash block device model (UFS / eMMC).
//
// Requests are serviced FIFO with a bounded number of in-flight commands
// (the device queue depth). Service time per command is
//   command_overhead + pages * per_page_latency, with log-normal jitter.
// This reproduces the property the paper depends on: when background refault
// I/O floods the queue, foreground fault-in requests wait behind it.
#ifndef SRC_STORAGE_BLOCK_DEVICE_H_
#define SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/base/rng.h"
#include "src/sim/engine.h"
#include "src/storage/bio.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

struct FlashProfile {
  std::string name;
  SimDuration read_per_page = Us(20);
  SimDuration write_per_page = Us(45);
  SimDuration command_overhead = Us(80);
  int queue_depth = 16;
  // Sigma of the log-normal jitter applied to each command's service time.
  double jitter_sigma = 0.25;
};

class BlockDevice {
 public:
  BlockDevice(Engine& engine, FlashProfile profile);

  // Enqueues a request; `bio.on_complete` fires when the device finishes it.
  void Submit(Bio bio);

  // FastTrack-style foreground-priority dispatch (Hahn et al., ATC'18):
  // when enabled, queued foreground requests are started before background
  // ones. Off by default — the paper's stock configuration is FIFO.
  void set_fg_priority(bool enabled) { fg_priority_ = enabled; }
  bool fg_priority() const { return fg_priority_; }

  size_t queued() const { return queue_.size(); }
  int inflight() const { return inflight_; }

  // Total pages moved, for §6.2.2-style I/O accounting.
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }
  uint64_t requests_completed() const { return requests_completed_; }
  // Foreground/background split (who the request served), for the paper's
  // I/O-pressure analysis: BG refault traffic queues ahead of FG fault-ins.
  uint64_t fg_requests() const { return fg_requests_; }
  uint64_t bg_requests() const { return bg_requests_; }
  double fg_mean_latency_us() const {
    return fg_requests_ == 0 ? 0.0
                             : static_cast<double>(fg_latency_us_) / fg_requests_;
  }
  double bg_mean_latency_us() const {
    return bg_requests_ == 0 ? 0.0
                             : static_cast<double>(bg_latency_us_) / bg_requests_;
  }

  // Mean completion latency (µs) over the device lifetime.
  double mean_latency_us() const;

  const FlashProfile& profile() const { return profile_; }

  // Snapshot support. A quiescent point requires an idle device — queued or
  // in-flight commands carry completion closures the snapshot cannot carry —
  // so SaveTo ICE_CHECKs emptiness and serializes only counters + RNG.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

  // Recycling support: drop queued commands and forget in-flight ones (their
  // completion events died with the engine's wheel) so RestoreFrom's idle
  // checks hold on a reused device.
  void ResetForRecycle() {
    queue_.clear();
    inflight_ = 0;
  }

 private:
  void MaybeStart();
  void Complete(Bio bio, SimTime submitted, uint64_t id);

  Engine& engine_;
  FlashProfile profile_;
  Rng rng_;

  struct Pending {
    Bio bio;
    SimTime submitted;
    uint64_t id = 0;  // Monotonic per-device request id (trace correlation).
  };
  std::deque<Pending> queue_;
  int inflight_ = 0;
  bool fg_priority_ = false;
  uint64_t bio_seq_ = 0;

  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t requests_completed_ = 0;
  uint64_t total_latency_us_ = 0;
  uint64_t fg_requests_ = 0;
  uint64_t bg_requests_ = 0;
  uint64_t fg_latency_us_ = 0;
  uint64_t bg_latency_us_ = 0;
};

}  // namespace ice

#endif  // SRC_STORAGE_BLOCK_DEVICE_H_
