#include "src/storage/flash_profiles.h"

namespace ice {

FlashProfile Ufs21Profile() {
  FlashProfile p;
  p.name = "UFS2.1";
  p.read_per_page = Us(6);
  p.write_per_page = Us(14);
  p.command_overhead = Us(50);
  p.queue_depth = 32;
  p.jitter_sigma = 0.20;
  return p;
}

FlashProfile Emmc51Profile() {
  FlashProfile p;
  p.name = "eMMC5.1";
  p.read_per_page = Us(16);
  p.write_per_page = Us(40);
  p.command_overhead = Us(110);
  p.queue_depth = 8;
  p.jitter_sigma = 0.30;
  return p;
}

FlashProfile Emmc45Profile() {
  FlashProfile p;
  p.name = "eMMC4.5";
  p.read_per_page = Us(28);
  p.write_per_page = Us(70);
  p.command_overhead = Us(160);
  p.queue_depth = 4;
  p.jitter_sigma = 0.35;
  return p;
}

}  // namespace ice
