// Calibrated flash device profiles for the two evaluation phones:
// Pixel3 ships 64 GB eMMC 5.1; HUAWEI P20 ships 64 GB UFS 2.1.
#ifndef SRC_STORAGE_FLASH_PROFILES_H_
#define SRC_STORAGE_FLASH_PROFILES_H_

#include "src/storage/block_device.h"

namespace ice {

// UFS 2.1: full-duplex, deep command queue, ~700 MB/s sequential read class.
FlashProfile Ufs21Profile();

// eMMC 5.1: half-duplex, shallow queue, ~250 MB/s sequential read class.
FlashProfile Emmc51Profile();

// Budget eMMC 4.5: the entry-tier storage of the fleet's 2 GB devices —
// slower medium, higher per-command overhead, more jitter.
FlashProfile Emmc45Profile();

}  // namespace ice

#endif  // SRC_STORAGE_FLASH_PROFILES_H_
