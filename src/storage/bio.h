// Block I/O request, mirroring the kernel's `struct bio`: an in-flight block
// I/O request handed from the memory manager to a block device driver.
#ifndef SRC_STORAGE_BIO_H_
#define SRC_STORAGE_BIO_H_

#include <functional>

#include "src/base/units.h"

namespace ice {

enum class IoDir { kRead, kWrite };

struct Bio {
  IoDir dir = IoDir::kRead;
  PageCount pages = 1;
  // True when the request is on behalf of the foreground application; block
  // schedulers such as FastTrack use this as a priority hint. Our default
  // device is FIFO (matching the paper's stock configuration) but the flag is
  // tracked for accounting.
  bool foreground = false;
  Pid pid = kInvalidPid;
  // Invoked at completion time (simulated).
  std::function<void()> on_complete;
};

}  // namespace ice

#endif  // SRC_STORAGE_BIO_H_
