#include "src/storage/block_device.h"

#include <utility>

#include "src/base/binary_stream.h"
#include "src/base/log.h"
#include "src/trace/trace.h"

namespace ice {

namespace {
int BioFlags(const Bio& bio) {
  return (bio.foreground ? kTraceFlagForeground : 0) |
         (bio.dir == IoDir::kWrite ? kTraceFlagWrite : 0);
}
}  // namespace

BlockDevice::BlockDevice(Engine& engine, FlashProfile profile)
    : engine_(engine),
      profile_(std::move(profile)),
      // Service-time jitter is environment noise, not workload: forking from
      // the noise stream keeps experiment construction off the seeded stream
      // (the warm-boot template contract; see Engine::noise_rng).
      rng_(engine.noise_rng().Fork()) {}

void BlockDevice::Submit(Bio bio) {
  engine_.stats().Increment(bio.dir == IoDir::kRead ? stat::kIoReads : stat::kIoWrites);
  engine_.stats().Add(bio.dir == IoDir::kRead ? stat::kIoReadBytes : stat::kIoWriteBytes,
                      PagesToBytes(bio.pages));
  uint64_t id = ++bio_seq_;
  ICE_TRACE(engine_, TraceEventType::kBioSubmit,
            {.pid = bio.pid, .flags = BioFlags(bio), .arg0 = bio.pages, .arg1 = id});
  queue_.push_back(Pending{std::move(bio), engine_.now(), id});
  MaybeStart();
}

void BlockDevice::MaybeStart() {
  while (inflight_ < profile_.queue_depth && !queue_.empty()) {
    auto it = queue_.begin();
    if (fg_priority_) {
      for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
        if (cand->bio.foreground) {
          it = cand;
          break;
        }
      }
    }
    Pending p = std::move(*it);
    queue_.erase(it);
    ++inflight_;

    SimDuration per_page =
        p.bio.dir == IoDir::kRead ? profile_.read_per_page : profile_.write_per_page;
    double nominal =
        static_cast<double>(profile_.command_overhead) + static_cast<double>(per_page * p.bio.pages);
    SimDuration service =
        static_cast<SimDuration>(rng_.LogNormal(nominal, profile_.jitter_sigma));
    if (service < 1) {
      service = 1;
    }

    Bio bio = std::move(p.bio);
    SimTime submitted = p.submitted;
    uint64_t id = p.id;
    engine_.ScheduleAfter(service, [this, bio = std::move(bio), submitted, id]() mutable {
      Complete(std::move(bio), submitted, id);
    });
  }
}

void BlockDevice::Complete(Bio bio, SimTime submitted, uint64_t id) {
  --inflight_;
  ICE_CHECK_GE(inflight_, 0);
  ++requests_completed_;
  SimDuration latency = engine_.now() - submitted;
  ICE_TRACE(engine_, TraceEventType::kBioComplete,
            {.pid = bio.pid, .flags = BioFlags(bio), .arg0 = latency, .arg1 = id});
  total_latency_us_ += latency;
  if (bio.foreground) {
    ++fg_requests_;
    fg_latency_us_ += latency;
  } else {
    ++bg_requests_;
    bg_latency_us_ += latency;
  }
  if (bio.dir == IoDir::kRead) {
    pages_read_ += bio.pages;
  } else {
    pages_written_ += bio.pages;
  }
  if (bio.on_complete) {
    bio.on_complete();
  }
  MaybeStart();
}

void BlockDevice::SaveTo(BinaryWriter& w) const {
  ICE_CHECK(queue_.empty()) << "snapshot with queued I/O";
  ICE_CHECK_EQ(inflight_, 0) << "snapshot with in-flight I/O";
  rng_.SaveTo(w);
  w.U64(bio_seq_);
  w.Bool(fg_priority_);
  w.U64(pages_read_);
  w.U64(pages_written_);
  w.U64(requests_completed_);
  w.U64(total_latency_us_);
  w.U64(fg_requests_);
  w.U64(bg_requests_);
  w.U64(fg_latency_us_);
  w.U64(bg_latency_us_);
}

void BlockDevice::RestoreFrom(BinaryReader& r) {
  ICE_CHECK(queue_.empty());
  ICE_CHECK_EQ(inflight_, 0);
  rng_.RestoreFrom(r);
  bio_seq_ = r.U64();
  fg_priority_ = r.Bool();
  pages_read_ = r.U64();
  pages_written_ = r.U64();
  requests_completed_ = r.U64();
  total_latency_us_ = r.U64();
  fg_requests_ = r.U64();
  bg_requests_ = r.U64();
  fg_latency_us_ = r.U64();
  bg_latency_us_ = r.U64();
}

double BlockDevice::mean_latency_us() const {
  if (requests_completed_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_latency_us_) / static_cast<double>(requests_completed_);
}

}  // namespace ice
