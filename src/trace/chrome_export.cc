#include "src/trace/chrome_export.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "src/base/log.h"

namespace ice {

namespace {

// Synthetic process ids, one per subsystem (see header).
constexpr int kPidCpu = 1;
constexpr int kPidMem = 2;
constexpr int kPidIo = 3;
constexpr int kPidFrames = 4;
constexpr int kPidIce = 5;

// mem-process tracks.
constexpr int kTidKswapd = 1;
constexpr int kTidDirect = 2;
constexpr int kTidMemEvents = 3;

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

class JsonEvents {
 public:
  std::ostringstream& Next() {
    if (!first_) {
      out_ << ",\n";
    }
    first_ = false;
    return out_;
  }

  void Meta(int pid, int tid, const char* key, const std::string& name) {
    Next() << "  {\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"name\": \"" << key << "\", \"args\": {\"name\": \"" << Escape(name)
           << "\"}}";
  }

  void Complete(int pid, int tid, SimTime ts, SimDuration dur, const std::string& name,
                const std::string& args) {
    Next() << "  {\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"ts\": " << ts << ", \"dur\": " << dur << ", \"name\": \""
           << Escape(name) << "\"" << (args.empty() ? "" : ", \"args\": {" + args + "}")
           << "}";
  }

  void Instant(int pid, int tid, SimTime ts, const std::string& name,
               const std::string& args) {
    Next() << "  {\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"ts\": " << ts << ", \"name\": \"" << Escape(name) << "\""
           << (args.empty() ? "" : ", \"args\": {" + args + "}") << "}";
  }

  void Async(char phase, int pid, int tid, SimTime ts, const char* cat,
             uint64_t id, const std::string& name, const std::string& args) {
    Next() << "  {\"ph\": \"" << phase << "\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"ts\": " << ts << ", \"cat\": \"" << cat << "\", \"id\": " << id
           << ", \"name\": \"" << Escape(name) << "\""
           << (args.empty() ? "" : ", \"args\": {" + args + "}") << "}";
  }

  void Counter(int pid, SimTime ts, const char* name, const std::string& args) {
    Next() << "  {\"ph\": \"C\", \"pid\": " << pid << ", \"tid\": 0, \"ts\": " << ts
           << ", \"name\": \"" << name << "\", \"args\": {" << args << "}}";
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  bool first_ = true;
};

std::string I(const char* key, uint64_t v) {
  return std::string("\"") + key + "\": " + std::to_string(v);
}
std::string I(const char* key, int64_t v) {
  return std::string("\"") + key + "\": " + std::to_string(v);
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::vector<TraceEvent> events = tracer.Events();
  SimTime last_ts = events.empty() ? 0 : events.back().ts;

  JsonEvents out;
  out.Meta(kPidCpu, 0, "process_name", "cpu");
  out.Meta(kPidMem, 0, "process_name", "mem");
  out.Meta(kPidIo, 0, "process_name", "io");
  out.Meta(kPidFrames, 0, "process_name", "frames");
  out.Meta(kPidIce, 0, "process_name", "ice");
  out.Meta(kPidMem, kTidKswapd, "thread_name", "kswapd reclaim");
  out.Meta(kPidMem, kTidDirect, "thread_name", "direct reclaim");
  out.Meta(kPidMem, kTidMemEvents, "thread_name", "vm events");

  // Open sched slice per core: (start ts, task trace id).
  std::map<uint16_t, std::pair<SimTime, uint64_t>> sched_open;
  // Open reclaim span per mem track: (start ts, target).
  std::map<int, std::pair<SimTime, uint64_t>> reclaim_open;

  for (const TraceEvent& e : events) {
    bool fg = (e.flags & kTraceFlagForeground) != 0;
    bool direct = (e.flags & kTraceFlagDirect) != 0;
    bool anon = (e.flags & kTraceFlagAnon) != 0;
    bool write = (e.flags & kTraceFlagWrite) != 0;
    switch (e.type) {
      case TraceEventType::kReclaimBegin: {
        // Drop-oldest may orphan a begin; the newer begin wins.
        reclaim_open[direct ? kTidDirect : kTidKswapd] = {e.ts, e.arg0};
        break;
      }
      case TraceEventType::kReclaimEnd: {
        int tid = direct ? kTidDirect : kTidKswapd;
        auto it = reclaim_open.find(tid);
        if (it != reclaim_open.end()) {
          out.Complete(kPidMem, tid, it->second.first, e.ts - it->second.first,
                       direct ? "direct_reclaim" : "kswapd_reclaim",
                       I("target", it->second.second) + ", " + I("reclaimed", e.arg0) +
                           ", " + I("scanned", e.arg1));
          reclaim_open.erase(it);
        }
        break;
      }
      case TraceEventType::kPageEvict:
        out.Instant(kPidMem, kTidMemEvents, e.ts, anon ? "evict_anon" : "evict_file",
                    I("uid", int64_t{e.uid}) + ", " + I("vpn", e.arg0) + ", " +
                        I("direct", uint64_t{direct ? 1u : 0u}));
        break;
      case TraceEventType::kRefault:
        out.Instant(kPidMem, kTidMemEvents, e.ts, fg ? "refault_fg" : "refault_bg",
                    I("pid", int64_t{e.pid}) + ", " + I("uid", int64_t{e.uid}) + ", " +
                        I("vpn", e.arg0) + ", " + I("anon", uint64_t{anon ? 1u : 0u}));
        break;
      case TraceEventType::kZramCompress:
        out.Instant(kPidMem, kTidMemEvents, e.ts, "zram_compress",
                    I("uid", int64_t{e.uid}) + ", " + I("bytes", e.arg0));
        break;
      case TraceEventType::kZramDecompress:
        out.Instant(kPidMem, kTidMemEvents, e.ts, "zram_decompress",
                    I("uid", int64_t{e.uid}) + ", " + I("bytes", e.arg0));
        break;
      case TraceEventType::kBioSubmit:
        out.Async('b', kPidIo, 1, e.ts, "bio", e.arg1,
                  std::string(write ? "bio_write" : "bio_read") + (fg ? "_fg" : "_bg"),
                  I("pages", e.arg0) + ", " + I("pid", int64_t{e.pid}));
        break;
      case TraceEventType::kBioComplete:
        out.Async('e', kPidIo, 1, e.ts, "bio", e.arg1,
                  std::string(write ? "bio_write" : "bio_read") + (fg ? "_fg" : "_bg"),
                  I("latency_us", e.arg0));
        break;
      case TraceEventType::kSchedSwitch: {
        auto it = sched_open.find(e.core);
        if (it != sched_open.end()) {
          out.Complete(kPidCpu, e.core + 1, it->second.first, e.ts - it->second.first,
                       tracer.TaskName(it->second.second), "");
          sched_open.erase(it);
        }
        if (e.arg0 != 0) {
          sched_open[e.core] = {e.ts, e.arg0};
        }
        break;
      }
      case TraceEventType::kFreeze:
        out.Async('b', kPidIce, 1, e.ts, "freezer",
                  static_cast<uint64_t>(e.uid), "frozen", I("uid", int64_t{e.uid}));
        break;
      case TraceEventType::kThaw:
        out.Async('e', kPidIce, 1, e.ts, "freezer",
                  static_cast<uint64_t>(e.uid), "frozen", "");
        break;
      case TraceEventType::kRpfTrigger:
        out.Instant(kPidIce, 1, e.ts, "rpf_trigger",
                    I("pid", int64_t{e.pid}) + ", " + I("uid", int64_t{e.uid}));
        break;
      case TraceEventType::kMdtEpoch:
        out.Instant(kPidIce, 1, e.ts, "mdt_epoch",
                    I("ef_us", e.arg0) + ", " + I("epoch", e.arg1));
        out.Counter(kPidIce, e.ts, "mdt_ef_ms", I("ef_ms", e.arg0 / 1000));
        break;
      case TraceEventType::kFrameBegin:
        out.Async('b', kPidFrames, 1, e.ts, "frame", e.arg0, "frame",
                  I("uid", int64_t{e.uid}));
        break;
      case TraceEventType::kFrameEnd:
        out.Async('e', kPidFrames, 1, e.ts, "frame", e.arg0, "frame",
                  I("latency_us", e.arg1));
        break;
      case TraceEventType::kFrameDeadlineMiss:
        out.Instant(kPidFrames, 1, e.ts,
                    (e.flags & kTraceFlagDropped) != 0 ? "vsync_dropped"
                                                       : "frame_deadline_miss",
                    I("frame", e.arg0) + ", " + I("latency_us", e.arg1));
        break;
      case TraceEventType::kZramReject:
        out.Instant(kPidMem, kTidMemEvents, e.ts,
                    (e.flags & kTraceFlagHot) != 0 ? "zram_reject_hot"
                                                   : "zram_reject_full",
                    I("uid", int64_t{e.uid}) + ", " + I("vpn", e.arg0));
        break;
      case TraceEventType::kZramWriteback:
        out.Instant(kPidMem, kTidMemEvents, e.ts, "zram_writeback",
                    I("pages", e.arg0));
        break;
    }
  }
  // Close slices still open at trace end so they render.
  for (const auto& [core, open] : sched_open) {
    out.Complete(kPidCpu, core + 1, open.first, last_ts - open.first,
                 tracer.TaskName(open.second), "");
  }
  for (const auto& [tid, open] : reclaim_open) {
    out.Complete(kPidMem, tid, open.first, last_ts - open.first,
                 tid == kTidDirect ? "direct_reclaim" : "kswapd_reclaim",
                 I("target", open.second));
  }

  std::ostringstream json;
  json << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n"
       << out.str() << "\n]}\n";
  return json.str();
}

std::string WriteChromeTrace(const std::string& path, const Tracer& tracer) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      ICE_LOG(kError) << "cannot create " << p.parent_path().string() << ": "
                      << ec.message();
      return "";
    }
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    ICE_LOG(kError) << "cannot open " << path;
    return "";
  }
  file << ChromeTraceJson(tracer);
  return path;
}

}  // namespace ice
