// Typed trace events — the simulator's equivalent of ftrace tracepoints.
//
// Every event is a fixed-size POD stamped with SimTime (never wall clock), so
// a trace is a pure function of the experiment's config and seed: the same
// cell produces a byte-identical event sequence no matter which worker thread
// ran it. Events cross the five layers of the paper's interference chain
// (mem reclaim/zram/shadow, proc scheduler/freezer, storage, android frames,
// ice rpf/mdt) and are consumed by the Chrome trace_event exporter and the
// derived-counter summary (src/trace/chrome_export.h, src/trace/summary.h).
#ifndef SRC_TRACE_TRACE_EVENT_H_
#define SRC_TRACE_TRACE_EVENT_H_

#include <cstddef>
#include <cstdint>

#include "src/base/units.h"

namespace ice {

enum class TraceEventType : uint8_t {
  kReclaimBegin = 0,    // flags: direct; arg0 = target pages.
  kReclaimEnd,          // flags: direct; arg0 = reclaimed, arg1 = scanned.
  kPageEvict,           // uid = owner; flags: anon|direct; arg0 = vpn.
  kRefault,             // pid/uid; flags: foreground|anon; arg0 = vpn.
  kZramCompress,        // uid = owner; arg0 = compressed bytes.
  kZramDecompress,      // pid/uid; arg0 = compressed bytes freed.
  kBioSubmit,           // pid; flags: foreground|write; arg0 = pages, arg1 = bio id.
  kBioComplete,         // flags: foreground|write; arg0 = latency us, arg1 = bio id.
  kSchedSwitch,         // core; pid; arg0 = task trace id (0 = idle).
  kFreeze,              // uid.
  kThaw,                // uid.
  kRpfTrigger,          // pid/uid of the refaulting BG app RPF froze.
  kMdtEpoch,            // arg0 = freeze duration E_f us, arg1 = epoch number.
  kFrameBegin,          // uid = fg app; arg0 = frame sequence number.
  kFrameEnd,            // arg0 = frame sequence, arg1 = latency us.
  kFrameDeadlineMiss,   // flags: dropped (vsync with no frame issued);
                        // arg0 = frame sequence, arg1 = latency us (0 if dropped).
  kZramReject,          // uid = owner; flags: hot (admission gate) or none
                        // (pool full); arg0 = vpn.
  kZramWriteback,       // arg0 = pages drained from zram to flash.
};

inline constexpr size_t kTraceEventTypeCount = 18;

// Event flag bits. Meaning is per-type (documented above) but bits are
// globally unique so exporters can decode without a type switch.
inline constexpr int kTraceFlagForeground = 1 << 0;
inline constexpr int kTraceFlagDirect = 1 << 1;
inline constexpr int kTraceFlagAnon = 1 << 2;
inline constexpr int kTraceFlagWrite = 1 << 3;
inline constexpr int kTraceFlagDropped = 1 << 4;
inline constexpr int kTraceFlagHot = 1 << 5;

// Stable lower_snake_case names, used by both exporters and by tests.
const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime ts = 0;
  TraceEventType type = TraceEventType::kReclaimBegin;
  uint8_t flags = 0;
  uint16_t core = 0;
  int32_t pid = -1;
  int32_t uid = -1;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

// Named argument pack for Tracer::Emit / ICE_TRACE call sites. Fields are
// `int`/`uint64_t` (not the compact TraceEvent types) so designated
// initializers with runtime expressions don't trip narrowing rules.
struct TraceArgs {
  int pid = -1;
  int uid = -1;
  int flags = 0;
  int core = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

}  // namespace ice

#endif  // SRC_TRACE_TRACE_EVENT_H_
