#include "src/trace/summary.h"

#include <sstream>

namespace ice {

TraceSummary SummarizeTrace(const Tracer& tracer) {
  TraceSummary s;
  s.enabled = true;
  s.emitted = tracer.emitted();
  s.dropped = tracer.dropped();
  s.retained = tracer.retained();
  for (size_t i = 0; i < kTraceEventTypeCount; ++i) {
    s.counts[i] = tracer.count(static_cast<TraceEventType>(i));
  }
  return s;
}

std::string TraceSummaryJson(const TraceSummary& summary) {
  std::ostringstream out;
  out << "{\"emitted\": " << summary.emitted << ", \"dropped\": " << summary.dropped
      << ", \"retained\": " << summary.retained << ", \"counts\": {";
  // The first 16 types predate this rule and are always present; types added
  // since appear only once observed, so traces from runs that never emit them
  // stay byte-identical to reports written before the type existed.
  constexpr size_t kAlwaysEmitted = 16;
  bool first = true;
  for (size_t i = 0; i < kTraceEventTypeCount; ++i) {
    if (i >= kAlwaysEmitted && summary.counts[i] == 0) {
      continue;
    }
    if (!first) {
      out << ", ";
    }
    first = false;
    out << "\"" << TraceEventTypeName(static_cast<TraceEventType>(i))
        << "\": " << summary.counts[i];
  }
  out << "}}";
  return out.str();
}

}  // namespace ice
