#include "src/trace/summary.h"

#include <sstream>

namespace ice {

TraceSummary SummarizeTrace(const Tracer& tracer) {
  TraceSummary s;
  s.enabled = true;
  s.emitted = tracer.emitted();
  s.dropped = tracer.dropped();
  s.retained = tracer.retained();
  for (size_t i = 0; i < kTraceEventTypeCount; ++i) {
    s.counts[i] = tracer.count(static_cast<TraceEventType>(i));
  }
  return s;
}

std::string TraceSummaryJson(const TraceSummary& summary) {
  std::ostringstream out;
  out << "{\"emitted\": " << summary.emitted << ", \"dropped\": " << summary.dropped
      << ", \"retained\": " << summary.retained << ", \"counts\": {";
  for (size_t i = 0; i < kTraceEventTypeCount; ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << "\"" << TraceEventTypeName(static_cast<TraceEventType>(i))
        << "\": " << summary.counts[i];
  }
  out << "}}";
  return out.str();
}

}  // namespace ice
