// Derived-counter trace summary: per-type event totals plus ring-buffer
// accounting, folded into ScenarioResult and the sweep_report JSON so grid
// runs carry their trace profile without shipping the full event stream.
#ifndef SRC_TRACE_SUMMARY_H_
#define SRC_TRACE_SUMMARY_H_

#include <cstdint>
#include <string>

#include "src/trace/tracer.h"

namespace ice {

struct TraceSummary {
  bool enabled = false;
  uint64_t emitted = 0;   // All events emitted over the experiment lifetime.
  uint64_t dropped = 0;   // Overwritten by ring-buffer overflow.
  uint64_t retained = 0;  // Still in the buffer (exportable).
  uint64_t counts[kTraceEventTypeCount] = {};  // Per-type emission totals.
};

TraceSummary SummarizeTrace(const Tracer& tracer);

// {"emitted": N, "dropped": N, "retained": N, "counts": {"reclaim_begin": N, ...}}
std::string TraceSummaryJson(const TraceSummary& summary);

}  // namespace ice

#endif  // SRC_TRACE_SUMMARY_H_
