// Chrome trace_event JSON exporter: loads in chrome://tracing and Perfetto.
//
// Layout: one synthetic "process" per subsystem so the interference chain
// reads top-to-bottom on one timeline —
//   pid 1 "cpu"     one track per core, sched slices named by task;
//   pid 2 "mem"     reclaim spans (kswapd vs direct tracks) + evict/refault/
//                   zram instants;
//   pid 3 "io"      async bio spans (submit -> complete), read/write, FG/BG;
//   pid 4 "frames"  async frame spans + deadline-miss instants;
//   pid 5 "ice"     frozen-app spans (freeze -> thaw), RPF triggers, MDT
//                   epochs (plus an E_f counter track).
// Timestamps are SimTime microseconds, which is exactly trace_event's "ts"
// unit — no conversion, no doubles, so the JSON is deterministic.
#ifndef SRC_TRACE_CHROME_EXPORT_H_
#define SRC_TRACE_CHROME_EXPORT_H_

#include <string>

#include "src/trace/tracer.h"

namespace ice {

std::string ChromeTraceJson(const Tracer& tracer);

// Writes ChromeTraceJson(tracer) to `path`, creating parent directories.
// Returns the path on success, "" on I/O failure.
std::string WriteChromeTrace(const std::string& path, const Tracer& tracer);

}  // namespace ice

#endif  // SRC_TRACE_CHROME_EXPORT_H_
