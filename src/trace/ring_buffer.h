// Fixed-capacity ring buffer of trace events, mirroring the per-CPU ftrace
// ring: when full, the oldest event is overwritten and a drop counter ticks —
// emission never allocates, fails, or corrupts newer events.
#ifndef SRC_TRACE_RING_BUFFER_H_
#define SRC_TRACE_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "src/trace/trace_event.h"

namespace ice {

class BinaryReader;
class BinaryWriter;

class TraceRingBuffer {
 public:
  explicit TraceRingBuffer(size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

  void Push(const TraceEvent& event) {
    size_t cap = buf_.size();
    if (size_ < cap) {
      buf_[(head_ + size_) % cap] = event;
      ++size_;
    } else {
      // Overwrite the oldest event.
      buf_[head_] = event;
      head_ = (head_ + 1) % cap;
      ++dropped_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  uint64_t dropped() const { return dropped_; }

  // Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    }
    return out;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  // Snapshot support (raw dump; TraceEvent is a fixed-size POD). Restore
  // requires an identically-sized buffer (same trace config).
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  std::vector<TraceEvent> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ice

#endif  // SRC_TRACE_RING_BUFFER_H_
