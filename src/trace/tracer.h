// Tracer: one per experiment, owning the event ring buffer, per-type totals
// and the task-name table for scheduler tracks. Deterministic by
// construction: timestamps are SimTime, ids are sequence counters, and every
// container iterates in a seed-independent order.
#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/trace/ring_buffer.h"
#include "src/trace/trace_event.h"

namespace ice {

// Ring capacity is configured in 4 KiB "buffer pages" like
// /sys/kernel/tracing/buffer_size_kb: events per page = page / sizeof(event).
inline constexpr uint32_t kDefaultTraceBufferPages = 1024;

constexpr size_t TraceEventsPerPage() { return kPageSize / sizeof(TraceEvent); }

class Tracer {
 public:
  explicit Tracer(uint32_t buffer_pages = kDefaultTraceBufferPages)
      : ring_(static_cast<size_t>(buffer_pages == 0 ? 1 : buffer_pages) *
              TraceEventsPerPage()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Emit(SimTime ts, TraceEventType type, TraceArgs args = {}) {
    TraceEvent e;
    e.ts = ts;
    e.type = type;
    e.flags = static_cast<uint8_t>(args.flags);
    e.core = static_cast<uint16_t>(args.core);
    e.pid = args.pid;
    e.uid = args.uid;
    e.arg0 = args.arg0;
    e.arg1 = args.arg1;
    ++emitted_;
    ++counts_[static_cast<size_t>(type)];
    ring_.Push(e);
  }

  // Scheduler task tracks: trace id -> display name (id 0 is reserved for
  // "idle"). Registration order is creation order, hence deterministic.
  void RegisterTaskName(uint64_t trace_id, const std::string& name) {
    task_names_[trace_id] = name;
  }
  const std::string& TaskName(uint64_t trace_id) const;
  const std::map<uint64_t, std::string>& task_names() const { return task_names_; }

  std::vector<TraceEvent> Events() const { return ring_.Snapshot(); }
  uint64_t emitted() const { return emitted_; }
  uint64_t dropped() const { return ring_.dropped(); }
  size_t retained() const { return ring_.size(); }
  size_t capacity_events() const { return ring_.capacity(); }
  uint64_t count(TraceEventType type) const {
    return counts_[static_cast<size_t>(type)];
  }

  // Canonical line-per-event text form; what the determinism tests compare
  // byte-for-byte between serial and parallel sweeps.
  std::string Serialize() const;

  // Snapshot support. The ring content, totals and task-name table are all
  // part of the deterministic state a forked cell must reproduce.
  void SaveTo(BinaryWriter& w) const;
  void RestoreFrom(BinaryReader& r);

 private:
  TraceRingBuffer ring_;
  uint64_t emitted_ = 0;
  uint64_t counts_[kTraceEventTypeCount] = {};
  std::map<uint64_t, std::string> task_names_;
};

}  // namespace ice

#endif  // SRC_TRACE_TRACER_H_
