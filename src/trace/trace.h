// ICE_TRACE — the tracepoint macro instrumented code uses.
//
//   ICE_TRACE(engine_, TraceEventType::kPageEvict,
//             {.uid = owner_uid, .flags = kTraceFlagAnon, .arg0 = vpn});
//
// The first argument is any expression yielding an Engine (the component's
// engine reference); the event is stamped with its current SimTime. When the
// engine has no tracer installed (tracing disabled — the default) the cost is
// one pointer load and branch. Building with -DICE_TRACE_DISABLED (CMake
// option ICE_TRACE_DISABLED) compiles the tracepoints out entirely.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include "src/sim/engine.h"
#include "src/trace/tracer.h"

#ifdef ICE_TRACE_DISABLED
#define ICE_TRACE(engine, ...) \
  do {                         \
  } while (0)
#else
// __VA_ARGS__ carries the event type plus an optional braced TraceArgs
// initializer; the preprocessor re-joins the designated initializers' commas.
#define ICE_TRACE(engine, ...)                              \
  do {                                                      \
    ::ice::Tracer* ice_trace_tracer_ = (engine).tracer();   \
    if (ice_trace_tracer_ != nullptr) {                     \
      ice_trace_tracer_->Emit((engine).now(), __VA_ARGS__); \
    }                                                       \
  } while (0)
#endif

#endif  // SRC_TRACE_TRACE_H_
