#include "src/trace/tracer.h"

#include <sstream>

namespace ice {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kReclaimBegin:
      return "reclaim_begin";
    case TraceEventType::kReclaimEnd:
      return "reclaim_end";
    case TraceEventType::kPageEvict:
      return "page_evict";
    case TraceEventType::kRefault:
      return "refault";
    case TraceEventType::kZramCompress:
      return "zram_compress";
    case TraceEventType::kZramDecompress:
      return "zram_decompress";
    case TraceEventType::kBioSubmit:
      return "bio_submit";
    case TraceEventType::kBioComplete:
      return "bio_complete";
    case TraceEventType::kSchedSwitch:
      return "sched_switch";
    case TraceEventType::kFreeze:
      return "freeze";
    case TraceEventType::kThaw:
      return "thaw";
    case TraceEventType::kRpfTrigger:
      return "rpf_trigger";
    case TraceEventType::kMdtEpoch:
      return "mdt_epoch";
    case TraceEventType::kFrameBegin:
      return "frame_begin";
    case TraceEventType::kFrameEnd:
      return "frame_end";
    case TraceEventType::kFrameDeadlineMiss:
      return "frame_deadline_miss";
  }
  return "unknown";
}

const std::string& Tracer::TaskName(uint64_t trace_id) const {
  static const std::string kIdle = "idle";
  static const std::string kUnknown = "task";
  if (trace_id == 0) {
    return kIdle;
  }
  auto it = task_names_.find(trace_id);
  return it == task_names_.end() ? kUnknown : it->second;
}

std::string Tracer::Serialize() const {
  std::ostringstream out;
  for (const TraceEvent& e : ring_.Snapshot()) {
    out << e.ts << ' ' << TraceEventTypeName(e.type) << " flags=" << int{e.flags}
        << " core=" << e.core << " pid=" << e.pid << " uid=" << e.uid
        << " arg0=" << e.arg0 << " arg1=" << e.arg1 << '\n';
  }
  out << "emitted=" << emitted_ << " dropped=" << ring_.dropped() << '\n';
  return out.str();
}

}  // namespace ice
