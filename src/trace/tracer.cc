#include "src/trace/tracer.h"

#include <sstream>
#include <type_traits>

#include "src/base/binary_stream.h"
#include "src/base/log.h"

namespace ice {

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay raw-dumpable for snapshots");

void TraceRingBuffer::SaveTo(BinaryWriter& w) const {
  w.U64(buf_.size());
  w.U64(head_);
  w.U64(size_);
  w.U64(dropped_);
  w.Bytes(buf_.data(), buf_.size() * sizeof(TraceEvent));
}

void TraceRingBuffer::RestoreFrom(BinaryReader& r) {
  uint64_t capacity = r.U64();
  ICE_CHECK_EQ(capacity, buf_.size()) << "trace buffer size mismatch";
  head_ = r.U64();
  size_ = r.U64();
  dropped_ = r.U64();
  r.Bytes(buf_.data(), buf_.size() * sizeof(TraceEvent));
}

void Tracer::SaveTo(BinaryWriter& w) const {
  ring_.SaveTo(w);
  w.U64(emitted_);
  for (uint64_t c : counts_) {
    w.U64(c);
  }
  w.U64(task_names_.size());
  for (const auto& [id, name] : task_names_) {
    w.U64(id);
    w.Str(name);
  }
}

void Tracer::RestoreFrom(BinaryReader& r) {
  ring_.RestoreFrom(r);
  emitted_ = r.U64();
  for (uint64_t& c : counts_) {
    c = r.U64();
  }
  task_names_.clear();
  uint64_t names = r.U64();
  for (uint64_t i = 0; i < names; ++i) {
    uint64_t id = r.U64();
    task_names_[id] = r.Str();
  }
}

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kReclaimBegin:
      return "reclaim_begin";
    case TraceEventType::kReclaimEnd:
      return "reclaim_end";
    case TraceEventType::kPageEvict:
      return "page_evict";
    case TraceEventType::kRefault:
      return "refault";
    case TraceEventType::kZramCompress:
      return "zram_compress";
    case TraceEventType::kZramDecompress:
      return "zram_decompress";
    case TraceEventType::kBioSubmit:
      return "bio_submit";
    case TraceEventType::kBioComplete:
      return "bio_complete";
    case TraceEventType::kSchedSwitch:
      return "sched_switch";
    case TraceEventType::kFreeze:
      return "freeze";
    case TraceEventType::kThaw:
      return "thaw";
    case TraceEventType::kRpfTrigger:
      return "rpf_trigger";
    case TraceEventType::kMdtEpoch:
      return "mdt_epoch";
    case TraceEventType::kFrameBegin:
      return "frame_begin";
    case TraceEventType::kFrameEnd:
      return "frame_end";
    case TraceEventType::kFrameDeadlineMiss:
      return "frame_deadline_miss";
    case TraceEventType::kZramReject:
      return "zram_reject";
    case TraceEventType::kZramWriteback:
      return "zram_writeback";
  }
  return "unknown";
}

const std::string& Tracer::TaskName(uint64_t trace_id) const {
  static const std::string kIdle = "idle";
  static const std::string kUnknown = "task";
  if (trace_id == 0) {
    return kIdle;
  }
  auto it = task_names_.find(trace_id);
  return it == task_names_.end() ? kUnknown : it->second;
}

std::string Tracer::Serialize() const {
  std::ostringstream out;
  for (const TraceEvent& e : ring_.Snapshot()) {
    out << e.ts << ' ' << TraceEventTypeName(e.type) << " flags=" << int{e.flags}
        << " core=" << e.core << " pid=" << e.pid << " uid=" << e.uid
        << " arg0=" << e.arg0 << " arg1=" << e.arg1 << '\n';
  }
  out << "emitted=" << emitted_ << " dropped=" << ring_.dropped() << '\n';
  return out.str();
}

}  // namespace ice
