// Figure 9: FPS and RIA vs the number of cached BG apps ("F", "2B+F", ...)
// with and without Ice, on both devices. Paper: at full pressure Ice gives
// 1.57x FPS on Pixel3 (6B+F) and 1.44x on P20 (8B+F); RIA drops by 32.7 /
// 34.6 percentage points.
//
// One parallel sweep per device (the BG-count axis differs between them);
// raw cells land in results/fig9_bg_scaling_<device>.json.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Figure 9: FPS/RIA vs number of BG apps, LRU+CFS vs Ice");
  int rounds = BenchRounds(2);
  SweepRunner runner;

  for (const DeviceProfile& device : {Pixel3Profile(), P20Profile()}) {
    SweepAxes axes;
    axes.devices = {device};
    axes.schemes = {"lru_cfs", "ice"};
    axes.scenarios = {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                      ScenarioKind::kScrolling, ScenarioKind::kGame};
    for (int bg = 0; bg <= device.full_pressure_bg_apps; bg += 2) {
      axes.bg_counts.push_back(bg);
    }
    axes.seeds = RoundSeeds(rounds);

    std::vector<SweepCell> cells = axes.Cells();
    std::printf("\n--- %s (%zu cells on %d workers) ---\n", device.name.c_str(),
                cells.size(), runner.jobs());
    std::vector<CellOutcome> outcomes = runner.Run(cells);
    WriteSweepReport("fig9_bg_scaling_" + device.name, runner.jobs(), cells, outcomes);

    Table table({"config", "LRU+CFS fps", "Ice fps", "Ice/LRU", "LRU RIA", "Ice RIA"});
    for (size_t b = 0; b < axes.bg_counts.size(); ++b) {
      // Scenario average over the four scenarios, like the paper.
      double lru_fps = 0, ice_fps = 0, lru_ria = 0, ice_ria = 0;
      for (size_t c = 0; c < axes.scenarios.size(); ++c) {
        ScenarioAverages lru = AverageSeeds(axes, outcomes, 0, 0, c, b);
        ScenarioAverages ice_avg = AverageSeeds(axes, outcomes, 0, 1, c, b);
        lru_fps += lru.fps;
        ice_fps += ice_avg.fps;
        lru_ria += lru.ria;
        ice_ria += ice_avg.ria;
      }
      lru_fps /= 4;
      ice_fps /= 4;
      lru_ria /= 4;
      ice_ria /= 4;
      int bg = axes.bg_counts[b];
      std::string label = bg == 0 ? "F" : std::to_string(bg) + "B+F";
      table.AddRow({label, Table::Num(lru_fps), Table::Num(ice_fps),
                    Table::Num(lru_fps > 0 ? ice_fps / lru_fps : 0, 2) + "x",
                    Table::Pct(lru_ria, 0), Table::Pct(ice_ria, 0)});
    }
    table.Print();
  }
  std::printf("\nPaper: curves coincide at F and 2B+F, diverge as BG apps grow;\n"
              "Ice 1.57x (Pixel3, 6B+F) and 1.44x (P20, 8B+F).\n");
  return 0;
}
