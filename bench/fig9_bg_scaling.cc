// Figure 9: FPS and RIA vs the number of cached BG apps ("F", "2B+F", ...)
// with and without Ice, on both devices. Paper: at full pressure Ice gives
// 1.57x FPS on Pixel3 (6B+F) and 1.44x on P20 (8B+F); RIA drops by 32.7 /
// 34.6 percentage points.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Figure 9: FPS/RIA vs number of BG apps, LRU+CFS vs Ice");
  int rounds = BenchRounds(2);

  for (const DeviceProfile& device : {Pixel3Profile(), P20Profile()}) {
    std::printf("\n--- %s ---\n", device.name.c_str());
    Table table({"config", "LRU+CFS fps", "Ice fps", "Ice/LRU", "LRU RIA", "Ice RIA"});
    int max_bg = device.full_pressure_bg_apps;
    for (int bg = 0; bg <= max_bg; bg += 2) {
      // Scenario average over the four scenarios, like the paper.
      double lru_fps = 0, ice_fps = 0, lru_ria = 0, ice_ria = 0;
      for (ScenarioKind kind : {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                                ScenarioKind::kScrolling, ScenarioKind::kGame}) {
        ScenarioAverages lru = RunScenarioRounds(device, "lru_cfs", kind, bg, rounds);
        ScenarioAverages ice_avg = RunScenarioRounds(device, "ice", kind, bg, rounds);
        lru_fps += lru.fps;
        ice_fps += ice_avg.fps;
        lru_ria += lru.ria;
        ice_ria += ice_avg.ria;
      }
      lru_fps /= 4;
      ice_fps /= 4;
      lru_ria /= 4;
      ice_ria /= 4;
      std::string label = bg == 0 ? "F" : std::to_string(bg) + "B+F";
      table.AddRow({label, Table::Num(lru_fps), Table::Num(ice_fps),
                    Table::Num(lru_fps > 0 ? ice_fps / lru_fps : 0, 2) + "x",
                    Table::Pct(lru_ria, 0), Table::Pct(ice_ria, 0)});
    }
    table.Print();
  }
  std::printf("\nPaper: curves coincide at F and 2B+F, diverge as BG apps grow;\n"
              "Ice 1.57x (Pixel3, 6B+F) and 1.44x (P20, 8B+F).\n");
  return 0;
}
