// Related-work ablation: FastTrack-style foreground-priority I/O (Hahn et
// al., ATC'18 — the paper's reference [30] for priority inversion). FG-first
// dispatch at the block layer fixes the I/O half of the inversion but not
// the reclaim half; ICE removes the cause instead. Comparing stock LRU+CFS,
// LRU+CFS with FG-priority I/O, and Ice.
//
// The scheme x seed grid runs as one parallel sweep via SweepRunner::Map
// (the cell body is custom — it also samples the block device's FG latency,
// which ScenarioResult does not carry).
#include "bench/bench_util.h"

using namespace ice;

namespace {

// LRU+CFS plus foreground-priority I/O dispatch.
class FastTrackIoScheme : public Scheme {
 public:
  std::string name() const override { return "FG-prio I/O"; }
  void Install(const SystemRefs& refs) override {
    refs.storage->set_fg_priority(true);
  }
};

struct IoOutcome {
  ScenarioResult result;
  double fg_latency_us = 0.0;
};

IoOutcome RunIoCell(const std::string& scheme, uint64_t seed) {
  ExperimentConfig config;
  config.device = Pixel3Profile();
  config.scheme = scheme;
  config.seed = seed;
  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kGame));
  exp.CacheBackgroundApps(6, {fg});
  IoOutcome out;
  out.result = exp.RunScenario(ScenarioKind::kGame, Sec(30));
  out.fg_latency_us = exp.storage().fg_mean_latency_us();
  return out;
}

}  // namespace

int main() {
  PrintSection("Ablation: FastTrack-style FG-priority I/O vs Ice (S-D on Pixel3/eMMC)");
  RegisterIceScheme();
  SchemeRegistry::Instance().Register(
      "fasttrack_io", []() { return std::make_unique<FastTrackIoScheme>(); });

  int rounds = BenchRounds(3);
  std::vector<uint64_t> seeds = RoundSeeds(rounds, 61000, 104729);
  const std::vector<std::string> kSchemes = {"lru_cfs", "fasttrack_io", "ice"};

  SweepRunner runner;
  std::printf("running %zu cells on %d workers\n", kSchemes.size() * seeds.size(),
              runner.jobs());
  // Scheme-major, seed-minor flat grid.
  auto outcomes = runner.Map<IoOutcome>(kSchemes.size() * seeds.size(), [&](size_t i) {
    return RunIoCell(kSchemes[i / seeds.size()], seeds[i % seeds.size()]);
  });

  Table table({"scheme", "fps", "RIA", "refaults", "FG I/O mean latency"});
  for (size_t s = 0; s < kSchemes.size(); ++s) {
    double fps = 0, ria = 0, rf = 0, fg_lat = 0;
    for (size_t r = 0; r < seeds.size(); ++r) {
      const auto& o = outcomes[s * seeds.size() + r];
      ICE_CHECK(o.ok) << "cell failed: " << o.error;
      fps += o.value.result.avg_fps / static_cast<double>(seeds.size());
      ria += o.value.result.ria / static_cast<double>(seeds.size());
      rf += static_cast<double>(o.value.result.refaults) / static_cast<double>(seeds.size());
      fg_lat += o.value.fg_latency_us / static_cast<double>(seeds.size());
    }
    table.AddRow({kSchemes[s], Table::Num(fps), Table::Pct(ria, 0), Table::Num(rf, 0),
                  Table::Num(fg_lat, 0) + " us"});
  }
  table.Print();
  std::printf("\nFinding: block-layer FG priority only matters when the device queue\n"
              "actually backs up (shallow-QD eMMC under heavy churn); the dominant\n"
              "stalls live in the reclaim path, which only Ice removes.\n");
  return 0;
}
