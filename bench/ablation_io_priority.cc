// Related-work ablation: FastTrack-style foreground-priority I/O (Hahn et
// al., ATC'18 — the paper's reference [30] for priority inversion). FG-first
// dispatch at the block layer fixes the I/O half of the inversion but not
// the reclaim half; ICE removes the cause instead. Comparing stock LRU+CFS,
// LRU+CFS with FG-priority I/O, and Ice.
#include "bench/bench_util.h"

using namespace ice;

namespace {

// LRU+CFS plus foreground-priority I/O dispatch.
class FastTrackIoScheme : public Scheme {
 public:
  std::string name() const override { return "FG-prio I/O"; }
  void Install(const SystemRefs& refs) override {
    refs.storage->set_fg_priority(true);
  }
};

}  // namespace

int main() {
  PrintSection("Ablation: FastTrack-style FG-priority I/O vs Ice (S-D on Pixel3/eMMC)");
  RegisterIceScheme();
  SchemeRegistry::Instance().Register(
      "fasttrack_io", []() { return std::make_unique<FastTrackIoScheme>(); });

  int rounds = BenchRounds(3);
  Table table({"scheme", "fps", "RIA", "refaults", "FG I/O mean latency"});
  for (const char* scheme : {"lru_cfs", "fasttrack_io", "ice"}) {
    double fps = 0, ria = 0, rf = 0, fg_lat = 0;
    for (int round = 0; round < rounds; ++round) {
      ExperimentConfig config;
      config.device = Pixel3Profile();
      config.scheme = scheme;
      config.seed = 61000 + static_cast<uint64_t>(round) * 104729;
      Experiment exp(config);
      Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kGame));
      exp.CacheBackgroundApps(6, {fg});
      ScenarioResult r = exp.RunScenario(ScenarioKind::kGame, Sec(30));
      fps += r.avg_fps / rounds;
      ria += r.ria / rounds;
      rf += static_cast<double>(r.refaults) / rounds;
      fg_lat += exp.storage().fg_mean_latency_us() / rounds;
    }
    table.AddRow({scheme, Table::Num(fps), Table::Pct(ria, 0), Table::Num(rf, 0),
                  Table::Num(fg_lat, 0) + " us"});
  }
  table.Print();
  std::printf("\nFinding: block-layer FG priority only matters when the device queue\n"
              "actually backs up (shallow-QD eMMC under heavy churn); the dominant\n"
              "stalls live in the reclaim path, which only Ice removes.\n");
  return 0;
}
