// Swap-policy hot-path microbenchmarks: the hotness counter packed into the
// PageInfo flag word (bits 12-14, riding the record the fault/reclaim paths
// already touch) against the side-table a naive implementation would use —
// a {page handle -> counter} hash map maintained next to the page records.
//
// The side-table variant is reproduced in-file with identical decision
// semantics (same thresholds, same boost/decay schedule, entries erased when
// they decay to zero the way a sparse table must) so the comparison stays
// runnable as the packed implementation evolves. Working sets are sized past
// the LLC (256k-1M pages) because the win is locality: the packed bits are
// free bits of a line the caller has already loaded, while the map costs a
// hash, a probe chain, and a second cache line per page — plus node churn
// on the erase/insert cycle every boost-from-zero implies.
//
// Set ICE_BENCH_ITERS to pin the iteration count (CI smoke runs do, so the
// artifact is comparable across machines in shape even when not in time).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/mem/page.h"
#include "src/swap/governor.h"
#include "src/swap/swap_policy.h"

namespace ice {
namespace {

void ApplyIters(benchmark::internal::Benchmark* b) {
  if (const char* iters = std::getenv("ICE_BENCH_ITERS")) {
    long long n = std::strtoll(iters, nullptr, 10);
    if (n > 0) {
      b->Iterations(n);
    }
  }
}

SwapConfig HotnessConfig() {
  SwapConfig config;
  config.policy = SwapPolicy::kHotness;
  return config;
}

// ---------------------------------------------------------------------------
// The naive alternative: hotness in a handle-keyed hash map beside the page
// records. Every query hashes and probes; a counter that decays to zero is
// erased (a sparse table that never shrank would grow monotonically), so the
// steady-state boost/decay cycle also churns map nodes.
// ---------------------------------------------------------------------------

class SideTableHotness {
 public:
  explicit SideTableHotness(const SwapConfig& config) : config_(config) {}

  uint8_t Get(uint64_t handle) const {
    auto it = table_.find(handle);
    return it == table_.end() ? 0 : it->second;
  }
  bool ShouldReject(uint64_t handle) const {
    return Get(handle) >= config_.hot_reject_threshold;
  }
  bool UseDenseTier(uint64_t handle) const {
    return Get(handle) < config_.fast_tier_min_hotness;
  }
  void Boost(uint64_t handle) {
    uint8_t& h = table_[handle];
    unsigned next = h + config_.refault_hotness_boost;
    h = static_cast<uint8_t>(next > 7 ? 7 : next);
  }
  void DecayOnStore(uint64_t handle) {
    auto it = table_.find(handle);
    if (it == table_.end()) {
      return;
    }
    it->second = static_cast<uint8_t>(it->second >> 1);
    if (it->second == 0) {
      table_.erase(it);
    }
  }

 private:
  SwapConfig config_;
  std::unordered_map<uint64_t, uint8_t> table_;
};

struct SideTableFixture {
  explicit SideTableFixture(uint32_t pages)
      : arena(pages), book(HotnessConfig()) {
    for (uint32_t i = 0; i < pages; ++i) {
      arena[i].vpn = i;
      arena[i].set_kind(HeapKind::kNativeHeap);
      arena[i].set_state(PageState::kPresent);
    }
  }
  uint64_t HandleOf(uint32_t vpn) const { return PageHandle(0, vpn).packed; }

  bool Reject(uint32_t vpn) const { return book.ShouldReject(HandleOf(vpn)); }
  bool Dense(uint32_t vpn) const { return book.UseDenseTier(HandleOf(vpn)); }
  void Boost(uint32_t vpn) { book.Boost(HandleOf(vpn)); }
  void Decay(uint32_t vpn) { book.DecayOnStore(HandleOf(vpn)); }

  std::vector<PageInfo> arena;
  SideTableHotness book;
};

// The shipped implementation: SwapGovernor decisions over the counter bits
// in the page record itself.
struct PackedFixture {
  explicit PackedFixture(uint32_t pages) : arena(pages), gov(HotnessConfig()) {
    for (uint32_t i = 0; i < pages; ++i) {
      arena[i].vpn = i;
      arena[i].set_kind(HeapKind::kNativeHeap);
      arena[i].set_state(PageState::kPresent);
    }
  }
  bool Reject(uint32_t vpn) const { return gov.ShouldReject(arena[vpn]); }
  bool Dense(uint32_t vpn) const { return gov.UseDenseTier(arena[vpn]); }
  void Boost(uint32_t vpn) { gov.OnRefault(&arena[vpn]); }
  void Decay(uint32_t vpn) {
    PageInfo& p = arena[vpn];
    p.set_hotness(static_cast<uint8_t>(p.hotness() >> 1));
  }

  std::vector<PageInfo> arena;
  SwapGovernor gov;
};

// ---------------------------------------------------------------------------
// Admission decision path: a reclaim batch asks ShouldReject + UseDenseTier
// for 32 random victims — the questions EvictPage puts to the governor for
// every isolated anonymous page. The packed read is bits of the record the
// eviction is about to rewrite anyway; the side table pays a hash+probe per
// question. A third of the population is pre-warmed so both branches of the
// decision are live.
// ---------------------------------------------------------------------------

constexpr uint32_t kBatch = 32;

template <class Fixture>
void AdmissionBatch(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  Fixture fix(pages);
  Rng warm_rng(7);
  for (uint32_t i = 0; i < pages / 3; ++i) {
    fix.Boost(warm_rng.Below(pages));  // One boost: below the fast tier...
  }
  for (uint32_t i = 0; i < pages / 16; ++i) {
    uint32_t vpn = warm_rng.Below(pages);
    fix.Boost(vpn);  // ...a second pushes toward the reject threshold.
    fix.Boost(vpn);
  }
  Rng rng(21);
  uint64_t rejected = 0;
  uint64_t dense = 0;
  for (auto _ : state) {
    for (uint32_t i = 0; i < kBatch; ++i) {
      uint32_t vpn = rng.Below(pages);
      if (fix.Reject(vpn)) {
        ++rejected;
        continue;
      }
      if (fix.Dense(vpn)) {
        ++dense;
      }
    }
  }
  benchmark::DoNotOptimize(rejected);
  benchmark::DoNotOptimize(dense);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_SideTableAdmission(benchmark::State& state) {
  AdmissionBatch<SideTableFixture>(state);
}
void BM_PackedAdmission(benchmark::State& state) {
  AdmissionBatch<PackedFixture>(state);
}
BENCHMARK(BM_SideTableAdmission)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_PackedAdmission)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Hotness update churn: the full counter lifecycle a thrashing page drives —
// refault boost, admission question, store decay — for a 32-page batch per
// iteration. This is the write side: the side table churns nodes (boost
// creates entries, decay-to-zero erases them), the packed bits rewrite a
// half-word in place.
// ---------------------------------------------------------------------------

template <class Fixture>
void HotnessChurn(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  Fixture fix(pages);
  Rng rng(22);
  uint64_t rejected = 0;
  for (auto _ : state) {
    for (uint32_t i = 0; i < kBatch; ++i) {
      uint32_t vpn = rng.Below(pages);
      fix.Boost(vpn);             // The page refaulted...
      if (fix.Reject(vpn)) {      // ...reclaim catches up with it...
        ++rejected;
        continue;
      }
      benchmark::DoNotOptimize(fix.Dense(vpn));
      fix.Decay(vpn);             // ...and it is stored again.
    }
  }
  benchmark::DoNotOptimize(rejected);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_SideTableHotnessChurn(benchmark::State& state) {
  HotnessChurn<SideTableFixture>(state);
}
void BM_PackedHotnessChurn(benchmark::State& state) {
  HotnessChurn<PackedFixture>(state);
}
BENCHMARK(BM_SideTableHotnessChurn)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_PackedHotnessChurn)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
