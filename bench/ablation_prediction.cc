// Extension ablation (§6.3.1): prediction-assisted pre-thawing. The paper's
// worst case — a frozen, fully-reclaimed app hot-launched — costs ~2x a
// normal hot launch; with a usage predictor, ICE thaws the likely next app
// ahead of time and hides the penalty.
#include "bench/bench_util.h"
#include "src/ice/daemon.h"

using namespace ice;

namespace {

double MeasureHotLaunchMs(bool enable_prediction, bool reclaim_all, int pairs) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.scheme = "ice";
  config.ice.enable_prediction = enable_prediction;
  config.seed = 51000;
  Experiment exp(config);

  Uid a = exp.UidOf("Twitter");
  Uid b = exp.UidOf("Amazon");
  // Teach the alternation a <-> b.
  for (int i = 0; i < 3; ++i) {
    exp.am().Launch(a);
    exp.AwaitInteractive(a);
    exp.am().Launch(b);
    exp.AwaitInteractive(b);
  }
  // Create pressure so cached apps get frozen and reclaimed.
  exp.CacheBackgroundApps(6, {a, b});
  exp.RunScenarioForApp(a, ScenarioKind::kScrolling, Sec(10), Sec(60));

  double total_ms = 0;
  int measured = 0;
  for (int i = 0; i < pairs; ++i) {
    // Freeze + fully reclaim b (the worst case of §6.3.1), then follow the
    // learned pattern: a -> b.
    App* app_b = exp.am().FindApp(b);
    if (app_b == nullptr || !app_b->running()) {
      break;
    }
    if (reclaim_all) {
      exp.mm().ReclaimAllOf(exp.am().main_process(b)->space());
    }
    exp.freezer().FreezeApp(*app_b);
    exp.am().Launch(a);  // Predicted next is b: pre-thawed if enabled.
    exp.AwaitInteractive(a);
    // The pre-thawed app gets to run in the background: its own activity
    // restores its working set before the user switches (the paper's point).
    // Without prediction it stays frozen and cold for the same interval.
    exp.engine().RunFor(Sec(25));

    size_t idx = exp.am().launches().size();
    exp.am().Launch(b);
    exp.AwaitInteractive(b, Sec(30));
    const LaunchRecord& r = exp.am().launches()[idx];
    if (r.completed && !r.cold) {
      total_ms += ToMilliseconds(r.latency);
      ++measured;
    }
    exp.engine().RunFor(Sec(2));
  }
  return measured > 0 ? total_ms / measured : 0.0;
}

}  // namespace

int main() {
  PrintSection("Extension ablation: prediction-assisted pre-thawing (§6.3.1)");
  int pairs = BenchRounds(4);
  // The four (prediction, reclaim_all) variants are independent experiments:
  // fan them out on the sweep pool. Variant order: (F,F) (T,F) (F,T) (T,T).
  const bool kVariants[][2] = {{false, false}, {true, false}, {false, true}, {true, true}};
  SweepRunner runner;
  auto outcomes = runner.Map<double>(4, [&](size_t i) {
    return MeasureHotLaunchMs(kVariants[i][0], kVariants[i][1], pairs);
  });
  for (const auto& o : outcomes) {
    ICE_CHECK(o.ok) << "variant failed: " << o.error;
  }
  double frozen_base = outcomes[0].value;
  double frozen_pred = outcomes[1].value;
  double worst_base = outcomes[2].value;
  double worst_pred = outcomes[3].value;

  Table table({"case", "Ice (ms)", "Ice + Markov pre-thaw (ms)", "saved"});
  table.AddRow({"frozen app", Table::Num(frozen_base, 0), Table::Num(frozen_pred, 0),
                Table::Pct(frozen_base > 0 ? (frozen_base - frozen_pred) / frozen_base : 0)});
  table.AddRow({"frozen + fully reclaimed (worst case)", Table::Num(worst_base, 0),
                Table::Num(worst_pred, 0),
                Table::Pct(worst_base > 0 ? (worst_base - worst_pred) / worst_base : 0)});
  table.Print();
  std::printf(
      "\nPaper (§6.3.1): the frozen worst case is 1.98x a normal hot launch and\n"
      "\"can be further eliminated... with application prediction\". Measured:\n"
      "pre-thawing removes the thaw latency and lets the app partially restore\n"
      "itself; the remaining worst-case cost is the bulk page restore, which\n"
      "prediction alone cannot hide.\n");
  return 0;
}
