// Section 6.2.2: I/O and CPU pressure reduction. Paper: over a long mixed
// run, Ice reduces I/O volume by 9.2% and CPU utilization from 55.8% to
// 47.3% vs LRU+CFS.
#include "bench/bench_util.h"

using namespace ice;

namespace {

struct LongRunResult {
  double io_bytes = 0;
  double io_requests = 0;
  double cpu_util = 0;
};

LongRunResult RunLong(const std::string& scheme, int round) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.scheme = scheme;
  config.seed = 22000 + static_cast<uint64_t>(round) * 104729;
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  exp.CacheBackgroundApps(8, {fg});

  auto before = exp.engine().stats().Snapshot();
  uint64_t busy_before = exp.scheduler().busy_us();
  uint64_t cap_before = exp.scheduler().capacity_us();

  // A long mixed session: all four scenarios back to back (the paper
  // aggregates ten rounds of the four scenarios, 5.5 h; we compress).
  for (ScenarioKind kind : {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                            ScenarioKind::kScrolling, ScenarioKind::kGame}) {
    exp.RunScenario(kind, Sec(45), Sec(90));
  }

  auto d = StatsRegistry::Diff(before, exp.engine().stats().Snapshot());
  LongRunResult result;
  result.io_bytes =
      static_cast<double>(d[stat::kIoReadBytes]) + static_cast<double>(d[stat::kIoWriteBytes]);
  result.io_requests =
      static_cast<double>(d[stat::kIoReads]) + static_cast<double>(d[stat::kIoWrites]);
  uint64_t cap = exp.scheduler().capacity_us() - cap_before;
  result.cpu_util =
      cap > 0 ? static_cast<double>(exp.scheduler().busy_us() - busy_before) / cap : 0.0;
  return result;
}

}  // namespace

int main() {
  PrintSection("Section 6.2.2: I/O and CPU pressure, LRU+CFS vs Ice (long mixed run)");
  int rounds = BenchRounds(2);
  LongRunResult lru{}, ice_r{};
  for (int round = 0; round < rounds; ++round) {
    LongRunResult a = RunLong("lru_cfs", round);
    LongRunResult b = RunLong("ice", round);
    lru.io_bytes += a.io_bytes / rounds;
    lru.io_requests += a.io_requests / rounds;
    lru.cpu_util += a.cpu_util / rounds;
    ice_r.io_bytes += b.io_bytes / rounds;
    ice_r.io_requests += b.io_requests / rounds;
    ice_r.cpu_util += b.cpu_util / rounds;
  }

  Table table({"metric", "paper", "measured LRU+CFS", "measured Ice", "measured change"});
  double io_change = lru.io_bytes > 0 ? (ice_r.io_bytes - lru.io_bytes) / lru.io_bytes : 0.0;
  table.AddRow({"I/O volume", "-9.2% with Ice", Table::Num(lru.io_bytes / kMiB, 1) + " MiB",
                Table::Num(ice_r.io_bytes / kMiB, 1) + " MiB", Table::Pct(io_change)});
  table.AddRow({"CPU utilization", "55.8% -> 47.3%", Table::Pct(lru.cpu_util),
                Table::Pct(ice_r.cpu_util),
                Table::Num((ice_r.cpu_util - lru.cpu_util) * 100.0, 1) + " pp"});
  table.Print();
  std::printf("\nShape check: Ice reduces both senseless refault I/O and the CPU burned\n"
              "on compression/decompression and reclaim scans.\n");
  return 0;
}
