// Ablation (§4.3): MDT's dynamic, memory-aware freezing intensity.
//  * delta sweep: how the weight coefficient trades refault suppression
//    against how long apps stay inhibited;
//  * static-vs-dynamic: a fixed freeze duration (power-manager style)
//    versus Eq. 1's pressure-adaptive E_f.
#include "bench/bench_util.h"
#include "src/ice/daemon.h"

using namespace ice;

namespace {

struct MdtOutcome {
  double fps = 0;
  double refaults_bg = 0;
  double thaws = 0;
};

MdtOutcome RunMdt(double delta, SimDuration min_freeze, SimDuration max_freeze, int rounds) {
  MdtOutcome out;
  for (int round = 0; round < rounds; ++round) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.scheme = "ice";
    config.ice.delta = delta;
    config.ice.min_freeze = min_freeze;
    config.ice.max_freeze = max_freeze;
    config.seed = 43000 + static_cast<uint64_t>(round) * 104729;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kShortVideo));
    exp.CacheBackgroundApps(8, {fg});
    ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30));
    out.fps += r.avg_fps / rounds;
    out.refaults_bg += static_cast<double>(r.refaults_bg) / rounds;
    out.thaws += static_cast<double>(r.thaws) / rounds;
  }
  return out;
}

}  // namespace

int main() {
  int rounds = BenchRounds(2);

  PrintSection("MDT ablation 1: delta sweep (Table 4 default: 8.0)");
  Table sweep({"delta", "fps", "BG refaults", "thaw ops"});
  for (double delta : {1.0, 4.0, 8.0, 16.0}) {
    MdtOutcome out = RunMdt(delta, Sec(1), Sec(64), rounds);
    sweep.AddRow({Table::Num(delta, 1), Table::Num(out.fps), Table::Num(out.refaults_bg, 0),
                  Table::Num(out.thaws, 1)});
  }
  sweep.Print();
  std::printf("\nLarger delta => longer freeze periods => fewer thaw windows and fewer\n"
              "BG refaults, at the cost of BG staleness.\n");

  PrintSection("MDT ablation 2: static freeze duration vs Eq. 1 dynamic");
  Table mode({"mode", "fps", "BG refaults", "thaw ops"});
  // Static: clamp min == max so E_f never adapts (power-manager style).
  MdtOutcome static_short = RunMdt(8.0, Sec(4), Sec(4), rounds);
  MdtOutcome static_long = RunMdt(8.0, Sec(64), Sec(64), rounds);
  MdtOutcome dynamic = RunMdt(8.0, Sec(1), Sec(64), rounds);
  mode.AddRow({"static E_f = 4 s", Table::Num(static_short.fps),
               Table::Num(static_short.refaults_bg, 0), Table::Num(static_short.thaws, 1)});
  mode.AddRow({"static E_f = 64 s", Table::Num(static_long.fps),
               Table::Num(static_long.refaults_bg, 0), Table::Num(static_long.thaws, 1)});
  mode.AddRow({"dynamic (Eq. 1)", Table::Num(dynamic.fps),
               Table::Num(dynamic.refaults_bg, 0), Table::Num(dynamic.thaws, 1)});
  mode.Print();
  std::printf("\nThe paper's design point: intensity should rise with memory pressure\n"
              "(Eq. 1), matching the long-static variant under pressure while\n"
              "releasing apps sooner when pressure relaxes.\n");
  return 0;
}
