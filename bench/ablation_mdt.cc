// Ablation (§4.3): MDT's dynamic, memory-aware freezing intensity.
//  * delta sweep: how the weight coefficient trades refault suppression
//    against how long apps stay inhibited;
//  * static-vs-dynamic: a fixed freeze duration (power-manager style)
//    versus Eq. 1's pressure-adaptive E_f.
//
// All seven MDT variants x seeds run as one parallel sweep; raw cells land
// in results/ablation_mdt.json.
#include "bench/bench_util.h"
#include "src/ice/daemon.h"

using namespace ice;

namespace {

struct MdtVariant {
  double delta;
  SimDuration min_freeze;
  SimDuration max_freeze;
};

}  // namespace

int main() {
  int rounds = BenchRounds(2);
  std::vector<uint64_t> seeds = RoundSeeds(rounds, 43000, 104729);

  // Variants 0-3: the delta sweep; 4-6: static short, static long, dynamic.
  const MdtVariant kVariants[] = {
      {1.0, Sec(1), Sec(64)},  {4.0, Sec(1), Sec(64)},  {8.0, Sec(1), Sec(64)},
      {16.0, Sec(1), Sec(64)}, {8.0, Sec(4), Sec(4)},   {8.0, Sec(64), Sec(64)},
      {8.0, Sec(1), Sec(64)},
  };
  const size_t kNumVariants = sizeof(kVariants) / sizeof(kVariants[0]);

  std::vector<SweepCell> cells;
  for (const MdtVariant& v : kVariants) {
    for (uint64_t seed : seeds) {
      SweepCell cell;
      cell.config.device = P20Profile();
      cell.config.scheme = "ice";
      cell.config.ice.delta = v.delta;
      cell.config.ice.min_freeze = v.min_freeze;
      cell.config.ice.max_freeze = v.max_freeze;
      cell.config.seed = seed;
      cell.scenario = ScenarioKind::kShortVideo;
      cell.bg_apps = 8;
      cell.duration = Sec(30);
      cells.push_back(cell);
    }
  }

  SweepRunner runner;
  std::printf("running %zu cells on %d workers\n", cells.size(), runner.jobs());
  std::vector<CellOutcome> outcomes = runner.Run(cells);
  WriteSweepReport("ablation_mdt", runner.jobs(), cells, outcomes);
  std::vector<ScenarioAverages> avg(kNumVariants);
  for (size_t v = 0; v < kNumVariants; ++v) {
    avg[v] = AverageOutcomes(outcomes, v * seeds.size(), seeds.size());
  }

  PrintSection("MDT ablation 1: delta sweep (Table 4 default: 8.0)");
  Table sweep({"delta", "fps", "BG refaults", "thaw ops"});
  for (size_t v = 0; v < 4; ++v) {
    sweep.AddRow({Table::Num(kVariants[v].delta, 1), Table::Num(avg[v].fps),
                  Table::Num(avg[v].refaults_bg, 0), Table::Num(avg[v].thaws, 1)});
  }
  sweep.Print();
  std::printf("\nLarger delta => longer freeze periods => fewer thaw windows and fewer\n"
              "BG refaults, at the cost of BG staleness.\n");

  PrintSection("MDT ablation 2: static freeze duration vs Eq. 1 dynamic");
  Table mode({"mode", "fps", "BG refaults", "thaw ops"});
  mode.AddRow({"static E_f = 4 s", Table::Num(avg[4].fps),
               Table::Num(avg[4].refaults_bg, 0), Table::Num(avg[4].thaws, 1)});
  mode.AddRow({"static E_f = 64 s", Table::Num(avg[5].fps),
               Table::Num(avg[5].refaults_bg, 0), Table::Num(avg[5].thaws, 1)});
  mode.AddRow({"dynamic (Eq. 1)", Table::Num(avg[6].fps),
               Table::Num(avg[6].refaults_bg, 0), Table::Num(avg[6].thaws, 1)});
  mode.Print();
  std::printf("\nThe paper's design point: intensity should rise with memory pressure\n"
              "(Eq. 1), matching the long-static variant under pressure while\n"
              "releasing apps sooner when pressure relaxes.\n");
  return 0;
}
