// Section 6.4 overheads, as google-benchmark microbenchmarks:
//  * mapping-table indexing (paper: one lookup completes at µs level);
//  * refault-event handling end to end (detection -> sift -> freeze);
//  * memory-consumption accounting (paper: <= 32 KB, ten-KB level).
//  * tracing: hot-path cost with the tracer disabled (must be one branch)
//    and the cost of one Emit into the ring.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/ice/mapping_table.h"
#include "src/ice/whitelist.h"
#include "src/mem/address_space.h"
#include "src/mem/memory_manager.h"
#include "src/mem/shadow.h"
#include "src/trace/trace.h"
#include "src/trace/tracer.h"

namespace ice {
namespace {

MappingTable BuildTable(int apps, int procs_per_app) {
  MappingTable table;
  for (int a = 0; a < apps; ++a) {
    table.AddApp(10000 + a);
    for (int p = 0; p < procs_per_app; ++p) {
      table.AddProcess(10000 + a, 100 + a * procs_per_app + p, 900);
    }
  }
  return table;
}

void BM_MappingTableUidOfPid(benchmark::State& state) {
  int apps = static_cast<int>(state.range(0));
  MappingTable table = BuildTable(apps, 3);
  Rng rng(1);
  for (auto _ : state) {
    Pid pid = 100 + static_cast<Pid>(rng.Below(static_cast<uint32_t>(apps * 3)));
    benchmark::DoNotOptimize(table.UidOfPid(pid));
  }
}
BENCHMARK(BM_MappingTableUidOfPid)->Arg(20)->Arg(40);

void BM_MappingTableUpdate(benchmark::State& state) {
  MappingTable table = BuildTable(20, 3);
  bool frozen = false;
  for (auto _ : state) {
    frozen = !frozen;
    benchmark::DoNotOptimize(table.SetFrozen(10005, frozen));
  }
}
BENCHMARK(BM_MappingTableUpdate);

void BM_WhitelistCheck(benchmark::State& state) {
  Whitelist wl(200);
  for (int i = 0; i < 8; ++i) {
    wl.AddManual(20000 + i);
  }
  Rng rng(2);
  for (auto _ : state) {
    Uid uid = 10000 + static_cast<Uid>(rng.Below(40));
    benchmark::DoNotOptimize(wl.Protects(uid, 900));
  }
}
BENCHMARK(BM_WhitelistCheck);

void BM_ShadowRefaultDispatch(benchmark::State& state) {
  // Cost of one refault event through the shadow registry with a listener.
  class NullListener : public RefaultListener {
   public:
    void OnRefault(const RefaultEvent&) override { ++count; }
    uint64_t count = 0;
  };
  ShadowRegistry shadow;
  NullListener listener;
  shadow.AddListener(&listener);
  AddressSpaceLayout layout;
  layout.native_pages = 1024;
  AddressSpace space(1, 10001, "bench", layout);
  for (auto _ : state) {
    PageInfo* page = &space.page(0);
    shadow.RecordEviction(page);
    benchmark::DoNotOptimize(shadow.RecordRefault(page, space, 0, false));
  }
}
BENCHMARK(BM_ShadowRefaultDispatch);

// The page-access hot path with tracing runtime-disabled (null tracer): the
// acceptance budget is <1% over a build with ICE_TRACE compiled out, since
// every ICE_TRACE site reduces to a single pointer test.
void BM_AccessHitTraceDisabled(benchmark::State& state) {
  Engine engine(1);
  MemConfig config;
  config.total_pages = 8000;
  config.os_reserved_pages = 200;
  config.reclaim_contention_mean = 0;
  MemoryManager mm(engine, config, nullptr);
  AddressSpaceLayout layout;
  layout.native_pages = 1024;
  AddressSpace space(1, 10001, "bench", layout);
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1024; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  Rng rng(3);
  for (auto _ : state) {
    uint32_t vpn = rng.Below(1024);
    benchmark::DoNotOptimize(mm.Access(space, vpn, false, nullptr));
  }
  mm.Release(space);
}
BENCHMARK(BM_AccessHitTraceDisabled);

// Same hot path with a tracer installed: page_evict/refault sites live on
// this path only under pressure, so a hit stays emit-free — the delta over
// the disabled case is the per-site branch cost alone.
void BM_AccessHitTraceEnabled(benchmark::State& state) {
  Engine engine(1);
  Tracer tracer(4);
  engine.set_tracer(&tracer);
  MemConfig config;
  config.total_pages = 8000;
  config.os_reserved_pages = 200;
  config.reclaim_contention_mean = 0;
  MemoryManager mm(engine, config, nullptr);
  AddressSpaceLayout layout;
  layout.native_pages = 1024;
  AddressSpace space(1, 10001, "bench", layout);
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1024; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  Rng rng(3);
  for (auto _ : state) {
    uint32_t vpn = rng.Below(1024);
    benchmark::DoNotOptimize(mm.Access(space, vpn, false, nullptr));
  }
  mm.Release(space);
}
BENCHMARK(BM_AccessHitTraceEnabled);

// Cost of one Emit into the ring (the steady state is overwrite-oldest).
void BM_TraceEmit(benchmark::State& state) {
  Tracer tracer(1);
  SimTime ts = 0;
  for (auto _ : state) {
    tracer.Emit(++ts, TraceEventType::kPageEvict, {.uid = 10001, .arg0 = ts});
  }
  state.counters["dropped"] = static_cast<double>(tracer.dropped());
}
BENCHMARK(BM_TraceEmit);

void BM_MappingTableFootprint(benchmark::State& state) {
  // Not a timing benchmark per se: reports the table's memory footprint as
  // a counter so the 6.4.1 claim (ten-KB level, <= 32 KB) is regenerated.
  MappingTable table = BuildTable(20, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.MemoryFootprintBytes());
  }
  state.counters["bytes_20apps_3procs"] =
      static_cast<double>(table.MemoryFootprintBytes());
  state.counters["upper_bound_bytes"] = MappingTable::kUpperBoundBytes;
}
BENCHMARK(BM_MappingTableFootprint);

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
