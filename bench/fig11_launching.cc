// Figure 11: application launching. (a) mean launch time: paper says Ice
// cuts the average by 36.6% and cold launches by 28.8%, hot launches are a
// wash; worst-case hot launch (everything reclaimed + frozen) is 839 ms =
// 1.98x the normal hot launch. (b) apps hot-launched in rounds 2-10: ~7-8
// with LRU+CFS, +25% with Ice.
#include "bench/bench_util.h"
#include "src/harness/sweep.h"
#include "src/workload/launch_driver.h"

using namespace ice;

namespace {

struct DriverOutcome {
  double mean_ms = 0;
  double cold_ms = 0;
  double hot_ms = 0;
  double hot_per_round = 0;
};

DriverOutcome RunDriver(const std::string& scheme, int rounds_of_launches, int seed) {
  ExperimentConfig config;
  config.device = Pixel3Profile();  // The caching-constrained device.
  config.scheme = scheme;
  config.seed = static_cast<uint64_t>(seed);
  Experiment exp(config);
  LaunchDriver driver(exp.am(), exp.choreographer(), exp.CatalogUids(),
                      exp.engine().rng().Fork());
  LaunchDriverResult result = driver.RunRounds(rounds_of_launches, Sec(6));
  DriverOutcome out;
  out.mean_ms = result.MeanLatencyMs();
  out.cold_ms = result.MeanColdMs();
  out.hot_ms = result.MeanHotMs();
  double hot_sum = 0;
  for (int h : result.hot_per_round) {
    hot_sum += h;
  }
  out.hot_per_round =
      result.hot_per_round.empty() ? 0 : hot_sum / result.hot_per_round.size();
  return out;
}

}  // namespace

int main() {
  PrintSection("Figure 11(a): launch latency, LRU+CFS vs Ice (20 apps, repeated rounds)");
  int driver_rounds = BenchRounds(4);  // Paper: 10 rounds.
  // The two driver runs are independent experiments: run them on the pool.
  const char* kDriverSchemes[] = {"lru_cfs", "ice"};
  SweepRunner runner;
  auto driver_outcomes = runner.Map<DriverOutcome>(2, [&](size_t i) {
    return RunDriver(kDriverSchemes[i], driver_rounds, 31000);
  });
  for (const auto& o : driver_outcomes) {
    ICE_CHECK(o.ok) << "launch driver failed: " << o.error;
  }
  DriverOutcome lru = driver_outcomes[0].value;
  DriverOutcome ice_o = driver_outcomes[1].value;

  Table table({"metric", "paper", "LRU+CFS", "Ice", "change"});
  table.AddRow({"mean launch (ms)", "-36.6% with Ice", Table::Num(lru.mean_ms, 0),
                Table::Num(ice_o.mean_ms, 0),
                Table::Pct(lru.mean_ms > 0 ? (ice_o.mean_ms - lru.mean_ms) / lru.mean_ms : 0)});
  table.AddRow({"cold launch (ms)", "4237 -> -28.8%", Table::Num(lru.cold_ms, 0),
                Table::Num(ice_o.cold_ms, 0),
                Table::Pct(lru.cold_ms > 0 ? (ice_o.cold_ms - lru.cold_ms) / lru.cold_ms : 0)});
  table.AddRow({"hot launch (ms)", "~even (47% slower/53% faster)", Table::Num(lru.hot_ms, 0),
                Table::Num(ice_o.hot_ms, 0),
                Table::Pct(lru.hot_ms > 0 ? (ice_o.hot_ms - lru.hot_ms) / lru.hot_ms : 0)});
  table.Print();

  PrintSection("Worst-case hot launch: all pages reclaimed + frozen, then launch");
  {
    ExperimentConfig config;
    config.device = Pixel3Profile();
    config.scheme = "ice";
    config.seed = 777;
    Experiment exp(config);
    std::vector<double> worst_ms, normal_ms;
    int count = 0;
    for (Uid uid : exp.CatalogUids()) {
      if (++count > 8) {
        break;
      }
      exp.am().Launch(uid);
      exp.AwaitInteractive(uid, Sec(20));
      exp.engine().RunFor(Sec(2));
      exp.am().MoveForegroundToBackground();
      // Normal hot launch first.
      size_t idx = exp.am().launches().size();
      exp.am().Launch(uid);
      exp.AwaitInteractive(uid, Sec(20));
      normal_ms.push_back(ToMilliseconds(exp.am().launches()[idx].latency));
      exp.am().MoveForegroundToBackground();
      // Worst case: reclaim everything + freeze, then launch.
      App* app = exp.am().FindApp(uid);
      exp.mm().ReclaimAllOf(exp.am().main_process(uid)->space());
      exp.freezer().FreezeApp(*app);
      idx = exp.am().launches().size();
      exp.am().Launch(uid);
      exp.AwaitInteractive(uid, Sec(30));
      worst_ms.push_back(ToMilliseconds(exp.am().launches()[idx].latency));
      exp.am().MoveForegroundToBackground();
      App* victim = exp.am().FindApp(uid);
      exp.am().KillApp(*victim);  // Clean slate for the next app.
    }
    double normal = Mean(normal_ms), worst = Mean(worst_ms);
    std::printf("paper: worst-case hot launch 839 ms = 1.98x normal hot launch\n");
    std::printf("measured: normal %.0f ms, worst %.0f ms = %.2fx\n", normal, worst,
                normal > 0 ? worst / normal : 0.0);
  }

  PrintSection("Figure 11(b): hot launches per round (rounds 2+)");
  Table table_b({"scheme", "paper", "measured hot/round"});
  table_b.AddRow({"LRU+CFS", "~7-8 of 20", Table::Num(lru.hot_per_round, 1)});
  table_b.AddRow({"Ice", "+25% more", Table::Num(ice_o.hot_per_round, 1)});
  table_b.Print();
  std::printf("Measured caching gain: %+.1f%%\n",
              lru.hot_per_round > 0
                  ? (ice_o.hot_per_round - lru.hot_per_round) / lru.hot_per_round * 100.0
                  : 0.0);
  return 0;
}
