// Shared helpers for the reproduction benches: each binary regenerates one
// table or figure from the paper and prints paper-vs-measured rows. Grids
// run on the SweepRunner pool (ICE_JOBS controls the worker count) and each
// bench exports its raw cells as JSON under results/.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/log.h"
#include "src/harness/experiment.h"
#include "src/harness/sweep.h"
#include "src/harness/sweep_report.h"
#include "src/metrics/report.h"

namespace ice {

// Rounds per configuration; ICE_BENCH_ROUNDS overrides (the paper uses 10).
inline int BenchRounds(int default_rounds = 3) {
  const char* env = std::getenv("ICE_BENCH_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return default_rounds;
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

// The canonical per-round seed sequence shared by the benches.
inline std::vector<uint64_t> RoundSeeds(int rounds, uint64_t base = 1000,
                                        uint64_t stride = 7919) {
  std::vector<uint64_t> seeds;
  seeds.reserve(static_cast<size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    seeds.push_back(base + static_cast<uint64_t>(r) * stride);
  }
  return seeds;
}

// Averages ScenarioResults over seeds for one (device, scheme, scenario, bg)
// configuration.
struct ScenarioAverages {
  double fps = 0.0;
  double ria = 0.0;
  double reclaims = 0.0;
  double refaults = 0.0;
  double refaults_bg = 0.0;
  double refaults_fg = 0.0;
  double io_requests = 0.0;
  double io_bytes = 0.0;
  double cpu_util = 0.0;
  double freezes = 0.0;
  double thaws = 0.0;
};

// Averages a contiguous block of sweep outcomes (typically the seed axis of
// one grid coordinate). Failed cells abort: a bench averaging over a crashed
// cell would silently skew the figure.
inline ScenarioAverages AverageOutcomes(const std::vector<CellOutcome>& outcomes,
                                        size_t begin, size_t count) {
  ScenarioAverages avg;
  ICE_CHECK_LE(begin + count, outcomes.size());
  ICE_CHECK_GT(count, 0u);
  for (size_t i = begin; i < begin + count; ++i) {
    ICE_CHECK(outcomes[i].ok) << "sweep cell " << i << " failed: " << outcomes[i].error;
    const ScenarioResult& r = outcomes[i].value;
    avg.fps += r.avg_fps;
    avg.ria += r.ria;
    avg.reclaims += static_cast<double>(r.reclaims);
    avg.refaults += static_cast<double>(r.refaults);
    avg.refaults_bg += static_cast<double>(r.refaults_bg);
    avg.refaults_fg += static_cast<double>(r.refaults_fg);
    avg.io_requests += static_cast<double>(r.io_requests);
    avg.io_bytes += static_cast<double>(r.io_bytes);
    avg.cpu_util += r.cpu_util;
    avg.freezes += static_cast<double>(r.freezes);
    avg.thaws += static_cast<double>(r.thaws);
  }
  double n = static_cast<double>(count);
  avg.fps /= n;
  avg.ria /= n;
  avg.reclaims /= n;
  avg.refaults /= n;
  avg.refaults_bg /= n;
  avg.refaults_fg /= n;
  avg.io_requests /= n;
  avg.io_bytes /= n;
  avg.cpu_util /= n;
  avg.freezes /= n;
  avg.thaws /= n;
  return avg;
}

// Averages the seed axis of one (device, scheme, scenario, bg) coordinate of
// an axes-built sweep.
inline ScenarioAverages AverageSeeds(const SweepAxes& axes,
                                     const std::vector<CellOutcome>& outcomes,
                                     size_t device, size_t scheme, size_t scenario,
                                     size_t bg) {
  return AverageOutcomes(outcomes, axes.Index(device, scheme, scenario, bg, 0),
                         axes.seeds.size());
}

// Single-configuration convenience used by the non-grid benches: runs
// `rounds` seeds of one configuration on the pool and averages them.
inline ScenarioAverages RunScenarioRounds(const DeviceProfile& device,
                                          const std::string& scheme, ScenarioKind kind,
                                          int bg_apps, int rounds,
                                          SimDuration duration = Sec(30),
                                          SimDuration warmup = Sec(240)) {
  SweepAxes axes;
  axes.devices = {device};
  axes.schemes = {scheme};
  axes.scenarios = {kind};
  axes.bg_counts = {bg_apps};
  axes.seeds = RoundSeeds(rounds);
  axes.duration = duration;
  axes.warmup = warmup;
  SweepRunner runner;
  std::vector<CellOutcome> outcomes = runner.Run(axes.Cells());
  return AverageOutcomes(outcomes, 0, outcomes.size());
}

}  // namespace ice

#endif  // BENCH_BENCH_UTIL_H_
