// Shared helpers for the reproduction benches: each binary regenerates one
// table or figure from the paper and prints paper-vs-measured rows.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/metrics/report.h"

namespace ice {

// Rounds per configuration; ICE_BENCH_ROUNDS overrides (the paper uses 10).
inline int BenchRounds(int default_rounds = 3) {
  const char* env = std::getenv("ICE_BENCH_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) {
      return v;
    }
  }
  return default_rounds;
}

inline double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

// Averages ScenarioResults over seeds for one (device, scheme, scenario, bg)
// configuration.
struct ScenarioAverages {
  double fps = 0.0;
  double ria = 0.0;
  double reclaims = 0.0;
  double refaults = 0.0;
  double refaults_bg = 0.0;
  double refaults_fg = 0.0;
  double io_requests = 0.0;
  double io_bytes = 0.0;
  double cpu_util = 0.0;
  double freezes = 0.0;
};

inline ScenarioAverages RunScenarioRounds(const DeviceProfile& device,
                                          const std::string& scheme, ScenarioKind kind,
                                          int bg_apps, int rounds,
                                          SimDuration duration = Sec(30),
                                          SimDuration warmup = Sec(240)) {
  ScenarioAverages avg;
  for (int round = 0; round < rounds; ++round) {
    ExperimentConfig config;
    config.device = device;
    config.scheme = scheme;
    config.seed = 1000 + static_cast<uint64_t>(round) * 7919;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(kind));
    if (bg_apps > 0) {
      exp.CacheBackgroundApps(bg_apps, {fg});
    }
    ScenarioResult r = exp.RunScenario(kind, duration, warmup);
    avg.fps += r.avg_fps;
    avg.ria += r.ria;
    avg.reclaims += static_cast<double>(r.reclaims);
    avg.refaults += static_cast<double>(r.refaults);
    avg.refaults_bg += static_cast<double>(r.refaults_bg);
    avg.refaults_fg += static_cast<double>(r.refaults_fg);
    avg.io_requests += static_cast<double>(r.io_requests);
    avg.io_bytes += static_cast<double>(r.io_bytes);
    avg.cpu_util += r.cpu_util;
    avg.freezes += static_cast<double>(r.freezes);
  }
  double n = rounds;
  avg.fps /= n;
  avg.ria /= n;
  avg.reclaims /= n;
  avg.refaults /= n;
  avg.refaults_bg /= n;
  avg.refaults_fg /= n;
  avg.io_requests /= n;
  avg.io_bytes /= n;
  avg.cpu_util /= n;
  avg.freezes /= n;
  return avg;
}

}  // namespace ice

#endif  // BENCH_BENCH_UTIL_H_
