// Figure 1: FPS of the four scenarios under BG-null, BG-apps, BG-cputester
// and BG-memtester. Paper (S-A): BG-apps -51.7%, cputester -6.3%,
// memtester -27.8% vs BG-null 42.2 fps.
#include "bench/bench_util.h"
#include "src/workload/synthetic.h"

using namespace ice;

namespace {

double RunCase(ScenarioKind kind, const std::string& bg_case, int round,
               std::vector<double>* series_out = nullptr) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 300 + static_cast<uint64_t>(round) * 104729;
  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(kind));
  if (bg_case == "BG-apps") {
    exp.CacheBackgroundApps(8, {fg});
  } else if (bg_case == "BG-cputester") {
    InstallCputester(exp.am(), 0.20, exp.config().device.num_cores);
    exp.engine().RunFor(Sec(2));
    exp.am().MoveForegroundToBackground();
  } else if (bg_case == "BG-memtester") {
    // Fill memory to a similar level as 8 cached apps. The fill overlaps the
    // measured window, as in the paper: reclaim runs while the FG renders,
    // but the reclaimed pages are never demanded again.
    InstallMemtester(exp.am(), static_cast<uint64_t>(3500) * kMiB);
    exp.engine().RunFor(Sec(3));
    exp.am().MoveForegroundToBackground();
  }
  SimDuration warmup = bg_case == "BG-memtester" ? Sec(5) : Sec(240);
  ScenarioResult r = exp.RunScenario(kind, Sec(30), warmup);
  if (series_out != nullptr && series_out->empty()) {
    *series_out = r.fps_series;
  }
  return r.avg_fps;
}

}  // namespace

int main() {
  PrintSection("Figure 1: FPS under BG-null / BG-apps / BG-cputester / BG-memtester");
  int rounds = BenchRounds(3);
  const char* kCases[] = {"BG-null", "BG-apps", "BG-cputester", "BG-memtester"};
  // Paper's S-A relative drops; other scenarios show the same ordering.
  std::printf("Paper reference (S-A): BG-null 42.2 fps; BG-apps -51.7%%; "
              "BG-cputester -6.3%%; BG-memtester -27.8%%\n\n");

  for (ScenarioKind kind : {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                            ScenarioKind::kScrolling, ScenarioKind::kGame}) {
    Table table({"BG case", "measured fps", "vs BG-null"});
    double base = 0.0;
    std::vector<double> series;
    for (const char* bg_case : kCases) {
      std::vector<double> fps_rounds;
      for (int round = 0; round < rounds; ++round) {
        fps_rounds.push_back(
            RunCase(kind, bg_case, round,
                    std::string(bg_case) == "BG-apps" && round == 0 ? &series : nullptr));
      }
      double fps = Mean(fps_rounds);
      if (std::string(bg_case) == "BG-null") {
        base = fps;
      }
      double delta = base > 0 ? (fps - base) / base : 0.0;
      table.AddRow({bg_case, Table::Num(fps), Table::Pct(delta)});
    }
    std::printf("%s (%s):\n", ScenarioLabel(kind), ScenarioName(kind));
    table.Print();
    std::printf("BG-apps per-second FPS timeline (round 1): ");
    for (double f : series) {
      std::printf("%.0f ", f);
    }
    std::printf("\n\n");
  }
  std::printf("Shape check: BG-apps hurts most, memtester is intermediate,\n"
              "cputester is mild — matching Figure 1's ordering.\n");
  return 0;
}
