// Figure 2: (a) reclaim/refault totals for BG-null, BG-memtester, BG-apps
// (paper: 76/3, 55637/1351, 102581/38924); (b) frame rate vs BG-refault
// decile (paper: 47.2 fps at P0-10, -60.6% at P90-100).
#include <algorithm>
#include <numeric>

#include "bench/bench_util.h"
#include "src/workload/synthetic.h"

using namespace ice;

int main() {
  int rounds = BenchRounds(2);

  PrintSection("Figure 2(a): reclaimed and refaulted pages by BG case");
  Table table_a({"case", "paper reclaim", "paper refault", "measured reclaim",
                 "measured refault"});
  struct CaseRow {
    const char* name;
    const char* paper_reclaim;
    const char* paper_refault;
  };
  const CaseRow kCases[] = {{"BG-null", "76", "3"},
                            {"BG-memtester", "55,637", "1,351"},
                            {"BG-apps", "102,581", "38,924"}};
  for (const CaseRow& c : kCases) {
    std::vector<double> recs, rfs;
    for (int round = 0; round < rounds; ++round) {
      ExperimentConfig config;
      config.device = P20Profile();
      config.seed = 400 + static_cast<uint64_t>(round) * 104729;
      Experiment exp(config);
      Uid fg = exp.UidOf("TikTok");
      // Count from before the background case is set up: the memtester's
      // one-time fill is where most of its reclaim happens.
      auto before = exp.engine().stats().Snapshot();
      if (std::string(c.name) == "BG-apps") {
        exp.CacheBackgroundApps(8, {fg});
      } else if (std::string(c.name) == "BG-memtester") {
        InstallMemtester(exp.am(), static_cast<uint64_t>(3500) * kMiB);
        exp.engine().RunFor(Sec(60));
        exp.am().MoveForegroundToBackground();
      }
      ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(60), Sec(180));
      (void)r;
      auto d = StatsRegistry::Diff(before, exp.engine().stats().Snapshot());
      recs.push_back(static_cast<double>(d[stat::kPagesReclaimed]));
      rfs.push_back(static_cast<double>(d[stat::kRefaults]));
    }
    table_a.AddRow({c.name, c.paper_reclaim, c.paper_refault, Table::Num(Mean(recs), 0),
                    Table::Num(Mean(rfs), 0)});
  }
  table_a.Print();

  PrintSection("Figure 2(b): frame rate vs BG-refault volume (time-slice deciles)");
  // Collect (bg_refaults, fps) per 10-second slice across scenarios, sort by
  // refaults, bucket into deciles.
  std::vector<std::pair<double, double>> slices;
  for (ScenarioKind kind : {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                            ScenarioKind::kScrolling, ScenarioKind::kGame}) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.seed = 450 + static_cast<uint64_t>(kind) * 17;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(kind));
    exp.CacheBackgroundApps(8, {fg});
    exp.am().Launch(fg);
    exp.AwaitInteractive(fg);
    Scenario scenario(exp.am(), fg, kind, exp.engine().rng().Fork());
    exp.choreographer().SetSource(&scenario);
    exp.choreographer().Start();
    exp.engine().RunFor(Sec(120));  // Warmup.
    for (int slice = 0; slice < 18; ++slice) {
      exp.choreographer().stats().Clear();
      uint64_t rf_before = exp.engine().stats().Get(stat::kRefaultsBg);
      SimTime begin = exp.engine().now();
      exp.engine().RunFor(Sec(10));
      double fps = exp.choreographer().stats().AverageFps(begin, exp.engine().now());
      double rf = static_cast<double>(exp.engine().stats().Get(stat::kRefaultsBg) - rf_before);
      slices.emplace_back(rf, fps);
    }
    exp.choreographer().SetSource(nullptr);
  }
  std::sort(slices.begin(), slices.end());
  Table table_b({"BG-refault decile", "mean BG refaults/slice", "mean fps"});
  size_t per_bucket = slices.size() / 10;
  double first_bucket_fps = 0.0, last_bucket_fps = 0.0;
  for (int decile = 0; decile < 10; ++decile) {
    double fps_sum = 0, rf_sum = 0;
    for (size_t i = decile * per_bucket; i < (decile + 1) * per_bucket; ++i) {
      rf_sum += slices[i].first;
      fps_sum += slices[i].second;
    }
    double fps = fps_sum / per_bucket;
    if (decile == 0) {
      first_bucket_fps = fps;
    }
    if (decile == 9) {
      last_bucket_fps = fps;
    }
    table_b.AddRow({"[" + std::to_string(decile * 10) + "," + std::to_string(decile * 10 + 10) +
                        "]",
                    Table::Num(rf_sum / per_bucket, 0), Table::Num(fps)});
  }
  table_b.Print();
  std::printf("\nPaper: 47.2 fps at the quietest decile, -60.6%% at the busiest.\n");
  std::printf("Measured: %.1f fps -> %.1f fps (%.1f%%).\n", first_bucket_fps, last_bucket_fps,
              first_bucket_fps > 0
                  ? (last_bucket_fps - first_bucket_fps) / first_bucket_fps * 100.0
                  : 0.0);
  return 0;
}
