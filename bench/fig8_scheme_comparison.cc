// Figure 8: FPS and RIA for the four scenarios under LRU+CFS, UCSG, Acclaim
// and Ice, on Pixel3 (6 BG apps) and P20 (8 BG apps).
// Paper anchor (S-A, Pixel3): 25.4 / 29.3 / 24.1 / 37.2 fps; PUBG on P20:
// RIA 46% -> 28% with Ice.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Figure 8: scheme comparison (FPS / RIA)");
  int rounds = BenchRounds(3);
  const char* kSchemes[] = {"lru_cfs", "ucsg", "acclaim", "ice"};

  for (const DeviceProfile& device : {Pixel3Profile(), P20Profile()}) {
    std::printf("\n--- %s (%d BG apps) ---\n", device.name.c_str(),
                device.full_pressure_bg_apps);
    for (ScenarioKind kind : {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                              ScenarioKind::kScrolling, ScenarioKind::kGame}) {
      Table table({"scheme", "fps", "RIA"});
      double lru_fps = 0.0, ice_fps = 0.0;
      for (const char* scheme : kSchemes) {
        ScenarioAverages avg = RunScenarioRounds(device, scheme, kind,
                                                 device.full_pressure_bg_apps, rounds);
        if (std::string(scheme) == "lru_cfs") {
          lru_fps = avg.fps;
        }
        if (std::string(scheme) == "ice") {
          ice_fps = avg.fps;
        }
        table.AddRow({scheme, Table::Num(avg.fps), Table::Pct(avg.ria, 0)});
      }
      std::printf("%s (%s):\n", ScenarioLabel(kind), ScenarioName(kind));
      table.Print();
      std::printf("Ice/LRU+CFS fps ratio: %.2fx (paper S-A Pixel3: 1.46x)\n\n",
                  lru_fps > 0 ? ice_fps / lru_fps : 0.0);
    }
  }
  std::printf("Shape check: Ice wins every scenario; UCSG helps modestly; Acclaim\n"
              "is mixed (it shifts refaults to the BG; see bench_fig10).\n");
  return 0;
}
