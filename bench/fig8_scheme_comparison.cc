// Figure 8: FPS and RIA for the four scenarios under LRU+CFS, UCSG, Acclaim
// and Ice, on Pixel3 (6 BG apps) and P20 (8 BG apps).
// Paper anchor (S-A, Pixel3): 25.4 / 29.3 / 24.1 / 37.2 fps; PUBG on P20:
// RIA 46% -> 28% with Ice.
//
// The whole grid (device x scheme x scenario x seed) runs as one parallel
// sweep; raw cells land in results/fig8_scheme_comparison.json.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Figure 8: scheme comparison (FPS / RIA)");
  int rounds = BenchRounds(3);

  SweepAxes axes;
  axes.devices = {Pixel3Profile(), P20Profile()};
  axes.schemes = {"lru_cfs", "ucsg", "acclaim", "ice"};
  axes.scenarios = {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                    ScenarioKind::kScrolling, ScenarioKind::kGame};
  axes.bg_counts = {-1};  // Each device's full-pressure count.
  axes.seeds = RoundSeeds(rounds);

  SweepRunner runner;
  std::vector<SweepCell> cells = axes.Cells();
  std::printf("running %zu cells on %d workers\n", cells.size(), runner.jobs());
  std::vector<CellOutcome> outcomes = runner.Run(cells);
  WriteSweepReport("fig8_scheme_comparison", runner.jobs(), cells, outcomes);

  for (size_t d = 0; d < axes.devices.size(); ++d) {
    const DeviceProfile& device = axes.devices[d];
    std::printf("\n--- %s (%d BG apps) ---\n", device.name.c_str(),
                device.full_pressure_bg_apps);
    for (size_t c = 0; c < axes.scenarios.size(); ++c) {
      Table table({"scheme", "fps", "RIA"});
      double lru_fps = 0.0, ice_fps = 0.0;
      for (size_t s = 0; s < axes.schemes.size(); ++s) {
        ScenarioAverages avg = AverageSeeds(axes, outcomes, d, s, c, 0);
        if (axes.schemes[s] == "lru_cfs") {
          lru_fps = avg.fps;
        }
        if (axes.schemes[s] == "ice") {
          ice_fps = avg.fps;
        }
        table.AddRow({axes.schemes[s], Table::Num(avg.fps), Table::Pct(avg.ria, 0)});
      }
      ScenarioKind kind = axes.scenarios[c];
      std::printf("%s (%s):\n", ScenarioLabel(kind), ScenarioName(kind));
      table.Print();
      std::printf("Ice/LRU+CFS fps ratio: %.2fx (paper S-A Pixel3: 1.46x)\n\n",
                  lru_fps > 0 ? ice_fps / lru_fps : 0.0);
    }
  }
  std::printf("Shape check: Ice wins every scenario; UCSG helps modestly; Acclaim\n"
              "is mixed (it shifts refaults to the BG; see bench_fig10).\n");
  return 0;
}
