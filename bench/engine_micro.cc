// Engine hot-path microbenchmarks: the timing-wheel EventQueue against the
// binary-heap + tombstone-set implementation it replaced, EventFn against
// std::function, and the engine's idle tick-skipping.
//
// The legacy queue is reproduced in-file (verbatim semantics: (when, seq)
// order, tombstone cancel) so the comparison stays runnable after the old
// code is gone. Each Schedule/Cancel/RunDue pattern below mirrors a real
// simulator workload: timer churn is the Task::SleepFor/Wake pattern where
// most timers are cancelled before they fire.
//
// Set ICE_BENCH_ITERS to pin the iteration count (CI smoke runs do, so the
// artifact is comparable across machines in shape even when not in time).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/engine.h"
#include "src/sim/event_fn.h"
#include "src/sim/timing_wheel.h"

namespace ice {
namespace {

// ---------------------------------------------------------------------------
// The pre-timing-wheel EventQueue (std::priority_queue + tombstone set).
// ---------------------------------------------------------------------------

class LegacyEventQueue {
 public:
  EventId Schedule(SimTime when, std::function<void()> fn) {
    EventId id = next_id_++;
    heap_.push(Event{when, next_seq_++, id, std::move(fn)});
    ++live_count_;
    return id;
  }

  bool Cancel(EventId id) {
    if (id == kInvalidEventId || id >= next_id_) {
      return false;
    }
    auto [it, inserted] = cancelled_.insert(id);
    if (inserted && live_count_ > 0) {
      --live_count_;
      return true;
    }
    return false;
  }

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  void RunDue(SimTime now) {
    for (;;) {
      SkipCancelledHead();
      if (heap_.empty() || heap_.top().when > now) {
        return;
      }
      std::function<void()> fn = std::move(heap_.top().fn);
      heap_.pop();
      --live_count_;
      fn();
    }
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    mutable std::function<void()> fn;

    bool operator<(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void SkipCancelledHead() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  std::priority_queue<Event> heap_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
  std::unordered_set<EventId> cancelled_;
};

void ApplyIters(benchmark::internal::Benchmark* b) {
  if (const char* iters = std::getenv("ICE_BENCH_ITERS")) {
    long long n = std::strtoll(iters, nullptr, 10);
    if (n > 0) {
      b->Iterations(n);
    }
  }
}

// ---------------------------------------------------------------------------
// Schedule + fire: a batch of near-future events per tick, all of which fire,
// over a standing set of range(0) pending timers. The standing set is the
// engine state (task sleep timers, MDT heartbeats, in-flight I/O
// completions): every near-term push into the binary heap sifts an event with
// its std::function through log(pending) levels, while the wheel's slot
// append and per-batch dispatch run never see the parked events at all.
//
// The callback captures a completion context (two pointers + a tag, 24
// bytes) like the engine's real bio-completion and vsync callbacks do. That
// overflows std::function's 16-byte inline buffer, so the legacy queue pays
// one heap allocation per scheduled event; it fits EventFn's 48-byte buffer.
// ---------------------------------------------------------------------------

constexpr int kBatch = 64;

struct FireCtx {
  uint64_t fired = 0;
  uint64_t last_tag = 0;
};

template <class Queue>
void ScheduleFire(benchmark::State& state) {
  const uint32_t standing = static_cast<uint32_t>(state.range(0));
  Queue q;
  Rng rng(1);
  SimTime now = 0;
  FireCtx ctx;
  FireCtx* a = &ctx;
  FireCtx* b = &ctx;
  for (uint32_t i = 0; i < standing; ++i) {
    // Far future relative to the fired batches below.
    q.Schedule(1'000'000'000 + static_cast<SimTime>(i) * 1000,
               [a, b, i] { a->fired += b->last_tag + i; });
  }
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      uint64_t tag = rng.Below(1000);
      q.Schedule(now + 1 + tag, [a, b, tag] {
        ++a->fired;
        b->last_tag = tag;
      });
    }
    now += 1024;
    q.RunDue(now);
  }
  benchmark::DoNotOptimize(ctx.fired);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_LegacyScheduleFire(benchmark::State& state) { ScheduleFire<LegacyEventQueue>(state); }
void BM_WheelScheduleFire(benchmark::State& state) { ScheduleFire<TimingWheel>(state); }
BENCHMARK(BM_LegacyScheduleFire)->Arg(0)->Arg(4096)->Arg(65536)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_WheelScheduleFire)->Arg(0)->Arg(4096)->Arg(65536)->Arg(1048576)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Schedule + cancel: every event is cancelled before its time (the dominant
// fate of Task sleep timers). The legacy queue pays the tombstone set plus a
// heap pop per cancelled event once the cursor passes it.
// ---------------------------------------------------------------------------

template <class Queue>
void ScheduleCancel(benchmark::State& state) {
  Queue q;
  Rng rng(2);
  SimTime now = 0;
  uint64_t sink = 0;
  EventId ids[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      ids[i] = q.Schedule(now + 1 + rng.Below(1000), [&sink] { ++sink; });
    }
    for (int i = 0; i < kBatch; ++i) {
      q.Cancel(ids[i]);
    }
    now += 2048;
    q.RunDue(now);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}

void BM_LegacyScheduleCancel(benchmark::State& state) { ScheduleCancel<LegacyEventQueue>(state); }
void BM_WheelScheduleCancel(benchmark::State& state) { ScheduleCancel<TimingWheel>(state); }
BENCHMARK(BM_LegacyScheduleCancel)->Apply(ApplyIters);
BENCHMARK(BM_WheelScheduleCancel)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Timer churn: a steady pool of pending timers where each step replaces one
// (cancel + reschedule) and time advances every 64 steps — the rearm pattern
// of SleepFor under frequent Wake(). The heap's cost grows with the live set;
// the wheel's does not.
// ---------------------------------------------------------------------------

template <class Queue>
void TimerChurn(benchmark::State& state) {
  const uint32_t live = static_cast<uint32_t>(state.range(0));
  Queue q;
  Rng rng(3);
  SimTime now = 0;
  uint64_t sink = 0;
  std::vector<EventId> ids(live);
  for (uint32_t i = 0; i < live; ++i) {
    ids[i] = q.Schedule(now + 1 + rng.Below(500'000), [&sink] { ++sink; });
  }
  int step = 0;
  for (auto _ : state) {
    uint32_t j = rng.Below(live);
    q.Cancel(ids[j]);  // May already have fired; both queues reject that.
    ids[j] = q.Schedule(now + 1 + rng.Below(500'000), [&sink] { ++sink; });
    if (++step % 64 == 0) {
      now += 1000;
      q.RunDue(now);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_LegacyTimerChurn(benchmark::State& state) { TimerChurn<LegacyEventQueue>(state); }
void BM_WheelTimerChurn(benchmark::State& state) { TimerChurn<TimingWheel>(state); }
BENCHMARK(BM_LegacyTimerChurn)->Arg(1024)->Arg(16384)->Apply(ApplyIters);
BENCHMARK(BM_WheelTimerChurn)->Arg(1024)->Arg(16384)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Callable wrappers: EventFn (48-byte inline storage, move-only) against
// std::function for the capture sizes the simulator actually schedules.
// ---------------------------------------------------------------------------

void BM_StdFunctionRoundTrip(benchmark::State& state) {
  uint64_t sink = 0;
  void* a = &sink;
  void* b = &state;
  for (auto _ : state) {
    std::function<void()> fn = [a, b, &sink] {
      benchmark::DoNotOptimize(a);
      benchmark::DoNotOptimize(b);
      ++sink;
    };
    std::function<void()> moved = std::move(fn);
    moved();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_StdFunctionRoundTrip)->Apply(ApplyIters);

void BM_EventFnRoundTrip(benchmark::State& state) {
  uint64_t sink = 0;
  void* a = &sink;
  void* b = &state;
  for (auto _ : state) {
    EventFn fn = [a, b, &sink] {
      benchmark::DoNotOptimize(a);
      benchmark::DoNotOptimize(b);
      ++sink;
    };
    EventFn moved = std::move(fn);
    moved();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventFnRoundTrip)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Idle tick-skipping: 10 simulated seconds with one event per 100 ms. With
// quiescence reporting the engine jumps between events; the "NoSkip" variant
// pins a default ticker (NextWorkAt = now) so every one of the 10,000 ticks
// executes, which was the old engine's only mode.
// ---------------------------------------------------------------------------

class AlwaysBusyTicker : public Ticker {
 public:
  void Tick(SimTime) override { ++ticks; }
  uint64_t ticks = 0;
};

template <bool kSkip>
void EngineRun(benchmark::State& state) {
  uint64_t fired = 0;
  for (auto _ : state) {
    Engine engine(1);
    AlwaysBusyTicker busy;
    if (!kSkip) {
      engine.AddTicker(&busy);
    }
    for (int i = 1; i <= 100; ++i) {
      engine.ScheduleAt(static_cast<SimTime>(i) * Ms(100), [&fired] { ++fired; });
    }
    engine.RunFor(Sec(10));
    if (!kSkip) {
      engine.RemoveTicker(&busy);
    }
  }
  benchmark::DoNotOptimize(fired);
  // Simulated ticks covered per wall second.
  state.SetItemsProcessed(state.iterations() * 10'000);
}

void BM_EngineIdle10sNoSkip(benchmark::State& state) { EngineRun<false>(state); }
void BM_EngineIdle10sSkip(benchmark::State& state) { EngineRun<true>(state); }
BENCHMARK(BM_EngineIdle10sNoSkip)->Apply(ApplyIters);
BENCHMARK(BM_EngineIdle10sSkip)->Apply(ApplyIters);

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
