// Figure 10: refaulted and reclaimed page counts per scenario on P20, under
// LRU+CFS (L), UCSG (U), Acclaim (A) and Ice (I).
// Paper: Ice cuts refaults by 42.1 / 44.4 / 57.6 / 40.5 % across S-A..S-D,
// reclaims to 70.7% of LRU+CFS; UCSG's reduction is about half of Ice's;
// Acclaim sometimes *increases* refaults (+4.3%).
//
// The grid runs as one parallel sweep; raw cells land in
// results/fig10_reclaim_reduction.json.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Figure 10: refault & reclaim counts by scheme (P20, 8 BG apps)");
  int rounds = BenchRounds(3);

  SweepAxes axes;
  axes.devices = {P20Profile()};
  axes.schemes = {"lru_cfs", "ucsg", "acclaim", "ice"};
  axes.scenarios = {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                    ScenarioKind::kScrolling, ScenarioKind::kGame};
  axes.bg_counts = {8};
  axes.seeds = RoundSeeds(rounds);

  SweepRunner runner;
  std::vector<SweepCell> cells = axes.Cells();
  std::printf("running %zu cells on %d workers\n", cells.size(), runner.jobs());
  std::vector<CellOutcome> outcomes = runner.Run(cells);
  WriteSweepReport("fig10_reclaim_reduction", runner.jobs(), cells, outcomes);

  double lru_rf_total = 0.0, ice_rf_total = 0.0, lru_rec_total = 0.0, ice_rec_total = 0.0;
  for (size_t c = 0; c < axes.scenarios.size(); ++c) {
    ScenarioKind kind = axes.scenarios[c];
    Table table({"scheme", "refaults", "reclaims", "BG refaults", "freezes"});
    double lru_rf = 0.0;
    for (size_t s = 0; s < axes.schemes.size(); ++s) {
      ScenarioAverages avg = AverageSeeds(axes, outcomes, 0, s, c, 0);
      if (axes.schemes[s] == "lru_cfs") {
        lru_rf = avg.refaults;
        lru_rf_total += avg.refaults;
        lru_rec_total += avg.reclaims;
      }
      if (axes.schemes[s] == "ice") {
        ice_rf_total += avg.refaults;
        ice_rec_total += avg.reclaims;
        std::printf("%s: Ice refault reduction vs LRU+CFS: %.1f%%\n", ScenarioLabel(kind),
                    lru_rf > 0 ? (1.0 - avg.refaults / lru_rf) * 100.0 : 0.0);
      }
      table.AddRow({axes.schemes[s], Table::Num(avg.refaults, 0),
                    Table::Num(avg.reclaims, 0), Table::Num(avg.refaults_bg, 0),
                    Table::Num(avg.freezes, 1)});
    }
    std::printf("%s (%s):\n", ScenarioLabel(kind), ScenarioName(kind));
    table.Print();
    std::printf("\n");
  }
  std::printf("Paper: refaults -42.1/-44.4/-57.6/-40.5%% (S-A..S-D); reclaims x0.707.\n");
  std::printf("Measured overall: refaults x%.3f, reclaims x%.3f (Ice vs LRU+CFS).\n",
              lru_rf_total > 0 ? ice_rf_total / lru_rf_total : 0.0,
              lru_rec_total > 0 ? ice_rec_total / lru_rec_total : 0.0);
  return 0;
}
