// Figure 4: per-process reclaim study over 40 popular apps. Reclaim ALL of a
// cached app's pages, watch 30 s, and categorize the pages that refault.
// Paper: >30% of reclaimed pages return; of refaulted pages 48.6% file /
// 51.4% anon; of anon, 56.6% native heap / 43.4% Java heap. Also: 77% of
// refaults remain with idle GC disabled.
#include "bench/bench_util.h"

using namespace ice;

namespace {

struct StudyTotals {
  double reclaimed = 0;
  double refaulted = 0;
  double file = 0;
  double anon = 0;
  double java = 0;
  double native = 0;
};

StudyTotals RunStudy(bool disable_gc) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 9000 + (disable_gc ? 1 : 0);
  config.extended_catalog = true;  // The 40-app study set.
  config.disable_gc = disable_gc;
  // The study reclaims one app at a time; give the device enough headroom
  // that the *measured* refaults come from the app's own BG activity.
  Experiment exp(config);

  StudyTotals totals;
  int studied = 0;
  for (Uid uid : exp.CatalogUids()) {
    if (studied >= 40) {
      break;
    }
    ++studied;
    // Launch, interact briefly, switch to BG (the study procedure).
    exp.am().Launch(uid);
    exp.AwaitInteractive(uid, Sec(20));
    exp.engine().RunFor(Sec(3));
    exp.am().MoveForegroundToBackground();
    exp.engine().RunFor(Sec(2));

    AddressSpace* space = exp.am().main_space(uid);
    if (space == nullptr) {
      continue;  // LMK got it.
    }
    StatsRegistry& st = exp.engine().stats();
    auto before = st.Snapshot();
    uint64_t ev_before = space->total_evictions;
    ReclaimResult r = exp.mm().ReclaimAllOf(*space);
    (void)ev_before;
    // Watch refaults for 30 seconds (cat /proc/pid/status analog).
    uint64_t app_rf_before = space->total_refaults;
    exp.engine().RunFor(Sec(30));
    auto d = StatsRegistry::Diff(before, st.Snapshot());
    totals.reclaimed += static_cast<double>(r.reclaimed);
    totals.refaulted += static_cast<double>(space->total_refaults - app_rf_before);
    totals.file += static_cast<double>(d[stat::kRefaultsFile]);
    totals.anon += static_cast<double>(d[stat::kRefaultsAnon]);
    totals.java += static_cast<double>(d[stat::kRefaultsJavaHeap]);
    totals.native += static_cast<double>(d[stat::kRefaultsNativeHeap]);

    // Kill the app so the next study subject starts from a clean slate.
    App* app = exp.am().FindApp(uid);
    if (app != nullptr && app->running()) {
      exp.am().KillApp(*app);
    }
    exp.engine().RunFor(Sec(1));
  }
  return totals;
}

}  // namespace

int main() {
  PrintSection("Figure 4: categorization of refaulted pages (40-app study)");
  StudyTotals normal = RunStudy(/*disable_gc=*/false);

  Table table({"metric", "paper", "measured"});
  table.AddRow({"refault ratio (refaulted/reclaimed)", ">30%",
                Table::Pct(normal.reclaimed > 0 ? normal.refaulted / normal.reclaimed : 0)});
  double rf_total = normal.file + normal.anon;
  table.AddRow({"file-backed share of refaults", "48.6%",
                Table::Pct(rf_total > 0 ? normal.file / rf_total : 0)});
  table.AddRow({"anonymous share of refaults", "51.4%",
                Table::Pct(rf_total > 0 ? normal.anon / rf_total : 0)});
  double anon_total = normal.java + normal.native;
  table.AddRow({"native-heap share of anon refaults", "56.6%",
                Table::Pct(anon_total > 0 ? normal.native / anon_total : 0)});
  table.AddRow({"Java-heap share of anon refaults", "43.4%",
                Table::Pct(anon_total > 0 ? normal.java / anon_total : 0)});
  table.Print();

  PrintSection("GC ablation: refaults remaining with idle runtime GC disabled");
  StudyTotals no_gc = RunStudy(/*disable_gc=*/true);
  double remaining = normal.refaulted > 0 ? no_gc.refaulted / normal.refaulted : 0;
  std::printf("Paper: 77%% of refaults remain with idle GC off (GC is not the only source).\n");
  std::printf("Measured: %.1f%% remain (%.0f vs %.0f refaulted pages).\n", remaining * 100.0,
              no_gc.refaulted, normal.refaulted);
  return 0;
}
