// Ablation (§4.2.2): application-grain vs single-process freezing. Freezing
// only the faulting process leaves sibling processes of the same app
// running — they keep refaulting, so the inhibition is weaker (and on real
// devices risks wedging the app, which we measure by proxy as residual
// activity of half-frozen apps).
//
// Both variants x seeds run as one parallel sweep; raw cells land in
// results/ablation_grain.json.
#include "bench/bench_util.h"
#include "src/ice/daemon.h"

using namespace ice;

int main() {
  PrintSection("Ablation: application-grain vs single-process freezing (S-B, P20)");
  int rounds = BenchRounds(3);
  std::vector<uint64_t> seeds = RoundSeeds(rounds, 41000, 104729);

  // Variant-major, seed-minor: [0, rounds) = application grain,
  // [rounds, 2*rounds) = single-process.
  std::vector<SweepCell> cells;
  for (bool application_grain : {true, false}) {
    for (uint64_t seed : seeds) {
      SweepCell cell;
      cell.config.device = P20Profile();
      cell.config.scheme = "ice";
      cell.config.ice.application_grain = application_grain;
      cell.config.seed = seed;
      cell.scenario = ScenarioKind::kShortVideo;
      cell.bg_apps = 8;
      cell.duration = Sec(30);
      cells.push_back(cell);
    }
  }

  SweepRunner runner;
  std::vector<CellOutcome> outcomes = runner.Run(cells);
  WriteSweepReport("ablation_grain", runner.jobs(), cells, outcomes);
  ScenarioAverages app_grain = AverageOutcomes(outcomes, 0, seeds.size());
  ScenarioAverages proc_grain = AverageOutcomes(outcomes, seeds.size(), seeds.size());

  Table table({"freezing granularity", "fps", "BG refaults", "freeze ops"});
  table.AddRow({"application (Ice default)", Table::Num(app_grain.fps),
                Table::Num(app_grain.refaults_bg, 0), Table::Num(app_grain.freezes, 1)});
  table.AddRow({"single process (ablation)", Table::Num(proc_grain.fps),
                Table::Num(proc_grain.refaults_bg, 0), Table::Num(proc_grain.freezes, 1)});
  table.Print();
  std::printf("\nPaper's rationale (§4.2.2): processes of one app depend on each\n"
              "other, so Ice freezes whole applications. Single-process freezing\n"
              "leaves sibling processes refaulting (higher residual BG refaults).\n");
  return 0;
}
