// Ablation (§4.2.2): application-grain vs single-process freezing. Freezing
// only the faulting process leaves sibling processes of the same app
// running — they keep refaulting, so the inhibition is weaker (and on real
// devices risks wedging the app, which we measure by proxy as residual
// activity of half-frozen apps).
#include "bench/bench_util.h"
#include "src/ice/daemon.h"

using namespace ice;

namespace {

ScenarioAverages RunGrain(bool application_grain, int rounds) {
  ScenarioAverages avg;
  for (int round = 0; round < rounds; ++round) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.scheme = "ice";
    config.ice.application_grain = application_grain;
    config.seed = 41000 + static_cast<uint64_t>(round) * 104729;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kShortVideo));
    exp.CacheBackgroundApps(8, {fg});
    ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30));
    avg.fps += r.avg_fps / rounds;
    avg.refaults_bg += static_cast<double>(r.refaults_bg) / rounds;
    avg.reclaims += static_cast<double>(r.reclaims) / rounds;
    avg.freezes += static_cast<double>(r.freezes) / rounds;
  }
  return avg;
}

}  // namespace

int main() {
  PrintSection("Ablation: application-grain vs single-process freezing (S-B, P20)");
  int rounds = BenchRounds(3);
  ScenarioAverages app_grain = RunGrain(true, rounds);
  ScenarioAverages proc_grain = RunGrain(false, rounds);

  Table table({"freezing granularity", "fps", "BG refaults", "freeze ops"});
  table.AddRow({"application (Ice default)", Table::Num(app_grain.fps),
                Table::Num(app_grain.refaults_bg, 0), Table::Num(app_grain.freezes, 1)});
  table.AddRow({"single process (ablation)", Table::Num(proc_grain.fps),
                Table::Num(proc_grain.refaults_bg, 0), Table::Num(proc_grain.freezes, 1)});
  table.Print();
  std::printf("\nPaper's rationale (§4.2.2): processes of one app depend on each\n"
              "other, so Ice freezes whole applications. Single-process freezing\n"
              "leaves sibling processes refaulting (higher residual BG refaults).\n");
  return 0;
}
