// Memory-manager hot-path microbenchmarks: the packed 32-byte PageInfo with
// index-linked LRU lists against the pointer-based layout it replaced
// (56-byte records with an intrusive prev/next pointer pair and an owner
// back-pointer).
//
// The legacy layout and LRU are reproduced in-file (verbatim semantics:
// active-head insert, second-chance promotion, inactive_is_low balancing,
// victim-filter rotation) so the comparison stays runnable after the old
// code is gone. Working sets are sized past the LLC (256k-1M pages, i.e.
// 8-56 MB of page metadata) because the win is cache behavior: two packed
// records share a 64-byte line where one legacy record spilled over it.
//
// Set ICE_BENCH_ITERS to pin the iteration count (CI smoke runs do, so the
// artifact is comparable across machines in shape even when not in time).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/rng.h"
#include "src/mem/address_space.h"
#include "src/mem/lru.h"
#include "src/mem/page.h"

namespace ice {
namespace {

// ---------------------------------------------------------------------------
// The pre-packing page record and pointer-based LRU (one heap-spread record
// per page, prev/next pointers, owner back-pointer).
// ---------------------------------------------------------------------------

struct LegacyLruTag {};

struct LegacyPageInfo : ListNode<LegacyLruTag> {
  void* owner = nullptr;
  uint32_t vpn = 0;
  PageState state = PageState::kUntouched;
  HeapKind kind = HeapKind::kFile;
  bool dirty = false;
  bool referenced = false;
  bool active = false;
  uint64_t evict_cookie = 0;
  uint32_t zram_bytes = 0;
};

class LegacyLruLists {
 public:
  using VictimFilter = std::function<bool(const LegacyPageInfo&)>;

  void Insert(LegacyPageInfo* page) {
    page->active = true;
    page->referenced = false;
    list(PoolOfLegacy(*page), true).PushFront(page);
  }

  void Remove(LegacyPageInfo* page) {
    if (List::IsLinked(page)) {
      list(PoolOfLegacy(*page), page->active).Remove(page);
    }
  }

  void Touch(LegacyPageInfo* page) {
    if (!List::IsLinked(page)) {
      return;
    }
    if (page->active) {
      page->referenced = true;
      return;
    }
    if (!page->referenced) {
      page->referenced = true;
      return;
    }
    list(PoolOfLegacy(*page), false).Remove(page);
    page->active = true;
    page->referenced = false;
    list(PoolOfLegacy(*page), true).PushFront(page);
  }

  void IsolateCandidates(LruPool pool, uint32_t max, uint32_t scan_budget,
                         const VictimFilter& filter, std::vector<LegacyPageInfo*>& out) {
    out.clear();
    List& inactive = list(pool, false);
    List& active = list(pool, true);
    uint32_t scanned = 0;
    while (out.size() < max && scanned < scan_budget && !inactive.empty()) {
      ++scanned;
      LegacyPageInfo* page = inactive.PopBack();
      if (page->referenced) {
        page->referenced = false;
        page->active = true;
        active.PushFront(page);
        continue;
      }
      if (filter && filter(*page)) {
        inactive.PushFront(page);
        continue;
      }
      out.push_back(page);
    }
  }

  void Balance(LruPool pool) {
    List& active = list(pool, true);
    List& inactive = list(pool, false);
    while (!active.empty() && inactive.size() * 2 < active.size()) {
      LegacyPageInfo* page = active.PopBack();
      page->active = false;
      page->referenced = false;
      inactive.PushFront(page);
    }
  }

  void PutBackInactive(LegacyPageInfo* page) {
    page->active = false;
    list(PoolOfLegacy(*page), false).PushFront(page);
  }

 private:
  using List = IntrusiveList<LegacyPageInfo, LegacyLruTag>;

  static LruPool PoolOfLegacy(const LegacyPageInfo& page) {
    return IsAnon(page.kind) ? LruPool::kAnon : LruPool::kFile;
  }

  List& list(LruPool pool, bool active) {
    return lists_[static_cast<int>(pool) * 2 + (active ? 1 : 0)];
  }

  List lists_[4];
};

void ApplyIters(benchmark::internal::Benchmark* b) {
  if (const char* iters = std::getenv("ICE_BENCH_ITERS")) {
    long long n = std::strtoll(iters, nullptr, 10);
    if (n > 0) {
      b->Iterations(n);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-fault bookkeeping, reproduced from each implementation of the fault
// path. The legacy path allocated three times per flash refault: a fresh
// batch-vpn vector (even for single-page faults), a {space*, vpn}-keyed map
// node for the pending-fault table, and a waiter vector destroyed when the
// I/O completed. The packed path keys the table on the uint64 page handle
// (identity hash), carries the readahead range by value in the completion
// closure, and recycles waiter vectors through a pool, so steady-state
// churn allocates only the map node. The waker closure itself is identical
// on both sides.
// ---------------------------------------------------------------------------

using BenchWaiterList = std::vector<std::function<void()>>;

struct LegacyFaultBook {
  struct Key {
    void* space;
    uint32_t vpn;
    bool operator==(const Key& o) const { return space == o.space && vpn == o.vpn; }
  };
  struct Hash {
    size_t operator()(const Key& k) const { return std::hash<void*>()(k.space) * 31 + k.vpn; }
  };
  std::unordered_map<Key, BenchWaiterList, Hash> pending;

  void Begin(void* space, uint32_t vpn, const std::function<void()>& waker) {
    std::vector<uint32_t> batch_vpns{vpn};
    benchmark::DoNotOptimize(batch_vpns.data());
    pending[Key{space, vpn}].push_back(waker);
  }
  void Finish(void* space, uint32_t vpn) {
    auto it = pending.find(Key{space, vpn});
    BenchWaiterList waiters = std::move(it->second);
    pending.erase(it);
    for (auto& w : waiters) {
      w();
    }
  }
};

struct PackedFaultBook {
  std::unordered_map<uint64_t, BenchWaiterList> pending;
  std::vector<BenchWaiterList> pool;

  void Begin(uint64_t handle, const std::function<void()>& waker) {
    auto [it, inserted] = pending.try_emplace(handle);
    if (inserted && !pool.empty()) {
      it->second = std::move(pool.back());
      pool.pop_back();
    }
    it->second.push_back(waker);
  }
  void Finish(uint64_t handle) {
    auto it = pending.find(handle);
    BenchWaiterList waiters = std::move(it->second);
    pending.erase(it);
    for (auto& w : waiters) {
      w();
    }
    waiters.clear();
    pool.push_back(std::move(waiters));
  }
};

// Both fixtures expose the same surface so the workload templates below stay
// byte-for-byte identical across implementations.

struct LegacyFixture {
  explicit LegacyFixture(uint32_t pages) : arena(pages) {
    for (uint32_t i = 0; i < pages; ++i) {
      arena[i].vpn = i;
      // Same region split an AddressSpace uses: half anon, half file.
      arena[i].kind = i < pages / 2 ? HeapKind::kJavaHeap : HeapKind::kFile;
      arena[i].state = PageState::kPresent;
    }
  }
  LegacyPageInfo* page(uint32_t i) { return &arena[i]; }
  std::vector<LegacyPageInfo> arena;
  LegacyLruLists lru;
  LegacyFaultBook book;
  std::function<void()> waker = [this] { benchmark::DoNotOptimize(this); };
  std::vector<LegacyPageInfo*> scratch;
};

struct PackedFixture {
  explicit PackedFixture(uint32_t pages) : space(1, 1, "bench", Layout(pages)) {
    for (uint32_t i = 0; i < pages; ++i) {
      space.page(i).set_state(PageState::kPresent);
    }
  }
  static AddressSpaceLayout Layout(uint32_t pages) {
    AddressSpaceLayout layout;
    layout.java_pages = pages / 2;
    layout.native_pages = 0;
    layout.file_pages = pages - pages / 2;
    return layout;
  }
  PageInfo* page(uint32_t i) { return &space.page(i); }
  LruLists& lru_ref() { return space.lru(); }
  AddressSpace space;
  PackedFaultBook book;
  std::function<void()> waker = [this] { benchmark::DoNotOptimize(this); };
  std::vector<PageInfo*> scratch;
};

// Adapter so templates can say fix.lru() uniformly.
LegacyLruLists& LruOf(LegacyFixture& f) { return f.lru; }
LruLists& LruOf(PackedFixture& f) { return f.lru_ref(); }
void SetState(LegacyPageInfo* p, PageState s) { p->state = s; }
void SetState(PageInfo* p, PageState s) { p->set_state(s); }
void SetDirty(LegacyPageInfo* p, bool v) { p->dirty = v; }
void SetDirty(PageInfo* p, bool v) { p->set_dirty(v); }
// Tasks build one `[this]{ Wake(); }` waker each and hand out const refs;
// pushing it onto a waiter list is a small-buffer copy, never an allocation.
void BeginFault(LegacyFixture& f, uint32_t vpn) { f.book.Begin(&f.lru, vpn, f.waker); }
void BeginFault(PackedFixture& f, uint32_t vpn) {
  f.book.Begin(PageHandle(0, vpn).packed, f.waker);
}
void FinishFault(LegacyFixture& f, uint32_t vpn) { f.book.Finish(&f.lru, vpn); }
void FinishFault(PackedFixture& f, uint32_t vpn) { f.book.Finish(PageHandle(0, vpn).packed); }

// Populates the LRU in a random vpn permutation. On a real device the LRU
// order decorrelates from address order within minutes of uptime (faults,
// promotions and rotations shuffle it); inserting in vpn order would instead
// hand the hardware prefetcher a sequential walk no aged system exhibits.
template <class Fixture>
void ShuffledInsert(Fixture& fix, uint32_t pages) {
  std::vector<uint32_t> order(pages);
  for (uint32_t i = 0; i < pages; ++i) {
    order[i] = i;
  }
  Rng shuffle_rng(99);
  for (uint32_t i = pages - 1; i > 0; --i) {
    std::swap(order[i], order[shuffle_rng.Below(i + 1)]);
  }
  for (uint32_t i = 0; i < pages; ++i) {
    LruOf(fix).Insert(fix.page(order[i]));
  }
}

// ---------------------------------------------------------------------------
// Access-hit path: every present page sits on an LRU; the workload is random
// Touch()es across the whole working set — the kPresent fast path of
// MemoryManager::Access. Legacy chases a pointer into a 56-byte record;
// packed reads a 32-byte record at a computed offset.
// ---------------------------------------------------------------------------

template <class Fixture>
void TouchHit(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  Fixture fix(pages);
  auto& lru = LruOf(fix);
  ShuffledInsert(fix, pages);
  Rng rng(11);
  for (auto _ : state) {
    lru.Touch(fix.page(rng.Below(pages)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LegacyTouchHit(benchmark::State& state) { TouchHit<LegacyFixture>(state); }
void BM_PackedTouchHit(benchmark::State& state) { TouchHit<PackedFixture>(state); }
BENCHMARK(BM_LegacyTouchHit)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_PackedTouchHit)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Evict/refault churn: the full record lifecycle of pages under memory
// pressure — unlink + shadow-cookie stamp + state flip (EvictPage), then the
// refault undoing it (cookie consumed, state present, relink). Pages are
// processed a reclaim-batch at a time, the way MemoryManager::ReclaimBatch
// isolates 32 victims and then evicts them: the batch's record accesses are
// independent, so the memory system overlaps them and total metadata lines
// becomes the bound. The LRU is aged first (see ShuffledInsert), making each
// victim an effectively random line: one per packed record, nearly two for
// a straddling 56-byte record.
// ---------------------------------------------------------------------------

constexpr uint32_t kChurnBatch = 32;

template <class Page>
void EvictRecord(Page* page, uint64_t seq) {
  page->evict_cookie = seq;
  SetState(page, PageState::kOnFlash);
  SetDirty(page, false);
}

// The refault path *reads* the record's cold half before rewriting it: the
// shadow tracker looks up the eviction cookie to compute refault distance,
// and dropping the zram copy reads the stored compressed size. On the
// legacy layout those fields live past byte 32, i.e. usually on a second
// cache line.
template <class Page>
uint64_t RefaultRecord(Page* page) {
  uint64_t cold = page->evict_cookie + page->zram_bytes;
  page->evict_cookie = 0;
  SetState(page, PageState::kPresent);
  return cold;
}

template <class Fixture>
void ChurnEvictRefault(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  Fixture fix(pages);
  auto& lru = LruOf(fix);
  ShuffledInsert(fix, pages);
  Rng rng(12);
  uint64_t seq = 0;
  uint32_t victims[kChurnBatch];
  for (auto _ : state) {
    for (uint32_t i = 0; i < kChurnBatch; ++i) {
      // Distinct victims within a batch, as a real isolate pass would yield.
      uint32_t v;
      bool dup;
      do {
        v = rng.Below(pages);
        dup = false;
        for (uint32_t j = 0; j < i; ++j) {
          if (victims[j] == v) {
            dup = true;
            break;
          }
        }
      } while (dup);
      victims[i] = v;
    }
    for (uint32_t i = 0; i < kChurnBatch; ++i) {
      auto* page = fix.page(victims[i]);
      lru.Remove(page);
      EvictRecord(page, ++seq);
    }
    uint64_t cold = 0;
    for (uint32_t i = 0; i < kChurnBatch; ++i) {
      auto* page = fix.page(victims[i]);
      cold += RefaultRecord(page);
      BeginFault(fix, victims[i]);
      lru.Insert(page);
    }
    // I/O completion drains the whole batch's pending-fault entries (the
    // storage queue keeps a batch in flight).
    for (uint32_t i = 0; i < kChurnBatch; ++i) {
      FinishFault(fix, victims[i]);
    }
    benchmark::DoNotOptimize(cold);
  }
  state.SetItemsProcessed(state.iterations() * kChurnBatch);
}

void BM_LegacyChurn(benchmark::State& state) { ChurnEvictRefault<LegacyFixture>(state); }
void BM_PackedChurn(benchmark::State& state) { ChurnEvictRefault<PackedFixture>(state); }
BENCHMARK(BM_LegacyChurn)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_PackedChurn)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// Full reclaim scan: one kswapd-sized batch per iteration — Balance both
// pools, isolate up to 32 victims within a 128-page scan budget, evict each
// victim (shadow cookie + state flip), then refault and reinsert it so the
// population is steady. This is the shape of MemoryManager::ReclaimBatch
// plus the refaults that follow it. The scan hops are serial either way (a
// linked list is a dependency chain); the packed layout wins on every
// record the scan and the eviction bookkeeping then touch.
// ---------------------------------------------------------------------------

template <class Fixture>
void ReclaimScan(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  Fixture fix(pages);
  auto& lru = LruOf(fix);
  ShuffledInsert(fix, pages);
  Rng rng(13);
  uint64_t isolated = 0;
  uint64_t seq = 0;
  uint32_t refault_vpns[192];
  auto batch = [&] {
    // Sprinkle reference bits so the scan exercises second-chance promotion
    // (the dominant cost on a busy device: most tail pages were touched).
    for (int i = 0; i < 8; ++i) {
      lru.Touch(fix.page(rng.Below(pages)));
    }
    // Reclaim until 64 pages have been freed, however much scanning that
    // takes — per-iteration work is then a fixed number of evictions plus
    // the (variable, and honestly charged) scan cost of finding them.
    uint32_t refaults = 0;
    while (refaults < 64) {
      for (LruPool pool : {LruPool::kAnon, LruPool::kFile}) {
        lru.Balance(pool);
        lru.IsolateCandidates(pool, 32, 128, nullptr, fix.scratch);
        isolated += fix.scratch.size();
        for (auto* page : fix.scratch) {
          EvictRecord(page, ++seq);
          isolated += RefaultRecord(page);
          BeginFault(fix, page->vpn);
          refault_vpns[refaults++] = page->vpn;
          lru.Insert(page);
        }
      }
    }
    // The refaults that put the victims back complete as one storage batch.
    for (uint32_t i = 0; i < refaults; ++i) {
      FinishFault(fix, refault_vpns[i]);
    }
  };
  // One full population turnover untimed: ShuffledInsert leaves every page
  // active and never-referenced, and the measured window is comparable to
  // one list cycle, so timing from a cold start samples a drifting
  // transient instead of the steady state (~a quarter of tail pages
  // referenced, pools balanced).
  for (uint32_t warm = 0; warm < pages / 32; ++warm) {
    batch();
  }
  for (auto _ : state) {
    batch();
  }
  benchmark::DoNotOptimize(isolated);
  state.SetItemsProcessed(state.iterations());
}

void BM_LegacyReclaimScan(benchmark::State& state) { ReclaimScan<LegacyFixture>(state); }
void BM_PackedReclaimScan(benchmark::State& state) { ReclaimScan<PackedFixture>(state); }
BENCHMARK(BM_LegacyReclaimScan)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);
BENCHMARK(BM_PackedReclaimScan)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

// ---------------------------------------------------------------------------
// The same reclaim batch under the generation-clock aging policy: Balance is
// an O(1) counter comparison and the isolate pass is a sequential sweep over
// the contiguous PageInfo arena instead of a pointer chase along the
// inactive list. The sweep examines pages in address order, so the hardware
// prefetcher covers the next records while the current one is inspected —
// the list walk's serial dependency chain is gone.
// ---------------------------------------------------------------------------

struct GenClockFixture : PackedFixture {
  explicit GenClockFixture(uint32_t pages) : PackedFixture(pages) {
    space.lru().set_aging(AgingPolicy::kGenClock);
  }
};

void BM_GenClockReclaimScan(benchmark::State& state) { ReclaimScan<GenClockFixture>(state); }
BENCHMARK(BM_GenClockReclaimScan)->Arg(262144)->Arg(1048576)->Apply(ApplyIters);

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
