// Table 5: power-manager process freezing vs Ice — refaulted and reclaimed
// pages (x1K) on P20 across the four scenarios. Paper: the power manager
// reduces refaults by ~22-34% vs LRU+CFS but Ice does better in every
// scenario because freezing is memory-aware.
#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Table 5: power manager vs Ice, refault/reclaim pages (x1K)");
  int rounds = BenchRounds(3);

  struct PaperRow {
    const char* scenario;
    double pm_refault, pm_reclaim, ice_refault, ice_reclaim;
  };
  const PaperRow kPaper[] = {
      {"S-A", 6.712, 20.063, 5.233, 18.688},
      {"S-B", 7.332, 26.061, 6.457, 24.832},
      {"S-C", 3.856, 15.772, 2.929, 13.312},
      {"S-D", 14.858, 51.433, 12.18, 46.848},
  };

  Table table({"scenario", "paper PM rf/rec", "paper Ice rf/rec", "measured PM rf/rec",
               "measured Ice rf/rec"});
  ScenarioKind kinds[] = {ScenarioKind::kVideoCall, ScenarioKind::kShortVideo,
                          ScenarioKind::kScrolling, ScenarioKind::kGame};
  double pm_rf_total = 0, ice_rf_total = 0, lru_rf_total = 0;
  for (int i = 0; i < 4; ++i) {
    ScenarioAverages pm = RunScenarioRounds(P20Profile(), "power", kinds[i], 8, rounds);
    ScenarioAverages ic = RunScenarioRounds(P20Profile(), "ice", kinds[i], 8, rounds);
    ScenarioAverages lru = RunScenarioRounds(P20Profile(), "lru_cfs", kinds[i], 8, rounds);
    pm_rf_total += pm.refaults;
    ice_rf_total += ic.refaults;
    lru_rf_total += lru.refaults;
    auto fmt = [](double rf, double rec) {
      return Table::Num(rf / 1000.0, 2) + " / " + Table::Num(rec / 1000.0, 2);
    };
    table.AddRow({kPaper[i].scenario,
                  Table::Num(kPaper[i].pm_refault, 2) + " / " + Table::Num(kPaper[i].pm_reclaim, 2),
                  Table::Num(kPaper[i].ice_refault, 2) + " / " +
                      Table::Num(kPaper[i].ice_reclaim, 2),
                  fmt(pm.refaults, pm.reclaims), fmt(ic.refaults, ic.reclaims)});
  }
  table.Print();
  std::printf("\nShape check (paper): power-manager freezing helps (~-33%% refaults vs\n"
              "LRU+CFS) but Ice beats it in every scenario (memory-aware targeting).\n");
  std::printf("Measured: PM refaults %.0f%% of LRU+CFS; Ice refaults %.0f%% of LRU+CFS.\n",
              lru_rf_total > 0 ? pm_rf_total / lru_rf_total * 100 : 0,
              lru_rf_total > 0 ? ice_rf_total / lru_rf_total * 100 : 0);
  return 0;
}
