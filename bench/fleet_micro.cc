// Fleet warm-boot microbenchmarks: the three ways a fleet worker can get a
// device to the post-boot quiescent boundary, measured in isolation.
//
//   ColdConstruct    — fresh Experiment (subsystem construction, catalog
//                      install, 2 s simulated boot) + SettleToQuiescence:
//                      what every device paid before warm-boot templates.
//   TemplateRestore  — a fresh Experiment built around a donor snapshot
//                      (RestoreSnapshot: full construction, then overlay).
//   RecycledRestore  — RestoreTemplate on a live donor: no construction at
//                      all; the wheel/scheduler/AM/MM/storage are reset in
//                      place and the template overlaid, reusing every
//                      arena, pool and buffer the instance already owns.
//
// The fleet path is RecycledRestore; its gap to ColdConstruct is the
// per-device boot cost the templates remove, and its gap to TemplateRestore
// is what instance recycling saves on top of snapshot forking. A fourth
// pair measures the whole-device effect (boot + one-session trace) the
// FLEET smoke sees end to end.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/fleet.h"
#include "src/workload/usage_trace.h"

namespace ice {
namespace {

ExperimentConfig Mid4gConfig(uint64_t seed) {
  ExperimentConfig config;
  config.device = FleetTierProfile("mid-4g");
  config.seed = seed;
  return config;
}

std::vector<uint8_t> MakeTemplate() {
  Experiment donor(Mid4gConfig(1));
  donor.SettleToQuiescence();
  return donor.SaveSnapshot();
}

void BM_FleetColdConstruct(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    Experiment exp(Mid4gConfig(seed++));
    exp.SettleToQuiescence();
    benchmark::DoNotOptimize(exp.engine().now());
  }
}

void BM_FleetTemplateRestore(benchmark::State& state) {
  std::vector<uint8_t> tmpl = MakeTemplate();
  for (auto _ : state) {
    auto exp = Experiment::RestoreSnapshot(Mid4gConfig(1), tmpl,
                                           /*verify_checksum=*/false);
    benchmark::DoNotOptimize(exp->engine().now());
  }
}

void BM_FleetRecycledRestore(benchmark::State& state) {
  std::vector<uint8_t> tmpl = MakeTemplate();
  Experiment donor(Mid4gConfig(1));
  donor.SettleToQuiescence();
  uint64_t seed = 100;
  for (auto _ : state) {
    donor.RestoreTemplate(tmpl, seed++);
    benchmark::DoNotOptimize(donor.engine().now());
  }
}

// Whole-device comparison: boot-to-quiescence plus one short usage-trace
// session, cold versus recycled — the shape of one FLEET smoke device.
void RunTraceOn(Experiment& exp) {
  std::vector<UsageTraceRunner::InstalledApp> apps;
  apps.reserve(exp.catalog().size());
  std::vector<Uid> uids = exp.CatalogUids();
  for (size_t i = 0; i < exp.catalog().size(); ++i) {
    apps.push_back({uids[i], exp.catalog()[i].category});
  }
  UsageTraceRunner::Config tc;
  tc.days = 1;
  tc.sessions_per_day = 1;
  tc.session_mean = Sec(2);
  tc.sample_interval = Sec(24 * 3600);
  UsageTraceRunner runner(exp.am(), exp.choreographer(), std::move(apps),
                          exp.engine().rng().Fork(), tc);
  runner.Run();
}

void BM_FleetDeviceCold(benchmark::State& state) {
  uint64_t seed = 100;
  for (auto _ : state) {
    Experiment exp(Mid4gConfig(seed++));
    exp.SettleToQuiescence();
    RunTraceOn(exp);
    benchmark::DoNotOptimize(exp.engine().now());
  }
}

void BM_FleetDeviceRecycled(benchmark::State& state) {
  std::vector<uint8_t> tmpl = MakeTemplate();
  Experiment donor(Mid4gConfig(1));
  donor.SettleToQuiescence();
  uint64_t seed = 100;
  for (auto _ : state) {
    donor.RestoreTemplate(tmpl, seed++);
    RunTraceOn(donor);
    benchmark::DoNotOptimize(donor.engine().now());
  }
}

BENCHMARK(BM_FleetColdConstruct)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FleetTemplateRestore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FleetRecycledRestore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FleetDeviceCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FleetDeviceRecycled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
