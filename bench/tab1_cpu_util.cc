// Table 1: CPU utilization with N (0..8) apps cached in the background and
// no foreground app. Paper: average rises 43% -> 55%, peak 52% -> 69%.
#include <algorithm>

#include "bench/bench_util.h"

using namespace ice;

int main() {
  PrintSection("Table 1: CPU utilization with N apps in the BG (no FG app)");

  struct PaperRow {
    int n;
    int avg_pct;
    int peak_pct;
  };
  const PaperRow kPaper[] = {{0, 43, 52}, {2, 46, 58}, {4, 47, 63}, {6, 51, 67}, {8, 55, 69}};

  int rounds = BenchRounds(3);
  Table table({"BG apps", "paper avg", "paper peak", "measured avg", "measured peak"});

  for (const PaperRow& row : kPaper) {
    std::vector<double> avgs, peaks;
    for (int round = 0; round < rounds; ++round) {
      ExperimentConfig config;
      config.device = P20Profile();
      config.seed = 100 + static_cast<uint64_t>(round) * 7919;
      Experiment exp(config);
      if (row.n > 0) {
        exp.CacheBackgroundApps(row.n);
      }
      // Measure 10 s with no FG app, like the paper's setup, after a settle.
      exp.engine().RunFor(Sec(5));
      size_t start_samples = exp.scheduler().utilization_per_second().size();
      exp.engine().RunFor(Sec(10));
      const auto& samples = exp.scheduler().utilization_per_second();
      double peak = 0.0, sum = 0.0;
      size_t n = 0;
      for (size_t i = start_samples; i < samples.size(); ++i) {
        peak = std::max(peak, samples[i]);
        sum += samples[i];
        ++n;
      }
      avgs.push_back(n ? sum / n : 0.0);
      peaks.push_back(peak);
    }
    table.AddRow({std::to_string(row.n), std::to_string(row.avg_pct) + "%",
                  std::to_string(row.peak_pct) + "%", Table::Pct(Mean(avgs), 0),
                  Table::Pct(Mean(peaks), 0)});
  }
  table.Print();
  std::printf("\nShape check: BG apps are not CPU-intensive — utilization grows only\n"
              "modestly with N (the paper's conclusion in Section 2.2.3(1)).\n");
  return 0;
}
