// Table 1: CPU utilization with N (0..8) apps cached in the background and
// no foreground app. Paper: average rises 43% -> 55%, peak 52% -> 69%.
//
// The (BG count x seed) grid runs as one parallel sweep via SweepRunner::Map
// (the cell body is custom — it samples scheduler utilization with no
// foreground scenario, so it does not fit the standard SweepCell shape).
#include <algorithm>

#include "bench/bench_util.h"

using namespace ice;

namespace {

struct UtilSample {
  double avg = 0.0;
  double peak = 0.0;
};

UtilSample MeasureUtilization(int bg_apps, uint64_t seed) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = seed;
  Experiment exp(config);
  if (bg_apps > 0) {
    exp.CacheBackgroundApps(bg_apps);
  }
  // Measure 10 s with no FG app, like the paper's setup, after a settle.
  exp.engine().RunFor(Sec(5));
  size_t start_samples = exp.scheduler().utilization_per_second().size();
  exp.engine().RunFor(Sec(10));
  const auto& samples = exp.scheduler().utilization_per_second();
  UtilSample out;
  size_t n = 0;
  for (size_t i = start_samples; i < samples.size(); ++i) {
    out.peak = std::max(out.peak, samples[i]);
    out.avg += samples[i];
    ++n;
  }
  out.avg = n ? out.avg / static_cast<double>(n) : 0.0;
  return out;
}

}  // namespace

int main() {
  PrintSection("Table 1: CPU utilization with N apps in the BG (no FG app)");

  struct PaperRow {
    int n;
    int avg_pct;
    int peak_pct;
  };
  const PaperRow kPaper[] = {{0, 43, 52}, {2, 46, 58}, {4, 47, 63}, {6, 51, 67}, {8, 55, 69}};
  const size_t kRows = sizeof(kPaper) / sizeof(kPaper[0]);

  int rounds = BenchRounds(3);
  std::vector<uint64_t> seeds = RoundSeeds(rounds, 100);
  SweepRunner runner;
  std::printf("running %zu cells on %d workers\n", kRows * seeds.size(), runner.jobs());
  // Flat grid: row-major (BG count, seed), deterministic regardless of jobs.
  auto outcomes = runner.Map<UtilSample>(kRows * seeds.size(), [&](size_t i) {
    return MeasureUtilization(kPaper[i / seeds.size()].n, seeds[i % seeds.size()]);
  });

  Table table({"BG apps", "paper avg", "paper peak", "measured avg", "measured peak"});
  for (size_t row = 0; row < kRows; ++row) {
    std::vector<double> avgs, peaks;
    for (size_t r = 0; r < seeds.size(); ++r) {
      const auto& o = outcomes[row * seeds.size() + r];
      ICE_CHECK(o.ok) << "cell failed: " << o.error;
      avgs.push_back(o.value.avg);
      peaks.push_back(o.value.peak);
    }
    table.AddRow({std::to_string(kPaper[row].n), std::to_string(kPaper[row].avg_pct) + "%",
                  std::to_string(kPaper[row].peak_pct) + "%", Table::Pct(Mean(avgs), 0),
                  Table::Pct(Mean(peaks), 0)});
  }
  table.Print();
  std::printf("\nShape check: BG apps are not CPU-intensive — utilization grows only\n"
              "modestly with N (the paper's conclusion in Section 2.2.3(1)).\n");
  return 0;
}
