// Ablation (§4.3): "Before adopting the freezing/thawing approach, this
// paper explored various schemes, such as priority reduction. However, even
// the process with the lowest priority can still run frequently; the
// reduction of page refaults is not significant."
//
// We compare: LRU+CFS, UCSG (moderate deprioritization), a maximal
// priority-reduction variant (nice +19 for all BG tasks), and Ice. The
// scheme x seed grid runs as one parallel sweep; raw cells land in
// results/ablation_priority_vs_freeze.json.
#include "bench/bench_util.h"
#include "src/proc/process.h"
#include "src/proc/task.h"

using namespace ice;

namespace {

// The strawman: every background task at the minimum priority.
class MaxDeprioritizeScheme : public Scheme {
 public:
  std::string name() const override { return "Nice+19"; }
  void Install(const SystemRefs& refs) override {
    refs.am->AddStateListener([](App& app, AppState) {
      int nice = app.state() == AppState::kForeground ? -10 : 19;
      for (Process* p : app.processes()) {
        for (Task* t : p->tasks()) {
          t->set_nice(nice);
        }
      }
    });
  }
};

}  // namespace

int main() {
  PrintSection("Ablation: priority reduction vs freezing (S-B on P20, 8 BG apps)");
  RegisterIceScheme();
  // Registered before the sweep spawns workers; the registry is also
  // mutex-guarded, so the in-Experiment re-registrations are safe.
  SchemeRegistry::Instance().Register(
      "nice19", []() { return std::make_unique<MaxDeprioritizeScheme>(); });

  int rounds = BenchRounds(3);
  SweepAxes axes;
  axes.devices = {P20Profile()};
  axes.schemes = {"lru_cfs", "ucsg", "nice19", "ice"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {8};
  axes.seeds = RoundSeeds(rounds);

  SweepRunner runner;
  std::vector<SweepCell> cells = axes.Cells();
  std::printf("running %zu cells on %d workers\n", cells.size(), runner.jobs());
  std::vector<CellOutcome> outcomes = runner.Run(cells);
  WriteSweepReport("ablation_priority_vs_freeze", runner.jobs(), cells, outcomes);

  Table table({"scheme", "fps", "BG refaults", "reclaims"});
  for (size_t s = 0; s < axes.schemes.size(); ++s) {
    ScenarioAverages avg = AverageSeeds(axes, outcomes, 0, s, 0, 0);
    table.AddRow({axes.schemes[s], Table::Num(avg.fps), Table::Num(avg.refaults_bg, 0),
                  Table::Num(avg.reclaims, 0)});
  }
  table.Print();
  std::printf("\nPaper's point: even at the lowest priority, BG tasks still run and\n"
              "still refault; only freezing strictly constrains BG refaults.\n");
  return 0;
}
