// Ablation (§4.3): "Before adopting the freezing/thawing approach, this
// paper explored various schemes, such as priority reduction. However, even
// the process with the lowest priority can still run frequently; the
// reduction of page refaults is not significant."
//
// We compare: LRU+CFS, UCSG (moderate deprioritization), a maximal
// priority-reduction variant (nice +19 for all BG tasks), and Ice.
#include "bench/bench_util.h"
#include "src/proc/process.h"
#include "src/proc/task.h"

using namespace ice;

namespace {

// The strawman: every background task at the minimum priority.
class MaxDeprioritizeScheme : public Scheme {
 public:
  std::string name() const override { return "Nice+19"; }
  void Install(const SystemRefs& refs) override {
    refs.am->AddStateListener([](App& app, AppState) {
      int nice = app.state() == AppState::kForeground ? -10 : 19;
      for (Process* p : app.processes()) {
        for (Task* t : p->tasks()) {
          t->set_nice(nice);
        }
      }
    });
  }
};

}  // namespace

int main() {
  PrintSection("Ablation: priority reduction vs freezing (S-B on P20, 8 BG apps)");
  RegisterIceScheme();
  SchemeRegistry::Instance().Register(
      "nice19", []() { return std::make_unique<MaxDeprioritizeScheme>(); });

  int rounds = BenchRounds(3);
  Table table({"scheme", "fps", "BG refaults", "reclaims"});
  for (const char* scheme : {"lru_cfs", "ucsg", "nice19", "ice"}) {
    ScenarioAverages avg =
        RunScenarioRounds(P20Profile(), scheme, ScenarioKind::kShortVideo, 8, rounds);
    table.AddRow({scheme, Table::Num(avg.fps), Table::Num(avg.refaults_bg, 0),
                  Table::Num(avg.reclaims, 0)});
  }
  table.Print();
  std::printf("\nPaper's point: even at the lowest priority, BG tasks still run and\n"
              "still refault; only freezing strictly constrains BG refaults.\n");
  return 0;
}
