// Figure 3: the month-long eight-user study. (a) per-user daily evicted vs
// refaulted pages (paper: ~39% of evicted pages refault, >60% of refaults
// from BG); (b) cumulative counts over time for one device (refault ratio
// plateaus ~38%, 65% BG).
#include "bench/bench_util.h"
#include "src/workload/usage_trace.h"

using namespace ice;

namespace {

struct UserSpec {
  const char* user;
  DeviceProfile device;
};

}  // namespace

int main() {
  PrintSection("Figure 3(a): per-user daily evictions/refaults (8 simulated users)");
  // Table 2: P20 (users 1-2), P40~P20-class (3-4), Pixel3 (5-6), Pixel4~ (7-8).
  std::vector<UserSpec> users = {
      {"User-1 (P20)", P20Profile()},    {"User-2 (P20)", P20Profile()},
      {"User-3 (P40)", P20Profile()},    {"User-4 (P40)", P20Profile()},
      {"User-5 (Pixel3)", Pixel3Profile()}, {"User-6 (Pixel3)", Pixel3Profile()},
      {"User-7 (Pixel4)", Pixel3Profile()}, {"User-8 (Pixel4)", Pixel3Profile()},
  };

  Table table({"user", "evicted/day", "refaulted/day", "refault ratio", "BG share"});
  double total_ev = 0, total_rf = 0, total_bg = 0;
  std::vector<UsageSample> p20_samples;
  for (size_t u = 0; u < users.size(); ++u) {
    ExperimentConfig config;
    config.device = users[u].device;
    config.seed = 7000 + u * 37;
    Experiment exp(config);
    std::vector<UsageTraceRunner::InstalledApp> apps;
    for (size_t i = 0; i < exp.catalog().size(); ++i) {
      apps.push_back({exp.CatalogUids()[i], exp.catalog()[i].category});
    }
    UsageTraceRunner::Config trace;
    trace.days = 2;
    trace.sessions_per_day = 18;
    trace.session_mean = Sec(12);
    UsageTraceRunner runner(exp.am(), exp.choreographer(), apps, exp.engine().rng().Fork(),
                            trace);
    runner.Run();
    double ev = 0, rf = 0, bg = 0;
    for (const UsageDayStats& day : runner.day_stats()) {
      ev += static_cast<double>(day.evicted);
      rf += static_cast<double>(day.refaulted);
      bg += static_cast<double>(day.refault_bg);
    }
    ev /= trace.days;
    rf /= trace.days;
    bg /= trace.days;
    total_ev += ev;
    total_rf += rf;
    total_bg += bg;
    table.AddRow({users[u].user, Table::Num(ev, 0), Table::Num(rf, 0),
                  Table::Pct(ev > 0 ? rf / ev : 0), Table::Pct(rf > 0 ? bg / rf : 0)});
    if (u == 0) {
      p20_samples = std::vector<UsageSample>(runner.samples().begin(), runner.samples().end());
    }
  }
  table.Print();
  std::printf("\nPaper: 39%% of evicted pages refault on average; >60%% of refaults from BG.\n");
  std::printf("Measured overall: refault ratio %.1f%%, BG share %.1f%%.\n",
              total_ev > 0 ? total_rf / total_ev * 100.0 : 0.0,
              total_rf > 0 ? total_bg / total_rf * 100.0 : 0.0);

  PrintSection("Figure 3(b): cumulative evicted/refaulted over time (User-1, 30 s samples)");
  Table timeline({"t (min)", "cum evicted", "cum refaulted", "ratio", "BG share"});
  for (size_t i = 0; i < p20_samples.size(); i += 4) {
    const UsageSample& s = p20_samples[i];
    timeline.AddRow(
        {Table::Num(ToSeconds(s.time) / 60.0), std::to_string(s.cum_evicted),
         std::to_string(s.cum_refaulted),
         Table::Pct(s.cum_evicted ? static_cast<double>(s.cum_refaulted) / s.cum_evicted : 0),
         Table::Pct(s.cum_refaulted ? static_cast<double>(s.cum_refault_bg) / s.cum_refaulted
                                    : 0)});
  }
  timeline.Print();
  std::printf("\nPaper: the ratio starts low and plateaus around 38%%, with ~65%% of\n"
              "refaults from BG processes. Check the ratio column stabilizes.\n");
  return 0;
}
