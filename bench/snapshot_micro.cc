// Warm-prefix forking, end to end: a fig9-style bg-scaling column (one
// scheme, one scenario, bg = 2/4/6, shared caching prefix) swept cold
// versus forked from donor snapshots. The win is the caching work that no
// longer repeats: cold runs re-cache 2+4+6 = 12 background apps, the shared
// sweep caches 6 in one donor and restores the other cells from its
// snapshots. Results are byte-identical either way (the determinism gate in
// tests/harness/prefix_sweep_test.cc), so the ratio here is pure wall-clock.
//
// Serial runner on purpose: the guarded ratio should measure the work
// removed by prefix sharing, not how a particular core count overlaps the
// donor phase with cold cells.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/harness/sweep.h"

namespace ice {
namespace {

// One fig9 column, scaled down to bench length. The three bg counts share
// one caching prefix, which is the grid shape the paper's figures sweep.
std::vector<SweepCell> Fig9StyleCells() {
  SweepAxes axes;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"lru_cfs"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {2, 4, 6};
  axes.seeds = {7};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  return axes.Cells();
}

void RunGrid(benchmark::State& state, int jobs, bool share_prefix) {
  std::vector<SweepCell> cells = Fig9StyleCells();
  SweepRunner runner(jobs);
  for (auto _ : state) {
    std::vector<CellOutcome> outcomes = runner.Run(cells, share_prefix);
    for (const CellOutcome& o : outcomes) {
      if (!o.ok) {
        state.SkipWithError(o.error.c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(outcomes);
  }
}

void BM_Fig9GridCold(benchmark::State& state) { RunGrid(state, 1, false); }
void BM_Fig9GridShared(benchmark::State& state) { RunGrid(state, 1, true); }
// The parallel pair shows how the donor barrier interacts with a worker
// pool; not ratio-guarded (worker scheduling on shared runners is noisy).
void BM_Fig9GridColdJ4(benchmark::State& state) { RunGrid(state, 4, false); }
void BM_Fig9GridSharedJ4(benchmark::State& state) { RunGrid(state, 4, true); }

BENCHMARK(BM_Fig9GridCold)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Fig9GridShared)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Fig9GridColdJ4)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();
BENCHMARK(BM_Fig9GridSharedJ4)->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace ice

BENCHMARK_MAIN();
