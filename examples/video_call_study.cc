// Scenario deep-dive: reproduce the paper's root-cause analysis (§2.2.3) on
// one scenario. Runs a WhatsApp-style video call on a P20-class device in
// four background configurations and prints the FPS timeline plus the
// memory-activity counters that explain it.
//
//   $ ./video_call_study
#include <cstdio>

#include "src/harness/experiment.h"
#include "src/metrics/report.h"
#include "src/workload/synthetic.h"

int main() {
  using namespace ice;

  Table summary({"BG case", "avg FPS", "RIA", "reclaims", "refaults", "BG refaults"});

  for (const char* bg_case : {"BG-null", "BG-apps", "BG-cputester", "BG-memtester"}) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.seed = 99;
    Experiment exp(config);
    Uid fg = exp.UidOf("WhatsApp");

    if (std::string(bg_case) == "BG-apps") {
      exp.CacheBackgroundApps(8, {fg});
    } else if (std::string(bg_case) == "BG-cputester") {
      InstallCputester(exp.am(), 0.20, exp.config().device.num_cores);
      exp.engine().RunFor(Sec(2));
      exp.am().MoveForegroundToBackground();
    } else if (std::string(bg_case) == "BG-memtester") {
      InstallMemtester(exp.am(), static_cast<uint64_t>(3500) * kMiB);
      exp.engine().RunFor(Sec(60));
      exp.am().MoveForegroundToBackground();
    }

    ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(30));
    summary.AddRow({bg_case, Table::Num(r.avg_fps), Table::Pct(r.ria, 0),
                    std::to_string(r.reclaims), std::to_string(r.refaults),
                    std::to_string(r.refaults_bg)});

    std::printf("%s per-second FPS: ", bg_case);
    for (double f : r.fps_series) {
      std::printf("%.0f ", f);
    }
    std::printf("\n");
  }

  std::printf("\nVideo call (S-A) on P20, 30 s sampled after warmup:\n");
  summary.Print();
  std::printf(
      "\nReading the table like the paper does:\n"
      " * BG-cputester barely hurts: CPU contention is not the root cause.\n"
      " * BG-memtester hurts some: reclaim happens, but reclaimed pages stay gone.\n"
      " * BG-apps hurts most: reclaimed pages are re-demanded (refaults), reclaim\n"
      "   never ends, and the render thread keeps colliding with it.\n");
  return 0;
}
