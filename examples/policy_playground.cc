// Policy playground: run any scenario under every scheme side by side, and
// try your own ICE parameters. Shows the public API for configuring the
// daemon (Table 4 parameters) and inspecting its components.
//
//   $ ./policy_playground
#include <cstdio>

#include "src/harness/experiment.h"
#include "src/ice/daemon.h"
#include "src/metrics/report.h"

int main() {
  using namespace ice;

  const ScenarioKind kind = ScenarioKind::kGame;  // PUBG-style: the hard case.
  Table table({"scheme", "avg FPS", "RIA", "refaults", "freezes", "CPU util"});

  for (const char* scheme : {"lru_cfs", "ucsg", "acclaim", "power", "ice"}) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.seed = 7;
    config.scheme = scheme;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(kind));
    exp.CacheBackgroundApps(8, {fg});
    ScenarioResult r = exp.RunScenario(kind, Sec(30));
    table.AddRow({exp.scheme().name(), Table::Num(r.avg_fps), Table::Pct(r.ria, 0),
                  std::to_string(r.refaults), std::to_string(r.freezes),
                  Table::Pct(r.cpu_util, 0)});
  }
  std::printf("Mobile game (S-D) with 8 BG apps, every scheme:\n");
  table.Print();

  // Custom ICE configuration: a more aggressive freezer (bigger delta, no
  // whitelist slack) — the knobs of Table 4.
  std::printf("\nCustom ICE config (delta=16, E_t=500ms, whitelist adj<=0):\n");
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 7;
  config.scheme = "ice";
  config.ice.delta = 16.0;
  config.ice.thaw_duration = Ms(500);
  config.ice.whitelist_adj_threshold = 0;
  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(kind));
  exp.CacheBackgroundApps(8, {fg});
  ScenarioResult r = exp.RunScenario(kind, Sec(30));

  auto* daemon = static_cast<IceDaemon*>(&exp.scheme());
  std::printf("  fps=%.1f refaults=%llu (bg=%llu)\n", r.avg_fps,
              static_cast<unsigned long long>(r.refaults),
              static_cast<unsigned long long>(r.refaults_bg));
  std::printf("  RPF: %llu events seen, %llu sifted, %llu freezes\n",
              static_cast<unsigned long long>(daemon->rpf().events_seen()),
              static_cast<unsigned long long>(daemon->rpf().events_sifted()),
              static_cast<unsigned long long>(daemon->rpf().freezes_triggered()));
  std::printf("  MDT: R=%.1f, E_f=%.1fs, managing %zu apps, %llu epochs\n",
              daemon->mdt().CurrentR(),
              ToSeconds(daemon->mdt().CurrentFreezeDuration()),
              daemon->mdt().managed_count(),
              static_cast<unsigned long long>(daemon->mdt().epochs()));
  std::printf("  mapping table: %zu apps, %zu bytes (bound %zu)\n",
              daemon->mapping_table().app_count(),
              daemon->mapping_table().MemoryFootprintBytes(),
              MappingTable::kUpperBoundBytes);
  return 0;
}
