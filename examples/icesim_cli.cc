// icesim — command-line front end for the simulator. Runs any scenario under
// any scheme on either device profile and prints the full metric set; handy
// for quick A/B checks without writing code.
//
//   $ ./icesim_cli --device=p20 --scheme=ice --scenario=s-b --bg=8
//   $ ./icesim_cli --device=pixel3 --scheme=lru_cfs --scenario=s-d \
//         --bg=6 --duration=60 --warmup=300 --seed=7
//   $ ./icesim_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/harness/experiment.h"
#include "src/metrics/report.h"

namespace {

using namespace ice;

struct CliOptions {
  std::string device = "p20";
  std::string scheme = "lru_cfs";
  std::string scenario = "s-b";
  int bg = -1;  // -1 = the device's full-pressure count.
  int duration_s = 30;
  int warmup_s = 240;
  uint64_t seed = 42;
  bool series = false;
};

void PrintHelp() {
  std::printf(
      "icesim — ICE reproduction simulator\n\n"
      "  --device=p20|pixel3      device profile (default p20)\n"
      "  --scheme=NAME            lru_cfs | ucsg | acclaim | power | ice\n"
      "  --scenario=s-a|s-b|s-c|s-d   video call / short video / scrolling / game\n"
      "  --bg=N                   cached background apps (default: device full pressure)\n"
      "  --duration=SECONDS       measurement window (default 30)\n"
      "  --warmup=SECONDS         pre-measurement warmup (default 240)\n"
      "  --seed=N                 rng seed (default 42)\n"
      "  --series                 also print the per-second FPS series\n");
}

bool ParseArg(const char* arg, const char* key, std::string* out) {
  size_t len = std::strlen(key);
  if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

ScenarioKind KindFromName(const std::string& name) {
  if (name == "s-a" || name == "videocall") {
    return ScenarioKind::kVideoCall;
  }
  if (name == "s-b" || name == "shortvideo") {
    return ScenarioKind::kShortVideo;
  }
  if (name == "s-c" || name == "scrolling") {
    return ScenarioKind::kScrolling;
  }
  if (name == "s-d" || name == "game") {
    return ScenarioKind::kGame;
  }
  std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (std::strcmp(argv[i], "--series") == 0) {
      opts.series = true;
    } else if (ParseArg(argv[i], "--device", &value)) {
      opts.device = value;
    } else if (ParseArg(argv[i], "--scheme", &value)) {
      opts.scheme = value;
    } else if (ParseArg(argv[i], "--scenario", &value)) {
      opts.scenario = value;
    } else if (ParseArg(argv[i], "--bg", &value)) {
      opts.bg = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--duration", &value)) {
      opts.duration_s = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--warmup", &value)) {
      opts.warmup_s = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--seed", &value)) {
      opts.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  ExperimentConfig config;
  if (opts.device == "p20") {
    config.device = P20Profile();
  } else if (opts.device == "pixel3") {
    config.device = Pixel3Profile();
  } else {
    std::fprintf(stderr, "unknown device '%s'\n", opts.device.c_str());
    return 2;
  }
  config.scheme = opts.scheme;
  config.seed = opts.seed;
  ScenarioKind kind = KindFromName(opts.scenario);
  int bg = opts.bg >= 0 ? opts.bg : config.device.full_pressure_bg_apps;

  std::printf("icesim: %s on %s, scheme=%s, %d BG apps, %ds after %ds warmup, seed=%llu\n",
              ScenarioName(kind), config.device.name.c_str(), opts.scheme.c_str(), bg,
              opts.duration_s, opts.warmup_s, static_cast<unsigned long long>(opts.seed));

  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(kind));
  if (bg > 0) {
    exp.CacheBackgroundApps(bg, {fg});
  }
  ScenarioResult r = exp.RunScenario(kind, Sec(static_cast<uint64_t>(opts.duration_s)),
                                     Sec(static_cast<uint64_t>(opts.warmup_s)));

  Table table({"metric", "value"});
  table.AddRow({"avg FPS", Table::Num(r.avg_fps)});
  table.AddRow({"RIA", Table::Pct(r.ria)});
  table.AddRow({"reclaimed pages", std::to_string(r.reclaims)});
  table.AddRow({"refaults (total/bg/fg)", std::to_string(r.refaults) + " / " +
                                              std::to_string(r.refaults_bg) + " / " +
                                              std::to_string(r.refaults_fg)});
  table.AddRow({"I/O requests", std::to_string(r.io_requests)});
  table.AddRow({"I/O volume", Table::Num(static_cast<double>(r.io_bytes) / kMiB) + " MiB"});
  table.AddRow({"CPU utilization", Table::Pct(r.cpu_util)});
  table.AddRow({"freezes / thaws", std::to_string(r.freezes) + " / " + std::to_string(r.thaws)});
  table.AddRow({"LMK kills", std::to_string(r.lmk_kills)});
  table.AddRow({"free memory",
                Table::Num(PagesToMiB(exp.mm().free_pages() < 0
                                          ? 0
                                          : static_cast<PageCount>(exp.mm().free_pages())),
                           0) +
                    " MiB"});
  table.Print();

  if (opts.series) {
    std::printf("per-second FPS: ");
    for (double f : r.fps_series) {
      std::printf("%.0f ", f);
    }
    std::printf("\n");
  }
  return 0;
}
