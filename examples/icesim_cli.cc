// icesim — command-line front end for the simulator. Runs any scenario under
// any scheme on either device profile and prints the full metric set; handy
// for quick A/B checks without writing code.
//
//   $ ./icesim_cli --device=p20 --scheme=ice --scenario=s-b --bg=8
//   $ ./icesim_cli --device=pixel3 --scheme=lru_cfs --scenario=s-d
//         --bg=6 --duration=60 --warmup=300 --seed=7
//
// With --sweep, the list-valued flags (--device, --scheme, --scenario,
// --bg, --seed: comma-separated) form a grid that runs on a worker pool
// (--jobs) and is exported as JSON (--out names the report; see README
// "Running sweeps" for the schema):
//
//   $ ./icesim_cli --sweep --jobs=8 --scheme=lru_cfs,ice
//         --scenario=s-a,s-b,s-c,s-d --seed=1,2,3 --out=grid
//   $ ./icesim_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/experiment.h"
#include "src/harness/fleet.h"
#include "src/harness/fleet_report.h"
#include "src/harness/sweep.h"
#include "src/harness/sweep_report.h"
#include "src/ice/daemon.h"
#include "src/metrics/report.h"
#include "src/policy/registry.h"
#include "src/trace/chrome_export.h"
#include "src/trace/summary.h"

namespace {

using namespace ice;

struct CliOptions {
  std::string device = "p20";
  std::string scheme = "lru_cfs";
  std::string aging = "two_list";
  std::string swap = "baseline";
  std::string scenario = "s-b";
  std::string bg = "-1";  // -1 = the device's full-pressure count.
  int duration_s = 30;
  int warmup_s = 240;
  std::string seed = "42";
  bool series = false;
  bool sweep = false;
  bool fleet = false;
  uint64_t devices = 1000;
  std::string tiers;  // Empty = the full default ladder.
  int sessions = 3;
  uint32_t chunk = 0;
  int jobs = 0;  // 0 = ICE_JOBS env or hardware concurrency.
  std::string out = "cli_sweep";
  bool share_prefix = true;
  bool fleet_templates = true;
  std::string snapshot_path;  // Save a post-caching snapshot here.
  std::string restore_path;   // Start from a saved snapshot instead of caching.
  bool trace = false;
  std::string trace_path = "results/trace.json";
  uint32_t trace_buffer_pages = kDefaultTraceBufferPages;
};

void PrintHelp() {
  std::printf(
      "icesim — ICE reproduction simulator\n\n"
      "  --device=p20|pixel3      device profile (default p20)\n"
      "  --scheme=NAME            lru_cfs | ucsg | acclaim | power | ice\n"
      "  --aging=NAME             page aging policy: two_list (classic LRU,\n"
      "                           default) | gen_clock (MGLRU-style generation\n"
      "                           clock); a comma-list sweep axis in sweep mode\n"
      "  --swap=NAME              swap-out policy: baseline (admit everything,\n"
      "                           default) | hotness (Ariadne-style hotness-gated\n"
      "                           admission, tiered compression, zram writeback);\n"
      "                           a comma-list sweep axis in sweep mode\n"
      "  --scenario=s-a|s-b|s-c|s-d   video call / short video / scrolling / game\n"
      "  --bg=N                   cached background apps (default: device full pressure)\n"
      "  --duration=SECONDS       measurement window (default 30)\n"
      "  --warmup=SECONDS         pre-measurement warmup (default 240)\n"
      "  --seed=N                 rng seed (default 42)\n"
      "  --series                 also print the per-second FPS series\n"
      "  --trace[=PATH]           record a simtrace; single runs export Chrome\n"
      "                           trace_event JSON (default results/trace.json,\n"
      "                           open with Perfetto), sweeps fold a per-cell\n"
      "                           trace summary into the report\n"
      "  --trace-buffer-pages=N   ring capacity in 4 KiB pages (default 1024;\n"
      "                           overflow drops the oldest events)\n"
      "\nsnapshots (single-run mode):\n"
      "  --snapshot=PATH          after caching the background apps, save the\n"
      "                           complete simulator state to PATH and continue\n"
      "  --restore=PATH           resume from a snapshot saved with the same\n"
      "                           configuration flags; the run is byte-identical\n"
      "                           to the uninterrupted one\n"
      "\nsweep mode:\n"
      "  --sweep                  run the cross product of the list-valued flags\n"
      "                           (--device/--scheme/--scenario/--bg/--seed take\n"
      "                           comma-separated lists) on a worker pool\n"
      "  --jobs=N                 sweep workers (default: ICE_JOBS or all cores)\n"
      "  --share-prefix=on|off    fork cells that differ only in --bg from one\n"
      "                           warmed snapshot instead of re-running the shared\n"
      "                           caching prefix (default on; results identical)\n"
      "  --out=NAME               JSON report name: results/NAME.json\n"
      "\nfleet mode:\n"
      "  --fleet                  simulate a device population: every device is a\n"
      "                           (tier, scheme, seed) cell running a stochastic\n"
      "                           daily-usage trace; results stream into\n"
      "                           per-(scheme x tier) histograms\n"
      "  --devices=N              fleet size (default 1000)\n"
      "  --tiers=LIST             device tiers (default entry-2g,budget-3g,mid-4g,\n"
      "                           high-6g,flagship-8g)\n"
      "  --sessions=N             foreground sessions per device day (default 3)\n"
      "  --chunk=N                devices per work chunk (default: auto from N;\n"
      "                           part of the determinism contract — output is\n"
      "                           byte-identical for any --jobs at fixed chunk)\n"
      "  --fleet-templates=on|off warm-boot templates: fork each device from a\n"
      "                           per-group post-boot snapshot with per-worker\n"
      "                           sim recycling instead of cold-constructing it\n"
      "                           (default on; results byte-identical)\n"
      "  --jobs/--scheme/--seed/--out as in sweep mode; report:\n"
      "                           results/FLEET_NAME.json\n");
}

bool ParseArg(const char* arg, const char* key, std::string* out) {
  size_t len = std::strlen(key);
  if (std::strncmp(arg, key, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

ScenarioKind KindFromName(const std::string& name) {
  if (name == "s-a" || name == "videocall") {
    return ScenarioKind::kVideoCall;
  }
  if (name == "s-b" || name == "shortvideo") {
    return ScenarioKind::kShortVideo;
  }
  if (name == "s-c" || name == "scrolling") {
    return ScenarioKind::kScrolling;
  }
  if (name == "s-d" || name == "game") {
    return ScenarioKind::kGame;
  }
  std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
  std::exit(2);
}

// Validates an aging-policy spelling, exiting like the other name parsers.
void CheckAgingName(const std::string& name) {
  AgingPolicy policy;
  if (!AgingPolicyFromName(name, &policy)) {
    std::fprintf(stderr, "unknown aging policy '%s' (known: two_list gen_clock)\n",
                 name.c_str());
    std::exit(2);
  }
}

// Validates a swap-policy spelling, exiting like the other name parsers.
void CheckSwapName(const std::string& name) {
  SwapPolicy policy;
  if (!SwapPolicyFromName(name, &policy)) {
    std::fprintf(stderr, "unknown swap policy '%s' (known: baseline hotness)\n",
                 name.c_str());
    std::exit(2);
  }
}

DeviceProfile DeviceFromName(const std::string& name) {
  if (name == "p20") {
    return P20Profile();
  }
  if (name == "pixel3") {
    return Pixel3Profile();
  }
  std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
  std::exit(2);
}

int RunSweep(const CliOptions& opts) {
  SweepAxes axes;
  for (const std::string& d : SplitList(opts.device)) {
    axes.devices.push_back(DeviceFromName(d));
  }
  axes.schemes = SplitList(opts.scheme);
  RegisterIceScheme();  // validate scheme names before the workers start
  for (const std::string& s : axes.schemes) {
    if (!SchemeRegistry::Instance().Contains(s)) {
      std::fprintf(stderr, "unknown scheme '%s' (known:", s.c_str());
      for (const std::string& k : SchemeRegistry::Instance().Keys()) {
        std::fprintf(stderr, " %s", k.c_str());
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }
  axes.agings = SplitList(opts.aging);
  for (const std::string& a : axes.agings) {
    CheckAgingName(a);
  }
  axes.swaps = SplitList(opts.swap);
  for (const std::string& s : axes.swaps) {
    CheckSwapName(s);
  }
  for (const std::string& s : SplitList(opts.scenario)) {
    axes.scenarios.push_back(KindFromName(s));
  }
  for (const std::string& b : SplitList(opts.bg)) {
    axes.bg_counts.push_back(std::atoi(b.c_str()));
  }
  for (const std::string& s : SplitList(opts.seed)) {
    axes.seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
  }
  axes.duration = Sec(static_cast<uint64_t>(opts.duration_s));
  axes.warmup = Sec(static_cast<uint64_t>(opts.warmup_s));
  if (opts.trace) {
    // Per-cell tracers; each cell's summary lands in the JSON report.
    axes.base.trace = true;
    axes.base.trace_buffer_pages = opts.trace_buffer_pages;
  }

  SweepRunner runner(opts.jobs);
  std::vector<SweepCell> cells = axes.Cells();
  std::printf("icesim sweep: %zu cells on %d workers%s\n", cells.size(), runner.jobs(),
              opts.share_prefix ? ", shared caching prefixes" : "");
  std::vector<CellOutcome> outcomes = runner.Run(cells, opts.share_prefix);

  Table table({"device", "scheme", "scenario", "bg", "seed", "fps", "RIA", "refaults",
               "reclaims", "CPU"});
  int failures = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    int bg = cell.bg_apps >= 0 ? cell.bg_apps : cell.config.device.full_pressure_bg_apps;
    if (!outcomes[i].ok) {
      ++failures;
      table.AddRow({cell.config.device.name, cell.config.scheme,
                    ScenarioLabel(cell.scenario), std::to_string(bg),
                    std::to_string(cell.config.seed), "FAILED: " + outcomes[i].error, "-",
                    "-", "-", "-"});
      continue;
    }
    const ScenarioResult& r = outcomes[i].value;
    table.AddRow({cell.config.device.name, cell.config.scheme,
                  ScenarioLabel(cell.scenario), std::to_string(bg),
                  std::to_string(cell.config.seed), Table::Num(r.avg_fps),
                  Table::Pct(r.ria, 0), std::to_string(r.refaults),
                  std::to_string(r.reclaims), Table::Pct(r.cpu_util, 0)});
  }
  table.Print();

  std::string path = WriteSweepReport(opts.out, runner.jobs(), cells, outcomes);
  if (!path.empty()) {
    std::printf("report: %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

int RunFleet(const CliOptions& opts) {
  FleetConfig config;
  config.devices = opts.devices;
  config.jobs = opts.jobs;
  config.chunk = opts.chunk;
  config.seed = std::strtoull(opts.seed.c_str(), nullptr, 10);
  config.sessions = opts.sessions;
  config.use_templates = opts.fleet_templates;
  CheckAgingName(opts.aging);
  config.aging = opts.aging;
  CheckSwapName(opts.swap);
  config.swap = opts.swap;
  config.schemes = SplitList(opts.scheme);
  RegisterIceScheme();
  for (const std::string& s : config.schemes) {
    if (!SchemeRegistry::Instance().Contains(s)) {
      std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
      return 2;
    }
  }
  if (!opts.tiers.empty()) {
    config.tiers = SplitList(opts.tiers);
    for (const std::string& t : config.tiers) {
      if (!IsFleetTier(t)) {
        std::fprintf(stderr, "unknown tier '%s' (known:", t.c_str());
        for (const std::string& k : FleetTierNames()) {
          std::fprintf(stderr, " %s", k.c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
  }

  FleetRunner runner(config);
  std::printf("icesim fleet: %llu devices, %zu groups, chunk=%u, %d workers%s\n",
              static_cast<unsigned long long>(runner.config().devices),
              runner.num_groups(), runner.chunk_size(), runner.config().jobs,
              runner.config().use_templates ? ", warm-boot templates" : "");
  FleetResult result = runner.Run();

  Table table({"tier", "scheme", "devices", "fps p50", "RIA p50", "lat p99 ms",
               "refaults/dev", "LMK/dev", "arena MiB"});
  for (const FleetGroupStats& g : result.groups) {
    table.AddRow({g.tier, g.scheme, std::to_string(g.devices),
                  Table::Num(g.fps.Percentile(0.5)),
                  Table::Pct(g.ria.Percentile(0.5), 1),
                  Table::Num(g.frame_latency_us.Percentile(0.99) / 1000.0),
                  Table::Num(g.devices ? static_cast<double>(g.total_refaults) /
                                             static_cast<double>(g.devices)
                                       : 0.0, 0),
                  Table::Num(g.devices ? static_cast<double>(g.total_lmk_kills) /
                                             static_cast<double>(g.devices)
                                       : 0.0),
                  Table::Num(static_cast<double>(g.peak_arena_bytes) / kMiB, 1)});
  }
  table.Print();
  std::printf("fleet wall time: %.1f s; peak metadata arena: %.1f MiB\n",
              result.wall_seconds,
              static_cast<double>(result.peak_arena_bytes) / kMiB);
  if (result.devices_failed > 0) {
    std::fprintf(stderr, "%llu device(s) failed\n",
                 static_cast<unsigned long long>(result.devices_failed));
  }

  std::string path = WriteFleetReport(opts.out, result);
  if (!path.empty()) {
    std::printf("report: %s\n", path.c_str());
  }
  return result.devices_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (std::strcmp(argv[i], "--series") == 0) {
      opts.series = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      opts.sweep = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      opts.fleet = true;
    } else if (ParseArg(argv[i], "--devices", &value)) {
      opts.devices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--tiers", &value)) {
      opts.tiers = value;
    } else if (ParseArg(argv[i], "--sessions", &value)) {
      opts.sessions = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--chunk", &value)) {
      opts.chunk = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseArg(argv[i], "--device", &value)) {
      opts.device = value;
    } else if (ParseArg(argv[i], "--scheme", &value)) {
      opts.scheme = value;
    } else if (ParseArg(argv[i], "--aging", &value)) {
      opts.aging = value;
    } else if (ParseArg(argv[i], "--swap", &value)) {
      opts.swap = value;
    } else if (ParseArg(argv[i], "--scenario", &value)) {
      opts.scenario = value;
    } else if (ParseArg(argv[i], "--bg", &value)) {
      opts.bg = value;
    } else if (ParseArg(argv[i], "--duration", &value)) {
      opts.duration_s = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--warmup", &value)) {
      opts.warmup_s = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--seed", &value)) {
      opts.seed = value;
    } else if (ParseArg(argv[i], "--jobs", &value)) {
      opts.jobs = std::atoi(value.c_str());
    } else if (ParseArg(argv[i], "--share-prefix", &value)) {
      if (value == "on") {
        opts.share_prefix = true;
      } else if (value == "off") {
        opts.share_prefix = false;
      } else {
        std::fprintf(stderr, "--share-prefix takes 'on' or 'off', got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseArg(argv[i], "--fleet-templates", &value)) {
      if (value == "on") {
        opts.fleet_templates = true;
      } else if (value == "off") {
        opts.fleet_templates = false;
      } else {
        std::fprintf(stderr, "--fleet-templates takes 'on' or 'off', got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseArg(argv[i], "--snapshot", &value)) {
      opts.snapshot_path = value;
    } else if (ParseArg(argv[i], "--restore", &value)) {
      opts.restore_path = value;
    } else if (ParseArg(argv[i], "--out", &value)) {
      opts.out = value;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opts.trace = true;
    } else if (ParseArg(argv[i], "--trace-buffer-pages", &value)) {
      opts.trace_buffer_pages = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseArg(argv[i], "--trace", &value)) {
      opts.trace = true;
      opts.trace_path = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", argv[i]);
      return 2;
    }
  }

  if (opts.fleet) {
    if (opts.out == "cli_sweep") {
      opts.out = "cli_fleet";
    }
    return RunFleet(opts);
  }
  if (opts.sweep) {
    return RunSweep(opts);
  }

  ExperimentConfig config;
  config.device = DeviceFromName(opts.device);
  config.scheme = opts.scheme;
  CheckAgingName(opts.aging);
  config.aging = opts.aging;
  CheckSwapName(opts.swap);
  config.swap = opts.swap;
  config.seed = std::strtoull(opts.seed.c_str(), nullptr, 10);
  config.trace = opts.trace;
  config.trace_buffer_pages = opts.trace_buffer_pages;
  ScenarioKind kind = KindFromName(opts.scenario);
  int bg_opt = std::atoi(opts.bg.c_str());
  int bg = bg_opt >= 0 ? bg_opt : config.device.full_pressure_bg_apps;

  if (opts.restore_path.empty()) {
    std::printf("icesim: %s on %s, scheme=%s, %d BG apps, %ds after %ds warmup, seed=%llu\n",
                ScenarioName(kind), config.device.name.c_str(), opts.scheme.c_str(), bg,
                opts.duration_s, opts.warmup_s, static_cast<unsigned long long>(config.seed));
  } else {
    std::printf("icesim: %s on %s, scheme=%s, BG apps from %s, %ds after %ds warmup, seed=%llu\n",
                ScenarioName(kind), config.device.name.c_str(), opts.scheme.c_str(),
                opts.restore_path.c_str(), opts.duration_s, opts.warmup_s,
                static_cast<unsigned long long>(config.seed));
  }

  std::unique_ptr<Experiment> exp;
  if (!opts.restore_path.empty()) {
    // Resume from the saved post-caching boundary: the snapshot carries the
    // cached apps, so --bg is ignored and caching is skipped entirely.
    try {
      exp = Experiment::RestoreSnapshotFromFile(config, opts.restore_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "restore failed: %s\n", e.what());
      return 1;
    }
    exp->FinishCaching();
  } else {
    exp = std::make_unique<Experiment>(config);
    Uid fg = exp->UidOf(ScenarioPackage(kind));
    if (bg > 0) {
      // The decomposed caching loop so --snapshot can save at the quiescent
      // boundary after the last app, before FinishCaching — the same spot the
      // prefix-sharing sweep forks from.
      std::vector<Uid> pool = exp->PlanBackgroundPool({fg});
      if (static_cast<size_t>(bg) > pool.size()) {
        std::fprintf(stderr, "--bg=%d exceeds the catalog's %zu candidates\n", bg,
                     pool.size());
        return 2;
      }
      for (int i = 0; i < bg; ++i) {
        if (!exp->CacheOneBackgroundApp(pool[static_cast<size_t>(i)]) &&
            !opts.snapshot_path.empty()) {
          std::fprintf(stderr, "snapshot failed: system did not reach quiescence\n");
          return 1;
        }
      }
      if (!opts.snapshot_path.empty()) {
        exp->SaveSnapshotToFile(opts.snapshot_path);
        std::printf("snapshot: saved to %s\n", opts.snapshot_path.c_str());
      }
      exp->FinishCaching();
    } else if (!opts.snapshot_path.empty()) {
      if (!exp->SettleToQuiescence()) {
        std::fprintf(stderr, "snapshot failed: system did not reach quiescence\n");
        return 1;
      }
      exp->SaveSnapshotToFile(opts.snapshot_path);
      std::printf("snapshot: saved to %s\n", opts.snapshot_path.c_str());
      // Mirror the restored run, which always resumes through FinishCaching.
      exp->FinishCaching();
    }
  }
  ScenarioResult r = exp->RunScenario(kind, Sec(static_cast<uint64_t>(opts.duration_s)),
                                      Sec(static_cast<uint64_t>(opts.warmup_s)));

  Table table({"metric", "value"});
  table.AddRow({"avg FPS", Table::Num(r.avg_fps)});
  table.AddRow({"RIA", Table::Pct(r.ria)});
  table.AddRow({"reclaimed pages", std::to_string(r.reclaims)});
  table.AddRow({"refaults (total/bg/fg)", std::to_string(r.refaults) + " / " +
                                              std::to_string(r.refaults_bg) + " / " +
                                              std::to_string(r.refaults_fg)});
  table.AddRow({"I/O requests", std::to_string(r.io_requests)});
  table.AddRow({"I/O volume", Table::Num(static_cast<double>(r.io_bytes) / kMiB) + " MiB"});
  table.AddRow({"CPU utilization", Table::Pct(r.cpu_util)});
  table.AddRow({"freezes / thaws", std::to_string(r.freezes) + " / " + std::to_string(r.thaws)});
  table.AddRow({"LMK kills", std::to_string(r.lmk_kills)});
  table.AddRow({"free memory",
                Table::Num(PagesToMiB(exp->mm().free_pages() < 0
                                          ? 0
                                          : static_cast<PageCount>(exp->mm().free_pages())),
                           0) +
                    " MiB"});
  table.Print();

  if (opts.series) {
    std::printf("per-second FPS: ");
    for (double f : r.fps_series) {
      std::printf("%.0f ", f);
    }
    std::printf("\n");
  }

  if (opts.trace && exp->tracer() != nullptr) {
    std::string path = WriteChromeTrace(opts.trace_path, *exp->tracer());
    if (path.empty()) {
      std::fprintf(stderr, "trace export failed: %s\n", opts.trace_path.c_str());
      return 1;
    }
    const Tracer& t = *exp->tracer();
    std::printf("trace: %s (%llu events emitted, %zu retained, %llu dropped)\n",
                path.c_str(), static_cast<unsigned long long>(t.emitted()), t.retained(),
                static_cast<unsigned long long>(t.dropped()));
  }
  return 0;
}
