// Daily-usage example: simulate a "day" of app switching on a mid-range
// phone (the §3.1 user-study methodology) and print the eviction/refault
// profile that motivates ICE.
//
//   $ ./daily_usage
#include <cstdio>

#include "src/harness/experiment.h"
#include "src/metrics/report.h"
#include "src/workload/usage_trace.h"

int main() {
  using namespace ice;

  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 2026;
  Experiment exp(config);

  std::vector<UsageTraceRunner::InstalledApp> apps;
  for (size_t i = 0; i < exp.catalog().size(); ++i) {
    apps.push_back({exp.CatalogUids()[i], exp.catalog()[i].category});
  }

  UsageTraceRunner::Config trace;
  trace.days = 1;
  trace.sessions_per_day = 25;
  trace.session_mean = Sec(12);
  UsageTraceRunner runner(exp.am(), exp.choreographer(), apps, exp.engine().rng().Fork(),
                          trace);
  runner.Run();

  const UsageDayStats& day = runner.day_stats()[0];
  std::printf("One simulated day (%d foreground sessions) on a %s:\n\n",
              trace.sessions_per_day, exp.config().device.name.c_str());
  Table table({"metric", "value"});
  table.AddRow({"pages evicted", std::to_string(day.evicted)});
  table.AddRow({"pages refaulted", std::to_string(day.refaulted)});
  table.AddRow({"refault ratio",
                Table::Pct(day.evicted ? static_cast<double>(day.refaulted) / day.evicted : 0)});
  table.AddRow({"refaults from background",
                Table::Pct(day.refaulted ? static_cast<double>(day.refault_bg) / day.refaulted
                                         : 0)});
  table.AddRow({"LMK kills", std::to_string(exp.engine().stats().Get(stat::kLmkKills))});
  table.Print();

  std::printf("\nCumulative trajectory (every 30 s of active use):\n");
  Table timeline({"minute", "evicted", "refaulted", "ratio"});
  for (size_t i = 0; i < runner.samples().size(); i += 2) {
    const UsageSample& s = runner.samples()[i];
    timeline.AddRow({Table::Num(ToSeconds(s.time) / 60.0), std::to_string(s.cum_evicted),
                     std::to_string(s.cum_refaulted),
                     Table::Pct(s.cum_evicted ? static_cast<double>(s.cum_refaulted) /
                                                    s.cum_evicted
                                              : 0)});
  }
  timeline.Print();
  std::printf("\nThe paper's Figure 3 observation: a large share of reclaimed pages\n"
              "comes right back — mostly pulled by background processes.\n");
  return 0;
}
