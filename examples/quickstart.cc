// Quickstart: build a simulated resource-limited phone, cache background
// apps, play a short-form video in the foreground, and compare the stock
// LRU+CFS kernel against ICE.
//
//   $ ./quickstart
//
// See README.md for the API walkthrough.
#include <cstdio>

#include "src/harness/experiment.h"
#include "src/metrics/report.h"

int main() {
  using namespace ice;

  Table table({"scheme", "avg FPS", "RIA", "BG refaults", "reclaims", "freezes"});

  for (const char* scheme : {"lru_cfs", "ice"}) {
    // 1. Configure a device (HUAWEI P20 profile: 6 GB RAM, UFS 2.1) and a
    //    policy, then build the full simulated system.
    ExperimentConfig config;
    config.device = P20Profile();
    config.seed = 2023;
    config.scheme = scheme;
    Experiment exp(config);

    // 2. Fill the background with 8 cached apps, like a real phone.
    Uid fg = exp.UidOf("TikTok");
    exp.CacheBackgroundApps(8, /*exclude=*/{fg});

    // 3. Watch short-form videos in the foreground for 30 simulated seconds.
    ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30));

    table.AddRow({exp.scheme().name(), Table::Num(r.avg_fps), Table::Pct(r.ria),
                  std::to_string(r.refaults_bg), std::to_string(r.reclaims),
                  std::to_string(r.freezes)});
  }

  std::printf("Short-form video with 8 background apps (P20 profile):\n");
  table.Print();
  return 0;
}
