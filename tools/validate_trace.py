#!/usr/bin/env python3
"""Validate a simtrace Chrome trace_event export.

Checks that the file is well-formed JSON in the Chrome trace_event "object
format" (a traceEvents array), that it contains events at all, and that each
required event name appears at least once. Prints a per-name count table so
CI logs double as a cheap trace summary.

Usage:
  validate_trace.py TRACE.json [--require name ...]

The default --require set is the minimal footprint of any run that exercises
scheduling, reclaim and frames; pass an explicit list to tighten or loosen.
"""

import argparse
import collections
import json
import sys

DEFAULT_REQUIRED = [
    "kswapd_reclaim",
    "zram_compress",
    "frame",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument(
        "--require",
        nargs="*",
        default=DEFAULT_REQUIRED,
        help="event names that must appear at least once",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: {args.trace}: {err}", file=sys.stderr)
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("FAIL: no traceEvents array", file=sys.stderr)
        return 1

    counts = collections.Counter()
    last_ts = {}
    for e in events:
        name = e.get("name")
        phase = e.get("ph")
        if not isinstance(name, str) or not isinstance(phase, str):
            print(f"FAIL: malformed event: {e!r}", file=sys.stderr)
            return 1
        if phase == "M":  # metadata records a track name, not an occurrence
            continue
        counts[name] += 1
        # Determinism guard: timestamps must be monotone per (pid, tid) track.
        ts = e.get("ts")
        key = (e.get("pid"), e.get("tid"))
        if isinstance(ts, (int, float)):
            if key in last_ts and ts < last_ts[key]:
                print(
                    f"FAIL: ts went backwards on track {key}: "
                    f"{last_ts[key]} -> {ts} ({name})",
                    file=sys.stderr,
                )
                return 1
            last_ts[key] = ts

    total = sum(counts.values())
    if total == 0:
        print("FAIL: trace contains no events", file=sys.stderr)
        return 1

    width = max(len(n) for n in counts)
    for name in sorted(counts):
        print(f"  {name:<{width}}  {counts[name]}")
    print(f"ok: {total} events across {len(counts)} names")

    missing = [n for n in args.require if counts[n] == 0]
    if missing:
        print(f"FAIL: required events absent: {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
