#!/usr/bin/env python3
"""Perf-regression guard for the committed benchmark records.

Compares a fresh google-benchmark JSON run against a committed
results/BENCH_*.json record: for every microbenchmark pair in the record,
recompute the before/after speedup from the fresh run and fail if it fell
more than --tolerance below the committed speedup.

The guard is deliberately ratio-based. Absolute ns/op on shared CI runners
is meaningless, but legacy and packed implementations run in the same
process seconds apart, so their ratio survives runner-to-runner variance.
With the default 25% tolerance a committed 1.4x headline fails only below
~1.05x — i.e. when the optimized path has genuinely stopped being faster.

Usage:
  check_bench.py --fresh build/results/BENCH_mm.json \
                 --committed results/BENCH_mm.json [--tolerance 0.25]
"""

import argparse
import json
import sys


def load_fresh_times(path):
    """Minimum real_time per benchmark name from a google-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are on.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        # Repetition rows carry a "/repeats:N" style suffix on some versions.
        name = name.split("/repeats:")[0]
        t = bench.get("real_time")
        if t is None:
            continue
        if name not in times or t < times[name]:
            times[name] = t
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="google-benchmark JSON from the current run")
    parser.add_argument("--committed", required=True,
                        help="committed results/BENCH_*.json record")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup (default 0.25)")
    args = parser.parse_args()

    with open(args.committed) as f:
        committed = json.load(f)
    fresh = load_fresh_times(args.fresh)

    failures = []
    checked = 0
    for key, entry in committed.get("microbenchmarks", {}).items():
        before_name = entry["before"]["name"]
        after_name = entry["after"]["name"]
        committed_speedup = entry["speedup"]
        if before_name not in fresh or after_name not in fresh:
            print(f"SKIP {key}: {before_name} / {after_name} not in fresh run")
            continue
        checked += 1
        fresh_speedup = fresh[before_name] / fresh[after_name]
        floor = committed_speedup * (1.0 - args.tolerance)
        status = "ok" if fresh_speedup >= floor else "REGRESSION"
        print(f"{status:>10}  {key}: committed {committed_speedup:.2f}x, "
              f"fresh {fresh_speedup:.2f}x (floor {floor:.2f}x)")
        if fresh_speedup < floor:
            failures.append(key)

    if checked == 0:
        print("error: no benchmark pairs matched between fresh and committed")
        return 1
    if failures:
        print(f"\n{len(failures)} perf regression(s): {', '.join(failures)}")
        return 1
    print(f"\nall {checked} benchmark pair(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
