#!/usr/bin/env python3
"""Perf-regression guard for the committed benchmark records.

Compares a fresh google-benchmark JSON run against a committed
results/BENCH_*.json record: for every microbenchmark pair in the record,
recompute the before/after speedup from the fresh run and fail if it fell
more than --tolerance below the committed speedup.

The guard is deliberately ratio-based. Absolute ns/op on shared CI runners
is meaningless, but legacy and packed implementations run in the same
process seconds apart, so their ratio survives runner-to-runner variance.
With the default 25% tolerance a committed 1.4x headline fails only below
~1.05x — i.e. when the optimized path has genuinely stopped being faster.

Usage:
  check_bench.py --fresh build/results/BENCH_mm.json \
                 --committed results/BENCH_mm.json [--tolerance 0.25]

Multiple records can be guarded in one invocation (the CI bench-smoke job
checks BENCH_mm and BENCH_engine together):

  check_bench.py --pair build/results/BENCH_mm.json results/BENCH_mm.json \
                 --pair build/results/BENCH_engine.json results/BENCH_engine.json
"""

import argparse
import json
import sys


def load_fresh_times(path):
    """Minimum real_time per benchmark name from a google-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) when repetitions are on.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        # Repetition rows carry a "/repeats:N" style suffix on some versions,
        # and ICE_BENCH_ITERS-pinned runs append "/iterations:N". The committed
        # records use the bare benchmark names.
        name = name.split("/repeats:")[0]
        name = name.split("/iterations:")[0]
        t = bench.get("real_time")
        if t is None:
            continue
        if name not in times or t < times[name]:
            times[name] = t
    return times


def check_record(fresh_path, committed_path, tolerance):
    """Checks one fresh-vs-committed record; returns (checked, failures)."""
    with open(committed_path) as f:
        committed = json.load(f)
    fresh = load_fresh_times(fresh_path)

    print(f"== {committed_path} vs {fresh_path}")
    failures = []
    checked = 0
    for key, entry in committed.get("microbenchmarks", {}).items():
        before_name = entry["before"]["name"]
        after_name = entry["after"]["name"]
        committed_speedup = entry["speedup"]
        if before_name not in fresh or after_name not in fresh:
            print(f"SKIP {key}: {before_name} / {after_name} not in fresh run")
            continue
        checked += 1
        fresh_speedup = fresh[before_name] / fresh[after_name]
        floor = committed_speedup * (1.0 - tolerance)
        status = "ok" if fresh_speedup >= floor else "REGRESSION"
        print(f"{status:>10}  {key}: committed {committed_speedup:.2f}x, "
              f"fresh {fresh_speedup:.2f}x (floor {floor:.2f}x)")
        if fresh_speedup < floor:
            failures.append(key)
    return checked, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh",
                        help="google-benchmark JSON from the current run")
    parser.add_argument("--committed",
                        help="committed results/BENCH_*.json record")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("FRESH", "COMMITTED"),
                        help="additional fresh/committed record pair; repeatable")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop in speedup (default 0.25)")
    args = parser.parse_args()

    pairs = list(args.pair)
    if args.fresh or args.committed:
        if not (args.fresh and args.committed):
            parser.error("--fresh and --committed must be given together")
        pairs.insert(0, (args.fresh, args.committed))
    if not pairs:
        parser.error("no records to check: give --fresh/--committed or --pair")

    checked = 0
    failures = []
    for fresh_path, committed_path in pairs:
        record_checked, record_failures = check_record(
            fresh_path, committed_path, args.tolerance)
        checked += record_checked
        failures.extend(record_failures)

    if checked == 0:
        print("error: no benchmark pairs matched between fresh and committed")
        return 1
    if failures:
        print(f"\n{len(failures)} perf regression(s): {', '.join(failures)}")
        return 1
    print(f"\nall {checked} benchmark pair(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
