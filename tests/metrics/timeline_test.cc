#include "src/metrics/timeline.h"

#include <gtest/gtest.h>

#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.reclaim_contention_mean = 0;
  return config;
}

TEST(MemoryTimeline, SamplesOnInterval) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  MemoryTimeline timeline(engine, mm, Sec(1));
  engine.RunFor(Sec(5));
  // Initial sample + one per second (boundary effects allow one slack).
  EXPECT_GE(timeline.samples().size(), 5u);
  EXPECT_LE(timeline.samples().size(), 7u);
  EXPECT_EQ(timeline.samples()[0].time, 0u);
}

TEST(MemoryTimeline, TracksFreeMemoryChanges) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  MemoryTimeline timeline(engine, mm, Ms(100));

  AddressSpaceLayout layout;
  layout.native_pages = 1000;
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1000; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  engine.RunFor(Sec(1));
  EXPECT_LT(timeline.MinFreePages(), 1800 - 900);
  const TimelineSample& last = timeline.samples().back();
  EXPECT_EQ(last.free_pages, mm.free_pages());
  mm.Release(space);
}

TEST(MemoryTimeline, RefaultRatioComputed) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  MemoryTimeline timeline(engine, mm, Ms(50));

  AddressSpaceLayout layout;
  layout.native_pages = 100;
  AddressSpace space(1, 1, "a", layout);
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  mm.ReclaimAllOf(space);
  for (uint32_t vpn = 0; vpn < 50; ++vpn) {
    mm.Access(space, vpn, false, nullptr);  // 50 refaults of 100 evictions.
  }
  engine.RunFor(Ms(200));
  EXPECT_NEAR(timeline.FinalRefaultRatio(), 0.5, 0.01);
  mm.Release(space);
}

TEST(MemoryTimeline, StopsCleanlyBeforeEngine) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  {
    MemoryTimeline timeline(engine, mm, Ms(10));
    engine.RunFor(Ms(50));
  }
  engine.RunFor(Ms(50));  // No dangling sample events.
}

}  // namespace
}  // namespace ice
