#include "src/metrics/report.h"

#include <gtest/gtest.h>

#include "src/metrics/frame_stats.h"

namespace ice {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table table({"a", "long header"});
  table.AddRow({"x", "1"});
  table.AddRow({"yyyy", "22"});
  std::string s = table.ToString();
  EXPECT_NE(s.find("| a    | long header |"), std::string::npos);
  EXPECT_NE(s.find("| x    | 1           |"), std::string::npos);
  EXPECT_NE(s.find("| yyyy | 22          |"), std::string::npos);
}

TEST(Table, NumPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.14159, 0), "3");
  EXPECT_EQ(Table::Num(42.0), "42.0");
}

TEST(Table, PctFormatsFraction) {
  EXPECT_EQ(Table::Pct(0.5), "50.0%");
  EXPECT_EQ(Table::Pct(0.123, 0), "12%");
  EXPECT_EQ(Table::Pct(1.57, 0), "157%");
}

TEST(FrameStatsExtra, LatencyHistogramPopulated) {
  FrameStats stats;
  stats.RecordFrame(0, Ms(10));
  stats.RecordFrame(0, Ms(20));
  EXPECT_EQ(stats.latency_us().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.latency_us().Max(), static_cast<double>(Ms(20)));
}

TEST(FrameStatsExtra, ExactDeadlineIsNotLate) {
  FrameStats stats;
  stats.RecordFrame(0, kInteractionAlertUs);  // Exactly 16.6 ms: on time.
  EXPECT_DOUBLE_EQ(stats.Ria(), 0.0);
  stats.RecordFrame(0, kInteractionAlertUs + 1);
  EXPECT_DOUBLE_EQ(stats.Ria(), 0.5);
}

TEST(FrameStatsExtra, FpsPerSecondBucketsEdges) {
  FrameStats stats;
  stats.RecordFrame(0, 1);                    // Second 0.
  stats.RecordFrame(0, kSecond - 1);          // Second 0.
  stats.RecordFrame(0, kSecond);              // Second 1.
  auto series = stats.FpsPerSecond(0, 2 * kSecond);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
}

TEST(FrameStatsExtra, EmptyWindows) {
  FrameStats stats;
  EXPECT_DOUBLE_EQ(stats.AverageFps(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(stats.AverageFps(20, 10), 0.0);
  EXPECT_TRUE(stats.FpsPerSecond(20, 10).empty());
}

}  // namespace
}  // namespace ice
