// End-to-end integration tests: the full device simulation under memory
// pressure, exercising every subsystem together and checking the paper's
// qualitative claims (BG refaults appear under pressure; ICE reduces them;
// frozen apps stop refaulting; the system stays live throughout).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace ice {
namespace {

TEST(EndToEnd, BaselineSystemBoots) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 7;
  Experiment exp(config);
  EXPECT_GT(exp.scheduler().utilization(), 0.05);
  EXPECT_GT(exp.mm().free_pages(), 0);
}

TEST(EndToEnd, ScenarioProducesFrames) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 11;
  Experiment exp(config);
  ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(10));
  EXPECT_GT(r.avg_fps, 20.0);
  EXPECT_LE(r.avg_fps, 61.0);
}

TEST(EndToEnd, BackgroundPressureCausesBgRefaults) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 13;
  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kVideoCall));
  exp.CacheBackgroundApps(config.device.full_pressure_bg_apps, {fg});
  ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(20));
  EXPECT_GT(r.reclaims, 1000u) << "expected reclaim under full BG pressure";
  EXPECT_GT(r.refaults_bg, 100u) << "expected BG refaults under pressure";
}

TEST(EndToEnd, IceFreezesRefaultingApps) {
  ExperimentConfig config;
  config.device = P20Profile();
  config.seed = 13;  // Same seed as the baseline test above.
  config.scheme = "ice";
  Experiment exp(config);
  Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kVideoCall));
  exp.CacheBackgroundApps(config.device.full_pressure_bg_apps, {fg});
  ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(20));
  (void)r;
  // Freezing mostly happens during the warmup phase, so check the lifetime
  // counter rather than the measurement window.
  EXPECT_GT(exp.engine().stats().Get(stat::kFreezes), 0u)
      << "ICE should have frozen refaulting BG apps";
}

TEST(EndToEnd, IceReducesBgRefaultsVsBaseline) {
  uint64_t bg_baseline = 0;
  uint64_t bg_ice = 0;
  for (const char* scheme : {"lru_cfs", "ice"}) {
    ExperimentConfig config;
    config.device = P20Profile();
    config.seed = 17;
    config.scheme = scheme;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kShortVideo));
    exp.CacheBackgroundApps(config.device.full_pressure_bg_apps, {fg});
    // Compare lifetime BG refaults (warmup included): a calm post-warmup
    // window can otherwise hide the baseline's churn.
    auto before = exp.engine().stats().Get(stat::kRefaultsBg);
    (void)before;
    exp.RunScenario(ScenarioKind::kShortVideo, Sec(20));
    uint64_t total = exp.engine().stats().Get(stat::kRefaultsBg);
    if (std::string(scheme) == "ice") {
      bg_ice = total;
    } else {
      bg_baseline = total;
    }
  }
  EXPECT_LT(bg_ice, bg_baseline) << "ICE must reduce BG refaults";
}

}  // namespace
}  // namespace ice
