// Launch-driver and usage-trace integration coverage (§6.3 machinery).
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/workload/launch_driver.h"
#include "src/workload/usage_trace.h"

namespace ice {
namespace {

TEST(LaunchDriver, FirstRoundAllCold) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  std::vector<Uid> all = exp.CatalogUids();
  std::vector<Uid> apps(all.begin(), all.begin() + 6);
  LaunchDriver driver(exp.am(), exp.choreographer(), apps, exp.engine().rng().Fork());
  LaunchDriverResult result = driver.RunRounds(2, Sec(4));
  ASSERT_EQ(result.records.size(), 12u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(result.records[i].cold) << "round 1 must cold-launch";
  }
  ASSERT_EQ(result.hot_per_round.size(), 1u);
}

TEST(LaunchDriver, HotLaunchesFasterThanCold) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  std::vector<Uid> all = exp.CatalogUids();
  std::vector<Uid> apps(all.begin(), all.begin() + 4);
  LaunchDriver driver(exp.am(), exp.choreographer(), apps, exp.engine().rng().Fork());
  LaunchDriverResult result = driver.RunRounds(3, Sec(4));
  double cold = result.MeanColdMs();
  double hot = result.MeanHotMs();
  ASSERT_GT(cold, 0.0);
  if (hot > 0.0) {
    EXPECT_LT(hot, cold);
  }
  EXPECT_GT(result.TotalHot(), 0);
}

TEST(LaunchDriver, PressureCausesLmkKillsAndColdRelaunches) {
  ExperimentConfig config;
  config.seed = 3;
  config.device = Pixel3Profile();  // 4 GB + 512 MB zram: 20 apps cannot fit.
  Experiment exp(config);
  // All 20 apps cannot be cached simultaneously: LMK must kill some, making
  // later rounds partially cold (the Fig. 11b effect).
  LaunchDriver driver(exp.am(), exp.choreographer(), exp.CatalogUids(),
                      exp.engine().rng().Fork());
  LaunchDriverResult result = driver.RunRounds(3, Sec(6));
  ASSERT_EQ(result.hot_per_round.size(), 2u);
  EXPECT_LT(result.hot_per_round[0] + result.hot_per_round[1], 40);
  EXPECT_GT(exp.engine().stats().Get(stat::kLmkKills), 0u);
}

TEST(UsageTrace, ProducesDailyStats) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  std::vector<UsageTraceRunner::InstalledApp> apps;
  for (size_t i = 0; i < exp.catalog().size(); ++i) {
    apps.push_back({exp.CatalogUids()[i], exp.catalog()[i].category});
  }
  UsageTraceRunner::Config trace_config;
  trace_config.days = 2;
  trace_config.sessions_per_day = 6;
  trace_config.session_mean = Sec(8);
  UsageTraceRunner runner(exp.am(), exp.choreographer(), apps,
                          exp.engine().rng().Fork(), trace_config);
  runner.Run();
  ASSERT_EQ(runner.day_stats().size(), 2u);
  EXPECT_FALSE(runner.samples().empty());
  // Cumulative samples are monotonic.
  for (size_t i = 1; i < runner.samples().size(); ++i) {
    EXPECT_GE(runner.samples()[i].cum_evicted, runner.samples()[i - 1].cum_evicted);
    EXPECT_GE(runner.samples()[i].cum_refaulted, runner.samples()[i - 1].cum_refaulted);
  }
}

TEST(UsageTrace, EvictionsAppearUnderSustainedUsage) {
  ExperimentConfig config;
  config.seed = 9;
  Experiment exp(config);
  std::vector<UsageTraceRunner::InstalledApp> apps;
  for (size_t i = 0; i < exp.catalog().size(); ++i) {
    apps.push_back({exp.CatalogUids()[i], exp.catalog()[i].category});
  }
  UsageTraceRunner::Config trace_config;
  trace_config.days = 1;
  trace_config.sessions_per_day = 14;
  trace_config.session_mean = Sec(10);
  UsageTraceRunner runner(exp.am(), exp.choreographer(), apps,
                          exp.engine().rng().Fork(), trace_config);
  runner.Run();
  uint64_t evicted = runner.day_stats()[0].evicted;
  EXPECT_GT(evicted, 1000u) << "a day of app switching must trigger reclaim";
}

}  // namespace
}  // namespace ice
