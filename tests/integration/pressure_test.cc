// Memory-pressure integration: the §2/§3 observations reproduced end to end.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/workload/synthetic.h"

namespace ice {
namespace {

TEST(Pressure, MemtesterCausesReclaimButFewRefaults) {
  // §2.2.3: memtester fills memory once; reclaim happens but the reclaimed
  // pages are rarely demanded again (BG-memtester vs BG-apps in Fig. 2a).
  ExperimentConfig config;
  config.seed = 5;
  Experiment exp(config);
  InstallMemtester(exp.am(), static_cast<uint64_t>(3400) * kMiB);
  exp.engine().RunFor(Sec(40));
  Uid fg = exp.UidOf("TikTok");
  ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(60));
  (void)fg;
  EXPECT_GT(r.reclaims, 100u);
  // Refaults stay far below the BG-apps case (ratio check, not absolute).
  EXPECT_LT(r.refaults, r.reclaims / 2);
}

TEST(Pressure, BgAppsCauseMoreRefaultsThanMemtester) {
  uint64_t refaults_apps = 0;
  uint64_t refaults_memtester = 0;
  {
    ExperimentConfig config;
    config.seed = 5;
    Experiment exp(config);
    Uid fg = exp.UidOf("TikTok");
    exp.CacheBackgroundApps(8, {fg});
    refaults_apps = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(120)).refaults;
  }
  {
    ExperimentConfig config;
    config.seed = 5;
    Experiment exp(config);
    InstallMemtester(exp.am(), static_cast<uint64_t>(3400) * kMiB);
    exp.engine().RunFor(Sec(40));
    refaults_memtester =
        exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(120)).refaults;
  }
  EXPECT_GT(refaults_apps, refaults_memtester * 3);
}

TEST(Pressure, MostRefaultsAreBackground) {
  // Fig. 3: >60 % of refaults come from BG processes.
  ExperimentConfig config;
  config.seed = 7;
  Experiment exp(config);
  Uid fg = exp.UidOf("Facebook");
  exp.CacheBackgroundApps(8, {fg});
  ScenarioResult r = exp.RunScenario(ScenarioKind::kScrolling, Sec(30), Sec(180));
  ASSERT_GT(r.refaults, 0u);
  EXPECT_GT(static_cast<double>(r.refaults_bg) / r.refaults, 0.6);
}

TEST(Pressure, RefaultsSplitAcrossAnonAndFile) {
  // Fig. 4: both anonymous and file-backed pages refault; anonymous splits
  // across native and Java heaps.
  ExperimentConfig config;
  config.seed = 7;
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  exp.CacheBackgroundApps(8, {fg});
  exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(180));
  StatsRegistry& st = exp.engine().stats();
  EXPECT_GT(st.Get(stat::kRefaultsAnon), 0u);
  EXPECT_GT(st.Get(stat::kRefaultsFile), 0u);
  EXPECT_GT(st.Get(stat::kRefaultsJavaHeap), 0u);
  EXPECT_GT(st.Get(stat::kRefaultsNativeHeap), 0u);
}

TEST(Pressure, FpsDegradesUnderBgApps) {
  // Fig. 1: FPS visibly degrades with 8 BG apps vs BG-null.
  double fps_null = 0, fps_apps = 0;
  {
    ExperimentConfig config;
    config.seed = 11;
    Experiment exp(config);
    fps_null = exp.RunScenario(ScenarioKind::kVideoCall, Sec(30), Sec(60)).avg_fps;
  }
  {
    ExperimentConfig config;
    config.seed = 11;
    Experiment exp(config);
    Uid fg = exp.UidOf("WhatsApp");
    exp.CacheBackgroundApps(8, {fg});
    fps_apps = exp.RunScenario(ScenarioKind::kVideoCall, Sec(30), Sec(180)).avg_fps;
  }
  EXPECT_LT(fps_apps, fps_null * 0.92);
}

TEST(Pressure, IceRecoversFps) {
  // Fig. 8's headline: Ice beats LRU+CFS under full BG pressure.
  double fps_lru = 0, fps_ice = 0;
  for (const char* scheme : {"lru_cfs", "ice"}) {
    ExperimentConfig config;
    config.seed = 11;
    config.scheme = scheme;
    Experiment exp(config);
    Uid fg = exp.UidOf("WhatsApp");
    exp.CacheBackgroundApps(8, {fg});
    double fps = exp.RunScenario(ScenarioKind::kVideoCall, Sec(30), Sec(180)).avg_fps;
    (std::string(scheme) == "ice" ? fps_ice : fps_lru) = fps;
  }
  EXPECT_GT(fps_ice, fps_lru * 1.1);
}

TEST(Pressure, IceReducesReclaimAndRefault) {
  // Fig. 10: Ice reduces both refaults and reclaims vs LRU+CFS.
  uint64_t rec_lru = 0, rec_ice = 0, rf_lru = 0, rf_ice = 0;
  for (const char* scheme : {"lru_cfs", "ice"}) {
    ExperimentConfig config;
    config.seed = 11;
    config.scheme = scheme;
    Experiment exp(config);
    Uid fg = exp.UidOf("TikTok");
    exp.CacheBackgroundApps(8, {fg});
    ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(180));
    if (std::string(scheme) == "ice") {
      rec_ice = r.reclaims;
      rf_ice = r.refaults;
    } else {
      rec_lru = r.reclaims;
      rf_lru = r.refaults;
    }
  }
  EXPECT_LT(rf_ice, rf_lru / 2);
  EXPECT_LT(rec_ice, rec_lru);
}

TEST(Pressure, IceOnlyFreezesRefaultingApps) {
  // §6.2.1: "only 4 BG applications on average are frozen ... inactive
  // applications and active applications that do not cause refault are not
  // frozen."
  ExperimentConfig config;
  config.seed = 42;
  config.scheme = "ice";
  Experiment exp(config);
  Uid fg = exp.UidOf("TikTok");
  auto cached = exp.CacheBackgroundApps(8, {fg});
  exp.RunScenario(ScenarioKind::kShortVideo, Sec(30), Sec(180));
  int frozen = 0;
  for (Uid uid : cached) {
    App* app = exp.am().FindApp(uid);
    if (app != nullptr && app->running() && app->frozen()) {
      ++frozen;
    }
  }
  EXPECT_GT(frozen, 0);
  EXPECT_LT(frozen, 8) << "selective freezing, not freeze-all";
}

}  // namespace
}  // namespace ice
