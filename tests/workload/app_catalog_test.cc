#include "src/workload/app_catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace ice {
namespace {

TEST(AppCatalog, HasTwentyTable3Apps) {
  auto catalog = DefaultCatalog();
  EXPECT_EQ(catalog.size(), 20u);
  // Spot-check Table 3 membership.
  for (const char* package :
       {"Facebook", "Skype", "Twitter", "WeChat", "WhatsApp", "Youtube", "Netflix",
        "TikTok", "AngryBird", "ArenaOfValor", "PUBGMobile", "Amazon", "PayPal",
        "AliPay", "eBay", "Yelp", "Chrome", "Camera", "Uber", "GoogleMap"}) {
    EXPECT_NE(FindInCatalog(catalog, package), nullptr) << package;
  }
}

TEST(AppCatalog, PackagesUnique) {
  auto catalog = DefaultCatalog();
  std::set<std::string> names;
  for (const auto& app : catalog) {
    EXPECT_TRUE(names.insert(app.descriptor.package).second);
  }
}

TEST(AppCatalog, CategoriesCoverTable3) {
  auto catalog = DefaultCatalog();
  std::set<AppCategory> cats;
  for (const auto& app : catalog) {
    cats.insert(app.category);
  }
  EXPECT_EQ(cats.size(), 5u);
}

TEST(AppCatalog, GamesAreBiggest) {
  auto catalog = DefaultCatalog();
  const CatalogApp* game = FindInCatalog(catalog, "PUBGMobile");
  const CatalogApp* utility = FindInCatalog(catalog, "Camera");
  ASSERT_NE(game, nullptr);
  ASSERT_NE(utility, nullptr);
  auto total = [](const CatalogApp* a) {
    return a->descriptor.java_pages + a->descriptor.native_pages + a->descriptor.file_pages;
  };
  EXPECT_GT(total(game), total(utility));
}

TEST(AppCatalog, FootprintScaleApplies) {
  WorkloadTuning tuning;
  tuning.footprint_scale = 2.0;
  auto big = DefaultCatalog(tuning);
  auto normal = DefaultCatalog();
  EXPECT_NEAR(static_cast<double>(big[0].descriptor.native_pages),
              2.0 * normal[0].descriptor.native_pages,
              normal[0].descriptor.native_pages * 0.02);
}

TEST(AppCatalog, ActivityScaleShortensPeriods) {
  WorkloadTuning tuning;
  tuning.bg_activity_scale = 2.0;
  auto fast = DefaultCatalog(tuning);
  auto normal = DefaultCatalog();
  EXPECT_LT(fast[0].bg.sync_period, normal[0].bg.sync_period);
  EXPECT_LT(fast[0].bg.gc_period, normal[0].bg.gc_period);
}

TEST(AppCatalog, PerceptibleAppsExist) {
  // Skype and WhatsApp can receive calls: perceptible in BG (whitelisted).
  auto catalog = DefaultCatalog();
  EXPECT_TRUE(FindInCatalog(catalog, "Skype")->descriptor.perceptible_in_bg);
  EXPECT_TRUE(FindInCatalog(catalog, "WhatsApp")->descriptor.perceptible_in_bg);
  EXPECT_FALSE(FindInCatalog(catalog, "Twitter")->descriptor.perceptible_in_bg);
}

TEST(AppCatalog, FacebookHasStayAwakeBug) {
  // §3.2: "Facebook had a buggy release that left the application doing
  // nothing but stay awake and running in the BG."
  auto catalog = DefaultCatalog();
  EXPECT_TRUE(FindInCatalog(catalog, "Facebook")->bg.buggy_wakeful);
}

TEST(AppCatalog, ExtendedCatalogHasFortyApps) {
  Rng rng(1);
  auto catalog = ExtendedCatalog(rng);
  EXPECT_EQ(catalog.size(), 40u);
}

TEST(AppCatalog, ExtendedCatalogRoughly58PercentActive) {
  // §3.2: 58 % of BG apps observed running their main thread.
  Rng rng(1);
  int active = 0;
  int total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto catalog = ExtendedCatalog(rng);
    for (const auto& app : catalog) {
      ++total;
      active += app.bg.main_thread_active ? 1 : 0;
    }
  }
  double fraction = static_cast<double>(active) / total;
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.75);
}

TEST(AppCatalog, FindInCatalogMissReturnsNull) {
  auto catalog = DefaultCatalog();
  EXPECT_EQ(FindInCatalog(catalog, "DoesNotExist"), nullptr);
}

TEST(AppCatalog, CategoryNames) {
  EXPECT_STREQ(CategoryName(AppCategory::kSocial), "Social");
  EXPECT_STREQ(CategoryName(AppCategory::kGame), "Game");
}

}  // namespace
}  // namespace ice
