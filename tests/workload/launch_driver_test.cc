// Pure-unit coverage of LaunchDriverResult aggregation math.
#include "src/workload/launch_driver.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

LaunchRecord Rec(bool cold, SimDuration latency, bool completed = true) {
  LaunchRecord r;
  r.cold = cold;
  r.latency = latency;
  r.completed = completed;
  return r;
}

TEST(LaunchDriverResult, EmptyIsZero) {
  LaunchDriverResult r;
  EXPECT_EQ(r.MeanLatencyMs(), 0.0);
  EXPECT_EQ(r.MeanColdMs(), 0.0);
  EXPECT_EQ(r.MeanHotMs(), 0.0);
  EXPECT_EQ(r.TotalHot(), 0);
}

TEST(LaunchDriverResult, SplitsColdAndHot) {
  LaunchDriverResult r;
  r.records = {Rec(true, Ms(4000)), Rec(true, Ms(2000)), Rec(false, Ms(400)),
               Rec(false, Ms(200))};
  EXPECT_DOUBLE_EQ(r.MeanColdMs(), 3000.0);
  EXPECT_DOUBLE_EQ(r.MeanHotMs(), 300.0);
  EXPECT_DOUBLE_EQ(r.MeanLatencyMs(), (4000 + 2000 + 400 + 200) / 4.0);
}

TEST(LaunchDriverResult, IgnoresIncomplete) {
  LaunchDriverResult r;
  r.records = {Rec(true, Ms(4000)), Rec(true, Ms(999999), /*completed=*/false)};
  EXPECT_DOUBLE_EQ(r.MeanColdMs(), 4000.0);
  EXPECT_DOUBLE_EQ(r.MeanLatencyMs(), 4000.0);
}

TEST(LaunchDriverResult, TotalHotSumsRounds) {
  LaunchDriverResult r;
  r.hot_per_round = {7, 8, 8};
  EXPECT_EQ(r.TotalHot(), 23);
}

}  // namespace
}  // namespace ice
