#include "src/workload/bg_activity.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/proc/task.h"

namespace ice {
namespace {

TEST(BgActivity, AttachesTasksPerCatalogParams) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = exp.UidOf("Twitter");  // main_thread_active, gc, service.
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  App* app = exp.am().FindApp(uid);
  size_t tasks = 0;
  for (Process* p : app->processes()) {
    tasks += p->tasks().size();
  }
  // ui + render + gc + main-bg + svc-worker.
  EXPECT_EQ(tasks, 5u);
}

TEST(BgActivity, InactiveMainThreadAppsHaveFewerTasks) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = exp.UidOf("Netflix");  // main_thread_active = false.
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  App* app = exp.am().FindApp(uid);
  size_t tasks = 0;
  for (Process* p : app->processes()) {
    tasks += p->tasks().size();
  }
  // ui + render + gc + svc-worker (no main-bg).
  EXPECT_EQ(tasks, 4u);
}

TEST(BgActivity, DisableGcRemovesGcTask) {
  ExperimentConfig config;
  config.seed = 3;
  config.disable_gc = true;
  Experiment exp(config);
  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  App* app = exp.am().FindApp(uid);
  bool has_gc = false;
  for (Process* p : app->processes()) {
    for (Task* t : p->tasks()) {
      if (t->name().find("HeapTaskDaemon") != std::string::npos) {
        has_gc = true;
      }
    }
  }
  EXPECT_FALSE(has_gc);
}

TEST(BgActivity, BackgroundAppKeepsTouchingMemory) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  uint64_t faults_before = exp.engine().stats().Get(stat::kPageFaults);
  exp.engine().RunFor(Sec(30));
  // GC sweeps + sync touches cause activity (first-touch growth at minimum).
  EXPECT_GT(exp.engine().stats().Get(stat::kPageFaults), faults_before);
  App* app = exp.am().FindApp(uid);
  EXPECT_GT(app->cpu_time_us, 0u);
}

TEST(BgActivity, FrozenAppStopsTouching) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  exp.engine().RunFor(Sec(5));
  App* app = exp.am().FindApp(uid);
  exp.freezer().FreezeApp(*app);
  uint64_t cpu_before = app->cpu_time_us;
  exp.engine().RunFor(Sec(30));
  EXPECT_EQ(app->cpu_time_us, cpu_before);
}

TEST(PeriodicTouchBehavior, TouchesSampleBothRegions) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  AddressSpace* space = exp.am().main_space(uid);
  exp.am().MoveForegroundToBackground();
  exp.engine().RunFor(Sec(40));
  // The sync task touches native + file; both regions must show residency
  // beyond the cold-launch prefix is not required, but java (GC) and
  // native+file (sync) must all have been accessed.
  EXPECT_GT(space->resident(), 0u);
}

}  // namespace
}  // namespace ice
