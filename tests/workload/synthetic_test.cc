#include "src/workload/synthetic.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace ice {
namespace {

TEST(Memtester, OccupiesConfiguredMemory) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  int64_t free_before = exp.mm().free_pages();
  Uid uid = InstallMemtester(exp.am(), 512 * kMiB);
  exp.engine().RunFor(Sec(30));
  AddressSpace* space = exp.am().main_space(uid);
  ASSERT_NE(space, nullptr);
  EXPECT_GT(space->resident(), BytesToPages(480 * kMiB));
  EXPECT_LT(exp.mm().free_pages(), free_before - static_cast<int64_t>(BytesToPages(400 * kMiB)));
}

TEST(Memtester, ConsumesLittleCpu) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = InstallMemtester(exp.am(), 256 * kMiB);
  exp.engine().RunFor(Sec(20));
  App* app = exp.am().FindApp(uid);
  // Page-touch cost only; well under 5 % of one core over the window.
  EXPECT_LT(app->cpu_time_us, Sec(1));
}

TEST(Memtester, NeverRefaultsOnItsOwn) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  InstallMemtester(exp.am(), 256 * kMiB);
  exp.engine().RunFor(Sec(20));
  uint64_t refaults_before = exp.engine().stats().Get(stat::kRefaults);
  exp.engine().RunFor(Sec(20));
  EXPECT_EQ(exp.engine().stats().Get(stat::kRefaults), refaults_before);
}

TEST(Cputester, HitsTargetUtilization) {
  ExperimentConfig config;
  config.seed = 3;
  // Bare device: no services so the measurement isolates the cputester.
  config.services.service_tasks = 0;
  Experiment exp(config);
  double base = exp.scheduler().utilization();
  (void)base;
  uint64_t busy_before = exp.scheduler().busy_us();
  uint64_t cap_before = exp.scheduler().capacity_us();
  InstallCputester(exp.am(), 0.20, exp.config().device.num_cores);
  exp.engine().RunFor(Sec(20));
  double util = static_cast<double>(exp.scheduler().busy_us() - busy_before) /
                (exp.scheduler().capacity_us() - cap_before);
  // The paper's cputester occupies ~20 % CPU.
  EXPECT_NEAR(util, 0.20, 0.05);
}

TEST(Cputester, TinyMemoryFootprint) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid uid = InstallCputester(exp.am(), 0.20, 8);
  exp.engine().RunFor(Sec(5));
  AddressSpace* space = exp.am().main_space(uid);
  EXPECT_LT(space->resident(), BytesToPages(16 * kMiB));
}

}  // namespace
}  // namespace ice
