#include "src/workload/scenario.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace ice {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest() {
    ExperimentConfig config;
    config.seed = 3;
    exp_ = std::make_unique<Experiment>(config);
  }

  std::unique_ptr<Experiment> exp_;
};

TEST_F(ScenarioTest, NamesAndLabels) {
  EXPECT_STREQ(ScenarioLabel(ScenarioKind::kVideoCall), "S-A");
  EXPECT_STREQ(ScenarioLabel(ScenarioKind::kShortVideo), "S-B");
  EXPECT_STREQ(ScenarioLabel(ScenarioKind::kScrolling), "S-C");
  EXPECT_STREQ(ScenarioLabel(ScenarioKind::kGame), "S-D");
  EXPECT_STREQ(ScenarioPackage(ScenarioKind::kVideoCall), "WhatsApp");
  EXPECT_STREQ(ScenarioPackage(ScenarioKind::kShortVideo), "TikTok");
  EXPECT_STREQ(ScenarioPackage(ScenarioKind::kScrolling), "Facebook");
  EXPECT_STREQ(ScenarioPackage(ScenarioKind::kGame), "PUBGMobile");
}

TEST_F(ScenarioTest, ProducesFramesWithWork) {
  Uid uid = exp_->UidOf("TikTok");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  Scenario scenario(exp_->am(), uid, ScenarioKind::kShortVideo, Rng(7));
  auto frame = scenario.NextFrame(exp_->engine().now());
  ASSERT_TRUE(frame.has_value());
  EXPECT_GT(frame->compute_us, Ms(1));
  EXPECT_GT(frame->vpns.size(), 100u);
  EXPECT_EQ(frame->space, exp_->am().main_space(uid));
}

TEST_F(ScenarioTest, TouchesStayInBounds) {
  Uid uid = exp_->UidOf("PUBGMobile");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  Scenario scenario(exp_->am(), uid, ScenarioKind::kGame, Rng(7));
  AddressSpace* space = exp_->am().main_space(uid);
  for (int i = 0; i < 300; ++i) {
    auto frame = scenario.NextFrame(exp_->engine().now() + i * kVsyncPeriod);
    ASSERT_TRUE(frame.has_value());
    for (uint32_t vpn : frame->vpns) {
      ASSERT_LT(vpn, space->total_pages());
    }
  }
}

TEST_F(ScenarioTest, GameRoundsAllocateInWaves) {
  Uid uid = exp_->UidOf("PUBGMobile");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  Scenario scenario(exp_->am(), uid, ScenarioKind::kGame, Rng(7));
  ScenarioParams params = ParamsFor(ScenarioKind::kGame);
  ASSERT_GT(params.round_period, 0u);
  // Count vpns per frame across a simulated round boundary.
  SimTime t0 = exp_->engine().now();
  size_t baseline = scenario.NextFrame(t0)->vpns.size();
  size_t at_round = scenario.NextFrame(t0 + params.round_period + kVsyncPeriod)->vpns.size();
  EXPECT_GT(at_round, baseline + 300);
}

TEST_F(ScenarioTest, ShortVideoBurstsAddColdPages) {
  Uid uid = exp_->UidOf("TikTok");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  Scenario scenario(exp_->am(), uid, ScenarioKind::kShortVideo, Rng(7));
  ScenarioParams params = ParamsFor(ScenarioKind::kShortVideo);
  SimTime t0 = exp_->engine().now();
  size_t normal = scenario.NextFrame(t0)->vpns.size();
  size_t burst = scenario.NextFrame(t0 + params.burst_period + kVsyncPeriod)->vpns.size();
  EXPECT_GT(burst, normal);
}

TEST_F(ScenarioTest, DeadAppYieldsNoFrames) {
  Uid uid = exp_->UidOf("TikTok");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  Scenario scenario(exp_->am(), uid, ScenarioKind::kShortVideo, Rng(7));
  App* app = exp_->am().FindApp(uid);
  exp_->am().KillApp(*app);
  EXPECT_FALSE(scenario.NextFrame(exp_->engine().now()).has_value());
}

TEST_F(ScenarioTest, AllScenariosHaveDistinctParams) {
  ScenarioParams a = ParamsFor(ScenarioKind::kVideoCall);
  ScenarioParams d = ParamsFor(ScenarioKind::kGame);
  EXPECT_NE(a.frame_touches, d.frame_touches);
  EXPECT_EQ(d.round_alloc_pages, BytesToPages(110 * kMiB));  // §6.2.1: 100 MB+.
  EXPECT_EQ(a.round_period, 0u);
}

}  // namespace
}  // namespace ice
