// TimingWheel correctness against a reference model, plus EventFn semantics.
//
// The property test drives the wheel and a brute-force (when, seq) model
// through identical randomized schedule/cancel/advance scripts — with whens
// spanning every wheel level and the overflow heap, and advances crossing
// slot, window, and multi-level cascade boundaries — and asserts the firing
// sequences are exactly equal. This is the determinism bar for replacing the
// old binary-heap EventQueue: not "sorted output" but the identical total
// order, including FIFO tie-breaks and events spawned during dispatch.
#include "src/sim/timing_wheel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/event_fn.h"

namespace ice {
namespace {

// ---------------------------------------------------------------------------
// EventFn
// ---------------------------------------------------------------------------

TEST(EventFn, SmallCapturesAreInline) {
  int x = 0;
  EventFn fn = [&x] { ++x; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(x, 1);
}

TEST(EventFn, MovedStdFunctionFitsInline) {
  int x = 0;
  std::function<void()> f = [&x] { x += 2; };
  EventFn fn = std::move(f);
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(x, 2);
}

TEST(EventFn, LargeCapturesFallBackToHeap) {
  struct Big {
    uint64_t payload[16];
  };
  Big big{};
  big.payload[0] = 7;
  int out = 0;
  EventFn fn = [big, &out] { out = static_cast<int>(big.payload[0]); };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 7);
}

TEST(EventFn, MoveTransfersOwnership) {
  int x = 0;
  EventFn a = [&x] { ++x; };
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);

  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(x, 2);
}

TEST(EventFn, ResetDestroysCapturedState) {
  auto token = std::make_shared<int>(42);
  EventFn fn = [token] { (void)*token; };
  EXPECT_EQ(token.use_count(), 2);
  fn.reset();
  EXPECT_EQ(token.use_count(), 1);  // Capture released promptly.
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, DestructorReleasesHeapCallable) {
  auto token = std::make_shared<int>(7);
  struct Big {
    std::shared_ptr<int> t;
    uint64_t pad[16];
  };
  {
    EventFn fn = [big = Big{token, {}}] { (void)big.t; };
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// TimingWheel vs. reference model
// ---------------------------------------------------------------------------

// Brute-force reference with the exact semantics of the original
// priority_queue EventQueue: fire in (when, seq) order, FIFO ties, events
// scheduled during dispatch at times <= now join the current batch.
class RefModel {
 public:
  int Schedule(SimTime when, int label) {
    evs_.push_back({when, next_seq_++, label, State::kPending});
    return static_cast<int>(evs_.size() - 1);
  }

  bool Cancel(int idx) {
    if (evs_[idx].state != State::kPending) {
      return false;
    }
    evs_[idx].state = State::kCancelled;
    return true;
  }

  size_t size() const {
    size_t n = 0;
    for (const Ev& e : evs_) {
      n += e.state == State::kPending ? 1 : 0;
    }
    return n;
  }

  SimTime NextTime() const {
    SimTime best = UINT64_MAX;
    for (const Ev& e : evs_) {
      if (e.state == State::kPending && e.when < best) {
        best = e.when;
      }
    }
    return best;
  }

  // `on_fire(label)` may call Schedule (spawned events with when <= now join
  // this batch, exactly like the wheel's dispatch).
  void RunDue(SimTime now, const std::function<void(int)>& on_fire) {
    for (;;) {
      int best = -1;
      for (size_t i = 0; i < evs_.size(); ++i) {
        const Ev& e = evs_[i];
        if (e.state != State::kPending || e.when > now) {
          continue;
        }
        if (best < 0 || e.when < evs_[best].when ||
            (e.when == evs_[best].when && e.seq < evs_[best].seq)) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) {
        return;
      }
      evs_[best].state = State::kFired;
      on_fire(evs_[best].label);
    }
  }

 private:
  enum class State { kPending, kFired, kCancelled };
  struct Ev {
    SimTime when;
    uint64_t seq;
    int label;
    State state;
  };
  std::vector<Ev> evs_;
  uint64_t next_seq_ = 1;
};

class WheelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WheelProperty, FiringOrderMatchesReferenceModel) {
  Rng rng(GetParam());
  TimingWheel wheel;
  RefModel model;

  SimTime now = 0;
  int next_label = 0;
  std::vector<int> wheel_fired;
  std::vector<int> model_fired;

  // label -> (child delay, child label) for events that spawn on fire.
  std::map<int, std::pair<SimDuration, int>> spawns;
  // Parallel cancellable handles (top-level events only).
  std::vector<std::pair<EventId, int>> handles;

  // Delay scales probing each wheel level and the overflow heap:
  // within-slot, level-0 span, level-1, level-2, level-3, beyond.
  auto random_delay = [&rng]() -> SimDuration {
    switch (rng.Below(6)) {
      case 0:
        return rng.Below(2048);
      case 1:
        return rng.Below(70'000);
      case 2:
        return rng.Below(4'200'000);
      case 3:
        return static_cast<SimDuration>(rng.Range(0, 270'000'000));
      case 4:
        return static_cast<SimDuration>(rng.Range(0, 17'000'000'000));
      default:
        return static_cast<SimDuration>(rng.Range(17'000'000'000, 40'000'000'000));
    }
  };

  // Each side schedules its own events (including spawn-on-fire children,
  // recursively) from the shared `spawns` script, so order divergence — the
  // thing under test — is the only way the two firing logs can differ.
  std::function<EventId(SimTime, int)> wheel_schedule = [&](SimTime when, int label) {
    return wheel.Schedule(when, [&, label] {
      wheel_fired.push_back(label);
      auto it = spawns.find(label);
      if (it != spawns.end()) {
        wheel_schedule(/*when=*/it->second.first, it->second.second);
      }
    });
  };
  std::function<void(int)> model_on_fire = [&](int label) {
    model_fired.push_back(label);
    auto it = spawns.find(label);
    if (it != spawns.end()) {
      model.Schedule(it->second.first, it->second.second);
    }
  };
  auto schedule_both = [&](SimTime when, int label) {
    EventId id = wheel_schedule(when, label);
    int idx = model.Schedule(when, label);
    handles.emplace_back(id, idx);
  };

  for (int step = 0; step < 4000; ++step) {
    uint32_t dice = rng.Below(100);
    if (dice < 55) {
      int label = next_label++;
      SimTime when = now + random_delay();
      if (rng.Chance(0.2)) {
        // Spawn-on-fire child. Delay 0 lands at the parent's `when`, which is
        // <= dispatch-now: it must join the in-flight batch.
        SimDuration child_delay = rng.Chance(0.4) ? 0 : random_delay();
        int child_label = next_label++;
        spawns[label] = {when + child_delay, child_label};
      }
      schedule_both(when, label);
    } else if (dice < 70 && !handles.empty()) {
      auto [id, idx] = handles[rng.Below(static_cast<uint32_t>(handles.size()))];
      EXPECT_EQ(wheel.Cancel(id), model.Cancel(idx));
    } else {
      // Advance: mostly 1 ms ticks, sometimes jumps crossing slot windows,
      // level-1/2 cascade boundaries, or clear out to the overflow horizon.
      SimDuration step_us;
      switch (rng.Below(8)) {
        case 0:
        case 1:
        case 2:
        case 3:
          step_us = 1000;
          break;
        case 4:
          step_us = rng.Below(70'000);
          break;
        case 5:
          step_us = rng.Below(4'200'000);
          break;
        case 6:
          step_us = static_cast<SimDuration>(rng.Range(0, 270'000'000));
          break;
        default:
          step_us = static_cast<SimDuration>(rng.Range(0, 20'000'000'000));
          break;
      }
      now += step_us;
      wheel.RunDue(now);
      model.RunDue(now, model_on_fire);
      ASSERT_EQ(wheel_fired, model_fired) << "divergence at step " << step;
    }

    ASSERT_EQ(wheel.size(), model.size()) << "size divergence at step " << step;
    if (!wheel.empty() && rng.Chance(0.25)) {
      ASSERT_EQ(wheel.NextTime(), model.NextTime()) << "NextTime divergence at step " << step;
    }
  }

  // Drain everything left and compare the tail. The horizon covers the worst
  // case: a max-delay event whose on-fire spawn is itself max-delay (40,000 s
  // twice over), plus the overflow heap.
  now += 100'000'000'000ull;
  wheel.RunDue(now);
  model.RunDue(now, model_on_fire);
  EXPECT_EQ(wheel_fired, model_fired);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(model.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WheelProperty,
                         ::testing::Values(1, 7, 42, 1234, 987654321));

// Directed cascade regression: events parked in higher levels must fire at
// the right times after the cursor crosses their cascade boundaries, and
// same-slot events must preserve (when, seq) order even when their wheel
// slots would interleave them differently.
TEST(TimingWheel, CascadedEventsFireInWhenSeqOrder) {
  TimingWheel wheel;
  std::vector<int> order;
  // Same level-1 slot, decreasing times: slot chain order (insertion) is the
  // reverse of firing order, so this passes only if dispatch re-sorts.
  wheel.Schedule(130'000, [&] { order.push_back(3); });
  wheel.Schedule(128'000, [&] { order.push_back(2); });
  wheel.Schedule(127'000, [&] { order.push_back(1); });
  // Far future: level 2 and overflow.
  wheel.Schedule(5'000'000, [&] { order.push_back(4); });
  wheel.Schedule(30'000'000'000ull, [&] { order.push_back(5); });
  for (SimTime t = 0; t <= 200'000; t += 1000) {
    wheel.RunDue(t);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  wheel.RunDue(5'000'000);
  EXPECT_EQ(order.size(), 4u);
  wheel.RunDue(30'000'000'000ull);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, NodePoolIsReusedAfterFire) {
  TimingWheel wheel;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) {
      wheel.Schedule(static_cast<SimTime>(round * 1000 + i), [&] { ++fired; });
    }
    wheel.RunDue(static_cast<SimTime>(round * 1000 + 999));
  }
  EXPECT_EQ(fired, 800);
  // Steady state reuses freed nodes instead of growing the pool per event.
  EXPECT_LE(wheel.allocated_nodes(), 16u);
}

}  // namespace
}  // namespace ice
