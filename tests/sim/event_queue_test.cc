#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ice {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunDue(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(10, [&] { order.push_back(2); });
  q.Schedule(10, [&] { order.push_back(3); });
  q.RunDue(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, OnlyDueEventsRun) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] { ++ran; });
  q.Schedule(20, [&] { ++ran; });
  q.RunDue(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueue, EventsScheduledDuringDispatchRun) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] {
    q.Schedule(10, [&] { ++ran; });  // Same-time chain.
  });
  q.RunDue(10);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  EventId id = q.Schedule(10, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  q.RunDue(100);
  EXPECT_EQ(ran, 0);
}

TEST(EventQueue, DoubleCancelFails) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.RunDue(100);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace ice
