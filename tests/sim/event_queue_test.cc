#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ice {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.RunDue(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(10, [&] { order.push_back(2); });
  q.Schedule(10, [&] { order.push_back(3); });
  q.RunDue(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, OnlyDueEventsRun) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] { ++ran; });
  q.Schedule(20, [&] { ++ran; });
  q.RunDue(15);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueue, EventsScheduledDuringDispatchRun) {
  EventQueue q;
  int ran = 0;
  q.Schedule(10, [&] {
    q.Schedule(10, [&] { ++ran; });  // Same-time chain.
  });
  q.RunDue(10);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  EventId id = q.Schedule(10, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  q.RunDue(100);
  EXPECT_EQ(ran, 0);
}

TEST(EventQueue, DoubleCancelFails) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(9999));
}

// Regression: the old tombstone-set implementation let Cancel on an
// already-fired id insert a permanent tombstone, wrongly decrement the live
// count, and return true. The generation-tagged ids detect it exactly.
TEST(EventQueue, CancelAfterFireFailsWithoutCorruption) {
  EventQueue q;
  int ran = 0;
  EventId fired = q.Schedule(10, [&] { ++ran; });
  q.Schedule(50, [&] { ++ran; });
  q.RunDue(20);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.Cancel(fired));  // Already fired: cancel must fail...
  EXPECT_EQ(q.size(), 1u);        // ...and must not decrement live count.
  EXPECT_FALSE(q.empty());
  q.RunDue(100);
  EXPECT_EQ(ran, 2);  // The still-live event is unaffected.
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireOnEmptyQueueKeepsEmptyConsistent) {
  EventQueue q;
  EventId id = q.Schedule(10, [] {});
  q.RunDue(10);
  ASSERT_TRUE(q.empty());
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // A fresh event still schedules and fires normally afterwards.
  int ran = 0;
  q.Schedule(20, [&] { ++ran; });
  EXPECT_EQ(q.size(), 1u);
  q.RunDue(20);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, StaleIdAfterNodeReuseFails) {
  EventQueue q;
  EventId first = q.Schedule(10, [] {});
  q.RunDue(10);  // Fires; its pool node returns to the free list.
  int ran = 0;
  q.Schedule(30, [&] { ++ran; });  // Reuses the node under a new generation.
  EXPECT_FALSE(q.Cancel(first));   // Stale handle must not hit the new event.
  EXPECT_EQ(q.size(), 1u);
  q.RunDue(30);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(10, [] {});
  q.Schedule(20, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.RunDue(100);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace ice
