#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace ice {
namespace {

class CountingTicker : public Ticker {
 public:
  void Tick(SimTime now) override {
    ++ticks;
    last = now;
  }
  int ticks = 0;
  SimTime last = 0;
};

TEST(Engine, TimeAdvancesByTicks) {
  Engine engine(1);
  engine.RunFor(Ms(10));
  EXPECT_EQ(engine.now(), Ms(10));
  EXPECT_EQ(engine.ticks_elapsed(), 10u);
}

TEST(Engine, TickersCalledOncePerTick) {
  Engine engine(1);
  CountingTicker t;
  engine.AddTicker(&t);
  engine.RunFor(Ms(5));
  EXPECT_EQ(t.ticks, 5);
  engine.RemoveTicker(&t);
  engine.RunFor(Ms(5));
  EXPECT_EQ(t.ticks, 5);
}

TEST(Engine, EventsFireAtScheduledTime) {
  Engine engine(1);
  SimTime fired = 0;
  engine.ScheduleAt(Us(2500), [&] { fired = engine.now(); });
  engine.RunFor(Ms(5));
  // Events run at the first tick boundary at/after their time.
  EXPECT_GE(fired, Us(2500));
  EXPECT_LE(fired, Us(3000));
}

TEST(Engine, ScheduleAfterUsesNow) {
  Engine engine(1);
  engine.RunFor(Ms(3));
  bool fired = false;
  engine.ScheduleAfter(Ms(2), [&] { fired = true; });
  engine.RunFor(Ms(1));
  EXPECT_FALSE(fired);
  engine.RunFor(Ms(2));
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelWorks) {
  Engine engine(1);
  bool fired = false;
  EventId id = engine.ScheduleAfter(Ms(1), [&] { fired = true; });
  EXPECT_TRUE(engine.Cancel(id));
  engine.RunFor(Ms(5));
  EXPECT_FALSE(fired);
}

TEST(Engine, TickerAddedDuringTickStartsNextTick) {
  Engine engine(1);
  CountingTicker inner;
  class Adder : public Ticker {
   public:
    Adder(Engine& e, CountingTicker& t) : engine_(e), ticker_(t) {}
    void Tick(SimTime) override {
      if (!added_) {
        added_ = true;
        engine_.AddTicker(&ticker_);
      }
    }
    Engine& engine_;
    CountingTicker& ticker_;
    bool added_ = false;
  } adder(engine, inner);
  engine.AddTicker(&adder);
  engine.RunFor(Ms(3));
  EXPECT_EQ(inner.ticks, 2);  // Missed the tick it was added in.
  engine.RemoveTicker(&adder);
  engine.RemoveTicker(&inner);
}

TEST(Engine, RemoveTickerDuringTickIsSafe) {
  Engine engine(1);
  CountingTicker other;
  class SelfRemover : public Ticker {
   public:
    SelfRemover(Engine& e) : engine_(e) {}
    void Tick(SimTime) override {
      ++ticks;
      engine_.RemoveTicker(this);
    }
    Engine& engine_;
    int ticks = 0;
  } remover(engine);
  engine.AddTicker(&remover);
  engine.AddTicker(&other);
  engine.RunFor(Ms(3));
  EXPECT_EQ(remover.ticks, 1);
  EXPECT_EQ(other.ticks, 3);  // Unaffected by the removal.
  engine.RemoveTicker(&other);
}

// ---------------------------------------------------------------------------
// Idle tick-skipping
// ---------------------------------------------------------------------------

// A ticker that only has work every `period`: NextWorkAt reports the next
// multiple, and the test checks Tick is called exactly at those times while
// the engine's tick count still advances as if every tick ran.
class PeriodicTicker : public Ticker {
 public:
  explicit PeriodicTicker(SimDuration period) : period_(period) {}
  void Tick(SimTime now) override {
    ++ticks;
    if (now >= next_work_) {
      work_times.push_back(now);
      next_work_ = now + period_;
    }
  }
  SimTime NextWorkAt(SimTime now) override { return next_work_ > now ? next_work_ : now; }
  void OnTicksSkipped(SimTime, uint64_t count) override { skipped += count; }

  SimDuration period_;
  SimTime next_work_ = 0;
  int ticks = 0;
  uint64_t skipped = 0;
  std::vector<SimTime> work_times;
};

TEST(Engine, IdleTicksAreSkippedWithNoTickersOrEvents) {
  Engine engine(1);
  engine.RunFor(Sec(10));
  EXPECT_EQ(engine.now(), Sec(10));
  EXPECT_EQ(engine.ticks_elapsed(), 10'000u);  // Skipped ticks still counted.
  EXPECT_GT(engine.ticks_skipped(), 9'000u);
}

TEST(Engine, DefaultTickerDisablesSkipping) {
  Engine engine(1);
  CountingTicker t;  // Default NextWorkAt: work every tick.
  engine.AddTicker(&t);
  engine.RunFor(Ms(50));
  EXPECT_EQ(t.ticks, 50);
  EXPECT_EQ(engine.ticks_skipped(), 0u);
  engine.RemoveTicker(&t);
}

TEST(Engine, QuiescentTickerIsSkippedButBatchNotified) {
  Engine engine(1);
  PeriodicTicker t(Ms(100));
  engine.AddTicker(&t);
  engine.RunFor(Sec(1));
  // Executed ticks + skipped ticks account for every tick exactly once.
  EXPECT_EQ(static_cast<uint64_t>(t.ticks) + t.skipped, 1'000u);
  EXPECT_GT(t.skipped, 900u);  // The 100 ms gaps were skipped, not spun.
  ASSERT_EQ(t.work_times.size(), 10u);
  for (size_t i = 0; i < t.work_times.size(); ++i) {
    EXPECT_EQ(t.work_times[i], i * Ms(100));  // Work happened exactly on time.
  }
  engine.RemoveTicker(&t);
}

TEST(Engine, EventsBoundTheSkip) {
  Engine engine(1);
  std::vector<SimTime> fired;
  engine.ScheduleAt(Us(2500), [&] { fired.push_back(engine.now()); });
  engine.ScheduleAt(Sec(2), [&] { fired.push_back(engine.now()); });
  engine.RunFor(Sec(5));
  // Same boundary-rounding semantics as the non-skipping engine.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Ms(3));
  EXPECT_EQ(fired[1], Sec(2));
  EXPECT_EQ(engine.ticks_elapsed(), 5'000u);
  EXPECT_GT(engine.ticks_skipped(), 0u);
}

TEST(Engine, SkippingPreservesTickPhaseAndRunUntilBoundary) {
  // Skip targets must stay on the engine's tick grid even for unaligned
  // event times and RunUntil boundaries.
  Engine engine(1);
  SimTime fired = 0;
  engine.ScheduleAt(Us(1'234'567), [&] { fired = engine.now(); });
  engine.RunUntil(Us(3'500'500));
  EXPECT_EQ(fired, Us(1'235'000));           // ceil to the 1 ms grid.
  EXPECT_EQ(engine.now(), Us(3'501'000));    // Same final time as unskipped.
  EXPECT_EQ(engine.ticks_elapsed(), 3'501u);
}

TEST(Engine, StatsAndRngAccessible) {
  Engine engine(99);
  engine.stats().Increment("test.counter");
  EXPECT_EQ(engine.stats().Get("test.counter"), 1u);
  (void)engine.rng().Next();
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Engine engine(seed);
    std::vector<uint32_t> vals;
    for (int i = 0; i < 10; ++i) {
      vals.push_back(engine.rng().Next());
    }
    return vals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace ice
