#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace ice {
namespace {

class CountingTicker : public Ticker {
 public:
  void Tick(SimTime now) override {
    ++ticks;
    last = now;
  }
  int ticks = 0;
  SimTime last = 0;
};

TEST(Engine, TimeAdvancesByTicks) {
  Engine engine(1);
  engine.RunFor(Ms(10));
  EXPECT_EQ(engine.now(), Ms(10));
  EXPECT_EQ(engine.ticks_elapsed(), 10u);
}

TEST(Engine, TickersCalledOncePerTick) {
  Engine engine(1);
  CountingTicker t;
  engine.AddTicker(&t);
  engine.RunFor(Ms(5));
  EXPECT_EQ(t.ticks, 5);
  engine.RemoveTicker(&t);
  engine.RunFor(Ms(5));
  EXPECT_EQ(t.ticks, 5);
}

TEST(Engine, EventsFireAtScheduledTime) {
  Engine engine(1);
  SimTime fired = 0;
  engine.ScheduleAt(Us(2500), [&] { fired = engine.now(); });
  engine.RunFor(Ms(5));
  // Events run at the first tick boundary at/after their time.
  EXPECT_GE(fired, Us(2500));
  EXPECT_LE(fired, Us(3000));
}

TEST(Engine, ScheduleAfterUsesNow) {
  Engine engine(1);
  engine.RunFor(Ms(3));
  bool fired = false;
  engine.ScheduleAfter(Ms(2), [&] { fired = true; });
  engine.RunFor(Ms(1));
  EXPECT_FALSE(fired);
  engine.RunFor(Ms(2));
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelWorks) {
  Engine engine(1);
  bool fired = false;
  EventId id = engine.ScheduleAfter(Ms(1), [&] { fired = true; });
  EXPECT_TRUE(engine.Cancel(id));
  engine.RunFor(Ms(5));
  EXPECT_FALSE(fired);
}

TEST(Engine, TickerAddedDuringTickStartsNextTick) {
  Engine engine(1);
  CountingTicker inner;
  class Adder : public Ticker {
   public:
    Adder(Engine& e, CountingTicker& t) : engine_(e), ticker_(t) {}
    void Tick(SimTime) override {
      if (!added_) {
        added_ = true;
        engine_.AddTicker(&ticker_);
      }
    }
    Engine& engine_;
    CountingTicker& ticker_;
    bool added_ = false;
  } adder(engine, inner);
  engine.AddTicker(&adder);
  engine.RunFor(Ms(3));
  EXPECT_EQ(inner.ticks, 2);  // Missed the tick it was added in.
  engine.RemoveTicker(&adder);
  engine.RemoveTicker(&inner);
}

TEST(Engine, RemoveTickerDuringTickIsSafe) {
  Engine engine(1);
  CountingTicker other;
  class SelfRemover : public Ticker {
   public:
    SelfRemover(Engine& e) : engine_(e) {}
    void Tick(SimTime) override {
      ++ticks;
      engine_.RemoveTicker(this);
    }
    Engine& engine_;
    int ticks = 0;
  } remover(engine);
  engine.AddTicker(&remover);
  engine.AddTicker(&other);
  engine.RunFor(Ms(3));
  EXPECT_EQ(remover.ticks, 1);
  EXPECT_EQ(other.ticks, 3);  // Unaffected by the removal.
  engine.RemoveTicker(&other);
}

TEST(Engine, StatsAndRngAccessible) {
  Engine engine(99);
  engine.stats().Increment("test.counter");
  EXPECT_EQ(engine.stats().Get("test.counter"), 1u);
  (void)engine.rng().Next();
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Engine engine(seed);
    std::vector<uint32_t> vals;
    for (int i = 0; i < 10; ++i) {
      vals.push_back(engine.rng().Next());
    }
    return vals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace ice
