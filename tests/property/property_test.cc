// Property-based suites: randomized operation sequences and parameterized
// sweeps checking the invariants the simulator's correctness rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/android/activity_manager.h"
#include "src/base/rng.h"
#include "src/ice/mapping_table.h"
#include "src/ice/mdt.h"
#include "src/mem/memory_manager.h"
#include "src/proc/behavior.h"
#include "src/proc/freezer.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

// ---------------------------------------------------------------------------
// Memory accounting invariant: under ANY random mix of touches, reclaims,
// releases and faults, the frame ledger must balance:
//   usable_frames == free + sum(resident) + zram_frames(stored_bytes).
// ---------------------------------------------------------------------------

class MemAccountingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemAccountingProperty, FrameLedgerAlwaysBalances) {
  Engine engine(GetParam());
  BlockDevice storage(engine, Ufs21Profile());
  MemConfig config;
  config.total_pages = 6000;
  config.os_reserved_pages = 500;
  config.wm = Watermarks::FromHigh(300);
  config.zram.capacity_bytes = 4 * kMiB;
  config.reclaim_contention_mean = 0;
  MemoryManager mm(engine, config, &storage);

  Rng rng(GetParam() * 31 + 7);
  std::vector<std::unique_ptr<AddressSpace>> spaces;
  for (int i = 0; i < 4; ++i) {
    AddressSpaceLayout layout;
    layout.java_pages = 300;
    layout.native_pages = 400;
    layout.file_pages = 500;
    spaces.push_back(std::make_unique<AddressSpace>(i + 1, 100 + i, "app", layout));
    mm.Register(*spaces.back());
  }

  auto check_ledger = [&](const char* when) {
    int64_t resident = 0;
    for (auto& s : spaces) {
      resident += static_cast<int64_t>(s->resident());
    }
    int64_t usable =
        static_cast<int64_t>(config.total_pages) - static_cast<int64_t>(config.os_reserved_pages);
    int64_t zram_frames = static_cast<int64_t>(BytesToPages(mm.zram().stored_bytes()));
    int64_t in_flight = static_cast<int64_t>(mm.faults_in_flight());
    // In-flight flash faults already took a frame but are not yet resident.
    ASSERT_EQ(mm.free_pages() + resident + zram_frames + in_flight, usable) << when;
  };

  for (int op = 0; op < 3000; ++op) {
    AddressSpace& space = *spaces[rng.Below(4)];
    switch (rng.Below(8)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // Touch (read or write).
        uint32_t vpn = rng.Below(static_cast<uint32_t>(space.total_pages()));
        mm.Access(space, vpn, rng.Chance(0.3), nullptr);
        break;
      }
      case 5: {  // kswapd batch.
        mm.KswapdBatch();
        break;
      }
      case 6: {  // Per-process reclaim (rarely).
        if (rng.Chance(0.05)) {
          mm.ReclaimAllOf(space);
        }
        break;
      }
      case 7: {  // Let I/O drain.
        engine.RunFor(Ms(5));
        break;
      }
    }
    if (op % 250 == 0) {
      engine.RunFor(Ms(20));  // Drain in-flight faults before the strict check.
      check_ledger("mid-sequence");
    }
  }
  engine.RunFor(Ms(100));
  check_ledger("final");

  // Release everything: all frames must come back.
  for (auto& s : spaces) {
    mm.Release(*s);
  }
  ASSERT_EQ(mm.free_pages(),
            static_cast<int64_t>(config.total_pages - config.os_reserved_pages));
  ASSERT_EQ(mm.zram().stored_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemAccountingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Page state machine: after any op sequence, every page is in a coherent
// state w.r.t. its LRU membership and zram bookkeeping.
// ---------------------------------------------------------------------------

class PageStateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageStateProperty, StatesStayCoherent) {
  Engine engine(GetParam());
  BlockDevice storage(engine, Emmc51Profile());
  MemConfig config;
  config.total_pages = 3000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(200);
  config.reclaim_contention_mean = 0;
  MemoryManager mm(engine, config, &storage);

  AddressSpaceLayout layout;
  layout.java_pages = 400;
  layout.native_pages = 400;
  layout.file_pages = 800;
  AddressSpace space(1, 1, "app", layout);
  mm.Register(space);

  Rng rng(GetParam() * 97 + 11);
  for (int op = 0; op < 4000; ++op) {
    uint32_t vpn = rng.Below(static_cast<uint32_t>(space.total_pages()));
    switch (rng.Below(4)) {
      case 0:
      case 1:
        mm.Access(space, vpn, rng.Chance(0.5), nullptr);
        break;
      case 2:
        mm.KswapdBatch();
        break;
      case 3:
        engine.RunFor(Ms(3));
        break;
    }
  }
  engine.RunFor(Ms(100));

  uint64_t zram_pages = 0;
  PageCount resident = 0, evicted = 0;
  for (const PageInfo& p : space.pages()) {
    switch (p.state()) {
      case PageState::kPresent:
        EXPECT_TRUE(p.lru_linked());
        EXPECT_EQ(p.zram_bytes, 0u);
        ++resident;
        break;
      case PageState::kInZram:
        EXPECT_FALSE(p.lru_linked());
        EXPECT_GT(p.zram_bytes, 0u);
        EXPECT_TRUE(IsAnon(p.kind()));
        EXPECT_GT(p.evict_cookie, 0u);
        zram_pages += 1;
        ++evicted;
        break;
      case PageState::kOnFlash:
        EXPECT_FALSE(p.lru_linked());
        EXPECT_EQ(p.kind(), HeapKind::kFile);
        EXPECT_EQ(p.zram_bytes, 0u);
        EXPECT_GT(p.evict_cookie, 0u);
        ++evicted;
        break;
      case PageState::kUntouched:
        EXPECT_FALSE(p.lru_linked());
        EXPECT_EQ(p.evict_cookie, 0u);
        break;
      case PageState::kFaultingIn:
        ADD_FAILURE() << "fault still in flight after drain";
        break;
    }
  }
  EXPECT_EQ(space.resident(), resident);
  EXPECT_EQ(space.evicted(), evicted);
  EXPECT_EQ(mm.zram().stored_pages(), zram_pages);
  mm.Release(space);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageStateProperty, ::testing::Values(4, 9, 16, 25, 36, 49));

// ---------------------------------------------------------------------------
// LRU size conservation under random churn.
// ---------------------------------------------------------------------------

class LruProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruProperty, SizesConserveAndNoDoubleLinks) {
  AddressSpaceLayout layout;
  layout.java_pages = 64;
  layout.native_pages = 64;
  layout.file_pages = 128;
  AddressSpace space(1, 1, "app", layout);
  LruLists lru;
  lru.BindArena(&space, space.pages().data(),
                static_cast<uint32_t>(space.pages().size()));
  Rng rng(GetParam());

  std::vector<bool> linked(space.total_pages(), false);
  size_t expected = 0;
  for (int op = 0; op < 5000; ++op) {
    uint32_t vpn = rng.Below(static_cast<uint32_t>(space.total_pages()));
    PageInfo* page = &space.page(vpn);
    switch (rng.Below(5)) {
      case 0:
        if (!linked[vpn]) {
          lru.Insert(page);
          linked[vpn] = true;
          ++expected;
        }
        break;
      case 1:
        if (linked[vpn]) {
          lru.Remove(page);
          linked[vpn] = false;
          --expected;
        }
        break;
      case 2:
        lru.Touch(page);  // Safe on unlinked pages too.
        break;
      case 3:
        lru.Balance(LruPool::kAnon);
        lru.Balance(LruPool::kFile);
        break;
      case 4: {
        std::vector<PageInfo*> victims;
        lru.IsolateCandidates(rng.Chance(0.5) ? LruPool::kAnon : LruPool::kFile, 4, 16,
                              nullptr, victims);
        for (PageInfo* v : victims) {
          linked[v->vpn] = false;
          --expected;
        }
        break;
      }
    }
    ASSERT_EQ(lru.total_size(), expected);
  }
  // Cleanup.
  for (uint32_t vpn = 0; vpn < space.total_pages(); ++vpn) {
    if (linked[vpn]) {
      lru.Remove(&space.page(vpn));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruProperty, ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Scheduler fairness sweep: N equal spinners share the cores near-equally
// for any N.
// ---------------------------------------------------------------------------

struct SpinBehavior : Behavior {
  void Run(TaskContext& ctx) override {
    while (ctx.Compute(Us(100))) {
    }
  }
};

class FairnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairnessProperty, EqualWeightsShareEqually) {
  int n = GetParam();
  Engine engine(42);
  MemoryManager mm(engine, MemConfig{}, nullptr);
  Scheduler sched(engine, mm, 4);
  std::vector<Task*> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back(sched.CreateTask("spin" + std::to_string(i), nullptr, 0,
                                     std::make_unique<SpinBehavior>()));
  }
  engine.RunFor(Sec(2));
  double expected = std::min(1.0, 4.0 / n) * Sec(2);
  for (Task* t : tasks) {
    EXPECT_NEAR(static_cast<double>(t->cpu_time_us()), expected, expected * 0.15)
        << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, FairnessProperty, ::testing::Values(1, 2, 4, 5, 8, 16));

// ---------------------------------------------------------------------------
// Task state machine fuzz: random freeze/thaw/wake/sleep sequences never
// corrupt state or crash, and thaw always restores runnability.
// ---------------------------------------------------------------------------

class TaskFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaskFuzzProperty, RandomLifecycleSequencesStaySane) {
  Engine engine(GetParam());
  MemoryManager mm(engine, MemConfig{}, nullptr);
  Scheduler sched(engine, mm, 2);
  struct NapBehavior : Behavior {
    void Run(TaskContext& ctx) override {
      ctx.Compute(Us(50));
      ctx.SleepFor(Ms(2));
    }
  };
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(
        sched.CreateTask("t" + std::to_string(i), nullptr, 0, std::make_unique<NapBehavior>()));
  }
  Rng rng(GetParam() * 13 + 1);
  for (int op = 0; op < 2000; ++op) {
    Task* t = tasks[rng.Below(6)];
    switch (rng.Below(4)) {
      case 0:
        t->RequestFreeze();
        break;
      case 1:
        t->ThawNow();
        break;
      case 2:
        t->Wake();
        break;
      case 3:
        engine.RunFor(Ms(1));
        break;
    }
    ASSERT_NE(t->state(), TaskState::kDead);
  }
  // Thaw everything: all tasks must be schedulable again.
  for (Task* t : tasks) {
    t->ThawNow();
    t->Wake();
  }
  engine.RunFor(Ms(50));
  for (Task* t : tasks) {
    EXPECT_NE(t->state(), TaskState::kFrozen);
    EXPECT_GT(t->cpu_time_us(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskFuzzProperty, ::testing::Values(3, 7, 31, 127));

// ---------------------------------------------------------------------------
// Mapping table fuzz vs a std::map reference model.
// ---------------------------------------------------------------------------

class MappingTableFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappingTableFuzz, MatchesReferenceModel) {
  MappingTable table;
  std::map<Uid, std::map<Pid, int>> model;
  Rng rng(GetParam() * 53 + 17);

  for (int op = 0; op < 5000; ++op) {
    Uid uid = 10000 + static_cast<Uid>(rng.Below(30));
    Pid pid = 100 + static_cast<Pid>(rng.Below(90));
    switch (rng.Below(5)) {
      case 0:
        if (table.AddApp(uid)) {
          model.emplace(uid, std::map<Pid, int>{});
        }
        break;
      case 1: {
        // Real pids are globally unique: never add a pid that is already
        // registered under a different uid.
        bool pid_elsewhere = false;
        for (const auto& [u, procs] : model) {
          if (u != uid && procs.count(pid)) {
            pid_elsewhere = true;
            break;
          }
        }
        if (!pid_elsewhere && table.AddProcess(uid, pid, 900)) {
          model[uid][pid] = 900;
        }
        break;
      }
      case 2:
        if (table.RemoveProcess(uid, pid)) {
          model[uid].erase(pid);
        }
        break;
      case 3:
        if (table.RemoveApp(uid)) {
          model.erase(uid);
        }
        break;
      case 4: {
        Uid expected = kInvalidUid;
        for (const auto& [u, procs] : model) {
          if (procs.count(pid)) {
            expected = u;
            break;
          }
        }
        ASSERT_EQ(table.UidOfPid(pid), expected);
        break;
      }
    }
    ASSERT_EQ(table.app_count(), model.size());
    ASSERT_LE(table.MemoryFootprintBytes(), MappingTable::kUpperBoundBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingTableFuzz, ::testing::Values(2, 4, 6, 8));

// ---------------------------------------------------------------------------
// Eq. 1 (MDT freezing intensity): for ANY delta — including extreme values
// that overflow int64 when cast unclamped — the freeze duration E_f stays in
// [min_freeze, max_freeze] and is monotonically non-increasing in available
// memory (equivalently: consuming memory never shortens the freeze period).
// ---------------------------------------------------------------------------

class MdtEquationProperty : public ::testing::TestWithParam<double> {};

TEST_P(MdtEquationProperty, FreezeDurationBoundedAndMonotoneInPressure) {
  Engine engine(11);
  BlockDevice storage(engine, Ufs21Profile());
  MemConfig mc;
  mc.total_pages = BytesToPages(512 * kMiB);
  mc.os_reserved_pages = BytesToPages(64 * kMiB);
  mc.wm = Watermarks::FromHigh(BytesToPages(32 * kMiB));
  mc.reclaim_contention_mean = 0;
  MemoryManager mm(engine, mc, &storage);
  Scheduler sched(engine, mm, 4);
  Freezer freezer(engine);
  ActivityManager am(engine, sched, mm, freezer);
  IceConfig ic;
  ic.delta = GetParam();
  ic.hwm_mib = 256;
  Mdt mdt(ic, engine, mm, freezer, am);

  // Consume memory in steps, sampling (available, E_f) along the way. Anon
  // pages subtract from MemAvailable in full (file pages give half back via
  // the file-LRU term), and the sweep stops well above the watermarks so
  // reclaim never interferes with the samples.
  AddressSpaceLayout layout;
  layout.native_pages = BytesToPages(360 * kMiB);
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);

  struct Sample {
    PageCount available;
    SimDuration ef;
  };
  std::vector<Sample> samples;
  samples.push_back({mm.available_pages(), mdt.CurrentFreezeDuration()});
  uint32_t step = static_cast<uint32_t>(BytesToPages(8 * kMiB));
  for (uint32_t vpn = 0; vpn < space.total_pages(); ++vpn) {
    mm.Access(space, vpn, false, nullptr);
    if ((vpn + 1) % step == 0) {
      samples.push_back({mm.available_pages(), mdt.CurrentFreezeDuration()});
    }
  }

  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].ef, ic.min_freeze) << "delta=" << ic.delta;
    EXPECT_LE(samples[i].ef, ic.max_freeze) << "delta=" << ic.delta;
    if (i > 0) {
      // Less available memory => freeze period never shrinks.
      ASSERT_LE(samples[i].available, samples[i - 1].available);
      EXPECT_GE(samples[i].ef, samples[i - 1].ef)
          << "E_f shrank as memory tightened (delta=" << ic.delta << ", step " << i << ")";
    }
  }
  // The sweep must actually exercise a range of pressures.
  EXPECT_LT(samples.back().available, samples.front().available / 2);
  mm.Release(space);
}

INSTANTIATE_TEST_SUITE_P(Deltas, MdtEquationProperty,
                         ::testing::Values(0.0, 0.25, 1.0, 8.0, 64.0, 1e6, 1e18));

// ---------------------------------------------------------------------------
// Determinism: identical seeds give identical end-to-end results.
// ---------------------------------------------------------------------------

TEST(Determinism, SameSeedSameTrajectory) {
  auto run = [](uint64_t seed) {
    Engine engine(seed);
    BlockDevice storage(engine, Ufs21Profile());
    MemConfig config;
    config.total_pages = 4000;
    config.os_reserved_pages = 300;
    config.wm = Watermarks::FromHigh(200);
    MemoryManager mm(engine, config, &storage);
    AddressSpaceLayout layout;
    layout.java_pages = 500;
    layout.native_pages = 500;
    layout.file_pages = 1000;
    AddressSpace space(1, 1, "app", layout);
    mm.Register(space);
    Rng rng(seed + 1);
    for (int i = 0; i < 5000; ++i) {
      mm.Access(space, rng.Below(2000), rng.Chance(0.3), nullptr);
      if (i % 50 == 0) {
        mm.KswapdBatch();
        engine.RunFor(Ms(1));
      }
    }
    auto snapshot = engine.stats().Snapshot();
    mm.Release(space);
    return snapshot;
  };
  EXPECT_EQ(run(12345), run(12345));
  EXPECT_NE(run(12345), run(54321));
}

}  // namespace
}  // namespace ice
