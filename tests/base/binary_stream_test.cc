#include "src/base/binary_stream.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace ice {
namespace {

std::vector<uint8_t> SampleStream() {
  BinaryWriter w;
  w.BeginSection(7);
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(3.25);
  w.Bool(true);
  w.Str("hello snapshot");
  w.BeginSection(9);
  uint32_t raw[4] = {1, 2, 3, 4};
  w.Bytes(raw, sizeof(raw));
  w.EndSection();
  w.EndSection();
  return w.Finish();
}

TEST(BinaryStreamTest, RoundTripAllTypes) {
  std::vector<uint8_t> buf = SampleStream();
  BinaryReader r(buf);
  r.ExpectSection(7);
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_DOUBLE_EQ(r.F64(), 3.25);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello snapshot");
  r.ExpectSection(9);
  uint32_t raw[4] = {};
  r.Bytes(raw, sizeof(raw));
  EXPECT_EQ(raw[0], 1u);
  EXPECT_EQ(raw[3], 4u);
  r.EndSection();
  r.EndSection();
  r.ExpectEnd();
}

TEST(BinaryStreamTest, EmptyStreamRoundTrips) {
  BinaryWriter w;
  std::vector<uint8_t> buf = w.Finish();
  BinaryReader r(buf);
  r.ExpectEnd();
}

TEST(BinaryStreamTest, WrongSectionTagThrows) {
  std::vector<uint8_t> buf = SampleStream();
  BinaryReader r(buf);
  EXPECT_THROW(r.ExpectSection(8), std::runtime_error);
}

TEST(BinaryStreamTest, TruncatedStreamThrows) {
  std::vector<uint8_t> buf = SampleStream();
  for (size_t cut : {size_t{0}, size_t{5}, buf.size() / 2, buf.size() - 1}) {
    std::vector<uint8_t> trunc(buf.begin(), buf.begin() + cut);
    EXPECT_THROW(BinaryReader r(trunc), std::runtime_error) << "cut=" << cut;
  }
}

TEST(BinaryStreamTest, CorruptByteThrowsChecksum) {
  std::vector<uint8_t> buf = SampleStream();
  buf[buf.size() / 2] ^= 0x40;
  try {
    BinaryReader r(buf);
    FAIL() << "corrupt stream accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(BinaryStreamTest, BadMagicThrows) {
  std::vector<uint8_t> buf = SampleStream();
  buf[0] = 'X';
  // Keep the checksum valid so the magic check itself is exercised.
  uint64_t sum = SnapshotChecksum64(buf.data(), buf.size() - 8);
  for (int i = 0; i < 8; ++i) {
    buf[buf.size() - 8 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
  try {
    BinaryReader r(buf);
    FAIL() << "bad magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(BinaryStreamTest, VersionMismatchThrows) {
  std::vector<uint8_t> buf = SampleStream();
  buf[8] = 99;  // Version field follows the 8-byte magic.
  uint64_t sum = SnapshotChecksum64(buf.data(), buf.size() - 8);
  for (int i = 0; i < 8; ++i) {
    buf[buf.size() - 8 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
  try {
    BinaryReader r(buf);
    FAIL() << "version skew accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryStreamTest, SectionUnderreadDetected) {
  BinaryWriter w;
  w.BeginSection(3);
  w.U64(1);
  w.U64(2);
  w.EndSection();
  std::vector<uint8_t> buf = w.Finish();
  BinaryReader r(buf);
  r.ExpectSection(3);
  r.U64();
  EXPECT_THROW(r.EndSection(), std::runtime_error);
}

TEST(BinaryStreamTest, SectionOverreadDetected) {
  BinaryWriter w;
  w.BeginSection(3);
  w.U32(1);
  w.EndSection();
  w.U64(0x1111111111111111ull);
  std::vector<uint8_t> buf = w.Finish();
  BinaryReader r(buf);
  r.ExpectSection(3);
  r.U32();
  // Reading past the section boundary must throw even though the outer
  // stream has bytes left.
  EXPECT_THROW(r.U64(), std::runtime_error);
}

}  // namespace
}  // namespace ice
