#include "src/base/stats.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

TEST(StatsRegistry, CountersStartAtZero) {
  StatsRegistry stats;
  EXPECT_EQ(stats.Get("nope"), 0u);
  EXPECT_EQ(*stats.Counter("a"), 0u);
}

TEST(StatsRegistry, AddAndIncrement) {
  StatsRegistry stats;
  stats.Increment("x");
  stats.Add("x", 4);
  EXPECT_EQ(stats.Get("x"), 5u);
}

TEST(StatsRegistry, CounterPointerIsStable) {
  StatsRegistry stats;
  uint64_t* p = stats.Counter("p");
  for (int i = 0; i < 100; ++i) {
    stats.Counter("c" + std::to_string(i));
  }
  *p += 7;
  EXPECT_EQ(stats.Get("p"), 7u);
}

TEST(StatsRegistry, SnapshotAndDiff) {
  StatsRegistry stats;
  stats.Add("a", 10);
  auto before = stats.Snapshot();
  stats.Add("a", 5);
  stats.Add("b", 3);
  auto diff = StatsRegistry::Diff(before, stats.Snapshot());
  EXPECT_EQ(diff["a"], 5u);
  EXPECT_EQ(diff["b"], 3u);
}

TEST(StatsRegistry, ResetZeroesAll) {
  StatsRegistry stats;
  stats.Add("a", 10);
  stats.Reset();
  EXPECT_EQ(stats.Get("a"), 0u);
}

TEST(StatsRegistry, ToStringContainsEntries) {
  StatsRegistry stats;
  stats.Add("mem.foo", 2);
  EXPECT_NE(stats.ToString().find("mem.foo = 2"), std::string::npos);
}

}  // namespace
}  // namespace ice
