#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace ice {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint32_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.Below(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  constexpr int kSamples = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kSamples;
  double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  constexpr int kSamples = 200000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.Exponential(250.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 250.0, 5.0);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(23);
  constexpr uint64_t kN = 1000;
  constexpr int kSamples = 100000;
  int low_half = 0;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = rng.Zipf(kN, 0.9);
    ASSERT_LT(v, kN);
    if (v < kN / 2) {
      ++low_half;
    }
  }
  // Strong skew toward low ranks.
  EXPECT_GT(low_half, kSamples * 3 / 4);
}

TEST(Rng, ZipfNearUniformWhenFlat) {
  Rng rng(29);
  constexpr uint64_t kN = 1000;
  constexpr int kSamples = 100000;
  int low_half = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Zipf(kN, 0.05) < kN / 2) {
      ++low_half;
    }
  }
  EXPECT_NEAR(low_half / static_cast<double>(kSamples), 0.5, 0.05);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(31);
  constexpr int kSamples = 100001;
  std::vector<double> vals(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    vals[i] = rng.LogNormal(100.0, 0.5);
    EXPECT_GT(vals[i], 0.0);
  }
  std::nth_element(vals.begin(), vals.begin() + kSamples / 2, vals.end());
  EXPECT_NEAR(vals[kSamples / 2], 100.0, 3.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(41);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace ice
