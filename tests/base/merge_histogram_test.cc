#include "src/base/merge_histogram.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/histogram.h"
#include "src/base/rng.h"

namespace ice {
namespace {

MergeHistogram::Options TestOptions() {
  MergeHistogram::Options o;
  o.lo = 1.0;
  o.hi = 1e6;
  o.buckets = 96;
  return o;
}

// Relative width of one bucket: adjacent edges differ by this factor.
double Growth(const MergeHistogram::Options& o) {
  return std::pow(o.hi / o.lo, 1.0 / o.buckets);
}

TEST(MergeHistogramTest, EmptyHistogram) {
  MergeHistogram h(TestOptions());
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
}

TEST(MergeHistogramTest, BucketRouting) {
  MergeHistogram h(TestOptions());
  h.Add(0.5);    // Below lo: underflow.
  h.Add(-3.0);   // Negative: underflow.
  h.Add(1.0);    // Exactly lo: first finite bucket.
  h.Add(2e6);    // Above hi: overflow.
  h.Add(1e6);    // Exactly hi: overflow.
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(h.num_buckets() - 1), 2u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.Min(), -3.0);
  EXPECT_EQ(h.Max(), 2e6);
}

TEST(MergeHistogramTest, OverflowAndUnderflowPercentilesStayInRange) {
  MergeHistogram h(TestOptions());
  for (int i = 0; i < 10; ++i) {
    h.Add(1e7);  // All overflow.
  }
  EXPECT_EQ(h.Percentile(0.0), 1e7);
  EXPECT_EQ(h.Percentile(1.0), 1e7);

  MergeHistogram u(TestOptions());
  for (int i = 0; i < 10; ++i) {
    u.Add(0.25);  // All underflow.
  }
  EXPECT_GE(u.Percentile(0.5), 0.25);
  EXPECT_LE(u.Percentile(0.5), 1.0);
}

TEST(MergeHistogramTest, PercentilesAgreeWithExactHistogramWithinBucketWidth) {
  MergeHistogram::Options o = TestOptions();
  MergeHistogram merged(o);
  Histogram exact;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.LogNormal(1200.0, 0.8);
    merged.Add(v);
    exact.Add(v);
  }
  const double tol = Growth(o);  // One bucket of relative error.
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    double want = exact.Percentile(q);
    double got = merged.Percentile(q);
    EXPECT_LE(got, want * tol) << "q=" << q;
    EXPECT_GE(got, want / tol) << "q=" << q;
  }
  EXPECT_EQ(merged.count(), exact.count());
  EXPECT_EQ(merged.Min(), exact.Min());
  EXPECT_EQ(merged.Max(), exact.Max());
  EXPECT_NEAR(merged.Mean(), exact.Mean(), exact.Mean() * 1e-9);
}

std::vector<MergeHistogram> Partials(const MergeHistogram::Options& o, int parts,
                                     int samples_each) {
  std::vector<MergeHistogram> out;
  Rng rng(99);
  for (int p = 0; p < parts; ++p) {
    MergeHistogram h(o);
    for (int i = 0; i < samples_each; ++i) {
      h.Add(rng.LogNormal(500.0 * (p + 1), 0.6));
    }
    out.push_back(h);
  }
  return out;
}

void ExpectSameDistribution(const MergeHistogram& a, const MergeHistogram& b) {
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (size_t i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(a.bucket_count(i), b.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q));
  }
}

TEST(MergeHistogramTest, MergeIsCommutativeForCountsAndPercentiles) {
  auto parts = Partials(TestOptions(), 2, 5000);
  MergeHistogram ab(TestOptions());
  ab.Merge(parts[0]);
  ab.Merge(parts[1]);
  MergeHistogram ba(TestOptions());
  ba.Merge(parts[1]);
  ba.Merge(parts[0]);
  ExpectSameDistribution(ab, ba);
}

TEST(MergeHistogramTest, MergeIsAssociativeForCountsAndPercentiles) {
  auto parts = Partials(TestOptions(), 3, 3000);
  MergeHistogram left(TestOptions());  // (a + b) + c
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  MergeHistogram bc(TestOptions());  // a + (b + c)
  bc.Merge(parts[1]);
  bc.Merge(parts[2]);
  MergeHistogram right(TestOptions());
  right.Merge(parts[0]);
  right.Merge(bc);
  ExpectSameDistribution(left, right);
}

// The fleet's determinism contract: folding the same partials in the same
// order twice reproduces every field bit-for-bit, including the double sum.
TEST(MergeHistogramTest, FixedFoldOrderIsByteStable) {
  auto parts = Partials(TestOptions(), 4, 2000);
  MergeHistogram a(TestOptions());
  MergeHistogram b(TestOptions());
  for (const MergeHistogram& p : parts) {
    a.Merge(p);
    b.Merge(p);
  }
  ExpectSameDistribution(a, b);
  EXPECT_EQ(a.Sum(), b.Sum());  // Exact bit equality, not NEAR.
}

TEST(MergeHistogramTest, MergeWithEmptyIsIdentity) {
  auto parts = Partials(TestOptions(), 1, 1000);
  MergeHistogram empty(TestOptions());
  MergeHistogram merged(TestOptions());
  merged.Merge(empty);
  EXPECT_TRUE(merged.empty());
  merged.Merge(parts[0]);
  merged.Merge(empty);
  ExpectSameDistribution(merged, parts[0]);
  EXPECT_EQ(merged.Sum(), parts[0].Sum());
}

TEST(MergeHistogramTest, ClearResets) {
  MergeHistogram h(TestOptions());
  h.Add(10.0);
  h.Add(1e7);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(0.9), 0.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Min(), 5.0);
}

}  // namespace
}  // namespace ice
