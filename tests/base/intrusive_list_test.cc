#include "src/base/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace ice {
namespace {

struct TagA {};
struct TagB {};

struct Item : ListNode<TagA>, ListNode<TagB> {
  explicit Item(int v) : value(v) {}
  int value;
};

using ListA = IntrusiveList<Item, TagA>;
using ListB = IntrusiveList<Item, TagB>;

TEST(IntrusiveList, StartsEmpty) {
  ListA list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.Back(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_EQ(list.PopBack(), nullptr);
}

TEST(IntrusiveList, PushPopFifo) {
  ListA list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PushFrontLifo) {
  ListA list;
  Item a(1), b(2);
  list.PushFront(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
  list.Clear();
}

TEST(IntrusiveList, RemoveMiddle) {
  ListA list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(ListA::IsLinked(&b));
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
}

TEST(IntrusiveList, MembershipIsPerTag) {
  ListA la;
  ListB lb;
  Item a(1);
  la.PushBack(&a);
  EXPECT_TRUE(ListA::IsLinked(&a));
  EXPECT_FALSE(ListB::IsLinked(&a));
  lb.PushBack(&a);
  EXPECT_TRUE(ListB::IsLinked(&a));
  la.Remove(&a);
  EXPECT_FALSE(ListA::IsLinked(&a));
  EXPECT_TRUE(ListB::IsLinked(&a));
  lb.Remove(&a);
}

TEST(IntrusiveList, RotateFrontToBack) {
  ListA list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  list.RotateFrontToBack();
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
  list.Clear();
}

TEST(IntrusiveList, IterationVisitsInOrder) {
  ListA list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  std::vector<int> seen;
  for (Item* item : list) {
    seen.push_back(item->value);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  list.Clear();
}

TEST(IntrusiveList, ClearUnlinksEverything) {
  ListA list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(ListA::IsLinked(&a));
  EXPECT_FALSE(ListA::IsLinked(&b));
}

TEST(IntrusiveList, MoveBetweenLists) {
  ListA l1, l2;
  Item a(1);
  l1.PushBack(&a);
  l1.Remove(&a);
  l2.PushBack(&a);
  EXPECT_TRUE(l1.empty());
  EXPECT_EQ(l2.size(), 1u);
  l2.Clear();
}

}  // namespace
}  // namespace ice
