#include "src/base/histogram.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.FractionAbove(1.0), 0.0);
}

TEST(Histogram, BasicMoments) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_NEAR(h.Stddev(), 1.5811, 1e-3);
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
  EXPECT_NEAR(h.Percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(0.95), 95.05, 0.1);
}

TEST(Histogram, PercentileClampsQ) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 42.0);
}

TEST(Histogram, PercentileCacheInvalidatedByAdd) {
  Histogram h;
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 10.0);
}

TEST(Histogram, FractionAbove) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) {
    h.Add(i);
  }
  EXPECT_DOUBLE_EQ(h.FractionAbove(5.0), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAbove(10.0), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(0.0), 1.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(1.0);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace ice
