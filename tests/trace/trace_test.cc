// simtrace: ring-buffer semantics, instrumentation coverage across the five
// layers, Chrome trace_event export, and serial==parallel determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/harness/experiment.h"
#include "src/harness/sweep.h"
#include "src/trace/chrome_export.h"
#include "src/trace/ring_buffer.h"
#include "src/trace/summary.h"
#include "src/trace/trace.h"
#include "src/trace/tracer.h"

namespace ice {
namespace {

TraceEvent Ev(SimTime ts) {
  TraceEvent e;
  e.ts = ts;
  e.type = TraceEventType::kSchedSwitch;
  return e;
}

TEST(TraceRingBuffer, RetainsEverythingBelowCapacity) {
  TraceRingBuffer ring(8);
  for (SimTime t = 0; t < 5; ++t) {
    ring.Push(Ev(t));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, i);
  }
}

TEST(TraceRingBuffer, OverflowDropsOldestAndCounts) {
  TraceRingBuffer ring(4);
  for (SimTime t = 0; t < 10; ++t) {
    ring.Push(Ev(t));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // The newest four events survive, oldest first.
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].ts, 6 + i);
  }
}

TEST(TraceRingBuffer, ZeroCapacityIsClampedToOne) {
  TraceRingBuffer ring(0);
  ring.Push(Ev(1));
  ring.Push(Ev(2));
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].ts, 2u);
}

TEST(Tracer, CountsPerTypeAndRingAccounting) {
  Tracer tracer(/*buffer_pages=*/1);
  size_t cap = tracer.capacity_events();
  ASSERT_EQ(cap, TraceEventsPerPage());
  uint64_t n = static_cast<uint64_t>(cap) + 50;
  for (uint64_t i = 0; i < n; ++i) {
    tracer.Emit(i, TraceEventType::kPageEvict, {.uid = 7, .arg0 = i});
  }
  tracer.Emit(n, TraceEventType::kRefault);
  EXPECT_EQ(tracer.emitted(), n + 1);
  EXPECT_EQ(tracer.count(TraceEventType::kPageEvict), n);
  EXPECT_EQ(tracer.count(TraceEventType::kRefault), 1u);
  EXPECT_EQ(tracer.retained(), cap);
  EXPECT_EQ(tracer.dropped(), n + 1 - cap);
  // Oldest retained event is the (dropped)'th emission.
  EXPECT_EQ(tracer.Events().front().ts, tracer.dropped());
}

TEST(Tracer, TaskNameTable) {
  Tracer tracer(1);
  tracer.RegisterTaskName(3, "render");
  EXPECT_EQ(tracer.TaskName(0), "idle");
  EXPECT_EQ(tracer.TaskName(3), "render");
  EXPECT_EQ(tracer.TaskName(99), "task");
}

TEST(Tracer, SerializeIsOnePerLinePlusFooter) {
  Tracer tracer(1);
  tracer.Emit(10, TraceEventType::kFreeze, {.uid = 10007});
  std::string text = tracer.Serialize();
  EXPECT_NE(text.find("10 freeze flags=0 core=0 pid=-1 uid=10007 arg0=0 arg1=0\n"),
            std::string::npos);
  EXPECT_NE(text.find("emitted=1 dropped=0\n"), std::string::npos);
}

TEST(TraceMacro, NullTracerEmitsNothing) {
  Engine engine(1);
  ASSERT_EQ(engine.tracer(), nullptr);
  // Must compile and be a no-op without a tracer installed.
  ICE_TRACE(engine, TraceEventType::kRefault, {.pid = 1, .uid = 2});
  Tracer tracer(1);
  engine.set_tracer(&tracer);
  ICE_TRACE(engine, TraceEventType::kRefault, {.pid = 1, .uid = 2});
  EXPECT_EQ(tracer.emitted(), 1u);
  EXPECT_EQ(tracer.Events()[0].pid, 1);
  EXPECT_EQ(tracer.Events()[0].uid, 2);
}

// One short pressured run must light up all five instrumented layers: mem
// (reclaim/evict/refault), proc (sched_switch, freeze), storage (bios),
// android (frames) and ice (rpf/mdt under the ice scheme).
TEST(TraceIntegration, TracedRunCoversAllLayers) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.trace = true;
  Experiment exp(config);
  ASSERT_NE(exp.tracer(), nullptr);
  Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kVideoCall));
  exp.CacheBackgroundApps(8, {fg});
  ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(10), Sec(5));

  const Tracer& t = *exp.tracer();
  EXPECT_GT(t.count(TraceEventType::kSchedSwitch), 0u);
  EXPECT_GT(t.count(TraceEventType::kReclaimBegin), 0u);
  EXPECT_GT(t.count(TraceEventType::kReclaimEnd), 0u);
  EXPECT_GT(t.count(TraceEventType::kPageEvict), 0u);
  EXPECT_GT(t.count(TraceEventType::kRefault), 0u);
  EXPECT_GT(t.count(TraceEventType::kBioSubmit), 0u);
  EXPECT_GT(t.count(TraceEventType::kBioComplete), 0u);
  EXPECT_GT(t.count(TraceEventType::kFrameBegin), 0u);
  EXPECT_GT(t.count(TraceEventType::kFrameEnd), 0u);
  EXPECT_GT(t.count(TraceEventType::kFreeze), 0u);
  EXPECT_GT(t.count(TraceEventType::kMdtEpoch), 0u);

  // The summary folded into the result reconciles with the tracer.
  EXPECT_TRUE(r.trace.enabled);
  EXPECT_EQ(r.trace.emitted, t.emitted());
  EXPECT_EQ(r.trace.dropped, t.dropped());
  uint64_t sum = 0;
  for (size_t i = 0; i < kTraceEventTypeCount; ++i) {
    sum += r.trace.counts[i];
  }
  EXPECT_EQ(sum, t.emitted());

  // Every event carries a SimTime stamp inside the run.
  for (const TraceEvent& e : t.Events()) {
    EXPECT_LE(e.ts, exp.engine().now());
  }

  std::string json = ChromeTraceJson(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');

  std::string path = WriteChromeTrace("results/test_trace/trace.json", t);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), json);
  std::remove(path.c_str());
}

TEST(TraceIntegration, UntracedRunHasNoTracerAndEmptySummary) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  EXPECT_EQ(exp.tracer(), nullptr);
  EXPECT_EQ(exp.engine().tracer(), nullptr);
  ScenarioResult r = exp.RunScenario(ScenarioKind::kShortVideo, Sec(2), Sec(1));
  EXPECT_FALSE(r.trace.enabled);
  EXPECT_EQ(r.trace.emitted, 0u);
}

TEST(TraceIntegration, SmallBufferDropsOldestNotNewest) {
  ExperimentConfig config;
  config.seed = 3;
  config.trace = true;
  config.trace_buffer_pages = 1;  // ~a hundred events: guaranteed overflow.
  Experiment exp(config);
  exp.CacheBackgroundApps(4);
  exp.RunScenario(ScenarioKind::kShortVideo, Sec(5), Sec(2));
  const Tracer& t = *exp.tracer();
  EXPECT_GT(t.dropped(), 0u);
  EXPECT_EQ(t.retained(), t.capacity_events());
  EXPECT_EQ(t.emitted(), t.dropped() + t.retained());
  // The retained window is the newest events: it ends at (or near) now.
  std::vector<TraceEvent> events = t.Events();
  ASSERT_FALSE(events.empty());
  EXPECT_GT(events.back().ts, events.front().ts);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts, events[i - 1].ts);  // Monotonic SimTime stamps.
  }
}

// The determinism contract: a cell's trace is a pure function of its config
// and seed — byte-identical whether the sweep ran on 1 worker or 8.
TEST(TraceDeterminism, SerialAndParallelSweepsProduceIdenticalTraces) {
  auto traced_cell = [](size_t i) -> std::string {
    ExperimentConfig config;
    config.seed = 100 + (i % 2);  // Cells 0/2 and 1/3 are seed twins.
    config.trace = true;
    Experiment exp(config);
    Uid fg = exp.UidOf(ScenarioPackage(ScenarioKind::kShortVideo));
    exp.CacheBackgroundApps(2, {fg});
    exp.RunScenario(ScenarioKind::kShortVideo, Sec(3), Sec(1));
    return exp.tracer()->Serialize();
  };

  SweepRunner serial(1);
  SweepRunner parallel(8);
  auto s = serial.Map<std::string>(4, traced_cell);
  auto p = parallel.Map<std::string>(4, traced_cell);
  ASSERT_EQ(s.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(s[i].ok) << s[i].error;
    ASSERT_TRUE(p[i].ok) << p[i].error;
    EXPECT_EQ(s[i].value, p[i].value) << "cell " << i << " diverged across jobs";
    EXPECT_FALSE(s[i].value.empty());
  }
  EXPECT_EQ(s[0].value, s[2].value);  // Same seed, same bytes.
  EXPECT_NE(s[0].value, s[1].value);  // Different seed, different trace.
}

TEST(TraceSummaryJsonTest, ShapesAsExpected) {
  Tracer tracer(1);
  tracer.Emit(5, TraceEventType::kFreeze, {.uid = 10001});
  tracer.Emit(9, TraceEventType::kThaw, {.uid = 10001});
  TraceSummary summary = SummarizeTrace(tracer);
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.emitted, 2u);
  std::string json = TraceSummaryJson(summary);
  EXPECT_NE(json.find("\"emitted\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"freeze\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"thaw\": 1"), std::string::npos);
}

}  // namespace
}  // namespace ice
