#include "src/storage/block_device.h"

#include <gtest/gtest.h>

#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

TEST(BlockDevice, CompletesARead) {
  Engine engine(1);
  BlockDevice dev(engine, Ufs21Profile());
  bool done = false;
  Bio bio;
  bio.dir = IoDir::kRead;
  bio.pages = 1;
  bio.on_complete = [&] { done = true; };
  dev.Submit(std::move(bio));
  EXPECT_FALSE(done);
  engine.RunFor(Ms(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(dev.pages_read(), 1u);
  EXPECT_EQ(dev.requests_completed(), 1u);
}

TEST(BlockDevice, AccountsBytesInStats) {
  Engine engine(1);
  BlockDevice dev(engine, Ufs21Profile());
  Bio bio;
  bio.dir = IoDir::kWrite;
  bio.pages = 8;
  dev.Submit(std::move(bio));
  engine.RunFor(Ms(10));
  EXPECT_EQ(engine.stats().Get(stat::kIoWrites), 1u);
  EXPECT_EQ(engine.stats().Get(stat::kIoWriteBytes), 8 * kPageSize);
  EXPECT_EQ(dev.pages_written(), 8u);
}

TEST(BlockDevice, QueueDepthBoundsInflight) {
  Engine engine(1);
  FlashProfile profile = Emmc51Profile();
  profile.queue_depth = 2;
  BlockDevice dev(engine, profile);
  for (int i = 0; i < 10; ++i) {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 4;
    dev.Submit(std::move(bio));
  }
  EXPECT_EQ(dev.inflight(), 2);
  EXPECT_EQ(dev.queued(), 8u);
  engine.RunFor(Sec(1));
  EXPECT_EQ(dev.requests_completed(), 10u);
  EXPECT_EQ(dev.inflight(), 0);
}

TEST(BlockDevice, LargerRequestsTakeLonger) {
  Engine engine(1);
  BlockDevice dev(engine, Emmc51Profile());
  SimTime small_done = 0, big_done = 0;
  {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 1;
    bio.on_complete = [&] { small_done = engine.now(); };
    dev.Submit(std::move(bio));
  }
  engine.RunFor(Sec(1));
  SimTime t1 = engine.now();
  {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 256;
    bio.on_complete = [&] { big_done = engine.now(); };
    dev.Submit(std::move(bio));
  }
  engine.RunFor(Sec(1));
  EXPECT_GT(big_done - t1, small_done);
}

TEST(BlockDevice, FifoOrderingUnderLoad) {
  Engine engine(1);
  FlashProfile profile = Ufs21Profile();
  profile.queue_depth = 1;
  profile.jitter_sigma = 0.0;
  BlockDevice dev(engine, profile);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 1;
    bio.on_complete = [&order, i] { order.push_back(i); };
    dev.Submit(std::move(bio));
  }
  engine.RunFor(Sec(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BlockDevice, MeanLatencyGrowsWithQueueing) {
  Engine engine(1);
  BlockDevice idle_dev(engine, Emmc51Profile());
  {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 1;
    idle_dev.Submit(std::move(bio));
  }
  engine.RunFor(Sec(1));
  double idle_latency = idle_dev.mean_latency_us();

  BlockDevice busy_dev(engine, Emmc51Profile());
  for (int i = 0; i < 200; ++i) {
    Bio bio;
    bio.dir = IoDir::kRead;
    bio.pages = 4;
    busy_dev.Submit(std::move(bio));
  }
  engine.RunFor(Sec(5));
  EXPECT_GT(busy_dev.mean_latency_us(), idle_latency * 2);
}

TEST(BlockDevice, FgBgAccountingSplits) {
  Engine engine(1);
  BlockDevice dev(engine, Ufs21Profile());
  Bio fg;
  fg.dir = IoDir::kRead;
  fg.pages = 1;
  fg.foreground = true;
  dev.Submit(std::move(fg));
  Bio bg;
  bg.dir = IoDir::kRead;
  bg.pages = 1;
  bg.foreground = false;
  dev.Submit(std::move(bg));
  engine.RunFor(Ms(10));
  EXPECT_EQ(dev.fg_requests(), 1u);
  EXPECT_EQ(dev.bg_requests(), 1u);
  EXPECT_GT(dev.fg_mean_latency_us(), 0.0);
  EXPECT_GT(dev.bg_mean_latency_us(), 0.0);
}

TEST(BlockDevice, FgLatencySuffersBehindBgFlood) {
  // The paper's I/O-pressure channel: a foreground fault-in queued behind a
  // burst of background refault reads waits for them.
  Engine engine(1);
  FlashProfile profile = Emmc51Profile();
  profile.queue_depth = 2;
  BlockDevice dev(engine, profile);
  for (int i = 0; i < 50; ++i) {
    Bio bg;
    bg.dir = IoDir::kRead;
    bg.pages = 8;
    bg.foreground = false;
    dev.Submit(std::move(bg));
  }
  Bio fg;
  fg.dir = IoDir::kRead;
  fg.pages = 1;
  fg.foreground = true;
  dev.Submit(std::move(fg));
  engine.RunFor(Sec(2));
  EXPECT_GT(dev.fg_mean_latency_us(), 5000.0);  // Way above its service time.
}

TEST(FlashProfiles, UfsIsFasterThanEmmc) {
  FlashProfile ufs = Ufs21Profile();
  FlashProfile emmc = Emmc51Profile();
  EXPECT_LT(ufs.read_per_page, emmc.read_per_page);
  EXPECT_LT(ufs.write_per_page, emmc.write_per_page);
  EXPECT_GT(ufs.queue_depth, emmc.queue_depth);
}

}  // namespace
}  // namespace ice
