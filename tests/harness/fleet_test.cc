#include "src/harness/fleet.h"

#include <set>

#include <gtest/gtest.h>

#include "src/android/device_profile.h"
#include "src/harness/fleet_report.h"

namespace ice {
namespace {

// Small but real: every cell constructs a full device and runs one session.
FleetConfig SmokeConfig() {
  FleetConfig c;
  c.devices = 12;
  c.seed = 17;
  c.schemes = {"lru_cfs", "ice"};
  c.tiers = {"mid-4g", "high-6g"};
  c.sessions = 1;
  c.session_mean = Sec(2);
  c.chunk = 3;
  return c;
}

TEST(FleetRunnerTest, StratifiedGroupAssignment) {
  FleetConfig c = SmokeConfig();
  c.jobs = 1;
  FleetRunner runner(c);
  ASSERT_EQ(runner.num_groups(), 4u);
  // Tier-major, scheme-minor: group 0 = (mid-4g, lru_cfs), 1 = (mid-4g, ice)...
  EXPECT_EQ(runner.GroupOf(0), 0u);
  EXPECT_EQ(runner.GroupOf(1), 1u);
  EXPECT_EQ(runner.GroupOf(4), 0u);
  EXPECT_EQ(runner.GroupOf(7), 3u);
}

TEST(FleetRunnerTest, DeviceSeedsAreDecorrelated) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(FleetRunner::DeviceSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  // Different fleet seeds give different device streams.
  EXPECT_NE(FleetRunner::DeviceSeed(1, 0), FleetRunner::DeviceSeed(2, 0));
}

TEST(FleetRunnerTest, DefaultTiersAndAutoChunkResolve) {
  FleetConfig c;
  c.devices = 100000;
  FleetRunner runner(c);
  EXPECT_EQ(runner.config().tiers, FleetTierNames());
  // Auto chunk is a function of the device count only and is clamped.
  EXPECT_EQ(runner.chunk_size(), 256u);
  EXPECT_EQ(runner.num_chunks(), (100000u + 255u) / 256u);
  FleetConfig tiny;
  tiny.devices = 10;
  EXPECT_EQ(FleetRunner(tiny).chunk_size(), 1u);
}

TEST(FleetRunnerTest, EmptyFleetProducesEmptyGroups) {
  FleetConfig c = SmokeConfig();
  c.devices = 0;
  c.jobs = 4;
  FleetResult r = FleetRunner(c).Run();
  ASSERT_EQ(r.groups.size(), 4u);
  for (const FleetGroupStats& g : r.groups) {
    EXPECT_EQ(g.devices, 0u);
    EXPECT_EQ(g.failures, 0u);
  }
  // The report still serializes (schema smoke).
  EXPECT_NE(FleetReportJson("empty", r).find("\"groups\""), std::string::npos);
}

// The determinism contract: fleet output is byte-identical for any jobs=N.
// This is the in-process twin of the CI leg that diffs --jobs=1 vs --jobs=8.
// Runs through the default warm-boot template path, so it also pins the
// per-worker donor/recycle machinery to the shard-independence contract.
TEST(FleetRunnerTest, ReportIsByteIdenticalAcrossJobCounts) {
  FleetConfig serial_config = SmokeConfig();
  serial_config.jobs = 1;
  FleetResult serial = FleetRunner(serial_config).Run();

  FleetConfig parallel_config = SmokeConfig();
  parallel_config.jobs = 8;
  FleetResult parallel = FleetRunner(parallel_config).Run();

  EXPECT_EQ(serial.devices_failed, 0u);
  EXPECT_EQ(FleetReportJson("x", serial), FleetReportJson("x", parallel));

  // Every device landed in its group; stratification splits 12 devices
  // evenly across 4 groups.
  uint64_t total = 0;
  for (const FleetGroupStats& g : serial.groups) {
    EXPECT_EQ(g.devices, 3u) << g.tier << "/" << g.scheme;
    total += g.devices;
    EXPECT_GT(g.total_frames, 0u) << g.tier << "/" << g.scheme;
    EXPECT_EQ(g.fps.count(), g.devices);
    EXPECT_EQ(g.ria.count(), g.devices);
    // Arena accounting flowed through from the per-device MemoryManager.
    EXPECT_GT(g.peak_arena_bytes, 0u);
  }
  EXPECT_EQ(total, serial_config.devices);
  EXPECT_GE(serial.peak_arena_bytes, serial.groups[0].peak_arena_bytes);
}

// The warm-boot acceptance contract: templated output is byte-identical to
// cold per-device construction, across every tier of the ladder, both aging
// policies, both swap policies, and for jobs=1 vs jobs=8. One device per
// (tier, scheme) group keeps every combination inside the smoke budget.
TEST(FleetRunnerTest, TemplatedMatchesColdAcrossTiersAgingsSwaps) {
  for (const char* aging : {"two_list", "gen_clock"}) {
    for (const char* swap : {"baseline", "hotness"}) {
      SCOPED_TRACE(std::string(aging) + "/" + swap);
      FleetConfig base;
      base.devices = 10;  // 5 tiers x 2 schemes, 1 device per group.
      base.seed = 99;
      base.schemes = {"lru_cfs", "ice"};
      base.aging = aging;
      base.swap = swap;
      base.sessions = 1;
      base.session_mean = Sec(2);

      FleetConfig cold = base;
      cold.use_templates = false;
      cold.jobs = 1;
      FleetResult cold_result = FleetRunner(cold).Run();
      ASSERT_EQ(cold_result.devices_failed, 0u);

      FleetConfig warm1 = base;
      warm1.use_templates = true;
      warm1.jobs = 1;
      FleetConfig warm8 = base;
      warm8.use_templates = true;
      warm8.jobs = 8;

      const std::string want = FleetReportJson("x", cold_result);
      EXPECT_EQ(want, FleetReportJson("x", FleetRunner(warm1).Run()));
      EXPECT_EQ(want, FleetReportJson("x", FleetRunner(warm8).Run()));
    }
  }
}

}  // namespace
}  // namespace ice
