// Snapshot round-trip property tests: saving at a quiescent boundary and
// restoring into a fresh Experiment must reproduce the uninterrupted run
// byte for byte — same stats, same trace, same metrics — across every
// scheme and both aging policies. Malformed streams must fail loudly.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/binary_stream.h"
#include "src/harness/experiment.h"
#include "src/trace/tracer.h"
#include "src/workload/scenario.h"

namespace ice {
namespace {

ExperimentConfig SmallConfig(const std::string& scheme, const std::string& aging,
                             bool trace = false) {
  ExperimentConfig config;
  config.device = Pixel3Profile();
  config.seed = 1234;
  config.scheme = scheme;
  config.aging = aging;
  config.trace = trace;
  return config;
}

// Digest of all live state reachable through public accessors: the stats
// registry plus scheduler/engine clocks. Cheap but broad — any divergence
// in reclaim, IO, scheduling, freezing or LMK shows up here.
std::string StateDigest(Experiment& e) {
  std::string out;
  out += "now=" + std::to_string(e.engine().now());
  out += " ticks=" + std::to_string(e.engine().ticks_elapsed());
  out += " busy=" + std::to_string(e.scheduler().busy_us());
  out += " cap=" + std::to_string(e.scheduler().capacity_us());
  for (const auto& [name, value] : e.engine().stats().Snapshot()) {
    out += " " + name + "=" + std::to_string(value);
  }
  return out;
}

// Cache two apps cold, snapshot, then compare: (a) the uninterrupted
// continuation against (b) a restored clone running the same continuation.
void RoundTripIdentical(const std::string& scheme, const std::string& aging) {
  SCOPED_TRACE(scheme + "/" + aging);
  ExperimentConfig config = SmallConfig(scheme, aging);

  Experiment cold(config);
  std::vector<Uid> pool = cold.PlanBackgroundPool();
  ASSERT_GE(pool.size(), 2u);
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[0]));
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[1]));
  ASSERT_TRUE(cold.QuiescentNow());
  std::vector<uint8_t> snapshot = cold.SaveSnapshot();

  // Saving must not perturb the donor: continue it as the reference run.
  cold.FinishCaching();
  ScenarioResult want = cold.RunScenario(ScenarioKind::kScrolling, Sec(20), Sec(10));
  std::string want_digest = StateDigest(cold);

  auto restored = Experiment::RestoreSnapshot(config, snapshot);
  ScenarioResult got;
  {
    Experiment& e = *restored;
    e.FinishCaching();
    got = e.RunScenario(ScenarioKind::kScrolling, Sec(20), Sec(10));
  }
  EXPECT_EQ(want_digest, StateDigest(*restored));
  EXPECT_EQ(want.avg_fps, got.avg_fps);
  EXPECT_EQ(want.ria, got.ria);
  EXPECT_EQ(want.fps_series, got.fps_series);
  EXPECT_EQ(want.reclaims, got.reclaims);
  EXPECT_EQ(want.refaults, got.refaults);
  EXPECT_EQ(want.io_requests, got.io_requests);
  EXPECT_EQ(want.io_bytes, got.io_bytes);
  EXPECT_EQ(want.cpu_util, got.cpu_util);
  EXPECT_EQ(want.freezes, got.freezes);
  EXPECT_EQ(want.thaws, got.thaws);
  EXPECT_EQ(want.lmk_kills, got.lmk_kills);
}

TEST(SnapshotRoundTrip, LruCfsTwoList) { RoundTripIdentical("lru_cfs", "two_list"); }
TEST(SnapshotRoundTrip, LruCfsGenClock) { RoundTripIdentical("lru_cfs", "gen_clock"); }
TEST(SnapshotRoundTrip, UcsgTwoList) { RoundTripIdentical("ucsg", "two_list"); }
TEST(SnapshotRoundTrip, AcclaimGenClock) { RoundTripIdentical("acclaim", "gen_clock"); }
TEST(SnapshotRoundTrip, PowerTwoList) { RoundTripIdentical("power", "two_list"); }
TEST(SnapshotRoundTrip, IceTwoList) { RoundTripIdentical("ice", "two_list"); }
TEST(SnapshotRoundTrip, IceGenClock) { RoundTripIdentical("ice", "gen_clock"); }

// The trace ring, totals and task names survive the round trip: the
// restored run's serialized trace equals the uninterrupted run's.
TEST(SnapshotRoundTrip, TraceByteIdentical) {
  ExperimentConfig config = SmallConfig("ice", "two_list", /*trace=*/true);

  Experiment cold(config);
  std::vector<Uid> pool = cold.PlanBackgroundPool();
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[0]));
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[1]));
  std::vector<uint8_t> snapshot = cold.SaveSnapshot();
  cold.FinishCaching();
  cold.RunScenario(ScenarioKind::kShortVideo, Sec(15), Sec(5));
  std::string want = cold.tracer()->Serialize();

  auto restored = Experiment::RestoreSnapshot(config, snapshot);
  restored->FinishCaching();
  restored->RunScenario(ScenarioKind::kShortVideo, Sec(15), Sec(5));
  EXPECT_EQ(want, restored->tracer()->Serialize());
}

// A snapshot is reusable: two restores from the same bytes are identical.
TEST(SnapshotRoundTrip, RestoreTwiceIdentical) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  Experiment cold(config);
  std::vector<Uid> pool = cold.PlanBackgroundPool();
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[0]));
  std::vector<uint8_t> snapshot = cold.SaveSnapshot();

  auto a = Experiment::RestoreSnapshot(config, snapshot);
  auto b = Experiment::RestoreSnapshot(config, snapshot);
  a->FinishCaching();
  b->FinishCaching();
  a->RunScenario(ScenarioKind::kScrolling, Sec(10), Sec(5));
  b->RunScenario(ScenarioKind::kScrolling, Sec(10), Sec(5));
  EXPECT_EQ(StateDigest(*a), StateDigest(*b));
}

// A restored experiment is itself snapshottable: save → restore → cache one
// more app → save again works and stays deterministic.
TEST(SnapshotRoundTrip, RestoredRunIsResnapshottable) {
  ExperimentConfig config = SmallConfig("ice", "two_list");
  Experiment cold(config);
  std::vector<Uid> pool = cold.PlanBackgroundPool();
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[0]));
  std::vector<uint8_t> first = cold.SaveSnapshot();
  ASSERT_TRUE(cold.CacheOneBackgroundApp(pool[1]));
  std::vector<uint8_t> want = cold.SaveSnapshot();

  auto restored = Experiment::RestoreSnapshot(config, first);
  ASSERT_TRUE(restored->CacheOneBackgroundApp(pool[1]));
  std::vector<uint8_t> got = restored->SaveSnapshot();
  EXPECT_EQ(want, got);
}

// ---- Warm-boot templates ----------------------------------------------------

// The invariant the fleet's template path rests on: construction and boot
// consume ZERO draws from the device-seed stream (everything boot-time or
// environmental draws from Engine::noise_rng()), so after construction plus
// settling the engine RNG still sits at the very first value a fresh
// Rng(seed) produces.
TEST(WarmBootTemplate, BootConsumesNoDeviceSeedDraws) {
  ExperimentConfig config = SmallConfig("ice", "gen_clock");
  config.seed = 987654321;
  Experiment exp(config);
  ASSERT_TRUE(exp.SettleToQuiescence());
  Rng fresh(config.seed);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(exp.engine().rng().Next64(), fresh.Next64()) << "draw " << i;
  }
}

// RestoreTemplate overlays a post-boot snapshot onto a *live* experiment
// (instance recycling) and reseeds the trace RNG; the result must be
// indistinguishable from a cold experiment built directly with that seed.
// The second device recycles an instance dirtied by the first device's run
// — the exact path each fleet worker's donor takes.
TEST(WarmBootTemplate, RecycledRestoreMatchesColdRun) {
  ExperimentConfig donor_config = SmallConfig("ice", "two_list");
  donor_config.seed = 1;  // Arbitrary: the template is seed-independent.
  Experiment donor(donor_config);
  ASSERT_TRUE(donor.SettleToQuiescence());
  std::vector<uint8_t> tmpl = donor.SaveSnapshot();

  auto run_device = [](Experiment& e) {
    std::vector<Uid> pool = e.PlanBackgroundPool();
    EXPECT_TRUE(e.CacheOneBackgroundApp(pool[0]));
    e.FinishCaching();
    e.RunScenario(ScenarioKind::kScrolling, Sec(10), Sec(5));
    return StateDigest(e);
  };

  auto cold_digest = [&](uint64_t seed) {
    ExperimentConfig config = SmallConfig("ice", "two_list");
    config.seed = seed;
    Experiment cold(config);
    EXPECT_TRUE(cold.SettleToQuiescence());
    return run_device(cold);
  };

  // First device: recycles the still-pristine donor.
  donor.RestoreTemplate(tmpl, 555);
  EXPECT_EQ(donor.config().seed, 555u);
  EXPECT_EQ(run_device(donor), cold_digest(555));
  // Second device: recycles the donor dirtied by the first run.
  donor.RestoreTemplate(tmpl, 777);
  EXPECT_EQ(run_device(donor), cold_digest(777));
  // Same seed through the recycler twice is bit-stable.
  donor.RestoreTemplate(tmpl, 555);
  std::string again = run_device(donor);
  donor.RestoreTemplate(tmpl, 555);
  EXPECT_EQ(run_device(donor), again);
}

// The seed-agnostic fingerprint check still rejects every non-seed config
// difference.
TEST(WarmBootTemplate, RejectsNonSeedConfigMismatch) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  Experiment donor(config);
  ASSERT_TRUE(donor.SettleToQuiescence());
  std::vector<uint8_t> tmpl = donor.SaveSnapshot();

  ExperimentConfig other = config;
  other.scheme = "ice";
  Experiment victim(other);
  ASSERT_TRUE(victim.SettleToQuiescence());
  EXPECT_THROW(victim.RestoreTemplate(tmpl, 99), std::runtime_error);
}

// ---- Malformed streams ------------------------------------------------------

std::vector<uint8_t> MakeSnapshot(const ExperimentConfig& config) {
  Experiment e(config);
  std::vector<Uid> pool = e.PlanBackgroundPool();
  [&] { ASSERT_TRUE(e.CacheOneBackgroundApp(pool[0])); }();
  return e.SaveSnapshot();
}

TEST(SnapshotErrors, TruncatedStreamThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  std::vector<uint8_t> snapshot = MakeSnapshot(config);
  snapshot.resize(snapshot.size() / 2);
  EXPECT_THROW(Experiment::RestoreSnapshot(config, snapshot), std::runtime_error);
}

TEST(SnapshotErrors, CorruptByteThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  std::vector<uint8_t> snapshot = MakeSnapshot(config);
  snapshot[snapshot.size() / 2] ^= 0xFF;  // Checksum catches it up front.
  EXPECT_THROW(Experiment::RestoreSnapshot(config, snapshot), std::runtime_error);
}

TEST(SnapshotErrors, BadMagicThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  std::vector<uint8_t> snapshot = MakeSnapshot(config);
  snapshot[0] = 'X';
  EXPECT_THROW(Experiment::RestoreSnapshot(config, snapshot), std::runtime_error);
}

TEST(SnapshotErrors, VersionMismatchThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  std::vector<uint8_t> snapshot = MakeSnapshot(config);
  // The u32 version sits right after the 8-byte magic. Recompute the
  // trailing checksum so the version check itself is what fires.
  snapshot[8] = static_cast<uint8_t>(kSnapshotFormatVersion + 1);
  uint64_t sum = SnapshotChecksum64(snapshot.data(), snapshot.size() - 8);
  for (int i = 0; i < 8; ++i) {
    snapshot[snapshot.size() - 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(sum >> (8 * i));
  }
  EXPECT_THROW(Experiment::RestoreSnapshot(config, snapshot), std::runtime_error);
}

TEST(SnapshotErrors, ConfigMismatchThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  std::vector<uint8_t> snapshot = MakeSnapshot(config);
  ExperimentConfig other = config;
  other.seed = config.seed + 1;
  EXPECT_THROW(Experiment::RestoreSnapshot(other, snapshot), std::runtime_error);
  other = config;
  other.scheme = "ice";
  EXPECT_THROW(Experiment::RestoreSnapshot(other, snapshot), std::runtime_error);
}

TEST(SnapshotErrors, MissingFileThrows) {
  ExperimentConfig config = SmallConfig("lru_cfs", "two_list");
  EXPECT_THROW(Experiment::RestoreSnapshotFromFile(config, "/nonexistent/snap.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace ice
