// Prefix-sharing determinism gate: a sweep that forks cells from a shared
// warmed snapshot must be byte-identical to one that runs every cell cold —
// per-cell metrics, the JSON report artifact, and trace summaries — for
// both page-aging policies and at any worker count. Sharing defaults on in
// SweepRunner::Run, so this suite is what licenses that default.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/harness/sweep.h"
#include "src/harness/sweep_report.h"

namespace ice {
namespace {

// Cells that actually exercise the donor path: per (scheme, aging) the two
// bg counts share a caching prefix, so the grid forms four donor groups of
// two members each.
std::vector<SweepCell> PrefixCells(bool trace = false) {
  SweepAxes axes;
  axes.base.trace = trace;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"lru_cfs", "ice"};
  axes.agings = {"two_list", "gen_clock"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {2, 4};
  axes.seeds = {7};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  return axes.Cells();
}

void ExpectIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.avg_fps, b.avg_fps);
  EXPECT_EQ(a.ria, b.ria);
  EXPECT_EQ(a.fps_series, b.fps_series);
  EXPECT_EQ(a.reclaims, b.reclaims);
  EXPECT_EQ(a.refaults, b.refaults);
  EXPECT_EQ(a.refaults_bg, b.refaults_bg);
  EXPECT_EQ(a.refaults_fg, b.refaults_fg);
  EXPECT_EQ(a.io_requests, b.io_requests);
  EXPECT_EQ(a.io_bytes, b.io_bytes);
  EXPECT_EQ(a.cpu_util, b.cpu_util);
  EXPECT_EQ(a.freezes, b.freezes);
  EXPECT_EQ(a.thaws, b.thaws);
  EXPECT_EQ(a.lmk_kills, b.lmk_kills);
  EXPECT_EQ(a.arena_bytes_peak, b.arena_bytes_peak);
}

void ExpectTraceIdentical(const TraceSummary& a, const TraceSummary& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retained, b.retained);
  for (size_t t = 0; t < kTraceEventTypeCount; ++t) {
    EXPECT_EQ(a.counts[t], b.counts[t]) << "event type " << t;
  }
}

TEST(PrefixSweep, SharedMatchesColdByteForByte) {
  // The gate itself, across both aging policies: forked cells produce the
  // same metrics and the same report JSON as cold cells.
  std::vector<SweepCell> cells = PrefixCells();
  SweepRunner runner(1);
  std::vector<CellOutcome> cold = runner.Run(cells, /*share_prefix=*/false);
  std::vector<CellOutcome> shared = runner.Run(cells, /*share_prefix=*/true);
  ASSERT_EQ(cold.size(), cells.size());
  ASSERT_EQ(shared.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].error;
    ASSERT_TRUE(shared[i].ok) << shared[i].error;
    ExpectIdentical(cold[i].value, shared[i].value);
  }
  EXPECT_EQ(SweepReportJson("t", 1, cells, cold),
            SweepReportJson("t", 1, cells, shared));
}

TEST(PrefixSweep, SharedIsDeterministicAcrossJobs) {
  // Donor snapshotting and forking run on the worker pool; scheduling must
  // not leak into results any more than it does for cold cells.
  std::vector<SweepCell> cells = PrefixCells();
  std::vector<CellOutcome> serial = SweepRunner(1).Run(cells, /*share_prefix=*/true);
  std::vector<CellOutcome> parallel = SweepRunner(8).Run(cells, /*share_prefix=*/true);
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ExpectIdentical(serial[i].value, parallel[i].value);
  }
  EXPECT_EQ(SweepReportJson("t", 1, cells, serial),
            SweepReportJson("t", 1, cells, parallel));
}

TEST(PrefixSweep, TraceExportsIdenticalUnderSharing) {
  // Trace-enabled cells: the event stream summary (emitted / dropped /
  // retained / per-type counts) from a forked cell matches the cold run's.
  SweepAxes axes;
  axes.base.trace = true;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"ice"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {2, 4};
  axes.seeds = {7};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  std::vector<SweepCell> cells = axes.Cells();
  SweepRunner runner(2);
  std::vector<CellOutcome> cold = runner.Run(cells, /*share_prefix=*/false);
  std::vector<CellOutcome> shared = runner.Run(cells, /*share_prefix=*/true);
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].error;
    ASSERT_TRUE(shared[i].ok) << shared[i].error;
    ExpectIdentical(cold[i].value, shared[i].value);
    ExpectTraceIdentical(cold[i].value.trace, shared[i].value.trace);
  }
}

TEST(PrefixSweep, UnsharableCellsFallBackCold) {
  // bg = 0 cells never join a group, and a lone bg count per config is a
  // singleton: both must still run (cold) and match the share-off sweep.
  SweepAxes axes;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"lru_cfs"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {0, 2};
  axes.seeds = {7};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  std::vector<SweepCell> cells = axes.Cells();
  SweepRunner runner(2);
  std::vector<CellOutcome> cold = runner.Run(cells, /*share_prefix=*/false);
  std::vector<CellOutcome> shared = runner.Run(cells, /*share_prefix=*/true);
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(cold[i].ok) << cold[i].error;
    ASSERT_TRUE(shared[i].ok) << shared[i].error;
    ExpectIdentical(cold[i].value, shared[i].value);
  }
}

}  // namespace
}  // namespace ice
