// SweepRunner determinism and isolation:
//  (a) parallel results are identical to serial results, cell by cell, at
//      fixed seeds (the determinism guarantee CI asserts against);
//  (b) result ordering is grid order, independent of the worker count;
//  (c) a cell that throws is reported without poisoning sibling cells.
#include "src/harness/sweep.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "gtest/gtest.h"
#include "src/harness/sweep_report.h"

namespace ice {
namespace {

// Small but non-trivial cells: pressure from 2 BG apps, a real warmup, and
// both an LRU and an Ice cell so the policy paths run under the pool.
std::vector<SweepCell> TestCells() {
  SweepAxes axes;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"lru_cfs", "ice"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {2};
  axes.seeds = {7, 1000};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  return axes.Cells();
}

void ExpectIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  // Bit-for-bit: the metrics of a cell must not depend on scheduling.
  EXPECT_EQ(a.avg_fps, b.avg_fps);
  EXPECT_EQ(a.ria, b.ria);
  EXPECT_EQ(a.fps_series, b.fps_series);
  EXPECT_EQ(a.reclaims, b.reclaims);
  EXPECT_EQ(a.refaults, b.refaults);
  EXPECT_EQ(a.refaults_bg, b.refaults_bg);
  EXPECT_EQ(a.refaults_fg, b.refaults_fg);
  EXPECT_EQ(a.io_requests, b.io_requests);
  EXPECT_EQ(a.io_bytes, b.io_bytes);
  EXPECT_EQ(a.cpu_util, b.cpu_util);
  EXPECT_EQ(a.freezes, b.freezes);
  EXPECT_EQ(a.thaws, b.thaws);
  EXPECT_EQ(a.lmk_kills, b.lmk_kills);
}

TEST(SweepRunner, ParallelMatchesSerialCellByCell) {
  std::vector<SweepCell> cells = TestCells();
  std::vector<CellOutcome> serial = SweepRunner(1).Run(cells);
  std::vector<CellOutcome> parallel = SweepRunner(4).Run(cells);
  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ExpectIdentical(serial[i].value, parallel[i].value);
  }
  // And the JSON reports (the artifact CI diffs) are byte-identical too;
  // the worker count is metadata, so pin it for the comparison.
  EXPECT_EQ(SweepReportJson("t", 1, cells, serial),
            SweepReportJson("t", 1, cells, parallel));
}

TEST(SweepRunner, GenClockAxisIsDeterministicAcrossJobs) {
  // The generation-clock aging policy must give the same guarantee as the
  // default: a grid spanning both policies is bit-identical at any worker
  // count, and the gen-clock cells label themselves in the report.
  SweepAxes axes;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"lru_cfs", "ice"};
  axes.agings = {"two_list", "gen_clock"};
  axes.scenarios = {ScenarioKind::kShortVideo};
  axes.bg_counts = {2};
  axes.seeds = {7};
  axes.duration = Sec(3);
  axes.warmup = Sec(2);
  std::vector<SweepCell> cells = axes.Cells();
  ASSERT_EQ(cells.size(), 4u);
  std::vector<CellOutcome> serial = SweepRunner(1).Run(cells);
  std::vector<CellOutcome> parallel = SweepRunner(4).Run(cells);
  for (size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(serial[i].ok) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
    ExpectIdentical(serial[i].value, parallel[i].value);
  }
  std::string json = SweepReportJson("t", 1, cells, serial);
  EXPECT_EQ(json, SweepReportJson("t", 1, cells, parallel));
  EXPECT_NE(json.find("\"aging\": \"gen_clock\""), std::string::npos);
}

TEST(SweepAxes, EmptyAgingAxisKeepsCellCountAndOmitsLabel) {
  // Pre-gen-clock grids must enumerate exactly as before: no agings axis
  // means one block of cells with the base (default) policy, and the report
  // never mentions aging (byte-compat with archived sweep artifacts).
  std::vector<SweepCell> cells = TestCells();
  EXPECT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.config.aging, "two_list");
  }
  std::vector<CellOutcome> outcomes(cells.size());
  for (auto& o : outcomes) {
    o.ok = true;
  }
  EXPECT_EQ(SweepReportJson("t", 1, cells, outcomes).find("\"aging\""),
            std::string::npos);
}

TEST(SweepRunner, OrderingIndependentOfJobs) {
  // Later indices finish first (decreasing sleep), so any runner that
  // returned results in completion order would invert the ordering.
  auto fn = [](size_t i) -> size_t {
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * (8 - i)));
    return i * 100;
  };
  for (int jobs : {1, 3, 8}) {
    auto out = SweepRunner(jobs).Map<size_t>(8, fn);
    ASSERT_EQ(out.size(), 8u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(out[i].ok);
      EXPECT_EQ(out[i].value, i * 100) << "jobs=" << jobs;
    }
  }
}

TEST(SweepRunner, ThrowingCellDoesNotPoisonSiblings) {
  auto fn = [](size_t i) -> int {
    if (i == 2) {
      throw std::runtime_error("cell 2 exploded");
    }
    return static_cast<int>(i) + 1;
  };
  auto out = SweepRunner(4).Map<int>(5, fn);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 0; i < out.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(out[i].ok);
      EXPECT_EQ(out[i].error, "cell 2 exploded");
    } else {
      ASSERT_TRUE(out[i].ok);
      EXPECT_EQ(out[i].value, static_cast<int>(i) + 1);
    }
  }
}

TEST(SweepAxes, CellsMatchIndex) {
  SweepAxes axes;
  axes.devices = {Pixel3Profile(), P20Profile()};
  axes.schemes = {"lru_cfs", "ice"};
  axes.scenarios = {ScenarioKind::kVideoCall, ScenarioKind::kGame};
  axes.bg_counts = {0, 4};
  axes.seeds = {1, 2, 3};
  std::vector<SweepCell> cells = axes.Cells();
  ASSERT_EQ(cells.size(), axes.size());
  for (size_t d = 0; d < axes.devices.size(); ++d) {
    for (size_t s = 0; s < axes.schemes.size(); ++s) {
      for (size_t c = 0; c < axes.scenarios.size(); ++c) {
        for (size_t b = 0; b < axes.bg_counts.size(); ++b) {
          for (size_t r = 0; r < axes.seeds.size(); ++r) {
            const SweepCell& cell = cells[axes.Index(d, s, c, b, r)];
            EXPECT_EQ(cell.config.device.name, axes.devices[d].name);
            EXPECT_EQ(cell.config.scheme, axes.schemes[s]);
            EXPECT_EQ(cell.scenario, axes.scenarios[c]);
            EXPECT_EQ(cell.bg_apps, axes.bg_counts[b]);
            EXPECT_EQ(cell.config.seed, axes.seeds[r]);
          }
        }
      }
    }
  }
}

TEST(SweepReport, JsonCarriesGridAndMetrics) {
  SweepAxes axes;
  axes.devices = {Pixel3Profile()};
  axes.schemes = {"ice"};
  axes.scenarios = {ScenarioKind::kGame};
  axes.bg_counts = {3};
  axes.seeds = {9};
  std::vector<SweepCell> cells = axes.Cells();
  std::vector<CellOutcome> outcomes(2);
  outcomes[0].ok = true;
  outcomes[0].value.avg_fps = 42.5;
  outcomes[0].value.refaults = 17;
  outcomes[0].value.fps_series = {41.0, 44.0};
  // A failed sibling cell appears with its error, not fabricated metrics.
  cells.push_back(cells[0]);
  outcomes[1].error = "boom \"quoted\"";
  std::string json = SweepReportJson("unit", 4, cells, outcomes);
  EXPECT_NE(json.find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"device\": \"Pixel3\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"ice\""), std::string::npos);
  EXPECT_NE(json.find("\"bg_apps\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"avg_fps\": 42.5"), std::string::npos);
  EXPECT_NE(json.find("\"refaults\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"fps_series\": [41, 44]"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"boom \\\"quoted\\\"\""), std::string::npos);
}

}  // namespace
}  // namespace ice
