// Harness-level API coverage: construction across devices/schemes, catalog
// install, caching helpers, scenario window accounting.
#include "src/harness/experiment.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

class SchemeSweep
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(SchemeSweep, BuildsAndRunsShortScenario) {
  auto [device_name, scheme] = GetParam();
  ExperimentConfig config;
  config.device = std::string(device_name) == "pixel3" ? Pixel3Profile() : P20Profile();
  config.scheme = scheme;
  config.seed = 23;
  Experiment exp(config);
  EXPECT_EQ(exp.scheme().name().empty(), false);
  EXPECT_EQ(exp.catalog().size(), 20u);
  ScenarioResult r = exp.RunScenario(ScenarioKind::kScrolling, Sec(5), Sec(5));
  EXPECT_GT(r.avg_fps, 10.0);
  EXPECT_LE(r.avg_fps, 61.0);
  EXPECT_GE(r.cpu_util, 0.0);
  EXPECT_LE(r.cpu_util, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeSweep,
    ::testing::Combine(::testing::Values("pixel3", "p20"),
                       ::testing::Values("lru_cfs", "ucsg", "acclaim", "power", "ice")));

TEST(Experiment, UidOfResolvesEveryCatalogApp) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  for (const CatalogApp& app : exp.catalog()) {
    Uid uid = exp.UidOf(app.descriptor.package);
    App* found = exp.am().FindApp(uid);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->package(), app.descriptor.package);
  }
}

TEST(Experiment, CacheBackgroundAppsRespectsExclusions) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  Uid excluded = exp.UidOf("TikTok");
  std::vector<Uid> cached = exp.CacheBackgroundApps(4, {excluded});
  EXPECT_EQ(cached.size(), 4u);
  for (Uid uid : cached) {
    EXPECT_NE(uid, excluded);
    App* app = exp.am().FindApp(uid);
    ASSERT_NE(app, nullptr);
    EXPECT_TRUE(app->running());
    EXPECT_NE(app->state(), AppState::kForeground);
  }
  EXPECT_EQ(exp.am().foreground_app(), nullptr);
}

TEST(Experiment, ScenarioWindowExcludesWarmup) {
  ExperimentConfig config;
  config.seed = 3;
  Experiment exp(config);
  ScenarioResult r = exp.RunScenario(ScenarioKind::kVideoCall, Sec(10), Sec(5));
  // The FPS series covers only the measurement window.
  EXPECT_EQ(r.fps_series.size(), 10u);
}

TEST(Experiment, ExtendedCatalogGrowsTo40) {
  ExperimentConfig config;
  config.seed = 3;
  config.extended_catalog = true;
  Experiment exp(config);
  EXPECT_EQ(exp.catalog().size(), 40u);
  EXPECT_EQ(exp.CatalogUids().size(), 40u);
}

TEST(Experiment, DeviceFootprintScaleApplied) {
  ExperimentConfig p20_config;
  p20_config.seed = 3;
  p20_config.device = P20Profile();
  Experiment p20(p20_config);

  ExperimentConfig px_config;
  px_config.seed = 3;
  px_config.device = Pixel3Profile();
  Experiment pixel3(px_config);

  // Pixel3 apps are configured leaner (footprint_scale < P20's).
  const CatalogApp* a = FindInCatalog(p20.catalog(), "Twitter");
  const CatalogApp* b = FindInCatalog(pixel3.catalog(), "Twitter");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->descriptor.native_pages, b->descriptor.native_pages);
}

TEST(Experiment, IceHwmDefaultsFromDevice) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.device = Pixel3Profile();
  Experiment exp(config);
  auto* daemon = static_cast<IceDaemon*>(&exp.scheme());
  EXPECT_EQ(daemon->config().hwm_mib, Pixel3Profile().mdt_hwm_mib);
}

}  // namespace
}  // namespace ice
