#include "src/proc/scheduler.h"

#include <gtest/gtest.h>

#include "src/proc/behavior.h"
#include "src/proc/process.h"
#include "src/proc/task.h"

namespace ice {
namespace {

struct SpinBehavior : Behavior {
  void Run(TaskContext& ctx) override {
    while (ctx.Compute(Us(100))) {
    }
  }
};

// Overruns its budget by a fixed amount once (a non-preemptive section).
struct OverrunOnceBehavior : Behavior {
  void Run(TaskContext& ctx) override {
    if (!done) {
      done = true;
      ctx.Compute(Ms(5));  // 5x the quantum.
      return;
    }
    ctx.SleepUntilWoken();
  }
  bool done = false;
};

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : mm_(engine_, MemConfig{}, nullptr), sched_(engine_, mm_, 2) {}

  Engine engine_{1};
  MemoryManager mm_;
  Scheduler sched_;
};

TEST_F(SchedulerTest, CapacityTracksCoresAndTime) {
  engine_.RunFor(Ms(10));
  EXPECT_EQ(sched_.capacity_us(), 2u * Ms(10));
  EXPECT_EQ(sched_.busy_us(), 0u);
  EXPECT_DOUBLE_EQ(sched_.utilization(), 0.0);
}

TEST_F(SchedulerTest, SingleSpinnerSaturatesOneCore) {
  sched_.CreateTask("spin", nullptr, 0, std::make_unique<SpinBehavior>());
  engine_.RunFor(Ms(100));
  EXPECT_NEAR(sched_.utilization(), 0.5, 0.02);
}

TEST_F(SchedulerTest, MoreSpinnersThanCoresShareFairly) {
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(
        sched_.CreateTask("spin" + std::to_string(i), nullptr, 0,
                          std::make_unique<SpinBehavior>()));
  }
  engine_.RunFor(Ms(400));
  EXPECT_NEAR(sched_.utilization(), 1.0, 0.01);
  // Each of 4 tasks gets ~half a core.
  for (Task* t : tasks) {
    EXPECT_NEAR(static_cast<double>(t->cpu_time_us()), Ms(200), Ms(24));
  }
}

TEST_F(SchedulerTest, WeightsBiasCpuShares) {
  Task* heavy = sched_.CreateTask("heavy", nullptr, -5, std::make_unique<SpinBehavior>());
  Task* light1 = sched_.CreateTask("l1", nullptr, 5, std::make_unique<SpinBehavior>());
  Task* light2 = sched_.CreateTask("l2", nullptr, 5, std::make_unique<SpinBehavior>());
  Task* light3 = sched_.CreateTask("l3", nullptr, 5, std::make_unique<SpinBehavior>());
  engine_.RunFor(Ms(500));
  // weight(-5)=3121 vs weight(5)=335: the heavy task runs every quantum
  // (saturating a core) while the three light tasks share the other core.
  EXPECT_GT(heavy->cpu_time_us(), Ms(480));
  EXPECT_GT(heavy->cpu_time_us(), light1->cpu_time_us() * 5 / 2);
  EXPECT_GT(heavy->cpu_time_us(), light2->cpu_time_us() * 5 / 2);
  EXPECT_GT(heavy->cpu_time_us(), light3->cpu_time_us() * 5 / 2);
}

TEST_F(SchedulerTest, OverrunCreatesDebtAndOccupiesCore) {
  auto behavior = std::make_unique<OverrunOnceBehavior>();
  Task* t = sched_.CreateTask("overrun", nullptr, 0, std::move(behavior));
  engine_.RunFor(Ms(2));
  // The 5 ms section was charged fully at the first quantum.
  EXPECT_EQ(t->cpu_time_us(), Ms(5));
  EXPECT_GT(t->debt_us(), 0u);
  engine_.RunFor(Ms(10));
  EXPECT_EQ(t->debt_us(), 0u);
  // The core was busy repaying the debt: total busy ≈ 5 ms.
  EXPECT_NEAR(static_cast<double>(sched_.busy_us()), Ms(5), Ms(1));
}

TEST_F(SchedulerTest, PerSecondUtilizationSampled) {
  sched_.CreateTask("spin", nullptr, 0, std::make_unique<SpinBehavior>());
  engine_.RunFor(Sec(3));
  ASSERT_GE(sched_.utilization_per_second().size(), 3u);
  for (double u : sched_.utilization_per_second()) {
    EXPECT_NEAR(u, 0.5, 0.02);
  }
}

TEST_F(SchedulerTest, WokenTaskGetsFairnessFloor) {
  struct NapThenSpin : Behavior {
    void Run(TaskContext& ctx) override {
      if (!napped) {
        napped = true;
        ctx.SleepFor(Ms(200));
        return;
      }
      while (ctx.Compute(Us(100))) {
      }
    }
    bool napped = false;
  };
  sched_.CreateTask("spin1", nullptr, 0, std::make_unique<SpinBehavior>());
  sched_.CreateTask("spin2", nullptr, 0, std::make_unique<SpinBehavior>());
  Task* sleeper = sched_.CreateTask("sleeper", nullptr, 0, std::make_unique<NapThenSpin>());
  engine_.RunFor(Ms(500));
  // The sleeper must not monopolize the CPU after waking despite its low
  // vruntime accrued while asleep.
  EXPECT_LT(sleeper->cpu_time_us(), Ms(400));
  EXPECT_GT(sleeper->cpu_time_us(), Ms(100));
}

TEST_F(SchedulerTest, CreateTaskAttachesToProcess) {
  AddressSpaceLayout layout;
  layout.native_pages = 10;
  Process process(42, nullptr, "proc", layout);
  Task* t = sched_.CreateTask("t", &process, 0, std::make_unique<SpinBehavior>());
  ASSERT_EQ(process.tasks().size(), 1u);
  EXPECT_EQ(process.tasks()[0], t);
  EXPECT_EQ(t->process(), &process);
  EXPECT_FALSE(t->is_kernel());
}

}  // namespace
}  // namespace ice
