#include "src/proc/task.h"

#include <gtest/gtest.h>

#include "src/proc/behavior.h"
#include "src/proc/scheduler.h"

namespace ice {
namespace {

struct IdleBehavior : Behavior {
  void Run(TaskContext& ctx) override { ctx.SleepUntilWoken(); }
};

struct SpinBehavior : Behavior {
  void Run(TaskContext& ctx) override {
    while (ctx.Compute(Us(100))) {
    }
  }
};

class TaskTest : public ::testing::Test {
 protected:
  TaskTest() : mm_(engine_, MemConfig{}, nullptr), sched_(engine_, mm_, 2) {}

  Engine engine_{1};
  MemoryManager mm_;
  Scheduler sched_;
};

TEST_F(TaskTest, NiceToWeightTable) {
  EXPECT_EQ(NiceToWeight(0), 1024);
  EXPECT_EQ(NiceToWeight(-20), 88761);
  EXPECT_EQ(NiceToWeight(19), 15);
  EXPECT_EQ(NiceToWeight(-100), 88761);  // Clamped.
  EXPECT_EQ(NiceToWeight(100), 15);      // Clamped.
}

TEST_F(TaskTest, StartsRunnable) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  EXPECT_EQ(t->state(), TaskState::kRunnable);
  EXPECT_EQ(sched_.runnable_count(), 1u);
}

TEST_F(TaskTest, IdleTaskSleepsAfterFirstQuantum) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  engine_.RunFor(Ms(2));
  EXPECT_EQ(t->state(), TaskState::kSleeping);
  EXPECT_EQ(sched_.runnable_count(), 0u);
}

TEST_F(TaskTest, WakeMakesSleepingRunnable) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  engine_.RunFor(Ms(2));
  t->Wake();
  EXPECT_EQ(t->state(), TaskState::kRunnable);
}

TEST_F(TaskTest, SleepForWakesByTimer) {
  struct NapBehavior : Behavior {
    void Run(TaskContext& ctx) override {
      ++runs;
      ctx.SleepFor(Ms(5));
    }
    int runs = 0;
  };
  auto behavior = std::make_unique<NapBehavior>();
  NapBehavior* nap = behavior.get();
  sched_.CreateTask("t", nullptr, 0, std::move(behavior));
  engine_.RunFor(Ms(2));
  EXPECT_EQ(nap->runs, 1);
  engine_.RunFor(Ms(10));
  EXPECT_GE(nap->runs, 2);
}

TEST_F(TaskTest, FreezeRunnableTaskImmediately) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  t->RequestFreeze();
  EXPECT_TRUE(t->frozen());
  EXPECT_EQ(sched_.runnable_count(), 0u);
}

TEST_F(TaskTest, FrozenTaskDoesNotRun) {
  auto behavior = std::make_unique<SpinBehavior>();
  Task* t = sched_.CreateTask("t", nullptr, 0, std::move(behavior));
  t->RequestFreeze();
  uint64_t cpu_before = t->cpu_time_us();
  engine_.RunFor(Ms(10));
  EXPECT_EQ(t->cpu_time_us(), cpu_before);
}

TEST_F(TaskTest, ThawRestoresRunnable) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<SpinBehavior>());
  t->RequestFreeze();
  t->ThawNow();
  EXPECT_EQ(t->state(), TaskState::kRunnable);
  engine_.RunFor(Ms(5));
  EXPECT_GT(t->cpu_time_us(), 0u);
}

TEST_F(TaskTest, FreezeSleepingTask) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  engine_.RunFor(Ms(2));
  ASSERT_EQ(t->state(), TaskState::kSleeping);
  t->RequestFreeze();
  EXPECT_TRUE(t->frozen());
  // A wake while frozen is remembered but does not unfreeze.
  t->Wake();
  EXPECT_TRUE(t->frozen());
  t->ThawNow();
  EXPECT_EQ(t->state(), TaskState::kRunnable);
}

TEST_F(TaskTest, FreezeWhileOnCpuDefersToQuantumEnd) {
  struct SelfFreezeBehavior : Behavior {
    void Run(TaskContext& ctx) override {
      ctx.task().RequestFreeze();  // Freeze request from "interrupt context".
      observed_pending = ctx.task().freeze_pending();
      ctx.Compute(Us(100));
    }
    bool observed_pending = false;
  };
  auto behavior = std::make_unique<SelfFreezeBehavior>();
  SelfFreezeBehavior* b = behavior.get();
  Task* t = sched_.CreateTask("t", nullptr, 0, std::move(behavior));
  engine_.RunFor(Ms(2));
  EXPECT_TRUE(b->observed_pending);
  EXPECT_TRUE(t->frozen());  // Committed at quantum end.
}

TEST_F(TaskTest, DeadTaskLeavesQueues) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<SpinBehavior>());
  EXPECT_EQ(sched_.live_tasks().size(), 1u);
  t->MarkDead();
  EXPECT_EQ(t->state(), TaskState::kDead);
  EXPECT_EQ(sched_.runnable_count(), 0u);
  EXPECT_TRUE(sched_.live_tasks().empty());
  // Waking a dead task is a no-op.
  t->Wake();
  EXPECT_EQ(t->state(), TaskState::kDead);
}

TEST_F(TaskTest, SetNiceChangesWeight) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  EXPECT_EQ(t->weight(), 1024);
  t->set_nice(-10);
  EXPECT_EQ(t->weight(), 9548);
}

TEST_F(TaskTest, DebtAccounting) {
  Task* t = sched_.CreateTask("t", nullptr, 0, std::make_unique<IdleBehavior>());
  t->AddDebt(Us(2500));
  EXPECT_EQ(t->debt_us(), Us(2500));
  t->PayDebt(Us(1000));
  EXPECT_EQ(t->debt_us(), Us(1500));
  t->PayDebt(Us(5000));
  EXPECT_EQ(t->debt_us(), 0u);
}

}  // namespace
}  // namespace ice
