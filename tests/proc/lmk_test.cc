#include "src/proc/lmk.h"

#include <gtest/gtest.h>

#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);  // low=100, min=80.
  config.zram.capacity_bytes = 0;         // Nothing reclaimable to zram.
  config.reclaim_contention_mean = 0;
  return config;
}

TEST(Lmk, OomHandlerKills) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  Lmk lmk(engine, mm);
  lmk.InstallOomHandler();

  int kills = 0;
  AddressSpaceLayout layout;
  layout.native_pages = 1900;
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);
  lmk.set_kill_fn([&] {
    ++kills;
    return true;  // "Killed" something; pressure relief comes separately.
  });
  for (uint32_t vpn = 0; vpn < 1790; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  EXPECT_GT(kills, 0);
  EXPECT_GT(lmk.kills(), 0u);
  mm.Release(space);
}

TEST(Lmk, PeriodicCheckFiresUnderSustainedPressure) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  Lmk lmk(engine, mm);

  AddressSpaceLayout layout;
  layout.native_pages = 1900;
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);
  int kills = 0;
  lmk.set_kill_fn([&] {
    ++kills;
    return true;
  });
  for (uint32_t vpn = 0; vpn < 1725; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  ASSERT_LE(mm.free_pages(), static_cast<int64_t>(mm.watermarks().min));
  engine.RunFor(Sec(2));
  EXPECT_GT(kills, 0);
  mm.Release(space);
}

TEST(Lmk, KillsAreThrottled) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  Lmk lmk(engine, mm);

  AddressSpaceLayout layout;
  layout.native_pages = 1900;
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);
  int kills = 0;
  lmk.set_kill_fn([&] {
    ++kills;
    return true;  // Claims success but frees nothing: pressure persists.
  });
  for (uint32_t vpn = 0; vpn < 1725; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  engine.RunFor(Sec(2));
  // At most ~4 kills in 2 s with the 500 ms throttle.
  EXPECT_LE(kills, 5);
  EXPECT_GE(kills, 2);
  mm.Release(space);
}

TEST(Lmk, NoKillsWithoutPressure) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, TinyConfig(), &storage);
  Lmk lmk(engine, mm);
  int kills = 0;
  lmk.set_kill_fn([&] {
    ++kills;
    return true;
  });
  engine.RunFor(Sec(2));
  EXPECT_EQ(kills, 0);
}

}  // namespace
}  // namespace ice
