#include "src/proc/behavior.h"

#include <gtest/gtest.h>

#include "src/proc/scheduler.h"
#include "src/proc/task.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 4000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.reclaim_contention_mean = 0;
  return config;
}

AddressSpaceLayout Layout(PageCount n) {
  AddressSpaceLayout layout;
  layout.native_pages = n / 2;
  layout.file_pages = n / 2;
  return layout;
}

class BehaviorTest : public ::testing::Test {
 protected:
  BehaviorTest()
      : storage_(engine_, Ufs21Profile()),
        mm_(engine_, TinyConfig(), &storage_),
        sched_(engine_, mm_, 4) {}

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
  Scheduler sched_;
};

TEST_F(BehaviorTest, WorkQueueCompletesItemsInOrder) {
  auto wq = std::make_unique<WorkQueueBehavior>();
  WorkQueueBehavior* q = wq.get();
  Task* t = sched_.CreateTask("wq", nullptr, 0, std::move(wq));
  q->BindTask(t);

  std::vector<int> completed;
  for (int i = 0; i < 3; ++i) {
    WorkItem item;
    item.compute_us = Ms(2);
    item.on_complete = [&completed, i] { completed.push_back(i); };
    q->Push(std::move(item));
  }
  engine_.RunFor(Ms(20));
  EXPECT_EQ(completed, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q->completed(), 3u);
  EXPECT_EQ(q->pending(), 0u);
}

TEST_F(BehaviorTest, WorkQueueComputeTakesProportionalTime) {
  auto wq = std::make_unique<WorkQueueBehavior>();
  WorkQueueBehavior* q = wq.get();
  Task* t = sched_.CreateTask("wq", nullptr, 0, std::move(wq));
  q->BindTask(t);

  SimTime done_at = 0;
  WorkItem item;
  item.compute_us = Ms(10);
  item.on_complete = [&] { done_at = engine_.now(); };
  q->Push(std::move(item));
  engine_.RunFor(Ms(30));
  EXPECT_GE(done_at, Ms(9));
  EXPECT_LE(done_at, Ms(13));
}

TEST_F(BehaviorTest, WorkQueueWakesSleepingTaskOnPush) {
  auto wq = std::make_unique<WorkQueueBehavior>();
  WorkQueueBehavior* q = wq.get();
  Task* t = sched_.CreateTask("wq", nullptr, 0, std::move(wq));
  q->BindTask(t);
  engine_.RunFor(Ms(3));
  ASSERT_EQ(t->state(), TaskState::kSleeping);

  bool done = false;
  WorkItem item;
  item.compute_us = Us(100);
  item.on_complete = [&] { done = true; };
  q->Push(std::move(item));
  EXPECT_EQ(t->state(), TaskState::kRunnable);
  engine_.RunFor(Ms(3));
  EXPECT_TRUE(done);
}

TEST_F(BehaviorTest, WorkQueueTouchesFaultAndBlock) {
  AddressSpace space(1, 1, "a", Layout(200));
  mm_.Register(space);
  // Fault in + evict a file page so the touch must block on flash.
  uint32_t file_vpn = space.file_begin();
  mm_.Access(space, file_vpn, false, nullptr);
  mm_.ReclaimAllOf(space);
  ASSERT_EQ(space.page(file_vpn).state(), PageState::kOnFlash);

  auto wq = std::make_unique<WorkQueueBehavior>();
  WorkQueueBehavior* q = wq.get();
  Task* t = sched_.CreateTask("wq", nullptr, 0, std::move(wq));
  q->BindTask(t);

  bool done = false;
  WorkItem item;
  item.space = &space;
  item.touch_vpns = {file_vpn};
  item.compute_us = Us(50);
  item.on_complete = [&] { done = true; };
  q->Push(std::move(item));

  engine_.RunFor(Ms(2));
  // The task must have blocked on the flash read at least briefly.
  engine_.RunFor(Ms(50));
  EXPECT_TRUE(done);
  EXPECT_EQ(space.page(file_vpn).state(), PageState::kPresent);
  mm_.Release(space);
}

TEST_F(BehaviorTest, KswapdSleepsUntilWokenAndReclaims) {
  Task* kswapd = sched_.CreateTask("kswapd0", nullptr, 0, std::make_unique<KswapdBehavior>());
  mm_.set_kswapd_waker([kswapd] { kswapd->Wake(); });
  engine_.RunFor(Ms(5));
  EXPECT_EQ(kswapd->state(), TaskState::kSleeping);

  AddressSpace space(1, 1, "a", Layout(3800));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 3720; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  // free is now 80 <= low: kswapd woken by the mm.
  EXPECT_EQ(kswapd->state(), TaskState::kRunnable);
  engine_.RunFor(Sec(1));
  EXPECT_GE(mm_.free_pages(), static_cast<int64_t>(mm_.watermarks().high));
  EXPECT_EQ(kswapd->state(), TaskState::kSleeping);
  EXPECT_GT(kswapd->cpu_time_us(), 0u);
  mm_.Release(space);
}

TEST_F(BehaviorTest, PeriodicLoadApproximatesDutyCycle) {
  PeriodicLoadBehavior::Params params;
  params.period = Ms(10);
  params.compute_us = Ms(3);
  params.jitter = 0.0;
  Task* t = sched_.CreateTask("periodic", nullptr, 0,
                              std::make_unique<PeriodicLoadBehavior>(params));
  engine_.RunFor(Sec(2));
  double duty = static_cast<double>(t->cpu_time_us()) / Sec(2);
  EXPECT_NEAR(duty, 0.3, 0.05);
}

TEST_F(BehaviorTest, ContextReportsBudget) {
  struct Probe : Behavior {
    void Run(TaskContext& ctx) override {
      budget = ctx.budget();
      ctx.Compute(Us(10));
      used_after = ctx.used();
      ctx.SleepUntilWoken();
    }
    SimDuration budget = 0;
    SimDuration used_after = 0;
  };
  auto behavior = std::make_unique<Probe>();
  Probe* probe = behavior.get();
  sched_.CreateTask("probe", nullptr, 0, std::move(behavior));
  engine_.RunFor(Ms(2));
  EXPECT_EQ(probe->budget, Engine::kTick);
  EXPECT_EQ(probe->used_after, Us(10));
}

}  // namespace
}  // namespace ice
