#include "src/proc/freezer.h"

#include <gtest/gtest.h>

#include "src/proc/behavior.h"
#include "src/proc/process.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace ice {
namespace {

struct SpinBehavior : Behavior {
  void Run(TaskContext& ctx) override {
    while (ctx.Compute(Us(100))) {
    }
  }
};

class FreezerTest : public ::testing::Test {
 protected:
  FreezerTest()
      : mm_(engine_, MemConfig{}, nullptr),
        sched_(engine_, mm_, 4),
        freezer_(engine_),
        app_(10001, "com.test"),
        main_proc_(100, &app_, "main", Layout()),
        svc_proc_(101, &app_, "svc", Layout()) {
    app_.AddProcess(&main_proc_);
    app_.AddProcess(&svc_proc_);
    t1_ = sched_.CreateTask("t1", &main_proc_, 0, std::make_unique<SpinBehavior>());
    t2_ = sched_.CreateTask("t2", &main_proc_, 0, std::make_unique<SpinBehavior>());
    t3_ = sched_.CreateTask("t3", &svc_proc_, 0, std::make_unique<SpinBehavior>());
  }

  static AddressSpaceLayout Layout() {
    AddressSpaceLayout layout;
    layout.native_pages = 16;
    return layout;
  }

  Engine engine_{1};
  MemoryManager mm_;
  Scheduler sched_;
  Freezer freezer_;
  App app_;
  Process main_proc_;
  Process svc_proc_;
  Task* t1_;
  Task* t2_;
  Task* t3_;
};

TEST_F(FreezerTest, FreezesEveryTaskOfEveryProcess) {
  freezer_.FreezeApp(app_);
  EXPECT_TRUE(app_.frozen());
  EXPECT_TRUE(t1_->frozen());
  EXPECT_TRUE(t2_->frozen());
  EXPECT_TRUE(t3_->frozen());
  EXPECT_EQ(freezer_.freeze_count(), 1u);
  EXPECT_EQ(engine_.stats().Get(stat::kFreezes), 1u);
}

TEST_F(FreezerTest, FrozenAppConsumesNoCpu) {
  engine_.RunFor(Ms(5));
  uint64_t cpu_before = app_.cpu_time_us;
  EXPECT_GT(cpu_before, 0u);
  freezer_.FreezeApp(app_);
  engine_.RunFor(Ms(20));
  EXPECT_EQ(app_.cpu_time_us, cpu_before);
}

TEST_F(FreezerTest, ThawRestoresExecution) {
  freezer_.FreezeApp(app_);
  freezer_.ThawApp(app_);
  EXPECT_FALSE(app_.frozen());
  EXPECT_EQ(freezer_.thaw_count(), 1u);
  engine_.RunFor(Ms(5));
  EXPECT_GT(app_.cpu_time_us, 0u);
}

TEST_F(FreezerTest, FreezeIsIdempotent) {
  freezer_.FreezeApp(app_);
  freezer_.FreezeApp(app_);
  EXPECT_EQ(freezer_.freeze_count(), 1u);
  freezer_.ThawApp(app_);
  freezer_.ThawApp(app_);
  EXPECT_EQ(freezer_.thaw_count(), 1u);
}

TEST_F(FreezerTest, RefreezeAfterThawCounts) {
  freezer_.FreezeApp(app_);
  freezer_.ThawApp(app_);
  freezer_.FreezeApp(app_);
  EXPECT_EQ(freezer_.freeze_count(), 2u);
  EXPECT_TRUE(app_.frozen());
}

}  // namespace
}  // namespace ice
