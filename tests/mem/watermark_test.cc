#include "src/mem/watermark.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

TEST(Watermarks, PaperRatios) {
  // Footnote to Table 4: low = 5/6 high, min = 2/3 high.
  Watermarks wm = Watermarks::FromHigh(600);
  EXPECT_EQ(wm.high, 600u);
  EXPECT_EQ(wm.low, 500u);
  EXPECT_EQ(wm.min, 400u);
}

TEST(Watermarks, KswapdTriggers) {
  Watermarks wm = Watermarks::FromHigh(600);
  EXPECT_FALSE(wm.NeedsKswapd(500));  // At low: ok.
  EXPECT_TRUE(wm.NeedsKswapd(499));
  EXPECT_TRUE(wm.KswapdDone(600));
  EXPECT_FALSE(wm.KswapdDone(599));
}

TEST(Watermarks, DirectReclaimTriggers) {
  Watermarks wm = Watermarks::FromHigh(600);
  EXPECT_FALSE(wm.NeedsDirectReclaim(401));
  EXPECT_TRUE(wm.NeedsDirectReclaim(400));
  EXPECT_TRUE(wm.NeedsDirectReclaim(0));
}

TEST(Watermarks, OrderingInvariant) {
  for (PageCount high : {6u, 60u, 600u, 65536u}) {
    Watermarks wm = Watermarks::FromHigh(high);
    EXPECT_LE(wm.min, wm.low);
    EXPECT_LE(wm.low, wm.high);
  }
}

}  // namespace
}  // namespace ice
