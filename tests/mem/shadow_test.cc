#include "src/mem/shadow.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/address_space.h"

namespace ice {
namespace {

AddressSpaceLayout SmallLayout() {
  AddressSpaceLayout layout;
  layout.java_pages = 4;
  layout.native_pages = 4;
  layout.file_pages = 4;
  return layout;
}

class Recorder : public RefaultListener {
 public:
  void OnRefault(const RefaultEvent& event) override { events.push_back(event); }
  std::vector<RefaultEvent> events;
};

TEST(Shadow, EvictionStampsCookie) {
  ShadowRegistry shadow;
  AddressSpace space(10, 100, "t", SmallLayout());
  PageInfo* p = &space.page(0);
  EXPECT_EQ(p->evict_cookie, 0u);
  shadow.RecordEviction(p);
  EXPECT_EQ(p->evict_cookie, 1u);
  EXPECT_EQ(shadow.eviction_sequence(), 1u);
}

TEST(Shadow, RefaultDistance) {
  ShadowRegistry shadow;
  AddressSpace space(10, 100, "t", SmallLayout());
  PageInfo* a = &space.page(0);
  PageInfo* b = &space.page(1);
  shadow.RecordEviction(a);  // seq 1
  shadow.RecordEviction(b);  // seq 2
  shadow.RecordEviction(&space.page(2));  // seq 3
  RefaultEvent ev = shadow.RecordRefault(a, space, Us(500), false);
  // Two pages were evicted after `a`.
  EXPECT_EQ(ev.distance, 2u);
  EXPECT_EQ(ev.pid, 10);
  EXPECT_EQ(ev.uid, 100);
  EXPECT_EQ(ev.time, Us(500));
  EXPECT_EQ(a->evict_cookie, 0u);  // Cleared after refault.
}

TEST(Shadow, ListenersNotified) {
  ShadowRegistry shadow;
  Recorder recorder;
  shadow.AddListener(&recorder);
  AddressSpace space(10, 100, "t", SmallLayout());
  PageInfo* p = &space.page(5);  // Native heap region.
  shadow.RecordEviction(p);
  shadow.RecordRefault(p, space, Us(1), true);
  ASSERT_EQ(recorder.events.size(), 1u);
  EXPECT_TRUE(recorder.events[0].foreground);
  EXPECT_EQ(recorder.events[0].kind, HeapKind::kNativeHeap);
  shadow.RemoveListener(&recorder);
  shadow.RecordEviction(p);
  shadow.RecordRefault(p, space, Us(2), false);
  EXPECT_EQ(recorder.events.size(), 1u);
}

TEST(Shadow, RefaultCountAccumulates) {
  ShadowRegistry shadow;
  AddressSpace space(10, 100, "t", SmallLayout());
  for (uint32_t i = 0; i < 4; ++i) {
    shadow.RecordEviction(&space.page(i));
    shadow.RecordRefault(&space.page(i), space, Us(i), false);
  }
  EXPECT_EQ(shadow.refault_count(), 4u);
}

TEST(Shadow, KindClassification) {
  ShadowRegistry shadow;
  Recorder recorder;
  shadow.AddListener(&recorder);
  AddressSpace space(10, 100, "t", SmallLayout());
  PageInfo* java = &space.page(0);
  PageInfo* file = &space.page(9);
  shadow.RecordEviction(java);
  shadow.RecordEviction(file);
  shadow.RecordRefault(java, space, Us(1), false);
  shadow.RecordRefault(file, space, Us(2), false);
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_EQ(recorder.events[0].kind, HeapKind::kJavaHeap);
  EXPECT_EQ(recorder.events[1].kind, HeapKind::kFile);
  shadow.RemoveListener(&recorder);
}

}  // namespace
}  // namespace ice
