// Reclaim-specific behavior: proportional per-space pressure, victim
// filtering (the Acclaim hook), zram-full fallback to file, writeback I/O,
// kswapd-vs-direct attribution and cursor fairness.
#include <gtest/gtest.h>

#include "src/mem/memory_manager.h"
#include "src/storage/flash_profiles.h"
#include "src/trace/tracer.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.zram.capacity_bytes = 8 * kMiB;
  config.reclaim_contention_mean = 0;
  return config;
}

AddressSpaceLayout Layout(PageCount java, PageCount native, PageCount file) {
  AddressSpaceLayout layout;
  layout.java_pages = java;
  layout.native_pages = native;
  layout.file_pages = file;
  return layout;
}

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest() : storage_(engine_, Ufs21Profile()), mm_(engine_, TinyConfig(), &storage_) {}

  void TouchAll(AddressSpace& space, uint32_t count) {
    for (uint32_t vpn = 0; vpn < count; ++vpn) {
      mm_.Access(space, vpn, false, nullptr);
    }
  }

  void DrainKswapd() {
    int guard = 0;
    while (mm_.KswapdShouldRun() && guard++ < 500) {
      if (mm_.KswapdBatch().reclaimed == 0) {
        break;
      }
    }
  }

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
};

TEST_F(ReclaimTest, PressureIsProportionalAcrossSpaces) {
  // Two idle spaces of very different sizes: the bigger one should donate
  // proportionally more.
  AddressSpace big(1, 1, "big", Layout(600, 600, 0));
  AddressSpace small(2, 2, "small", Layout(150, 150, 0));
  mm_.Register(big);
  mm_.Register(small);
  TouchAll(big, 1200);
  TouchAll(small, 300);  // free = 300, below low (100)? 1800-1500=300: above.
  // Force reclaim directly.
  int64_t freed_target = 200;
  int64_t before = mm_.free_pages();
  while (mm_.free_pages() < before + freed_target) {
    if (mm_.KswapdBatch().reclaimed == 0) {
      break;
    }
  }
  EXPECT_GT(big.total_evictions, small.total_evictions * 2);
  EXPECT_GT(small.total_evictions, 0u);
  mm_.Release(big);
  mm_.Release(small);
}

TEST_F(ReclaimTest, VictimFilterProtectsForeground) {
  AddressSpace fg(1, 100, "fg", Layout(400, 400, 0));
  AddressSpace bg(2, 200, "bg", Layout(400, 400, 0));
  mm_.Register(fg);
  mm_.Register(bg);
  mm_.set_foreground_uid(100);
  // Acclaim's FAE: skip foreground-owned pages.
  mm_.set_victim_filter([this](const AddressSpace& space, const PageInfo&) {
    return space.uid() == mm_.foreground_uid();
  });
  TouchAll(fg, 800);
  TouchAll(bg, 800);
  for (int i = 0; i < 50; ++i) {
    mm_.KswapdBatch();
  }
  EXPECT_EQ(fg.total_evictions, 0u);
  EXPECT_GT(bg.total_evictions, 0u);
  mm_.Release(fg);
  mm_.Release(bg);
}

TEST_F(ReclaimTest, ZramFullFallsBackToFile) {
  MemConfig config = TinyConfig();
  config.zram.capacity_bytes = 64 * 1024;  // ~45 compressed pages.
  MemoryManager mm(engine_, config, &storage_);
  AddressSpace space(1, 1, "a", Layout(400, 400, 800));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1600; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  for (int i = 0; i < 200; ++i) {
    mm.KswapdBatch();
  }
  uint64_t anon_evicted = engine_.stats().Get(stat::kPagesReclaimedAnon);
  uint64_t file_evicted = engine_.stats().Get(stat::kPagesReclaimedFile);
  EXPECT_GT(file_evicted, anon_evicted);
  EXPECT_LE(mm.zram().stored_bytes(), config.zram.capacity_bytes);
  mm.Release(space);
}

TEST_F(ReclaimTest, DirtyFilePagesWriteBack) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 200));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    mm_.Access(space, vpn, /*write=*/true, nullptr);
  }
  mm_.ReclaimAllOf(space);
  engine_.RunFor(Ms(100));
  EXPECT_GT(engine_.stats().Get(stat::kIoWrites), 0u);
  EXPECT_GT(storage_.pages_written(), 100u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, CleanFilePagesDiscardWithoutIo) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 200));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    mm_.Access(space, vpn, /*write=*/false, nullptr);
  }
  mm_.ReclaimAllOf(space);
  engine_.RunFor(Ms(100));
  EXPECT_EQ(engine_.stats().Get(stat::kIoWrites), 0u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, ReclaimAllEvictsEverythingPresent) {
  AddressSpace space(1, 1, "a", Layout(100, 100, 100));
  mm_.Register(space);
  TouchAll(space, 300);
  ReclaimResult r = mm_.ReclaimAllOf(space);
  EXPECT_EQ(r.reclaimed, 300u);
  EXPECT_EQ(space.resident(), 0u);
  EXPECT_EQ(space.evicted(), 300u);
  EXPECT_GT(r.cpu_us, Us(300));
  mm_.Release(space);
}

TEST_F(ReclaimTest, EvictionRecordsShadowEntries) {
  AddressSpace space(1, 1, "a", Layout(10, 10, 10));
  mm_.Register(space);
  TouchAll(space, 30);
  mm_.ReclaimAllOf(space);
  for (uint32_t vpn = 0; vpn < 30; ++vpn) {
    EXPECT_GT(space.page(vpn).evict_cookie, 0u);
  }
  EXPECT_EQ(mm_.shadow().eviction_sequence(), 30u);
  mm_.Release(space);
}

// vmstat-style pgsteal attribution: a watermark breach must populate BOTH
// the kswapd and the direct buckets, and the buckets must reconcile with the
// totals and with the per-access AccessOutcome.direct_reclaimed counts.
TEST_F(ReclaimTest, WatermarkBreachAttributesKswapdAndDirectSeparately) {
  // More pages than usable frames (1800): allocations push free through the
  // min watermark and enter direct reclaim inside Access.
  AddressSpace space(1, 1, "a", Layout(900, 900, 900));
  mm_.Register(space);
  uint64_t outcome_direct_total = 0;
  for (uint32_t vpn = 0; vpn < 2700; ++vpn) {
    outcome_direct_total += mm_.Access(space, vpn, false, nullptr).direct_reclaimed;
  }
  DrainKswapd();

  StatsRegistry& st = engine_.stats();
  uint64_t kswapd = st.Get(stat::kPagesReclaimedKswapd);
  uint64_t direct = st.Get(stat::kPagesReclaimedDirect);
  EXPECT_GT(kswapd, 0u);
  EXPECT_GT(direct, 0u);
  EXPECT_EQ(kswapd + direct, st.Get(stat::kPagesReclaimed));
  EXPECT_EQ(st.Get(stat::kPagesReclaimedAnonKswapd) + st.Get(stat::kPagesReclaimedAnonDirect),
            st.Get(stat::kPagesReclaimedAnon));
  EXPECT_EQ(st.Get(stat::kPagesReclaimedFileKswapd) + st.Get(stat::kPagesReclaimedFileDirect),
            st.Get(stat::kPagesReclaimedFile));
  // The sum the allocators saw is exactly what the direct bucket recorded.
  EXPECT_EQ(outcome_direct_total, direct);
  mm_.Release(space);
}

TEST_F(ReclaimTest, ReclaimResultCarriesContextAndPoolSplit) {
  AddressSpace space(1, 1, "a", Layout(400, 400, 400));
  mm_.Register(space);
  TouchAll(space, 1200);
  ReclaimResult r = mm_.KswapdBatch();
  EXPECT_FALSE(r.direct);
  EXPECT_EQ(r.reclaimed_anon + r.reclaimed_file, r.reclaimed);
  EXPECT_GT(r.reclaimed, 0u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, PerProcessReclaimIsNotDirect) {
  AddressSpace space(1, 1, "a", Layout(100, 100, 100));
  mm_.Register(space);
  TouchAll(space, 300);
  ReclaimResult r = mm_.ReclaimAllOf(space);
  EXPECT_FALSE(r.direct);
  // Daemon-context reclaim lands in the non-direct (kswapd-side) buckets.
  EXPECT_EQ(engine_.stats().Get(stat::kPagesReclaimedDirect), 0u);
  EXPECT_EQ(engine_.stats().Get(stat::kPagesReclaimedKswapd),
            engine_.stats().Get(stat::kPagesReclaimed));
  mm_.Release(space);
}

// Cursor regression: a batch that meets its target after scanning spaces
// [A, B] must start the next batch at C (the first unscanned space), not
// re-drain B. Verified through the eviction order in the trace.
TEST_F(ReclaimTest, CursorAdvancesPastAllScannedSpaces) {
  MemConfig config;
  config.total_pages = 16000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.reclaim_contention_mean = 0;
  Tracer tracer(16);
  engine_.set_tracer(&tracer);
  MemoryManager mm(engine_, config, &storage_);

  // File-only spaces: clean discards, no zram/writeback noise. B dominates
  // the LRU so batch 1 (target 32) fills within A (share 1) + B (share 31).
  AddressSpace a(1, 1, "a", Layout(0, 0, 100));
  AddressSpace b(2, 2, "b", Layout(0, 0, 10000));
  AddressSpace c(3, 3, "c", Layout(0, 0, 100));
  mm.Register(a);
  mm.Register(b);
  mm.Register(c);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(a, vpn, false, nullptr);
  }
  for (uint32_t vpn = 0; vpn < 10000; ++vpn) {
    mm.Access(b, vpn, false, nullptr);
  }
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(c, vpn, false, nullptr);
  }

  ReclaimResult first = mm.KswapdBatch();
  ASSERT_EQ(first.reclaimed, 32u);
  EXPECT_EQ(c.total_evictions, 0u) << "batch 1 should stop before reaching C";
  mm.KswapdBatch();
  EXPECT_GT(c.total_evictions, 0u);

  // The first eviction of batch 2 must come from C: the cursor moved past
  // every space batch 1 scanned (the old advance-by-one restarted at B).
  int begins = 0;
  bool checked = false;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.type == TraceEventType::kReclaimBegin) {
      ++begins;
    } else if (begins == 2 && e.type == TraceEventType::kPageEvict) {
      EXPECT_EQ(e.uid, 3) << "batch 2 started at the wrong space";
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked);
  engine_.set_tracer(nullptr);
  mm.Release(a);
  mm.Release(b);
  mm.Release(c);
}

// Scan-accounting regression: second-chance promotions consume scan budget
// but isolate nothing, so a batch over a referenced-heavy inactive list must
// report scanned > reclaimed. The pre-fix code charged isolate_scratch_.size()
// (== reclaimed for clean file pages), hiding the promotion work entirely.
TEST_F(ReclaimTest, ScannedCountsSecondChancePromotions) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 600));  // Clean file pages only.
  mm_.Register(space);
  TouchAll(space, 600);
  // Demote a third of the pool (pages 0..199, with page 0 at the scan tail),
  // then re-touch the 50 tail-most: the batch must wade through 50
  // second-chance promotions before it can isolate a single victim.
  space.lru().Balance(LruPool::kFile);
  ASSERT_GT(space.lru().inactive_size(LruPool::kFile), 49u);
  TouchAll(space, 50);
  ReclaimResult r = mm_.KswapdBatch();
  ASSERT_GT(r.reclaimed, 0u);
  EXPECT_GT(r.scanned, r.reclaimed);
  mm_.Release(space);
}

// Same accounting through the Acclaim victim filter: rotated pages are
// examined work even though they are never isolated.
TEST_F(ReclaimTest, ScannedCountsVictimFilterRotations) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 400));
  mm_.Register(space);
  TouchAll(space, 400);
  // Protect even vpns: half the scanned tail rotates instead of evicting.
  mm_.set_victim_filter(
      [](const AddressSpace&, const PageInfo& page) { return page.vpn % 2 == 0; });
  ReclaimResult r = mm_.KswapdBatch();
  ASSERT_GT(r.reclaimed, 0u);
  EXPECT_GT(r.scanned, r.reclaimed);
  mm_.Release(space);
}

// ZRAM filling up mid-batch must stop anon planning for the rest of the
// batch: before the fix, anon_ok was computed once before the space loop, so
// later spaces kept isolating anonymous pages only to put every one of them
// back when Store failed — pure churn charged to the batch.
TEST_F(ReclaimTest, ZramFullMidBatchStopsAnonPlanningForLaterSpaces) {
  MemConfig config = TinyConfig();
  config.zram.capacity_bytes = 16 * 1024;  // ~11 compressed pages.
  MemoryManager mm(engine_, config, &storage_);
  AddressSpace a(1, 1, "a", Layout(100, 0, 0));  // Anon-only.
  AddressSpace b(2, 2, "b", Layout(100, 0, 0));  // Anon-only.
  mm.Register(a);
  mm.Register(b);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(a, vpn, false, nullptr);
  }
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(b, vpn, false, nullptr);
  }
  // Batch target 32: A's share (16) overflows the zram partway through, so
  // B's share must be re-planned with zero anon weight — B contributes no
  // scanning at all (its pool is entirely anonymous).
  ReclaimResult r = mm.KswapdBatch();
  ASSERT_GT(r.reclaimed, 0u);
  ASSERT_LT(r.reclaimed, 16u) << "zram unexpectedly fit the whole share";
  EXPECT_LE(r.scanned, 16u) << "later space was scanned after the store failure";
  mm.Release(a);
  mm.Release(b);
}

// Batched zram-frame accounting: free_pages_ must reconcile with the frames
// the compressed store occupies at every batch boundary.
TEST_F(ReclaimTest, FreePagesReconcileWithZramFramesAfterBatch) {
  AddressSpace space(1, 1, "a", Layout(400, 0, 0));
  mm_.Register(space);
  TouchAll(space, 400);
  int64_t before = mm_.free_pages();
  ReclaimResult r = mm_.KswapdBatch();
  ASSERT_GT(r.reclaimed, 0u);
  // Every reclaimed anon page frees one frame but the compressed copies
  // re-occupy BytesToPages(stored) frames, synced once per batch.
  int64_t expected = before + static_cast<int64_t>(r.reclaimed) -
                     static_cast<int64_t>(BytesToPages(mm_.zram().stored_bytes()));
  EXPECT_EQ(mm_.free_pages(), expected);
  mm_.Release(space);
}

TEST_F(ReclaimTest, ReclaimedCounterSplitsByType) {
  AddressSpace space(1, 1, "a", Layout(50, 50, 100));
  mm_.Register(space);
  TouchAll(space, 200);
  mm_.ReclaimAllOf(space);
  uint64_t total = engine_.stats().Get(stat::kPagesReclaimed);
  uint64_t anon = engine_.stats().Get(stat::kPagesReclaimedAnon);
  uint64_t file = engine_.stats().Get(stat::kPagesReclaimedFile);
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(anon, 100u);
  EXPECT_EQ(file, 100u);
  mm_.Release(space);
}

}  // namespace
}  // namespace ice
