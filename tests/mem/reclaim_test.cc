// Reclaim-specific behavior: proportional per-space pressure, victim
// filtering (the Acclaim hook), zram-full fallback to file, writeback I/O.
#include <gtest/gtest.h>

#include "src/mem/memory_manager.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.zram.capacity_bytes = 8 * kMiB;
  config.reclaim_contention_mean = 0;
  return config;
}

AddressSpaceLayout Layout(PageCount java, PageCount native, PageCount file) {
  AddressSpaceLayout layout;
  layout.java_pages = java;
  layout.native_pages = native;
  layout.file_pages = file;
  return layout;
}

class ReclaimTest : public ::testing::Test {
 protected:
  ReclaimTest() : storage_(engine_, Ufs21Profile()), mm_(engine_, TinyConfig(), &storage_) {}

  void TouchAll(AddressSpace& space, uint32_t count) {
    for (uint32_t vpn = 0; vpn < count; ++vpn) {
      mm_.Access(space, vpn, false, nullptr);
    }
  }

  void DrainKswapd() {
    int guard = 0;
    while (mm_.KswapdShouldRun() && guard++ < 500) {
      if (mm_.KswapdBatch().reclaimed == 0) {
        break;
      }
    }
  }

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
};

TEST_F(ReclaimTest, PressureIsProportionalAcrossSpaces) {
  // Two idle spaces of very different sizes: the bigger one should donate
  // proportionally more.
  AddressSpace big(1, 1, "big", Layout(600, 600, 0));
  AddressSpace small(2, 2, "small", Layout(150, 150, 0));
  mm_.Register(big);
  mm_.Register(small);
  TouchAll(big, 1200);
  TouchAll(small, 300);  // free = 300, below low (100)? 1800-1500=300: above.
  // Force reclaim directly.
  int64_t freed_target = 200;
  int64_t before = mm_.free_pages();
  while (mm_.free_pages() < before + freed_target) {
    if (mm_.KswapdBatch().reclaimed == 0) {
      break;
    }
  }
  EXPECT_GT(big.total_evictions, small.total_evictions * 2);
  EXPECT_GT(small.total_evictions, 0u);
  mm_.Release(big);
  mm_.Release(small);
}

TEST_F(ReclaimTest, VictimFilterProtectsForeground) {
  AddressSpace fg(1, 100, "fg", Layout(400, 400, 0));
  AddressSpace bg(2, 200, "bg", Layout(400, 400, 0));
  mm_.Register(fg);
  mm_.Register(bg);
  mm_.set_foreground_uid(100);
  // Acclaim's FAE: skip foreground-owned pages.
  mm_.set_victim_filter([this](const PageInfo& page) {
    return page.owner->uid() == mm_.foreground_uid();
  });
  TouchAll(fg, 800);
  TouchAll(bg, 800);
  for (int i = 0; i < 50; ++i) {
    mm_.KswapdBatch();
  }
  EXPECT_EQ(fg.total_evictions, 0u);
  EXPECT_GT(bg.total_evictions, 0u);
  mm_.Release(fg);
  mm_.Release(bg);
}

TEST_F(ReclaimTest, ZramFullFallsBackToFile) {
  MemConfig config = TinyConfig();
  config.zram.capacity_bytes = 64 * 1024;  // ~45 compressed pages.
  MemoryManager mm(engine_, config, &storage_);
  AddressSpace space(1, 1, "a", Layout(400, 400, 800));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1600; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  for (int i = 0; i < 200; ++i) {
    mm.KswapdBatch();
  }
  uint64_t anon_evicted = engine_.stats().Get(stat::kPagesReclaimedAnon);
  uint64_t file_evicted = engine_.stats().Get(stat::kPagesReclaimedFile);
  EXPECT_GT(file_evicted, anon_evicted);
  EXPECT_LE(mm.zram().stored_bytes(), config.zram.capacity_bytes);
  mm.Release(space);
}

TEST_F(ReclaimTest, DirtyFilePagesWriteBack) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 200));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    mm_.Access(space, vpn, /*write=*/true, nullptr);
  }
  mm_.ReclaimAllOf(space);
  engine_.RunFor(Ms(100));
  EXPECT_GT(engine_.stats().Get(stat::kIoWrites), 0u);
  EXPECT_GT(storage_.pages_written(), 100u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, CleanFilePagesDiscardWithoutIo) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 200));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 200; ++vpn) {
    mm_.Access(space, vpn, /*write=*/false, nullptr);
  }
  mm_.ReclaimAllOf(space);
  engine_.RunFor(Ms(100));
  EXPECT_EQ(engine_.stats().Get(stat::kIoWrites), 0u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, ReclaimAllEvictsEverythingPresent) {
  AddressSpace space(1, 1, "a", Layout(100, 100, 100));
  mm_.Register(space);
  TouchAll(space, 300);
  ReclaimResult r = mm_.ReclaimAllOf(space);
  EXPECT_EQ(r.reclaimed, 300u);
  EXPECT_EQ(space.resident(), 0u);
  EXPECT_EQ(space.evicted(), 300u);
  EXPECT_GT(r.cpu_us, Us(300));
  mm_.Release(space);
}

TEST_F(ReclaimTest, EvictionRecordsShadowEntries) {
  AddressSpace space(1, 1, "a", Layout(10, 10, 10));
  mm_.Register(space);
  TouchAll(space, 30);
  mm_.ReclaimAllOf(space);
  for (uint32_t vpn = 0; vpn < 30; ++vpn) {
    EXPECT_GT(space.page(vpn).evict_cookie, 0u);
  }
  EXPECT_EQ(mm_.shadow().eviction_sequence(), 30u);
  mm_.Release(space);
}

TEST_F(ReclaimTest, ReclaimedCounterSplitsByType) {
  AddressSpace space(1, 1, "a", Layout(50, 50, 100));
  mm_.Register(space);
  TouchAll(space, 200);
  mm_.ReclaimAllOf(space);
  uint64_t total = engine_.stats().Get(stat::kPagesReclaimed);
  uint64_t anon = engine_.stats().Get(stat::kPagesReclaimedAnon);
  uint64_t file = engine_.stats().Get(stat::kPagesReclaimedFile);
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(anon, 100u);
  EXPECT_EQ(file, 100u);
  mm_.Release(space);
}

}  // namespace
}  // namespace ice
