#include "src/mem/memory_manager.h"

#include <gtest/gtest.h>

#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

MemConfig TinyConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);  // low=100, min=80.
  config.zram.capacity_bytes = 4 * kMiB;
  config.reclaim_contention_mean = 0;  // Deterministic costs for tests.
  return config;
}

AddressSpaceLayout Layout(PageCount java, PageCount native, PageCount file) {
  AddressSpaceLayout layout;
  layout.java_pages = java;
  layout.native_pages = native;
  layout.file_pages = file;
  return layout;
}

class MemoryManagerTest : public ::testing::Test {
 protected:
  MemoryManagerTest()
      : storage_(engine_, Ufs21Profile()), mm_(engine_, TinyConfig(), &storage_) {}

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
};

TEST_F(MemoryManagerTest, FreePagesStartAtUsable) {
  EXPECT_EQ(mm_.free_pages(), 1800);
}

TEST_F(MemoryManagerTest, ArenaAccountingTracksLiveAndPeak) {
  EXPECT_EQ(mm_.arena_bytes_live(), 0u);
  EXPECT_EQ(mm_.arena_bytes_peak(), 0u);

  AddressSpace a(1, 1, "a", Layout(10, 10, 10));
  AddressSpace b(2, 2, "b", Layout(100, 50, 50));
  mm_.Register(a);
  EXPECT_EQ(mm_.arena_bytes_live(), a.arena_bytes());
  EXPECT_EQ(mm_.arena_bytes_peak(), a.arena_bytes());
  mm_.Register(b);
  const uint64_t both = a.arena_bytes() + b.arena_bytes();
  EXPECT_EQ(mm_.arena_bytes_live(), both);
  EXPECT_EQ(mm_.arena_bytes_peak(), both);

  // Releasing shrinks the live figure but the peak is a high-water mark.
  mm_.Release(a);
  EXPECT_EQ(mm_.arena_bytes_live(), b.arena_bytes());
  EXPECT_EQ(mm_.arena_bytes_peak(), both);
  // Releasing an unregistered space must not double-subtract.
  mm_.Release(a);
  EXPECT_EQ(mm_.arena_bytes_live(), b.arena_bytes());
  mm_.Release(b);
  EXPECT_EQ(mm_.arena_bytes_live(), 0u);
  EXPECT_EQ(mm_.arena_bytes_peak(), both);
}

TEST_F(MemoryManagerTest, FirstTouchConsumesFrame) {
  AddressSpace space(1, 1, "a", Layout(10, 10, 10));
  mm_.Register(space);
  AccessOutcome out = mm_.Access(space, 0, false, nullptr);
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kFirstTouch);
  EXPECT_FALSE(out.blocked);
  EXPECT_FALSE(out.refault);
  EXPECT_EQ(mm_.free_pages(), 1799);
  EXPECT_EQ(space.resident(), 1u);
  EXPECT_EQ(space.page(0).state(), PageState::kPresent);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, HitIsCheapAndTouchesLru) {
  AddressSpace space(1, 1, "a", Layout(10, 10, 10));
  mm_.Register(space);
  mm_.Access(space, 3, false, nullptr);
  AccessOutcome out = mm_.Access(space, 3, false, nullptr);
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kHit);
  EXPECT_EQ(mm_.free_pages(), 1799);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, WriteMarksFilePageDirty) {
  AddressSpace space(1, 1, "a", Layout(4, 4, 8));
  mm_.Register(space);
  uint32_t file_vpn = space.file_begin();
  mm_.Access(space, file_vpn, /*write=*/true, nullptr);
  EXPECT_TRUE(space.page(file_vpn).dirty());
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, ZramFaultRoundTrip) {
  AddressSpace space(1, 1, "a", Layout(10, 10, 10));
  mm_.Register(space);
  mm_.Access(space, 0, false, nullptr);
  ReclaimResult r = mm_.ReclaimAllOf(space);
  EXPECT_EQ(r.reclaimed, 1u);
  EXPECT_EQ(space.page(0).state(), PageState::kInZram);
  EXPECT_EQ(space.resident(), 0u);
  EXPECT_EQ(space.evicted(), 1u);

  AccessOutcome out = mm_.Access(space, 0, false, nullptr);
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kZramFault);
  EXPECT_TRUE(out.refault);
  EXPECT_FALSE(out.blocked);
  EXPECT_EQ(space.page(0).state(), PageState::kPresent);
  EXPECT_EQ(engine_.stats().Get(stat::kRefaults), 1u);
  EXPECT_EQ(engine_.stats().Get(stat::kRefaultsBg), 1u);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, FileFaultBlocksUntilIoCompletes) {
  AddressSpace space(1, 1, "a", Layout(4, 4, 8));
  mm_.Register(space);
  uint32_t file_vpn = space.file_begin();
  mm_.Access(space, file_vpn, false, nullptr);
  mm_.ReclaimAllOf(space);
  ASSERT_EQ(space.page(file_vpn).state(), PageState::kOnFlash);

  bool woken = false;
  AccessOutcome out = mm_.Access(space, file_vpn, false, [&] { woken = true; });
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kIoFault);
  EXPECT_TRUE(out.blocked);
  EXPECT_TRUE(out.refault);
  EXPECT_EQ(space.page(file_vpn).state(), PageState::kFaultingIn);
  EXPECT_FALSE(woken);
  engine_.RunFor(Ms(50));
  EXPECT_TRUE(woken);
  EXPECT_EQ(space.page(file_vpn).state(), PageState::kPresent);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, ConcurrentFaultersPileOnOneRead) {
  AddressSpace space(1, 1, "a", Layout(4, 4, 8));
  mm_.Register(space);
  uint32_t file_vpn = space.file_begin();
  mm_.Access(space, file_vpn, false, nullptr);
  mm_.ReclaimAllOf(space);

  int woken = 0;
  mm_.Access(space, file_vpn, false, [&] { ++woken; });
  mm_.Access(space, file_vpn, false, [&] { ++woken; });
  EXPECT_EQ(storage_.requests_completed() + storage_.inflight() + storage_.queued(), 1u + 0u);
  engine_.RunFor(Ms(50));
  EXPECT_EQ(woken, 2);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, ForegroundClassification) {
  AddressSpace fg_space(1, 100, "fg", Layout(10, 10, 10));
  AddressSpace bg_space(2, 200, "bg", Layout(10, 10, 10));
  mm_.Register(fg_space);
  mm_.Register(bg_space);
  mm_.set_foreground_uid(100);

  mm_.Access(fg_space, 0, false, nullptr);
  mm_.Access(bg_space, 0, false, nullptr);
  mm_.ReclaimAllOf(fg_space);
  mm_.ReclaimAllOf(bg_space);
  mm_.Access(fg_space, 0, false, nullptr);
  mm_.Access(bg_space, 0, false, nullptr);

  EXPECT_EQ(engine_.stats().Get(stat::kRefaultsFg), 1u);
  EXPECT_EQ(engine_.stats().Get(stat::kRefaultsBg), 1u);
  mm_.Release(fg_space);
  mm_.Release(bg_space);
}

TEST_F(MemoryManagerTest, KswapdWakesBelowLowWatermark) {
  AddressSpace space(1, 1, "a", Layout(900, 900, 100));
  mm_.Register(space);
  bool woken = false;
  mm_.set_kswapd_waker([&] { woken = true; });
  // Consume frames until free < low (1800 - 100 => touch 1701 pages).
  for (uint32_t vpn = 0; vpn < 1701 && !woken; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  EXPECT_TRUE(woken);
  EXPECT_TRUE(mm_.KswapdShouldRun());
  EXPECT_EQ(engine_.stats().Get(stat::kKswapdWakeups), 1u);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, KswapdBatchReclaimsTowardHigh) {
  AddressSpace space(1, 1, "a", Layout(900, 900, 100));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 1705; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  ASSERT_TRUE(mm_.KswapdShouldRun());
  int64_t free_before = mm_.free_pages();
  int guard = 0;
  while (mm_.KswapdShouldRun() && guard++ < 100) {
    ReclaimResult r = mm_.KswapdBatch();
    if (r.reclaimed == 0) {
      break;
    }
  }
  EXPECT_GT(mm_.free_pages(), free_before);
  EXPECT_GE(mm_.free_pages(), static_cast<int64_t>(mm_.watermarks().high));
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, DirectReclaimBelowMin) {
  AddressSpace space(1, 1, "a", Layout(1000, 900, 100));
  mm_.Register(space);
  // Touch up to exactly min watermark (free = 80 => touched 1720).
  for (uint32_t vpn = 0; vpn < 1720; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  ASSERT_LE(mm_.free_pages(), static_cast<int64_t>(mm_.watermarks().min));
  AccessOutcome out = mm_.Access(space, 1750, false, nullptr);
  EXPECT_GT(out.direct_reclaimed, 0u);
  EXPECT_GT(out.cpu_us, Us(100));  // Reclaim work charged to the faulter.
  EXPECT_EQ(engine_.stats().Get(stat::kDirectReclaims), 1u);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, OomHandlerInvokedWhenReclaimStuck) {
  // No reclaimable pages: a single huge space entirely... actually fill
  // memory with present pages and make them unreclaimable by filling zram
  // and having no file pages.
  MemConfig config = TinyConfig();
  config.zram.capacity_bytes = 0;  // Anonymous pages cannot swap.
  MemoryManager mm(engine_, config, &storage_);
  AddressSpace space(1, 1, "a", Layout(1000, 900, 0));
  mm.Register(space);
  int oom_calls = 0;
  mm.set_oom_handler([&] {
    ++oom_calls;
    return false;  // Nothing to kill.
  });
  for (uint32_t vpn = 0; vpn < 1750; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  EXPECT_GT(oom_calls, 0);
  mm.Release(space);
}

TEST_F(MemoryManagerTest, ReleaseReturnsFrames) {
  AddressSpace space(1, 1, "a", Layout(50, 50, 50));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  EXPECT_EQ(mm_.free_pages(), 1700);
  mm_.Release(space);
  EXPECT_EQ(mm_.free_pages(), 1800);
  EXPECT_EQ(space.resident(), 0u);
  for (uint32_t vpn = 0; vpn < 150; ++vpn) {
    EXPECT_EQ(space.page(vpn).state(), PageState::kUntouched);
  }
}

TEST_F(MemoryManagerTest, ReleaseDropsZramEntries) {
  AddressSpace space(1, 1, "a", Layout(50, 50, 0));
  mm_.Register(space);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  mm_.ReclaimAllOf(space);
  EXPECT_GT(mm_.zram().stored_pages(), 0u);
  mm_.Release(space);
  EXPECT_EQ(mm_.zram().stored_pages(), 0u);
}

TEST_F(MemoryManagerTest, AvailableCountsFileLru) {
  AddressSpace space(1, 1, "a", Layout(0, 0, 100));
  mm_.Register(space);
  PageCount before = mm_.available_pages();
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  // free dropped by 100 but file LRU grew by 100; available drops by ~50.
  EXPECT_GT(mm_.available_pages(), before - 100);
  EXPECT_EQ(mm_.file_lru_pages(), 100u);
  mm_.Release(space);
}

TEST_F(MemoryManagerTest, SpacesRegistryTracksLifecycles) {
  AddressSpace a(1, 1, "a", Layout(4, 4, 4));
  AddressSpace b(2, 2, "b", Layout(4, 4, 4));
  mm_.Register(a);
  mm_.Register(b);
  EXPECT_EQ(mm_.spaces().size(), 2u);
  mm_.Release(a);
  EXPECT_EQ(mm_.spaces().size(), 1u);
  EXPECT_EQ(mm_.spaces()[0], &b);
  mm_.Release(b);
}

}  // namespace
}  // namespace ice
