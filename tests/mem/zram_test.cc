#include "src/mem/zram.h"

#include <gtest/gtest.h>

#include "src/mem/address_space.h"
#include "src/mem/memory_manager.h"

namespace ice {
namespace {

AddressSpaceLayout AnonLayout(PageCount pages) {
  AddressSpaceLayout layout;
  layout.native_pages = pages;
  return layout;
}

TEST(Zram, StoresAndDrops) {
  ZramConfig config;
  config.capacity_bytes = 1 * kMiB;
  Zram zram(config, Rng(1));
  AddressSpace space(1, 1, "t", AnonLayout(16));
  PageInfo* p = &space.page(0);

  EXPECT_TRUE(zram.Store(p));
  EXPECT_GT(p->zram_bytes, 0u);
  EXPECT_LT(p->zram_bytes, kPageSize);
  EXPECT_EQ(zram.stored_pages(), 1u);
  EXPECT_EQ(zram.stored_bytes(), p->zram_bytes);

  zram.Drop(p);
  EXPECT_EQ(p->zram_bytes, 0u);
  EXPECT_EQ(zram.stored_pages(), 0u);
  EXPECT_EQ(zram.stored_bytes(), 0u);
}

TEST(Zram, CompressionRatioIsPlausible) {
  ZramConfig config;
  config.capacity_bytes = 64 * kMiB;
  Zram zram(config, Rng(2));
  AddressSpace space(1, 1, "t", AnonLayout(1000));
  uint64_t total = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(zram.Store(&space.page(i)));
    total += space.page(i).zram_bytes;
  }
  double ratio = 1000.0 * kPageSize / total;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
  for (uint32_t i = 0; i < 1000; ++i) {
    zram.Drop(&space.page(i));
  }
}

TEST(Zram, CapacityBound) {
  ZramConfig config;
  config.capacity_bytes = 16 * 1024;  // ~10 compressed pages.
  Zram zram(config, Rng(3));
  AddressSpace space(1, 1, "t", AnonLayout(100));
  uint32_t stored = 0;
  for (uint32_t i = 0; i < 100; ++i) {
    if (!zram.Store(&space.page(i))) {
      break;
    }
    ++stored;
  }
  EXPECT_GT(stored, 4u);
  EXPECT_LT(stored, 40u);
  EXPECT_LE(zram.stored_bytes(), config.capacity_bytes);
  EXPECT_FALSE(zram.HasRoom());
}

TEST(Zram, DropMakesRoomAgain) {
  ZramConfig config;
  config.capacity_bytes = 16 * 1024;
  Zram zram(config, Rng(4));
  AddressSpace space(1, 1, "t", AnonLayout(100));
  std::vector<uint32_t> stored;
  for (uint32_t i = 0; i < 100; ++i) {
    if (!zram.Store(&space.page(i))) {
      break;
    }
    stored.push_back(i);
  }
  ASSERT_FALSE(zram.HasRoom());
  for (uint32_t i : stored) {
    zram.Drop(&space.page(i));
  }
  EXPECT_TRUE(zram.HasRoom());
  EXPECT_EQ(zram.stored_bytes(), 0u);
}

TEST(Zram, UtilizationReflectsFill) {
  ZramConfig config;
  config.capacity_bytes = 1 * kMiB;
  Zram zram(config, Rng(5));
  EXPECT_DOUBLE_EQ(zram.utilization(), 0.0);
  AddressSpace space(1, 1, "t", AnonLayout(10));
  zram.Store(&space.page(0));
  EXPECT_GT(zram.utilization(), 0.0);
  zram.Drop(&space.page(0));
}

TEST(Zram, CostsConfigured) {
  ZramConfig config;
  config.compress_us = Us(40);
  config.decompress_us = Us(12);
  Zram zram(config, Rng(6));
  EXPECT_EQ(zram.compress_cost(), Us(40));
  EXPECT_EQ(zram.decompress_cost(), Us(12));
}

// The compressed size and shadow cookie live in the open fields of the
// packed 32-byte PageInfo; every flag mutation goes through the shared bit
// word. Regression for the bit-packing refactor: flipping every packed flag
// must leave zram accounting (and the cookie) untouched.
TEST(Zram, ZramBytesSurvivesBitPacking) {
  ZramConfig config;
  config.capacity_bytes = 1 * kMiB;
  Zram zram(config, Rng(7));
  AddressSpace space(1, 1, "t", AnonLayout(4));
  PageInfo* p = &space.page(0);
  ASSERT_TRUE(zram.Store(p));
  const uint32_t bytes = p->zram_bytes;
  ASSERT_GT(bytes, 0u);
  p->evict_cookie = 0x1234567890abcdefull;

  p->set_state(PageState::kInZram);
  p->set_kind(HeapKind::kNativeHeap);
  p->set_dirty(true);
  p->set_referenced(true);
  p->set_active(true);
  p->set_lru_linked(true);
  EXPECT_EQ(p->zram_bytes, bytes);
  EXPECT_EQ(p->evict_cookie, 0x1234567890abcdefull);
  EXPECT_EQ(p->state(), PageState::kInZram);
  EXPECT_EQ(p->kind(), HeapKind::kNativeHeap);

  p->set_dirty(false);
  p->set_referenced(false);
  p->set_active(false);
  p->set_lru_linked(false);
  EXPECT_EQ(p->zram_bytes, bytes);
  EXPECT_EQ(zram.stored_bytes(), bytes);

  p->set_state(PageState::kPresent);
  zram.Drop(p);
  EXPECT_EQ(p->zram_bytes, 0u);
  EXPECT_EQ(zram.stored_bytes(), 0u);
}

// A fault on an in-zram page must charge the decompression latency to the
// faulting task's CPU time (the paper's motivation for limiting zram churn).
TEST(Zram, DecompressCostChargedOnZramFault) {
  Engine engine(1);
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.zram.capacity_bytes = 4 * kMiB;
  config.zram.decompress_us = Us(17);
  config.fault_fixed_cost = Us(8);
  config.reclaim_contention_mean = 0;  // Deterministic costs.
  MemoryManager mm(engine, config, nullptr);

  AddressSpaceLayout layout;
  layout.java_pages = 8;
  AddressSpace space(1, 1, "t", layout);
  mm.Register(space);
  mm.Access(space, 0, false, nullptr);
  ReclaimResult r = mm.ReclaimAllOf(space);
  ASSERT_EQ(r.reclaimed, 1u);
  ASSERT_EQ(space.page(0).state(), PageState::kInZram);

  AccessOutcome out = mm.Access(space, 0, false, nullptr);
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kZramFault);
  EXPECT_EQ(out.cpu_us, Us(8) + Us(17));
  EXPECT_EQ(space.page(0).state(), PageState::kPresent);
  mm.Release(space);
}

}  // namespace
}  // namespace ice
