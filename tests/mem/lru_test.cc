#include "src/mem/lru.h"

#include <gtest/gtest.h>

#include "src/mem/address_space.h"

namespace ice {
namespace {

class LruTest : public ::testing::Test {
 protected:
  LruTest() : space_(1, 1, "t", Layout()) {
    lru_.BindArena(&space_, space_.pages().data(),
                   static_cast<uint32_t>(space_.pages().size()));
  }

  static AddressSpaceLayout Layout() {
    AddressSpaceLayout layout;
    layout.java_pages = 8;
    layout.native_pages = 8;
    layout.file_pages = 16;
    return layout;
  }

  PageInfo* AnonPage(uint32_t i) { return &space_.page(i); }          // Java region.
  PageInfo* FilePage(uint32_t i) { return &space_.page(16 + i); }     // File region.

  AddressSpace space_;
  LruLists lru_;
};

TEST_F(LruTest, InsertGoesToActive) {
  lru_.Insert(AnonPage(0));
  EXPECT_EQ(lru_.active_size(LruPool::kAnon), 1u);
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 0u);
  EXPECT_TRUE(AnonPage(0)->active());
  lru_.Remove(AnonPage(0));
}

TEST_F(LruTest, PoolsAreSeparate) {
  lru_.Insert(AnonPage(0));
  lru_.Insert(FilePage(0));
  EXPECT_EQ(lru_.pool_size(LruPool::kAnon), 1u);
  EXPECT_EQ(lru_.pool_size(LruPool::kFile), 1u);
  EXPECT_EQ(lru_.total_size(), 2u);
  lru_.Remove(AnonPage(0));
  lru_.Remove(FilePage(0));
}

TEST_F(LruTest, BalanceDemotesToInactive) {
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  // inactive >= active / 2.
  EXPECT_GE(lru_.inactive_size(LruPool::kAnon) * 2, lru_.active_size(LruPool::kAnon));
  // Demotion clears the reference bit.
  for (uint32_t i = 0; i < 6; ++i) {
    if (!AnonPage(i)->active()) {
      EXPECT_FALSE(AnonPage(i)->referenced());
    }
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, IsolateTakesUnreferencedFromInactiveTail) {
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  size_t inactive = lru_.inactive_size(LruPool::kAnon);
  ASSERT_GT(inactive, 0u);
  std::vector<PageInfo*> victims;
  lru_.IsolateCandidates(LruPool::kAnon, 2, 8, nullptr, victims);
  EXPECT_EQ(victims.size(), std::min<size_t>(2, inactive));
  for (PageInfo* v : victims) {
    EXPECT_FALSE(v->lru_linked());
  }
  // Cleanup.
  for (PageInfo* v : victims) {
    lru_.PutBackInactive(v);
  }
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, SecondChancePromotesReferenced) {
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  // Touch every inactive page once: sets the reference bit.
  for (uint32_t i = 0; i < 6; ++i) {
    if (!AnonPage(i)->active()) {
      lru_.Touch(AnonPage(i));
    }
  }
  size_t active_before = lru_.active_size(LruPool::kAnon);
  std::vector<PageInfo*> victims;
  lru_.IsolateCandidates(LruPool::kAnon, 4, 16, nullptr, victims);
  // All inactive pages were referenced: none isolated, all promoted.
  EXPECT_TRUE(victims.empty());
  EXPECT_GT(lru_.active_size(LruPool::kAnon), active_before);
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, TouchPromotesInactiveOnSecondTouch) {
  lru_.Insert(AnonPage(0));
  lru_.Balance(LruPool::kAnon);
  // Force into inactive.
  if (AnonPage(0)->active()) {
    lru_.Remove(AnonPage(0));
    lru_.PutBackInactive(AnonPage(0));
  }
  ASSERT_FALSE(AnonPage(0)->active());
  lru_.Touch(AnonPage(0));  // Sets reference bit.
  EXPECT_FALSE(AnonPage(0)->active());
  lru_.Touch(AnonPage(0));  // Promotes.
  EXPECT_TRUE(AnonPage(0)->active());
  lru_.Remove(AnonPage(0));
}

TEST_F(LruTest, VictimFilterRotatesProtectedPages) {
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Insert(AnonPage(i));
    lru_.Remove(AnonPage(i));
    lru_.PutBackInactive(AnonPage(i));  // All inactive, unreferenced.
  }
  auto protect_all = [](const AddressSpace&, const PageInfo&) { return true; };
  std::vector<PageInfo*> victims;
  lru_.IsolateCandidates(LruPool::kAnon, 4, 16, protect_all, victims);
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 4u);  // Rotated, not evicted.
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, ScanBudgetBoundsWork) {
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Insert(AnonPage(i));
    lru_.Remove(AnonPage(i));
    lru_.PutBackInactive(AnonPage(i));
    AnonPage(i)->set_referenced(true);  // Everything referenced: all rotate.
  }
  std::vector<PageInfo*> victims;
  lru_.IsolateCandidates(LruPool::kAnon, 8, 3, nullptr, victims);
  EXPECT_TRUE(victims.empty());
  // Only 3 pages were scanned (promoted); 5 remain inactive.
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 5u);
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, IsolateReturnsPagesExaminedNotIsolated) {
  // Promotions, rotations and isolations must all count as examined pages,
  // not just the victims. 8 anon pages, all inactive, scan order 0..7.
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Insert(AnonPage(i));
    lru_.Remove(AnonPage(i));
    lru_.PutBackInactive(AnonPage(i));  // Head-insert: the tail is page 0.
  }
  // Pages 0 and 1 (scanned first, from the tail) are referenced.
  AnonPage(0)->set_referenced(true);
  AnonPage(1)->set_referenced(true);
  // Pages 2 and 3 are filter-protected.
  auto filter = [](const AddressSpace&, const PageInfo& p) { return p.vpn == 2 || p.vpn == 3; };
  std::vector<PageInfo*> victims;
  uint32_t examined = lru_.IsolateCandidates(LruPool::kAnon, 2, 32, filter, victims);
  // Scan order from the tail: 0 (promote), 1 (promote), 2 (rotate),
  // 3 (rotate), 4 (isolate), 5 (isolate) -> 6 pages examined, 2 isolated.
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_EQ(examined, 6u);
  for (PageInfo* v : victims) {
    lru_.PutBackInactive(v);
  }
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(LruTest, RemoveIsIdempotentWhenUnlinked) {
  lru_.Remove(AnonPage(0));  // Not linked: no-op, no crash.
  EXPECT_EQ(lru_.total_size(), 0u);
}

}  // namespace
}  // namespace ice
