#include "src/mem/address_space.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

AddressSpaceLayout SmallLayout() {
  AddressSpaceLayout layout;
  layout.java_pages = 10;
  layout.native_pages = 20;
  layout.file_pages = 30;
  return layout;
}

TEST(AddressSpace, LayoutRegions) {
  AddressSpace space(100, 10001, "app", SmallLayout());
  EXPECT_EQ(space.total_pages(), 60u);
  EXPECT_EQ(space.java_begin(), 0u);
  EXPECT_EQ(space.java_end(), 10u);
  EXPECT_EQ(space.native_begin(), 10u);
  EXPECT_EQ(space.native_end(), 30u);
  EXPECT_EQ(space.file_begin(), 30u);
  EXPECT_EQ(space.file_end(), 60u);
}

TEST(AddressSpace, KindOfMatchesRegion) {
  AddressSpace space(100, 10001, "app", SmallLayout());
  EXPECT_EQ(space.KindOf(0), HeapKind::kJavaHeap);
  EXPECT_EQ(space.KindOf(9), HeapKind::kJavaHeap);
  EXPECT_EQ(space.KindOf(10), HeapKind::kNativeHeap);
  EXPECT_EQ(space.KindOf(29), HeapKind::kNativeHeap);
  EXPECT_EQ(space.KindOf(30), HeapKind::kFile);
  EXPECT_EQ(space.KindOf(59), HeapKind::kFile);
}

TEST(AddressSpace, PagesInitialized) {
  AddressSpace space(7, 10002, "app", SmallLayout());
  for (uint32_t vpn = 0; vpn < space.total_pages(); ++vpn) {
    const PageInfo& p = space.page(vpn);
    EXPECT_EQ(p.vpn, vpn);
    EXPECT_EQ(p.state(), PageState::kUntouched);
    EXPECT_EQ(p.kind(), space.KindOf(vpn));
  }
}

TEST(AddressSpace, IdentityAccessors) {
  AddressSpace space(42, 10099, "com.example", SmallLayout());
  EXPECT_EQ(space.pid(), 42);
  EXPECT_EQ(space.uid(), 10099);
  EXPECT_EQ(space.name(), "com.example");
}

TEST(AddressSpace, ResidencyCountersClamp) {
  AddressSpace space(1, 1, "x", SmallLayout());
  space.AddResident(5);
  EXPECT_EQ(space.resident(), 5u);
  space.AddResident(-5);
  EXPECT_EQ(space.resident(), 0u);
  space.AddEvicted(3);
  space.AddEvicted(-3);
  EXPECT_EQ(space.evicted(), 0u);
}

TEST(AddressSpace, BytesToPagesRounding) {
  EXPECT_EQ(BytesToPages(0), 0u);
  EXPECT_EQ(BytesToPages(1), 1u);
  EXPECT_EQ(BytesToPages(kPageSize), 1u);
  EXPECT_EQ(BytesToPages(kPageSize + 1), 2u);
  EXPECT_EQ(BytesToPages(kMiB), 256u);
}

TEST(AddressSpace, OwnsItsLru) {
  AddressSpace space(1, 1, "x", SmallLayout());
  EXPECT_EQ(space.lru().total_size(), 0u);
  space.lru().Insert(&space.page(0));
  EXPECT_EQ(space.lru().total_size(), 1u);
  space.lru().Remove(&space.page(0));
}

}  // namespace
}  // namespace ice
