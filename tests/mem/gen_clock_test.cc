// Generation-clock aging policy: counter bookkeeping, clock advancement,
// arena-order sweep isolation, touch rejuvenation, second chance, victim
// filter protection, and an end-to-end reclaim pass through MemoryManager
// with MemConfig::aging = kGenClock.
#include <gtest/gtest.h>

#include "src/mem/lru.h"
#include "src/mem/memory_manager.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

class GenClockTest : public ::testing::Test {
 protected:
  GenClockTest() : space_(1, 1, "t", Layout()) {
    lru_.BindArena(&space_, space_.pages().data(),
                   static_cast<uint32_t>(space_.pages().size()));
    lru_.set_aging(AgingPolicy::kGenClock);
  }

  static AddressSpaceLayout Layout() {
    AddressSpaceLayout layout;
    layout.java_pages = 8;
    layout.native_pages = 0;
    layout.file_pages = 16;
    return layout;
  }

  PageInfo* AnonPage(uint32_t i) { return &space_.page(i); }       // Java region.
  PageInfo* FilePage(uint32_t i) { return &space_.page(8 + i); }   // File region.

  AddressSpace space_;
  LruLists lru_;
};

TEST_F(GenClockTest, InsertCountsYoungAndPoolsStaySeparate) {
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Insert(FilePage(0));
  // Freshly inserted pages are young: all "active", none "inactive".
  EXPECT_EQ(lru_.active_size(LruPool::kAnon), 4u);
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 0u);
  EXPECT_EQ(lru_.pool_size(LruPool::kFile), 1u);
  EXPECT_EQ(lru_.total_size(), 5u);
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Remove(AnonPage(i));
  }
  lru_.Remove(FilePage(0));
  EXPECT_EQ(lru_.total_size(), 0u);
}

TEST_F(GenClockTest, BalanceAdvancesClockWhenAllYoung) {
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Insert(AnonPage(i));
  }
  ASSERT_EQ(lru_.inactive_size(LruPool::kAnon), 0u);
  lru_.Balance(LruPool::kAnon);
  // young(6) > 2*old(0): the clock opens a fresh generation, the cohort ages.
  EXPECT_EQ(lru_.active_size(LruPool::kAnon), 0u);
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 6u);
  // Already balanced: a second call must not advance again (old dominates).
  lru_.Balance(LruPool::kAnon);
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 6u);
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

TEST_F(GenClockTest, IsolateSweepsArenaInAddressOrder) {
  for (uint32_t i = 0; i < 6; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  std::vector<PageInfo*> victims;
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 3, 16, nullptr, victims);
  // The hand starts at arena index 0 and sweeps upward.
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(scanned, 3u);
  EXPECT_EQ(victims[0]->vpn, 0u);
  EXPECT_EQ(victims[1]->vpn, 1u);
  EXPECT_EQ(victims[2]->vpn, 2u);
  for (PageInfo* v : victims) {
    EXPECT_FALSE(v->lru_linked());
  }
  // The persistent hand resumes where it stopped.
  scanned = lru_.IsolateCandidates(LruPool::kAnon, 3, 16, nullptr, victims);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0]->vpn, 3u);
  EXPECT_EQ(victims[2]->vpn, 5u);
  EXPECT_EQ(lru_.total_size(), 0u);
}

TEST_F(GenClockTest, TouchRejuvenatesIntoCurrentGeneration) {
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);  // All 4 now lag the clock.
  lru_.Touch(AnonPage(2));
  EXPECT_EQ(lru_.active_size(LruPool::kAnon), 1u);
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 3u);
  EXPECT_TRUE(AnonPage(2)->active());
  // A young page is not even examined by the sweep: only the three lagging
  // pages are isolated.
  std::vector<PageInfo*> victims;
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 4, 16, nullptr, victims);
  EXPECT_EQ(scanned, 3u);
  ASSERT_EQ(victims.size(), 3u);
  for (PageInfo* v : victims) {
    EXPECT_NE(v->vpn, 2u);
  }
  lru_.Remove(AnonPage(2));
}

TEST_F(GenClockTest, ReferencedLaggingPageGetsSecondChance) {
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Touch(AnonPage(1));  // Young + referenced.
  lru_.Balance(LruPool::kAnon);  // Everything lags; page 1 still referenced.
  std::vector<PageInfo*> victims;
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 4, 16, nullptr, victims);
  // Page 1 is examined but rejuvenated instead of isolated.
  EXPECT_EQ(scanned, 4u);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_TRUE(AnonPage(1)->lru_linked());
  EXPECT_TRUE(AnonPage(1)->active());
  EXPECT_FALSE(AnonPage(1)->referenced());
  EXPECT_EQ(lru_.active_size(LruPool::kAnon), 1u);
  lru_.Remove(AnonPage(1));
}

TEST_F(GenClockTest, VictimFilterLeavesPageLaggingAndRecharges) {
  for (uint32_t i = 0; i < 4; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  auto protect_low = [](const AddressSpace&, const PageInfo& p) { return p.vpn < 2; };
  std::vector<PageInfo*> victims;
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 4, 16, protect_low, victims);
  // All four examined; the two protected pages stay linked and lagging.
  EXPECT_EQ(scanned, 4u);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_TRUE(AnonPage(0)->lru_linked());
  EXPECT_TRUE(AnonPage(1)->lru_linked());
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 2u);
  // The next full pass re-examines (and re-charges) the protected pages —
  // the gen-clock analog of the two-list head rotation.
  scanned = lru_.IsolateCandidates(LruPool::kAnon, 4, 16, protect_low, victims);
  EXPECT_EQ(scanned, 2u);
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 2u);
  lru_.Remove(AnonPage(0));
  lru_.Remove(AnonPage(1));
}

TEST_F(GenClockTest, PutBackInactiveIsReIsolatable) {
  lru_.Insert(AnonPage(0));
  lru_.Insert(AnonPage(1));
  lru_.Balance(LruPool::kAnon);
  std::vector<PageInfo*> victims;
  lru_.IsolateCandidates(LruPool::kAnon, 1, 16, nullptr, victims);
  ASSERT_EQ(victims.size(), 1u);
  PageInfo* rejected = victims[0];
  lru_.PutBackInactive(rejected);
  EXPECT_TRUE(rejected->lru_linked());
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 2u);
  // A later sweep takes it again: it went back lagging, not young.
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 2, 16, nullptr, victims);
  EXPECT_EQ(scanned, 2u);
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_EQ(lru_.total_size(), 0u);
}

TEST_F(GenClockTest, ScanBudgetBoundsChargedExaminations) {
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Insert(AnonPage(i));
  }
  lru_.Balance(LruPool::kAnon);
  for (uint32_t i = 0; i < 8; ++i) {
    AnonPage(i)->set_referenced(true);  // Everything rotates, nothing isolates.
  }
  std::vector<PageInfo*> victims;
  uint32_t scanned = lru_.IsolateCandidates(LruPool::kAnon, 8, 3, nullptr, victims);
  EXPECT_TRUE(victims.empty());
  EXPECT_EQ(scanned, 3u);
  // Only the 3 budgeted pages were rejuvenated; 5 still lag.
  EXPECT_EQ(lru_.inactive_size(LruPool::kAnon), 5u);
  for (uint32_t i = 0; i < 8; ++i) {
    lru_.Remove(AnonPage(i));
  }
}

// ---------------------------------------------------------------------------
// End-to-end through MemoryManager: the reclaim batch, zram round-trip and
// refault bookkeeping all work when every registered space ages by clock.
// ---------------------------------------------------------------------------

class GenClockReclaimTest : public ::testing::Test {
 protected:
  static MemConfig Config() {
    MemConfig config;
    config.aging = AgingPolicy::kGenClock;
    config.total_pages = 2000;
    config.os_reserved_pages = 200;
    config.wm = Watermarks::FromHigh(120);
    config.zram.capacity_bytes = 8 * kMiB;
    config.reclaim_contention_mean = 0;
    return config;
  }

  GenClockReclaimTest() : storage_(engine_, Ufs21Profile()), mm_(engine_, Config(), &storage_) {}

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
};

TEST_F(GenClockReclaimTest, ReclaimBatchFreesPagesAndChargesScan) {
  AddressSpaceLayout layout;
  layout.java_pages = 300;
  layout.native_pages = 300;
  layout.file_pages = 0;
  AddressSpace space(1, 1, "a", layout);
  mm_.Register(space);
  EXPECT_EQ(space.lru().aging(), AgingPolicy::kGenClock);
  for (uint32_t vpn = 0; vpn < 600; ++vpn) {
    mm_.Access(space, vpn, false, nullptr);
  }
  int64_t free_before = mm_.free_pages();
  ReclaimResult r = mm_.KswapdBatch();
  EXPECT_GT(r.reclaimed, 0u);
  EXPECT_GE(r.scanned, r.reclaimed);
  EXPECT_GT(mm_.free_pages(), free_before);
  // Refaulting an evicted anon page round-trips through zram.
  for (int i = 0; i < 20 && space.total_refaults == 0; ++i) {
    for (uint32_t vpn = 0; vpn < 600; ++vpn) {
      mm_.Access(space, vpn, false, nullptr);
    }
    mm_.KswapdBatch();
  }
  EXPECT_GT(space.total_refaults, 0u);
  mm_.Release(space);
}

TEST_F(GenClockReclaimTest, VictimFilterStillProtectsForeground) {
  AddressSpaceLayout layout;
  layout.java_pages = 400;
  layout.native_pages = 400;
  layout.file_pages = 0;
  AddressSpace fg(1, 100, "fg", layout);
  AddressSpace bg(2, 200, "bg", layout);
  mm_.Register(fg);
  mm_.Register(bg);
  mm_.set_foreground_uid(100);
  mm_.set_victim_filter([this](const AddressSpace& space, const PageInfo&) {
    return space.uid() == mm_.foreground_uid();
  });
  for (uint32_t vpn = 0; vpn < 800; ++vpn) {
    mm_.Access(fg, vpn, false, nullptr);
  }
  for (uint32_t vpn = 0; vpn < 800; ++vpn) {
    mm_.Access(bg, vpn, false, nullptr);
  }
  for (int i = 0; i < 50; ++i) {
    mm_.KswapdBatch();
  }
  EXPECT_EQ(fg.total_evictions, 0u);
  EXPECT_GT(bg.total_evictions, 0u);
  mm_.Release(fg);
  mm_.Release(bg);
}

}  // namespace
}  // namespace ice
