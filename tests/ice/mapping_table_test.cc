#include "src/ice/mapping_table.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

TEST(MappingTable, AddAndFind) {
  MappingTable table;
  EXPECT_TRUE(table.AddApp(10001));
  EXPECT_TRUE(table.AddProcess(10001, 100, 0));
  EXPECT_TRUE(table.AddProcess(10001, 101, 0));
  const MappingTable::AppEntry* e = table.Find(10001);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->processes.size(), 2u);
  EXPECT_EQ(table.app_count(), 1u);
}

TEST(MappingTable, UidOfPidResolves) {
  MappingTable table;
  table.AddApp(10001);
  table.AddProcess(10001, 100, 0);
  table.AddApp(10002);
  table.AddProcess(10002, 200, 0);
  EXPECT_EQ(table.UidOfPid(100), 10001);
  EXPECT_EQ(table.UidOfPid(200), 10002);
  EXPECT_EQ(table.UidOfPid(999), kInvalidUid);
}

TEST(MappingTable, AddProcessRequiresApp) {
  MappingTable table;
  EXPECT_FALSE(table.AddProcess(10001, 100, 0));
}

TEST(MappingTable, AddAppIdempotent) {
  MappingTable table;
  EXPECT_TRUE(table.AddApp(10001));
  EXPECT_TRUE(table.AddApp(10001));
  EXPECT_EQ(table.app_count(), 1u);
}

TEST(MappingTable, AddProcessUpdatesScoreOnDuplicate) {
  MappingTable table;
  table.AddApp(10001);
  table.AddProcess(10001, 100, 0);
  table.AddProcess(10001, 100, 900);
  const auto* e = table.Find(10001);
  ASSERT_EQ(e->processes.size(), 1u);
  EXPECT_EQ(e->processes[0].score, 900);
}

TEST(MappingTable, RemoveProcessAndApp) {
  MappingTable table;
  table.AddApp(10001);
  table.AddProcess(10001, 100, 0);
  table.AddProcess(10001, 101, 0);
  EXPECT_TRUE(table.RemoveProcess(10001, 100));
  EXPECT_EQ(table.UidOfPid(100), kInvalidUid);
  EXPECT_FALSE(table.RemoveProcess(10001, 100));
  EXPECT_TRUE(table.RemoveApp(10001));
  EXPECT_EQ(table.Find(10001), nullptr);
  EXPECT_FALSE(table.RemoveApp(10001));
}

TEST(MappingTable, FrozenStateTracked) {
  MappingTable table;
  table.AddApp(10001);
  EXPECT_TRUE(table.SetFrozen(10001, true));
  EXPECT_TRUE(table.Find(10001)->frozen);
  EXPECT_TRUE(table.SetFrozen(10001, false));
  EXPECT_FALSE(table.Find(10001)->frozen);
  EXPECT_FALSE(table.SetFrozen(99999, true));
}

TEST(MappingTable, SetScoreAppliesToAllProcesses) {
  MappingTable table;
  table.AddApp(10001);
  table.AddProcess(10001, 100, 0);
  table.AddProcess(10001, 101, 0);
  table.SetScore(10001, 200);
  for (const auto& p : table.Find(10001)->processes) {
    EXPECT_EQ(p.score, 200);
  }
}

TEST(MappingTable, MemoryAccountingMatchesPaper) {
  // §6.4.1: 20 apps x 3 processes = 20*64B + 20*3*(64+1+64)B = 9020 B
  // (the paper rounds its arithmetic to 13.8 KB with slightly different
  // bookkeeping; the structure of the accounting is what we verify).
  MappingTable table;
  for (int i = 0; i < 20; ++i) {
    table.AddApp(10000 + i);
    for (int p = 0; p < 3; ++p) {
      table.AddProcess(10000 + i, 100 + i * 3 + p, 0);
    }
  }
  size_t expected = 20 * MappingTable::kUidEntryBytes +
                    20 * 3 * MappingTable::kPidEntryBytes;
  EXPECT_EQ(table.MemoryFootprintBytes(), expected);
  EXPECT_LT(table.MemoryFootprintBytes(), MappingTable::kUpperBoundBytes);
}

TEST(MappingTable, UpperBoundEnforced) {
  // §6.4.1: the table is capped at 32 KB for safety.
  MappingTable table;
  int added = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!table.AddApp(10000 + i)) {
      break;
    }
    ++added;
    if (!table.AddProcess(10000 + i, i * 4, 0)) {
      break;
    }
  }
  EXPECT_LT(added, 1000);
  EXPECT_LE(table.MemoryFootprintBytes(), MappingTable::kUpperBoundBytes);
}

TEST(MappingTable, RemovalFreesBudget) {
  MappingTable table;
  int added = 0;
  while (table.AddApp(10000 + added) && table.AddProcess(10000 + added, added, 0)) {
    ++added;
  }
  table.RemoveApp(10000);
  EXPECT_TRUE(table.AddApp(99999));
}

}  // namespace
}  // namespace ice
