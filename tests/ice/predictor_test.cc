#include "src/ice/predictor.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/ice/daemon.h"

namespace ice {
namespace {

TEST(Predictor, EmptyPredictsNothing) {
  AppUsagePredictor p;
  EXPECT_TRUE(p.PredictNext(10001).empty());
  EXPECT_EQ(p.TransitionProbability(10001, 10002), 0.0);
  EXPECT_EQ(p.transitions_recorded(), 0u);
}

TEST(Predictor, LearnsMostLikelySuccessor) {
  AppUsagePredictor p;
  for (int i = 0; i < 5; ++i) {
    p.RecordSwitch(1, 2);
  }
  p.RecordSwitch(1, 3);
  auto next = p.PredictNext(1, 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[0], 2);
  EXPECT_EQ(next[1], 3);
  EXPECT_NEAR(p.TransitionProbability(1, 2), 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(p.TransitionProbability(1, 3), 1.0 / 6.0, 1e-9);
}

TEST(Predictor, IgnoresInvalidAndSelfTransitions) {
  AppUsagePredictor p;
  p.RecordSwitch(kInvalidUid, 2);
  p.RecordSwitch(2, kInvalidUid);
  p.RecordSwitch(2, 2);
  EXPECT_EQ(p.transitions_recorded(), 0u);
}

TEST(Predictor, FanoutBounded) {
  AppUsagePredictor p;
  for (Uid to = 10; to < 20; ++to) {
    p.RecordSwitch(1, to);
  }
  EXPECT_EQ(p.PredictNext(1, 3).size(), 3u);
  EXPECT_EQ(p.PredictNext(1, 100).size(), 10u);
}

TEST(Predictor, DeterministicTieBreak) {
  AppUsagePredictor p;
  p.RecordSwitch(1, 30);
  p.RecordSwitch(1, 20);
  auto next = p.PredictNext(1, 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_EQ(next[0], 20);  // Equal counts: lower uid first.
  EXPECT_EQ(next[1], 30);
}

TEST(Predictor, DaemonLearnsSwitchPattern) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.enable_prediction = true;
  Experiment exp(config);
  auto* daemon = static_cast<IceDaemon*>(&exp.scheme());

  Uid a = exp.UidOf("Twitter");
  Uid b = exp.UidOf("Amazon");
  for (int i = 0; i < 3; ++i) {
    exp.am().Launch(a);
    exp.AwaitInteractive(a);
    exp.am().Launch(b);
    exp.AwaitInteractive(b);
  }
  EXPECT_GT(daemon->predictor().transitions_recorded(), 3u);
  auto next = daemon->predictor().PredictNext(a, 1);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0], b);
}

TEST(Predictor, PreThawsPredictedApp) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.enable_prediction = true;
  Experiment exp(config);
  auto* daemon = static_cast<IceDaemon*>(&exp.scheme());
  (void)daemon;

  Uid a = exp.UidOf("Twitter");
  Uid b = exp.UidOf("Amazon");
  // Teach the pattern a -> b.
  for (int i = 0; i < 3; ++i) {
    exp.am().Launch(a);
    exp.AwaitInteractive(a);
    exp.am().Launch(b);
    exp.AwaitInteractive(b);
  }
  // Freeze b while it is cached, then switch to a: prediction must pre-thaw b.
  exp.am().Launch(a);
  exp.AwaitInteractive(a);
  App* app_b = exp.am().FindApp(b);
  ASSERT_TRUE(app_b->running());
  exp.freezer().FreezeApp(*app_b);
  ASSERT_TRUE(app_b->frozen());

  exp.am().Launch(a);  // Re-assert FG a; listener fires on... already FG.
  // Trigger via a fresh switch: go b? No — switch to a different app first.
  Uid c = exp.UidOf("Chrome");
  exp.am().Launch(c);
  exp.AwaitInteractive(c);
  exp.am().Launch(a);  // FG = a again: predicted next = b: pre-thaw.
  EXPECT_FALSE(app_b->frozen());
}

}  // namespace
}  // namespace ice
