// MDT: Eq. 1 freezing intensity and the freeze/thaw heartbeat.
#include "src/ice/mdt.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/ice/daemon.h"

namespace ice {
namespace {

TEST(MdtEquation, RIncreasesWithPressure) {
  // Build a small system and squeeze memory to watch R grow (Eq. 1:
  // R = delta * 2^ceil(Hwm / Sam)).
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());
  Mdt& mdt = daemon->mdt();

  double r_idle = mdt.CurrentR();
  // Fill memory with cached apps.
  exp.CacheBackgroundApps(8);
  double r_pressured = mdt.CurrentR();
  EXPECT_GE(r_pressured, r_idle);
  EXPECT_GE(r_idle, daemon->config().delta * 2);  // Exponent >= 1.
}

TEST(MdtEquation, FreezeDurationClamped) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.min_freeze = Sec(2);
  config.ice.max_freeze = Sec(30);
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());
  SimDuration ef = daemon->mdt().CurrentFreezeDuration();
  EXPECT_GE(ef, Sec(2));
  EXPECT_LE(ef, Sec(30));
}

TEST(MdtHeartbeat, FrozenAppsThawPeriodicallyAndRefreeze) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.max_freeze = Sec(16);  // Keep the test fast.
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());

  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  App* app = exp.am().FindApp(uid);
  exp.mm().ReclaimAllOf(exp.am().main_process(uid)->space());
  exp.engine().RunFor(Sec(30));
  ASSERT_TRUE(app->frozen()) << "RPF should have frozen the refaulting app";
  ASSERT_TRUE(daemon->mdt().managing(uid));

  // Over a few epochs the app must be thawed (gets a chance to run) and
  // frozen again.
  uint64_t thaws_before = exp.freezer().thaw_count();
  exp.engine().RunFor(Sec(60));
  EXPECT_GT(exp.freezer().thaw_count(), thaws_before);
  EXPECT_GT(daemon->mdt().epochs(), 1u);
  // App ran during thaw periods:
  EXPECT_GT(app->cpu_time_us, 0u);
}

TEST(MdtHeartbeat, ForegroundLaunchUnmanages) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());

  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  App* app = exp.am().FindApp(uid);
  exp.mm().ReclaimAllOf(exp.am().main_process(uid)->space());
  exp.engine().RunFor(Sec(30));
  ASSERT_TRUE(daemon->mdt().managing(uid));

  // Thaw-on-launch: switching the app to FG thaws it and stops managing it.
  exp.am().Launch(uid);
  EXPECT_FALSE(app->frozen());
  EXPECT_FALSE(daemon->mdt().managing(uid));
  exp.AwaitInteractive(uid);
  // It stays thawed while foreground.
  exp.engine().RunFor(Sec(30));
  EXPECT_FALSE(app->frozen());
}

TEST(MdtHeartbeat, DeathUnmanages) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());

  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  App* app = exp.am().FindApp(uid);
  exp.mm().ReclaimAllOf(exp.am().main_process(uid)->space());
  exp.engine().RunFor(Sec(30));
  ASSERT_TRUE(daemon->mdt().managing(uid));
  exp.am().KillApp(*app);
  EXPECT_FALSE(daemon->mdt().managing(uid));
  EXPECT_EQ(daemon->mapping_table().Find(uid), nullptr);
}

// Regression for the unclamped double->int64 cast: an extreme delta makes
// R * E_t overflow int64 range, which is UB when cast before clamping. The
// clamp must happen in double space, landing exactly on max_freeze.
TEST(MdtEquation, ExtremeDeltaClampsToMaxFreezeWithoutOverflow) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.delta = 1e18;
  config.ice.min_freeze = Sec(1);
  config.ice.max_freeze = Sec(64);
  Experiment exp(config);
  Mdt& mdt = static_cast<IceDaemon*>(&exp.scheme())->mdt();
  EXPECT_EQ(mdt.CurrentFreezeDuration(), Sec(64));
  // Still exact under memory pressure (bigger exponent).
  exp.CacheBackgroundApps(8);
  EXPECT_EQ(mdt.CurrentFreezeDuration(), Sec(64));
}

TEST(MdtEquation, ZeroDeltaClampsToMinFreeze) {
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.delta = 0.0;
  config.ice.min_freeze = Sec(2);
  Experiment exp(config);
  Mdt& mdt = static_cast<IceDaemon*>(&exp.scheme())->mdt();
  EXPECT_EQ(mdt.CurrentR(), 0.0);
  EXPECT_EQ(mdt.CurrentFreezeDuration(), Sec(2));
}

TEST(MdtEquation, DeltaScalesR) {
  ExperimentConfig a;
  a.seed = 3;
  a.scheme = "ice";
  a.ice.delta = 2.0;
  Experiment exp_a(a);
  double r_small = static_cast<IceDaemon*>(&exp_a.scheme())->mdt().CurrentR();

  ExperimentConfig b;
  b.seed = 3;
  b.scheme = "ice";
  b.ice.delta = 8.0;
  Experiment exp_b(b);
  double r_big = static_cast<IceDaemon*>(&exp_b.scheme())->mdt().CurrentR();
  EXPECT_NEAR(r_big / r_small, 4.0, 0.01);
}

}  // namespace
}  // namespace ice
