#include "src/ice/whitelist.h"

#include <gtest/gtest.h>

#include "src/proc/app.h"

namespace ice {
namespace {

TEST(Whitelist, AdjThresholdProtects) {
  Whitelist wl(200);
  // §4.4: FG (adj 0) and perceptible (adj 200) apps are protected.
  EXPECT_TRUE(wl.Protects(10001, kAdjForeground));
  EXPECT_TRUE(wl.Protects(10001, kAdjPerceptible));
  EXPECT_FALSE(wl.Protects(10001, kAdjPerceptible + 1));
  EXPECT_FALSE(wl.Protects(10001, kAdjCachedBase));
}

TEST(Whitelist, ManualPinsProtectRegardlessOfAdj) {
  Whitelist wl(200);
  wl.AddManual(10042);  // Vendor-pinned antivirus.
  EXPECT_TRUE(wl.Protects(10042, 950));
  EXPECT_TRUE(wl.IsManual(10042));
  EXPECT_EQ(wl.manual_size(), 1u);
  wl.RemoveManual(10042);
  EXPECT_FALSE(wl.Protects(10042, 950));
}

TEST(Whitelist, ThresholdConfigurable) {
  Whitelist strict(0);  // Only the foreground app protected.
  EXPECT_TRUE(strict.Protects(1, 0));
  EXPECT_FALSE(strict.Protects(1, 200));
  EXPECT_EQ(strict.adj_threshold(), 0);
}

}  // namespace
}  // namespace ice
