#include "src/ice/procfs.h"

#include <gtest/gtest.h>

namespace ice {
namespace {

class ProcFsTest : public ::testing::Test {
 protected:
  MappingTable table_;
  IceProcFs fs_{table_};
};

TEST_F(ProcFsTest, AddAndProc) {
  EXPECT_TRUE(fs_.Write("ADD 10001"));
  EXPECT_TRUE(fs_.Write("PROC 10001 211 900"));
  EXPECT_TRUE(fs_.Write("PROC 10001 212 900"));
  const auto* e = table_.Find(10001);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->processes.size(), 2u);
  EXPECT_EQ(table_.UidOfPid(211), 10001);
  EXPECT_EQ(fs_.writes_applied(), 3u);
}

TEST_F(ProcFsTest, AdjUpdatesAllProcesses) {
  fs_.Write("ADD 10001");
  fs_.Write("PROC 10001 211 0");
  fs_.Write("PROC 10001 212 0");
  EXPECT_TRUE(fs_.Write("ADJ 10001 200"));
  for (const auto& p : table_.Find(10001)->processes) {
    EXPECT_EQ(p.score, 200);
  }
}

TEST_F(ProcFsTest, FreezeStateRoundTrip) {
  fs_.Write("ADD 10001");
  EXPECT_TRUE(fs_.Write("FREEZE 10001 1"));
  EXPECT_TRUE(table_.Find(10001)->frozen);
  EXPECT_TRUE(fs_.Write("FREEZE 10001 0"));
  EXPECT_FALSE(table_.Find(10001)->frozen);
}

TEST_F(ProcFsTest, ExitAndDel) {
  fs_.Write("ADD 10001");
  fs_.Write("PROC 10001 211 900");
  EXPECT_TRUE(fs_.Write("EXIT 10001 211"));
  EXPECT_EQ(table_.UidOfPid(211), kInvalidUid);
  EXPECT_TRUE(fs_.Write("DEL 10001"));
  EXPECT_EQ(table_.Find(10001), nullptr);
}

TEST_F(ProcFsTest, MalformedRecordsRejected) {
  EXPECT_FALSE(fs_.Write(""));
  EXPECT_FALSE(fs_.Write("NOPE 1 2"));
  EXPECT_FALSE(fs_.Write("ADD"));
  EXPECT_FALSE(fs_.Write("PROC 10001"));
  EXPECT_FALSE(fs_.Write("FREEZE 10001"));
  EXPECT_EQ(fs_.writes_applied(), 0u);
  EXPECT_EQ(fs_.writes_rejected(), 5u);
  EXPECT_EQ(table_.app_count(), 0u);
}

TEST_F(ProcFsTest, OperationsOnUnknownUidRejected) {
  EXPECT_FALSE(fs_.Write("PROC 999 1 0"));
  EXPECT_FALSE(fs_.Write("DEL 999"));
  EXPECT_FALSE(fs_.Write("ADJ 999 0"));
  EXPECT_FALSE(fs_.Write("FREEZE 999 1"));
}

TEST_F(ProcFsTest, ReadRendersTable) {
  fs_.Write("ADD 10001");
  fs_.Write("PROC 10001 211 900");
  fs_.Write("FREEZE 10001 1");
  fs_.Write("ADD 10002");
  std::string out = fs_.Read();
  EXPECT_NE(out.find("10001 1 211:900"), std::string::npos);
  EXPECT_NE(out.find("10002 0"), std::string::npos);
}

TEST_F(ProcFsTest, TableBoundSurfacesAsRejectedWrite) {
  int added = 0;
  while (fs_.Write("ADD " + std::to_string(20000 + added))) {
    ++added;
  }
  EXPECT_GT(added, 100);
  EXPECT_GT(fs_.writes_rejected(), 0u);
  EXPECT_LE(table_.MemoryFootprintBytes(), MappingTable::kUpperBoundBytes);
}

}  // namespace
}  // namespace ice
