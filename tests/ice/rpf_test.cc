// RPF behavior on a full system: refault events freeze the offending app at
// application granularity, with kernel/service/whitelist sifting.
#include "src/ice/rpf.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/ice/daemon.h"

namespace ice {
namespace {

class RpfTest : public ::testing::Test {
 protected:
  RpfTest() {
    ExperimentConfig config;
    config.seed = 3;
    config.scheme = "ice";
    exp_ = std::make_unique<Experiment>(config);
    daemon_ = static_cast<IceDaemon*>(&exp_->scheme());
  }

  // Launches an app, backgrounds it, and evicts all its pages so its next BG
  // activity refaults.
  App* PrepareRefaultingBgApp(const std::string& package) {
    Uid uid = exp_->UidOf(package);
    exp_->am().Launch(uid);
    exp_->AwaitInteractive(uid);
    exp_->am().MoveForegroundToBackground();
    App* app = exp_->am().FindApp(uid);
    exp_->mm().ReclaimAllOf(exp_->am().main_process(uid)->space());
    return app;
  }

  std::unique_ptr<Experiment> exp_;
  IceDaemon* daemon_;
};

TEST_F(RpfTest, BgRefaultTriggersApplicationGrainFreeze) {
  App* app = PrepareRefaultingBgApp("Twitter");
  ASSERT_FALSE(app->frozen());
  // Let the app's BG activity run: it will touch evicted pages and refault.
  exp_->engine().RunFor(Sec(30));
  EXPECT_TRUE(app->frozen());
  EXPECT_GE(daemon_->rpf().freezes_triggered(), 1u);
  // Application granularity: every process of the app is frozen.
  for (Process* p : app->processes()) {
    for (Task* t : p->tasks()) {
      EXPECT_TRUE(t->frozen() || t->state() == TaskState::kBlocked);
    }
  }
  EXPECT_TRUE(daemon_->mdt().managing(app->uid()));
  EXPECT_TRUE(daemon_->mapping_table().Find(app->uid())->frozen);
}

TEST_F(RpfTest, ForegroundRefaultsDoNotFreeze) {
  Uid uid = exp_->UidOf("TikTok");
  exp_->am().Launch(uid);
  exp_->AwaitInteractive(uid);
  App* app = exp_->am().FindApp(uid);
  // Evict everything, then let the FG app fault its pages back.
  exp_->mm().ReclaimAllOf(exp_->am().main_process(uid)->space());
  Scenario scenario(exp_->am(), uid, ScenarioKind::kShortVideo, Rng(5));
  exp_->choreographer().SetSource(&scenario);
  exp_->choreographer().Start();
  exp_->engine().RunFor(Sec(10));
  exp_->choreographer().SetSource(nullptr);
  EXPECT_FALSE(app->frozen());
  EXPECT_GT(daemon_->rpf().events_foreground(), 0u);
}

TEST_F(RpfTest, PerceptibleAppsAreWhitelisted) {
  // Skype is perceptible in BG (adj 200): protected by the whitelist.
  App* app = PrepareRefaultingBgApp("Skype");
  ASSERT_EQ(app->oom_adj(), kAdjPerceptible);
  exp_->engine().RunFor(Sec(30));
  EXPECT_FALSE(app->frozen());
  EXPECT_GT(daemon_->rpf().events_sifted(), 0u);
}

TEST_F(RpfTest, ManualWhitelistProtects) {
  Uid uid = exp_->UidOf("Twitter");
  daemon_->whitelist().AddManual(uid);
  App* app = PrepareRefaultingBgApp("Twitter");
  exp_->engine().RunFor(Sec(30));
  EXPECT_FALSE(app->frozen());
}

TEST_F(RpfTest, EventsSeenCounted) {
  PrepareRefaultingBgApp("Twitter");
  exp_->engine().RunFor(Sec(30));
  EXPECT_GT(daemon_->rpf().events_seen(), 0u);
}

TEST_F(RpfTest, SingleProcessGrainLeavesSiblingRunning) {
  // Ablation: application_grain = false freezes only the faulting process.
  ExperimentConfig config;
  config.seed = 3;
  config.scheme = "ice";
  config.ice.application_grain = false;
  Experiment exp(config);
  IceDaemon* daemon = static_cast<IceDaemon*>(&exp.scheme());

  Uid uid = exp.UidOf("Twitter");
  exp.am().Launch(uid);
  exp.AwaitInteractive(uid);
  exp.am().MoveForegroundToBackground();
  App* app = exp.am().FindApp(uid);
  // Evict only the main process: its BG work refaults; the service process
  // stays untouched and must keep running after the freeze.
  exp.mm().ReclaimAllOf(exp.am().main_process(uid)->space());
  exp.engine().RunFor(Sec(30));
  if (daemon->rpf().freezes_triggered() > 0) {
    Process* svc = app->processes()[1];
    bool any_svc_unfrozen = false;
    for (Task* t : svc->tasks()) {
      if (!t->frozen()) {
        any_svc_unfrozen = true;
      }
    }
    EXPECT_TRUE(any_svc_unfrozen);
  }
}

}  // namespace
}  // namespace ice
