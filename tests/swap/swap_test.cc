// The swap policy axis: PageInfo hotness/dense bit-packing, SwapGovernor
// decision logic, and the MemoryManager integration — tiered stores, refault
// boosts, hot-rejection, pool writeback, the SWAM-style pressure signal, and
// snapshot round-tripping of all of it.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/binary_stream.h"
#include "src/mem/memory_manager.h"
#include "src/swap/governor.h"
#include "src/swap/swap_policy.h"

namespace ice {
namespace {

// The flag word is full (state:3 | kind:2 | dirty | referenced | active |
// linked | generation:3 | hotness:3 | zram_dense): adding the swap bits must
// not have grown the record past its two-per-cache-line budget.
static_assert(sizeof(PageInfo) == 32, "PageInfo must stay exactly 32 bytes");
static_assert(alignof(PageInfo) == 32);

AddressSpaceLayout AnonLayout(PageCount pages) {
  AddressSpaceLayout layout;
  layout.native_pages = pages;
  return layout;
}

SwapConfig HotnessConfig() {
  SwapConfig config;
  config.policy = SwapPolicy::kHotness;
  return config;
}

// ---- PageInfo bit-packing ---------------------------------------------------

TEST(PageBits, HotnessCannotClobberNeighbours) {
  PageInfo p;
  p.zram_bytes = 0xdeadbeef;
  p.evict_cookie = 0x1234567890abcdefull;
  p.set_state(PageState::kInZram);
  p.set_kind(HeapKind::kNativeHeap);
  p.set_dirty(true);
  p.set_referenced(true);
  p.set_active(true);
  p.set_lru_linked(true);
  p.set_generation(5);

  for (uint8_t h = 0; h <= 7; ++h) {
    p.set_hotness(h);
    EXPECT_EQ(p.hotness(), h);
    EXPECT_EQ(p.generation(), 5);
    EXPECT_EQ(p.zram_bytes, 0xdeadbeefu);
    EXPECT_EQ(p.evict_cookie, 0x1234567890abcdefull);
    EXPECT_EQ(p.state(), PageState::kInZram);
    EXPECT_EQ(p.kind(), HeapKind::kNativeHeap);
    EXPECT_TRUE(p.dirty());
    EXPECT_TRUE(p.referenced());
    EXPECT_TRUE(p.active());
    EXPECT_TRUE(p.lru_linked());
    EXPECT_FALSE(p.zram_dense());
  }
  // Out-of-range values are masked to the 3-bit field, not smeared into the
  // dense bit above it.
  p.set_hotness(0xff);
  EXPECT_EQ(p.hotness(), 7);
  EXPECT_FALSE(p.zram_dense());
}

TEST(PageBits, DenseBitIndependentOfHotnessAndGeneration) {
  PageInfo p;
  p.set_zram_dense(true);
  EXPECT_TRUE(p.zram_dense());
  EXPECT_EQ(p.hotness(), 0);
  p.set_hotness(7);
  p.set_generation(7);
  EXPECT_TRUE(p.zram_dense());
  p.set_zram_dense(false);
  EXPECT_EQ(p.hotness(), 7);
  EXPECT_EQ(p.generation(), 7);
  EXPECT_FALSE(p.zram_dense());
}

// ---- SwapGovernor -----------------------------------------------------------

TEST(SwapGovernor, BaselineIsInert) {
  SwapGovernor gov{SwapConfig{}};
  EXPECT_FALSE(gov.enabled());
  PageInfo p;
  p.set_hotness(7);
  EXPECT_FALSE(gov.ShouldReject(p));
}

TEST(SwapGovernor, AdmissionGateAndTierSelection) {
  SwapGovernor gov(HotnessConfig());
  ASSERT_TRUE(gov.enabled());
  PageInfo p;
  for (uint8_t h = 0; h <= 7; ++h) {
    p.set_hotness(h);
    EXPECT_EQ(gov.ShouldReject(p), h >= gov.config().hot_reject_threshold);
    EXPECT_EQ(gov.UseDenseTier(p), h < gov.config().fast_tier_min_hotness);
  }
  EXPECT_EQ(gov.TierFor(true).compress_us, gov.config().dense.compress_us);
  EXPECT_EQ(gov.TierFor(false).compress_us, gov.config().fast.compress_us);
  p.set_zram_dense(true);
  EXPECT_EQ(gov.DecompressCost(p), gov.config().dense.decompress_us);
  p.set_zram_dense(false);
  EXPECT_EQ(gov.DecompressCost(p), gov.config().fast.decompress_us);
}

TEST(SwapGovernor, StoreDecaysHotnessAndQueuesForWriteback) {
  SwapGovernor gov(HotnessConfig());
  PageInfo p;
  p.set_hotness(5);
  p.zram_bytes = 1400;
  gov.OnStored(&p, /*handle=*/42);
  EXPECT_EQ(p.hotness(), 2);
  EXPECT_EQ(gov.writeback_queue_depth(), 1u);
  EXPECT_EQ(gov.compressed_bytes().count(), 1u);
  EXPECT_DOUBLE_EQ(gov.compressed_bytes().Sum(), 1400.0);
  uint64_t handle = 0;
  ASSERT_TRUE(gov.PopWritebackCandidate(&handle));
  EXPECT_EQ(handle, 42u);
  EXPECT_FALSE(gov.PopWritebackCandidate(&handle));
}

TEST(SwapGovernor, RefaultBoostSaturatesAndRejectCools) {
  SwapGovernor gov(HotnessConfig());
  PageInfo p;
  gov.OnRefault(&p);
  EXPECT_EQ(p.hotness(), gov.config().refault_hotness_boost);
  p.set_hotness(6);
  gov.OnRefault(&p);
  EXPECT_EQ(p.hotness(), 7);  // Saturates at the 3-bit ceiling.
  gov.OnRejected(&p);
  EXPECT_EQ(p.hotness(), 6);
  p.set_hotness(0);
  gov.OnRejected(&p);
  EXPECT_EQ(p.hotness(), 0);  // Floor, no wrap.
}

// The default tuning contract: a page that refaults after every store
// follows h -> floor(h/2) + boost, and that trajectory must cross the
// rejection threshold — otherwise the admission gate is dead config.
TEST(SwapGovernor, PersistentThrasherReachesRejectThreshold) {
  SwapGovernor gov(HotnessConfig());
  PageInfo p;
  bool rejected = false;
  for (int cycle = 0; cycle < 10 && !rejected; ++cycle) {
    gov.OnRefault(&p);  // The page comes back immediately...
    if (gov.ShouldReject(p)) {
      rejected = true;
      break;
    }
    gov.OnStored(&p, /*handle=*/0);  // ...and is evicted again.
  }
  EXPECT_TRUE(rejected) << "threshold unreachable under the decay schedule";
}

TEST(SwapGovernor, SaveRestoreRoundTrip) {
  SwapGovernor gov(HotnessConfig());
  PageInfo p;
  p.zram_bytes = 900;
  gov.OnStored(&p, 7);
  p.zram_bytes = 2100;
  gov.OnStored(&p, 11);
  BinaryWriter w;
  gov.SaveTo(w);
  std::vector<uint8_t> buf = w.Finish();

  SwapGovernor restored(HotnessConfig());
  BinaryReader r(buf);
  restored.RestoreFrom(r);
  EXPECT_EQ(restored.writeback_queue_depth(), 2u);
  EXPECT_EQ(restored.compressed_bytes().count(), 2u);
  EXPECT_DOUBLE_EQ(restored.compressed_bytes().Sum(), 3000.0);
  uint64_t handle = 0;
  ASSERT_TRUE(restored.PopWritebackCandidate(&handle));
  EXPECT_EQ(handle, 7u);  // FIFO order survives the round trip.
  ASSERT_TRUE(restored.PopWritebackCandidate(&handle));
  EXPECT_EQ(handle, 11u);
}

// ---- MemoryManager integration ----------------------------------------------

MemConfig HotnessMemConfig() {
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.zram.capacity_bytes = 8 * kMiB;
  config.reclaim_contention_mean = 0;  // Deterministic fault costs.
  config.swap.policy = SwapPolicy::kHotness;
  return config;
}

TEST(SwapMm, ColdPagesTakeDenseTierAndRefaultBoosts) {
  Engine engine(1);
  MemConfig config = HotnessMemConfig();
  MemoryManager mm(engine, config, nullptr);
  AddressSpace space(1, 1, "a", AnonLayout(100));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 100; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  ReclaimResult r = mm.ReclaimAllOf(space);
  ASSERT_EQ(r.reclaimed, 100u);
  // Every victim was cold (hotness 0): all dense-tier, and the dense bit is
  // set on the compressed copy.
  EXPECT_EQ(engine.stats().Get(stat::kSwapStoresDense), 100u);
  EXPECT_EQ(engine.stats().Get(stat::kSwapStoresFast), 0u);
  EXPECT_TRUE(space.page(0).zram_dense());
  // The dense eviction charged the dense codec, not the device default.
  EXPECT_EQ(mm.swap_governor().compressed_bytes().count(), 100u);

  // Refault: charged the *dense* decompress cost, boosted, dense bit cleared.
  AccessOutcome out = mm.Access(space, 0, false, nullptr);
  EXPECT_EQ(out.kind, AccessOutcome::Kind::kZramFault);
  EXPECT_EQ(out.cpu_us, config.fault_fixed_cost + config.swap.dense.decompress_us);
  EXPECT_EQ(space.page(0).hotness(), config.swap.refault_hotness_boost);
  EXPECT_FALSE(space.page(0).zram_dense());

  // Now warm enough for the fast tier: re-evicting stores fast, and the next
  // refault is charged the fast decompress cost.
  ASSERT_GE(space.page(0).hotness(), config.swap.fast_tier_min_hotness);
  mm.ReclaimAllOf(space);
  EXPECT_EQ(engine.stats().Get(stat::kSwapStoresFast), 1u);
  out = mm.Access(space, 0, false, nullptr);
  EXPECT_EQ(out.cpu_us, config.fault_fixed_cost + config.swap.fast.decompress_us);
  mm.Release(space);
}

TEST(SwapMm, HotPagesAreRejectedAndCooled) {
  Engine engine(2);
  MemoryManager mm(engine, HotnessMemConfig(), nullptr);
  AddressSpace space(1, 1, "a", AnonLayout(10));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 10; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  space.page(3).set_hotness(6);  // Above the default threshold of 5.
  ReclaimResult r = mm.ReclaimAllOf(space);
  EXPECT_EQ(r.reclaimed, 9u);
  EXPECT_EQ(space.page(3).state(), PageState::kPresent);
  EXPECT_EQ(space.page(3).hotness(), 5);  // Cooled by the rejection.
  EXPECT_EQ(engine.stats().Get(stat::kSwapRejectsHot), 1u);
  mm.Release(space);
}

TEST(SwapMm, BaselineNeverRejectsHotPages) {
  Engine engine(3);
  MemConfig config = HotnessMemConfig();
  config.swap.policy = SwapPolicy::kBaseline;
  MemoryManager mm(engine, config, nullptr);
  AddressSpace space(1, 1, "a", AnonLayout(10));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 10; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  space.page(3).set_hotness(7);
  ReclaimResult r = mm.ReclaimAllOf(space);
  EXPECT_EQ(r.reclaimed, 10u);
  EXPECT_EQ(engine.stats().Get(stat::kSwapRejectsHot), 0u);
  EXPECT_EQ(engine.stats().Get(stat::kSwapStoresDense), 0u);
  EXPECT_EQ(mm.swap_governor().compressed_bytes().count(), 0u);
  EXPECT_DOUBLE_EQ(mm.SwapPressure(), 0.0);
  mm.Release(space);
}

TEST(SwapMm, WritebackDrainsFullPoolAndPressureSignals) {
  Engine engine(4);
  MemConfig config = HotnessMemConfig();
  config.zram.capacity_bytes = 16 * 1024;  // ~11 compressed pages.
  // Anon-only memory large enough to hold free below the high watermark.
  MemoryManager mm(engine, config, nullptr);
  AddressSpace space(1, 1, "a", AnonLayout(1700));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1700; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  // Fill the pool until a store fails: the capacity reject pins the
  // SWAM-style pressure signal at 1.0.
  mm.ReclaimAllOf(space);
  ASSERT_GT(engine.stats().Get(stat::kZramRejects), 0u);
  EXPECT_DOUBLE_EQ(mm.SwapPressure(), 1.0);
  ASSERT_FALSE(mm.zram().HasRoom());

  // The next batch self-cleans: FIFO-oldest compressed pages are written
  // back to flash, reopening the pool.
  uint64_t in_zram_before = mm.zram().stored_pages();
  ReclaimResult r = mm.KswapdBatch();
  uint64_t written = engine.stats().Get(stat::kSwapWritebackPages);
  EXPECT_GT(written, 0u);
  EXPECT_LE(written, config.swap.writeback_batch);
  EXPECT_LT(mm.zram().stored_pages(), in_zram_before + r.reclaimed_anon);
  // Written-back pages moved to flash; their dense bit is gone.
  uint64_t on_flash = 0;
  for (uint32_t vpn = 0; vpn < 1700; ++vpn) {
    if (space.page(vpn).state() == PageState::kOnFlash) {
      EXPECT_FALSE(space.page(vpn).zram_dense());
      ++on_flash;
    }
  }
  EXPECT_GE(on_flash, written);
  mm.Release(space);
}

TEST(SwapMm, SnapshotRoundTripPreservesHotnessState) {
  Engine engine(5);
  MemConfig config = HotnessMemConfig();
  MemoryManager mm(engine, config, nullptr);
  AddressSpace space(1, 1, "a", AnonLayout(60));
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 60; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  mm.ReclaimAllOf(space);
  // Refault a few pages so hotness, dense bits and the FIFO diverge from
  // their defaults.
  for (uint32_t vpn = 0; vpn < 10; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  mm.ReclaimAllOf(space);
  BinaryWriter w;
  mm.SaveTo(w);
  std::vector<uint8_t> buf = w.Finish();

  Engine engine2(5);
  MemoryManager mm2(engine2, config, nullptr);
  AddressSpace space2(1, 1, "a", AnonLayout(60));
  mm2.Register(space2);
  BinaryReader r(buf);
  mm2.RestoreFrom(r);

  for (uint32_t vpn = 0; vpn < 60; ++vpn) {
    EXPECT_EQ(space2.page(vpn).hotness(), space.page(vpn).hotness()) << vpn;
    EXPECT_EQ(space2.page(vpn).zram_dense(), space.page(vpn).zram_dense()) << vpn;
    EXPECT_EQ(space2.page(vpn).state(), space.page(vpn).state()) << vpn;
  }
  EXPECT_EQ(mm2.swap_governor().writeback_queue_depth(),
            mm.swap_governor().writeback_queue_depth());
  EXPECT_EQ(mm2.swap_governor().compressed_bytes().count(),
            mm.swap_governor().compressed_bytes().count());
  EXPECT_DOUBLE_EQ(mm2.swap_governor().compressed_bytes().Sum(),
                   mm.swap_governor().compressed_bytes().Sum());
  EXPECT_DOUBLE_EQ(mm2.SwapPressure(), mm.SwapPressure());
  mm.Release(space);
  mm2.Release(space2);
}

}  // namespace
}  // namespace ice
