#include "src/android/choreographer.h"

#include <gtest/gtest.h>

#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

AppDescriptor SmallApp() {
  AppDescriptor d;
  d.package = "app";
  d.java_pages = 400;
  d.native_pages = 600;
  d.file_pages = 800;
  d.service_pages = 50;
  d.cold_launch_cpu = Ms(30);
  return d;
}

// Produces frames of a fixed CPU cost.
class FixedFrameSource : public FrameSource {
 public:
  explicit FixedFrameSource(SimDuration cost) : cost_(cost) {}
  std::optional<FrameWork> NextFrame(SimTime) override {
    ++frames_asked;
    FrameWork w;
    w.compute_us = cost_;
    return w;
  }
  int frames_asked = 0;

 private:
  SimDuration cost_;
};

class ChoreographerTest : public ::testing::Test {
 protected:
  ChoreographerTest()
      : storage_(engine_, Ufs21Profile()),
        mm_(engine_, MemConfig{}, &storage_),
        sched_(engine_, mm_, 4),
        freezer_(engine_),
        am_(engine_, sched_, mm_, freezer_),
        chor_(am_) {
    app_ = am_.Install(SmallApp());
    am_.Launch(app_->uid());
    engine_.RunFor(Sec(2));
  }

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
  Scheduler sched_;
  Freezer freezer_;
  ActivityManager am_;
  Choreographer chor_;
  App* app_;
};

TEST_F(ChoreographerTest, FastFramesReach60Fps) {
  FixedFrameSource source(Ms(5));
  chor_.SetSource(&source);
  chor_.Start();
  SimTime begin = engine_.now();
  engine_.RunFor(Sec(5));
  double fps = chor_.stats().AverageFps(begin, engine_.now());
  EXPECT_NEAR(fps, 60.0, 3.0);
  EXPECT_LT(chor_.stats().Ria(), 0.05);
  EXPECT_EQ(chor_.stats().frames_dropped(), 0u);
}

TEST_F(ChoreographerTest, SlowFramesDropVsyncs) {
  FixedFrameSource source(Ms(40));  // Spans ~2.4 vsyncs.
  chor_.SetSource(&source);
  chor_.Start();
  SimTime begin = engine_.now();
  engine_.RunFor(Sec(5));
  double fps = chor_.stats().AverageFps(begin, engine_.now());
  EXPECT_LT(fps, 30.0);
  EXPECT_GT(fps, 14.0);
  EXPECT_GT(chor_.stats().frames_dropped(), 50u);
  EXPECT_GT(chor_.stats().Ria(), 0.9);
}

TEST_F(ChoreographerTest, NoSourceNoFrames) {
  chor_.Start();
  engine_.RunFor(Sec(1));
  EXPECT_EQ(chor_.stats().frames_completed(), 0u);
}

TEST_F(ChoreographerTest, NoForegroundNoFrames) {
  FixedFrameSource source(Ms(5));
  chor_.SetSource(&source);
  chor_.Start();
  am_.MoveForegroundToBackground();
  engine_.RunFor(Sec(1));
  EXPECT_EQ(source.frames_asked, 0);
}

TEST_F(ChoreographerTest, StatsClearable) {
  FixedFrameSource source(Ms(5));
  chor_.SetSource(&source);
  chor_.Start();
  engine_.RunFor(Sec(1));
  EXPECT_GT(chor_.stats().frames_completed(), 0u);
  chor_.stats().Clear();
  EXPECT_EQ(chor_.stats().frames_completed(), 0u);
}

TEST_F(ChoreographerTest, FpsSeriesHasPerSecondGranularity) {
  FixedFrameSource source(Ms(5));
  chor_.SetSource(&source);
  chor_.Start();
  SimTime begin = engine_.now();
  engine_.RunFor(Sec(3));
  auto series = chor_.stats().FpsPerSecond(begin, engine_.now());
  ASSERT_EQ(series.size(), 3u);
  for (double f : series) {
    EXPECT_NEAR(f, 60.0, 4.0);
  }
}

TEST(FrameStats, RiaCountsOnlyLateCompleted) {
  FrameStats stats;
  stats.RecordFrame(0, Ms(10));            // On time.
  stats.RecordFrame(Ms(20), Ms(40));       // Late (20 ms).
  stats.RecordDropped(Ms(50));             // Dropped: not in RIA.
  EXPECT_DOUBLE_EQ(stats.Ria(), 0.5);
  EXPECT_EQ(stats.frames_dropped(), 1u);
}

TEST(FrameStats, AverageFpsWindowed) {
  FrameStats stats;
  for (int i = 0; i < 30; ++i) {
    stats.RecordFrame(i * Ms(33), i * Ms(33) + Ms(10));
  }
  // 30 frames over ~1 s.
  EXPECT_NEAR(stats.AverageFps(0, Sec(1)), 30.0, 1.0);
  // Nothing in a later window.
  EXPECT_DOUBLE_EQ(stats.AverageFps(Sec(10), Sec(11)), 0.0);
}

}  // namespace
}  // namespace ice
