#include "src/android/activity_manager.h"

#include <gtest/gtest.h>

#include "src/android/device_profile.h"
#include "src/proc/task.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

AppDescriptor SmallApp(const std::string& package, bool perceptible = false) {
  AppDescriptor d;
  d.package = package;
  d.java_pages = 400;
  d.native_pages = 600;
  d.file_pages = 800;
  d.service_pages = 100;
  d.cold_launch_cpu = Ms(50);
  d.hot_launch_cpu = Ms(5);
  d.perceptible_in_bg = perceptible;
  return d;
}

class AmTest : public ::testing::Test {
 protected:
  AmTest()
      : storage_(engine_, Ufs21Profile()),
        mm_(engine_, MemConfig{}, &storage_),
        sched_(engine_, mm_, 4),
        freezer_(engine_),
        am_(engine_, sched_, mm_, freezer_) {}

  App* InstallAndLaunch(const std::string& package) {
    App* app = am_.Install(SmallApp(package));
    am_.Launch(app->uid());
    engine_.RunFor(Sec(2));
    return app;
  }

  Engine engine_{1};
  BlockDevice storage_;
  MemoryManager mm_;
  Scheduler sched_;
  Freezer freezer_;
  ActivityManager am_;
};

TEST_F(AmTest, InstallAssignsUids) {
  App* a = am_.Install(SmallApp("a"));
  App* b = am_.Install(SmallApp("b"));
  EXPECT_NE(a->uid(), b->uid());
  EXPECT_GE(a->uid(), 10000);
  EXPECT_EQ(am_.FindApp(a->uid()), a);
  EXPECT_EQ(am_.FindApp(999999), nullptr);
  EXPECT_FALSE(a->running());
}

TEST_F(AmTest, ColdLaunchCreatesProcessesAndBecomesInteractive) {
  App* app = InstallAndLaunch("a");
  EXPECT_TRUE(app->running());
  EXPECT_EQ(app->processes().size(), 2u);  // Main + service.
  EXPECT_EQ(app->state(), AppState::kForeground);
  EXPECT_EQ(app->oom_adj(), kAdjForeground);
  EXPECT_EQ(am_.foreground_app(), app);
  EXPECT_TRUE(am_.interactive(app->uid()));
  EXPECT_EQ(mm_.foreground_uid(), app->uid());

  ASSERT_EQ(am_.launches().size(), 1u);
  const LaunchRecord& r = am_.launches()[0];
  EXPECT_TRUE(r.cold);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.latency, Ms(10));
  EXPECT_EQ(engine_.stats().Get(stat::kColdLaunches), 1u);
}

TEST_F(AmTest, ColdLaunchPopulatesResidency) {
  App* app = InstallAndLaunch("a");
  AddressSpace* space = am_.main_space(app->uid());
  ASSERT_NE(space, nullptr);
  EXPECT_GT(space->resident(), 500u);  // Prefixes touched.
}

TEST_F(AmTest, SecondLaunchIsHotAndFaster) {
  App* app = InstallAndLaunch("a");
  InstallAndLaunch("b");
  EXPECT_EQ(app->state(), AppState::kCached);

  am_.Launch(app->uid());
  engine_.RunFor(Sec(2));
  ASSERT_EQ(am_.launches().size(), 3u);
  const LaunchRecord& cold = am_.launches()[0];
  const LaunchRecord& hot = am_.launches()[2];
  EXPECT_FALSE(hot.cold);
  EXPECT_TRUE(hot.completed);
  EXPECT_LT(hot.latency, cold.latency);
  EXPECT_EQ(engine_.stats().Get(stat::kHotLaunches), 1u);
}

TEST_F(AmTest, ForegroundSwitchDemotesPrevious) {
  App* a = InstallAndLaunch("a");
  App* b = InstallAndLaunch("b");
  EXPECT_EQ(am_.foreground_app(), b);
  EXPECT_EQ(a->state(), AppState::kCached);
  EXPECT_GE(a->oom_adj(), kAdjCachedBase);
  EXPECT_EQ(mm_.foreground_uid(), b->uid());
}

TEST_F(AmTest, PerceptibleAppsGetAdj200) {
  App* music = am_.Install(SmallApp("music", /*perceptible=*/true));
  am_.Launch(music->uid());
  engine_.RunFor(Sec(2));
  InstallAndLaunch("other");
  EXPECT_EQ(music->state(), AppState::kPerceptible);
  EXPECT_EQ(music->oom_adj(), kAdjPerceptible);
}

TEST_F(AmTest, CachedAdjOrderedByStaleness) {
  App* a = InstallAndLaunch("a");
  App* b = InstallAndLaunch("b");
  App* c = InstallAndLaunch("c");
  EXPECT_EQ(c->state(), AppState::kForeground);
  // a was foregrounded before b: staler => higher adj.
  EXPECT_GT(a->oom_adj(), b->oom_adj());
  EXPECT_GE(b->oom_adj(), kAdjCachedBase);
}

TEST_F(AmTest, KillAppReleasesEverything) {
  App* a = InstallAndLaunch("a");
  InstallAndLaunch("b");
  int64_t free_before = mm_.free_pages();
  am_.KillApp(*a);
  EXPECT_FALSE(a->running());
  EXPECT_EQ(a->state(), AppState::kNotRunning);
  EXPECT_GT(mm_.free_pages(), free_before);
  EXPECT_EQ(am_.main_space(a->uid()), nullptr);
  EXPECT_EQ(am_.main_thread(a->uid()), nullptr);
}

TEST_F(AmTest, KillOneCachedPicksStalest) {
  App* a = InstallAndLaunch("a");
  App* b = InstallAndLaunch("b");
  InstallAndLaunch("c");
  EXPECT_TRUE(am_.KillOneCached());
  EXPECT_FALSE(a->running());  // Stalest cached app died.
  EXPECT_TRUE(b->running());
}

TEST_F(AmTest, KillOneCachedSkipsForegroundAndPerceptible) {
  App* music = am_.Install(SmallApp("music", true));
  am_.Launch(music->uid());
  engine_.RunFor(Sec(2));
  App* fg = InstallAndLaunch("fg");
  EXPECT_FALSE(am_.KillOneCached());  // Only FG + perceptible alive.
  EXPECT_TRUE(music->running());
  EXPECT_TRUE(fg->running());
}

TEST_F(AmTest, RelaunchAfterKillIsCold) {
  App* a = InstallAndLaunch("a");
  am_.KillApp(*a);
  am_.Launch(a->uid());
  engine_.RunFor(Sec(2));
  ASSERT_EQ(am_.launches().size(), 2u);
  EXPECT_TRUE(am_.launches()[1].cold);
  EXPECT_TRUE(a->running());
}

TEST_F(AmTest, LaunchThawsFrozenApp) {
  App* a = InstallAndLaunch("a");
  InstallAndLaunch("b");
  freezer_.FreezeApp(*a);
  ASSERT_TRUE(a->frozen());
  am_.Launch(a->uid());
  EXPECT_FALSE(a->frozen());  // Thaw-on-launch happens before display.
  engine_.RunFor(Sec(2));
  EXPECT_TRUE(am_.interactive(a->uid()));
}

TEST_F(AmTest, StateListenersFire) {
  std::vector<std::pair<Uid, AppState>> transitions;
  am_.AddStateListener([&](App& app, AppState old_state) {
    transitions.emplace_back(app.uid(), old_state);
  });
  App* a = InstallAndLaunch("a");
  EXPECT_FALSE(transitions.empty());
  EXPECT_EQ(transitions[0].first, a->uid());
  EXPECT_EQ(transitions[0].second, AppState::kNotRunning);
}

TEST_F(AmTest, DeathListenersFire) {
  Uid died = kInvalidUid;
  am_.AddDeathListener([&](App& app) { died = app.uid(); });
  App* a = InstallAndLaunch("a");
  InstallAndLaunch("b");
  am_.KillApp(*a);
  EXPECT_EQ(died, a->uid());
}

TEST_F(AmTest, LaunchCallbackReceivesRecord) {
  App* a = am_.Install(SmallApp("a"));
  LaunchRecord seen;
  am_.Launch(a->uid(), [&](const LaunchRecord& r) { seen = r; });
  engine_.RunFor(Sec(2));
  EXPECT_TRUE(seen.completed);
  EXPECT_EQ(seen.uid, a->uid());
  EXPECT_TRUE(seen.cold);
}

TEST_F(AmTest, FindAppByPid) {
  App* a = InstallAndLaunch("a");
  Process* main = am_.main_process(a->uid());
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(am_.FindAppByPid(main->pid()), a);
  EXPECT_EQ(am_.FindAppByPid(999999), nullptr);
}

}  // namespace
}  // namespace ice
