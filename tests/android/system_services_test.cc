#include "src/android/system_services.h"

#include <gtest/gtest.h>

#include "src/android/device_profile.h"
#include "src/proc/behavior.h"
#include "src/proc/task.h"
#include "src/storage/flash_profiles.h"

namespace ice {
namespace {

TEST(SystemServices, BaselineUtilizationMatchesTable1) {
  // Table 1: ~43 % average CPU utilization with no apps.
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, P20Profile().mem, &storage);
  Scheduler sched(engine, mm, 8);
  SystemServices services(sched, mm);
  engine.RunFor(Sec(10));
  EXPECT_NEAR(sched.utilization(), 0.43, 0.05);
}

TEST(SystemServices, KswapdCreatedAndWired) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemConfig config;
  config.total_pages = 2000;
  config.os_reserved_pages = 200;
  config.wm = Watermarks::FromHigh(120);
  config.reclaim_contention_mean = 0;
  MemoryManager mm(engine, config, &storage);
  Scheduler sched(engine, mm, 4);
  SystemServices services(sched, mm);
  ASSERT_NE(services.kswapd(), nullptr);
  EXPECT_TRUE(services.kswapd()->is_kernel());

  engine.RunFor(Ms(10));
  EXPECT_EQ(services.kswapd()->state(), TaskState::kSleeping);

  // Drive below the low watermark: kswapd must wake and reclaim.
  AddressSpaceLayout layout;
  layout.native_pages = 1900;
  AddressSpace space(1, 1, "hog", layout);
  mm.Register(space);
  for (uint32_t vpn = 0; vpn < 1710; ++vpn) {
    mm.Access(space, vpn, false, nullptr);
  }
  engine.RunFor(Sec(2));
  EXPECT_GE(mm.free_pages(), static_cast<int64_t>(mm.watermarks().high));
  mm.Release(space);
}

TEST(SystemServices, ServiceTasksAreKernelSide) {
  Engine engine(1);
  BlockDevice storage(engine, Ufs21Profile());
  MemoryManager mm(engine, MemConfig{}, &storage);
  Scheduler sched(engine, mm, 8);
  SystemServicesConfig config;
  config.service_tasks = 5;
  SystemServices services(sched, mm, config);
  EXPECT_EQ(services.service_tasks().size(), 5u);
  for (Task* t : services.service_tasks()) {
    EXPECT_TRUE(t->is_kernel());
  }
}

TEST(DeviceProfiles, MatchPaperTable4) {
  DeviceProfile pixel3 = Pixel3Profile();
  DeviceProfile p20 = P20Profile();
  // Table 4: ZRAM 512 MB / 1024 MB; high watermark param 256 / 1024.
  EXPECT_EQ(pixel3.mem.zram.capacity_bytes, 512 * kMiB);
  EXPECT_EQ(p20.mem.zram.capacity_bytes, 1024 * kMiB);
  EXPECT_EQ(pixel3.mdt_hwm_mib, 256u);
  EXPECT_EQ(p20.mdt_hwm_mib, 1024u);
  // 4 GB vs 6 GB RAM.
  EXPECT_EQ(pixel3.mem.total_pages, BytesToPages(4 * kGiB));
  EXPECT_EQ(p20.mem.total_pages, BytesToPages(6 * kGiB));
  // Pixel3 is eMMC, P20 is UFS.
  EXPECT_EQ(pixel3.flash.name, "eMMC5.1");
  EXPECT_EQ(p20.flash.name, "UFS2.1");
  // Fig. 8 setup: 6 vs 8 BG apps for full pressure.
  EXPECT_EQ(pixel3.full_pressure_bg_apps, 6);
  EXPECT_EQ(p20.full_pressure_bg_apps, 8);
}

}  // namespace
}  // namespace ice
